package dynaminer

import (
	"sync"
	"testing"
	"time"
)

// TestJanitorEvictsIdleClusters pins the background sweep: with an
// injected clock far past every cluster's last activity, the janitor
// evicts them without any new traffic arriving.
func TestJanitorEvictsIdleClusters(t *testing.T) {
	c, eps := trainedOnSmallCorpus(t)

	// The synth corpus is timestamped around a fixed epoch; a clock one
	// year later puts every cluster beyond any TTL.
	var mu sync.Mutex
	clock := eps[0].Txs[0].ReqTime
	now := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return clock
	}

	m := NewMonitor(MonitorConfig{RedirectThreshold: 1, Now: now}, c)
	for i := 0; i < 4; i++ {
		m.ProcessAll(eps[i].Txs)
	}
	if m.Stats().Clusters == 0 {
		t.Fatal("no clusters built; the sweep covers nothing")
	}

	m.StartJanitor(time.Millisecond)
	defer m.Close()

	mu.Lock()
	clock = clock.Add(365 * 24 * time.Hour)
	mu.Unlock()

	deadline := time.Now().Add(5 * time.Second)
	for m.Stats().Evicted == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("janitor never evicted; stats %+v", m.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestJanitorCloseIsIdempotent pins the lifecycle edges: closing a
// never-started monitor, double-close, and restart after close all work.
func TestJanitorCloseIsIdempotent(t *testing.T) {
	c, _ := trainedOnSmallCorpus(t)
	m := NewMonitor(MonitorConfig{RedirectThreshold: 1}, c)
	m.Close() // never started
	m.StartJanitor(time.Hour)
	m.StartJanitor(time.Hour) // already running: no-op
	m.Close()
	m.Close()                 // double close
	m.StartJanitor(time.Hour) // restart after close
	m.Close()
}

// TestJanitorConcurrentWithProcess runs the janitor at full tilt while
// transactions stream in concurrently; under -race this proves the sweep
// takes the same shard locks as Process.
func TestJanitorConcurrentWithProcess(t *testing.T) {
	c, eps := trainedOnSmallCorpus(t)
	m := NewMonitor(MonitorConfig{RedirectThreshold: 1, Shards: 4}, c)
	m.StartJanitor(time.Millisecond)
	defer m.Close()

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < 32; i += 4 {
				m.ProcessAll(eps[i].Txs)
			}
		}(w)
	}
	wg.Wait()
	if m.Stats().Transactions == 0 {
		t.Fatal("no transactions processed")
	}
}
