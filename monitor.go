package dynaminer

import (
	"io"
	"sync"
	"time"

	"dynaminer/internal/detector"
	"dynaminer/internal/obs"
	"dynaminer/internal/proxy"
)

// Monitor is the on-the-wire detection engine (the paper's Stage 2): it
// consumes live HTTP transactions, infers infection clues, builds
// potential-infection WCGs, and re-classifies them as they grow. The
// engine is sharded by client IP (MonitorConfig.Shards, default
// GOMAXPROCS), so Monitor is safe for concurrent use and distinct clients
// classify in parallel; per-client results are shard-count independent.
type Monitor struct {
	engine *detector.ShardedEngine
	now    func() time.Time
	ttl    time.Duration

	// tracer is the pipeline tracer from MonitorConfig (nil when tracing
	// is off); StartAdmin mounts /trace from it.
	tracer *obs.Tracer

	// journal is the alert sink from MonitorConfig, kept so Shutdown can
	// force it to stable storage during a graceful drain.
	journal *obs.Journal

	// Janitor and checkpoint telemetry on the engine's registry.
	janitorSweeps      *obs.Counter
	janitorEvictions   *obs.Counter
	checkpoints        *obs.Counter
	checkpointFailures *obs.Counter

	mu             sync.Mutex
	stop           chan struct{} // non-nil while the janitor is running; guarded by mu
	done           chan struct{} // closed when the janitor goroutine exits; guarded by mu
	admin          *obs.Admin    // non-nil while the admin server runs; guarded by mu
	modelPath      string        // default reload artifact; guarded by mu
	checkpointPath string        // periodic checkpoint target; guarded by mu
	ckptStop       chan struct{} // non-nil while the checkpointer runs; guarded by mu
	ckptDone       chan struct{} // closed when the checkpointer exits; guarded by mu
}

// NewMonitor wraps a trained classifier in a streaming engine.
func NewMonitor(cfg MonitorConfig, c *Classifier) *Monitor {
	if cfg.TrustedVendors == nil {
		cfg.TrustedVendors = detector.DefaultTrustedVendors
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	ttl := cfg.ClusterTTL
	if ttl == 0 {
		ttl = time.Hour
	}
	engine := detector.NewSharded(cfg, c.scorer())
	reg := engine.Registry()
	return &Monitor{
		engine:  engine,
		now:     now,
		ttl:     ttl,
		tracer:  cfg.Tracer,
		journal: cfg.Journal,
		janitorSweeps: reg.Counter("dynaminer_janitor_sweeps_total",
			"Background janitor sweeps run."),
		janitorEvictions: reg.Counter("dynaminer_janitor_evictions_total",
			"Session clusters evicted by the background janitor."),
		checkpoints: reg.Counter("dynaminer_checkpoints_total",
			"Watch-state checkpoints written successfully."),
		checkpointFailures: reg.Counter("dynaminer_checkpoint_failures_total",
			"Watch-state checkpoint writes that failed."),
	}
}

// Registry returns the observability registry the monitor's engine
// metrics live on — the one MonitorConfig.Metrics supplied, or the
// monitor's private registry. StartAdmin exposes it over HTTP.
func (m *Monitor) Registry() *obs.Registry { return m.engine.Registry() }

// StartAdmin serves the observability endpoints — Prometheus /metrics,
// the /healthz readiness report (JSON conditions, 503 while degraded,
// quarantined or shedding), a JSON /snapshot, /debug/pprof/, /trace when
// the monitor has a tracer, and the model-lifecycle controls POST
// /reload and POST /rollback (see ReloadHandlers) — on addr, exposing
// the monitor's registry plus the process-wide library registry. A
// runtime health collector refreshes process gauges while the server
// runs. It returns the bound address (useful with ":0"). Nothing listens
// unless this is called; Close shuts the server down.
func (m *Monitor) StartAdmin(addr string) (string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.admin != nil {
		return m.admin.Addr(), nil
	}
	admin, err := obs.StartAdminWith(addr, obs.AdminOptions{
		Extra:  ReloadHandlers(m, m.ModelPath),
		Health: m.engine.Health,
		Tracer: m.tracer,
	}, m.engine.Registry(), obs.Default())
	if err != nil {
		return "", err
	}
	m.admin = admin
	return admin.Addr(), nil
}

// Health reports the engine's readiness conditions, OR-ed across shards;
// /healthz serves the same report.
func (m *Monitor) Health() HealthStatus { return m.engine.Health() }

// StartJanitor launches a background sweeper that evicts idle session
// clusters every interval (zero selects one minute), so memory stays
// bounded even while no traffic arrives to trigger the inline eviction in
// Process. Starting an already-running janitor is a no-op. Stop it with
// Close.
func (m *Monitor) StartJanitor(interval time.Duration) {
	if interval <= 0 {
		interval = time.Minute
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.stop != nil {
		return
	}
	stop, done := make(chan struct{}), make(chan struct{})
	m.stop, m.done = stop, done
	go func() {
		defer close(done)
		defer func() {
			// Last-resort guard: a janitor fault must never take the
			// process down.
			recover()
		}()
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				n := m.engine.EvictIdle(m.now().Add(-m.ttl))
				m.janitorSweeps.Inc()
				m.janitorEvictions.Add(int64(n))
			}
		}
	}()
}

// Close stops the background janitor, the background checkpointer and
// the admin server, whichever are running, and waits for them to exit.
// It is safe to call multiple times and on monitors that never started
// any of them. (Shutdown additionally writes a final checkpoint and
// syncs the journal.)
func (m *Monitor) Close() {
	m.mu.Lock()
	stop, done := m.stop, m.done
	ckptStop, ckptDone := m.ckptStop, m.ckptDone
	admin := m.admin
	m.stop, m.done, m.admin = nil, nil, nil
	m.ckptStop, m.ckptDone = nil, nil
	m.mu.Unlock()
	if admin != nil {
		admin.Close()
	}
	if ckptStop != nil {
		close(ckptStop)
		<-ckptDone
	}
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// EvictIdle drops every session cluster idle since before cutoff across
// all shards and returns how many were removed. The engine also evicts
// inline as traffic flows and via the background janitor; this is for
// deployments that manage their own sweep schedule.
func (m *Monitor) EvictIdle(cutoff time.Time) int { return m.engine.EvictIdle(cutoff) }

// Process ingests one transaction and returns any alerts it triggers.
func (m *Monitor) Process(tx Transaction) []Alert { return m.engine.Process(tx) }

// ProcessAll moves a transaction slab through the engine: each shard
// processes its share of the slab under one lock acquisition, shards run
// concurrently, and alerts come back in input order — bit-identical to
// calling Process per transaction, just cheaper per transaction.
func (m *Monitor) ProcessAll(txs []Transaction) []Alert { return m.engine.ProcessAll(txs) }

// ProcessPCAP replays a capture through the engine, as in the forensic
// case study, returning all alerts.
func (m *Monitor) ProcessPCAP(r io.Reader) ([]Alert, error) {
	txs, err := ReadPCAP(r)
	if err != nil {
		return nil, err
	}
	return m.ProcessAll(txs), nil
}

// Stats returns a snapshot of engine counters, aggregated across shards.
func (m *Monitor) Stats() MonitorStats { return m.engine.Stats() }

// Watched returns snapshots of every potential-infection WCG currently
// being grown and re-classified, across all shards.
func (m *Monitor) Watched() []WatchedWCG { return m.engine.Watched() }

// ProxyConfig tunes the forward-proxy deployment (see NewProxy).
type ProxyConfig = proxy.Config

// ProxyStats counts proxy activity.
type ProxyStats = proxy.Stats

// Proxy is a detecting forward HTTP proxy: the paper's live deployment
// mode, where DynaMiner "sits at the edge of a network or as a web proxy".
type Proxy = proxy.Proxy

// NewProxy wraps a trained classifier in a forward HTTP proxy that relays
// traffic, detects infections on the wire, and (optionally) terminates the
// web sessions of alerted clients. Serve it with http.ListenAndServe and
// point browsers at it as their HTTP proxy.
func NewProxy(cfg ProxyConfig, c *Classifier) *Proxy {
	if cfg.Detector.TrustedVendors == nil {
		cfg.Detector.TrustedVendors = detector.DefaultTrustedVendors
	}
	return proxy.New(cfg, c.scorer())
}
