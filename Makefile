GO ?= go

.PHONY: all build tier1 tier2 lint bench chaos fuzz

all: tier1

build:
	$(GO) build ./...

# Tier 1: the correctness gate every change must keep green.
tier1:
	$(GO) build ./...
	$(GO) test ./...

# Project-invariant static analysis (see DESIGN.md "Enforced invariants"
# and "Type-aware lint"). Type-checks every package against gc export
# data and runs all ten analyzers; exits non-zero when any analyzer
# reports a finding. Degradation to syntactic analysis prints a warning
# on stderr.
lint:
	$(GO) run ./cmd/dynalint -root .

# Tier 2: static analysis plus the race-detector stress suites for every
# package that spawns goroutines (the root package covers the monitor
# janitor, internal/proxy the retry/breaker paths, internal/chaos the
# fault-injection soak, internal/obs the admin server and sharded
# counters, internal/ml the parallel batch scorer). Slower; run before
# touching engine or proxy locking.
tier2:
	$(GO) vet ./...
	$(GO) run ./cmd/dynalint -root .
	$(GO) test -race . ./cmd/dynaminer ./internal/detector ./internal/proxy ./internal/httpstream ./internal/chaos ./internal/obs ./internal/ml

# Chaos: the deterministic fault-injection soak (fixed seeds, see
# internal/chaos and DESIGN.md "Fault tolerance"): seeded synth episodes
# through the sharded engine and the proxy under injected panics, NaN
# scores, transport faults, and transaction damage. Asserts zero crashes,
# conserved stats counters, and a bit-identical fault-free replay.
chaos:
	$(GO) test -race -count 1 -v -run 'TestChaosSoak' ./internal/chaos

# Fuzz smoke: run each httpstream parser fuzz target for FUZZTIME on top
# of the checked-in seed corpus (testdata/fuzz), plus the model-file
# loader differential. Regenerate the synth seeds with
# DYNAMINER_WRITE_FUZZ_CORPUS=1 go test ./internal/synth.
FUZZTIME ?= 10s
fuzz:
	$(GO) test ./internal/httpstream -run '^$$' -fuzz '^FuzzParseRequests$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/httpstream -run '^$$' -fuzz '^FuzzParseResponses$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/httpstream -run '^$$' -fuzz '^FuzzExtractPair$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/ml -run '^$$' -fuzz '^FuzzLoadForest$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/ml -run '^$$' -fuzz '^FuzzLoadFlatBlob$$' -fuzztime $(FUZZTIME)

# Bench: run the benchmark suite and record the parsed results as JSON.
# BENCH_PATTERN narrows the run (CI smokes just the classify trio);
# BENCH_OUT names the committed record for this PR. BENCH_GATE, when
# set, is a benchjson ns/op ratio assertion such as
# 'ClassifyInstrumented/ClassifyIncremental<=1.05' — the observability
# overhead bar — and fails the target when violated. BENCH_BASELINE +
# BENCH_BASELINE_GATE gate one benchmark's ns/op against a committed
# prior record (e.g. 'ClassifyIncremental<=1.05' vs BENCH_8.json).
BENCH_PATTERN ?= .
BENCHTIME ?= 1x
BENCH_OUT ?= BENCH_10.json
BENCH_GATE ?=
BENCH_BASELINE ?=
BENCH_BASELINE_GATE ?=
bench:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchtime $(BENCHTIME) -count 1 -benchmem . \
		| tee /dev/stderr | $(GO) run ./cmd/benchjson -o $(BENCH_OUT) \
		$(if $(BENCH_GATE),-gate '$(BENCH_GATE)') \
		$(if $(BENCH_BASELINE),-baseline $(BENCH_BASELINE)) \
		$(if $(BENCH_BASELINE_GATE),-baseline-gate '$(BENCH_BASELINE_GATE)')
