GO ?= go

.PHONY: all build tier1 tier2 lint bench

all: tier1

build:
	$(GO) build ./...

# Tier 1: the correctness gate every change must keep green.
tier1:
	$(GO) build ./...
	$(GO) test ./...

# Project-invariant static analysis (see DESIGN.md "Enforced invariants").
# Exits non-zero when any analyzer reports a finding.
lint:
	$(GO) run ./cmd/dynalint -root .

# Tier 2: static analysis plus the race-detector stress suites for every
# package that spawns goroutines. Slower; run before touching engine or
# proxy locking.
tier2:
	$(GO) vet ./...
	$(GO) run ./cmd/dynalint -root .
	$(GO) test -race . ./cmd/dynaminer ./internal/detector ./internal/proxy ./internal/httpstream

# Bench: run the benchmark suite and record the parsed results as JSON.
# BENCH_PATTERN narrows the run (CI smokes just the classify pair);
# BENCH_OUT names the committed record for this PR.
BENCH_PATTERN ?= .
BENCHTIME ?= 1x
BENCH_OUT ?= BENCH_3.json
bench:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchtime $(BENCHTIME) -count 1 -benchmem . \
		| tee /dev/stderr | $(GO) run ./cmd/benchjson -o $(BENCH_OUT)
