GO ?= go

.PHONY: all build tier1 tier2 bench

all: tier1

build:
	$(GO) build ./...

# Tier 1: the correctness gate every change must keep green.
tier1:
	$(GO) build ./...
	$(GO) test ./...

# Tier 2: static analysis plus the race-detector stress suites for the
# concurrent packages. Slower; run before touching engine or proxy locking.
tier2:
	$(GO) vet ./...
	$(GO) test -race ./internal/detector ./internal/proxy

bench:
	$(GO) test -bench=. -benchmem
