package dynaminer

import (
	"net/netip"
	"sync"
	"testing"
)

// TestMonitorConcurrentClientsMatchSerial drives one Monitor from many
// goroutines, one per client, and checks every client's alert count matches
// a serial replay. Sharding routes each client to exactly one shard, so
// interleaving across clients must never change verdicts; under -race this
// also exercises the shard locks end to end through the public API.
func TestMonitorConcurrentClientsMatchSerial(t *testing.T) {
	eps := Corpus(CorpusConfig{Seed: 51, Infections: 100, Benign: 120})
	c, err := TrainForMonitoring(eps, TrainConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	fresh := Corpus(CorpusConfig{Seed: 52, Infections: 8, Benign: 8})
	// Give every episode its own client address so sessions never merge
	// and per-client results are well-defined.
	total := 0
	for i := range fresh {
		addr := netip.AddrFrom4([4]byte{10, 1, byte(i / 200), byte(1 + i%200)})
		for j := range fresh[i].Txs {
			fresh[i].Txs[j].ClientIP = addr
		}
		total += len(fresh[i].Txs)
	}

	serialAlerts := make([]int, len(fresh))
	serial := NewMonitor(MonitorConfig{RedirectThreshold: 1, Shards: 4}, c)
	for i := range fresh {
		serialAlerts[i] = len(serial.ProcessAll(fresh[i].Txs))
	}

	concurrent := NewMonitor(MonitorConfig{RedirectThreshold: 1, Shards: 4}, c)
	concAlerts := make([]int, len(fresh))
	var wg sync.WaitGroup
	for i := range fresh {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			n := 0
			for _, tx := range fresh[i].Txs {
				n += len(concurrent.Process(tx))
			}
			concAlerts[i] = n
		}(i)
	}
	// Poll the aggregate snapshots while the writers run: Stats and
	// Watched take every shard lock and must be safe mid-stream.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for k := 0; k < 100; k++ {
			_ = concurrent.Stats()
			_ = concurrent.Watched()
		}
	}()
	wg.Wait()
	<-done

	for i := range fresh {
		if concAlerts[i] != serialAlerts[i] {
			t.Errorf("client %d: concurrent alerts = %d, serial = %d", i, concAlerts[i], serialAlerts[i])
		}
	}
	if st := concurrent.Stats(); st.Transactions != total {
		t.Fatalf("stats saw %d transactions, want %d", st.Transactions, total)
	}
}
