package dynaminer

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/netip"
	"os"
	"time"

	"dynaminer/internal/detector"
	"dynaminer/internal/obs"
)

// Model lifecycle and crash recovery (DESIGN.md §14): hot-swapping the
// serving forest without dropping a watch, checkpointing in-flight state,
// and rebuilding it after a restart.

// ModelVersion identifies the exact forest a classification came from:
// a monotonic in-process generation plus the CRC-32 of the model's
// canonical DMFB blob encoding.
type ModelVersion = detector.ModelVersion

// CheckpointInfo summarizes a DMCP checkpoint artifact.
type CheckpointInfo = detector.CheckpointInfo

// ReadCheckpointInfoFile validates and summarizes a DMCP checkpoint file
// without restoring it.
func ReadCheckpointInfoFile(path string) (CheckpointInfo, error) {
	return detector.ReadCheckpointInfoFile(path)
}

// ModelVersion returns the version of the forest currently serving
// classifications.
func (m *Monitor) ModelVersion() ModelVersion { return m.engine.ModelVersion() }

// ReloadModelFile reads a model file (DMFB blob or JSON, sniffed) through
// the full semantic screens and atomically hot-swaps it into the running
// engine: watches armed before the swap keep scoring through their pinned
// version, watches armed after it use the new forest. On any failure the
// serving model keeps scoring untouched and
// dynaminer_model_reload_failures_total increments.
func (m *Monitor) ReloadModelFile(path string) (ModelVersion, error) {
	return m.engine.ReloadModelFile(path)
}

// RollbackModel atomically reinstates the previously served model under
// its original version identity.
func (m *Monitor) RollbackModel() (ModelVersion, error) { return m.engine.RollbackModel() }

// SetModelPath records the default model artifact for reloads that name
// no path (SIGHUP, a bare POST /reload).
func (m *Monitor) SetModelPath(path string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.modelPath = path
}

// ModelPath returns the default reload artifact, "" when unset.
func (m *Monitor) ModelPath() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.modelPath
}

// WriteCheckpoint atomically writes the engine's in-flight state — every
// session cluster, watch, and pin — to path (staged and renamed, so a
// crash mid-write leaves the previous checkpoint intact).
func (m *Monitor) WriteCheckpoint(path string) error {
	if err := m.engine.WriteCheckpointFile(path); err != nil {
		m.checkpointFailures.Inc()
		return err
	}
	m.checkpoints.Inc()
	return nil
}

// StartCheckpointer launches a background writer that checkpoints the
// engine to path every interval (zero selects 30 seconds), bounding how
// much in-flight watch state a crash can cost. Starting an
// already-running checkpointer is a no-op; Shutdown (or Close) stops it
// after one final checkpoint.
func (m *Monitor) StartCheckpointer(path string, interval time.Duration) {
	if interval <= 0 {
		interval = 30 * time.Second
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.ckptStop != nil {
		return
	}
	m.checkpointPath = path
	stop, done := make(chan struct{}), make(chan struct{})
	m.ckptStop, m.ckptDone = stop, done
	go func() {
		defer close(done)
		defer func() {
			// Last-resort guard: a checkpoint fault must never take the
			// process down.
			recover()
		}()
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				_ = m.WriteCheckpoint(path)
			}
		}
	}()
}

// Recover rebuilds the monitor's in-flight state after a restart: the
// checkpoint restores every session cluster and watch (replayed through
// the real pipeline, pins re-attached by blob CRC), then the alert
// journal marks watches whose alerts fired after that checkpoint so they
// are not raised twice. A missing checkpoint or journal is a cold start,
// not an error; a corrupt checkpoint is an error and leaves cold-start
// the right response. Call before any traffic flows.
func (m *Monitor) Recover(checkpointPath, journalPath string) (watches, marked int, err error) {
	if checkpointPath != "" {
		if _, statErr := os.Stat(checkpointPath); statErr == nil {
			if _, err = m.engine.RestoreCheckpointFile(checkpointPath); err != nil {
				return 0, 0, err
			}
			watches = len(m.engine.Watched())
		}
	}
	if journalPath != "" {
		if _, statErr := os.Stat(journalPath); statErr == nil {
			recs, readErr := obs.ReadJournalFile(journalPath)
			if readErr != nil {
				return watches, 0, fmt.Errorf("recover journal: %w", readErr)
			}
			for _, rec := range recs {
				client, parseErr := netip.ParseAddr(rec.Client)
				if parseErr != nil {
					continue
				}
				if m.engine.MarkAlerted(client, rec.ClusterID) {
					marked++
				}
			}
		}
	}
	return watches, marked, nil
}

// Shutdown drains the monitor for a clean exit: the background janitor,
// checkpointer and admin server stop, a final checkpoint is written when
// a checkpointer was running, and the alert journal (when configured) is
// forced to stable storage. The engine itself stays usable — callers
// that own the intake stop feeding it first.
func (m *Monitor) Shutdown() error {
	m.mu.Lock()
	ckptPath := m.checkpointPath
	m.checkpointPath = ""
	m.mu.Unlock()

	m.Close() // stops janitor, checkpointer, admin

	var err error
	if ckptPath != "" {
		err = m.WriteCheckpoint(ckptPath)
	}
	if m.journal != nil {
		if syncErr := m.journal.Sync(); syncErr != nil && err == nil {
			err = syncErr
		}
	}
	return err
}

// ModelReloader is the control surface ReloadHandlers exposes over HTTP;
// *Monitor and *Proxy both satisfy it.
type ModelReloader interface {
	ModelVersion() ModelVersion
	ReloadModelFile(path string) (ModelVersion, error)
	RollbackModel() (ModelVersion, error)
}

// reloadReply is the JSON body the lifecycle endpoints answer with.
type reloadReply struct {
	Version string `json:"version"`
	Error   string `json:"error,omitempty"`
}

func writeReloadReply(w http.ResponseWriter, status int, v ModelVersion, err error) {
	reply := reloadReply{Version: v.String()}
	if err != nil {
		reply.Error = err.Error()
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(reply)
}

// ReloadHandlers returns the model-lifecycle admin endpoints, for
// mounting on an admin server (see Monitor.StartAdmin, which mounts them
// automatically):
//
//	POST /reload?path=FILE — validate FILE (default: defaultPath())
//	    through the full semantic screens and hot-swap it; 422 with the
//	    rejection reason when the screens fail, serving untouched.
//	POST /rollback — reinstate the previous model.
//
// Both answer {"version": "g<gen>-<crc>"} with the now-serving version.
func ReloadHandlers(r ModelReloader, defaultPath func() string) map[string]http.Handler {
	reload := http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodPost {
			writeReloadReply(w, http.StatusMethodNotAllowed, r.ModelVersion(), fmt.Errorf("use POST"))
			return
		}
		path := req.URL.Query().Get("path")
		if path == "" && defaultPath != nil {
			path = defaultPath()
		}
		if path == "" {
			writeReloadReply(w, http.StatusBadRequest, r.ModelVersion(), fmt.Errorf("no model path: pass ?path= or configure a default"))
			return
		}
		v, err := r.ReloadModelFile(path)
		if err != nil {
			writeReloadReply(w, http.StatusUnprocessableEntity, v, err)
			return
		}
		writeReloadReply(w, http.StatusOK, v, nil)
	})
	rollback := http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodPost {
			writeReloadReply(w, http.StatusMethodNotAllowed, r.ModelVersion(), fmt.Errorf("use POST"))
			return
		}
		v, err := r.RollbackModel()
		if err != nil {
			writeReloadReply(w, http.StatusConflict, v, err)
			return
		}
		writeReloadReply(w, http.StatusOK, v, nil)
	})
	return map[string]http.Handler{"/reload": reload, "/rollback": rollback}
}
