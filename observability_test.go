package dynaminer

// PR-5 acceptance tests for the observability layer: the registry is the
// single source of truth behind MonitorStats, every alert leaves a
// provenance record whose feature vector and score are bit-identical to
// the decision, and the admin endpoint serves a well-formed Prometheus
// exposition for a live monitor.

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/netip"
	"sort"
	"strings"
	"sync"
	"testing"

	"dynaminer/internal/obs"
)

// obsFixture trains a monitoring classifier on a seeded 55-episode corpus
// once and caches it for every observability test.
var (
	obsOnce sync.Once
	obsEps  []Episode
	obsClf  *Classifier
	obsErr  error
)

func obsFixture(t *testing.T) ([]Episode, *Classifier) {
	t.Helper()
	obsOnce.Do(func() {
		obsEps = Corpus(CorpusConfig{Seed: 17, Infections: 28, Benign: 27})
		obsClf, obsErr = TrainForMonitoring(obsEps, TrainConfig{Seed: 5})
	})
	if obsErr != nil {
		t.Fatal(obsErr)
	}
	return obsEps, obsClf
}

// obsStream merges the corpus into one replayable stream with a distinct
// client per episode, ordered by request time.
func obsStream(eps []Episode) []Transaction {
	var stream []Transaction
	for i := range eps {
		addr := netip.AddrFrom4([4]byte{10, 40, byte(i / 200), byte(1 + i%200)})
		for _, tx := range eps[i].Txs {
			tx.ClientIP = addr
			stream = append(stream, tx)
		}
	}
	sort.SliceStable(stream, func(i, j int) bool { return stream[i].ReqTime.Before(stream[j].ReqTime) })
	return stream
}

// TestRegistrySnapshotMatchesStats replays the seeded corpus and checks
// that the legacy MonitorStats view and the metrics registry agree
// field-for-field: Stats is a bridged read of the registry, so any drift
// means a counter was incremented on one side only.
func TestRegistrySnapshotMatchesStats(t *testing.T) {
	eps, clf := obsFixture(t)
	m := NewMonitor(MonitorConfig{RedirectThreshold: 1, Shards: 2}, clf)
	m.ProcessAll(obsStream(eps))
	st := m.Stats()
	if st.Transactions == 0 || st.CluesFired == 0 || st.Classifications == 0 {
		t.Fatalf("seeded run exercised nothing: %+v", st)
	}

	reg := m.Registry()
	want := map[string]int{
		"dynaminer_detector_transactions_total":    st.Transactions,
		"dynaminer_detector_weeded_total":          st.Weeded,
		"dynaminer_detector_clusters_total":        st.Clusters,
		"dynaminer_detector_evicted_total":         st.Evicted,
		"dynaminer_detector_clues_fired_total":     st.CluesFired,
		"dynaminer_detector_classifications_total": st.Classifications,
		"dynaminer_detector_alerts_total":          st.Alerts,
		"dynaminer_detector_dropped_total":         st.Dropped,
		"dynaminer_detector_rebuilds_total":        st.Rebuilds,
		"dynaminer_detector_panics_total":          st.Panics,
		"dynaminer_detector_quarantined_total":     st.Quarantined,
		"dynaminer_detector_degraded_total":        st.Degraded,
		"dynaminer_detector_shed_total":            st.Shed,
	}
	for name, v := range want {
		if got := int(reg.CounterValue(name)); got != v {
			t.Errorf("%s = %d, Stats says %d", name, got, v)
		}
	}
	if g, w := int(reg.GaugeValue("dynaminer_detector_watched_total")), len(m.Watched()); g != w {
		t.Errorf("watched gauge = %d, %d watches live", g, w)
	}

	// The JSON snapshot must carry every Stats-backed metric by name.
	byName := map[string]bool{}
	for _, s := range reg.Snapshot() {
		byName[s.Name] = true
	}
	for name := range want {
		if !byName[name] {
			t.Errorf("snapshot lacks %s", name)
		}
	}
	for _, h := range []string{
		"dynaminer_detector_classify_incremental_seconds",
		"dynaminer_detector_classify_rebuild_seconds",
		"dynaminer_ml_score_seconds",
	} {
		if !byName[h] {
			t.Errorf("snapshot lacks %s", h)
		}
	}
}

// TestEveryAlertJournaled is the provenance acceptance check: each alert
// of a seeded run appends exactly one record whose score is bit-identical
// to the alert's, and whose recorded feature vector reproduces that score
// bit-for-bit through the same ensemble.
func TestEveryAlertJournaled(t *testing.T) {
	eps, clf := obsFixture(t)
	var buf bytes.Buffer
	cfg := MonitorConfig{RedirectThreshold: 1, Shards: 1}
	cfg.Journal = obs.NewJournalWriter(&buf)
	m := NewMonitor(cfg, clf)
	alerts := m.ProcessAll(obsStream(eps))
	if len(alerts) == 0 {
		t.Fatal("seeded run raised no alerts; the provenance check is vacuous")
	}

	recs, err := ReadJournal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(alerts) {
		t.Fatalf("journal has %d records for %d alerts", len(recs), len(alerts))
	}
	for i, a := range alerts {
		r := recs[i]
		if math.Float64bits(r.Score) != math.Float64bits(a.Score) {
			t.Fatalf("record %d: score %v differs from alert score %v", i, r.Score, a.Score)
		}
		if r.Client != a.Client.String() || r.ClusterID != a.ClusterID {
			t.Fatalf("record %d: identity %s/%d, alert %s/%d", i, r.Client, r.ClusterID, a.Client, a.ClusterID)
		}
		if len(r.Features) != NumFeatures {
			t.Fatalf("record %d: %d features, want %d", i, len(r.Features), NumFeatures)
		}
		if got := clf.forest.Score(r.Features); math.Float64bits(got) != math.Float64bits(r.Score) {
			t.Fatalf("record %d: recorded features rescore to %v, recorded score is %v (not bit-identical)", i, got, r.Score)
		}
		if r.ClueHost == "" || r.CluePayload == "" {
			t.Fatalf("record %d: clue provenance missing: %+v", i, r)
		}
		if r.WCGNodes != a.WCG.Order() || r.WCGEdges != a.WCG.Size() {
			t.Fatalf("record %d: WCG %dn/%de, alert WCG %dn/%de", i, r.WCGNodes, r.WCGEdges, a.WCG.Order(), a.WCG.Size())
		}
		if r.Trees == 0 || r.Votes < 1 || r.Votes > r.Trees {
			t.Fatalf("record %d: implausible vote tally %d/%d", i, r.Votes, r.Trees)
		}
		if r.Threshold != 0.5 {
			t.Fatalf("record %d: threshold %v, want the engine default 0.5", i, r.Threshold)
		}
	}
}

// TestMonitorAdminServesMetrics starts the admin server on a live monitor
// and checks the exposition end to end: well-formed Prometheus text whose
// transaction counter matches Stats, a healthy /healthz, an idempotent
// StartAdmin, and a socket that Close actually releases.
func TestMonitorAdminServesMetrics(t *testing.T) {
	eps, clf := obsFixture(t)
	m := NewMonitor(MonitorConfig{RedirectThreshold: 1}, clf)
	addr, err := m.StartAdmin("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	m.ProcessAll(obsStream(eps[:10]))
	st := m.Stats()

	if again, err := m.StartAdmin("127.0.0.1:0"); err != nil || again != addr {
		t.Fatalf("second StartAdmin = %q, %v; want the running server %q", again, err, addr)
	}

	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	fams, err := obs.ParseExposition(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("live /metrics is not valid exposition text: %v\n%s", err, body)
	}
	fam := fams["dynaminer_detector_transactions_total"]
	if fam == nil {
		t.Fatal("exposition lacks dynaminer_detector_transactions_total")
	}
	if got := fam.Samples["dynaminer_detector_transactions_total"]; got != float64(st.Transactions) {
		t.Fatalf("exposed transactions = %v, Stats says %d", got, st.Transactions)
	}

	hresp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hbody, _ := io.ReadAll(hresp.Body)
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz = %d %q", hresp.StatusCode, hbody)
	}
	var health HealthStatus
	if err := json.Unmarshal(hbody, &health); err != nil {
		t.Fatalf("/healthz not JSON: %v\n%s", err, hbody)
	}
	if !health.Ready || health.Degraded || health.Quarantined || health.Shedding {
		t.Fatalf("/healthz conditions = %+v, want ready", health)
	}
	if health.ModelVersion == "" {
		t.Fatal("/healthz lacks model_version")
	}

	m.Close()
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Fatal("admin socket still serving after Close")
	}
}
