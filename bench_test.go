package dynaminer

// The bench suite regenerates every table and figure of the paper at full
// paper scale (770/980 training episodes, 7489/1500 validation episodes),
// one benchmark per artifact, and reports the headline numbers as custom
// metrics so `go test -bench=.` output doubles as the experiment record.
// DESIGN.md §4 maps each benchmark to the paper artifact it regenerates.

import (
	"bytes"
	"net/http"
	"net/netip"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dynaminer/internal/detector"
	"dynaminer/internal/experiments"
	"dynaminer/internal/features"
	"dynaminer/internal/ml"
	"dynaminer/internal/obs"
	"dynaminer/internal/synth"
)

var benchOpts = experiments.Options{Seed: 1}

// benchCorpus caches the ground-truth corpus across benchmarks.
var benchCorpus []synth.Episode

func corpusForBench(b *testing.B) []synth.Episode {
	b.Helper()
	if benchCorpus == nil {
		benchCorpus = experiments.GroundTruth(benchOpts)
	}
	return benchCorpus
}

// benchDataset caches the extracted design matrix: five benchmarks need
// it, and re-deriving 37 features per episode per benchmark dominated
// their setup time.
var benchDataset *ml.Dataset

func datasetForBench(b *testing.B) *ml.Dataset {
	b.Helper()
	if benchDataset == nil {
		benchDataset = experiments.BuildDataset(corpusForBench(b))
	}
	return benchDataset
}

func BenchmarkTableI(b *testing.B) {
	eps := corpusForBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := experiments.TableI(eps)
		if len(res.Rows) != 11 {
			b.Fatal("wrong row count")
		}
	}
}

func BenchmarkFigure1(b *testing.B) {
	eps := corpusForBench(b)
	b.ResetTimer()
	var google float64
	for i := 0; i < b.N; i++ {
		res := experiments.Figure1(eps)
		google = res.Rows[0].Pct
	}
	b.ReportMetric(google, "google-pct")
}

func BenchmarkFigure2(b *testing.B) {
	eps := corpusForBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := experiments.Figure2(eps); len(res.Families) != 10 {
			b.Fatal("wrong family count")
		}
	}
}

func BenchmarkFigure3(b *testing.B) {
	eps := corpusForBench(b)
	b.ResetTimer()
	var ratio float64
	for i := 0; i < b.N; i++ {
		res := experiments.Figure3(eps)
		ratio = res.Rows[0].Infection / res.Rows[0].Benign // node-count ratio
	}
	b.ReportMetric(ratio, "node-ratio")
}

func BenchmarkFigure4(b *testing.B) {
	eps := corpusForBench(b)
	b.ResetTimer()
	var ratio float64
	for i := 0; i < b.N; i++ {
		res := experiments.Figure4(eps)
		ratio = res.Rows[0].Infection / res.Rows[0].Benign // GET-count ratio
	}
	b.ReportMetric(ratio, "GET-ratio")
}

func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if res := experiments.Figure6(benchOpts); res.Order < 3 {
			b.Fatal("example WCG too small")
		}
	}
}

func BenchmarkFigures7to9(b *testing.B) {
	eps := corpusForBench(b)
	b.ResetTimer()
	var betweenGap float64
	for i := 0; i < b.N; i++ {
		series := experiments.Figures7to9(eps)
		betweenGap = series[1].BenMean - series[1].InfMean
	}
	b.ReportMetric(betweenGap, "betweenness-gap")
}

func BenchmarkTableIII(b *testing.B) {
	ds := datasetForBench(b)
	b.ResetTimer()
	var tpr, fpr float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.TableIII(ds, benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		tpr, fpr = res.Rows[0].TPR, res.Rows[0].FPR
	}
	b.ReportMetric(tpr, "all-TPR")
	b.ReportMetric(fpr, "all-FPR")
}

func BenchmarkTableIV(b *testing.B) {
	ds := datasetForBench(b)
	b.ResetTimer()
	var graphCount int
	for i := 0; i < b.N; i++ {
		res := experiments.TableIV(ds, benchOpts)
		graphCount = res.GraphFeatureCount()
	}
	b.ReportMetric(float64(graphCount), "GFs-in-top20")
}

func BenchmarkFigure10(b *testing.B) {
	ds := datasetForBench(b)
	b.ResetTimer()
	var auc float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure10(ds, benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		auc = res.AUC
	}
	b.ReportMetric(auc, "AUC")
}

func BenchmarkTableV(b *testing.B) {
	var dmInf, vtInf float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.TableV(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		dmInf = res.Rows[0].InfectionAccuracy()
		vtInf = res.Rows[1].InfectionAccuracy()
	}
	b.ReportMetric(dmInf, "dynaminer-recall")
	b.ReportMetric(vtInf, "av-recall")
}

func BenchmarkCaseStudy1(b *testing.B) {
	var alerts, lag float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.CaseStudy1(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		alerts = float64(res.Alerts)
		lag = float64(res.FreshPayloadLagDays)
	}
	b.ReportMetric(alerts, "alerts")
	b.ReportMetric(lag, "av-lag-days")
}

func BenchmarkTableVI(b *testing.B) {
	var total float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.TableVI(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		total = 0
		for _, row := range res.Rows {
			total += float64(row.Alerts)
		}
	}
	b.ReportMetric(total, "alerts")
}

func BenchmarkAblationClueThreshold(b *testing.B) {
	var det3 float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationClueThreshold(benchOpts, 100)
		if err != nil {
			b.Fatal(err)
		}
		det3 = res.Rows[2].DetectionRate
	}
	b.ReportMetric(det3, "detection-at-L3")
}

func BenchmarkAblationTrees(b *testing.B) {
	ds := datasetForBench(b)
	b.ResetTimer()
	var auc20 float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationTrees(ds, benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		auc20 = res.Rows[3].ROCArea
	}
	b.ReportMetric(auc20, "AUC-at-20-trees")
}

func BenchmarkAblationVoting(b *testing.B) {
	ds := datasetForBench(b)
	b.ResetTimer()
	var avgAUC, voteAUC float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationVoting(ds, benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		avgAUC, voteAUC = res.Rows[0].ROCArea, res.Rows[1].ROCArea
	}
	b.ReportMetric(avgAUC, "averaging-AUC")
	b.ReportMetric(voteAUC, "voting-AUC")
}

func BenchmarkEvasion(b *testing.B) {
	var filelessOffline float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Evasion(benchOpts, 100)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if row.Mode == "fileless" {
				filelessOffline = row.OfflineTPR
			}
		}
	}
	b.ReportMetric(filelessOffline, "fileless-offline-TPR")
}

func BenchmarkDetectionLatency(b *testing.B) {
	var remaining float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.DetectionLatency(benchOpts, 100)
		if err != nil {
			b.Fatal(err)
		}
		remaining = res.MedianRemaining.Seconds()
	}
	b.ReportMetric(remaining, "preempted-s")
}

// Micro-benchmarks of the pipeline stages, for performance tracking.

func BenchmarkWCGConstruction(b *testing.B) {
	eps := corpusForBench(b)
	var inf *Episode
	for i := range eps {
		if eps[i].Infection {
			inf = &eps[i]
			break
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if w := BuildWCG(inf.Txs); w.Order() == 0 {
			b.Fatal("empty WCG")
		}
	}
}

func BenchmarkFeatureExtraction(b *testing.B) {
	eps := corpusForBench(b)
	var w *WCG
	for i := range eps {
		if eps[i].Infection {
			w = EpisodeWCG(&eps[i])
			break
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v := ExtractFeatures(w); len(v) != NumFeatures {
			b.Fatal("bad vector")
		}
	}
}

func BenchmarkMonitorThroughput(b *testing.B) {
	eps := corpusForBench(b)
	clf, err := TrainForMonitoring(eps[:300], TrainConfig{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	var inf *Episode
	for i := range eps {
		if eps[i].Infection {
			inf = &eps[i]
			break
		}
	}
	b.ResetTimer()
	processed := 0
	for i := 0; i < b.N; i++ {
		m := NewMonitor(MonitorConfig{RedirectThreshold: 3}, clf)
		m.ProcessAll(inf.Txs)
		processed += len(inf.Txs)
	}
	b.ReportMetric(float64(processed)/b.Elapsed().Seconds(), "tx/s")
}

// Engine concurrency benchmarks: BenchmarkShardedProcess versus the
// pre-sharding baseline of one Engine behind one mutex, under the same
// multi-client parallel load.

var benchClassifier *Classifier

func classifierForBench(b *testing.B) *Classifier {
	b.Helper()
	if benchClassifier == nil {
		clf, err := TrainForMonitoring(corpusForBench(b)[:300], TrainConfig{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		benchClassifier = clf
	}
	return benchClassifier
}

// benchStreams caches episode transaction streams the engine benchmarks
// replay as synthetic client sessions.
var benchStreams [][]Transaction

func streamsForBench(b *testing.B) [][]Transaction {
	b.Helper()
	if benchStreams == nil {
		for _, ep := range corpusForBench(b) {
			if len(ep.Txs) == 0 {
				continue
			}
			benchStreams = append(benchStreams, ep.Txs)
			if len(benchStreams) == 64 {
				break
			}
		}
	}
	return benchStreams
}

// runEngineBench drives process from parallel goroutines, each replaying
// episode streams as an endless sequence of distinct clients: every full
// pass through a stream switches to a fresh client IP, so clusters keep
// being created rather than saturating one client's transaction cap.
func runEngineBench(b *testing.B, process func(Transaction) []Alert) {
	streams := streamsForBench(b)
	var nextClient atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		var (
			stream []Transaction
			pos    int
			ip     netip.Addr
		)
		for pb.Next() {
			if pos == len(stream) {
				id := nextClient.Add(1)
				stream = streams[id%uint64(len(streams))]
				ip = netip.AddrFrom4([4]byte{10, byte(id >> 16), byte(id >> 8), byte(id)})
				pos = 0
			}
			tx := stream[pos]
			tx.ClientIP = ip
			process(tx)
			pos++
		}
	})
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "tx/s")
}

func BenchmarkShardedProcess(b *testing.B) {
	clf := classifierForBench(b)
	eng := detector.NewSharded(detector.Config{RedirectThreshold: 3}, clf.forest)
	runEngineBench(b, eng.Process)
}

func BenchmarkSingleEngineProcess(b *testing.B) {
	clf := classifierForBench(b)
	eng := detector.New(detector.Config{RedirectThreshold: 3}, clf.forest)
	var mu sync.Mutex
	runEngineBench(b, func(tx Transaction) []Alert {
		mu.Lock()
		defer mu.Unlock()
		return eng.Process(tx)
	})
}

// Incremental-classification benchmarks: the same 200-transaction watched
// chain replayed through the incremental classify path and through the
// from-scratch fallback (DisableIncremental). The chain fires a clue after
// a 3-hop redirect chain plus an EXE download, then grows the watched WCG
// with POST call-backs cycling a small set of C&C hosts, so every
// transaction triggers a re-classification of the full conversation.

// benchChainTxs caches the 200-transaction chain.
var benchChainTxs []Transaction

func chainTxsForBench(b *testing.B) []Transaction {
	b.Helper()
	if benchChainTxs != nil {
		return benchChainTxs
	}
	base := time.Date(2016, 8, 2, 9, 0, 0, 0, time.UTC)
	client := netip.MustParseAddr("10.6.6.6")
	at := func(i int) time.Time { return base.Add(time.Duration(i) * 400 * time.Millisecond) }
	mk := func(i int, host, uri, method string, code int, ct string, size int) Transaction {
		return Transaction{
			ClientIP: client, ServerIP: netip.MustParseAddr("203.0.113.9"),
			ClientPort: 49152, ServerPort: 80,
			Method: method, URI: uri, Host: host,
			ReqHdr: http.Header{}, RespHdr: http.Header{},
			ReqTime: at(i), RespTime: at(i).Add(25 * time.Millisecond),
			StatusCode: code, ContentType: ct, BodySize: size,
		}
	}
	hops := []string{"lure.bench", "hop1.bench", "hop2.bench", "dropper.bench"}
	var txs []Transaction
	for i := 0; i+1 < len(hops); i++ {
		tx := mk(len(txs), hops[i], "/r", "GET", 302, "", 0)
		tx.RespHdr.Set("Location", "http://"+hops[i+1]+"/r")
		txs = append(txs, tx)
	}
	txs = append(txs, mk(len(txs), "dropper.bench", "/payload.exe", "GET", 200, "application/x-msdownload", 120000))
	for len(txs) < 200 {
		host := "cc" + string(rune('a'+len(txs)%8)) + ".bench"
		txs = append(txs, mk(len(txs), host, "/beacon", "POST", 200, "text/plain", 64))
	}
	benchChainTxs = txs
	return txs
}

func benchClassifyChain(b *testing.B, cfg detector.Config) {
	clf := classifierForBench(b)
	txs := chainTxsForBench(b)
	b.ReportAllocs()
	b.ResetTimer()
	var st detector.Stats
	for i := 0; i < b.N; i++ {
		eng := detector.New(cfg, clf.forest)
		for _, tx := range txs {
			eng.Process(tx)
		}
		st = eng.Stats()
		if st.Classifications < len(txs)-4 {
			b.Fatalf("only %d classifications over %d transactions", st.Classifications, len(txs))
		}
	}
	b.ReportMetric(float64(st.Classifications), "classifications")
	b.ReportMetric(float64(st.Rebuilds), "rebuilds")
}

func BenchmarkClassifyIncremental(b *testing.B) {
	benchClassifyChain(b, detector.Config{RedirectThreshold: 3})
}

func BenchmarkClassifyScratch(b *testing.B) {
	benchClassifyChain(b, detector.Config{RedirectThreshold: 3, DisableIncremental: true})
}

// BenchmarkClassifyInstrumented replays the incremental chain with a
// metrics registry attached, which also arms the per-classification
// latency clock — the full per-transaction observability cost. The
// acceptance bar for the obs layer is ns/op within 5% of
// BenchmarkClassifyIncremental (`benchjson -gate` pins it in CI).
func BenchmarkClassifyInstrumented(b *testing.B) {
	benchClassifyChain(b, detector.Config{RedirectThreshold: 3, Metrics: obs.NewRegistry()})
}

// BenchmarkClassifyTraced replays the incremental chain with the full
// PR-10 tracing layer armed on top of the metrics registry: span trees
// recorded per transaction, every 64th committed to the ring, stage
// EWMAs fed on each span close. The controlled pair for the tracing
// layer is BenchmarkClassifyInstrumented — identical config minus the
// Tracer — and the acceptance bar is ns/op within 5% of it
// (ClassifyTraced/ClassifyInstrumented <= 1.05 via `benchjson -gate`),
// isolating the marginal cost of span recording from the latency-metric
// cost the instrumented engine already pays.
func BenchmarkClassifyTraced(b *testing.B) {
	reg := obs.NewRegistry()
	benchClassifyChain(b, detector.Config{
		RedirectThreshold: 3,
		Metrics:           reg,
		Tracer:            obs.NewTracer(reg, obs.TraceConfig{Sample: 64}),
	})
}

// Forest-representation benchmarks: the same trained ensemble scoring the
// same 37-feature vectors through the pointer-tree representation and the
// flattened struct-of-arrays slabs, plus the batch kernel that amortizes
// dispatch across trees. CI gates ForestScoreFlat/ForestScorePointer so
// the flat path can never regress below the pointer path it replaced.

func forestVectorsForBench(b *testing.B) [][]float64 {
	b.Helper()
	ds := datasetForBench(b)
	n := 256
	if len(ds.X) < n {
		n = len(ds.X)
	}
	return ds.X[:n]
}

func BenchmarkForestScorePointer(b *testing.B) {
	f := classifierForBench(b).forest
	X := forestVectorsForBench(b)
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += f.Score(X[i%len(X)])
	}
	if sink < 0 {
		b.Fatal("impossible score sum")
	}
}

func BenchmarkForestScoreFlat(b *testing.B) {
	ff := classifierForBench(b).forest.Flatten()
	X := forestVectorsForBench(b)
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += ff.Score(X[i%len(X)])
	}
	if sink < 0 {
		b.Fatal("impossible score sum")
	}
}

// BenchmarkScoreBatchFlat scores the whole vector block per iteration
// (tree-outer traversal, zero allocations into a reused dst); the
// per-sample metric is what compares against the single-vector benches.
func BenchmarkScoreBatchFlat(b *testing.B) {
	ff := classifierForBench(b).forest.Flatten()
	X := forestVectorsForBench(b)
	dst := make([]float64, len(X))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ff.ScoreBatch(dst, X)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(X)), "ns/sample")
}

// BenchmarkTrainForest pins training cost — and, via allocs/op, the
// per-split scratch reuse in feature subsampling (featureSample used to
// allocate a fresh permutation at every split).
func BenchmarkTrainForest(b *testing.B) {
	ds := datasetForBench(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ml.TrainForest(ds, ml.ForestConfig{NumTrees: 5, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// Extraction-path benchmarks: the same 64 chain-prefix WCGs featurized by
// per-episode Extract (fresh cache and scratch per vector — the old
// dataset-builder loop) and by the batched slab path every dataset builder
// and experiment driver now uses. CI gates ExtractBatch/ExtractPerEpisode
// so the batch path stays materially faster per vector.

// benchExtractionWCGs caches the chain-prefix episode WCGs.
var benchExtractionWCGs []*WCG

func extractionWCGsForBench(b *testing.B) []*WCG {
	b.Helper()
	if benchExtractionWCGs == nil {
		txs := chainTxsForBench(b)
		for n := 10; n <= len(txs) && len(benchExtractionWCGs) < 64; n += 3 {
			benchExtractionWCGs = append(benchExtractionWCGs, BuildWCG(txs[:n]))
		}
	}
	return benchExtractionWCGs
}

func BenchmarkExtractPerEpisode(b *testing.B) {
	ws := extractionWCGsForBench(b)
	features.Extract(ws[0]) // warm caches so 1-iteration records are steady-state
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, w := range ws {
			if v := features.Extract(w); len(v) != NumFeatures {
				b.Fatal("bad vector")
			}
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(ws)), "ns/vector")
}

func BenchmarkExtractBatch(b *testing.B) {
	ws := extractionWCGsForBench(b)
	features.ExtractBatch(ws[:1]) // warm caches so 1-iteration records are steady-state
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if vs := features.ExtractBatch(ws); len(vs) != len(ws) {
			b.Fatal("lost vectors")
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(ws)), "ns/vector")
}

// Model-artifact benchmarks: the same trained ensemble deserialized from
// its JSON wire form (full parse + node-stream rebuild) and from the flat
// blob (header decode + checksum sweep + slab validation, no parse). CI
// gates LoadFlatBlob/LoadForestJSON at a hard multiple.

func modelArtifactsForBench(b *testing.B) (jsonBytes, blobBytes []byte) {
	b.Helper()
	clf := classifierForBench(b)
	var jb bytes.Buffer
	if err := clf.Save(&jb); err != nil {
		b.Fatal(err)
	}
	return jb.Bytes(), clf.FlatForest().AppendFlatBlob(nil)
}

func BenchmarkLoadForestJSON(b *testing.B) {
	jsonBytes, _ := modelArtifactsForBench(b)
	// Warm encoding/json's lazily built type caches so 1-iteration
	// records measure steady-state load cost, not first-call setup.
	if _, err := ml.LoadForest(bytes.NewReader(jsonBytes)); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetBytes(int64(len(jsonBytes)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ml.LoadForest(bytes.NewReader(jsonBytes)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLoadFlatBlob(b *testing.B) {
	_, blob := modelArtifactsForBench(b)
	// Warm hash/crc32's lazily built slicing-by-8 table so 1-iteration
	// records measure steady-state load cost, not first-call setup.
	if _, err := ml.LoadFlatBlob(bytes.NewReader(blob)); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetBytes(int64(len(blob)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ml.LoadFlatBlob(bytes.NewReader(blob)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLoadFlatBlobMapped measures the zero-copy path over an
// already-resident buffer — what serving off an mmap-ed model file costs.
func BenchmarkLoadFlatBlobMapped(b *testing.B) {
	_, blob := modelArtifactsForBench(b)
	if _, err := ml.LoadFlatBlobMapped(blob); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetBytes(int64(len(blob)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ml.LoadFlatBlobMapped(blob); err != nil {
			b.Fatal(err)
		}
	}
}
