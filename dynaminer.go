// Package dynaminer is a reproduction of "DynaMiner: Leveraging Offline
// Infection Analytics for On-the-Wire Malware Detection" (Eshete and
// Venkatakrishnan, DSN 2017): a payload-agnostic malware detector that
// abstracts HTTP conversations into annotated Web Conversation Graphs
// (WCGs), extracts 37 graph/header/temporal features, and classifies with
// an Ensemble Random Forest that averages per-tree class probabilities.
//
// The package exposes the two stages the paper describes:
//
//   - Offline web conversation analytics: parse captures (ReadPCAPFile or
//     ReadPCAP), build WCGs (BuildWCG), extract features
//     (ExtractFeatures), and train a Classifier (Train).
//   - On-the-wire detection: NewMonitor wraps a trained Classifier in a
//     streaming engine that infers infection clues, constructs potential
//     infection WCGs, and alerts.
//
// The ground-truth corpus the paper trains on is not redistributable; the
// Corpus function synthesizes a statistically equivalent one (see
// DESIGN.md for the substitution argument).
package dynaminer

import (
	"fmt"
	"io"
	"os"

	"dynaminer/internal/detector"
	"dynaminer/internal/features"
	"dynaminer/internal/httpstream"
	"dynaminer/internal/pcap"
	"dynaminer/internal/synth"
	"dynaminer/internal/wcg"
)

// Re-exported core types. Aliases keep the internal packages as the single
// implementation while making the types usable through the public API.
type (
	// Transaction is one HTTP request/response pair.
	Transaction = httpstream.Transaction
	// WCG is an annotated web conversation graph.
	WCG = wcg.WCG
	// Episode is one labeled conversation from the synthetic corpus.
	Episode = synth.Episode
	// CorpusConfig parameterizes synthetic corpus generation.
	CorpusConfig = synth.Config
	// Alert is an on-the-wire infection verdict.
	Alert = detector.Alert
	// MonitorConfig tunes the on-the-wire engine.
	MonitorConfig = detector.Config
	// MonitorStats counts engine activity.
	MonitorStats = detector.Stats
	// WatchedWCG describes one actively watched potential-infection WCG.
	WatchedWCG = detector.WatchedWCG
	// Packet is one captured frame.
	Packet = pcap.Packet
)

// NumFeatures is the dimensionality of the paper's feature vector (37).
const NumFeatures = features.NumFeatures

// ReadPCAP parses a capture stream — classic pcap or pcapng, detected from
// the magic — and extracts its HTTP transactions through the full
// pipeline: packet decode, TCP reassembly, HTTP pairing.
func ReadPCAP(r io.Reader) ([]Transaction, error) {
	pkts, err := pcap.ReadAllAuto(r)
	if err != nil {
		return nil, err
	}
	return httpstream.FromPackets(pkts), nil
}

// ReadPCAPFile is ReadPCAP over a file path.
func ReadPCAPFile(path string) ([]Transaction, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("open capture: %w", err)
	}
	defer f.Close()
	txs, err := ReadPCAP(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return txs, nil
}

// BuildWCG constructs an annotated web conversation graph from a
// transaction stream (the paper's Section III).
func BuildWCG(txs []Transaction) *WCG { return wcg.FromTransactions(txs) }

// ExtractFeatures computes the 37-dimensional payload-agnostic feature
// vector of a WCG (Table II).
func ExtractFeatures(w *WCG) []float64 { return features.Extract(w) }

// FeatureName returns the Table II name of feature i (0-based).
func FeatureName(i int) string { return features.Name(i) }

// Corpus synthesizes a labeled ground-truth corpus equivalent in
// distribution to the paper's 770-infection / 980-benign dataset.
func Corpus(cfg CorpusConfig) []Episode { return synth.GenerateCorpus(cfg) }

// EpisodeWCG builds the WCG of one corpus episode.
func EpisodeWCG(e *Episode) *WCG { return wcg.FromTransactions(e.Txs) }
