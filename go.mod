module dynaminer

go 1.22
