// Forensic case study (paper Section VI-C): replay a recorded 90-minute
// free-streaming session through the on-the-wire engine, then compare
// DynaMiner's alerts against a simulated VirusTotal-style AV ensemble —
// including the fresh payload the AV engines take 11 days to flag.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"dynaminer"
	"dynaminer/internal/synth"
	"dynaminer/internal/vtsim"
)

func main() {
	// Train the deployment-matched classifier on the ground-truth corpus.
	train := dynaminer.Corpus(dynaminer.CorpusConfig{Seed: 1, Infections: 300, Benign: 380})
	clf, err := dynaminer.TrainForMonitoring(train, dynaminer.TrainConfig{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	// The capture: EURO2016 final on a free streaming site, 18 tabs, fake
	// "player update" popups, 32 downloads.
	capturedAt := time.Date(2016, 7, 10, 19, 0, 0, 0, time.UTC)
	session := synth.GenerateStreamingSession(capturedAt, rand.New(rand.NewSource(101)))
	fmt.Printf("capture: %d HTTP transactions, %d downloads\n",
		len(session.Episode.Txs), len(session.Downloads))

	// Replay through the engine with the case study's redirect threshold 3.
	monitor := dynaminer.NewMonitor(dynaminer.MonitorConfig{RedirectThreshold: 3}, clf)
	var alerts []dynaminer.Alert
	for _, tx := range session.Episode.Txs {
		for _, a := range monitor.Process(tx) {
			alerts = append(alerts, a)
			fmt.Printf("ALERT %s payload=%-4s host=%-16s score=%.2f\n",
				a.FormatTime("15:04:05"), a.TriggerPayload, a.TriggerHost, a.Score)
		}
	}
	st := monitor.Stats()
	fmt.Printf("engine: %d transactions, %d clues, %d classifications, %d alerts\n\n",
		st.Transactions, st.CluesFired, st.Classifications, st.Alerts)

	// Submit the malicious payloads to the AV ensemble at capture time.
	av := vtsim.Default()
	for _, d := range session.Downloads {
		if !d.Malicious {
			continue
		}
		v := av.Scan(d.ID, true, d.FirstSeen, capturedAt.Add(2*time.Hour))
		if v.Flagged(av.Threshold) {
			fmt.Printf("AV ensemble flags %-4s from %-16s (%d/%d engines)\n",
				d.Ext, d.Server, v.Detections, v.Engines)
			continue
		}
		lag := av.DetectionDate(d.ID, d.FirstSeen, 60)
		fmt.Printf("AV ensemble MISSES %-4s from %-16s at capture time; first flagged %d days later\n",
			d.Ext, d.Server, lag)
	}
	fmt.Printf("\nDynaMiner raised %d alerts on the same payloads at capture time.\n", len(alerts))
}
