// Feature report: contrast the 37 payload-agnostic features (Table II) of
// an infection WCG against a benign one, and emit both graphs as Graphviz
// DOT files for inspection.
package main

import (
	"fmt"
	"log"
	"os"

	"dynaminer"
	"dynaminer/internal/features"
)

func main() {
	eps := dynaminer.Corpus(dynaminer.CorpusConfig{Seed: 7, Infections: 30, Benign: 30})
	var inf, ben *dynaminer.Episode
	for i := range eps {
		if eps[i].Infection && inf == nil && eps[i].Family == "Angler" {
			inf = &eps[i]
		}
		if !eps[i].Infection && ben == nil && eps[i].Enticement == "search" {
			ben = &eps[i]
		}
	}
	if inf == nil || ben == nil {
		log.Fatal("corpus too small to find sample episodes")
	}

	infWCG := dynaminer.EpisodeWCG(inf)
	benWCG := dynaminer.EpisodeWCG(ben)
	infV := dynaminer.ExtractFeatures(infWCG)
	benV := dynaminer.ExtractFeatures(benWCG)

	fmt.Printf("%-4s %-28s %-6s %-6s %12s %12s\n", "id", "feature", "group", "novel", "infection", "benign")
	for i := 0; i < dynaminer.NumFeatures; i++ {
		novel := ""
		if features.IsNovel(i) {
			novel = "yes"
		}
		fmt.Printf("f%-3d %-28s %-6s %-6s %12.4f %12.4f\n",
			i+1, features.Name(i), features.GroupOf(i), novel, infV[i], benV[i])
	}

	outputs := []struct {
		name string
		w    *dynaminer.WCG
	}{
		{"infection.dot", infWCG},
		{"benign.dot", benWCG},
	}
	for _, o := range outputs {
		if err := os.WriteFile(o.name, []byte(o.w.DOT(o.name)), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote %s (%d nodes, %d edges)", o.name, o.w.Order(), o.w.Size())
	}
	fmt.Println()
}
