// Live proxy deployment (paper Section VI-D): DynaMiner watches the
// interleaved HTTP traffic of a three-host mini-enterprise for 48 hours,
// clustering per-client sessions and alerting on the exploit deliveries
// embedded in routine browsing.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"
	"time"

	"dynaminer"
	"dynaminer/internal/synth"
)

func main() {
	train := dynaminer.Corpus(dynaminer.CorpusConfig{Seed: 1, Infections: 300, Benign: 380})
	clf, err := dynaminer.TrainForMonitoring(train, dynaminer.TrainConfig{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	start := time.Date(2016, 7, 10, 8, 0, 0, 0, time.UTC)
	capture := synth.GenerateEnterprise48h(start, rand.New(rand.NewSource(202)))
	fmt.Printf("proxy stream: %d transactions from 3 hosts over 48h, %d file downloads\n\n",
		len(capture.Txs), len(capture.Downloads))

	// Map client IPs back to host names for reporting. Host names off the
	// wire are case-insensitive, so the match folds case.
	ipToHost := make(map[string]string)
	for _, d := range capture.Downloads {
		for _, tx := range capture.Txs {
			if strings.EqualFold(tx.Host, d.Server) {
				ipToHost[tx.ClientIP.String()] = d.HostName
				break
			}
		}
	}

	// Shards spreads the three hosts' sessions over independently locked
	// engine shards; each client's verdicts are identical at any shard
	// count, so the replay below stays deterministic.
	monitor := dynaminer.NewMonitor(dynaminer.MonitorConfig{RedirectThreshold: 2, Shards: 4}, clf)
	perHost := make(map[string]int)
	for _, tx := range capture.Txs {
		for _, a := range monitor.Process(tx) {
			host := ipToHost[a.Client.String()]
			perHost[host]++
			fmt.Printf("ALERT %s host=%-12s payload=%-4s from %-20s score=%.2f\n",
				a.FormatTime("Jan 2 15:04"), host, a.TriggerPayload, a.TriggerHost, a.Score)
		}
	}

	fmt.Println("\nper-host alert summary:")
	for _, hp := range synth.Table6Hosts {
		fmt.Printf("  %-12s (%s): %d alerts\n", hp.Name, hp.OS, perHost[hp.Name])
	}
	st := monitor.Stats()
	fmt.Printf("\nengine: %d transactions, %d session clusters, %d clues, %d alerts\n",
		st.Transactions, st.Clusters, st.CluesFired, st.Alerts)
}
