// Quickstart: generate a labeled corpus, train the ERF classifier, and
// classify unseen conversations — the paper's Stage 1 in a dozen lines.
package main

import (
	"fmt"
	"log"

	"dynaminer"
)

func main() {
	// 1. Ground truth: a corpus statistically equivalent to the paper's
	//    770 infection + 980 benign traces (scaled down for speed here).
	train := dynaminer.Corpus(dynaminer.CorpusConfig{Seed: 1, Infections: 300, Benign: 380})

	// 2. Train the Ensemble Random Forest (N_t = 20, N_f = log2(37)+1).
	clf, err := dynaminer.Train(train, dynaminer.TrainConfig{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Classify conversations the model has never seen.
	unseen := dynaminer.Corpus(dynaminer.CorpusConfig{Seed: 42, Infections: 10, Benign: 10})
	correct := 0
	for i := range unseen {
		ep := &unseen[i]
		w := dynaminer.EpisodeWCG(ep)
		score := clf.Score(w)
		verdict := "benign   "
		if score > 0.5 {
			verdict = "INFECTION"
		}
		truth := "benign"
		if ep.Infection {
			truth = ep.Family
		}
		if (score > 0.5) == ep.Infection {
			correct++
		}
		fmt.Printf("%s score=%.2f  hosts=%-3d edges=%-4d truth=%s\n",
			verdict, score, w.Order(), w.Size(), truth)
	}
	fmt.Printf("\n%d/%d correct on unseen conversations\n", correct, len(unseen))
}
