// Proxy demo: DynaMiner deployed as a real forward HTTP proxy on
// localhost. A simulated web (one origin server routing by Host header)
// serves a benign page, an exploit-kit redirect chain, and a payload; a
// scripted browser walks into the trap through the proxy, DynaMiner raises
// an alert mid-download, and the victim's session is terminated.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"dynaminer"
)

// fakeWeb routes by logical Host header, standing in for the Internet.
func fakeWeb() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		// Host headers are case-insensitive DNS names: fold before routing
		// so "NEWS.Example" reaches the same virtual origin.
		host := strings.ToLower(r.Host)
		switch {
		case host == "news.example":
			w.Header().Set("Content-Type", "text/html")
			fmt.Fprint(w, `<html><h1>Totally normal news site</h1></html>`)
		case host == "ads.shady" && r.URL.Path == "/click":
			http.Redirect(w, r, "http://seo.shady/go", http.StatusFound)
		case host == "seo.shady" && r.URL.Path == "/go":
			http.Redirect(w, r, "http://tds.shady/gate", http.StatusFound)
		case host == "tds.shady" && r.URL.Path == "/gate":
			http.Redirect(w, r, "http://landing.shady/ek", http.StatusFound)
		case host == "landing.shady" && r.URL.Path == "/ek":
			w.Header().Set("Content-Type", "text/html")
			fmt.Fprint(w, `<html><iframe src="http://drop.shady/p.exe" width=1 height=1></iframe></html>`)
		case host == "landing.shady" && strings.HasSuffix(r.URL.Path, ".js"):
			w.Header().Set("Content-Type", "application/javascript")
			fmt.Fprint(w, "var plugins=navigator.plugins;/* fingerprinting */")
		case host == "198.18.76.2":
			w.Header().Set("Content-Type", "text/plain")
			fmt.Fprint(w, "ok")
		case host == "198.18.99.1":
			w.Header().Set("Content-Type", "text/plain")
			fmt.Fprint(w, "ok")
		case host == "drop.shady" && r.URL.Path == "/p.exe":
			w.Header().Set("Content-Type", "application/x-msdownload")
			fmt.Fprint(w, strings.Repeat("MZ", 4096))
		case host == "drop.shady":
			http.NotFound(w, r) // rotated payload URLs
		default:
			http.NotFound(w, r)
		}
	})
	return mux
}

// hostPinnedTransport rewrites every upstream request to the fake web
// while preserving the logical Host for routing.
type hostPinnedTransport struct{ target string }

func (t hostPinnedTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	u, err := url.Parse(t.target)
	if err != nil {
		return nil, err
	}
	clone := r.Clone(r.Context())
	clone.Host = r.URL.Host
	clone.URL.Scheme = u.Scheme
	clone.URL.Host = u.Host
	return http.DefaultTransport.RoundTrip(clone)
}

func main() {
	adminAddr := flag.String("admin-addr", "", "serve /metrics, /healthz, /snapshot, /debug/pprof/ and the POST /reload and /rollback model controls on this address (empty = no admin server)")
	journalPath := flag.String("journal", "", "append one JSONL provenance record per alert to this file")
	saveModel := flag.String("save-model", "", "write the trained model as a DMFB blob to this path (a ready-made artifact for POST /reload)")
	linger := flag.Bool("linger", false, "keep the proxy and admin endpoints serving after the scripted walk until SIGINT/SIGTERM")
	traceSample := flag.Int("trace-sample", 0, "record a pipeline trace for every Nth proxied request (0 = tracing off; slow and alert-raising requests are always kept)")
	flag.Parse()

	// Train the deployment-matched classifier.
	corpus := dynaminer.Corpus(dynaminer.CorpusConfig{Seed: 1, Infections: 250, Benign: 300})
	clf, err := dynaminer.TrainForMonitoring(corpus, dynaminer.TrainConfig{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	if *saveModel != "" {
		if err := clf.SaveBlobFile(*saveModel); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("model blob saved to %s\n", *saveModel)
	}

	web := httptest.NewServer(fakeWeb())
	defer web.Close()

	detCfg := dynaminer.MonitorConfig{RedirectThreshold: 3}
	var tracer *dynaminer.Tracer
	if *traceSample > 0 {
		// Tracer and engine must share a registry so the stage histograms
		// land next to the detector counters on /metrics.
		reg := dynaminer.NewMetricsRegistry()
		detCfg.Metrics = reg
		tracer = dynaminer.NewTracer(reg, dynaminer.TraceConfig{Sample: *traceSample})
		detCfg.Tracer = tracer
	}
	var j *dynaminer.Journal
	if *journalPath != "" {
		j, err = dynaminer.NewJournal(*journalPath)
		if err != nil {
			log.Fatal(err)
		}
		detCfg.Journal = j
	}

	// The journal must reach disk however the demo ends — a completed
	// walk, or SIGINT/SIGTERM mid-script. os.Exit skips defers, so the
	// signal path closes it explicitly before exiting.
	var drainOnce sync.Once
	drain := func() {
		drainOnce.Do(func() {
			if j != nil {
				if err := j.Close(); err != nil {
					fmt.Fprintln(os.Stderr, "journal close:", err)
				}
			}
		})
	}
	defer drain()
	stop := make(chan os.Signal, 2)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	go func() {
		defer func() { recover() }()
		<-stop
		fmt.Println("\nsignal: flushing journal and exiting")
		drain()
		os.Exit(0)
	}()

	p := dynaminer.NewProxy(dynaminer.ProxyConfig{
		Detector:        detCfg,
		BlockAfterAlert: true,
		Transport:       hostPinnedTransport{target: web.URL},
		OnAlert: func(a dynaminer.Alert) {
			fmt.Printf(">>> ALERT: %s payload from %s (score %.2f, WCG %d nodes)\n",
				a.TriggerPayload, a.TriggerHost, a.Score, a.WCG.Order())
		},
	}, clf)
	if *adminAddr != "" {
		adm, err := dynaminer.StartAdminWith(*adminAddr, dynaminer.AdminOptions{
			Extra:  dynaminer.ReloadHandlers(p, func() string { return *saveModel }),
			Health: p.Health,
			Tracer: tracer,
		}, p.Registry())
		if err != nil {
			log.Fatal(err)
		}
		defer adm.Close()
		fmt.Printf("admin endpoints on http://%s/ (metrics, healthz, snapshot, debug/pprof, reload, rollback)\n", adm.Addr())
	}
	proxySrv := httptest.NewServer(p)
	defer proxySrv.Close()
	proxyURL, err := url.Parse(proxySrv.URL)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DynaMiner proxy on %s, fake web on %s\n\n", proxySrv.URL, web.URL)

	browser := &http.Client{
		Transport: &http.Transport{Proxy: http.ProxyURL(proxyURL)},
		CheckRedirect: func(*http.Request, []*http.Request) error {
			return http.ErrUseLastResponse
		},
	}
	visit := func(rawurl, referer string) {
		req, err := http.NewRequest(http.MethodGet, rawurl, nil)
		if err != nil {
			log.Fatal(err)
		}
		if referer != "" {
			req.Header.Set("Referer", referer)
		}
		resp, err := browser.Do(req)
		if err != nil {
			log.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		_ = resp.Body.Close()
		fmt.Printf("GET %-28s -> %d (%d bytes)\n", rawurl, resp.StatusCode, len(body))
	}

	post := func(rawurl string) {
		resp, err := browser.Post(rawurl, "text/plain", strings.NewReader("id=victim"))
		if err != nil {
			log.Fatal(err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
		fmt.Printf("POST %-27s -> %d\n", rawurl, resp.StatusCode)
	}

	// Realistic pacing: browsers take hundreds of milliseconds per hop;
	// the classifier's temporal features are calibrated to that world.
	pace := func(d time.Duration) { time.Sleep(d) }

	fmt.Println("victim browses normally:")
	visit("http://news.example/", "")
	pace(1200 * time.Millisecond)

	fmt.Println("\nvictim clicks a malicious ad:")
	visit("http://ads.shady/click", "http://news.example/")
	pace(160 * time.Millisecond)
	visit("http://seo.shady/go", "http://ads.shady/click")
	pace(180 * time.Millisecond)
	visit("http://tds.shady/gate", "http://ads.shady/click")
	pace(220 * time.Millisecond)
	visit("http://landing.shady/ek", "http://tds.shady/gate")
	pace(150 * time.Millisecond)
	visit("http://landing.shady/fingerprint.js", "http://landing.shady/ek")
	pace(120 * time.Millisecond)
	visit("http://landing.shady/plugins.js", "http://landing.shady/ek")
	pace(400 * time.Millisecond)
	visit("http://drop.shady/old-build", "http://landing.shady/ek") // stale payload URL: 404
	pace(200 * time.Millisecond)
	visit("http://drop.shady/p.exe", "http://landing.shady/ek")
	pace(2 * time.Second)
	post("http://198.18.99.1/beacon.php")
	pace(1500 * time.Millisecond)
	post("http://198.18.76.2/beacon.php")

	fmt.Println("\nvictim tries to keep browsing — the session is terminated:")
	visit("http://news.example/", "")

	st := p.Stats()
	fmt.Printf("\nproxy stats: %d requests relayed, %d alerts, %d clients blocked, %d refused\n",
		st.Relayed, st.Alerts, st.BlockedClients, st.Refused)
	if *journalPath != "" {
		if err := j.Sync(); err != nil {
			log.Fatal(err)
		}
		recs, err := dynaminer.ReadJournalFile(*journalPath)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("journal: %d provenance record(s) in %s (render with `dynaminer journal %[2]s`)\n",
			len(recs), *journalPath)
	}
	if *linger {
		fmt.Printf("\nlingering: proxy %s live, model %s serving; SIGINT/SIGTERM to exit\n",
			proxySrv.URL, p.ModelVersion())
		select {} // the signal goroutine drains and exits the process
	}
}
