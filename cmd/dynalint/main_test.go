package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree materializes a map of relative path -> contents under a temp
// root.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for rel, content := range files {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

const dirtyFile = `package p

type req struct{ Host string }

func cmp(r req, s string) bool { return r.Host == s }
`

const cleanFile = `package p

import "strings"

type req struct{ Host string }

func cmp(r req, s string) bool { return strings.EqualFold(r.Host, s) }
`

func TestDriverReportsFindingsAndExitCode(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/a/a.go": dirtyFile,
		"internal/b/b.go": cleanFile,
	})
	var stdout, stderr bytes.Buffer
	code := run([]string{"-root", root}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "internal/a/a.go:5: hostfold:") {
		t.Fatalf("finding not in canonical file:line: analyzer: message form:\n%s", out)
	}
	if strings.Contains(out, "b.go") {
		t.Fatalf("clean file reported:\n%s", out)
	}
}

func TestDriverCleanTreeExitsZero(t *testing.T) {
	root := writeTree(t, map[string]string{"lib/ok.go": cleanFile})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-root", root}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0; out: %s%s", code, stdout.String(), stderr.String())
	}
}

func TestDriverSkipFlag(t *testing.T) {
	root := writeTree(t, map[string]string{
		"third_party/dep/dep.go": dirtyFile,
		"testdata/fix.go":        dirtyFile,
		"gen/wire.go":            dirtyFile,
	})
	var stdout, stderr bytes.Buffer
	code := run([]string{"-root", root, "-skip", "testdata,third_party,gen"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0 (all paths skipped); out:\n%s", code, stdout.String())
	}
}

func TestDriverDefaultSkipsTestdataAndTests(t *testing.T) {
	root := writeTree(t, map[string]string{
		"pkg/testdata/fixture.go": dirtyFile,
		"pkg/pkg_test.go":         strings.Replace(dirtyFile, "package p", "package p_test", 1),
		"pkg/ok.go":               cleanFile,
	})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-root", root}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0; out:\n%s", code, stdout.String())
	}
	// -tests pulls the _test.go file back in.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-root", root, "-tests"}, &stdout, &stderr); code != 1 {
		t.Fatalf("-tests exit code = %d, want 1; out:\n%s", code, stdout.String())
	}
	if !strings.Contains(stdout.String(), "pkg_test.go") {
		t.Fatalf("-tests did not lint the test file:\n%s", stdout.String())
	}
}

func TestDriverParseErrorExitsTwo(t *testing.T) {
	root := writeTree(t, map[string]string{"broken/broken.go": "package {"})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-root", root}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2; stderr: %s", code, stderr.String())
	}
}

func TestDriverListAnalyzers(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	for _, name := range []string{"hostfold", "zerotime", "lockscope", "floatsafe", "scratchsafe"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, stdout.String())
		}
	}
}

// TestRepoIsClean runs the driver over this repository itself — the
// make-lint gate in test form: the tree must stay free of findings.
func TestRepoIsClean(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-root", "../.."}, &stdout, &stderr); code != 0 {
		t.Fatalf("dynalint over the repo exited %d:\n%s%s", code, stdout.String(), stderr.String())
	}
}
