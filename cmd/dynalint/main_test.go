package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree materializes a map of relative path -> contents under a temp
// root.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for rel, content := range files {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

const dirtyFile = `package p

type req struct{ Host string }

func cmp(r req, s string) bool { return r.Host == s }
`

const cleanFile = `package p

import "strings"

type req struct{ Host string }

func cmp(r req, s string) bool { return strings.EqualFold(r.Host, s) }
`

func TestDriverReportsFindingsAndExitCode(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/a/a.go": dirtyFile,
		"internal/b/b.go": cleanFile,
	})
	var stdout, stderr bytes.Buffer
	code := run([]string{"-root", root}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "internal/a/a.go:5: hostfold:") {
		t.Fatalf("finding not in canonical file:line: analyzer: message form:\n%s", out)
	}
	if strings.Contains(out, "b.go") {
		t.Fatalf("clean file reported:\n%s", out)
	}
}

func TestDriverCleanTreeExitsZero(t *testing.T) {
	root := writeTree(t, map[string]string{"lib/ok.go": cleanFile})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-root", root}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0; out: %s%s", code, stdout.String(), stderr.String())
	}
}

func TestDriverSkipFlag(t *testing.T) {
	root := writeTree(t, map[string]string{
		"third_party/dep/dep.go": dirtyFile,
		"testdata/fix.go":        dirtyFile,
		"gen/wire.go":            dirtyFile,
	})
	var stdout, stderr bytes.Buffer
	code := run([]string{"-root", root, "-skip", "testdata,third_party,gen"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0 (all paths skipped); out:\n%s", code, stdout.String())
	}
}

func TestDriverDefaultSkipsTestdataAndTests(t *testing.T) {
	root := writeTree(t, map[string]string{
		"pkg/testdata/fixture.go": dirtyFile,
		"pkg/pkg_test.go":         strings.Replace(dirtyFile, "package p", "package p_test", 1),
		"pkg/ok.go":               cleanFile,
	})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-root", root}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0; out:\n%s", code, stdout.String())
	}
	// -tests pulls the _test.go file back in.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-root", root, "-tests"}, &stdout, &stderr); code != 1 {
		t.Fatalf("-tests exit code = %d, want 1; out:\n%s", code, stdout.String())
	}
	if !strings.Contains(stdout.String(), "pkg_test.go") {
		t.Fatalf("-tests did not lint the test file:\n%s", stdout.String())
	}
}

func TestDriverParseErrorExitsTwo(t *testing.T) {
	root := writeTree(t, map[string]string{"broken/broken.go": "package {"})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-root", root}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2; stderr: %s", code, stderr.String())
	}
}

func TestDriverListAnalyzers(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	for _, name := range []string{"hostfold", "zerotime", "lockscope", "floatsafe", "scratchsafe"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, stdout.String())
		}
	}
}

// TestRepoIsClean runs the driver over this repository itself — the
// make-lint gate in test form: the tree must stay free of findings.
func TestRepoIsClean(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-root", "../.."}, &stdout, &stderr); code != 0 {
		t.Fatalf("dynalint over the repo exited %d:\n%s%s", code, stdout.String(), stderr.String())
	}
}

// --- dynalint v2: typed driver behavior ---

// TestDriverDegradesWithoutGoMod: a tree without go.mod cannot be
// type-checked, so the driver warns once on stderr and still reports the
// syntactic findings with the usual exit code.
func TestDriverDegradesWithoutGoMod(t *testing.T) {
	root := writeTree(t, map[string]string{"internal/a/a.go": dirtyFile})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-root", root}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "syntactic-only") {
		t.Fatalf("missing degradation warning on stderr:\n%s", stderr.String())
	}
	if !strings.Contains(stdout.String(), "internal/a/a.go:5: hostfold:") {
		t.Fatalf("degraded run lost the finding:\n%s", stdout.String())
	}
}

// TestDriverTypeCheckFailureDegrades: with a go.mod present but a
// package that references an unresolvable import, the driver warns that
// type checking failed for that package and falls back to syntactic
// analysis instead of crashing or going silent.
func TestDriverTypeCheckFailureDegrades(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod": "module example.com/degrade\n\ngo 1.22\n",
		"internal/a/a.go": `package p

import "example.com/degrade/internal/missing"

type req struct{ Host string }

func cmp(r req, s string) bool { return r.Host == missing.Name }
`,
	})
	var stdout, stderr bytes.Buffer
	code := run([]string{"-root", root}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stdout: %s stderr: %s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stderr.String(), "falling back to syntactic analysis") {
		t.Fatalf("missing per-package degradation warning:\n%s", stderr.String())
	}
	if !strings.Contains(stdout.String(), "hostfold:") {
		t.Fatalf("degraded package lost its syntactic finding:\n%s", stdout.String())
	}
}

// TestDriverJSONOutput: -json emits NDJSON, one object per finding with
// stable field names, and nothing else on stdout.
func TestDriverJSONOutput(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/a/a.go": dirtyFile,
		"internal/b/b.go": cleanFile,
	})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-root", root, "-json"}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, stderr.String())
	}
	lines := strings.Split(strings.TrimRight(stdout.String(), "\n"), "\n")
	if len(lines) != 1 {
		t.Fatalf("want exactly 1 NDJSON line, got %d:\n%s", len(lines), stdout.String())
	}
	var f jsonFinding
	if err := json.Unmarshal([]byte(lines[0]), &f); err != nil {
		t.Fatalf("unmarshal %q: %v", lines[0], err)
	}
	if f.File != "internal/a/a.go" || f.Line != 5 || f.Col == 0 || f.Analyzer != "hostfold" || f.Message == "" {
		t.Fatalf("unexpected finding fields: %+v", f)
	}
	for _, key := range []string{`"file"`, `"line"`, `"col"`, `"analyzer"`, `"message"`} {
		if !strings.Contains(lines[0], key) {
			t.Errorf("NDJSON line missing %s field: %s", key, lines[0])
		}
	}
}

// TestDriverJSONCleanTree: -json on a clean tree writes nothing and
// exits zero, so `dynalint -json | jq` pipelines see an empty stream.
func TestDriverJSONCleanTree(t *testing.T) {
	root := writeTree(t, map[string]string{"lib/ok.go": cleanFile})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-root", root, "-json"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0; out: %s%s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Fatalf("clean -json run wrote to stdout: %q", stdout.String())
	}
}

// TestDriverParallelDeterminism: output must not depend on the worker
// count — findings are stitched back in package order, so one worker and
// eight workers produce byte-identical stdout.
func TestDriverParallelDeterminism(t *testing.T) {
	files := map[string]string{"go.mod": "module example.com/par\n\ngo 1.22\n"}
	for _, pkg := range []string{"alpha", "bravo", "charlie", "delta", "echo", "foxtrot"} {
		files["internal/"+pkg+"/"+pkg+".go"] = dirtyFile
	}
	root := writeTree(t, files)
	runWith := func(workers string) string {
		var stdout, stderr bytes.Buffer
		if code := run([]string{"-root", root, "-workers", workers}, &stdout, &stderr); code != 1 {
			t.Fatalf("-workers %s exit code = %d, want 1; stderr: %s", workers, code, stderr.String())
		}
		return stdout.String()
	}
	serial, parallel := runWith("1"), runWith("8")
	if serial != parallel {
		t.Fatalf("worker count changed output.\n-workers 1:\n%s\n-workers 8:\n%s", serial, parallel)
	}
	if got := strings.Count(serial, "hostfold:"); got != 6 {
		t.Fatalf("want 6 findings, got %d:\n%s", got, serial)
	}
}
