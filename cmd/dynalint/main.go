// Command dynalint runs the project's invariant analyzers (see
// internal/analysis) over the module tree and reports every violation in
// "file:line: analyzer: message" form. It exits 0 when the tree is
// clean, 1 when it has findings, and 2 on usage or parse errors, so it
// slots into make lint and CI gates.
//
// Usage:
//
//	dynalint [-root dir] [-skip list] [-tests] [-list]
//
// -skip is a comma-separated list of path fragments; any file or
// directory whose module-relative path contains one of them is excluded.
// The default skips testdata and vendored trees. _test.go files are
// excluded unless -tests is given: test fixtures intentionally exercise
// mixed-case hosts and zero times, and the invariants bind production
// code.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"dynaminer/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with injectable streams, for tests.
func run(args []string, stdout, stderr io.Writer) int {
	fl := flag.NewFlagSet("dynalint", flag.ContinueOnError)
	fl.SetOutput(stderr)
	root := fl.String("root", ".", "module directory to analyze")
	skip := fl.String("skip", "testdata,vendor,.git", "comma-separated path fragments to exclude")
	tests := fl.Bool("tests", false, "also analyze _test.go files")
	list := fl.Bool("list", false, "list the analyzers and exit")
	if err := fl.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%-10s %s\n", a.Name(), a.Doc())
		}
		return 0
	}
	findings, err := lintTree(*root, splitSkips(*skip), *tests)
	if err != nil {
		fmt.Fprintf(stderr, "dynalint: %v\n", err)
		return 2
	}
	for _, f := range findings {
		fmt.Fprintln(stdout, f.String())
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "dynalint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// splitSkips normalizes the -skip list.
func splitSkips(s string) []string {
	var out []string
	for _, frag := range strings.Split(s, ",") {
		if frag = strings.TrimSpace(frag); frag != "" {
			out = append(out, frag)
		}
	}
	return out
}

// skipped reports whether a module-relative slash path matches any skip
// fragment.
func skipped(rel string, skips []string) bool {
	for _, frag := range skips {
		if strings.Contains(rel, frag) {
			return true
		}
	}
	return false
}

// lintTree walks root, parses every kept package, and runs the full
// analyzer suite, returning findings with root-relative filenames.
func lintTree(root string, skips []string, tests bool) ([]analysis.Finding, error) {
	byDir := map[string][]string{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, relErr := filepath.Rel(root, path)
		if relErr != nil {
			return relErr
		}
		rel = filepath.ToSlash(rel)
		if d.IsDir() {
			if rel != "." && (strings.HasPrefix(d.Name(), ".") || skipped(rel+"/", skips)) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".go") || skipped(rel, skips) {
			return nil
		}
		if !tests && strings.HasSuffix(d.Name(), "_test.go") {
			return nil
		}
		byDir[filepath.Dir(rel)] = append(byDir[filepath.Dir(rel)], path)
		return nil
	})
	if err != nil {
		return nil, err
	}

	dirs := make([]string, 0, len(byDir))
	for dir := range byDir {
		dirs = append(dirs, dir)
	}
	sort.Strings(dirs)

	var all []analysis.Finding
	for _, dir := range dirs {
		sort.Strings(byDir[dir])
		fset := token.NewFileSet()
		// A directory can hold more than one package (e.g. an external
		// test package); analyze each separately.
		byPkg := map[string][]*ast.File{}
		for _, path := range byDir[dir] {
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			byPkg[f.Name.Name] = append(byPkg[f.Name.Name], f)
		}
		pkgPath := dir
		if pkgPath == "." {
			pkgPath = ""
		}
		pkgNames := make([]string, 0, len(byPkg))
		for name := range byPkg {
			pkgNames = append(pkgNames, name)
		}
		sort.Strings(pkgNames)
		for _, name := range pkgNames {
			pass := analysis.NewPass(fset, pkgPath, byPkg[name])
			findings := analysis.Run(pass, analysis.All())
			for i := range findings {
				if rel, err := filepath.Rel(root, findings[i].Pos.Filename); err == nil {
					findings[i].Pos.Filename = filepath.ToSlash(rel)
				}
			}
			all = append(all, findings...)
		}
	}
	return all, nil
}
