// Command dynalint runs the project's invariant analyzers (see
// internal/analysis) over the module tree and reports every violation in
// "file:line: analyzer: message" form (or one JSON object per finding
// with -json). It exits 0 when the tree is clean, 1 when it has
// findings, and 2 on usage or parse errors, so it slots into make lint
// and CI gates.
//
// Usage:
//
//	dynalint [-root dir] [-skip list] [-tests] [-list] [-json] [-workers n]
//
// The driver type-checks each package with go/types, resolving imports
// through `go list -export` data, and threads the result through the
// analyzers; a package that fails to type-check (or a tree without a
// go.mod) is analyzed syntactically instead, with a warning on stderr —
// type information sharpens the analyzers but its absence never fails
// the run. Packages are analyzed in parallel (-workers, default
// GOMAXPROCS); output order is independent of worker count.
//
// -skip is a comma-separated list of path fragments; any file or
// directory whose module-relative path contains one of them is excluded.
// The default skips testdata and vendored trees. _test.go files are
// excluded unless -tests is given: test fixtures intentionally exercise
// mixed-case hosts and zero times, and the invariants bind production
// code.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"

	"dynaminer/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with injectable streams, for tests.
func run(args []string, stdout, stderr io.Writer) int {
	fl := flag.NewFlagSet("dynalint", flag.ContinueOnError)
	fl.SetOutput(stderr)
	root := fl.String("root", ".", "module directory to analyze")
	skip := fl.String("skip", "testdata,vendor,.git", "comma-separated path fragments to exclude")
	tests := fl.Bool("tests", false, "also analyze _test.go files")
	list := fl.Bool("list", false, "list the analyzers and exit")
	jsonOut := fl.Bool("json", false, "emit findings as JSON, one object per line")
	workers := fl.Int("workers", runtime.GOMAXPROCS(0), "packages analyzed concurrently (1 = serial)")
	if err := fl.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%-11s %s\n", a.Name(), a.Doc())
		}
		return 0
	}
	findings, err := lintTree(*root, splitSkips(*skip), *tests, *workers, stderr)
	if err != nil {
		fmt.Fprintf(stderr, "dynalint: %v\n", err)
		return 2
	}
	if *jsonOut {
		if err := writeJSON(stdout, findings); err != nil {
			fmt.Fprintf(stderr, "dynalint: %v\n", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f.String())
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "dynalint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// jsonFinding is the machine-readable finding shape. Field names are a
// stable contract for CI tooling; add fields, never rename them.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// writeJSON emits one JSON object per finding, newline-delimited.
func writeJSON(w io.Writer, findings []analysis.Finding) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, f := range findings {
		jf := jsonFinding{
			File:     f.Pos.Filename,
			Line:     f.Pos.Line,
			Col:      f.Pos.Column,
			Analyzer: f.Analyzer,
			Message:  f.Message,
		}
		if err := enc.Encode(jf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// splitSkips normalizes the -skip list.
func splitSkips(s string) []string {
	var out []string
	for _, frag := range strings.Split(s, ",") {
		if frag = strings.TrimSpace(frag); frag != "" {
			out = append(out, frag)
		}
	}
	return out
}

// skipped reports whether a module-relative slash path matches any skip
// fragment.
func skipped(rel string, skips []string) bool {
	for _, frag := range skips {
		if strings.Contains(rel, frag) {
			return true
		}
	}
	return false
}

// pkgJob is one package to analyze: its module-relative directory,
// declared name, and parsed files (all on the shared FileSet).
type pkgJob struct {
	dir     string
	pkgName string
	files   []*ast.File
}

// moduleName extracts the module path from root/go.mod, or "" when the
// tree has none (syntactic-only mode).
func moduleName(root string) string {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest)
		}
	}
	return ""
}

// lintTree walks root, parses every kept package onto one shared
// FileSet, type-checks what it can, and runs the full analyzer suite —
// packages in parallel across `workers` goroutines, results stitched
// back in deterministic (dir, package) order. Findings carry
// root-relative filenames; degraded packages warn on stderr.
func lintTree(root string, skips []string, tests bool, workers int, stderr io.Writer) ([]analysis.Finding, error) {
	byDir := map[string][]string{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, relErr := filepath.Rel(root, path)
		if relErr != nil {
			return relErr
		}
		rel = filepath.ToSlash(rel)
		if d.IsDir() {
			if rel != "." && (strings.HasPrefix(d.Name(), ".") || skipped(rel+"/", skips)) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".go") || skipped(rel, skips) {
			return nil
		}
		if !tests && strings.HasSuffix(d.Name(), "_test.go") {
			return nil
		}
		byDir[filepath.Dir(rel)] = append(byDir[filepath.Dir(rel)], path)
		return nil
	})
	if err != nil {
		return nil, err
	}

	dirs := make([]string, 0, len(byDir))
	for dir := range byDir {
		dirs = append(dirs, dir)
	}
	sort.Strings(dirs)

	// One FileSet for the whole run: the type checker's import cache and
	// every Pass must agree on positions.
	fset := token.NewFileSet()
	var jobs []pkgJob
	for _, dir := range dirs {
		sort.Strings(byDir[dir])
		// A directory can hold more than one package (e.g. an external
		// test package); analyze each separately.
		byPkg := map[string][]*ast.File{}
		for _, path := range byDir[dir] {
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			byPkg[f.Name.Name] = append(byPkg[f.Name.Name], f)
		}
		pkgNames := make([]string, 0, len(byPkg))
		for name := range byPkg {
			pkgNames = append(pkgNames, name)
		}
		sort.Strings(pkgNames)
		for _, name := range pkgNames {
			jobs = append(jobs, pkgJob{dir: dir, pkgName: name, files: byPkg[name]})
		}
	}

	modPath := moduleName(root)
	var checker *analysis.Checker
	if modPath == "" {
		fmt.Fprintf(stderr, "dynalint: warning: no go.mod under %s; running syntactic-only analysis\n", root)
	} else {
		checker = analysis.NewChecker(fset, root)
		checker.Tests = tests
	}

	if workers < 1 {
		workers = 1
	}
	results := make([][]analysis.Finding, len(jobs))
	warnings := make([]string, len(jobs))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i], warnings[i] = lintPackage(fset, modPath, checker, jobs[i])
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()

	var all []analysis.Finding
	for i := range jobs {
		if warnings[i] != "" {
			fmt.Fprintf(stderr, "dynalint: warning: %s\n", warnings[i])
		}
		findings := results[i]
		for j := range findings {
			if rel, err := filepath.Rel(root, findings[j].Pos.Filename); err == nil {
				findings[j].Pos.Filename = filepath.ToSlash(rel)
			}
		}
		all = append(all, findings...)
	}
	return all, nil
}

// lintPackage analyzes one package, typed when the checker succeeds and
// syntactic otherwise. The returned warning is non-empty on degradation.
func lintPackage(fset *token.FileSet, modPath string, checker *analysis.Checker, job pkgJob) ([]analysis.Finding, string) {
	pkgPath := job.dir
	if pkgPath == "." {
		pkgPath = ""
	}
	pass := analysis.NewPass(fset, pkgPath, job.files)
	warning := ""
	if checker != nil {
		importPath := modPath
		if pkgPath != "" {
			importPath += "/" + pkgPath
		}
		info, pkg, err := checker.Check(importPath, job.files)
		if err != nil {
			warning = fmt.Sprintf("%s: type checking failed (%v); falling back to syntactic analysis", importPath, err)
		} else {
			pass.Info, pass.Pkg = info, pkg
		}
	}
	return analysis.Run(pass, analysis.All()), warning
}
