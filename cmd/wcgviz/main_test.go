package main

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestWcgvizExampleDOT(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-example", "-seed", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"digraph wcg", "lightblue", "->"} {
		if !strings.Contains(s, want) {
			t.Fatalf("DOT output missing %q", want)
		}
	}
}

func TestWcgvizExampleJSON(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-example", "-seed", "3", "-json"}, &out); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal([]byte(out.String()), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if _, ok := decoded["nodes"]; !ok {
		t.Fatal("JSON missing nodes")
	}
}

func TestWcgvizUsageError(t *testing.T) {
	if err := run(nil, &strings.Builder{}); err == nil {
		t.Fatal("no args must error")
	}
	if err := run([]string{"missing.pcap"}, &strings.Builder{}); err == nil {
		t.Fatal("missing capture must error")
	}
}

func TestWcgvizExampleGraphML(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-example", "-seed", "3", "-graphml"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "<graphml") {
		t.Fatal("graphml output missing header")
	}
}
