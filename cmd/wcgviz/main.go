// Command wcgviz renders the web conversation graph of a capture as
// Graphviz DOT, in the style of the paper's Figure 6.
//
//	wcgviz capture.pcap > wcg.dot
//	wcgviz -example     > angler.dot   (synthetic Angler episode)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"dynaminer"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "wcgviz:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("wcgviz", flag.ContinueOnError)
	var (
		example = fs.Bool("example", false, "render a synthetic Angler infection instead of a capture")
		seed    = fs.Int64("seed", 6, "seed for -example")
		title   = fs.String("title", "", "graph title")
		asJSON  = fs.Bool("json", false, "emit the annotated graph as JSON instead of DOT")
		asGML   = fs.Bool("graphml", false, "emit the annotated graph as GraphML instead of DOT")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var w *dynaminer.WCG
	switch {
	case *example:
		eps := dynaminer.Corpus(dynaminer.CorpusConfig{Seed: *seed, Infections: 1, Benign: 1})
		for i := range eps {
			if eps[i].Infection {
				w = dynaminer.EpisodeWCG(&eps[i])
			}
		}
		if *title == "" {
			*title = "synthetic exploit-kit WCG"
		}
	case fs.NArg() == 1:
		txs, err := dynaminer.ReadPCAPFile(fs.Arg(0))
		if err != nil {
			return err
		}
		w = dynaminer.BuildWCG(txs)
		if *title == "" {
			*title = fs.Arg(0)
		}
	default:
		return fmt.Errorf("usage: wcgviz [-example] [capture.pcap]")
	}
	if *asJSON {
		return w.WriteJSON(stdout)
	}
	if *asGML {
		return w.WriteGraphML(stdout)
	}
	fmt.Fprint(stdout, w.DOT(*title))
	return nil
}
