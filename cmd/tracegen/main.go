// Command tracegen synthesizes a labeled ground-truth corpus as pcap files
// plus a manifest, standing in for the paper's malware-traffic-analysis.net
// dataset. Each episode becomes one capture file; manifest.csv maps file
// names to labels, families, and enticement categories.
//
// Usage:
//
//	tracegen -out corpus/ -infections 770 -benign 980 -seed 1
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"dynaminer"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	var (
		out        = fs.String("out", "corpus", "output directory")
		infections = fs.Int("infections", 770, "number of infection episodes")
		benign     = fs.Int("benign", 980, "number of benign episodes")
		seed       = fs.Int64("seed", 1, "generator seed")
		format     = fs.String("format", "pcap", `capture format: "pcap" or "pcapng"`)
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *format != "pcap" && *format != "pcapng" {
		return fmt.Errorf("unknown format %q", *format)
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	eps := dynaminer.Corpus(dynaminer.CorpusConfig{
		Seed: *seed, Infections: *infections, Benign: *benign,
	})
	manifest, err := os.Create(filepath.Join(*out, "manifest.csv"))
	if err != nil {
		return err
	}
	defer manifest.Close()
	fmt.Fprintln(manifest, "file,label,family,enticement,transactions")

	for i := range eps {
		label := "benign"
		if eps[i].Infection {
			label = "infection"
		}
		name := fmt.Sprintf("%s-%05d.%s", label, i, *format)
		f, err := os.Create(filepath.Join(*out, name))
		if err != nil {
			return err
		}
		var werr error
		if *format == "pcapng" {
			werr = eps[i].WritePCAPNG(f)
		} else {
			werr = eps[i].WritePCAP(f)
		}
		if werr != nil {
			_ = f.Close()
			return fmt.Errorf("write %s: %w", name, werr)
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(manifest, "%s,%s,%s,%s,%d\n", name, label, eps[i].Family, eps[i].Enticement, len(eps[i].Txs))
	}
	fmt.Fprintf(stdout, "wrote %d captures to %s\n", len(eps), *out)
	return nil
}
