package main

import (
	"bufio"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestTracegenWritesCorpus(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	err := run([]string{"-out", dir, "-infections", "3", "-benign", "2", "-seed", "9"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "wrote 5 captures") {
		t.Fatalf("output = %q", out.String())
	}
	mf, err := os.Open(filepath.Join(dir, "manifest.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer mf.Close()
	sc := bufio.NewScanner(mf)
	lines := 0
	for sc.Scan() {
		lines++
		if lines == 1 {
			if !strings.HasPrefix(sc.Text(), "file,label,") {
				t.Fatalf("header = %q", sc.Text())
			}
			continue
		}
		fields := strings.Split(sc.Text(), ",")
		if len(fields) != 5 {
			t.Fatalf("manifest row = %q", sc.Text())
		}
		if _, err := os.Stat(filepath.Join(dir, fields[0])); err != nil {
			t.Fatalf("capture %s missing: %v", fields[0], err)
		}
	}
	if lines != 6 { // header + 5 rows
		t.Fatalf("manifest lines = %d", lines)
	}
}

func TestTracegenBadFlags(t *testing.T) {
	if err := run([]string{"-nonsense"}, &strings.Builder{}); err == nil {
		t.Fatal("bad flag must error")
	}
	if err := run([]string{"-out", "/dev/null/impossible"}, &strings.Builder{}); err == nil {
		t.Fatal("unwritable output dir must error")
	}
}

func TestTracegenPCAPNGFormat(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	if err := run([]string{"-out", dir, "-infections", "1", "-benign", "1", "-format", "pcapng"}, &out); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	ng := 0
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".pcapng") {
			ng++
		}
	}
	if ng != 2 {
		t.Fatalf("pcapng files = %d, want 2", ng)
	}
	if err := run([]string{"-format", "hdf5"}, &out); err == nil {
		t.Fatal("unknown format must error")
	}
}
