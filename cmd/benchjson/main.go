// Command benchjson parses `go test -bench` text output into a JSON
// record, so benchmark runs can be committed and diffed between PRs
// (BENCH_*.json at the repo root). It reads the benchmark output on
// stdin and writes the record to -o (default stdout).
//
//	go test -run '^$' -bench . -benchmem . | go run ./cmd/benchjson -o BENCH_5.json
//
// -gate asserts an ns/op ratio between two benchmarks in the same run
// and exits non-zero when it is violated, so CI can pin overhead
// regressions (e.g. the observability layer's classify cost); several
// assertions are comma-separated:
//
//	... | go run ./cmd/benchjson -gate 'ClassifyInstrumented/ClassifyIncremental<=1.05'
//	... | go run ./cmd/benchjson -gate 'A/B<=1.05,C/B<=1.1'
//
// -baseline compares the current run against a committed prior record,
// gating the cross-PR ratio of one benchmark's ns/op:
//
//	... | go run ./cmd/benchjson -o BENCH_9.json \
//	      -baseline BENCH_8.json -baseline-gate 'ClassifyIncremental<=1.05'
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line. Metrics maps unit -> value and
// carries both the standard columns (ns/op, B/op, allocs/op) and any
// custom b.ReportMetric units.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Record is the whole run: the environment header lines go test prints
// before the first benchmark, then every benchmark in output order.
type Record struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// parseLine parses one "BenchmarkName  N  value unit  value unit ..."
// line; ok is false for non-benchmark lines (headers, PASS, ok).
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{
		Name:       strings.TrimPrefix(fields[0], "Benchmark"),
		Iterations: iters,
		Metrics:    map[string]float64{},
	}
	// The rest of the line is value/unit pairs.
	rest := fields[2:]
	if len(rest)%2 != 0 {
		return Benchmark{}, false
	}
	for i := 0; i < len(rest); i += 2 {
		v, err := strconv.ParseFloat(rest[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[rest[i+1]] = v
	}
	return b, true
}

// parse consumes the input stream: either raw `go test -bench` text, or
// an already-parsed BENCH_*.json record (detected by a leading '{'), so
// committed records can be re-gated without re-running the benchmarks.
func parse(r io.Reader) (Record, error) {
	br := bufio.NewReader(r)
	if lead, err := br.Peek(1); err == nil && lead[0] == '{' {
		var rec Record
		if err := json.NewDecoder(br).Decode(&rec); err != nil {
			return Record{}, fmt.Errorf("record JSON: %v", err)
		}
		return rec, nil
	}
	return parseBenchText(br)
}

// parseBenchText consumes raw `go test -bench` output.
func parseBenchText(r io.Reader) (Record, error) {
	var rec Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if b, ok := parseLine(line); ok {
			rec.Benchmarks = append(rec.Benchmarks, b)
			continue
		}
		if k, v, ok := strings.Cut(line, ": "); ok {
			switch k {
			case "goos":
				rec.Goos = v
			case "goarch":
				rec.Goarch = v
			case "pkg":
				rec.Pkg = v
			case "cpu":
				rec.CPU = v
			}
		}
	}
	return rec, sc.Err()
}

// nsPerOp finds a benchmark's ns/op by name, ignoring the -GOMAXPROCS
// suffix go test appends ("ClassifyIncremental" matches
// "ClassifyIncremental-8").
func nsPerOp(rec Record, name string) (float64, error) {
	for _, b := range rec.Benchmarks {
		base, _, _ := strings.Cut(b.Name, "-")
		if base != name {
			continue
		}
		v, ok := b.Metrics["ns/op"]
		if !ok {
			return 0, fmt.Errorf("benchmark %s has no ns/op metric", b.Name)
		}
		return v, nil
	}
	return 0, fmt.Errorf("benchmark %s not in this run", name)
}

// checkGate enforces one or more comma-separated "Num/Den<=Limit"
// ns/op ratio assertions against the parsed run.
func checkGate(rec Record, specs string) error {
	for _, spec := range strings.Split(specs, ",") {
		if err := checkOneGate(rec, strings.TrimSpace(spec)); err != nil {
			return err
		}
	}
	return nil
}

// checkOneGate enforces a single "Num/Den<=Limit" assertion.
func checkOneGate(rec Record, spec string) error {
	pair, limitStr, ok := strings.Cut(spec, "<=")
	if !ok {
		return fmt.Errorf("gate %q: want 'Num/Den<=Limit'", spec)
	}
	numName, denName, ok := strings.Cut(pair, "/")
	if !ok {
		return fmt.Errorf("gate %q: want 'Num/Den<=Limit'", spec)
	}
	limit, err := strconv.ParseFloat(strings.TrimSpace(limitStr), 64)
	if err != nil {
		return fmt.Errorf("gate %q: bad limit: %v", spec, err)
	}
	num, err := nsPerOp(rec, strings.TrimSpace(numName))
	if err != nil {
		return err
	}
	den, err := nsPerOp(rec, strings.TrimSpace(denName))
	if err != nil {
		return err
	}
	if den == 0 {
		return fmt.Errorf("gate %q: denominator ran in 0 ns/op", spec)
	}
	ratio := num / den
	fmt.Fprintf(os.Stderr, "benchjson: gate %s/%s = %.3f (limit %g)\n",
		strings.TrimSpace(numName), strings.TrimSpace(denName), ratio, limit)
	if ratio > limit {
		return fmt.Errorf("gate violated: %s/%s = %.3f > %g", numName, denName, ratio, limit)
	}
	return nil
}

// loadRecord reads a previously committed BENCH_*.json record.
func loadRecord(path string) (Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Record{}, err
	}
	var rec Record
	if err := json.Unmarshal(data, &rec); err != nil {
		return Record{}, fmt.Errorf("%s: %v", path, err)
	}
	return rec, nil
}

// checkBaselineGate enforces a "Name<=Limit" cross-run ns/op ratio: the
// current run's Name must be at most Limit times the baseline record's.
func checkBaselineGate(cur, base Record, basePath, spec string) error {
	name, limitStr, ok := strings.Cut(spec, "<=")
	if !ok {
		return fmt.Errorf("baseline gate %q: want 'Name<=Limit'", spec)
	}
	name = strings.TrimSpace(name)
	limit, err := strconv.ParseFloat(strings.TrimSpace(limitStr), 64)
	if err != nil {
		return fmt.Errorf("baseline gate %q: bad limit: %v", spec, err)
	}
	curNs, err := nsPerOp(cur, name)
	if err != nil {
		return fmt.Errorf("current run: %v", err)
	}
	baseNs, err := nsPerOp(base, name)
	if err != nil {
		return fmt.Errorf("baseline %s: %v", basePath, err)
	}
	if baseNs == 0 {
		return fmt.Errorf("baseline gate %q: baseline ran in 0 ns/op", spec)
	}
	ratio := curNs / baseNs
	fmt.Fprintf(os.Stderr, "benchjson: baseline gate %s = %.3f vs %s (limit %g)\n",
		name, ratio, basePath, limit)
	if ratio > limit {
		return fmt.Errorf("baseline gate violated: %s = %.0f ns/op, %.3fx the %s baseline %.0f ns/op (limit %g)",
			name, curNs, ratio, basePath, baseNs, limit)
	}
	return nil
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	gate := flag.String("gate", "", "assert an ns/op ratio 'Num/Den<=Limit' and exit non-zero when violated")
	baseline := flag.String("baseline", "", "prior BENCH_*.json record to gate the current run against")
	baselineGate := flag.String("baseline-gate", "", "assert a cross-run ns/op ratio 'Name<=Limit' against -baseline")
	flag.Parse()

	rec, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(rec.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if _, err := w.Write(data); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *gate != "" {
		if err := checkGate(rec, *gate); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}
	if *baselineGate != "" {
		if *baseline == "" {
			fmt.Fprintln(os.Stderr, "benchjson: -baseline-gate needs -baseline")
			os.Exit(1)
		}
		base, err := loadRecord(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		if err := checkBaselineGate(rec, base, *baseline, *baselineGate); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}
}
