package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: dynaminer
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkClassifyIncremental 	       2	   1023902 ns/op	       197.0 classifications	         0 rebuilds	  593072 B/op	    4928 allocs/op
BenchmarkClassifyScratch     	       2	  67473608 ns/op	       197.0 classifications	       197.0 rebuilds	35046768 B/op	  268831 allocs/op
BenchmarkFigure1 	      12	  98765432 ns/op	        42.50 google-pct
PASS
ok  	dynaminer	0.568s
`

func TestParse(t *testing.T) {
	rec, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Goos != "linux" || rec.Goarch != "amd64" || rec.Pkg != "dynaminer" {
		t.Fatalf("bad header: %+v", rec)
	}
	if !strings.Contains(rec.CPU, "Xeon") {
		t.Fatalf("cpu = %q", rec.CPU)
	}
	if len(rec.Benchmarks) != 3 {
		t.Fatalf("benchmarks = %d, want 3", len(rec.Benchmarks))
	}
	inc := rec.Benchmarks[0]
	if inc.Name != "ClassifyIncremental" || inc.Iterations != 2 {
		t.Fatalf("first benchmark: %+v", inc)
	}
	if inc.Metrics["ns/op"] != 1023902 || inc.Metrics["allocs/op"] != 4928 {
		t.Fatalf("metrics: %v", inc.Metrics)
	}
	if inc.Metrics["classifications"] != 197 || inc.Metrics["rebuilds"] != 0 {
		t.Fatalf("custom metrics: %v", inc.Metrics)
	}
	if rec.Benchmarks[2].Metrics["google-pct"] != 42.5 {
		t.Fatalf("figure1 metrics: %v", rec.Benchmarks[2].Metrics)
	}
}

func TestCheckGate(t *testing.T) {
	rec := Record{Benchmarks: []Benchmark{
		{Name: "ClassifyIncremental-8", Metrics: map[string]float64{"ns/op": 1000}},
		{Name: "ClassifyInstrumented-8", Metrics: map[string]float64{"ns/op": 1040}},
		{Name: "NoNs-8", Metrics: map[string]float64{"B/op": 7}},
	}}
	cases := []struct {
		spec string
		ok   bool
	}{
		{"ClassifyInstrumented/ClassifyIncremental<=1.05", true},
		{"ClassifyInstrumented/ClassifyIncremental<=1.01", false}, // ratio is 1.04
		{"ClassifyInstrumented / ClassifyIncremental <= 1.05", true},
		{"ClassifyInstrumented/Missing<=1.05", false},
		{"ClassifyInstrumented/NoNs<=1.05", false},
		{"no-separator", false},
		{"ClassifyInstrumented/ClassifyIncremental<=tight", false},
		// Comma-separated multi-gate specs: all must pass, any failure fails.
		{"ClassifyInstrumented/ClassifyIncremental<=1.05, ClassifyIncremental/ClassifyInstrumented<=1.0", true},
		{"ClassifyInstrumented/ClassifyIncremental<=1.05,ClassifyInstrumented/ClassifyIncremental<=1.01", false},
	}
	for _, c := range cases {
		err := checkGate(rec, c.spec)
		if c.ok && err != nil {
			t.Errorf("checkGate(%q) = %v, want pass", c.spec, err)
		}
		if !c.ok && err == nil {
			t.Errorf("checkGate(%q) passed, want failure", c.spec)
		}
	}
}

func TestParseRejectsNonBenchLines(t *testing.T) {
	for _, line := range []string{
		"PASS",
		"ok  \tdynaminer\t0.568s",
		"--- BENCH: BenchmarkX",
		"Benchmark only-a-name",
		"BenchmarkOdd 3 12 ns/op trailing",
	} {
		if b, ok := parseLine(line); ok {
			t.Errorf("parseLine(%q) = %+v, want rejection", line, b)
		}
	}
}

func TestCheckBaselineGate(t *testing.T) {
	cur := Record{Benchmarks: []Benchmark{
		{Name: "ClassifyIncremental-8", Metrics: map[string]float64{"ns/op": 1040}},
	}}
	base := Record{Benchmarks: []Benchmark{
		{Name: "ClassifyIncremental-8", Metrics: map[string]float64{"ns/op": 1000}},
	}}
	cases := []struct {
		spec string
		ok   bool
	}{
		{"ClassifyIncremental<=1.05", true},
		{"ClassifyIncremental<=1.01", false}, // ratio is 1.04
		{" ClassifyIncremental <= 1.05 ", true},
		{"Missing<=1.05", false},
		{"no-separator", false},
		{"ClassifyIncremental<=tight", false},
	}
	for _, c := range cases {
		err := checkBaselineGate(cur, base, "BENCH_X.json", c.spec)
		if c.ok && err != nil {
			t.Errorf("checkBaselineGate(%q) = %v, want pass", c.spec, err)
		}
		if !c.ok && err == nil {
			t.Errorf("checkBaselineGate(%q) passed, want failure", c.spec)
		}
	}
}
