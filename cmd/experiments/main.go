// Command experiments regenerates the paper's tables and figures (and the
// ablations DESIGN.md adds) from the synthetic corpus:
//
//	experiments                  # run everything at paper scale
//	experiments -scale small     # quick run at reduced scale
//	experiments -only t3,f10     # run a subset
//
// Experiment ids: t1, f1, f2, f3, f4, f6, f7-9, t3, t4, f10, t5, cs1, t6,
// a1-a9 (ablations, evasion, per-family, latency, extended features,
// learning curve, cross-family generalization).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"dynaminer/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		scale = flag.String("scale", "paper", `"paper" (770/980 train, 7489/1500 validation) or "small"`)
		only  = flag.String("only", "", "comma-separated experiment ids (default: all)")
		seed  = flag.Int64("seed", 1, "experiment seed")
		mdOut = flag.String("markdown", "", "write a full Markdown report to this path instead of stdout tables")
	)
	flag.Parse()

	o := experiments.Options{Seed: *seed}
	if *scale == "small" {
		o.TrainInfections, o.TrainBenign = 160, 200
		o.ValInfections, o.ValBenign = 300, 120
		o.Folds, o.Trees = 5, 12
	}

	if *mdOut != "" {
		f, err := os.Create(*mdOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := experiments.WriteMarkdownReport(f, o); err != nil {
			return err
		}
		fmt.Printf("wrote Markdown report to %s\n", *mdOut)
		return nil
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(strings.ToLower(id))] = true
		}
	}
	runIt := func(id string) bool { return len(want) == 0 || want[id] }

	var (
		corpus  = experiments.GroundTruth(o)
		dataset = experiments.BuildDataset(corpus)
	)

	section := func(id, title string) {
		fmt.Printf("\n==== %s: %s ====\n", strings.ToUpper(id), title)
	}
	start := time.Now()

	if runIt("t1") {
		section("t1", "Table I — ground truth dataset")
		fmt.Print(experiments.TableI(corpus))
	}
	if runIt("f1") {
		section("f1", "Figure 1 — enticement distribution")
		fmt.Print(experiments.Figure1(corpus))
	}
	if runIt("f2") {
		section("f2", "Figure 2 — per-family enticement origins")
		fmt.Print(experiments.Figure2(corpus))
	}
	if runIt("f3") {
		section("f3", "Figure 3 — average graph properties")
		fmt.Print(experiments.Figure3(corpus))
	}
	if runIt("f4") {
		section("f4", "Figure 4 — average HTTP header elements")
		fmt.Print(experiments.Figure4(corpus))
	}
	if runIt("f6") {
		section("f6", "Figure 6 — example Angler WCG (DOT)")
		fmt.Print(experiments.Figure6(o))
	}
	if runIt("f7-9") {
		section("f7-9", "Figures 7-9 — graph measure distributions")
		for _, s := range experiments.Figures7to9(corpus) {
			fmt.Print(s)
		}
	}
	if runIt("t3") {
		section("t3", "Table III — feature-group ablation")
		res, err := experiments.TableIII(dataset, o)
		if err != nil {
			return err
		}
		fmt.Print(res)
	}
	if runIt("t4") {
		section("t4", "Table IV — top-20 features by gain ratio")
		fmt.Print(experiments.TableIV(dataset, o))
	}
	if runIt("f10") {
		section("f10", "Figure 10 — ROC curve")
		res, err := experiments.Figure10(dataset, o)
		if err != nil {
			return err
		}
		fmt.Print(res)
	}
	if runIt("t5") {
		section("t5", "Table V — validation vs AV ensemble")
		res, err := experiments.TableV(o)
		if err != nil {
			return err
		}
		fmt.Print(res)
	}
	if runIt("cs1") {
		section("cs1", "Case study 1 — forensic streaming replay")
		res, err := experiments.CaseStudy1(o)
		if err != nil {
			return err
		}
		fmt.Print(res)
	}
	if runIt("t6") {
		section("t6", "Table VI — 48h mini-enterprise live study")
		res, err := experiments.TableVI(o)
		if err != nil {
			return err
		}
		fmt.Print(res)
	}
	if runIt("a1") {
		section("a1", "Ablation — clue redirect threshold sweep")
		res, err := experiments.AblationClueThreshold(o, 100)
		if err != nil {
			return err
		}
		fmt.Print(res)
	}
	if runIt("a2") {
		section("a2", "Ablation — ensemble size sweep")
		res, err := experiments.AblationTrees(dataset, o)
		if err != nil {
			return err
		}
		fmt.Print(res)
	}
	if runIt("a3") {
		section("a3", "Ablation — probability averaging vs majority vote")
		res, err := experiments.AblationVoting(dataset, o)
		if err != nil {
			return err
		}
		fmt.Print(res)
	}
	if runIt("a4") {
		section("a4", "Evasion — Section VII strategies, offline vs on-the-wire")
		res, err := experiments.Evasion(o, 100)
		if err != nil {
			return err
		}
		fmt.Print(res)
	}
	if runIt("a5") {
		section("a5", "Per-family detection breakdown")
		res, err := experiments.PerFamily(o, 50)
		if err != nil {
			return err
		}
		fmt.Print(res)
	}
	if runIt("a6") {
		section("a6", "Detection latency on the wire")
		res, err := experiments.DetectionLatency(o, 100)
		if err != nil {
			return err
		}
		fmt.Print(res)
	}
	if runIt("a7") {
		section("a7", "Extended feature set (future-work direction)")
		res, err := experiments.ExtendedFeatures(o)
		if err != nil {
			return err
		}
		fmt.Print(res)
	}
	if runIt("a8") {
		section("a8", "Learning curve — ground-truth volume vs accuracy")
		res, err := experiments.LearningCurve(o)
		if err != nil {
			return err
		}
		fmt.Print(res)
	}
	if runIt("a9") {
		section("a9", "Cross-family generalization (leave-one-family-out)")
		res, err := experiments.CrossFamily(o, 50)
		if err != nil {
			return err
		}
		fmt.Print(res)
	}
	fmt.Printf("\ndone in %v\n", time.Since(start).Round(time.Millisecond))
	return nil
}
