package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"

	"dynaminer"
)

// runJournal renders an alert provenance journal (JSONL, written by
// stream/proxy -journal) as one line per alert, or re-emits the records
// as canonical JSON with -json.
func runJournal(args []string) error {
	fs := flag.NewFlagSet("journal", flag.ContinueOnError)
	asJSON := fs.Bool("json", false, "re-emit records as canonical JSON lines")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("journal: need exactly one journal file")
	}
	recs, err := dynaminer.ReadJournalFile(fs.Arg(0))
	if err != nil {
		return err
	}
	for _, r := range recs {
		if *asJSON {
			data, err := json.Marshal(r)
			if err != nil {
				return err
			}
			fmt.Println(string(data))
			continue
		}
		ts := "unset"
		if !r.Time.IsZero() {
			ts = r.Time.Format("2006-01-02 15:04:05.000")
		}
		mode := "incremental"
		if !r.Incremental {
			mode = "rebuild"
		}
		line := fmt.Sprintf("%s client=%s cluster=%d clue=%s/%s score=%.3f (threshold %.2f)",
			ts, r.Client, r.ClusterID, r.CluePayload, r.ClueHost, r.Score, r.Threshold)
		if r.Trees > 0 {
			line += fmt.Sprintf(" votes=%d/%d", r.Votes, r.Trees)
		}
		line += fmt.Sprintf(" wcg=%dn/%de v%d %s", r.WCGNodes, r.WCGEdges, r.WCGStructVersion, mode)
		if r.Degraded {
			line += " degraded"
		}
		if r.Quarantined {
			line += " quarantined"
		}
		if r.TraceID != 0 {
			line += fmt.Sprintf(" trace=%d", r.TraceID)
		}
		fmt.Println(line)
	}
	fmt.Printf("%d alert record(s), %d features each\n", len(recs), featureWidth(recs))
	return nil
}

// featureWidth reports the feature-vector width of the records (0 when
// the journal is empty).
func featureWidth(recs []dynaminer.AlertRecord) int {
	if len(recs) == 0 {
		return 0
	}
	return len(recs[0].Features)
}

// runTrace fetches a live admin server's /trace ring. The default is the
// human-readable flame summary; -json emits the Chrome trace-event form
// (validated before printing, so a broken payload fails loudly instead
// of producing a file chrome://tracing rejects); -id renders one trace's
// span tree as JSON — the form journal trace= IDs resolve through.
func runTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:9090", "admin server address (host:port)")
	asJSON := fs.Bool("json", false, "emit Chrome trace-event JSON (chrome://tracing / Perfetto)")
	id := fs.Uint64("id", 0, "fetch one trace by trace_id (as stamped on journal records)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	url := "http://" + *addr + "/trace?format=flame"
	if *id != 0 {
		url = fmt.Sprintf("http://%s/trace?id=%d", *addr, *id)
	} else if *asJSON {
		url = "http://" + *addr + "/trace"
	}
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("trace: %s returned %s", *addr, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if *id != 0 || *asJSON {
		if *asJSON {
			var f struct {
				TraceEvents []map[string]any `json:"traceEvents"`
			}
			if err := json.Unmarshal(body, &f); err != nil {
				return fmt.Errorf("trace: invalid trace-event JSON: %w", err)
			}
		} else {
			var snap dynaminer.TraceSnapshot
			if err := json.Unmarshal(body, &snap); err != nil {
				return fmt.Errorf("trace: invalid trace snapshot: %w", err)
			}
		}
	}
	os.Stdout.Write(body)
	return nil
}

// runMetrics fetches a live admin server's /snapshot and renders every
// metric's current value.
func runMetrics(args []string) error {
	fs := flag.NewFlagSet("metrics", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:9090", "admin server address (host:port)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	resp, err := http.Get("http://" + *addr + "/snapshot")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("metrics: %s returned %s", *addr, resp.Status)
	}
	var snaps []dynaminer.MetricSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snaps); err != nil {
		return fmt.Errorf("metrics: decode snapshot: %w", err)
	}
	for _, s := range snaps {
		switch {
		case s.Type == "histogram":
			fmt.Printf("%-52s count=%d sum=%g\n", s.Name, s.Count, s.Sum)
		case len(s.Children) > 0:
			labels := make([]string, 0, len(s.Children))
			for l := range s.Children {
				labels = append(labels, l)
			}
			sort.Strings(labels)
			for _, l := range labels {
				fmt.Printf("%-52s %d\n", fmt.Sprintf("%s{%s}", s.Name, l), s.Children[l])
			}
		default:
			fmt.Printf("%-52s %d\n", s.Name, s.Value)
		}
	}
	return nil
}
