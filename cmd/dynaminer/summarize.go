package main

import (
	"flag"
	"fmt"
	"sort"
	"strings"

	"dynaminer"
)

// runSummarize prints a forensic summary of a capture: the graph-level
// annotations of Section III-C, the reconstructed redirect chains, and a
// per-host table — a Table I row for the analyst's own capture.
func runSummarize(args []string) error {
	fs := flag.NewFlagSet("summarize", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("summarize: need exactly one capture")
	}
	txs, err := dynaminer.ReadPCAPFile(fs.Arg(0))
	if err != nil {
		return err
	}
	w := dynaminer.BuildWCG(txs)
	s := w.Summarize()

	fmt.Printf("capture: %s\n", fs.Arg(0))
	fmt.Printf("transactions: %d   hosts: %d   edges: %d   duration: %s\n",
		len(txs), s.UniqueHosts, s.Size, s.Duration.Round(1e6))
	origin := "(unknown)"
	if w.OriginKnown {
		origin = w.OriginHost
	}
	fmt.Printf("origin: %s\n", origin)
	fmt.Printf("methods: GET=%d POST=%d other=%d   codes: 2xx=%d 3xx=%d 4xx=%d 5xx=%d\n",
		s.GETs, s.POSTs, s.OtherMethods, s.HTTP20X, s.HTTP30X, s.HTTP40X, s.HTTP50X)
	fmt.Printf("redirects: %d total, longest chain %d hops, %d cross-domain, %d TLDs, avg hop delay %s\n",
		s.Redirects.TotalRedirects, s.Redirects.MaxChainLen, s.Redirects.CrossDomainCount,
		s.Redirects.TLDDiversity, s.Redirects.AvgRedirectDelay.Round(1e6))
	fmt.Printf("exploit-class downloads: %d   post-download edges: %d   call-back: %v\n",
		s.DownloadedExploits, s.PostDownloadEdges, s.HasCallback)

	if len(s.PayloadCounts) > 0 {
		counts := make(map[string]int, len(s.PayloadCounts))
		for c, n := range s.PayloadCounts {
			counts[c.String()] = n
		}
		classes := make([]string, 0, len(counts))
		for name := range counts {
			classes = append(classes, name)
		}
		sort.Strings(classes)
		var parts []string
		for _, name := range classes {
			parts = append(parts, fmt.Sprintf("%s=%d", name, counts[name]))
		}
		fmt.Printf("payloads: %s\n", strings.Join(parts, " "))
	}

	chains := w.RedirectChains()
	if len(chains) > 0 {
		fmt.Println("\nredirect chains:")
		for _, c := range chains {
			var hops []string
			for _, id := range c.Nodes {
				hops = append(hops, w.Nodes[id].Host)
			}
			fmt.Printf("  %s\n", strings.Join(hops, " -> "))
		}
	}

	fmt.Println("\nhosts:")
	fmt.Printf("  %-30s %-12s %5s %9s\n", "host", "role", "URIs", "payloads")
	for _, n := range w.Nodes {
		payloads := 0
		for _, c := range n.Payloads {
			payloads += c
		}
		fmt.Printf("  %-30s %-12s %5d %9d\n", n.Host, n.Type, len(n.URIs), payloads)
	}
	return nil
}
