package main

import (
	"flag"
	"fmt"
	"math/rand"

	"dynaminer"
	"dynaminer/internal/ml"
)

// runVerify cross-validates the ERF on a corpus and prints the
// Table III-style quality row — the operator's answer to "how good would a
// model trained on my captures be?".
func runVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ContinueOnError)
	var (
		corpusDir = fs.String("corpus", "", "corpus directory (pcaps + manifest.csv)")
		synthetic = fs.Bool("synthetic", false, "verify on a freshly generated synthetic corpus")
		seed      = fs.Int64("seed", 1, "seed")
		folds     = fs.Int("folds", 10, "cross-validation folds")
		trees     = fs.Int("trees", 20, "ensemble size N_t")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var eps []dynaminer.Episode
	switch {
	case *synthetic:
		eps = dynaminer.Corpus(dynaminer.CorpusConfig{Seed: *seed})
	case *corpusDir != "":
		var err error
		eps, err = loadCorpus(*corpusDir)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("verify: need -corpus or -synthetic")
	}
	ds := dynaminer.EpisodeDataset(eps)
	res, err := ml.CrossValidate(ds, ml.ForestConfig{NumTrees: *trees, Seed: *seed},
		*folds, rand.New(rand.NewSource(*seed)))
	if err != nil {
		return err
	}
	fmt.Printf("%d episodes, %d-fold cross-validation, N_t=%d\n", len(eps), *folds, *trees)
	fmt.Printf("TPR=%.3f FPR=%.3f F-score=%.3f ROC-area=%.3f\n", res.TPR, res.FPR, res.FScore, res.ROCArea)
	fmt.Printf("confusion: TP=%d FP=%d TN=%d FN=%d\n",
		res.Confusion.TP, res.Confusion.FP, res.Confusion.TN, res.Confusion.FN)
	return nil
}
