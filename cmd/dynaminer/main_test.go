package main

import (
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dynaminer"
)

// writeTinyCorpus produces a small tracegen-style corpus directory.
func writeTinyCorpus(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	eps := dynaminer.Corpus(dynaminer.CorpusConfig{Seed: 4, Infections: 8, Benign: 8})
	mf, err := os.Create(filepath.Join(dir, "manifest.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer mf.Close()
	if _, err := mf.WriteString("file,label,family,enticement,transactions\n"); err != nil {
		t.Fatal(err)
	}
	for i := range eps {
		label := "benign"
		if eps[i].Infection {
			label = "infection"
		}
		name := label + "-" + string(rune('a'+i)) + ".pcap"
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if err := eps[i].WritePCAP(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		if _, err := mf.WriteString(name + "," + label + "," + eps[i].Family + "," + eps[i].Enticement + ",0\n"); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestTrainClassifyStreamFeaturesFlow(t *testing.T) {
	corpus := writeTinyCorpus(t)
	model := filepath.Join(t.TempDir(), "model.json")

	if err := run([]string{"train", "-corpus", corpus, "-model", model, "-seed", "2", "-trees", "8"}); err != nil {
		t.Fatalf("train: %v", err)
	}
	if _, err := os.Stat(model); err != nil {
		t.Fatalf("model not written: %v", err)
	}

	// Find one capture of each label.
	entries, err := os.ReadDir(corpus)
	if err != nil {
		t.Fatal(err)
	}
	var infection string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "infection-") {
			infection = filepath.Join(corpus, e.Name())
			break
		}
	}
	if infection == "" {
		t.Fatal("no infection capture")
	}
	if err := run([]string{"classify", "-model", model, infection}); err != nil {
		t.Fatalf("classify: %v", err)
	}
	if err := run([]string{"stream", "-model", model, "-threshold", "1", infection}); err != nil {
		t.Fatalf("stream: %v", err)
	}
	if err := run([]string{"features", infection}); err != nil {
		t.Fatalf("features: %v", err)
	}
}

func TestTrainMonitorVariant(t *testing.T) {
	corpus := writeTinyCorpus(t)
	model := filepath.Join(t.TempDir(), "monitor.json")
	if err := run([]string{"train", "-corpus", corpus, "-model", model, "-monitor", "-trees", "6"}); err != nil {
		t.Fatalf("train -monitor: %v", err)
	}
	if _, err := os.Stat(model); err != nil {
		t.Fatal("monitor model missing")
	}
}

func TestCLIErrors(t *testing.T) {
	cases := [][]string{
		nil,                             // no subcommand
		{"bogus"},                       // unknown subcommand
		{"train"},                       // no corpus source
		{"classify", "-model", "nope"},  // no captures
		{"stream", "-model", "nope"},    // no capture
		{"features"},                    // no capture
		{"train", "-corpus", "/no/dir"}, // unreadable corpus
		{"classify", "-model", "/nope"}, // model missing (with capture)
	}
	for i, args := range cases {
		if i == 7 {
			args = append(args, "x.pcap")
		}
		if err := run(args); err == nil {
			t.Errorf("case %d (%v): expected error", i, args)
		}
	}
}

func TestSummarizeAndDataset(t *testing.T) {
	corpus := writeTinyCorpus(t)
	entries, err := os.ReadDir(corpus)
	if err != nil {
		t.Fatal(err)
	}
	var capture string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "infection-") {
			capture = filepath.Join(corpus, e.Name())
			break
		}
	}
	if err := run([]string{"summarize", capture}); err != nil {
		t.Fatalf("summarize: %v", err)
	}
	if err := run([]string{"summarize"}); err == nil {
		t.Fatal("summarize without capture must error")
	}

	out := filepath.Join(t.TempDir(), "features.csv")
	if err := run([]string{"dataset", "-corpus", corpus, "-out", out}); err != nil {
		t.Fatalf("dataset: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 17 { // header + 16 episodes
		t.Fatalf("csv lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "Origin,X-Flash-Version,") {
		t.Fatalf("header = %q", lines[0])
	}
	if cols := strings.Count(lines[1], ","); cols != 38 { // 37 features + label + family - 1
		t.Fatalf("columns = %d", cols+1)
	}
	if err := run([]string{"dataset"}); err == nil {
		t.Fatal("dataset without source must error")
	}
}

func TestStreamJSONOutput(t *testing.T) {
	corpus := writeTinyCorpus(t)
	model := filepath.Join(t.TempDir(), "m.json")
	if err := run([]string{"train", "-corpus", corpus, "-model", model, "-monitor", "-trees", "8"}); err != nil {
		t.Fatal(err)
	}
	entries, _ := os.ReadDir(corpus)
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "infection-") {
			if err := run([]string{"stream", "-model", model, "-threshold", "1", "-json",
				filepath.Join(corpus, e.Name())}); err != nil {
				t.Fatalf("stream -json: %v", err)
			}
			return
		}
	}
	t.Fatal("no infection capture")
}

func TestProxySubcommandServes(t *testing.T) {
	corpus := writeTinyCorpus(t)
	model := filepath.Join(t.TempDir(), "p.json")
	if err := run([]string{"train", "-corpus", corpus, "-model", model, "-monitor", "-trees", "6"}); err != nil {
		t.Fatal(err)
	}
	proxyReady = make(chan *http.Server, 1)
	defer func() { proxyReady = nil }()
	errCh := make(chan error, 1)
	go func() {
		errCh <- run([]string{"proxy", "-model", model, "-listen", "127.0.0.1:0"})
	}()
	var srv *http.Server
	select {
	case srv = <-proxyReady:
	case err := <-errCh:
		t.Fatalf("proxy exited early: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; err != nil {
		t.Fatalf("proxy returned %v after close", err)
	}
	// Bad model path errors immediately.
	if err := run([]string{"proxy", "-model", "/nope.json"}); err == nil {
		t.Fatal("missing model must error")
	}
}

func TestVerifySubcommand(t *testing.T) {
	corpus := writeTinyCorpus(t)
	if err := run([]string{"verify", "-corpus", corpus, "-folds", "4", "-trees", "6"}); err != nil {
		t.Fatalf("verify: %v", err)
	}
	if err := run([]string{"verify"}); err == nil {
		t.Fatal("verify without source must error")
	}
}
