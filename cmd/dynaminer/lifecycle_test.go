package main

import (
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"dynaminer"
)

// trainMonitorModel trains a monitoring model into dir and returns its
// path plus one infection capture from the corpus.
func trainMonitorModel(t *testing.T) (model, capture string) {
	t.Helper()
	corpus := writeTinyCorpus(t)
	model = filepath.Join(t.TempDir(), "m.json")
	if err := run([]string{"train", "-corpus", corpus, "-model", model, "-monitor", "-trees", "8"}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(corpus)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "infection-") {
			return model, filepath.Join(corpus, e.Name())
		}
	}
	t.Fatal("no infection capture")
	return "", ""
}

// TestStreamSIGINTDrainsJournal is the regression for the shutdown bug:
// an interrupted replay used to exit without ever closing the journal, so
// buffered records died with the process. Now SIGINT drains — the run
// returns cleanly, the journal file is complete and parseable, and the
// final checkpoint is valid.
func TestStreamSIGINTDrainsJournal(t *testing.T) {
	model, capture := trainMonitorModel(t)
	dir := t.TempDir()
	journal := filepath.Join(dir, "alerts.jsonl")
	ckpt := filepath.Join(dir, "state.dmcp")

	// A tiny pace factor stretches the capture's millisecond gaps into a
	// replay that far outlives the test, so only the signal can end it.
	errCh := make(chan error, 1)
	go func() {
		errCh <- run([]string{"stream", "-model", model, "-threshold", "1",
			"-pace", "0.0001", "-journal", journal, "-journal-fsync-every", "1",
			"-checkpoint", ckpt, capture})
	}()
	time.Sleep(300 * time.Millisecond)
	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("interrupted stream returned %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("stream did not drain on SIGINT")
	}

	// The journal closed cleanly: whatever was appended is parseable.
	if _, err := dynaminer.ReadJournalFile(journal); err != nil {
		t.Fatalf("journal corrupt after drain: %v", err)
	}
	// The drain wrote a final checkpoint, and the checkpoint subcommand
	// accepts it.
	if _, err := dynaminer.ReadCheckpointInfoFile(ckpt); err != nil {
		t.Fatalf("final checkpoint invalid: %v", err)
	}
	if err := run([]string{"checkpoint", ckpt}); err != nil {
		t.Fatalf("checkpoint subcommand: %v", err)
	}
}

// TestStreamSIGHUPReloads sends SIGHUP mid-replay and expects the stream
// to hot-swap its model and run to completion.
func TestStreamSIGHUPReloads(t *testing.T) {
	model, capture := trainMonitorModel(t)
	errCh := make(chan error, 1)
	go func() {
		errCh <- run([]string{"stream", "-model", model, "-threshold", "1",
			"-pace", "0.01", capture})
	}()
	time.Sleep(200 * time.Millisecond)
	if err := syscall.Kill(os.Getpid(), syscall.SIGHUP); err != nil {
		t.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond)
	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("stream returned %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("stream did not finish after SIGHUP + SIGINT")
	}
}

// TestProxySIGTERMDrains covers the proxy leg of the shutdown bug: a
// terminated proxy must stop serving, write its final checkpoint, and
// leave a parseable journal behind.
func TestProxySIGTERMDrains(t *testing.T) {
	model, _ := trainMonitorModel(t)
	dir := t.TempDir()
	journal := filepath.Join(dir, "alerts.jsonl")
	ckpt := filepath.Join(dir, "state.dmcp")

	proxyReady = make(chan *http.Server, 1)
	defer func() { proxyReady = nil }()
	errCh := make(chan error, 1)
	go func() {
		errCh <- run([]string{"proxy", "-model", model, "-listen", "127.0.0.1:0",
			"-journal", journal, "-checkpoint", ckpt})
	}()
	select {
	case <-proxyReady:
	case err := <-errCh:
		t.Fatalf("proxy exited early: %v", err)
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("terminated proxy returned %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("proxy did not drain on SIGTERM")
	}
	if _, err := dynaminer.ReadJournalFile(journal); err != nil {
		t.Fatalf("journal corrupt after drain: %v", err)
	}
	if _, err := dynaminer.ReadCheckpointInfoFile(ckpt); err != nil {
		t.Fatalf("final checkpoint invalid: %v", err)
	}
}

// TestCheckpointSubcommandErrors: a missing or garbage artifact is an
// error, as is a call without an argument.
func TestCheckpointSubcommandErrors(t *testing.T) {
	if err := run([]string{"checkpoint"}); err == nil {
		t.Fatal("checkpoint without a file must error")
	}
	if err := run([]string{"checkpoint", "/nonexistent.dmcp"}); err == nil {
		t.Fatal("missing checkpoint must error")
	}
	bad := filepath.Join(t.TempDir(), "bad.dmcp")
	if err := os.WriteFile(bad, []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"checkpoint", bad}); err == nil {
		t.Fatal("garbage checkpoint must error")
	}
}
