// Command dynaminer is the train / classify / stream CLI over the library:
//
//	dynaminer train  -corpus dir/ -model model.json [-monitor]
//	dynaminer train  -synthetic -model model.json [-monitor]
//	dynaminer classify -model model.json capture.pcap...
//	dynaminer stream   -model model.json -threshold 3 capture.pcap
//	dynaminer features capture.pcap
//	dynaminer summarize capture.pcap
//	dynaminer dataset -corpus dir/ -out features.csv
//	dynaminer proxy -model model.json -listen 127.0.0.1:8080
//	dynaminer journal alerts.jsonl
//	dynaminer checkpoint state.dmcp
//	dynaminer metrics -addr 127.0.0.1:9090
//	dynaminer trace -addr 127.0.0.1:9090 [-json] [-id N]
//	dynaminer model convert -in model.json -out model.dmfb -format blob
//	dynaminer model info model.dmfb
//
// "stream" and "proxy" take -admin-addr to serve the observability
// endpoints (Prometheus /metrics, /healthz, JSON /snapshot, /debug/pprof/,
// and the POST /reload and /rollback model-lifecycle controls) and
// -journal to append one provenance record per alert to a JSONL file, with
// -journal-fsync-every / -journal-fsync-interval / -journal-max-bytes
// tuning its durability and rotation; "journal" renders such a file, and
// "metrics" fetches and renders a live admin server's /snapshot.
//
// Both also take -trace-sample N to record a pipeline trace for every Nth
// transaction (slow and alert-raising ones are always kept); the admin
// server then serves the ring on /trace, and "trace" fetches it as a
// flame summary, as Chrome trace-event JSON (-json, loadable in
// chrome://tracing or Perfetto), or as one span tree by -id.
//
// Both long-running modes drain gracefully on SIGINT/SIGTERM (intake
// stops, the journal is flushed, a final checkpoint is written when
// -checkpoint is set) and hot-swap the model in place on SIGHUP;
// -checkpoint also recovers watch state on start, and the "checkpoint"
// subcommand summarizes such an artifact.
//
// "train -corpus" expects a directory produced by tracegen (pcap files and
// a manifest.csv); "-synthetic" trains directly on a generated corpus
// without touching disk. "classify" gives one offline verdict per capture;
// "stream" replays a capture through the on-the-wire engine and prints
// alerts as they fire.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"dynaminer"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dynaminer:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: dynaminer <train|classify|stream|features|summarize|dataset|verify|proxy|journal|checkpoint|metrics|trace|model> [flags]")
	}
	switch args[0] {
	case "model":
		return runModel(args[1:])
	case "train":
		return runTrain(args[1:])
	case "classify":
		return runClassify(args[1:])
	case "stream":
		return runStream(args[1:])
	case "features":
		return runFeatures(args[1:])
	case "proxy":
		return runProxy(args[1:])
	case "summarize":
		return runSummarize(args[1:])
	case "dataset":
		return runDataset(args[1:])
	case "journal":
		return runJournal(args[1:])
	case "checkpoint":
		return runCheckpoint(args[1:])
	case "metrics":
		return runMetrics(args[1:])
	case "trace":
		return runTrace(args[1:])
	case "verify":
		return runVerify(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func runProxy(args []string) error {
	fs := flag.NewFlagSet("proxy", flag.ContinueOnError)
	var (
		modelPath   = fs.String("model", "model.json", "trained model path")
		listen      = fs.String("listen", "127.0.0.1:8080", "proxy listen address")
		threshold   = fs.Int("threshold", 3, "clue redirect threshold L")
		block       = fs.Bool("block", true, "terminate sessions of alerted clients")
		shards      = fs.Int("shards", 0, "detection engine shards (0 = GOMAXPROCS)")
		adminAddr   = fs.String("admin-addr", "", "serve /metrics, /healthz, /snapshot, /debug/pprof/ and the POST /reload and /rollback model controls on this address (empty = no admin server)")
		journal     = fs.String("journal", "", "append one JSONL provenance record per alert to this file")
		checkpoint  = fs.String("checkpoint", "", "restore watch state from this DMCP file on start and checkpoint to it on drain (empty = stateless)")
		traceSample = fs.Int("trace-sample", 0, "record a pipeline trace for every Nth proxied request (0 = tracing off; slow and alert-raising requests are always kept)")
	)
	openJournal := journalFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	clf, err := dynaminer.LoadFile(*modelPath)
	if err != nil {
		return err
	}
	cfg := dynaminer.MonitorConfig{RedirectThreshold: *threshold, Shards: *shards}
	var tracer *dynaminer.Tracer
	if *traceSample > 0 {
		reg := dynaminer.NewMetricsRegistry()
		cfg.Metrics = reg
		tracer = dynaminer.NewTracer(reg, dynaminer.TraceConfig{Sample: *traceSample})
		cfg.Tracer = tracer
	}
	var j *dynaminer.Journal
	if *journal != "" {
		j, err = openJournal(*journal)
		if err != nil {
			return err
		}
		defer j.Close()
		cfg.Journal = j
	}
	p := dynaminer.NewProxy(dynaminer.ProxyConfig{
		Detector:        cfg,
		BlockAfterAlert: *block,
		OnAlert: func(a dynaminer.Alert) {
			fmt.Printf("ALERT %s client=%s payload=%s host=%s score=%.2f\n",
				a.FormatTime("15:04:05"), a.Client, a.TriggerPayload, a.TriggerHost, a.Score)
		},
	}, clf)
	if *checkpoint != "" {
		if _, err := os.Stat(*checkpoint); err == nil {
			n, err := p.RestoreCheckpointFile(*checkpoint)
			if err != nil {
				return fmt.Errorf("recover %s: %w", *checkpoint, err)
			}
			fmt.Printf("recovered %d session clusters from %s\n", n, *checkpoint)
		}
	}
	if *adminAddr != "" {
		adm, err := dynaminer.StartAdminWith(*adminAddr, dynaminer.AdminOptions{
			Extra:  dynaminer.ReloadHandlers(p, func() string { return *modelPath }),
			Health: p.Health,
			Tracer: tracer,
		}, p.Registry(), dynaminer.DefaultMetricsRegistry())
		if err != nil {
			return err
		}
		defer adm.Close()
		fmt.Printf("admin endpoints on http://%s/ (metrics, healthz, snapshot, debug/pprof, reload, rollback)\n", adm.Addr())
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	fmt.Printf("DynaMiner proxy listening on %s (model %s, L=%d)\n", ln.Addr(), *modelPath, *threshold)
	srv := &http.Server{Handler: p}

	// SIGINT/SIGTERM drain: stop intake, then let the deferred closes
	// flush the journal to disk; SIGHUP hot-swaps the model in place.
	drain, hup, stopSignals := notifyLifecycle()
	defer stopSignals()
	go func() {
		for {
			select {
			case <-drain:
				srv.Close()
				return
			case <-hup:
				reloadOnHUP(p, *modelPath)
			}
		}
	}()

	if proxyReady != nil {
		proxyReady <- srv
	}
	err = srv.Serve(ln)
	if err == http.ErrServerClosed {
		err = nil
	}
	if err != nil {
		return err
	}
	if *checkpoint != "" {
		if werr := p.WriteCheckpointFile(*checkpoint); werr != nil {
			return fmt.Errorf("final checkpoint: %w", werr)
		}
	}
	if j != nil {
		if serr := j.Sync(); serr != nil {
			return serr
		}
	}
	return nil
}

// proxyReady, when non-nil, receives the serving *http.Server so tests can
// shut the proxy down.
var proxyReady chan *http.Server

func runTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ContinueOnError)
	var (
		corpusDir = fs.String("corpus", "", "corpus directory (pcaps + manifest.csv)")
		synthetic = fs.Bool("synthetic", false, "train on a freshly generated synthetic corpus")
		modelPath = fs.String("model", "model.json", "output model path")
		monitor   = fs.Bool("monitor", false, "train for on-the-wire monitoring (clue-subset representation)")
		seed      = fs.Int64("seed", 1, "seed for generation and training")
		trees     = fs.Int("trees", 20, "ensemble size N_t")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var eps []dynaminer.Episode
	switch {
	case *synthetic:
		eps = dynaminer.Corpus(dynaminer.CorpusConfig{Seed: *seed})
	case *corpusDir != "":
		var err error
		eps, err = loadCorpus(*corpusDir)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("train: need -corpus or -synthetic")
	}
	cfg := dynaminer.TrainConfig{NumTrees: *trees, Seed: *seed}
	var (
		clf *dynaminer.Classifier
		err error
	)
	if *monitor {
		clf, err = dynaminer.TrainForMonitoring(eps, cfg)
	} else {
		clf, err = dynaminer.Train(eps, cfg)
	}
	if err != nil {
		return err
	}
	if err := clf.SaveFile(*modelPath); err != nil {
		return err
	}
	fmt.Printf("trained on %d episodes, model saved to %s\n", len(eps), *modelPath)
	return nil
}

// loadCorpus reads a tracegen-produced directory.
func loadCorpus(dir string) ([]dynaminer.Episode, error) {
	mf, err := os.Open(filepath.Join(dir, "manifest.csv"))
	if err != nil {
		return nil, fmt.Errorf("open manifest: %w", err)
	}
	defer mf.Close()
	var eps []dynaminer.Episode
	sc := bufio.NewScanner(mf)
	first := true
	for sc.Scan() {
		if first {
			first = false
			continue // header
		}
		fields := strings.Split(sc.Text(), ",")
		if len(fields) < 4 {
			continue
		}
		txs, err := dynaminer.ReadPCAPFile(filepath.Join(dir, fields[0]))
		if err != nil {
			return nil, err
		}
		eps = append(eps, dynaminer.Episode{
			Infection:  fields[1] == "infection",
			Family:     fields[2],
			Enticement: fields[3],
			Txs:        txs,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(eps) == 0 {
		return nil, fmt.Errorf("no episodes in %s", dir)
	}
	return eps, nil
}

func runClassify(args []string) error {
	fs := flag.NewFlagSet("classify", flag.ContinueOnError)
	modelPath := fs.String("model", "model.json", "trained model path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("classify: no captures given")
	}
	clf, err := dynaminer.LoadFile(*modelPath)
	if err != nil {
		return err
	}
	for _, path := range fs.Args() {
		txs, err := dynaminer.ReadPCAPFile(path)
		if err != nil {
			return err
		}
		w := dynaminer.BuildWCG(txs)
		score := clf.Score(w)
		verdict := "benign"
		if score > 0.5 {
			verdict = "INFECTION"
		}
		fmt.Printf("%s: %s (score %.3f, %d hosts, %d transactions)\n",
			path, verdict, score, w.Order(), len(txs))
	}
	return nil
}

func runStream(args []string) error {
	fs := flag.NewFlagSet("stream", flag.ContinueOnError)
	var (
		modelPath    = fs.String("model", "model.json", "trained model path")
		threshold    = fs.Int("threshold", 3, "clue redirect threshold L")
		asJSON       = fs.Bool("json", false, "emit alerts as JSON lines (SIEM-friendly)")
		pace         = fs.Float64("pace", 0, "replay at capture pace divided by this factor (0 = as fast as possible)")
		adminAddr    = fs.String("admin-addr", "", "serve /metrics, /healthz, /snapshot, /debug/pprof/ and the POST /reload and /rollback model controls on this address (empty = no admin server)")
		journal      = fs.String("journal", "", "append one JSONL provenance record per alert to this file")
		checkpoint   = fs.String("checkpoint", "", "recover watch state from this DMCP file on start and checkpoint to it periodically and on exit (empty = stateless)")
		ckptInterval = fs.Duration("checkpoint-interval", 30*time.Second, "background checkpoint cadence (with -checkpoint)")
		traceSample  = fs.Int("trace-sample", 0, "record a pipeline trace for every Nth transaction (0 = tracing off; slow and alert-raising transactions are always kept)")
	)
	openJournal := journalFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("stream: need exactly one capture")
	}
	clf, err := dynaminer.LoadFile(*modelPath)
	if err != nil {
		return err
	}
	cfg := dynaminer.MonitorConfig{RedirectThreshold: *threshold}
	if *traceSample > 0 {
		// The tracer and engine must share a registry, so create it here
		// (the engine only auto-creates one when none is supplied). Attach
		// the capture layers before the pcap is read so reassembly and
		// parse timing land in the stage histograms.
		reg := dynaminer.NewMetricsRegistry()
		cfg.Metrics = reg
		cfg.Tracer = dynaminer.NewTracer(reg, dynaminer.TraceConfig{Sample: *traceSample})
		dynaminer.SetCaptureTracer(cfg.Tracer)
		defer dynaminer.SetCaptureTracer(nil)
	}
	txs, err := dynaminer.ReadPCAPFile(fs.Arg(0))
	if err != nil {
		return err
	}
	if *journal != "" {
		j, err := openJournal(*journal)
		if err != nil {
			return err
		}
		defer j.Close()
		cfg.Journal = j
	}
	m := dynaminer.NewMonitor(cfg, clf)
	m.SetModelPath(*modelPath)
	defer m.Close()
	if *checkpoint != "" {
		if err := recoverMonitor(m, *checkpoint, *journal); err != nil {
			return err
		}
		m.StartCheckpointer(*checkpoint, *ckptInterval)
	}
	if *adminAddr != "" {
		addr, err := m.StartAdmin(*adminAddr)
		if err != nil {
			return err
		}
		fmt.Printf("admin endpoints on http://%s/ (metrics, healthz, snapshot, debug/pprof, reload, rollback)\n", addr)
	}
	emit := func(a dynaminer.Alert) error {
		if *asJSON {
			data, err := json.Marshal(a)
			if err != nil {
				return err
			}
			fmt.Println(string(data))
			return nil
		}
		fmt.Printf("ALERT %s  client=%s payload=%s host=%s score=%.2f wcg=%d nodes\n",
			a.FormatTime("15:04:05.000"), a.Client, a.TriggerPayload, a.TriggerHost, a.Score, a.WCG.Order())
		return nil
	}

	// SIGINT/SIGTERM drain the replay — the journal flushes, a final
	// checkpoint lands — instead of killing records on the floor; SIGHUP
	// hot-swaps the model mid-stream without dropping a watch.
	drain, hup, stopSignals := notifyLifecycle()
	defer stopSignals()
	interrupted := false
	var prev time.Time
stream:
	for _, tx := range txs {
		select {
		case <-drain:
			interrupted = true
			break stream
		case <-hup:
			reloadOnHUP(m, *modelPath)
		default:
		}
		if *pace > 0 && !prev.IsZero() {
			if gap := tx.ReqTime.Sub(prev); gap > 0 &&
				paceSleep(gap, *pace, drain, hup, func() { reloadOnHUP(m, *modelPath) }) {
				interrupted = true
				break stream
			}
		}
		prev = tx.ReqTime
		for _, a := range m.Process(tx) {
			if err := emit(a); err != nil {
				return err
			}
		}
	}
	if interrupted {
		fmt.Println("interrupted: draining (journal flush + final checkpoint)")
	}
	if err := m.Shutdown(); err != nil {
		return err
	}
	st := m.Stats()
	fmt.Printf("processed %d transactions: %d clusters, %d clues, %d classifications, %d alerts (%d weeded)\n",
		st.Transactions, st.Clusters, st.CluesFired, st.Classifications, st.Alerts, st.Weeded)
	return nil
}

func runFeatures(args []string) error {
	fs := flag.NewFlagSet("features", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("features: need exactly one capture")
	}
	txs, err := dynaminer.ReadPCAPFile(fs.Arg(0))
	if err != nil {
		return err
	}
	v := dynaminer.ExtractFeatures(dynaminer.BuildWCG(txs))
	for i, x := range v {
		fmt.Printf("f%-3d %-28s %g\n", i+1, dynaminer.FeatureName(i), x)
	}
	return nil
}
