package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"

	"dynaminer"
)

// runDataset exports the featurized corpus as CSV (one row per episode,
// the 37 Table II features plus the label), so the learning problem can be
// reproduced in any external toolkit.
func runDataset(args []string) error {
	fs := flag.NewFlagSet("dataset", flag.ContinueOnError)
	var (
		corpusDir = fs.String("corpus", "", "corpus directory (pcaps + manifest.csv)")
		synthetic = fs.Bool("synthetic", false, "featurize a freshly generated synthetic corpus")
		seed      = fs.Int64("seed", 1, "seed for -synthetic")
		out       = fs.String("out", "features.csv", "output CSV path")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var eps []dynaminer.Episode
	switch {
	case *synthetic:
		eps = dynaminer.Corpus(dynaminer.CorpusConfig{Seed: *seed})
	case *corpusDir != "":
		var err error
		eps, err = loadCorpus(*corpusDir)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("dataset: need -corpus or -synthetic")
	}

	f, err := os.Create(*out)
	if err != nil {
		return fmt.Errorf("create %s: %w", *out, err)
	}
	defer f.Close()
	w := bufio.NewWriter(f)

	// Header: feature names, then label and family.
	for i := 0; i < dynaminer.NumFeatures; i++ {
		if i > 0 {
			if _, err := w.WriteString(","); err != nil {
				return err
			}
		}
		if _, err := w.WriteString(dynaminer.FeatureName(i)); err != nil {
			return err
		}
	}
	if _, err := w.WriteString(",label,family\n"); err != nil {
		return err
	}

	for i := range eps {
		v := dynaminer.ExtractFeatures(dynaminer.EpisodeWCG(&eps[i]))
		for j, x := range v {
			if j > 0 {
				if _, err := w.WriteString(","); err != nil {
					return err
				}
			}
			if _, err := w.WriteString(strconv.FormatFloat(x, 'g', -1, 64)); err != nil {
				return err
			}
		}
		label := "benign"
		if eps[i].Infection {
			label = "infection"
		}
		if _, err := fmt.Fprintf(w, ",%s,%s\n", label, eps[i].Family); err != nil {
			return err
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("wrote %d rows x %d features to %s\n", len(eps), dynaminer.NumFeatures, *out)
	return nil
}
