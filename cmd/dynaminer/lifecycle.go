package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dynaminer"
)

// journalFlags registers the shared journal durability and rotation knobs
// on fs and returns an opener for them.
func journalFlags(fs *flag.FlagSet) func(path string) (*dynaminer.Journal, error) {
	var (
		fsyncEvery    = fs.Int("journal-fsync-every", 0, "fsync the alert journal every N records (0 = rely on the OS)")
		fsyncInterval = fs.Duration("journal-fsync-interval", 0, "fsync the alert journal at least this often (0 = off)")
		maxBytes      = fs.Int64("journal-max-bytes", 0, "rotate the alert journal past this size (0 = never)")
	)
	return func(path string) (*dynaminer.Journal, error) {
		return dynaminer.NewJournalWith(path, dynaminer.JournalConfig{
			FsyncEvery:    *fsyncEvery,
			FsyncInterval: *fsyncInterval,
			MaxBytes:      *maxBytes,
		})
	}
}

// notifyLifecycle subscribes to the process lifecycle signals: SIGINT and
// SIGTERM request a graceful drain, SIGHUP requests a model reload. The
// returned stop function unsubscribes both channels.
func notifyLifecycle() (drain, reload chan os.Signal, stop func()) {
	drain = make(chan os.Signal, 2)
	signal.Notify(drain, os.Interrupt, syscall.SIGTERM)
	reload = make(chan os.Signal, 1)
	signal.Notify(reload, syscall.SIGHUP)
	return drain, reload, func() {
		signal.Stop(drain)
		signal.Stop(reload)
	}
}

// reloadOnHUP performs the SIGHUP hot-swap against any reloadable engine,
// reporting the outcome without ever taking the process down.
func reloadOnHUP(r dynaminer.ModelReloader, path string) {
	if path == "" {
		fmt.Fprintln(os.Stderr, "dynaminer: SIGHUP: no model path to reload")
		return
	}
	v, err := r.ReloadModelFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dynaminer: SIGHUP reload rejected (still serving %s): %v\n", r.ModelVersion(), err)
		return
	}
	fmt.Printf("model reloaded from %s, now serving %s\n", path, v)
}

// runCheckpoint validates and summarizes a DMCP checkpoint artifact:
//
//	dynaminer checkpoint state.dmcp
func runCheckpoint(args []string) error {
	fs := flag.NewFlagSet("checkpoint", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("checkpoint: need exactly one checkpoint file")
	}
	info, err := dynaminer.ReadCheckpointInfoFile(fs.Arg(0))
	if err != nil {
		return err
	}
	fmt.Printf("checkpoint:    %s\n", fs.Arg(0))
	fmt.Printf("model version: %s\n", info.ModelVersion)
	fmt.Printf("shards:        %d\n", info.Shards)
	fmt.Printf("transactions:  %d\n", info.TxSeen)
	fmt.Printf("clusters:      %d (%d watched)\n", info.Clusters, info.Watching)
	fmt.Printf("wcg txs:       %d\n", info.Transactions)
	return nil
}

// recoverMonitor restores a monitor's in-flight state from a checkpoint
// and journal before traffic flows, reporting what came back.
func recoverMonitor(m *dynaminer.Monitor, checkpointPath, journalPath string) error {
	watches, marked, err := m.Recover(checkpointPath, journalPath)
	if err != nil {
		return fmt.Errorf("recover %s: %w", checkpointPath, err)
	}
	if watches > 0 || marked > 0 {
		fmt.Printf("recovered %d watched clusters from %s (%d already-alerted marked via journal)\n",
			watches, checkpointPath, marked)
	}
	return nil
}

// paceSleep sleeps gap scaled by pace. A drain signal ends the sleep
// early (returning true); a reload signal runs onReload and keeps
// sleeping, so a paced replay hot-swaps promptly instead of at the next
// transaction.
func paceSleep(gap time.Duration, pace float64, drain, reload chan os.Signal, onReload func()) (interrupted bool) {
	d := time.Duration(float64(gap) / pace)
	if d <= 0 {
		return false
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	for {
		select {
		case <-drain:
			return true
		case <-reload:
			onReload()
		case <-timer.C:
			return false
		}
	}
}
