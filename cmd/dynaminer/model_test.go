package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"dynaminer"
)

// trainTinyModel trains a small synthetic model and saves it as JSON.
func trainTinyModel(t *testing.T) (*dynaminer.Classifier, string) {
	t.Helper()
	eps := dynaminer.Corpus(dynaminer.CorpusConfig{Seed: 9, Infections: 10, Benign: 10})
	clf, err := dynaminer.Train(eps, dynaminer.TrainConfig{NumTrees: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.json")
	if err := clf.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	return clf, path
}

func TestModelConvertRoundTrip(t *testing.T) {
	clf, jsonPath := trainTinyModel(t)
	dir := t.TempDir()
	blobPath := filepath.Join(dir, "model.dmfb")
	backPath := filepath.Join(dir, "back.json")

	if err := run([]string{"model", "convert", "-in", jsonPath, "-out", blobPath, "-format", "blob"}); err != nil {
		t.Fatalf("convert to blob: %v", err)
	}
	if err := run([]string{"model", "convert", "-in", blobPath, "-out", backPath, "-format", "json"}); err != nil {
		t.Fatalf("convert back to json: %v", err)
	}
	orig, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	back, err := os.ReadFile(backPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(orig, back) {
		t.Fatal("json -> blob -> json is not byte-identical")
	}

	// The blob-loaded classifier must score identically and drive the
	// monitor path (scorer) without a pointer forest.
	fromBlob, err := dynaminer.LoadFile(blobPath)
	if err != nil {
		t.Fatal(err)
	}
	if fromBlob.Forest() != nil {
		t.Fatal("blob-loaded classifier unexpectedly carries a pointer forest")
	}
	eps := dynaminer.Corpus(dynaminer.CorpusConfig{Seed: 77, Infections: 2, Benign: 2})
	for i := range eps {
		w := dynaminer.BuildWCG(eps[i].Txs)
		if clf.Score(w) != fromBlob.Score(w) {
			t.Fatalf("episode %d: blob-loaded model scores differently", i)
		}
	}
	m := dynaminer.NewMonitor(dynaminer.MonitorConfig{RedirectThreshold: 1}, fromBlob)
	for i := range eps {
		m.ProcessAll(eps[i].Txs)
	}
}

func TestModelInfo(t *testing.T) {
	_, jsonPath := trainTinyModel(t)
	blobPath := filepath.Join(t.TempDir(), "model.dmfb")
	if err := run([]string{"model", "convert", "-in", jsonPath, "-out", blobPath}); err != nil {
		t.Fatalf("convert: %v", err)
	}
	for _, path := range []string{jsonPath, blobPath} {
		if err := run([]string{"model", "info", path}); err != nil {
			t.Fatalf("info %s: %v", path, err)
		}
	}
}

func TestModelErrors(t *testing.T) {
	if err := run([]string{"model"}); err == nil {
		t.Fatal("bare model must error")
	}
	if err := run([]string{"model", "bogus"}); err == nil {
		t.Fatal("unknown model subcommand must error")
	}
	if err := run([]string{"model", "convert", "-in", "nope.json"}); err == nil {
		t.Fatal("convert without -out must error")
	}
	if err := run([]string{"model", "info", "does-not-exist.json"}); err == nil {
		t.Fatal("info on missing file must error")
	}
}
