package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"dynaminer"
	"dynaminer/internal/ml"
)

// runModel dispatches the model artifact tooling: converting between the
// JSON and flat-blob serializations and inspecting a saved model.
func runModel(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: dynaminer model <convert|info> [flags]")
	}
	switch args[0] {
	case "convert":
		return runModelConvert(args[1:])
	case "info":
		return runModelInfo(args[1:])
	default:
		return fmt.Errorf("unknown model subcommand %q", args[0])
	}
}

// runModelConvert rewrites a model in the requested serialization. Both
// loaders and both writers preserve scores bit-for-bit, so converting is
// always verdict-safe; JSON -> blob -> JSON round trips byte-identically.
func runModelConvert(args []string) error {
	fs := flag.NewFlagSet("model convert", flag.ContinueOnError)
	var (
		in     = fs.String("in", "", "input model path (JSON or flat blob; format is sniffed)")
		out    = fs.String("out", "", "output model path")
		format = fs.String("format", "blob", "output format: blob (zero-parse binary) or json")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *out == "" {
		return fmt.Errorf("model convert: -in and -out are required")
	}
	clf, err := dynaminer.LoadFile(*in)
	if err != nil {
		return err
	}
	switch *format {
	case "blob":
		err = clf.SaveBlobFile(*out)
	case "json":
		err = clf.SaveFile(*out)
	default:
		return fmt.Errorf("model convert: unknown -format %q (want blob or json)", *format)
	}
	if err != nil {
		return err
	}
	fi, statErr := os.Stat(*out)
	if statErr != nil {
		return statErr
	}
	fmt.Printf("wrote %s model to %s (%d bytes)\n", *format, *out, fi.Size())
	return nil
}

// runModelInfo prints a saved model's format, shape, and configuration.
func runModelInfo(args []string) error {
	fs := flag.NewFlagSet("model info", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: dynaminer model info <model-path>")
	}
	path := fs.Arg(0)
	format, err := sniffModelFormat(path)
	if err != nil {
		return err
	}
	clf, err := dynaminer.LoadFile(path)
	if err != nil {
		return err
	}
	info := clf.Info()
	fmt.Printf("path:       %s\n", path)
	fmt.Printf("format:     %s\n", format)
	fmt.Printf("trees:      %d\n", info.Trees)
	fmt.Printf("nodes:      %d\n", info.Nodes)
	fmt.Printf("features:   %d\n", info.Features)
	fmt.Printf("config:     trees=%d max-features=%d min-samples-leaf=%d max-depth=%d seed=%d\n",
		info.Config.NumTrees, info.Config.MaxFeatures, info.Config.MinSamplesLeaf,
		info.Config.MaxDepth, info.Config.Seed)
	return nil
}

// sniffModelFormat reports "blob" or "json" from a model file's magic.
func sniffModelFormat(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	prefix := make([]byte, 4)
	if _, err := io.ReadFull(f, prefix); err == nil && ml.IsFlatBlob(prefix) {
		return "blob", nil
	}
	return "json", nil
}
