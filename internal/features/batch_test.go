package features

import (
	"testing"

	"dynaminer/internal/synth"
	"dynaminer/internal/wcg"
)

func batchWCGs(seed int64) []*wcg.WCG {
	episodes := synth.GenerateCorpus(synth.Config{Seed: seed, Infections: 6, Benign: 6})
	ws := make([]*wcg.WCG, len(episodes))
	for i := range episodes {
		ws[i] = wcg.FromTransactions(episodes[i].Txs)
	}
	return ws
}

// TestExtractBatchMatchesExtract pins that the batched slab path is
// bit-identical to per-episode Extract on every vector.
func TestExtractBatchMatchesExtract(t *testing.T) {
	ws := batchWCGs(53)
	got := ExtractBatch(ws)
	if len(got) != len(ws) {
		t.Fatalf("vectors = %d, want %d", len(got), len(ws))
	}
	for i, w := range ws {
		requireSameVector(t, "one-shot", got[i], Extract(w))
	}

	be := NewBatchExtractor()
	for round := 0; round < 3; round++ { // reuse across rounds must not leak state
		views := be.Extract(ws)
		for i, w := range ws {
			requireSameVector(t, "extractor", views[i], Extract(w))
		}
	}
}

// TestExtractBatchSlabLayout pins the caller contract: vectors are
// stride-NumFeatures views over one contiguous backing array.
func TestExtractBatchSlabLayout(t *testing.T) {
	ws := batchWCGs(59)
	be := NewBatchExtractor()
	views := be.Extract(ws)
	slab := be.Slab()
	if len(slab) != len(ws)*NumFeatures {
		t.Fatalf("slab len = %d, want %d", len(slab), len(ws)*NumFeatures)
	}
	for i, v := range views {
		if len(v) != NumFeatures {
			t.Fatalf("vector %d len = %d", i, len(v))
		}
		if &v[0] != &slab[i*NumFeatures] {
			t.Fatalf("vector %d is not a view over the slab", i)
		}
	}
}

// TestExtractBatchEmpty covers the zero-episode edge.
func TestExtractBatchEmpty(t *testing.T) {
	if got := ExtractBatch(nil); len(got) != 0 {
		t.Fatalf("ExtractBatch(nil) = %d vectors", len(got))
	}
	if got := NewBatchExtractor().Extract(nil); len(got) != 0 {
		t.Fatalf("Extract(nil) = %d vectors", len(got))
	}
}

// TestCacheResetMatchesFreshCache pins that Reset is equivalent to a
// brand-new cache for every WCG it is pointed at, in any order.
func TestCacheResetMatchesFreshCache(t *testing.T) {
	ws := batchWCGs(61)
	var c Cache
	var buf []float64
	for pass := 0; pass < 2; pass++ {
		for i := len(ws) - 1; i >= 0; i-- { // reverse order: no hidden cursor reuse
			c.Reset(ws[i], nil)
			buf = c.FeaturesInto(buf)
			requireSameVector(t, "reset", buf, Extract(ws[i]))
		}
	}
}

// TestExtractBatchAllocs pins the steady-state zero-alloc contract of the
// batched extraction path: once the extractor's slab, views, cache buffer,
// and scratch arenas are warm (and each WCG has materialized its graph),
// re-featurizing a whole batch allocates nothing.
func TestExtractBatchAllocs(t *testing.T) {
	ws := batchWCGs(67)
	be := NewBatchExtractor()
	run := func() {
		if views := be.Extract(ws); len(views) != len(ws) {
			panic("batch extract lost vectors")
		}
	}
	run() // warm slab, views, scratch, and per-WCG graph materialization
	if allocs := testing.AllocsPerRun(100, run); allocs != 0 {
		t.Fatalf("batched extraction allocates %.1f times per batch in steady state, want 0", allocs)
	}
}
