package features

import (
	"time"

	"dynaminer/internal/graph"
	"dynaminer/internal/wcg"
)

// Cache maintains the 37-feature vector of a growing WCG incrementally.
// It is keyed on the live WCG of one watched cluster: after every batch of
// appended transactions, a sync scans only the new edges and updates the
// running aggregates behind the HLF, HF, and TF slots (plus the degree/
// density/volume/reciprocity GF slots, which reduce to counters the WCG
// already maintains) in O(1) per edge, using the exact arithmetic of the
// from-scratch extractor so the resulting floats are bit-identical. The
// expensive topology-bound GF slots — diameter, the centrality family,
// connectivity, clustering, neighborhood statistics, PageRank — recompute
// through the reusable graph.Scratch only when the WCG's StructVersion
// moved, i.e. when an append introduced a new host or a first edge between
// a host pair; appends that only add parallel request/response edges or
// annotations skip them entirely.
//
// A Cache observes its WCG strictly through appends (the only mutation the
// builder performs) and is not safe for concurrent use.
type Cache struct {
	w       *wcg.WCG
	scratch *graph.Scratch

	v [NumFeatures]float64

	// Sync cursor and topology dirty tracking.
	edgeCount int
	structVer uint64
	gfValid   bool

	// Running aggregates mirroring wcg.Summarize.
	gets, posts, other      int
	h10, h20, h30, h40, h50 int
	refSet, refEmpty        int
	uriLenSum, uriCount     int
	maxDegree               int
	first, last             time.Time
	lastReq                 time.Time
	reqCount                int
	gapSum                  time.Duration

	buf []float64 // reusable buffer for the GF vector means
}

// NewCache returns a cache over w. The scratch may be shared with other
// caches that run on the same goroutine (one per detector engine); nil
// allocates a private one.
func NewCache(w *wcg.WCG, s *graph.Scratch) *Cache {
	if s == nil {
		s = graph.NewScratch()
	}
	return &Cache{w: w, scratch: s}
}

// Reset rebinds the cache to w, zeroing the sync cursor and every running
// aggregate so the next FeaturesInto recomputes from scratch — bit-identical
// to a fresh NewCache(w, s) — while retaining the reusable mean buffer. A
// nil s keeps the cache's current scratch (allocating one only if the cache
// never had any), which is what lets one cache+scratch pair sweep a whole
// batch of WCGs without per-episode allocation.
func (c *Cache) Reset(w *wcg.WCG, s *graph.Scratch) {
	if s == nil {
		s = c.scratch
	}
	if s == nil {
		s = graph.NewScratch()
	}
	buf := c.buf
	*c = Cache{w: w, scratch: s, buf: buf}
}

// Features returns a freshly allocated feature vector, syncing first.
func (c *Cache) Features() []float64 {
	return c.FeaturesInto(make([]float64, NumFeatures))
}

// FeaturesInto syncs the cache with the WCG and writes the 37 features
// into dst (grown if needed), returning it.
//
//dynalint:hotpath
func (c *Cache) FeaturesInto(dst []float64) []float64 {
	c.sync()
	if cap(dst) < NumFeatures {
		dst = make([]float64, NumFeatures)
	}
	dst = dst[:NumFeatures]
	copy(dst, c.v[:])
	return dst
}

// sync folds the edges appended since the last call into the running
// aggregates, reassembles the O(1) slots, and recomputes the topology
// slots when the structural projection changed.
//
//dynalint:hotpath
func (c *Cache) sync() {
	w := c.w
	g := w.Graph() // materialized once, then grown in place by the builder
	for _, e := range w.Edges[c.edgeCount:] {
		switch e.Kind {
		case wcg.EdgeRequest:
			switch e.Method {
			case "GET":
				c.gets++
			case "POST":
				c.posts++
			default:
				c.other++
			}
			if e.Referer != "" {
				c.refSet++
			} else {
				c.refEmpty++
			}
			c.uriLenSum += e.URILen
			c.uriCount++
			// f37 walks consecutive request-edge times in edge order,
			// zero times included, exactly like Summarize.
			if c.reqCount > 0 {
				d := e.Time.Sub(c.lastReq)
				if d < 0 {
					d = -d
				}
				c.gapSum += d
			}
			c.lastReq = e.Time
			c.reqCount++
		case wcg.EdgeResponse:
			switch {
			case e.StatusCode >= 100 && e.StatusCode < 200:
				c.h10++
			case e.StatusCode >= 200 && e.StatusCode < 300:
				c.h20++
			case e.StatusCode >= 300 && e.StatusCode < 400:
				c.h30++
			case e.StatusCode >= 400 && e.StatusCode < 500:
				c.h40++
			case e.StatusCode >= 500 && e.StatusCode < 600:
				c.h50++
			}
		}
		if !e.Time.IsZero() {
			if c.first.IsZero() || e.Time.Before(c.first) {
				c.first = e.Time
			}
			if c.last.IsZero() || e.Time.After(c.last) {
				c.last = e.Time
			}
		}
		// Only the endpoints of new edges can raise the max multigraph
		// degree; g already contains every appended edge.
		if d := g.Degree(e.From); d > c.maxDegree {
			c.maxDegree = d
		}
		if d := g.Degree(e.To); d > c.maxDegree {
			c.maxDegree = d
		}
	}
	c.edgeCount = len(w.Edges)

	n := g.N()
	m := g.M()
	c.v[0] = boolFeature(w.OriginKnown)
	c.v[1] = boolFeature(w.XFlashVersion != "")
	c.v[2] = float64(len(w.Edges))
	hosts, uris := w.HostURIStats()
	c.v[3] = float64(hosts)
	c.v[4] = 0
	if hosts > 0 {
		c.v[4] = float64(uris) / float64(hosts)
	}
	c.v[5] = 0
	if c.uriCount > 0 {
		c.v[5] = float64(c.uriLenSum) / float64(c.uriCount)
	}

	c.v[6] = float64(n)
	c.v[7] = float64(m)
	c.v[8] = float64(c.maxDegree)
	pairs, recip := w.SimpleEdgeStats()
	c.v[9] = 0
	if n >= 2 {
		c.v[9] = float64(pairs) / float64(n*(n-1))
	}
	c.v[10] = float64(2 * m)
	c.v[12] = 0
	if n > 0 {
		c.v[12] = float64(m) / float64(n)
	}
	c.v[13] = c.v[12] // avg out-degree equals avg in-degree (M/N)
	c.v[14] = 0
	if pairs > 0 {
		c.v[14] = float64(recip) / float64(pairs)
	}

	c.v[25] = float64(c.gets)
	c.v[26] = float64(c.posts)
	c.v[27] = float64(c.other)
	c.v[28] = float64(c.h10)
	c.v[29] = float64(c.h20)
	c.v[30] = float64(c.h30)
	c.v[31] = float64(c.h40)
	c.v[32] = float64(c.h50)
	c.v[33] = float64(c.refSet)
	c.v[34] = float64(c.refEmpty)

	reqs := c.gets + c.posts + c.other
	var dur time.Duration
	if !c.first.IsZero() {
		dur = c.last.Sub(c.first)
	}
	c.v[35] = 0
	if reqs > 0 {
		c.v[35] = dur.Seconds() / float64(reqs)
	}
	c.v[36] = 0
	if c.reqCount > 1 {
		c.v[36] = (c.gapSum / time.Duration(c.reqCount-1)).Seconds()
	}

	if sv := w.StructVersion(); !c.gfValid || sv != c.structVer {
		c.recomputeTopology(g)
		c.structVer = sv
		c.gfValid = true
	}
}

// recomputeTopology refreshes the GF slots that depend on the simple
// structural projection, through the reusable scratch workspace.
//
//dynalint:hotpath
func (c *Cache) recomputeTopology(g *graph.Digraph) {
	s := c.scratch
	c.v[11] = float64(g.DiameterS(s))
	c.buf = g.DegreeCentralityInto(c.buf, s)
	c.v[15] = graph.Mean(c.buf)
	c.buf = g.ClosenessCentralityInto(c.buf, s)
	c.v[16] = graph.Mean(c.buf)
	c.buf = g.BetweennessCentralityInto(c.buf, s)
	c.v[17] = graph.Mean(c.buf)
	c.buf = g.LoadCentralityInto(c.buf, s)
	c.v[18] = graph.Mean(c.buf)
	c.v[19] = float64(g.NodeConnectivityS(s))
	c.v[20] = g.AvgClusteringCoefficientS(s)
	c.buf = g.AvgNeighborDegreesInto(c.buf, s)
	c.v[21] = graph.Mean(c.buf)
	c.v[22] = g.AvgDegreeConnectivityS(s)
	c.v[23] = g.AvgNodesWithinKS(knnRadius, s)
	c.buf = g.PageRankInto(c.buf, s, 0.85, 100, 1e-10)
	c.v[24] = graph.Mean(c.buf)
}
