package features

import (
	"dynaminer/internal/graph"
	"dynaminer/internal/wcg"
)

// BatchExtractor materializes many WCG feature vectors into one contiguous
// []float64 slab (stride NumFeatures), the layout ml.FlatForest.ScoreBatch
// consumes. One Cache and one graph.Scratch are Reset-reused across every
// episode, so a warm extractor featurizes a whole batch without allocating:
// the per-episode NewCache + private-scratch churn of calling Extract in a
// loop is the single largest allocation source in the offline pipeline.
//
// The returned vectors alias the extractor's slab and stay valid only
// until the next Extract call; callers that retain vectors (dataset
// builders) should use the one-shot ExtractBatch, whose slab the caller
// owns outright.
//
// A BatchExtractor is not safe for concurrent use.
type BatchExtractor struct {
	cache   Cache
	scratch *graph.Scratch
	slab    []float64
	views   [][]float64
}

// NewBatchExtractor returns an empty extractor with its own scratch.
func NewBatchExtractor() *BatchExtractor {
	return &BatchExtractor{scratch: graph.NewScratch()}
}

// Extract featurizes every WCG into the reused slab and returns one
// stride-NumFeatures view per input. Views are invalidated by the next
// Extract on this extractor.
//
//dynalint:hotpath
func (be *BatchExtractor) Extract(ws []*wcg.WCG) [][]float64 {
	n := len(ws) * NumFeatures
	if cap(be.slab) < n {
		be.slab = make([]float64, 0, n)
	}
	be.slab = be.slab[:n]
	if cap(be.views) < len(ws) {
		be.views = make([][]float64, 0, len(ws))
	}
	be.views = be.views[:len(ws)]
	for i, w := range ws {
		be.cache.Reset(w, be.scratch)
		v := be.slab[i*NumFeatures : (i+1)*NumFeatures : (i+1)*NumFeatures]
		be.views[i] = be.cache.FeaturesInto(v)
	}
	return be.views
}

// Slab returns the backing array of the last Extract: len(ws)*NumFeatures
// floats, episode i at [i*NumFeatures, (i+1)*NumFeatures).
func (be *BatchExtractor) Slab() []float64 { return be.slab }

// ExtractBatch is the one-shot batch form of Extract: it featurizes every
// WCG through one reused cache+scratch pair into a freshly allocated slab
// and returns the per-episode views. The slab belongs to the caller, so
// the vectors may be retained indefinitely (dataset builders); the
// per-episode savings over looped Extract calls are identical to
// BatchExtractor's.
func ExtractBatch(ws []*wcg.WCG) [][]float64 {
	slab := make([]float64, len(ws)*NumFeatures)
	views := make([][]float64, len(ws))
	scratch := graph.NewScratch()
	var cache Cache
	for i, w := range ws {
		cache.Reset(w, scratch)
		v := slab[i*NumFeatures : (i+1)*NumFeatures : (i+1)*NumFeatures]
		views[i] = cache.FeaturesInto(v)
	}
	return views
}
