package features

import (
	"dynaminer/internal/graph"
	"dynaminer/internal/wcg"
)

// Extended feature names (x1..x8), appended after f1..f37 by
// ExtractExtended. These explore the "richer analytics" direction the
// paper's conclusion points at, using measures its feature set omits.
var extendedNames = []string{
	"Radius",               // x1: min eccentricity of the main component
	"Avg-Eccentricity",     // x2
	"Degeneracy",           // x3: max k-core number
	"Degree-Assortativity", // x4
	"SCC-Count",            // x5: strongly connected components
	"Largest-SCC",          // x6: size of the largest SCC
	"Cross-Domain-Redirs",  // x7: redirects crossing registered domains
	"TLD-Diversity",        // x8: distinct TLDs in redirect chains
}

// NumExtendedFeatures is the dimensionality of ExtractExtended's output.
const NumExtendedFeatures = NumFeatures + 8

// ExtendedName returns the name of extended-vector index i (0-based over
// the full 45-dimensional vector).
func ExtendedName(i int) string {
	if i < NumFeatures {
		return Name(i)
	}
	return extendedNames[i-NumFeatures]
}

// ExtractExtended computes the 37 Table II features plus 8 extended graph
// measures.
func ExtractExtended(w *wcg.WCG) []float64 {
	base := Extract(w)
	g := w.Graph()
	out := make([]float64, 0, NumExtendedFeatures)
	out = append(out, base...)

	out = append(out, float64(g.Radius()))
	ecc := g.Eccentricities()
	eccF := make([]float64, len(ecc))
	for i, e := range ecc {
		eccF[i] = float64(e)
	}
	out = append(out, graph.Mean(eccF))
	out = append(out, float64(g.Degeneracy()))
	out = append(out, g.DegreeAssortativity())
	sccs := g.StronglyConnectedComponents()
	out = append(out, float64(len(sccs)))
	largest := 0
	if len(sccs) > 0 {
		largest = len(sccs[0])
	}
	out = append(out, float64(largest))

	st := w.RedirectStats()
	out = append(out, float64(st.CrossDomainCount))
	out = append(out, float64(st.TLDDiversity))
	return out
}
