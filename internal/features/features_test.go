package features

import (
	"math"
	"net/http"
	"net/netip"
	"testing"
	"time"

	"dynaminer/internal/httpstream"
	"dynaminer/internal/wcg"
)

var t0 = time.Date(2016, 1, 5, 9, 0, 0, 0, time.UTC)

func tx(host, uri, method string, code int, ct string, size int, ref string, at time.Duration) httpstream.Transaction {
	h := http.Header{}
	if ref != "" {
		h.Set("Referer", ref)
	}
	return httpstream.Transaction{
		ClientIP: netip.MustParseAddr("10.0.0.9"), ServerIP: netip.MustParseAddr("198.51.100.4"),
		Method: method, URI: uri, Host: host,
		ReqHdr: h, RespHdr: http.Header{},
		ReqTime: t0.Add(at), RespTime: t0.Add(at + 15*time.Millisecond),
		StatusCode: code, ContentType: ct, BodySize: size,
	}
}

func sampleWCG() *wcg.WCG {
	return wcg.FromTransactions([]httpstream.Transaction{
		tx("search.com", "/results", "GET", 200, "text/html", 2000, "", 0),
		tx("site.com", "/page", "GET", 200, "text/html", 3000, "http://search.com/results", time.Second),
		tx("evil.net", "/drop.exe", "GET", 200, "application/x-msdownload", 50000, "http://site.com/page", 2*time.Second),
		tx("cnc.ru", "/beacon", "POST", 200, "text/plain", 10, "", 5*time.Second),
	})
}

func TestMetadataConsistency(t *testing.T) {
	if len(names) != NumFeatures || len(groups) != NumFeatures || len(novel) != NumFeatures {
		t.Fatal("metadata arrays must all have NumFeatures entries")
	}
	// Group sizes per Table II: 6 HLFs, 19 GFs, 10 HFs, 2 TFs.
	if got := len(Indices(HLF)); got != 6 {
		t.Fatalf("HLF count = %d, want 6", got)
	}
	if got := len(Indices(GF)); got != 19 {
		t.Fatalf("GF count = %d, want 19", got)
	}
	if got := len(Indices(HF)); got != 10 {
		t.Fatalf("HF count = %d, want 10", got)
	}
	if got := len(Indices(TF)); got != 2 {
		t.Fatalf("TF count = %d, want 2", got)
	}
	// 27 novel features per the paper.
	count := 0
	for i := 0; i < NumFeatures; i++ {
		if IsNovel(i) {
			count++
		}
	}
	if count != 27 {
		t.Fatalf("novel features = %d, want 27", count)
	}
	// Spot-check names and groups.
	if Name(0) != "Origin" || GroupOf(0) != HLF {
		t.Fatal("f1 metadata wrong")
	}
	if Name(6) != "Order" || GroupOf(6) != GF {
		t.Fatal("f7 metadata wrong")
	}
	if Name(36) != "Avg-Inter-Transact-Time" || GroupOf(36) != TF {
		t.Fatal("f37 metadata wrong")
	}
	if HLF.String() != "HLF" || TF.String() != "TF" || Group(9).String() != "?" {
		t.Fatal("group strings wrong")
	}
}

func TestIndicesCombined(t *testing.T) {
	idx := Indices(HLF, HF, TF)
	if len(idx) != 18 {
		t.Fatalf("HLF+HF+TF = %d features, want 18", len(idx))
	}
	for _, i := range idx {
		if GroupOf(i) == GF {
			t.Fatal("GF leaked into HLF+HF+TF selection")
		}
	}
}

func TestExtractVector(t *testing.T) {
	w := sampleWCG()
	v := Extract(w)
	if len(v) != NumFeatures {
		t.Fatalf("vector length = %d", len(v))
	}
	if v[0] != 0 { // first transaction has no referrer => origin unknown
		t.Fatalf("f1 origin = %v, want 0", v[0])
	}
	if v[2] != float64(w.Size()) {
		t.Fatalf("f3 WCG-size = %v, want %v", v[2], w.Size())
	}
	// f4: victim + 4 remote hosts = 5 (origin excluded).
	if v[3] != 5 {
		t.Fatalf("f4 conversation length = %v, want 5", v[3])
	}
	if v[6] != float64(w.Order()) {
		t.Fatalf("f7 order = %v", v[6])
	}
	if v[25] != 3 { // GETs
		t.Fatalf("f26 GETs = %v, want 3", v[25])
	}
	if v[26] != 1 { // POSTs
		t.Fatalf("f27 POSTs = %v, want 1", v[26])
	}
	if v[29] != 4 { // all four responses are 200
		t.Fatalf("f30 20X = %v, want 4", v[29])
	}
	if v[33] != 2 || v[34] != 2 { // referrers set/empty
		t.Fatalf("f34/f35 = %v/%v, want 2/2", v[33], v[34])
	}
	if v[36] <= 0 {
		t.Fatalf("f37 inter-transaction time = %v, want > 0", v[36])
	}
	if v[35] <= 0 {
		t.Fatalf("f36 duration = %v, want > 0", v[35])
	}
	// Avg pagerank is 1/order by construction.
	if math.Abs(v[24]-1/float64(w.Order())) > 1e-9 {
		t.Fatalf("f25 avg pagerank = %v, want %v", v[24], 1/float64(w.Order()))
	}
	for i, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			t.Fatalf("feature %d (%s) is %v", i+1, Name(i), x)
		}
		if x < 0 {
			t.Fatalf("feature %d (%s) negative: %v", i+1, Name(i), x)
		}
	}
}

func TestExtractEmptyWCG(t *testing.T) {
	v := Extract(wcg.FromTransactions(nil))
	for i, x := range v {
		if x != 0 {
			t.Fatalf("empty WCG feature %d (%s) = %v, want 0", i+1, Name(i), x)
		}
	}
}

func TestExtractDeterministic(t *testing.T) {
	a := Extract(sampleWCG())
	b := Extract(sampleWCG())
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("feature %d differs between runs: %v vs %v", i+1, a[i], b[i])
		}
	}
}

func TestOriginKnownFeature(t *testing.T) {
	w := wcg.FromTransactions([]httpstream.Transaction{
		tx("site.com", "/p", "GET", 200, "text/html", 100, "http://google.com/s?q=x", 0),
	})
	v := Extract(w)
	if v[0] != 1 {
		t.Fatalf("f1 = %v, want 1 for known origin", v[0])
	}
}

func TestExtractExtended(t *testing.T) {
	w := sampleWCG()
	v := ExtractExtended(w)
	if len(v) != NumExtendedFeatures {
		t.Fatalf("extended vector length = %d, want %d", len(v), NumExtendedFeatures)
	}
	// Prefix equals the base vector.
	base := Extract(w)
	for i := range base {
		if v[i] != base[i] {
			t.Fatalf("extended[%d] = %v differs from base %v", i, v[i], base[i])
		}
	}
	for i := NumFeatures; i < NumExtendedFeatures; i++ {
		if math.IsNaN(v[i]) || math.IsInf(v[i], 0) {
			t.Fatalf("extended feature %s is %v", ExtendedName(i), v[i])
		}
	}
	if ExtendedName(0) != "Origin" || ExtendedName(NumFeatures) != "Radius" {
		t.Fatal("extended names wrong")
	}
	// SCC count must cover all nodes or fewer components.
	idx := NumFeatures + 4
	if v[idx] <= 0 || v[idx] > float64(w.Order()) {
		t.Fatalf("SCC count = %v for order %d", v[idx], w.Order())
	}
}
