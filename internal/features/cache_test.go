package features

import (
	"math"
	"sort"
	"testing"

	"dynaminer/internal/graph"
	"dynaminer/internal/httpstream"
	"dynaminer/internal/synth"
	"dynaminer/internal/wcg"
)

// plainExtract is the pre-cache extractor body, kept verbatim as the
// oracle: Summarize plus the plain (allocating, from-scratch) graph
// measures. The cache must reproduce its output bit for bit.
func plainExtract(w *wcg.WCG) []float64 {
	s := w.Summarize()
	g := w.Graph()
	v := make([]float64, NumFeatures)

	v[0] = boolFeature(w.OriginKnown)
	v[1] = boolFeature(s.XFlashVersionSet)
	v[2] = float64(s.Size)
	v[3] = float64(s.UniqueHosts)
	v[4] = s.AvgURIsPerHost
	v[5] = s.AvgURILength

	v[6] = float64(g.N())
	v[7] = float64(g.M())
	v[8] = float64(g.MaxDegree())
	v[9] = g.Density()
	v[10] = float64(g.Volume())
	v[11] = float64(g.Diameter())
	v[12] = g.AvgInDegree()
	v[13] = g.AvgOutDegree()
	v[14] = g.Reciprocity()
	v[15] = graph.Mean(g.DegreeCentrality())
	v[16] = graph.Mean(g.ClosenessCentrality())
	v[17] = graph.Mean(g.BetweennessCentrality())
	v[18] = graph.Mean(g.LoadCentrality())
	v[19] = float64(g.NodeConnectivity())
	v[20] = g.AvgClusteringCoefficient()
	v[21] = graph.Mean(g.AvgNeighborDegrees())
	v[22] = g.AvgDegreeConnectivity()
	v[23] = g.AvgNodesWithinK(knnRadius)
	v[24] = graph.Mean(g.PageRank(0.85, 100, 1e-10))

	v[25] = float64(s.GETs)
	v[26] = float64(s.POSTs)
	v[27] = float64(s.OtherMethods)
	v[28] = float64(s.HTTP10X)
	v[29] = float64(s.HTTP20X)
	v[30] = float64(s.HTTP30X)
	v[31] = float64(s.HTTP40X)
	v[32] = float64(s.HTTP50X)
	v[33] = float64(s.RefererSet)
	v[34] = float64(s.RefererEmpty)

	reqs := s.GETs + s.POSTs + s.OtherMethods
	if reqs > 0 {
		v[35] = s.Duration.Seconds() / float64(reqs)
	}
	v[36] = s.AvgInterTransact.Seconds()
	return v
}

func byTime(txs []httpstream.Transaction) []httpstream.Transaction {
	ordered := make([]httpstream.Transaction, len(txs))
	copy(ordered, txs)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].ReqTime.Before(ordered[j].ReqTime) })
	return ordered
}

func requireSameVector(t *testing.T, ctx string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d != %d", ctx, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: feature %d (%s) = %v, want %v (bitwise)", ctx, i, Name(i), got[i], want[i])
		}
	}
}

// TestCacheMatchesPlainExtractIncrementally streams synthetic episodes
// through an incremental builder, syncing a single Cache after every
// append, and checks the cached vector is bit-identical to the plain
// extractor run from scratch on the same prefix.
func TestCacheMatchesPlainExtractIncrementally(t *testing.T) {
	episodes := synth.GenerateCorpus(synth.Config{Seed: 29, Infections: 6, Benign: 5})
	scratch := graph.NewScratch()
	for ei, ep := range episodes {
		txs := byTime(ep.Txs)
		ib := wcg.NewIncrementalBuilder()
		cache := NewCache(ib.Live(), scratch)
		var buf []float64
		for i, tx := range txs {
			if !ib.Append(tx) {
				t.Fatalf("episode %d: in-order append %d rejected", ei, i)
			}
			buf = cache.FeaturesInto(buf)
			want := plainExtract(wcg.FromTransactions(txs[:i+1]))
			requireSameVector(t, ep.Family, buf, want)
		}
	}
}

// TestExtractMatchesPlainExtract pins that the refactored one-shot
// Extract reproduces the original extractor bit for bit on whole WCGs.
func TestExtractMatchesPlainExtract(t *testing.T) {
	episodes := synth.GenerateCorpus(synth.Config{Seed: 41, Infections: 5, Benign: 5})
	for _, ep := range episodes {
		w := wcg.FromTransactions(ep.Txs)
		requireSameVector(t, ep.Family, Extract(w), plainExtract(w))
	}
}

// TestCacheSkipsTopologyWhenStructUnchanged checks the dirty tracking:
// appends that add only parallel edges must not trigger a topology
// recompute, and must still produce correct vectors.
func TestCacheSkipsTopologyWhenStructUnchanged(t *testing.T) {
	episodes := synth.GenerateCorpus(synth.Config{Seed: 13, Infections: 2, Benign: 2})
	for ei, ep := range episodes {
		txs := byTime(ep.Txs)
		ib := wcg.NewIncrementalBuilder()
		cache := NewCache(ib.Live(), nil)
		recomputes := 0
		var lastVer uint64
		for i, tx := range txs {
			ib.Append(tx)
			cache.Features()
			if v := ib.Live().StructVersion(); i == 0 || v != lastVer {
				recomputes++
				lastVer = v
			}
		}
		// A transaction against an already-seen host pair adds parallel
		// edges without moving StructVersion; every episode longer than
		// its host set must therefore skip at least one recompute.
		if len(txs) > 0 && recomputes > len(txs) {
			t.Fatalf("episode %d: %d recomputes for %d transactions", ei, recomputes, len(txs))
		}
		// Regardless of skips, the final vector matches from-scratch.
		requireSameVector(t, "final", cache.Features(), plainExtract(wcg.FromTransactions(txs)))
	}
}

// TestCacheEmptyWCG pins the all-zero vector on an empty graph, through
// both the cache and the one-shot Extract.
func TestCacheEmptyWCG(t *testing.T) {
	w := wcg.FromTransactions(nil)
	for i, v := range NewCache(w, nil).Features() {
		if v != 0 {
			t.Fatalf("feature %d (%s) = %v on empty WCG", i, Name(i), v)
		}
	}
}
