// Package features computes DynaMiner's 37 payload-agnostic features
// (Table II) from an annotated web conversation graph: 6 high-level
// features (HLFs), 19 graph-centric features (GFs), 10 HTTP header features
// (HFs), and 2 temporal features (TFs).
package features

import (
	"dynaminer/internal/graph"
	"dynaminer/internal/wcg"
)

// NumFeatures is the size of a feature vector (f1..f37).
const NumFeatures = 37

// Group labels a feature family from Table II.
type Group int

// Feature groups.
const (
	HLF Group = iota + 1 // high-level features f1-f6
	GF                   // graph features f7-f25
	HF                   // header features f26-f35
	TF                   // temporal features f36-f37
)

// String names the group the way the paper abbreviates it.
func (g Group) String() string {
	switch g {
	case HLF:
		return "HLF"
	case GF:
		return "GF"
	case HF:
		return "HF"
	case TF:
		return "TF"
	default:
		return "?"
	}
}

// names holds the Table II feature names, indexed f1..f37 (0-based).
var names = [NumFeatures]string{
	"Origin",                     // f1
	"X-Flash-Version",            // f2
	"WCG-Size",                   // f3
	"Conversation-Length",        // f4
	"Avg-URIs-per-Host",          // f5
	"Average-URI-Length",         // f6
	"Order",                      // f7
	"Size",                       // f8
	"Degree",                     // f9
	"Density",                    // f10
	"Volume",                     // f11
	"Diameter",                   // f12
	"Avg-In-Degree",              // f13
	"Avg-Out-Degree",             // f14
	"Reciprocity",                // f15
	"Avg-Degree-Centrality",      // f16
	"Avg-Closeness-Centrality",   // f17
	"Avg-Betweenness-Centrality", // f18
	"Avg-Load-Centrality",        // f19
	"Avg-Node-Centrality",        // f20
	"Avg-Clustering-Coefficient", // f21
	"Avg-Neighbor-Degree",        // f22
	"Avg-Degree-Connectivity",    // f23
	"Avg-K-Nearest-Neighbors",    // f24
	"Avg-PageRank",               // f25
	"GETs",                       // f26
	"POSTs",                      // f27
	"Other-Methods",              // f28
	"HTTP-10Xs",                  // f29
	"HTTP-20Xs",                  // f30
	"HTTP-30Xs",                  // f31
	"HTTP-40Xs",                  // f32
	"HTTP-50Xs",                  // f33
	"Referrer-Ctrs",              // f34
	"No-Referrer-Ctrs",           // f35
	"Duration",                   // f36
	"Avg-Inter-Transact-Time",    // f37
}

// groups maps each feature index to its Table II group.
var groups = [NumFeatures]Group{
	HLF, HLF, HLF, HLF, HLF, HLF,
	GF, GF, GF, GF, GF, GF, GF, GF, GF, GF, GF, GF, GF, GF, GF, GF, GF, GF, GF,
	HF, HF, HF, HF, HF, HF, HF, HF, HF, HF,
	TF, TF,
}

// novel marks the 27 features introduced by the paper (checkmarks in
// Table II's last column).
var novel = [NumFeatures]bool{
	false, true, false, true, false, true, // f1-f6
	false, false, true, false, true, false, true, true, true, true, true, true, true, true, false, true, true, true, true, // f7-f25
	true, true, true, true, true, true, true, true, false, false, // f26-f35
	true, true, // f36-f37
}

// Name returns the Table II name of feature i (0-based index for f(i+1)).
func Name(i int) string { return names[i] }

// GroupOf returns the group of feature i.
func GroupOf(i int) Group { return groups[i] }

// IsNovel reports whether feature i is novel to the paper.
func IsNovel(i int) bool { return novel[i] }

// Indices returns the 0-based feature indices belonging to any of the given
// groups, in ascending order.
func Indices(gs ...Group) []int {
	want := make(map[Group]bool, len(gs))
	for _, g := range gs {
		want[g] = true
	}
	var out []int
	for i, g := range groups {
		if want[g] {
			out = append(out, i)
		}
	}
	return out
}

// knnRadius is the k used by f24: nodes within distance k.
const knnRadius = 2

// Extract computes the full 37-dimensional feature vector of a WCG.
func Extract(w *wcg.WCG) []float64 {
	s := w.Summarize()
	g := w.Graph()
	v := make([]float64, NumFeatures)

	// High-level features.
	v[0] = boolFeature(w.OriginKnown)
	v[1] = boolFeature(s.XFlashVersionSet)
	v[2] = float64(s.Size)
	v[3] = float64(s.UniqueHosts)
	v[4] = s.AvgURIsPerHost
	v[5] = s.AvgURILength

	// Graph features.
	v[6] = float64(g.N())
	v[7] = float64(g.M())
	v[8] = float64(g.MaxDegree())
	v[9] = g.Density()
	v[10] = float64(g.Volume())
	v[11] = float64(g.Diameter())
	v[12] = g.AvgInDegree()
	v[13] = g.AvgOutDegree()
	v[14] = g.Reciprocity()
	v[15] = graph.Mean(g.DegreeCentrality())
	v[16] = graph.Mean(g.ClosenessCentrality())
	v[17] = graph.Mean(g.BetweennessCentrality())
	v[18] = graph.Mean(g.LoadCentrality())
	v[19] = float64(g.NodeConnectivity())
	v[20] = g.AvgClusteringCoefficient()
	v[21] = graph.Mean(g.AvgNeighborDegrees())
	v[22] = g.AvgDegreeConnectivity()
	v[23] = g.AvgNodesWithinK(knnRadius)
	v[24] = graph.Mean(g.PageRank(0.85, 100, 1e-10))

	// Header features.
	v[25] = float64(s.GETs)
	v[26] = float64(s.POSTs)
	v[27] = float64(s.OtherMethods)
	v[28] = float64(s.HTTP10X)
	v[29] = float64(s.HTTP20X)
	v[30] = float64(s.HTTP30X)
	v[31] = float64(s.HTTP40X)
	v[32] = float64(s.HTTP50X)
	v[33] = float64(s.RefererSet)
	v[34] = float64(s.RefererEmpty)

	// Temporal features: f36 is the average duration to access a single
	// URI (total conversation span over request count), f37 the mean
	// inter-transaction gap. Both in seconds.
	reqs := s.GETs + s.POSTs + s.OtherMethods
	if reqs > 0 {
		v[35] = s.Duration.Seconds() / float64(reqs)
	}
	v[36] = s.AvgInterTransact.Seconds()
	return v
}

func boolFeature(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
