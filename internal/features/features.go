// Package features computes DynaMiner's 37 payload-agnostic features
// (Table II) from an annotated web conversation graph: 6 high-level
// features (HLFs), 19 graph-centric features (GFs), 10 HTTP header features
// (HFs), and 2 temporal features (TFs).
package features

import (
	"dynaminer/internal/wcg"
)

// NumFeatures is the size of a feature vector (f1..f37).
const NumFeatures = 37

// Group labels a feature family from Table II.
type Group int

// Feature groups.
const (
	HLF Group = iota + 1 // high-level features f1-f6
	GF                   // graph features f7-f25
	HF                   // header features f26-f35
	TF                   // temporal features f36-f37
)

// String names the group the way the paper abbreviates it.
func (g Group) String() string {
	switch g {
	case HLF:
		return "HLF"
	case GF:
		return "GF"
	case HF:
		return "HF"
	case TF:
		return "TF"
	default:
		return "?"
	}
}

// names holds the Table II feature names, indexed f1..f37 (0-based).
var names = [NumFeatures]string{
	"Origin",                     // f1
	"X-Flash-Version",            // f2
	"WCG-Size",                   // f3
	"Conversation-Length",        // f4
	"Avg-URIs-per-Host",          // f5
	"Average-URI-Length",         // f6
	"Order",                      // f7
	"Size",                       // f8
	"Degree",                     // f9
	"Density",                    // f10
	"Volume",                     // f11
	"Diameter",                   // f12
	"Avg-In-Degree",              // f13
	"Avg-Out-Degree",             // f14
	"Reciprocity",                // f15
	"Avg-Degree-Centrality",      // f16
	"Avg-Closeness-Centrality",   // f17
	"Avg-Betweenness-Centrality", // f18
	"Avg-Load-Centrality",        // f19
	"Avg-Node-Centrality",        // f20
	"Avg-Clustering-Coefficient", // f21
	"Avg-Neighbor-Degree",        // f22
	"Avg-Degree-Connectivity",    // f23
	"Avg-K-Nearest-Neighbors",    // f24
	"Avg-PageRank",               // f25
	"GETs",                       // f26
	"POSTs",                      // f27
	"Other-Methods",              // f28
	"HTTP-10Xs",                  // f29
	"HTTP-20Xs",                  // f30
	"HTTP-30Xs",                  // f31
	"HTTP-40Xs",                  // f32
	"HTTP-50Xs",                  // f33
	"Referrer-Ctrs",              // f34
	"No-Referrer-Ctrs",           // f35
	"Duration",                   // f36
	"Avg-Inter-Transact-Time",    // f37
}

// groups maps each feature index to its Table II group.
var groups = [NumFeatures]Group{
	HLF, HLF, HLF, HLF, HLF, HLF,
	GF, GF, GF, GF, GF, GF, GF, GF, GF, GF, GF, GF, GF, GF, GF, GF, GF, GF, GF,
	HF, HF, HF, HF, HF, HF, HF, HF, HF, HF,
	TF, TF,
}

// novel marks the 27 features introduced by the paper (checkmarks in
// Table II's last column).
var novel = [NumFeatures]bool{
	false, true, false, true, false, true, // f1-f6
	false, false, true, false, true, false, true, true, true, true, true, true, true, true, false, true, true, true, true, // f7-f25
	true, true, true, true, true, true, true, true, false, false, // f26-f35
	true, true, // f36-f37
}

// Name returns the Table II name of feature i (0-based index for f(i+1)).
func Name(i int) string { return names[i] }

// GroupOf returns the group of feature i.
func GroupOf(i int) Group { return groups[i] }

// IsNovel reports whether feature i is novel to the paper.
func IsNovel(i int) bool { return novel[i] }

// Indices returns the 0-based feature indices belonging to any of the given
// groups, in ascending order.
func Indices(gs ...Group) []int {
	want := make(map[Group]bool, len(gs))
	for _, g := range gs {
		want[g] = true
	}
	var out []int
	for i, g := range groups {
		if want[g] {
			out = append(out, i)
		}
	}
	return out
}

// knnRadius is the k used by f24: nodes within distance k.
const knnRadius = 2

// Extract computes the full 37-dimensional feature vector of a WCG. It is
// the one-shot form of Cache: both the batch experiments and the detector's
// incremental path run the same extraction code, so their vectors agree
// bit for bit (pinned by the differential tests in this package and in
// internal/detector).
func Extract(w *wcg.WCG) []float64 {
	return NewCache(w, nil).Features()
}

func boolFeature(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
