package wcg

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Wire format for WCG export. Node and edge attributes are flattened into
// JSON-friendly shapes so external tooling (notebooks, dashboards) can
// consume conversation graphs without Go.
type wcgWire struct {
	OriginKnown   bool       `json:"originKnown"`
	OriginHost    string     `json:"originHost,omitempty"`
	DNT           bool       `json:"dnt,omitempty"`
	XFlashVersion string     `json:"xFlashVersion,omitempty"`
	Nodes         []nodeWire `json:"nodes"`
	Edges         []edgeWire `json:"edges"`
}

type nodeWire struct {
	ID       int            `json:"id"`
	Host     string         `json:"host"`
	IP       string         `json:"ip,omitempty"`
	Type     string         `json:"type"`
	URIs     int            `json:"uris"`
	Payloads map[string]int `json:"payloads,omitempty"`
}

type edgeWire struct {
	From        int    `json:"from"`
	To          int    `json:"to"`
	Kind        string `json:"kind"`
	Stage       int    `json:"stage"`
	Time        string `json:"time,omitempty"`
	Method      string `json:"method,omitempty"`
	URILen      int    `json:"uriLen,omitempty"`
	StatusCode  int    `json:"status,omitempty"`
	PayloadType string `json:"payload,omitempty"`
	PayloadSize int    `json:"payloadSize,omitempty"`
	CrossDomain bool   `json:"crossDomain,omitempty"`
}

// WriteJSON serializes the annotated WCG.
func (w *WCG) WriteJSON(out io.Writer) error {
	wire := wcgWire{
		OriginKnown:   w.OriginKnown,
		OriginHost:    w.OriginHost,
		DNT:           w.DNT,
		XFlashVersion: w.XFlashVersion,
		Nodes:         make([]nodeWire, 0, len(w.Nodes)),
		Edges:         make([]edgeWire, 0, len(w.Edges)),
	}
	for _, n := range w.Nodes {
		nw := nodeWire{
			ID:   n.ID,
			Host: n.Host,
			Type: n.Type.String(),
			URIs: len(n.URIs),
		}
		if n.IP.IsValid() {
			nw.IP = n.IP.String()
		}
		if len(n.Payloads) > 0 {
			nw.Payloads = make(map[string]int, len(n.Payloads))
			for c, count := range n.Payloads {
				nw.Payloads[c.String()] = count
			}
		}
		wire.Nodes = append(wire.Nodes, nw)
	}
	for _, e := range w.Edges {
		ew := edgeWire{
			From:        e.From,
			To:          e.To,
			Kind:        e.Kind.String(),
			Stage:       int(e.Stage),
			Method:      e.Method,
			URILen:      e.URILen,
			StatusCode:  e.StatusCode,
			PayloadSize: e.PayloadSize,
			CrossDomain: e.CrossDomain,
		}
		if !e.Time.IsZero() {
			ew.Time = e.Time.Format(time.RFC3339Nano)
		}
		if e.PayloadType != PayloadNone {
			ew.PayloadType = e.PayloadType.String()
		}
		wire.Edges = append(wire.Edges, ew)
	}
	enc := json.NewEncoder(out)
	if err := enc.Encode(wire); err != nil {
		return fmt.Errorf("wcg: encode: %w", err)
	}
	return nil
}
