package wcg

import (
	"math/rand"
	"testing"
	"time"

	"dynaminer/internal/synth"
)

// TestStageInvariantsOverCorpus checks the Section III-C staging rules on
// generated episodes: pre-download edges never follow the first exploit
// download, post-download edges never precede the last one, and graphs
// without exploit downloads stay entirely pre-download.
func TestStageInvariantsOverCorpus(t *testing.T) {
	eps := synth.GenerateCorpus(synth.Config{Seed: 77, Infections: 60, Benign: 60})
	for i := range eps {
		w := FromTransactions(eps[i].Txs)

		var tFirst, tLast time.Time
		for _, e := range w.Edges {
			if e.Kind == EdgeResponse && e.StatusCode >= 200 && e.StatusCode < 300 && e.PayloadType.IsExploitType() {
				if tFirst.IsZero() || e.Time.Before(tFirst) {
					tFirst = e.Time
				}
				if e.Time.After(tLast) {
					tLast = e.Time
				}
			}
		}
		for _, e := range w.Edges {
			switch e.Stage {
			case StagePreDownload:
				if !tFirst.IsZero() && e.Time.After(tFirst) && e.Kind != EdgeRedirect {
					// Request/response edges staged pre-download must not
					// come after the first exploit delivery.
					t.Fatalf("episode %d (%s): pre-download edge at %v after first download %v",
						i, eps[i].Family, e.Time, tFirst)
				}
			case StagePostDownload:
				if tFirst.IsZero() {
					t.Fatalf("episode %d: post-download stage without any download", i)
				}
				if e.Time.Before(tLast) {
					t.Fatalf("episode %d: post-download edge at %v before last download %v",
						i, eps[i].Family, tLast)
				}
			case StageDownload:
				if tFirst.IsZero() {
					t.Fatalf("episode %d: download stage without any download", i)
				}
			}
		}
	}
}

// TestNodeRoleInvariants: exactly one victim; malicious nodes actually
// delivered exploit payloads; intermediaries touch only redirect edges.
func TestNodeRoleInvariants(t *testing.T) {
	eps := synth.GenerateCorpus(synth.Config{Seed: 78, Infections: 40, Benign: 40})
	for i := range eps {
		w := FromTransactions(eps[i].Txs)
		victims := 0
		for _, n := range w.Nodes {
			switch n.Type {
			case NodeVictim:
				victims++
			case NodeMalicious:
				served := false
				for _, e := range w.Edges {
					if e.Kind == EdgeResponse && e.From == n.ID && e.PayloadType.IsExploitType() &&
						e.StatusCode >= 200 && e.StatusCode < 300 {
						served = true
					}
				}
				if !served {
					t.Fatalf("episode %d: node %s malicious without delivering a payload", i, n.Host)
				}
			case NodeIntermediary:
				for _, e := range w.Edges {
					if e.Kind != EdgeRedirect && (e.From == n.ID || e.To == n.ID) {
						t.Fatalf("episode %d: intermediary %s has non-redirect edge", i, n.Host)
					}
				}
			}
		}
		if len(eps[i].Txs) > 0 && victims != 1 {
			t.Fatalf("episode %d: %d victim nodes", i, victims)
		}
		// Benign episodes must have no malicious nodes unless they include
		// exploit-class downloads (webmail attachments, unofficial mirrors).
		if !eps[i].Infection {
			s := w.Summarize()
			for _, n := range w.Nodes {
				if n.Type == NodeMalicious && s.DownloadedExploits == 0 {
					t.Fatalf("episode %d: benign WCG with malicious node but no downloads", i)
				}
			}
		}
	}
}

// TestFeatureTotalsMatchTransactions: request-method counts across the WCG
// equal the number of transactions fed in.
func TestFeatureTotalsMatchTransactions(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		fam := synth.Families[trial%len(synth.Families)].Name
		ep := synth.GenerateInfection(fam, time.Date(2016, 5, 1, 0, 0, 0, 0, time.UTC), rng)
		s := FromTransactions(ep.Txs).Summarize()
		if got := s.GETs + s.POSTs + s.OtherMethods; got != len(ep.Txs) {
			t.Fatalf("trial %d: %d request edges for %d transactions", trial, got, len(ep.Txs))
		}
		codes := s.HTTP10X + s.HTTP20X + s.HTTP30X + s.HTTP40X + s.HTTP50X
		if codes != len(ep.Txs) {
			t.Fatalf("trial %d: %d response codes for %d transactions", trial, codes, len(ep.Txs))
		}
	}
}
