package wcg

import (
	"fmt"
	"sort"
	"strings"
)

// DOT renders the WCG in Graphviz format in the style of the paper's
// Figure 6: nodes are hosts colored by role, request edges show the HTTP
// method and URI length, response edges show status code, payload type and
// size, and redirect edges are dashed.
func (w *WCG) DOT(title string) string {
	var sb strings.Builder
	sb.WriteString("digraph wcg {\n")
	if title != "" {
		fmt.Fprintf(&sb, "  label=%q;\n", title)
	}
	sb.WriteString("  rankdir=LR;\n  node [shape=box, style=filled];\n")
	for _, n := range w.Nodes {
		color := "white"
		switch n.Type {
		case NodeVictim:
			color = "lightblue"
		case NodeMalicious:
			color = "salmon"
		case NodeIntermediary:
			color = "lightyellow"
		case NodeOrigin:
			color = "lightgreen"
		}
		fmt.Fprintf(&sb, "  n%d [label=%q, fillcolor=%q];\n", n.ID, n.Host, color)
	}
	edges := make([]*Edge, len(w.Edges))
	copy(edges, w.Edges)
	sort.SliceStable(edges, func(i, j int) bool { return edges[i].Time.Before(edges[j].Time) })
	for _, e := range edges {
		switch e.Kind {
		case EdgeRequest:
			fmt.Fprintf(&sb, "  n%d -> n%d [label=\"req: %s,%d\"];\n", e.From, e.To, e.Method, e.URILen)
		case EdgeResponse:
			fmt.Fprintf(&sb, "  n%d -> n%d [label=\"res: %d,%s,%dB\", color=gray];\n",
				e.From, e.To, e.StatusCode, e.PayloadType, e.PayloadSize)
		case EdgeRedirect:
			fmt.Fprintf(&sb, "  n%d -> n%d [label=\"redir\", style=dashed, color=red];\n", e.From, e.To)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}
