package wcg

import (
	"regexp"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Redirect evidence patterns in document bodies (Section III-D: redirection
// evidence is often embedded in HTML or JavaScript, sometimes obfuscated).
var (
	reMetaRefresh = regexp.MustCompile(`(?i)<meta[^>]*http-equiv=["']?refresh["']?[^>]*url=([^"'> ]+)`)
	reJSLocation  = regexp.MustCompile(`(?i)(?:window\.location|document\.location|location\.href|top\.location)\s*=\s*["']([^"']+)["']`)
	reIFrameSrc   = regexp.MustCompile(`(?i)<iframe[^>]*src=["']?(http[^"'> ]+)`)
	reFromChar    = regexp.MustCompile(`String\.fromCharCode\(([0-9,\s]+)\)`)
	reHexEscape   = regexp.MustCompile(`\\x([0-9a-fA-F]{2})`)
	rePctEscape   = regexp.MustCompile(`%([0-9a-fA-F]{2})`)
)

// Deobfuscate applies the lightweight decoding passes miscreants commonly
// layer over redirect code: String.fromCharCode(...) expansion, \xNN
// escapes, and percent-encoding. The passes run until a fixed point (at
// most four rounds) so stacked encodings unwrap.
func Deobfuscate(body string) string {
	for round := 0; round < 4; round++ {
		decoded := reFromChar.ReplaceAllStringFunc(body, func(m string) string {
			inner := reFromChar.FindStringSubmatch(m)[1]
			var sb strings.Builder
			for _, part := range strings.Split(inner, ",") {
				code, err := strconv.Atoi(strings.TrimSpace(part))
				if err != nil || code < 0 || code > 0x10ffff {
					return m
				}
				sb.WriteRune(rune(code))
			}
			return sb.String()
		})
		decoded = reHexEscape.ReplaceAllStringFunc(decoded, func(m string) string {
			v, err := strconv.ParseUint(m[2:], 16, 8)
			if err != nil {
				return m
			}
			return string(rune(v))
		})
		decoded = rePctEscape.ReplaceAllStringFunc(decoded, func(m string) string {
			v, err := strconv.ParseUint(m[1:], 16, 8)
			if err != nil {
				return m
			}
			return string(rune(v))
		})
		if decoded == body {
			return decoded
		}
		body = decoded
	}
	return body
}

// SniffBodyRedirects extracts redirect target URLs from an HTML or
// JavaScript body after deobfuscation: meta refreshes, JavaScript location
// assignments, and iframe sources.
func SniffBodyRedirects(body []byte) []string {
	if len(body) == 0 {
		return nil
	}
	text := Deobfuscate(string(body))
	var out []string
	seen := make(map[string]struct{})
	add := func(matches [][]string) {
		for _, m := range matches {
			u := strings.TrimSpace(m[1])
			if u == "" {
				continue
			}
			if _, ok := seen[u]; ok {
				continue
			}
			seen[u] = struct{}{}
			out = append(out, u)
		}
	}
	add(reMetaRefresh.FindAllStringSubmatch(text, -1))
	add(reJSLocation.FindAllStringSubmatch(text, -1))
	add(reIFrameSrc.FindAllStringSubmatch(text, -1))
	return out
}

// Chain is one reconstructed redirection chain: the ordered node ids and
// the timestamps of the hops between them.
type Chain struct {
	Nodes []int
	Times []time.Time // one per hop: len(Nodes)-1 entries
}

// Hops is the number of redirect hops in the chain.
func (c Chain) Hops() int { return len(c.Nodes) - 1 }

// RedirectChains reconstructs redirection chains from the redirect edges:
// edges are sorted by time and greedily linked head-to-tail (a hop B->C
// continues a chain ending at B if it is not earlier than the chain's last
// hop). Each redirect edge belongs to exactly one chain.
func (w *WCG) RedirectChains() []Chain {
	var redirs []*Edge
	for _, e := range w.Edges {
		if e.Kind == EdgeRedirect {
			redirs = append(redirs, e)
		}
	}
	sort.SliceStable(redirs, func(i, j int) bool { return redirs[i].Time.Before(redirs[j].Time) })

	var chains []Chain
	// chainAt maps a node id to the index of the open chain ending there.
	chainAt := make(map[int]int)
	for _, e := range redirs {
		if ci, ok := chainAt[e.From]; ok {
			c := &chains[ci]
			c.Nodes = append(c.Nodes, e.To)
			c.Times = append(c.Times, e.Time)
			delete(chainAt, e.From)
			chainAt[e.To] = ci
			continue
		}
		chains = append(chains, Chain{Nodes: []int{e.From, e.To}, Times: []time.Time{e.Time}})
		chainAt[e.To] = len(chains) - 1
	}
	return chains
}

// RedirectStats aggregates redirect-chain measures for graph-level
// annotations and features.
type RedirectStats struct {
	TotalRedirects   int           // all redirect edges (the paper's modified sum-of-all rule)
	MaxChainLen      int           // unique hops in the longest chain
	CrossDomainCount int           // redirects crossing registered domains
	TLDDiversity     int           // unique TLDs among redirect participants
	AvgRedirectDelay time.Duration // mean delay between successive hops within chains
}

// RedirectStats computes the redirect aggregates of the WCG.
func (w *WCG) RedirectStats() RedirectStats {
	var st RedirectStats
	tlds := make(map[string]struct{})
	for _, e := range w.Edges {
		if e.Kind != EdgeRedirect {
			continue
		}
		st.TotalRedirects++
		if e.CrossDomain {
			st.CrossDomainCount++
		}
		tlds[topLevelDomain(w.Nodes[e.From].Host)] = struct{}{}
		tlds[topLevelDomain(w.Nodes[e.To].Host)] = struct{}{}
	}
	st.TLDDiversity = len(tlds)

	var delaySum time.Duration
	delays := 0
	for _, c := range w.RedirectChains() {
		if c.Hops() > st.MaxChainLen {
			st.MaxChainLen = c.Hops()
		}
		for i := 1; i < len(c.Times); i++ {
			delaySum += c.Times[i].Sub(c.Times[i-1])
			delays++
		}
	}
	if delays > 0 {
		st.AvgRedirectDelay = delaySum / time.Duration(delays)
	}
	return st
}
