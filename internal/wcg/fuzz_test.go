package wcg

import (
	"testing"
)

// FuzzDeobfuscate: the decoder must terminate and never panic on arbitrary
// script text.
func FuzzDeobfuscate(f *testing.F) {
	f.Add(`String.fromCharCode(104,116,116,112)`)
	f.Add(`\x68\x74%74%70`)
	f.Add(`%5Cx68`)
	f.Add(`String.fromCharCode(`)
	f.Add(`String.fromCharCode(-1,99999999999999999999)`)
	f.Fuzz(func(t *testing.T, body string) {
		out := Deobfuscate(body)
		// Decoding only ever shrinks or preserves escape sequences; a
		// pathological blow-up would indicate a decode loop bug.
		if len(out) > 4*len(body)+16 {
			t.Fatalf("deobfuscation grew %d -> %d bytes", len(body), len(out))
		}
	})
}

// FuzzSniffBodyRedirects: sniffing arbitrary HTML must not panic and every
// extracted URL must be non-empty.
func FuzzSniffBodyRedirects(f *testing.F) {
	f.Add([]byte(`<meta http-equiv="refresh" content="0; url=http://a.b/c">`))
	f.Add([]byte(`<iframe src="http://x.y/z">`))
	f.Add([]byte(`window.location="http://q.r/s"`))
	f.Add([]byte(``))
	f.Add([]byte(`<<<>>>"'`))
	f.Fuzz(func(t *testing.T, body []byte) {
		for _, u := range SniffBodyRedirects(body) {
			if u == "" {
				t.Fatal("empty redirect target extracted")
			}
		}
	})
}
