package wcg

import (
	"bytes"
	"net/netip"
	"sort"
	"testing"
	"time"

	"dynaminer/internal/httpstream"
	"dynaminer/internal/synth"
)

// jsonBytes is the byte-identity comparison vehicle: two WCGs are "the
// same" when their full wire serializations match.
func jsonBytes(t *testing.T, w *WCG) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := w.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func sortedByReqTime(txs []httpstream.Transaction) []httpstream.Transaction {
	ordered := make([]httpstream.Transaction, len(txs))
	copy(ordered, txs)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].ReqTime.Before(ordered[j].ReqTime) })
	return ordered
}

// TestIncrementalMatchesBatch streams synthetic episodes through the
// incremental builder and checks that at every prefix the finalized WCG is
// byte-identical to FromTransactions over the same transactions, and that
// the O(1) structural counters agree with the full graph recomputation.
func TestIncrementalMatchesBatch(t *testing.T) {
	episodes := synth.GenerateCorpus(synth.Config{Seed: 11, Infections: 8, Benign: 6})
	for ei, ep := range episodes {
		txs := sortedByReqTime(ep.Txs)
		ib := NewIncrementalBuilder()
		for i, tx := range txs {
			if !ib.Append(tx) {
				t.Fatalf("episode %d (%s): in-order append %d rejected", ei, ep.Family, i)
			}
			// Byte-compare every prefix on small episodes, and the final
			// graph always; full quadratic comparison on long chains adds
			// minutes without adding coverage.
			if len(txs) <= 30 || i == len(txs)-1 {
				got := jsonBytes(t, ib.Finalize())
				want := jsonBytes(t, FromTransactions(txs[:i+1]))
				if !bytes.Equal(got, want) {
					t.Fatalf("episode %d (%s): prefix %d diverged\nincremental: %s\nbatch:       %s",
						ei, ep.Family, i+1, got, want)
				}
			}
		}
		// The maintained counters must match a from-scratch recomputation.
		w := ib.Live()
		g := w.Graph()
		pairs, recip := w.SimpleEdgeStats()
		wantDensity := g.Density()
		var gotDensity float64
		if n := len(w.Nodes); n >= 2 {
			gotDensity = float64(pairs) / float64(n*(n-1))
		}
		if gotDensity != wantDensity {
			t.Fatalf("episode %d: density from counters %v != %v", ei, gotDensity, wantDensity)
		}
		wantRecip := g.Reciprocity()
		var gotRecip float64
		if pairs > 0 {
			gotRecip = float64(recip) / float64(pairs)
		}
		if gotRecip != wantRecip {
			t.Fatalf("episode %d: reciprocity from counters %v != %v", ei, gotRecip, wantRecip)
		}
		hosts, uris := w.HostURIStats()
		s := w.Summarize()
		if hosts != s.UniqueHosts {
			t.Fatalf("episode %d: uniqueHosts counter %d != %d", ei, hosts, s.UniqueHosts)
		}
		wantURIs := 0
		for _, n := range w.Nodes {
			if n.Type != NodeOrigin {
				wantURIs += len(n.URIs)
			}
		}
		if uris != wantURIs {
			t.Fatalf("episode %d: uriTotal counter %d != %d", ei, uris, wantURIs)
		}
	}
}

// TestStructVersionStaysPutOnParallelEdges pins the dirty-tracking
// contract: re-requesting a known URI pair adds parallel edges without
// moving StructVersion, while a fresh host moves it.
func TestStructVersionStaysPutOnParallelEdges(t *testing.T) {
	base := time.Date(2014, 3, 1, 10, 0, 0, 0, time.UTC)
	tx := func(host, uri string, at time.Time) httpstream.Transaction {
		return httpstream.Transaction{
			ClientIP: netip.MustParseAddr("10.0.0.5"), ServerIP: netip.MustParseAddr("93.184.216.34"),
			Host: host, URI: uri, Method: "GET", StatusCode: 200,
			ReqTime: at, RespTime: at.Add(30 * time.Millisecond),
			ContentType: "text/html", BodySize: 900,
		}
	}
	ib := NewIncrementalBuilder()
	ib.Append(tx("a.example.com", "/", base))
	v1 := ib.Live().StructVersion()
	ib.Append(tx("a.example.com", "/again", base.Add(time.Second)))
	if v2 := ib.Live().StructVersion(); v2 != v1 {
		t.Fatalf("parallel request/response edges moved StructVersion %d -> %d", v1, v2)
	}
	ib.Append(tx("b.example.com", "/", base.Add(2*time.Second)))
	if v3 := ib.Live().StructVersion(); v3 == v1 {
		t.Fatal("new host did not move StructVersion")
	}
}

// TestAppendRejectsOutOfOrder checks the rejection happens before any
// mutation: the WCG serialization is unchanged after the refused append.
func TestAppendRejectsOutOfOrder(t *testing.T) {
	episodes := synth.GenerateCorpus(synth.Config{Seed: 3, Infections: 1, Benign: 0})
	txs := sortedByReqTime(episodes[0].Txs)
	if len(txs) < 3 {
		t.Skip("episode too short")
	}
	ib := NewIncrementalBuilder()
	for _, tx := range txs[1:] {
		if !ib.Append(tx) {
			t.Fatal("in-order append rejected")
		}
	}
	before := jsonBytes(t, ib.Live().Clone())
	stale := txs[0] // strictly earlier than everything already appended
	if ib.Append(stale) {
		t.Fatal("out-of-order append accepted")
	}
	after := jsonBytes(t, ib.Live().Clone())
	if !bytes.Equal(before, after) {
		t.Fatal("refused append mutated the WCG")
	}
}

// TestSnapshotIsolation pins that an alert's snapshot is immune to later
// appends to the live graph.
func TestSnapshotIsolation(t *testing.T) {
	episodes := synth.GenerateCorpus(synth.Config{Seed: 7, Infections: 1, Benign: 0})
	txs := sortedByReqTime(episodes[0].Txs)
	if len(txs) < 2 {
		t.Skip("episode too short")
	}
	ib := NewIncrementalBuilder()
	mid := len(txs) / 2
	for _, tx := range txs[:mid] {
		ib.Append(tx)
	}
	snap := ib.Snapshot()
	frozen := jsonBytes(t, snap)
	for _, tx := range txs[mid:] {
		ib.Append(tx)
	}
	ib.Finalize()
	if got := jsonBytes(t, snap); !bytes.Equal(got, frozen) {
		t.Fatal("snapshot mutated by later appends")
	}
	// And the snapshot equals the batch build over the same prefix.
	want := jsonBytes(t, FromTransactions(txs[:mid]))
	if !bytes.Equal(frozen, want) {
		t.Fatal("snapshot differs from batch build of the same prefix")
	}
}
