package wcg

import (
	"net/netip"
	"sort"
	"strings"
	"time"

	"dynaminer/internal/httpstream"
)

// redirectClickGap separates automatic redirections (tens to hundreds of
// milliseconds after the referring page) from human link-clicks (seconds).
const redirectClickGap = 2 * time.Second

// Builder constructs a WCG incrementally from a time-ordered transaction
// stream (Section III-B). The on-the-wire stage grows potential-infection
// WCGs one transaction at a time; feeding transactions in timestamp order
// makes the incremental result identical to the batch FromTransactions.
type Builder struct {
	w            *WCG
	victim       int
	origin       int
	started      bool
	originLinked bool
	lastActivity map[string]time.Time
	redirSeen    map[redirKey]struct{}
}

type redirKey struct {
	from, to int
	sec      int64
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{
		w:            &WCG{byHost: make(map[string]int)},
		victim:       -1,
		origin:       -1,
		lastActivity: make(map[string]time.Time),
		redirSeen:    make(map[redirKey]struct{}),
	}
}

// FromTransactions constructs a fully annotated WCG from an HTTP
// transaction stream: nodes from unique hosts, an origin node from the
// enticement referrer, request/response edges per transaction, redirect
// edges inferred from Location headers, fast cross-host document
// referrers, and (de-obfuscated) meta/JavaScript redirects in bodies,
// followed by conversation-stage assignment and node role classification.
func FromTransactions(txs []httpstream.Transaction) *WCG {
	ordered := make([]httpstream.Transaction, len(txs))
	copy(ordered, txs)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].ReqTime.Before(ordered[j].ReqTime) })
	b := NewBuilder()
	for i := range ordered {
		b.Add(ordered[i])
	}
	return b.WCG()
}

// addRedirect inserts a deduplicated redirect edge.
func (b *Builder) addRedirect(from, to int, ts time.Time) {
	if from == to {
		return
	}
	k := redirKey{from, to, ts.Unix()}
	if _, ok := b.redirSeen[k]; ok {
		return
	}
	b.redirSeen[k] = struct{}{}
	b.w.addEdge(&Edge{
		From: from, To: to, Kind: EdgeRedirect, Time: ts,
		CrossDomain: registeredDomain(b.w.Nodes[from].Host) != registeredDomain(b.w.Nodes[to].Host),
	})
}

// Add ingests one transaction. Transactions must arrive in timestamp
// order for stage assignment to match the batch construction.
func (b *Builder) Add(tx httpstream.Transaction) {
	w := b.w
	if !b.started {
		b.started = true
		victimHost := tx.ClientIP.String()
		b.victim = w.ensureNode(victimHost, tx.ClientIP, NodeVictim)
		// Origin node: the referrer of the first transaction names the
		// enticement source. An unknown origin is recorded as metadata
		// only ("marked empty"); adding an isolated marker node would skew
		// every distance-based measure of origin-less conversations.
		if firstRef := hostOfURL(tx.Referer()); firstRef != "" {
			w.OriginKnown = true
			w.OriginHost = firstRef
			b.origin = w.ensureNode(firstRef, invalidAddr(), NodeOrigin)
		}
	}
	victimHost := w.Nodes[b.victim].Host

	serverHost := strings.ToLower(tx.Host)
	if serverHost == "" {
		serverHost = tx.ServerIP.String()
	}
	server := w.ensureNode(serverHost, tx.ServerIP, NodeRemote)
	w.addURI(server, tx.URI)

	if tx.DNT() {
		w.DNT = true
	}
	if v := tx.XFlashVersion(); v != "" && w.XFlashVersion == "" {
		w.XFlashVersion = v
	}

	w.addEdge(&Edge{
		From: b.victim, To: server, Kind: EdgeRequest, Time: tx.ReqTime,
		Method: tx.Method, URILen: len(tx.URI), UploadSize: tx.ReqBodySize,
		Referer: tx.Referer(), UserAgent: tx.UserAgent(),
	})
	var payload PayloadClass
	if tx.StatusCode > 0 {
		payload = ClassifyPayload(tx.URI, tx.ContentType)
		if tx.BodySize == 0 && !tx.IsRedirect() {
			payload = PayloadNone
		}
		w.addEdge(&Edge{
			From: server, To: b.victim, Kind: EdgeResponse, Time: tx.RespTime,
			StatusCode: tx.StatusCode, PayloadType: payload, PayloadSize: tx.BodySize,
		})
		if payload != PayloadNone {
			w.Nodes[server].Payloads[payload]++
			w.Nodes[b.victim].Payloads[payload]++
		}
	}

	// Redirect edge from a Location header.
	if tx.IsRedirect() {
		target := hostOfURL(tx.Location())
		if target == "" {
			target = serverHost // relative redirect: same host
		}
		to := w.ensureNode(target, invalidAddr(), NodeIntermediary)
		b.addRedirect(server, to, tx.RespTime)
	}

	// Referrer-based navigation: a document fetched from host B with a
	// referrer on host A evidences A chaining the victim to B. Two gates
	// keep human browsing out: only document payloads count (subresources
	// naturally carry cross-host referrers), and the navigation must
	// follow the referring host's last activity within redirectClickGap —
	// automatic redirections fire in milliseconds, link-clicks take
	// seconds (Section III-C's delay insight).
	if ref := hostOfURL(tx.Referer()); ref != "" && ref != serverHost && ref != victimHost {
		if payload == PayloadHTML || (tx.StatusCode >= 300 && tx.StatusCode < 400) {
			if seen, ok := b.lastActivity[ref]; ok && tx.ReqTime.Sub(seen) <= redirectClickGap {
				from := w.ensureNode(ref, invalidAddr(), NodeIntermediary)
				b.addRedirect(from, server, tx.ReqTime)
			}
		}
	}
	ts := tx.RespTime
	if ts.IsZero() {
		ts = tx.ReqTime
	}
	b.lastActivity[serverHost] = ts

	// Meta/JavaScript/iframe redirects hidden in document bodies.
	if payload == PayloadHTML || payload == PayloadJS {
		for _, target := range SniffBodyRedirects(tx.Body) {
			th := hostOfURL(target)
			if th == "" || th == serverHost {
				continue
			}
			to := w.ensureNode(th, invalidAddr(), NodeIntermediary)
			b.addRedirect(server, to, tx.RespTime)
		}
	}

	// Connect a known origin to the first contacted server. An unknown
	// ("empty") origin stays metadata: fabricating a hop for it would
	// credit every conversation with a redirect it never had.
	if b.origin >= 0 && !b.originLinked && server != b.origin {
		b.originLinked = true
		b.addRedirect(b.origin, server, tx.ReqTime)
	}
}

// WCG finalizes the annotations (conversation stages, node roles) and
// returns the graph. The Builder remains usable: further Add calls grow
// the same graph and a later WCG call re-finalizes it.
func (b *Builder) WCG() *WCG {
	b.w.assignStages()
	if b.victim >= 0 {
		b.w.classifyNodes(b.victim, b.origin)
	}
	return b.w
}

// Size returns the number of transactions' worth of edges added so far.
func (b *Builder) Size() int { return b.w.Size() }

// assignStages implements the Section III-C staging rules. Download events
// are 2xx responses carrying a known exploit payload; edges before the
// first such event are pre-download, POSTs after the last such event to
// hosts that served no exploit payload (with 200 or 40x responses) are
// post-download, and everything else is download stage. Conversations with
// no exploit download stay entirely in the pre-download stage.
func (w *WCG) assignStages() {
	var tFirst, tLast time.Time
	servedExploit := make(map[int]bool)
	for _, e := range w.Edges {
		if e.Kind == EdgeResponse && e.StatusCode >= 200 && e.StatusCode < 300 && e.PayloadType.IsExploitType() {
			if tFirst.IsZero() || e.Time.Before(tFirst) {
				tFirst = e.Time
			}
			if e.Time.After(tLast) {
				tLast = e.Time
			}
			servedExploit[e.From] = true
		}
	}
	if tFirst.IsZero() {
		for _, e := range w.Edges {
			e.Stage = StagePreDownload
		}
		return
	}
	for _, e := range w.Edges {
		switch {
		case e.Time.Before(tFirst):
			e.Stage = StagePreDownload
		case e.Time.After(tLast):
			e.Stage = w.lateStage(e, servedExploit)
		default:
			e.Stage = StageDownload
		}
	}
}

// lateStage decides the stage of an edge occurring after the last exploit
// download: POST dialogues with fresh hosts are post-download C&C traffic.
func (w *WCG) lateStage(e *Edge, servedExploit map[int]bool) Stage {
	switch e.Kind {
	case EdgeRequest:
		if e.Method == "POST" && !servedExploit[e.To] {
			return StagePostDownload
		}
	case EdgeResponse:
		if !servedExploit[e.From] && (e.StatusCode == 200 || (e.StatusCode >= 400 && e.StatusCode < 500)) {
			return StagePostDownload
		}
	}
	return StageDownload
}

// classifyNodes finalizes node roles: hosts that delivered an exploit
// payload become malicious; hosts touched only by redirect edges remain
// intermediaries; every other non-victim, non-origin host is remote.
func (w *WCG) classifyNodes(victim, origin int) {
	delivered := make(map[int]bool)
	nonRedirect := make(map[int]bool)
	for _, e := range w.Edges {
		if e.Kind == EdgeResponse && e.PayloadType.IsExploitType() && e.StatusCode >= 200 && e.StatusCode < 300 {
			delivered[e.From] = true
		}
		if e.Kind != EdgeRedirect {
			nonRedirect[e.From] = true
			nonRedirect[e.To] = true
		}
	}
	for _, n := range w.Nodes {
		if n.ID == victim || n.ID == origin {
			continue
		}
		switch {
		case delivered[n.ID]:
			n.Type = NodeMalicious
		case !nonRedirect[n.ID]:
			n.Type = NodeIntermediary
		default:
			n.Type = NodeRemote
		}
	}
}

// invalidAddr is the zero netip.Addr used for nodes known only by name.
func invalidAddr() netip.Addr { return netip.Addr{} }
