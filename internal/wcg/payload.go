package wcg

import (
	"strings"
)

// PayloadClass categorizes the payload carried by a response edge. The
// classes mirror the paper's node-level payload summary: known exploit
// types (*.jar, *.exe, *.pdf, *.xap, *.swf), crypto-locker file types
// (collectively "*.crypt"), and commonly exchanged web payloads.
type PayloadClass int

// Payload classes. PayloadNone marks responses without a body.
const (
	PayloadNone PayloadClass = iota
	PayloadOther
	PayloadHTML
	PayloadJS
	PayloadCSS
	PayloadImage
	PayloadText
	PayloadJSON
	PayloadArchive
	PayloadPDF
	PayloadEXE
	PayloadJAR
	PayloadSWF
	PayloadXAP
	PayloadDMG
	PayloadCrypt

	numPayloadClasses
)

var payloadNames = map[PayloadClass]string{
	PayloadNone:    "none",
	PayloadOther:   "other",
	PayloadHTML:    "html",
	PayloadJS:      "js",
	PayloadCSS:     "css",
	PayloadImage:   "image",
	PayloadText:    "text",
	PayloadJSON:    "json",
	PayloadArchive: "archive",
	PayloadPDF:     "pdf",
	PayloadEXE:     "exe",
	PayloadJAR:     "jar",
	PayloadSWF:     "swf",
	PayloadXAP:     "xap",
	PayloadDMG:     "dmg",
	PayloadCrypt:   "crypt",
}

// String names the class the way the paper's tables do ("exe", "jar", ...).
func (p PayloadClass) String() string {
	if s, ok := payloadNames[p]; ok {
		return s
	}
	return "unknown"
}

// IsExploitType reports whether the class is a "known exploit payload" in
// the paper's sense: the file types exploit kits drop on victims.
func (p PayloadClass) IsExploitType() bool {
	switch p {
	case PayloadPDF, PayloadEXE, PayloadJAR, PayloadSWF, PayloadXAP, PayloadDMG, PayloadCrypt:
		return true
	default:
		return false
	}
}

// cryptExtensions is the set of 45 crypto-locker file extensions compiled
// from industry ransomware reports, matching the paper's "*.crypt"
// collective class (Section III-C).
var cryptExtensions = map[string]struct{}{
	".crypt": {}, ".crypz": {}, ".cryp1": {}, ".crypto": {}, ".encrypted": {},
	".enc": {}, ".locky": {}, ".zepto": {}, ".odin": {}, ".cerber": {},
	".cerber2": {}, ".cerber3": {}, ".locked": {}, ".cry": {}, ".vault": {},
	".xxx": {}, ".ttt": {}, ".micro": {}, ".mp3enc": {}, ".xtbl": {},
	".ecc": {}, ".ezz": {}, ".exx": {}, ".aaa": {}, ".abc": {},
	".ccc": {}, ".vvv": {}, ".zzz": {}, ".xyz": {}, ".magic": {},
	".petya": {}, ".kraken": {}, ".darkness": {}, ".nochance": {}, ".oshit": {},
	".kkk": {}, ".fun": {}, ".gws": {}, ".btc": {}, ".keybtc": {},
	".paybtc": {}, ".lechiffre": {}, ".rokku": {}, ".surprise": {}, ".sage": {},
}

// CryptExtensionCount is the number of ransomware extensions recognized.
const CryptExtensionCount = 45

var extensionClasses = map[string]PayloadClass{
	".html": PayloadHTML, ".htm": PayloadHTML, ".php": PayloadHTML, ".asp": PayloadHTML, ".aspx": PayloadHTML,
	".js":  PayloadJS,
	".css": PayloadCSS,
	".png": PayloadImage, ".jpg": PayloadImage, ".jpeg": PayloadImage, ".gif": PayloadImage, ".ico": PayloadImage, ".svg": PayloadImage,
	".txt":  PayloadText,
	".json": PayloadJSON,
	".zip":  PayloadArchive, ".gz": PayloadArchive, ".rar": PayloadArchive, ".7z": PayloadArchive, ".cab": PayloadArchive,
	".pdf": PayloadPDF,
	".exe": PayloadEXE, ".msi": PayloadEXE, ".scr": PayloadEXE, ".dll": PayloadEXE,
	".jar": PayloadJAR, ".class": PayloadJAR,
	".swf": PayloadSWF,
	".xap": PayloadXAP,
	".dmg": PayloadDMG,
	".doc": PayloadOther, ".docx": PayloadOther, ".xls": PayloadOther, ".xlsx": PayloadOther,
}

var contentTypeClasses = []struct {
	prefix string
	class  PayloadClass
}{
	{"text/html", PayloadHTML},
	{"application/xhtml", PayloadHTML},
	{"application/javascript", PayloadJS},
	{"text/javascript", PayloadJS},
	{"application/x-javascript", PayloadJS},
	{"text/css", PayloadCSS},
	{"image/", PayloadImage},
	{"text/plain", PayloadText},
	{"application/json", PayloadJSON},
	{"application/zip", PayloadArchive},
	{"application/gzip", PayloadArchive},
	{"application/x-gzip", PayloadArchive},
	{"application/x-rar", PayloadArchive},
	{"application/x-compressed", PayloadArchive},
	{"application/pdf", PayloadPDF},
	{"application/x-msdownload", PayloadEXE},
	{"application/x-dosexec", PayloadEXE},
	{"application/x-msdos-program", PayloadEXE},
	{"application/java-archive", PayloadJAR},
	{"application/x-java-archive", PayloadJAR},
	{"application/x-shockwave-flash", PayloadSWF},
	{"application/x-silverlight-app", PayloadXAP},
	{"application/x-apple-diskimage", PayloadDMG},
}

// uriExtension returns the lowercase file extension of the URI path, with
// query strings and fragments stripped; "" when there is none.
func uriExtension(uri string) string {
	if i := strings.IndexAny(uri, "?#"); i >= 0 {
		uri = uri[:i]
	}
	slash := strings.LastIndexByte(uri, '/')
	dot := strings.LastIndexByte(uri, '.')
	if dot < 0 || dot < slash {
		return ""
	}
	return strings.ToLower(uri[dot:])
}

// ClassifyPayload determines the payload class of a response from the
// request URI and the response Content-Type. Extension evidence wins over
// Content-Type because exploit kits routinely mislabel payloads (e.g. an
// EXE served as application/octet-stream), mirroring the paper's
// extension-driven payload summary.
func ClassifyPayload(uri, contentType string) PayloadClass {
	ext := uriExtension(uri)
	if _, ok := cryptExtensions[ext]; ok {
		return PayloadCrypt
	}
	if c, ok := extensionClasses[ext]; ok {
		return c
	}
	ct := strings.ToLower(contentType)
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = strings.TrimSpace(ct[:i])
	}
	for _, e := range contentTypeClasses {
		if strings.HasPrefix(ct, e.prefix) {
			return e.class
		}
	}
	if ct == "" && ext == "" {
		return PayloadHTML // bare path with no declared type: a page fetch
	}
	return PayloadOther
}
