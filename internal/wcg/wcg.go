// Package wcg implements DynaMiner's Web Conversation Graph (Section III):
// the payload-agnostic abstraction of an HTTP conversation between a client
// and remote hosts, its construction from transaction streams, the node/
// edge/graph annotations, conversation-stage assignment (pre-download,
// download, post-download), and redirect-chain inference including
// deobfuscation of meta/JavaScript redirects.
package wcg

import (
	"net/netip"
	"strings"
	"time"

	"dynaminer/internal/graph"
)

// NodeType classifies a WCG node per Section III-A.
type NodeType int

// Node roles. A node is Malicious if at least one exploit payload was
// downloaded from it to the victim; Intermediary if it only chains
// redirections; Origin marks the special enticement-source node.
const (
	NodeVictim NodeType = iota + 1
	NodeRemote
	NodeIntermediary
	NodeMalicious
	NodeOrigin
)

// String names the node type.
func (t NodeType) String() string {
	switch t {
	case NodeVictim:
		return "victim"
	case NodeRemote:
		return "remote"
	case NodeIntermediary:
		return "intermediary"
	case NodeMalicious:
		return "malicious"
	case NodeOrigin:
		return "origin"
	default:
		return "unknown"
	}
}

// EdgeKind is the relation an edge encodes (Section III-A: Φ requests,
// Ψ responses, Σ redirects).
type EdgeKind int

// Edge kinds.
const (
	EdgeRequest EdgeKind = iota + 1
	EdgeResponse
	EdgeRedirect
)

// String names the edge kind the way Figure 6 labels edges.
func (k EdgeKind) String() string {
	switch k {
	case EdgeRequest:
		return "req"
	case EdgeResponse:
		return "res"
	case EdgeRedirect:
		return "redir"
	default:
		return "unknown"
	}
}

// Stage is the conversation stage of an edge (Section III-C): 0 for
// pre-download, 1 for download, 2 for post-download.
type Stage int

// Conversation stages.
const (
	StagePreDownload  Stage = 0
	StageDownload     Stage = 1
	StagePostDownload Stage = 2
)

// String names the stage.
func (s Stage) String() string {
	switch s {
	case StagePreDownload:
		return "pre-download"
	case StageDownload:
		return "download"
	case StagePostDownload:
		return "post-download"
	default:
		return "unknown"
	}
}

// Node is a unique host participating in the conversation, annotated per
// Section III-C (basic attributes, URIs per host, payload summary).
type Node struct {
	ID       int
	Host     string // hostname, or IP string when no Host header was seen
	IP       netip.Addr
	Type     NodeType
	URIs     map[string]struct{}
	Payloads map[PayloadClass]int // payloads originating from or received by this node
}

// Edge is one relation between two hosts, annotated per Section III-C.
type Edge struct {
	From, To    int
	Kind        EdgeKind
	Stage       Stage
	Time        time.Time
	Method      string
	URILen      int
	UploadSize  int // request-body bytes (exfiltration volume)
	StatusCode  int
	PayloadType PayloadClass
	PayloadSize int
	Referer     string
	UserAgent   string
	CrossDomain bool // redirect edges: target registered domain differs
}

// WCG is a fully annotated web conversation graph.
type WCG struct {
	Nodes []*Node
	Edges []*Edge

	// Origin metadata: the enticement source per Section III-B.
	OriginKnown bool
	OriginHost  string // "" when unknown ("empty" origin node)

	// Graph-level annotations.
	DNT           bool
	XFlashVersion string

	byHost map[string]int
	g      *graph.Digraph // structural projection, maintained in place

	// Simple-projection bookkeeping, maintained on every addEdge so
	// density/reciprocity stay O(1) and topology changes are detectable
	// without diffing the graph. pairSeen keys directed simple pairs
	// (from<<32|to, self-loops excluded).
	pairSeen      map[uint64]struct{}
	simplePairs   int // distinct directed pairs = directed simple edge count
	recipPairs    int // directed pairs whose reverse pair also exists
	structVersion uint64

	// Host/URI aggregates for the O(1) feature path: non-origin node
	// count and total distinct URIs across non-origin nodes.
	uniqueHosts int
	uriTotal    int
}

// StructVersion counts changes to the simple structural projection: it
// bumps when a node or a previously unseen directed pair appears, and
// stays put when an append only adds parallel edges or annotations. The
// feature cache recomputes the expensive graph measures only when this
// moves.
func (w *WCG) StructVersion() uint64 { return w.structVersion }

// SimpleEdgeStats returns the number of directed simple edges (parallel
// edges collapsed, self-loops excluded) and how many of them have their
// reverse edge present — the O(1) inputs to density and reciprocity.
func (w *WCG) SimpleEdgeStats() (pairs, reciprocal int) {
	return w.simplePairs, w.recipPairs
}

// HostURIStats returns the number of non-origin nodes and the total count
// of distinct URIs across them — the O(1) inputs to f4 and f5.
func (w *WCG) HostURIStats() (hosts, uris int) {
	return w.uniqueHosts, w.uriTotal
}

// NodeByHost returns the node for host, or nil. Hosts are stored
// lowercased (DNS names are case-insensitive), so the lookup folds case.
func (w *WCG) NodeByHost(host string) *Node {
	if id, ok := w.byHost[strings.ToLower(host)]; ok {
		return w.Nodes[id]
	}
	return nil
}

// ensureNode returns the id of the node for host, creating it as typ if it
// does not exist yet. An existing node's type is never downgraded.
func (w *WCG) ensureNode(host string, ip netip.Addr, typ NodeType) int {
	if id, ok := w.byHost[host]; ok {
		n := w.Nodes[id]
		if !n.IP.IsValid() && ip.IsValid() {
			n.IP = ip
		}
		return id
	}
	id := len(w.Nodes)
	w.Nodes = append(w.Nodes, &Node{
		ID:       id,
		Host:     host,
		IP:       ip,
		Type:     typ,
		URIs:     make(map[string]struct{}),
		Payloads: make(map[PayloadClass]int),
	})
	w.byHost[host] = id
	if typ != NodeOrigin {
		w.uniqueHosts++
	}
	w.structVersion++
	if w.g != nil {
		w.g.AddNode()
	}
	return id
}

// addEdge appends e, extends the structural graph in place, and updates
// the simple-pair bookkeeping.
func (w *WCG) addEdge(e *Edge) {
	w.Edges = append(w.Edges, e)
	if w.g != nil {
		_ = w.g.AddEdge(e.From, e.To) // ids are internally consistent
	}
	if e.From != e.To {
		key := uint64(e.From)<<32 | uint64(e.To)
		if w.pairSeen == nil {
			w.pairSeen = make(map[uint64]struct{})
		}
		if _, ok := w.pairSeen[key]; !ok {
			w.pairSeen[key] = struct{}{}
			w.simplePairs++
			w.structVersion++
			if _, ok := w.pairSeen[uint64(e.To)<<32|uint64(e.From)]; ok {
				w.recipPairs += 2 // both directions just became reciprocal
			}
		}
	}
}

// addURI records a distinct URI on node id, keeping the non-origin URI
// total in sync with the per-node sets.
func (w *WCG) addURI(id int, uri string) {
	n := w.Nodes[id]
	if _, ok := n.URIs[uri]; ok {
		return
	}
	n.URIs[uri] = struct{}{}
	if n.Type != NodeOrigin {
		w.uriTotal++
	}
}

// Graph returns the structural projection of the WCG as a directed
// multigraph over node ids. It is built once and then grown in place by
// ensureNode/addEdge, so repeated calls on a growing WCG are O(1); the
// incremental adjacency is identical to a from-scratch build because both
// append edges in w.Edges order.
func (w *WCG) Graph() *graph.Digraph {
	if w.g != nil {
		return w.g
	}
	g := graph.New(len(w.Nodes))
	for _, e := range w.Edges {
		_ = g.AddEdge(e.From, e.To) // ids are internally consistent
	}
	w.g = g
	return g
}

// Clone returns a deep copy sharing no mutable state with w: alerts hand
// out clones of the live incremental WCG so later appends cannot mutate
// an already-emitted graph. The structural projection is rebuilt lazily.
func (w *WCG) Clone() *WCG {
	c := &WCG{
		Nodes:         make([]*Node, len(w.Nodes)),
		Edges:         make([]*Edge, len(w.Edges)),
		OriginKnown:   w.OriginKnown,
		OriginHost:    w.OriginHost,
		DNT:           w.DNT,
		XFlashVersion: w.XFlashVersion,
		byHost:        make(map[string]int, len(w.byHost)),
		simplePairs:   w.simplePairs,
		recipPairs:    w.recipPairs,
		structVersion: w.structVersion,
		uniqueHosts:   w.uniqueHosts,
		uriTotal:      w.uriTotal,
	}
	for i, n := range w.Nodes {
		nn := *n
		nn.URIs = make(map[string]struct{}, len(n.URIs))
		for u := range n.URIs {
			nn.URIs[u] = struct{}{}
		}
		nn.Payloads = make(map[PayloadClass]int, len(n.Payloads))
		for k, v := range n.Payloads {
			nn.Payloads[k] = v
		}
		c.Nodes[i] = &nn
	}
	for i, e := range w.Edges {
		ee := *e
		c.Edges[i] = &ee
	}
	for k, v := range w.byHost {
		c.byHost[k] = v
	}
	if w.pairSeen != nil {
		c.pairSeen = make(map[uint64]struct{}, len(w.pairSeen))
		for k := range w.pairSeen {
			c.pairSeen[k] = struct{}{}
		}
	}
	return c
}

// Order is the number of nodes (feature f7).
func (w *WCG) Order() int { return len(w.Nodes) }

// Size is the number of edges (features f3/f8).
func (w *WCG) Size() int { return len(w.Edges) }

// Duration is the wall-clock span from the first to the last edge.
func (w *WCG) Duration() time.Duration {
	first, last := w.timeBounds()
	if first.IsZero() {
		return 0
	}
	return last.Sub(first)
}

func (w *WCG) timeBounds() (first, last time.Time) {
	for _, e := range w.Edges {
		if e.Time.IsZero() {
			continue
		}
		if first.IsZero() || e.Time.Before(first) {
			first = e.Time
		}
		if last.IsZero() || e.Time.After(last) {
			last = e.Time
		}
	}
	return first, last
}

// registeredDomain approximates the eTLD+1 of a host: the final two labels
// of a domain name, or the full string for IP addresses and single-label
// hosts. Sufficient for cross-domain redirect detection on both real and
// synthetic traces.
func registeredDomain(host string) string {
	if _, err := netip.ParseAddr(host); err == nil {
		return host
	}
	labels := strings.Split(host, ".")
	if len(labels) < 2 {
		return host
	}
	return strings.Join(labels[len(labels)-2:], ".")
}

// topLevelDomain returns the final label of a hostname ("com", "net"), or
// "ip" for address literals.
func topLevelDomain(host string) string {
	if _, err := netip.ParseAddr(host); err == nil {
		return "ip"
	}
	if i := strings.LastIndexByte(host, '.'); i >= 0 {
		return host[i+1:]
	}
	return host
}

// hostOfURL extracts the host part of an absolute or schemeless URL,
// lowercased: DNS names are case-insensitive, and node identity keys on
// the host string.
func hostOfURL(raw string) string {
	s := raw
	if i := strings.Index(s, "://"); i >= 0 {
		s = s[i+3:]
	} else if strings.HasPrefix(s, "//") {
		s = s[2:]
	} else if strings.HasPrefix(s, "/") {
		return "" // relative: same host
	}
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '/', '?', '#', ':':
			return strings.ToLower(s[:i])
		}
	}
	return strings.ToLower(s)
}
