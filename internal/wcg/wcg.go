// Package wcg implements DynaMiner's Web Conversation Graph (Section III):
// the payload-agnostic abstraction of an HTTP conversation between a client
// and remote hosts, its construction from transaction streams, the node/
// edge/graph annotations, conversation-stage assignment (pre-download,
// download, post-download), and redirect-chain inference including
// deobfuscation of meta/JavaScript redirects.
package wcg

import (
	"net/netip"
	"strings"
	"time"

	"dynaminer/internal/graph"
)

// NodeType classifies a WCG node per Section III-A.
type NodeType int

// Node roles. A node is Malicious if at least one exploit payload was
// downloaded from it to the victim; Intermediary if it only chains
// redirections; Origin marks the special enticement-source node.
const (
	NodeVictim NodeType = iota + 1
	NodeRemote
	NodeIntermediary
	NodeMalicious
	NodeOrigin
)

// String names the node type.
func (t NodeType) String() string {
	switch t {
	case NodeVictim:
		return "victim"
	case NodeRemote:
		return "remote"
	case NodeIntermediary:
		return "intermediary"
	case NodeMalicious:
		return "malicious"
	case NodeOrigin:
		return "origin"
	default:
		return "unknown"
	}
}

// EdgeKind is the relation an edge encodes (Section III-A: Φ requests,
// Ψ responses, Σ redirects).
type EdgeKind int

// Edge kinds.
const (
	EdgeRequest EdgeKind = iota + 1
	EdgeResponse
	EdgeRedirect
)

// String names the edge kind the way Figure 6 labels edges.
func (k EdgeKind) String() string {
	switch k {
	case EdgeRequest:
		return "req"
	case EdgeResponse:
		return "res"
	case EdgeRedirect:
		return "redir"
	default:
		return "unknown"
	}
}

// Stage is the conversation stage of an edge (Section III-C): 0 for
// pre-download, 1 for download, 2 for post-download.
type Stage int

// Conversation stages.
const (
	StagePreDownload  Stage = 0
	StageDownload     Stage = 1
	StagePostDownload Stage = 2
)

// String names the stage.
func (s Stage) String() string {
	switch s {
	case StagePreDownload:
		return "pre-download"
	case StageDownload:
		return "download"
	case StagePostDownload:
		return "post-download"
	default:
		return "unknown"
	}
}

// Node is a unique host participating in the conversation, annotated per
// Section III-C (basic attributes, URIs per host, payload summary).
type Node struct {
	ID       int
	Host     string // hostname, or IP string when no Host header was seen
	IP       netip.Addr
	Type     NodeType
	URIs     map[string]struct{}
	Payloads map[PayloadClass]int // payloads originating from or received by this node
}

// Edge is one relation between two hosts, annotated per Section III-C.
type Edge struct {
	From, To    int
	Kind        EdgeKind
	Stage       Stage
	Time        time.Time
	Method      string
	URILen      int
	UploadSize  int // request-body bytes (exfiltration volume)
	StatusCode  int
	PayloadType PayloadClass
	PayloadSize int
	Referer     string
	UserAgent   string
	CrossDomain bool // redirect edges: target registered domain differs
}

// WCG is a fully annotated web conversation graph.
type WCG struct {
	Nodes []*Node
	Edges []*Edge

	// Origin metadata: the enticement source per Section III-B.
	OriginKnown bool
	OriginHost  string // "" when unknown ("empty" origin node)

	// Graph-level annotations.
	DNT           bool
	XFlashVersion string

	byHost map[string]int
	g      *graph.Digraph // cached structural projection
}

// NodeByHost returns the node for host, or nil. Hosts are stored
// lowercased (DNS names are case-insensitive), so the lookup folds case.
func (w *WCG) NodeByHost(host string) *Node {
	if id, ok := w.byHost[strings.ToLower(host)]; ok {
		return w.Nodes[id]
	}
	return nil
}

// ensureNode returns the id of the node for host, creating it as typ if it
// does not exist yet. An existing node's type is never downgraded.
func (w *WCG) ensureNode(host string, ip netip.Addr, typ NodeType) int {
	if id, ok := w.byHost[host]; ok {
		n := w.Nodes[id]
		if !n.IP.IsValid() && ip.IsValid() {
			n.IP = ip
		}
		return id
	}
	id := len(w.Nodes)
	w.Nodes = append(w.Nodes, &Node{
		ID:       id,
		Host:     host,
		IP:       ip,
		Type:     typ,
		URIs:     make(map[string]struct{}),
		Payloads: make(map[PayloadClass]int),
	})
	w.byHost[host] = id
	w.g = nil
	return id
}

// addEdge appends e and invalidates the cached structural graph.
func (w *WCG) addEdge(e *Edge) {
	w.Edges = append(w.Edges, e)
	w.g = nil
}

// Graph returns the structural projection of the WCG as a directed
// multigraph over node ids, building and caching it on first use.
func (w *WCG) Graph() *graph.Digraph {
	if w.g != nil {
		return w.g
	}
	g := graph.New(len(w.Nodes))
	for _, e := range w.Edges {
		_ = g.AddEdge(e.From, e.To) // ids are internally consistent
	}
	w.g = g
	return g
}

// Order is the number of nodes (feature f7).
func (w *WCG) Order() int { return len(w.Nodes) }

// Size is the number of edges (features f3/f8).
func (w *WCG) Size() int { return len(w.Edges) }

// Duration is the wall-clock span from the first to the last edge.
func (w *WCG) Duration() time.Duration {
	first, last := w.timeBounds()
	if first.IsZero() {
		return 0
	}
	return last.Sub(first)
}

func (w *WCG) timeBounds() (first, last time.Time) {
	for _, e := range w.Edges {
		if e.Time.IsZero() {
			continue
		}
		if first.IsZero() || e.Time.Before(first) {
			first = e.Time
		}
		if last.IsZero() || e.Time.After(last) {
			last = e.Time
		}
	}
	return first, last
}

// registeredDomain approximates the eTLD+1 of a host: the final two labels
// of a domain name, or the full string for IP addresses and single-label
// hosts. Sufficient for cross-domain redirect detection on both real and
// synthetic traces.
func registeredDomain(host string) string {
	if _, err := netip.ParseAddr(host); err == nil {
		return host
	}
	labels := strings.Split(host, ".")
	if len(labels) < 2 {
		return host
	}
	return strings.Join(labels[len(labels)-2:], ".")
}

// topLevelDomain returns the final label of a hostname ("com", "net"), or
// "ip" for address literals.
func topLevelDomain(host string) string {
	if _, err := netip.ParseAddr(host); err == nil {
		return "ip"
	}
	if i := strings.LastIndexByte(host, '.'); i >= 0 {
		return host[i+1:]
	}
	return host
}

// hostOfURL extracts the host part of an absolute or schemeless URL,
// lowercased: DNS names are case-insensitive, and node identity keys on
// the host string.
func hostOfURL(raw string) string {
	s := raw
	if i := strings.Index(s, "://"); i >= 0 {
		s = s[i+3:]
	} else if strings.HasPrefix(s, "//") {
		s = s[2:]
	} else if strings.HasPrefix(s, "/") {
		return "" // relative: same host
	}
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '/', '?', '#', ':':
			return strings.ToLower(s[:i])
		}
	}
	return strings.ToLower(s)
}
