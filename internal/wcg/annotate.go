package wcg

import (
	"time"
)

// Summary carries the graph-level annotations of Section III-C: aggregate
// method and response-code counts, referrer totals, payload statistics,
// redirect aggregates, and temporal dynamics. It is the bridge between the
// WCG and the feature extractor, and also backs the Table I / Figure 3-4
// dataset statistics.
type Summary struct {
	Order              int
	Size               int
	UniqueHosts        int // remote hosts plus the victim, excluding the origin node
	GETs               int
	POSTs              int
	OtherMethods       int
	HTTP10X            int
	HTTP20X            int
	HTTP30X            int
	HTTP40X            int
	HTTP50X            int
	RefererSet         int
	RefererEmpty       int
	AvgURILength       float64
	AvgURIsPerHost     float64
	PayloadCounts      map[PayloadClass]int
	AvgPayloadSize     float64
	TotalPayloadBytes  int64
	Duration           time.Duration
	AvgInterTransact   time.Duration
	Redirects          RedirectStats
	PostDownloadEdges  int
	UploadBytes        int64 // total request-body bytes
	ExfilBytes         int64 // request-body bytes in the post-download stage
	HasCallback        bool  // at least one post-download POST request
	DNT                bool
	XFlashVersionSet   bool
	DownloadedExploits int
}

// Summarize computes the graph-level annotations of the WCG.
func (w *WCG) Summarize() Summary {
	s := Summary{
		Order:         w.Order(),
		Size:          w.Size(),
		PayloadCounts: make(map[PayloadClass]int),
		Duration:      w.Duration(),
		Redirects:     w.RedirectStats(),
		DNT:           w.DNT,
	}
	s.XFlashVersionSet = w.XFlashVersion != ""

	var (
		uriLenSum  int
		uriCount   int
		reqTimes   []time.Time
		paySizeSum int64
		payCount   int
	)
	for _, e := range w.Edges {
		switch e.Kind {
		case EdgeRequest:
			switch e.Method {
			case "GET":
				s.GETs++
			case "POST":
				s.POSTs++
			default:
				s.OtherMethods++
			}
			if e.Referer != "" {
				s.RefererSet++
			} else {
				s.RefererEmpty++
			}
			uriLenSum += e.URILen
			uriCount++
			reqTimes = append(reqTimes, e.Time)
			s.UploadBytes += int64(e.UploadSize)
			if e.Stage == StagePostDownload {
				s.PostDownloadEdges++
				s.ExfilBytes += int64(e.UploadSize)
				if e.Method == "POST" {
					s.HasCallback = true
				}
			}
		case EdgeResponse:
			switch {
			case e.StatusCode >= 100 && e.StatusCode < 200:
				s.HTTP10X++
			case e.StatusCode >= 200 && e.StatusCode < 300:
				s.HTTP20X++
			case e.StatusCode >= 300 && e.StatusCode < 400:
				s.HTTP30X++
			case e.StatusCode >= 400 && e.StatusCode < 500:
				s.HTTP40X++
			case e.StatusCode >= 500 && e.StatusCode < 600:
				s.HTTP50X++
			}
			if e.PayloadType != PayloadNone {
				s.PayloadCounts[e.PayloadType]++
				paySizeSum += int64(e.PayloadSize)
				payCount++
				if e.PayloadType.IsExploitType() && e.StatusCode >= 200 && e.StatusCode < 300 {
					s.DownloadedExploits++
				}
			}
			if e.Stage == StagePostDownload {
				s.PostDownloadEdges++
			}
		}
	}
	if uriCount > 0 {
		s.AvgURILength = float64(uriLenSum) / float64(uriCount)
	}
	s.TotalPayloadBytes = paySizeSum
	if payCount > 0 {
		s.AvgPayloadSize = float64(paySizeSum) / float64(payCount)
	}

	// Unique hosts: every node except the origin marker (f4,
	// Conversation-Length counts conversation participants).
	hostURIs := 0
	for _, n := range w.Nodes {
		if n.Type == NodeOrigin {
			continue
		}
		s.UniqueHosts++
		hostURIs += len(n.URIs)
	}
	if s.UniqueHosts > 0 {
		s.AvgURIsPerHost = float64(hostURIs) / float64(s.UniqueHosts)
	}

	// Average inter-transaction time over consecutive request edges.
	if len(reqTimes) > 1 {
		var sum time.Duration
		for i := 1; i < len(reqTimes); i++ {
			d := reqTimes[i].Sub(reqTimes[i-1])
			if d < 0 {
				d = -d
			}
			sum += d
		}
		s.AvgInterTransact = sum / time.Duration(len(reqTimes)-1)
	}
	return s
}
