package wcg

import (
	"encoding/json"
	"encoding/xml"
	"net/http"
	"net/netip"
	"strings"
	"testing"
	"time"

	"dynaminer/internal/httpstream"
)

var (
	victimIP = netip.MustParseAddr("10.0.0.5")
	t0       = time.Date(2015, 12, 21, 10, 0, 0, 0, time.UTC)
)

// txb is a fluent builder for test transactions.
type txb struct{ t httpstream.Transaction }

func newTx(host, uri string, at time.Duration) *txb {
	return &txb{t: httpstream.Transaction{
		ClientIP: victimIP, ServerIP: netip.MustParseAddr("203.0.113.1"),
		Method: "GET", URI: uri, Host: host,
		ReqHdr: http.Header{}, RespHdr: http.Header{},
		ReqTime: t0.Add(at), RespTime: t0.Add(at + 20*time.Millisecond),
		StatusCode: 200, ContentType: "text/html", BodySize: 1024,
	}}
}

func (b *txb) method(m string) *txb          { b.t.Method = m; return b }
func (b *txb) status(c int) *txb             { b.t.StatusCode = c; return b }
func (b *txb) ctype(ct string) *txb          { b.t.ContentType = ct; return b }
func (b *txb) size(n int) *txb               { b.t.BodySize = n; return b }
func (b *txb) referer(r string) *txb         { b.t.ReqHdr.Set("Referer", r); return b }
func (b *txb) location(l string) *txb        { b.t.RespHdr.Set("Location", l); return b }
func (b *txb) body(s string) *txb            { b.t.Body = []byte(s); return b }
func (b *txb) hdr(k, v string) *txb          { b.t.ReqHdr.Set(k, v); return b }
func (b *txb) build() httpstream.Transaction { return b.t }

func TestClassifyPayload(t *testing.T) {
	cases := []struct {
		uri, ct string
		want    PayloadClass
	}{
		{"/a.exe", "", PayloadEXE},
		{"/a.exe?x=1", "text/html", PayloadEXE}, // extension beats content type
		{"/x.jar", "", PayloadJAR},
		{"/y.swf", "", PayloadSWF},
		{"/z.xap", "", PayloadXAP},
		{"/doc.pdf", "", PayloadPDF},
		{"/file.locky", "", PayloadCrypt},
		{"/file.cerber", "", PayloadCrypt},
		{"/app.dmg", "", PayloadDMG},
		{"/page.html", "", PayloadHTML},
		{"/s.js", "", PayloadJS},
		{"/i.png", "", PayloadImage},
		{"/a.zip", "", PayloadArchive},
		{"/api", "application/json", PayloadJSON},
		{"/bin", "application/x-msdownload", PayloadEXE},
		{"/flash", "application/x-shockwave-flash", PayloadSWF},
		{"/", "text/html; charset=utf-8", PayloadHTML},
		{"/", "", PayloadHTML}, // bare page fetch
		{"/mystery.qqq", "application/weird", PayloadOther},
	}
	for _, tc := range cases {
		if got := ClassifyPayload(tc.uri, tc.ct); got != tc.want {
			t.Errorf("ClassifyPayload(%q,%q) = %v, want %v", tc.uri, tc.ct, got, tc.want)
		}
	}
}

func TestExploitTypes(t *testing.T) {
	for _, p := range []PayloadClass{PayloadPDF, PayloadEXE, PayloadJAR, PayloadSWF, PayloadXAP, PayloadDMG, PayloadCrypt} {
		if !p.IsExploitType() {
			t.Errorf("%v must be an exploit type", p)
		}
	}
	for _, p := range []PayloadClass{PayloadHTML, PayloadJS, PayloadImage, PayloadNone, PayloadJSON} {
		if p.IsExploitType() {
			t.Errorf("%v must not be an exploit type", p)
		}
	}
}

func TestCryptExtensionCount(t *testing.T) {
	if len(cryptExtensions) != CryptExtensionCount {
		t.Fatalf("crypt extensions = %d, want %d", len(cryptExtensions), CryptExtensionCount)
	}
}

func TestHostOfURL(t *testing.T) {
	cases := []struct{ in, want string }{
		{"http://evil.com/landing?id=1", "evil.com"},
		{"https://a.b.co.uk/x", "a.b.co.uk"},
		{"//cdn.example.com/lib.js", "cdn.example.com"},
		{"/relative/path", ""},
		{"http://host.com", "host.com"},
		{"http://host.com:8080/x", "host.com"},
		{"bare-host.net/p", "bare-host.net"},
		{"http://EVIL.Example/x", "evil.example"}, // DNS names fold case
		{"HTTPS://MiXeD.CoM", "mixed.com"},
	}
	for _, tc := range cases {
		if got := hostOfURL(tc.in); got != tc.want {
			t.Errorf("hostOfURL(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestHostCaseFolding(t *testing.T) {
	// Host, Referer, and Location headers that disagree on case must all
	// resolve to one lowercase node per DNS name; otherwise referrer
	// linkage and redirect edges split and the WCG fragments.
	txs := []httpstream.Transaction{
		newTx("Mixed.Example", "/", 0).build(),
		newTx("mixed.EXAMPLE", "/next", 100*time.Millisecond).
			referer("http://MIXED.example/").build(),
		newTx("hop.example", "/r", 200*time.Millisecond).
			status(302).location("http://TARGET.example/x").size(0).build(),
		newTx("target.EXAMPLE", "/x", 300*time.Millisecond).
			referer("http://hop.EXAMPLE/r").build(),
	}
	w := FromTransactions(txs)
	// victim + mixed.example + hop.example + target.example.
	if w.Order() != 4 {
		for _, n := range w.Nodes {
			t.Logf("node %d: %s", n.ID, n.Host)
		}
		t.Fatalf("order = %d, want 4 (case variants must merge)", w.Order())
	}
	for _, host := range []string{"mixed.example", "hop.example", "target.example"} {
		if w.NodeByHost(host) == nil {
			t.Fatalf("node %q missing", host)
		}
	}
	// The mixed-case Location must still produce the hop->target redirect.
	found := false
	for _, e := range w.Edges {
		if e.Kind == EdgeRedirect && w.Nodes[e.From].Host == "hop.example" && w.Nodes[e.To].Host == "target.example" {
			found = true
		}
	}
	if !found {
		t.Fatal("redirect edge lost to host-case mismatch")
	}
}

func TestRegisteredDomainAndTLD(t *testing.T) {
	if registeredDomain("a.b.evil.com") != "evil.com" {
		t.Fatal("registeredDomain wrong")
	}
	if registeredDomain("10.1.2.3") != "10.1.2.3" {
		t.Fatal("IP registeredDomain wrong")
	}
	if topLevelDomain("x.evil.ru") != "ru" {
		t.Fatal("tld wrong")
	}
	if topLevelDomain("10.0.0.1") != "ip" {
		t.Fatal("IP tld wrong")
	}
}

func TestDeobfuscate(t *testing.T) {
	in := `var u=String.fromCharCode(104,116,116,112);`
	if got := Deobfuscate(in); !strings.Contains(got, "http") {
		t.Fatalf("fromCharCode not decoded: %q", got)
	}
	if got := Deobfuscate(`\x68\x74\x74\x70`); got != "http" {
		t.Fatalf("hex not decoded: %q", got)
	}
	if got := Deobfuscate("%68%74%74%70"); got != "http" {
		t.Fatalf("pct not decoded: %q", got)
	}
	// Stacked: percent-encoding of hex escapes.
	stacked := `%5Cx68%5Cx69`
	if got := Deobfuscate(stacked); got != "hi" {
		t.Fatalf("stacked not decoded: %q", got)
	}
	// Invalid charcodes stay intact.
	bad := `String.fromCharCode(9999999999)`
	if got := Deobfuscate(bad); got != bad {
		t.Fatalf("invalid charcode mangled: %q", got)
	}
}

func TestSniffBodyRedirects(t *testing.T) {
	body := `<html><head>
<meta http-equiv="refresh" content="0; url=http://landing.evil.com/gate">
</head><body>
<iframe src="http://exploit.bad.ru/ek" width=1 height=1></iframe>
<script>window.location="http://next.hop.net/x";</script>
</body></html>`
	got := SniffBodyRedirects([]byte(body))
	want := map[string]bool{
		"http://landing.evil.com/gate": true,
		"http://exploit.bad.ru/ek":     true,
		"http://next.hop.net/x":        true,
	}
	if len(got) != 3 {
		t.Fatalf("sniffed %d redirects: %v", len(got), got)
	}
	for _, u := range got {
		if !want[u] {
			t.Errorf("unexpected redirect %q", u)
		}
	}
	// Obfuscated JS location.
	obf := `<script>window.location="%68%74%74%70://hidden.evil.io/p";</script>`
	got = SniffBodyRedirects([]byte(obf))
	if len(got) != 1 || got[0] != "http://hidden.evil.io/p" {
		t.Fatalf("obfuscated sniff = %v", got)
	}
	if SniffBodyRedirects(nil) != nil {
		t.Fatal("nil body must yield nil")
	}
}

// anglerEpisode models the paper's Figure 6: bing.com origin, compromised
// site A, landing page B, exploit server C serving Flash, then CryptoWall
// callbacks to D, E, F.
func anglerEpisode() []httpstream.Transaction {
	return []httpstream.Transaction{
		newTx("compromisedA.com", "/blog/post", 0).
			referer("http://bing.com/search?q=soccer").hdr("DNT", "1").build(),
		newTx("compromisedA.com", "/blog/style.css", 300*time.Millisecond).
			ctype("text/css").size(400).build(),
		newTx("landingB.net", "/gate.php?id=77", 900*time.Millisecond).
			referer("http://compromisedA.com/blog/post").
			body(`<iframe src="http://exploitC.ru/flash"></iframe>`).build(),
		newTx("exploitC.ru", "/flash", 1500*time.Millisecond).
			referer("http://landingB.net/gate.php?id=77").
			hdr("X-Flash-Version", "18,0,0,232").
			status(302).location("http://exploitC.ru/payload.swf").size(0).build(),
		newTx("exploitC.ru", "/payload.swf", 1800*time.Millisecond).
			ctype("application/x-shockwave-flash").size(91000).build(),
		newTx("cncD.com", "/g.php", 4*time.Second).method("POST").size(20).ctype("text/plain").build(),
		newTx("cncE.com", "/g.php", 5*time.Second).method("POST").size(20).ctype("text/plain").build(),
		newTx("cncF.com", "/g.php", 6*time.Second).method("POST").status(404).size(0).build(),
	}
}

func TestFromTransactionsAngler(t *testing.T) {
	w := FromTransactions(anglerEpisode())

	// Nodes: victim + bing origin + A + B + C + D + E + F = 8 (Figure 6).
	if w.Order() != 8 {
		for _, n := range w.Nodes {
			t.Logf("node %d: %s (%s)", n.ID, n.Host, n.Type)
		}
		t.Fatalf("order = %d, want 8", w.Order())
	}
	if !w.OriginKnown || w.OriginHost != "bing.com" {
		t.Fatalf("origin = %q known=%v", w.OriginHost, w.OriginKnown)
	}
	if !w.DNT {
		t.Fatal("DNT must be set")
	}
	if w.XFlashVersion != "18,0,0,232" {
		t.Fatalf("x-flash = %q", w.XFlashVersion)
	}

	// Exploit server must be classified malicious.
	if n := w.NodeByHost("exploitC.ru"); n == nil || n.Type != NodeMalicious {
		t.Fatalf("exploitC.ru type = %v", n)
	}
	if n := w.NodeByHost(victimIP.String()); n == nil || n.Type != NodeVictim {
		t.Fatal("victim node wrong")
	}
	if n := w.NodeByHost("bing.com"); n == nil || n.Type != NodeOrigin {
		t.Fatal("origin node wrong")
	}

	// Stage assignment: callbacks after the SWF download are post-download.
	var postPosts int
	for _, e := range w.Edges {
		if e.Kind == EdgeRequest && e.Stage == StagePostDownload && e.Method == "POST" {
			postPosts++
		}
	}
	if postPosts != 3 {
		t.Fatalf("post-download POSTs = %d, want 3", postPosts)
	}

	s := w.Summarize()
	if !s.HasCallback {
		t.Fatal("callback must be detected")
	}
	if s.DownloadedExploits != 1 {
		t.Fatalf("exploit downloads = %d, want 1", s.DownloadedExploits)
	}
	if s.PayloadCounts[PayloadSWF] != 1 {
		t.Fatalf("swf count = %d", s.PayloadCounts[PayloadSWF])
	}
	if s.GETs != 5 || s.POSTs != 3 {
		t.Fatalf("methods: GET=%d POST=%d", s.GETs, s.POSTs)
	}
	if s.HTTP30X != 1 || s.HTTP40X != 1 {
		t.Fatalf("codes: 30x=%d 40x=%d", s.HTTP30X, s.HTTP40X)
	}
	if s.Redirects.TotalRedirects < 3 {
		t.Fatalf("redirects = %d, want >= 3", s.Redirects.TotalRedirects)
	}
	if !s.XFlashVersionSet || !s.DNT {
		t.Fatal("summary header flags wrong")
	}
	if s.Duration <= 0 {
		t.Fatal("duration must be positive")
	}
	if s.AvgInterTransact <= 0 {
		t.Fatal("inter-transaction time must be positive")
	}
}

func TestStagesBeforeDownloadArePre(t *testing.T) {
	w := FromTransactions(anglerEpisode())
	for _, e := range w.Edges {
		if e.Time.Before(t0.Add(1800*time.Millisecond)) && e.Stage != StagePreDownload {
			t.Fatalf("edge at %v staged %v, want pre-download", e.Time.Sub(t0), e.Stage)
		}
	}
}

func TestNoDownloadAllPre(t *testing.T) {
	txs := []httpstream.Transaction{
		newTx("news.com", "/", 0).build(),
		newTx("news.com", "/story", time.Second).method("POST").build(),
	}
	w := FromTransactions(txs)
	for _, e := range w.Edges {
		if e.Stage != StagePreDownload {
			t.Fatalf("stage = %v, want pre-download everywhere", e.Stage)
		}
	}
	s := w.Summarize()
	if s.HasCallback || s.PostDownloadEdges != 0 {
		t.Fatal("no-download conversation must have no post-download dynamics")
	}
}

func TestEmptyTransactions(t *testing.T) {
	w := FromTransactions(nil)
	if w.Order() != 0 || w.Size() != 0 {
		t.Fatal("empty input must give empty WCG")
	}
	s := w.Summarize()
	if s.Order != 0 || s.UniqueHosts != 0 {
		t.Fatalf("summary of empty WCG: %+v", s)
	}
}

func TestUnknownOriginAddsNoNode(t *testing.T) {
	txs := []httpstream.Transaction{newTx("direct.com", "/x", 0).build()}
	w := FromTransactions(txs)
	if w.OriginKnown || w.OriginHost != "" {
		t.Fatal("origin must be unknown")
	}
	for _, n := range w.Nodes {
		if n.Type == NodeOrigin {
			t.Fatal("unknown origin must not add a marker node")
		}
	}
	if w.Order() != 2 { // victim + direct.com only
		t.Fatalf("order = %d, want 2", w.Order())
	}
}

func TestRedirectChains(t *testing.T) {
	// A -> B -> C plus D -> E: two chains, longest 2 hops.
	txs := []httpstream.Transaction{
		newTx("a.com", "/1", 0).status(302).location("http://b.com/2").size(0).build(),
		newTx("b.com", "/2", 200*time.Millisecond).status(302).location("http://c.com/3").size(0).build(),
		newTx("c.com", "/3", 400*time.Millisecond).build(),
		newTx("d.com", "/x", 2*time.Second).status(301).location("http://e.com/y").size(0).build(),
		newTx("e.com", "/y", 2200*time.Millisecond).build(),
	}
	w := FromTransactions(txs)
	chains := w.RedirectChains()
	maxHops := 0
	for _, c := range chains {
		if c.Hops() > maxHops {
			maxHops = c.Hops()
		}
	}
	if maxHops != 2 {
		t.Fatalf("max hops = %d, want 2 (chains=%v)", maxHops, chains)
	}
	st := w.RedirectStats()
	if st.MaxChainLen != 2 {
		t.Fatalf("MaxChainLen = %d, want 2", st.MaxChainLen)
	}
	if st.TotalRedirects < 3 {
		t.Fatalf("TotalRedirects = %d, want >= 3", st.TotalRedirects)
	}
	if st.CrossDomainCount < 3 {
		t.Fatalf("CrossDomainCount = %d", st.CrossDomainCount)
	}
	if st.TLDDiversity < 1 {
		t.Fatal("TLD diversity must be positive")
	}
	if st.AvgRedirectDelay <= 0 {
		t.Fatal("avg redirect delay must be positive for chained redirects")
	}
}

func TestGraphProjection(t *testing.T) {
	w := FromTransactions(anglerEpisode())
	g := w.Graph()
	if g.N() != w.Order() {
		t.Fatalf("graph N = %d, want %d", g.N(), w.Order())
	}
	if g.M() != w.Size() {
		t.Fatalf("graph M = %d, want %d", g.M(), w.Size())
	}
	// Cached: same pointer on second call.
	if w.Graph() != g {
		t.Fatal("graph must be cached")
	}
}

func TestDOT(t *testing.T) {
	w := FromTransactions(anglerEpisode())
	dot := w.DOT("angler")
	// Node hosts are lowercased at construction (DNS case folding).
	for _, want := range []string{"digraph wcg", "bing.com", "exploitc.ru", "redir", "salmon", "lightgreen"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q", want)
		}
	}
}

func TestStageAndKindStrings(t *testing.T) {
	if StagePreDownload.String() != "pre-download" || StagePostDownload.String() != "post-download" {
		t.Fatal("stage strings wrong")
	}
	if EdgeRequest.String() != "req" || EdgeRedirect.String() != "redir" {
		t.Fatal("edge kind strings wrong")
	}
	if NodeMalicious.String() != "malicious" || NodeType(99).String() != "unknown" {
		t.Fatal("node type strings wrong")
	}
	if Stage(9).String() != "unknown" || EdgeKind(9).String() != "unknown" {
		t.Fatal("fallback strings wrong")
	}
	if PayloadClass(99).String() != "unknown" || PayloadEXE.String() != "exe" {
		t.Fatal("payload strings wrong")
	}
}

func TestSubresourceRefererNotARedirect(t *testing.T) {
	// An image loaded from a CDN with a cross-host referrer must not create
	// a redirect edge; a navigated HTML document must.
	txs := []httpstream.Transaction{
		newTx("site.com", "/", 0).build(),
		newTx("cdn.net", "/logo.png", 100*time.Millisecond).
			ctype("image/png").referer("http://site.com/").build(),
		newTx("partner.org", "/landing", 200*time.Millisecond).
			referer("http://site.com/").build(),
	}
	w := FromTransactions(txs)
	redirTargets := make(map[string]bool)
	for _, e := range w.Edges {
		if e.Kind == EdgeRedirect {
			redirTargets[w.Nodes[e.To].Host] = true
		}
	}
	if redirTargets["cdn.net"] {
		t.Fatal("image subresource created a redirect edge")
	}
	if !redirTargets["partner.org"] {
		t.Fatal("document navigation missing redirect edge")
	}
}

func TestWriteJSON(t *testing.T) {
	w := FromTransactions(anglerEpisode())
	var buf strings.Builder
	if err := w.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal([]byte(buf.String()), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	nodes, ok := decoded["nodes"].([]any)
	if !ok || len(nodes) != w.Order() {
		t.Fatalf("nodes = %v", decoded["nodes"])
	}
	edges, ok := decoded["edges"].([]any)
	if !ok || len(edges) != w.Size() {
		t.Fatalf("edges wrong")
	}
	if decoded["originKnown"] != true || decoded["originHost"] != "bing.com" {
		t.Fatal("origin metadata missing from JSON")
	}
	first := nodes[0].(map[string]any)
	if first["type"] != "victim" {
		t.Fatalf("first node = %v", first)
	}
}

func TestRedirectLoopHandled(t *testing.T) {
	// A <-> B redirect loop must not hang chain reconstruction and must
	// produce finite chains.
	txs := []httpstream.Transaction{
		newTx("a.com", "/1", 0).status(302).location("http://b.com/2").size(0).build(),
		newTx("b.com", "/2", 100*time.Millisecond).status(302).location("http://a.com/1").size(0).build(),
		newTx("a.com", "/1", 200*time.Millisecond).status(302).location("http://b.com/2").size(0).build(),
		newTx("b.com", "/2", 300*time.Millisecond).status(302).location("http://a.com/1").size(0).build(),
	}
	w := FromTransactions(txs)
	chains := w.RedirectChains()
	totalHops := 0
	for _, c := range chains {
		totalHops += c.Hops()
	}
	st := w.RedirectStats()
	if totalHops != st.TotalRedirects {
		t.Fatalf("chain hops %d != redirect edges %d", totalHops, st.TotalRedirects)
	}
	if st.MaxChainLen < 2 {
		t.Fatalf("loop chain length = %d", st.MaxChainLen)
	}
}

func TestSelfRedirectIgnored(t *testing.T) {
	// A host redirecting to itself must not create a self-loop edge.
	txs := []httpstream.Transaction{
		newTx("self.com", "/a", 0).status(302).location("http://self.com/b").size(0).build(),
		newTx("self.com", "/b", 100*time.Millisecond).build(),
	}
	w := FromTransactions(txs)
	for _, e := range w.Edges {
		if e.Kind == EdgeRedirect && e.From == e.To {
			t.Fatal("self redirect edge created")
		}
	}
	if w.RedirectStats().TotalRedirects != 0 {
		t.Fatalf("redirects = %d, want 0 for same-host redirect", w.RedirectStats().TotalRedirects)
	}
}

func TestDuplicateRedirectDeduped(t *testing.T) {
	// The same Location hop twice within a second counts once.
	txs := []httpstream.Transaction{
		newTx("x.com", "/r", 0).status(302).location("http://y.com/t").size(0).build(),
		newTx("x.com", "/r", 200*time.Millisecond).status(302).location("http://y.com/t").size(0).build(),
	}
	w := FromTransactions(txs)
	if got := w.RedirectStats().TotalRedirects; got != 1 {
		t.Fatalf("redirects = %d, want 1 after dedup", got)
	}
}

func TestWriteGraphML(t *testing.T) {
	w := FromTransactions(anglerEpisode())
	var buf strings.Builder
	if err := w.WriteGraphML(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"<graphml", `edgedefault="directed"`, "bing.com", "malicious", "post-download"} {
		if !strings.Contains(out, want) {
			t.Fatalf("graphml missing %q", want)
		}
	}
	// Well-formed XML.
	var probe struct {
		XMLName xml.Name `xml:"graphml"`
	}
	if err := xml.Unmarshal([]byte(out), &probe); err != nil {
		t.Fatalf("invalid XML: %v", err)
	}
}

func TestUploadAndExfilBytes(t *testing.T) {
	txs := anglerEpisode()
	// Give the post-download POST beacons upload payloads.
	for i := range txs {
		if txs[i].Method == "POST" {
			txs[i].ReqBodySize = 512
		}
	}
	// And a pre-download POST-free upload to check staging separation.
	txs[0].ReqBodySize = 64
	w := FromTransactions(txs)
	s := w.Summarize()
	if s.UploadBytes != 64+3*512 {
		t.Fatalf("upload bytes = %d, want %d", s.UploadBytes, 64+3*512)
	}
	if s.ExfilBytes != 3*512 {
		t.Fatalf("exfil bytes = %d, want %d (post-download uploads only)", s.ExfilBytes, 3*512)
	}
}
