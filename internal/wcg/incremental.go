package wcg

import (
	"time"

	"dynaminer/internal/httpstream"
)

// IncrementalBuilder owns the live WCG of one watched cluster in the
// on-the-wire pipeline (Section V). Where the batch path rebuilds the
// graph with FromTransactions over a re-copied subset on every update, the
// incremental builder consumes each transaction exactly once: Append
// updates nodes, edges, annotations, redirect bookkeeping, and the
// structural projection in place.
//
// Correctness contract: after N in-order Append calls, Finalize returns a
// WCG byte-identical (WriteJSON) to FromTransactions over the same N
// transactions. FromTransactions stable-sorts by request time, so the
// identity only holds for non-decreasing arrival order — Append refuses,
// without mutating anything, transactions that would violate it, and the
// caller falls back to the batch path.
type IncrementalBuilder struct {
	b       *Builder
	lastReq time.Time
	count   int
}

// NewIncrementalBuilder returns an empty incremental builder.
func NewIncrementalBuilder() *IncrementalBuilder {
	return &IncrementalBuilder{b: NewBuilder()}
}

// Append ingests one transaction in O(1) amortized time. It reports false
// — leaving the WCG untouched — when tx arrives out of request-time order,
// in which case the caller must rebuild from scratch.
func (ib *IncrementalBuilder) Append(tx httpstream.Transaction) bool {
	if ib.count > 0 && tx.ReqTime.Before(ib.lastReq) {
		return false
	}
	ib.b.Add(tx)
	ib.lastReq = tx.ReqTime
	ib.count++
	return true
}

// Len returns the number of transactions appended so far.
func (ib *IncrementalBuilder) Len() int { return ib.count }

// Live returns the live, un-finalized WCG. Conversation stages and node
// roles are not assigned — none of the 37 features read them — and the
// graph mutates on the next Append; callers must not retain it across
// appends (use Snapshot for a stable copy).
func (ib *IncrementalBuilder) Live() *WCG { return ib.b.w }

// Finalize assigns conversation stages and node roles and returns the
// live WCG. The builder stays usable: later Appends grow the same graph
// and a later Finalize re-runs the (idempotent) finalization.
func (ib *IncrementalBuilder) Finalize() *WCG { return ib.b.WCG() }

// Snapshot finalizes and deep-clones the live WCG — the form alerts hand
// out, immune to subsequent appends.
func (ib *IncrementalBuilder) Snapshot() *WCG { return ib.b.WCG().Clone() }
