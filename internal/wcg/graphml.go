package wcg

import (
	"encoding/xml"
	"fmt"
	"io"
)

// GraphML export so conversation graphs open directly in Gephi/yEd.
// Node attributes: host, role; edge attributes: kind, stage, method,
// status, payload.

type graphmlDoc struct {
	XMLName xml.Name      `xml:"graphml"`
	Xmlns   string        `xml:"xmlns,attr"`
	Keys    []graphmlKey  `xml:"key"`
	Graph   graphmlInnerG `xml:"graph"`
}

type graphmlKey struct {
	ID   string `xml:"id,attr"`
	For  string `xml:"for,attr"`
	Name string `xml:"attr.name,attr"`
	Type string `xml:"attr.type,attr"`
}

type graphmlInnerG struct {
	ID          string        `xml:"id,attr"`
	EdgeDefault string        `xml:"edgedefault,attr"`
	Nodes       []graphmlNode `xml:"node"`
	Edges       []graphmlEdge `xml:"edge"`
}

type graphmlNode struct {
	ID   string        `xml:"id,attr"`
	Data []graphmlData `xml:"data"`
}

type graphmlEdge struct {
	Source string        `xml:"source,attr"`
	Target string        `xml:"target,attr"`
	Data   []graphmlData `xml:"data"`
}

type graphmlData struct {
	Key   string `xml:"key,attr"`
	Value string `xml:",chardata"`
}

// WriteGraphML serializes the annotated WCG as GraphML.
func (w *WCG) WriteGraphML(out io.Writer) error {
	doc := graphmlDoc{
		Xmlns: "http://graphml.graphdrawing.org/xmlns",
		Keys: []graphmlKey{
			{ID: "host", For: "node", Name: "host", Type: "string"},
			{ID: "role", For: "node", Name: "role", Type: "string"},
			{ID: "kind", For: "edge", Name: "kind", Type: "string"},
			{ID: "stage", For: "edge", Name: "stage", Type: "string"},
			{ID: "method", For: "edge", Name: "method", Type: "string"},
			{ID: "status", For: "edge", Name: "status", Type: "int"},
			{ID: "payload", For: "edge", Name: "payload", Type: "string"},
		},
		Graph: graphmlInnerG{ID: "wcg", EdgeDefault: "directed"},
	}
	for _, n := range w.Nodes {
		doc.Graph.Nodes = append(doc.Graph.Nodes, graphmlNode{
			ID: fmt.Sprintf("n%d", n.ID),
			Data: []graphmlData{
				{Key: "host", Value: n.Host},
				{Key: "role", Value: n.Type.String()},
			},
		})
	}
	for _, e := range w.Edges {
		ge := graphmlEdge{
			Source: fmt.Sprintf("n%d", e.From),
			Target: fmt.Sprintf("n%d", e.To),
			Data: []graphmlData{
				{Key: "kind", Value: e.Kind.String()},
				{Key: "stage", Value: e.Stage.String()},
			},
		}
		if e.Method != "" {
			ge.Data = append(ge.Data, graphmlData{Key: "method", Value: e.Method})
		}
		if e.StatusCode != 0 {
			ge.Data = append(ge.Data, graphmlData{Key: "status", Value: fmt.Sprint(e.StatusCode)})
		}
		if e.PayloadType != PayloadNone {
			ge.Data = append(ge.Data, graphmlData{Key: "payload", Value: e.PayloadType.String()})
		}
		doc.Graph.Edges = append(doc.Graph.Edges, ge)
	}
	if _, err := io.WriteString(out, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(out)
	enc.Indent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("wcg: graphml encode: %w", err)
	}
	_, err := io.WriteString(out, "\n")
	return err
}
