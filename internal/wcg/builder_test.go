package wcg

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"dynaminer/internal/httpstream"
)

// TestBuilderMatchesBatch: feeding time-ordered transactions one at a time
// must produce the same graph and annotations as FromTransactions.
func TestBuilderMatchesBatch(t *testing.T) {
	txs := anglerEpisode()
	batch := FromTransactions(txs)

	b := NewBuilder()
	for _, tx := range txs {
		b.Add(tx)
	}
	inc := b.WCG()

	if inc.Order() != batch.Order() || inc.Size() != batch.Size() {
		t.Fatalf("incremental %d/%d vs batch %d/%d", inc.Order(), inc.Size(), batch.Order(), batch.Size())
	}
	if inc.OriginKnown != batch.OriginKnown || inc.OriginHost != batch.OriginHost {
		t.Fatal("origin metadata differs")
	}
	for i := range batch.Nodes {
		bn, in := batch.Nodes[i], inc.Nodes[i]
		if bn.Host != in.Host || bn.Type != in.Type {
			t.Fatalf("node %d differs: %s/%s vs %s/%s", i, bn.Host, bn.Type, in.Host, in.Type)
		}
	}
	for i := range batch.Edges {
		be, ie := batch.Edges[i], inc.Edges[i]
		if be.Kind != ie.Kind || be.From != ie.From || be.To != ie.To || be.Stage != ie.Stage {
			t.Fatalf("edge %d differs: %+v vs %+v", i, be, ie)
		}
	}
	if bs, is := batch.Summarize(), inc.Summarize(); !reflect.DeepEqual(bs, is) {
		t.Fatalf("summaries differ:\n%+v\n%+v", bs, is)
	}
}

// TestBuilderIntermediateSnapshots: WCG() may be called repeatedly while
// the graph grows, and each snapshot must be internally consistent.
func TestBuilderIntermediateSnapshots(t *testing.T) {
	txs := anglerEpisode()
	b := NewBuilder()
	prevEdges := 0
	for i, tx := range txs {
		b.Add(tx)
		w := b.WCG()
		if w.Size() < prevEdges {
			t.Fatalf("graph shrank at step %d", i)
		}
		prevEdges = w.Size()
		s := w.Summarize()
		if s.GETs+s.POSTs+s.OtherMethods != i+1 {
			t.Fatalf("step %d: %d requests recorded", i, s.GETs+s.POSTs+s.OtherMethods)
		}
	}
	// Final snapshot identical to batch.
	if got, want := b.WCG().Order(), FromTransactions(txs).Order(); got != want {
		t.Fatalf("final order %d != batch %d", got, want)
	}
}

// TestBuilderMatchesBatchProperty: random synthetic-ish transaction
// streams (time-ordered) agree between the two construction paths.
func TestBuilderMatchesBatchProperty(t *testing.T) {
	hosts := []string{"a.com", "b.net", "c.ru", "d.org"}
	ctypes := []string{"text/html", "application/x-msdownload", "image/png", "application/javascript"}
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var txs []httpstream.Transaction
		at := time.Duration(0)
		n := 3 + rng.Intn(20)
		for i := 0; i < n; i++ {
			at += time.Duration(rng.Intn(2000)) * time.Millisecond
			tb := newTx(hosts[rng.Intn(len(hosts))], "/p"+string(rune('a'+rng.Intn(26))), at).
				ctype(ctypes[rng.Intn(len(ctypes))]).
				size(rng.Intn(10000))
			if rng.Float64() < 0.3 {
				tb.referer("http://" + hosts[rng.Intn(len(hosts))] + "/r")
			}
			if rng.Float64() < 0.2 {
				tb.status(302).location("http://" + hosts[rng.Intn(len(hosts))] + "/next")
			}
			if rng.Float64() < 0.15 {
				tb.method("POST")
			}
			txs = append(txs, tb.build())
		}
		batch := FromTransactions(txs)
		b := NewBuilder()
		for _, tx := range txs {
			b.Add(tx)
		}
		inc := b.WCG()
		if batch.Order() != inc.Order() || batch.Size() != inc.Size() {
			t.Fatalf("seed %d: %d/%d vs %d/%d", seed, batch.Order(), batch.Size(), inc.Order(), inc.Size())
		}
		bs, is := batch.Summarize(), inc.Summarize()
		if bs.Redirects != is.Redirects || bs.GETs != is.GETs || bs.HTTP30X != is.HTTP30X {
			t.Fatalf("seed %d: summaries differ", seed)
		}
	}
}

func TestBuilderEmpty(t *testing.T) {
	b := NewBuilder()
	w := b.WCG()
	if w.Order() != 0 || w.Size() != 0 {
		t.Fatal("empty builder must give empty WCG")
	}
	if b.Size() != 0 {
		t.Fatal("empty builder size wrong")
	}
}
