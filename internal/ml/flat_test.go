package ml

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
)

// flatDiffConfigs are the seeded forest shapes the differential suite pins
// FlatForest against the pointer forest on: shallow and deep trees, single
// tree and full ensemble, restricted and unrestricted feature sampling.
var flatDiffConfigs = []ForestConfig{
	{NumTrees: 1, Seed: 1},
	{NumTrees: 5, Seed: 7, MaxDepth: 3},
	{NumTrees: 20, Seed: 2},
	{NumTrees: 20, Seed: 3, MaxFeatures: 2, MinSamplesLeaf: 4},
	{NumTrees: 9, Seed: 11, MaxDepth: 1},
}

func probeVectors(n, dim int, rng *rand.Rand) [][]float64 {
	X := make([][]float64, n)
	for i := range X {
		x := make([]float64, dim)
		for j := range x {
			x[j] = rng.NormFloat64() * 2
		}
		X[i] = x
	}
	return X
}

// TestFlatForestDifferential pins the flattened representation against the
// pointer forest bit-for-bit: scores (math.Float64bits), vote tallies,
// predictions, batch scoring, and the serialized round-trip through both
// loaders, across every seeded config.
func TestFlatForestDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const dim = 8
	ds := gaussDataset(300, dim, 4, 1.2, rng)
	X := probeVectors(500, dim, rng)
	for _, cfg := range flatDiffConfigs {
		f, err := TrainForest(ds, cfg)
		if err != nil {
			t.Fatal(err)
		}
		ff := f.Flatten()
		if ff.NumTrees() != f.NumTrees() || ff.NumFeatures() != f.NumFeatures() {
			t.Fatalf("cfg %+v: shape mismatch: %d/%d trees, %d/%d features",
				cfg, ff.NumTrees(), f.NumTrees(), ff.NumFeatures(), f.NumFeatures())
		}
		want := make([]float64, len(X))
		for i, x := range X {
			want[i] = f.Score(x)
			got := ff.Score(x)
			if math.Float64bits(got) != math.Float64bits(want[i]) {
				t.Fatalf("cfg %+v probe %d: flat score %v != pointer score %v", cfg, i, got, want[i])
			}
			ps, pv, pt := f.ScoreWithVotes(x)
			fs, fv, ft := ff.ScoreWithVotes(x)
			if math.Float64bits(fs) != math.Float64bits(ps) || fv != pv || ft != pt {
				t.Fatalf("cfg %+v probe %d: votes (%v,%d,%d) != (%v,%d,%d)", cfg, i, fs, fv, ft, ps, pv, pt)
			}
			if ff.Predict(x) != f.Predict(x) {
				t.Fatalf("cfg %+v probe %d: predictions differ", cfg, i)
			}
		}
		batch := ff.ScoreBatch(nil, X)
		for i := range batch {
			if math.Float64bits(batch[i]) != math.Float64bits(want[i]) {
				t.Fatalf("cfg %+v: ScoreBatch[%d] = %v, want %v", cfg, i, batch[i], want[i])
			}
		}
	}
}

// TestFlatForestSerializedRoundTrip pins the artifact-format contract:
// FlatForest.Save is byte-identical to Forest.Save, and both loaders read
// either output back to bit-identical scores.
func TestFlatForestSerializedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	const dim = 7
	ds := gaussDataset(200, dim, 3, 1.5, rng)
	X := probeVectors(200, dim, rng)
	for _, cfg := range flatDiffConfigs {
		f, err := TrainForest(ds, cfg)
		if err != nil {
			t.Fatal(err)
		}
		ff := f.Flatten()
		var pbuf, fbuf bytes.Buffer
		if err := f.Save(&pbuf); err != nil {
			t.Fatal(err)
		}
		if err := ff.Save(&fbuf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(pbuf.Bytes(), fbuf.Bytes()) {
			t.Fatalf("cfg %+v: flat Save output differs from pointer Save", cfg)
		}
		loadedFlat, err := LoadFlatForest(bytes.NewReader(pbuf.Bytes()))
		if err != nil {
			t.Fatalf("cfg %+v: LoadFlatForest: %v", cfg, err)
		}
		loadedPtr, err := LoadForest(bytes.NewReader(fbuf.Bytes()))
		if err != nil {
			t.Fatalf("cfg %+v: LoadForest of flat output: %v", cfg, err)
		}
		for i, x := range X {
			want := f.Score(x)
			if got := loadedFlat.Score(x); math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("cfg %+v probe %d: loaded flat score %v != %v", cfg, i, got, want)
			}
			if got := loadedPtr.Score(x); math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("cfg %+v probe %d: loaded pointer score %v != %v", cfg, i, got, want)
			}
		}
	}
}

// TestScoreBatchParallel pins the parallel batch kernel against the
// sequential one across worker counts (tier2 runs this under -race).
func TestScoreBatchParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	const dim = 6
	ds := gaussDataset(240, dim, 3, 1.3, rng)
	f, err := TrainForest(ds, ForestConfig{NumTrees: 11, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	ff := f.Flatten()
	X := probeVectors(scoresParallelCutoff*4+37, dim, rng)
	want := ff.ScoreBatch(nil, X)
	for _, workers := range []int{0, 1, 2, 3, 8} {
		got := ff.ScoreBatchParallel(X, workers)
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("workers=%d: sample %d: %v != %v", workers, i, got[i], want[i])
			}
		}
	}
}

// TestScoreBatchReusesDst pins the zero-alloc contract of the pooled
// batch path: a dst with capacity is reused, not reallocated.
func TestScoreBatchReusesDst(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	const dim = 5
	ds := gaussDataset(100, dim, 2, 1.5, rng)
	f, err := TrainForest(ds, ForestConfig{NumTrees: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	ff := f.Flatten()
	X := probeVectors(64, dim, rng)
	dst := make([]float64, 0, len(X))
	out := ff.ScoreBatch(dst, X)
	if &out[0] != &dst[:1][0] {
		t.Fatal("ScoreBatch reallocated a dst with sufficient capacity")
	}
	if n := testing.AllocsPerRun(100, func() { out = ff.ScoreBatch(out, X) }); n != 0 {
		t.Fatalf("ScoreBatch with capacity allocates %v per run", n)
	}
}

// TestForestDimensionGuard pins the named panic on mis-dimensioned
// vectors: before the guard, a short vector died as a bare
// index-out-of-range inside tree traversal.
func TestForestDimensionGuard(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	ds := gaussDataset(100, 6, 3, 1.5, rng)
	f, err := TrainForest(ds, ForestConfig{NumTrees: 3, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	ff := f.Flatten()
	short := make([]float64, 4)
	for name, fn := range map[string]func(){
		"Forest.Score":              func() { f.Score(short) },
		"Forest.ScoreWithVotes":     func() { f.ScoreWithVotes(short) },
		"Forest.PredictVote":        func() { f.PredictVote(short) },
		"Forest.ScoreInto":          func() { f.ScoreInto(nil, [][]float64{short}) },
		"FlatForest.Score":          func() { ff.Score(short) },
		"FlatForest.ScoreWithVotes": func() { ff.ScoreWithVotes(short) },
		"FlatForest.ScoreBatch":     func() { ff.ScoreBatch(nil, [][]float64{short}) },
	} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("%s: no panic on short vector", name)
				}
				msg, ok := r.(string)
				if !ok || !strings.Contains(msg, "ml: ") || !strings.Contains(msg, "feature") {
					t.Fatalf("%s: panic %v is not the named dimension message", name, r)
				}
			}()
			fn()
		}()
	}
	// Unknown dimensionality (legacy artifacts) stays unguarded rather
	// than rejecting every vector.
	legacy := &Forest{trees: f.trees}
	if got := legacy.Score(probeVectors(1, 6, rng)[0]); math.IsNaN(got) || got < 0 || got > 1 {
		t.Fatalf("legacy forest score %v is not a probability", got)
	}
}
