package ml

import (
	"math/rand"
	"sort"
)

// PRPoint is one operating point on a precision-recall curve.
type PRPoint struct {
	Threshold float64
	Recall    float64
	Precision float64
}

// PRCurve computes the precision-recall curve for infection scores against
// true labels, from the strictest threshold to the loosest.
func PRCurve(scores []float64, y []int) []PRPoint {
	type sy struct {
		s float64
		y int
	}
	pairs := make([]sy, len(scores))
	pos := 0
	for i := range scores {
		pairs[i] = sy{scores[i], y[i]}
		if y[i] == LabelInfection {
			pos++
		}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].s > pairs[j].s })

	var curve []PRPoint
	tp, fp := 0, 0
	for i := 0; i < len(pairs); {
		j := i
		for j < len(pairs) && pairs[j].s == pairs[i].s {
			if pairs[j].y == LabelInfection {
				tp++
			} else {
				fp++
			}
			j++
		}
		curve = append(curve, PRPoint{
			Threshold: pairs[i].s,
			Recall:    ratio(tp, pos),
			Precision: ratio(tp, tp+fp),
		})
		i = j
	}
	return curve
}

// AveragePrecision summarizes a PR curve as the step-interpolated area:
// Σ (R_i - R_{i-1}) * P_i.
func AveragePrecision(curve []PRPoint) float64 {
	area := 0.0
	prevRecall := 0.0
	for _, p := range curve {
		area += (p.Recall - prevRecall) * p.Precision
		prevRecall = p.Recall
	}
	return area
}

// TrainForestOOB trains the ensemble and additionally estimates its
// generalization accuracy from out-of-bag samples: each sample is scored
// only by the trees whose bootstrap excluded it. The returned error rate
// is 1 - OOB accuracy; samples never out-of-bag are skipped.
func TrainForestOOB(ds *Dataset, cfg ForestConfig) (*Forest, float64, error) {
	if err := ds.Validate(); err != nil {
		return nil, 0, err
	}
	if cfg.NumTrees <= 0 {
		return nil, 0, errNumTrees(cfg.NumTrees)
	}
	maxF := cfg.MaxFeatures
	if maxF <= 0 {
		maxF = LogMaxFeatures(ds.NumFeatures())
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	f := &Forest{cfg: cfg, trees: make([]*Tree, cfg.NumTrees), nf: ds.NumFeatures()}
	treeCfg := TreeConfig{
		MaxFeatures:    maxF,
		MinSamplesLeaf: cfg.MinSamplesLeaf,
		MaxDepth:       cfg.MaxDepth,
	}
	n := ds.Len()
	sums := make([]float64, n)
	votes := make([]int, n)
	inBag := make([]bool, n)
	for i := range f.trees {
		boot := bootstrap(n, rng)
		f.trees[i] = TrainTree(ds.Subset(boot), treeCfg, rng)
		for j := range inBag {
			inBag[j] = false
		}
		for _, b := range boot {
			inBag[b] = true
		}
		for j := 0; j < n; j++ {
			if !inBag[j] {
				sums[j] += f.trees[i].PredictProba(ds.X[j])[LabelInfection]
				votes[j]++
			}
		}
	}
	wrong, counted := 0, 0
	for j := 0; j < n; j++ {
		if votes[j] == 0 {
			continue
		}
		counted++
		pred := LabelBenign
		if sums[j]/float64(votes[j]) > 0.5 {
			pred = LabelInfection
		}
		if pred != ds.Y[j] {
			wrong++
		}
	}
	oobErr := 0.0
	if counted > 0 {
		oobErr = float64(wrong) / float64(counted)
	}
	return f, oobErr, nil
}

type errNumTrees int

func (e errNumTrees) Error() string { return "ml: NumTrees must be positive" }
