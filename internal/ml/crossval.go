package ml

import (
	"math/rand"
)

// CrossValidate runs stratified k-fold cross-validation of the forest
// configuration on ds, pooling the per-fold predictions into one aggregate
// EvalResult — the protocol behind Table III and Figure 10.
func CrossValidate(ds *Dataset, cfg ForestConfig, k int, rng *rand.Rand) (EvalResult, error) {
	if err := ds.Validate(); err != nil {
		return EvalResult{}, err
	}
	folds := StratifiedKFold(ds.Y, k, rng)

	var (
		allScores []float64
		allLabels []int
		c         Confusion
	)
	for fi, test := range folds {
		if len(test) == 0 {
			continue
		}
		train := ds.Subset(TrainIndices(ds.Len(), test))
		foldCfg := cfg
		foldCfg.Seed = cfg.Seed + int64(fi)
		f, err := TrainForest(train, foldCfg)
		if err != nil {
			return EvalResult{}, err
		}
		for _, i := range test {
			s := f.Score(ds.X[i])
			allScores = append(allScores, s)
			allLabels = append(allLabels, ds.Y[i])
			pred := LabelBenign
			if s > 0.5 {
				pred = LabelInfection
			}
			c.Add(ds.Y[i], pred)
		}
	}
	return EvalResult{
		Confusion: c,
		TPR:       c.TPR(),
		FPR:       c.FPR(),
		FScore:    c.FScore(),
		ROCArea:   AUC(ROC(allScores, allLabels)),
	}, nil
}

// CrossValidateVoting is CrossValidate with the majority-vote rule instead
// of probability averaging, for the voting ablation. ROC area is computed
// from vote fractions.
func CrossValidateVoting(ds *Dataset, cfg ForestConfig, k int, rng *rand.Rand) (EvalResult, error) {
	if err := ds.Validate(); err != nil {
		return EvalResult{}, err
	}
	folds := StratifiedKFold(ds.Y, k, rng)
	var (
		allScores []float64
		allLabels []int
		c         Confusion
	)
	for fi, test := range folds {
		if len(test) == 0 {
			continue
		}
		train := ds.Subset(TrainIndices(ds.Len(), test))
		foldCfg := cfg
		foldCfg.Seed = cfg.Seed + int64(fi)
		f, err := TrainForest(train, foldCfg)
		if err != nil {
			return EvalResult{}, err
		}
		for _, i := range test {
			votes := 0
			for _, t := range f.trees {
				if t.Predict(ds.X[i]) == LabelInfection {
					votes++
				}
			}
			frac := float64(votes) / float64(len(f.trees))
			allScores = append(allScores, frac)
			allLabels = append(allLabels, ds.Y[i])
			c.Add(ds.Y[i], f.PredictVote(ds.X[i]))
		}
	}
	return EvalResult{
		Confusion: c,
		TPR:       c.TPR(),
		FPR:       c.FPR(),
		FScore:    c.FScore(),
		ROCArea:   AUC(ROC(allScores, allLabels)),
	}, nil
}
