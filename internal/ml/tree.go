package ml

import (
	"math/rand"
)

// TreeConfig controls CART growth.
type TreeConfig struct {
	// MaxFeatures is the number of candidate features sampled at each
	// split; 0 means all features.
	MaxFeatures int
	// MinSamplesLeaf is the minimum samples each side of a split must keep.
	MinSamplesLeaf int
	// MaxDepth bounds tree depth; 0 means unbounded.
	MaxDepth int
}

func (c TreeConfig) withDefaults() TreeConfig {
	if c.MinSamplesLeaf < 1 {
		c.MinSamplesLeaf = 1
	}
	return c
}

// treeNode is one node of a CART tree. Leaves carry the class probability
// distribution of the training samples that reached them.
type treeNode struct {
	feature   int
	threshold float64
	left      *treeNode
	right     *treeNode
	probs     [numClasses]float64 // leaf only
	leaf      bool
}

// Tree is a trained CART decision tree predicting class probabilities.
type Tree struct {
	root *treeNode
	cfg  TreeConfig
}

// TrainTree grows a CART tree on ds using Gini impurity. rng drives the
// per-split feature subsampling (pass nil for deterministic use of all
// features).
func TrainTree(ds *Dataset, cfg TreeConfig, rng *rand.Rand) *Tree {
	cfg = cfg.withDefaults()
	t := &Tree{cfg: cfg}
	idx := make([]int, ds.Len())
	for i := range idx {
		idx[i] = i
	}
	t.root = growTracked(ds, idx, cfg, rng, 0, nil, len(idx), newTrainScratch(ds))
	return t
}

func classCounts(ds *Dataset, idx []int) [numClasses]int {
	var counts [numClasses]int
	for _, i := range idx {
		counts[ds.Y[i]]++
	}
	return counts
}

func gini(counts [numClasses]int, total int) float64 {
	if total == 0 {
		return 0
	}
	g := 1.0
	for _, c := range counts {
		p := float64(c) / float64(total)
		g -= p * p
	}
	return g
}

func makeLeaf(counts [numClasses]int, total int) *treeNode {
	n := &treeNode{leaf: true}
	if total > 0 {
		for c, cnt := range counts {
			n.probs[c] = float64(cnt) / float64(total)
		}
	}
	return n
}

// trainScratch holds per-training reusable buffers: the feature
// permutation featureSample re-deals at every split, and the sorted
// value/label pairs bestSplit scans per candidate feature. Before the
// scratch existed, both were freshly allocated at every split and
// dominated training allocations. One scratch serves a whole tree (and a
// whole forest): splits consume their candidate list fully before any
// recursion, so reuse never aliases live data.
type trainScratch struct {
	perm []int
	buf  []valueLabel
}

type valueLabel struct {
	v float64
	y int
}

func newTrainScratch(ds *Dataset) *trainScratch {
	return &trainScratch{
		perm: make([]int, ds.NumFeatures()),
		buf:  make([]valueLabel, ds.Len()),
	}
}

// featureSample deals m distinct feature indices into the scratch
// permutation (all when m <= 0 or m >= nf, or when rng is nil). The RNG
// consumption is identical to the pre-scratch allocation per call, so
// training stays seed-for-seed deterministic.
func featureSample(sc *trainScratch, nf, m int, rng *rand.Rand) []int {
	if cap(sc.perm) < nf {
		sc.perm = make([]int, nf)
	}
	all := sc.perm[:nf]
	for i := range all {
		all[i] = i
	}
	if m <= 0 || m >= nf || rng == nil {
		return all
	}
	rng.Shuffle(nf, func(i, j int) { all[i], all[j] = all[j], all[i] })
	return all[:m]
}

// PredictProba returns P(class) for the sample.
func (t *Tree) PredictProba(x []float64) [numClasses]float64 {
	n := t.root
	for !n.leaf {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.probs
}

// Predict returns the majority class for the sample.
func (t *Tree) Predict(x []float64) int {
	p := t.PredictProba(x)
	if p[LabelInfection] > p[LabelBenign] {
		return LabelInfection
	}
	return LabelBenign
}

// Depth returns the depth of the tree (a single leaf has depth 0).
func (t *Tree) Depth() int { return nodeDepth(t.root) }

func nodeDepth(n *treeNode) int {
	if n.leaf {
		return 0
	}
	l, r := nodeDepth(n.left), nodeDepth(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}

// NodeCount returns the total number of nodes in the tree.
func (t *Tree) NodeCount() int { return countNodes(t.root) }

func countNodes(n *treeNode) int {
	if n.leaf {
		return 1
	}
	return 1 + countNodes(n.left) + countNodes(n.right)
}
