package ml

import (
	"math"
	"math/rand"
	"sort"
)

// entropy computes -Σ p log2 p over the class counts.
func entropy(counts [numClasses]int, total int) float64 {
	if total == 0 {
		return 0
	}
	h := 0.0
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / float64(total)
		h -= p * math.Log2(p)
	}
	return h
}

// GainRatio computes the gain ratio of feature f on the dataset: the
// information gain of the best binary threshold split divided by the
// split's intrinsic value. This is the metric the paper ranks features
// with (Table IV); it penalizes splits that shatter the data.
func GainRatio(ds *Dataset, f int) float64 {
	total := ds.Len()
	if total == 0 {
		return 0
	}
	parent := classCounts(ds, allIndices(total))
	parentH := entropy(parent, total)
	if parentH == 0 {
		return 0
	}

	type vl struct {
		v float64
		y int
	}
	vals := make([]vl, total)
	for i := range ds.X {
		vals[i] = vl{ds.X[i][f], ds.Y[i]}
	}
	sort.Slice(vals, func(a, b int) bool { return vals[a].v < vals[b].v })

	best := 0.0
	var leftCounts [numClasses]int
	for i := 0; i+1 < total; i++ {
		leftCounts[vals[i].y]++
		if vals[i].v == vals[i+1].v {
			continue
		}
		nl := i + 1
		nr := total - nl
		var rightCounts [numClasses]int
		rightCounts[0] = parent[0] - leftCounts[0]
		rightCounts[1] = parent[1] - leftCounts[1]
		ig := parentH -
			(float64(nl)*entropy(leftCounts, nl)+float64(nr)*entropy(rightCounts, nr))/float64(total)
		pl := float64(nl) / float64(total)
		iv := -pl*math.Log2(pl) - (1-pl)*math.Log2(1-pl)
		if iv <= 0 {
			continue
		}
		if gr := ig / iv; gr > best {
			best = gr
		}
	}
	return best
}

func allIndices(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// FeatureRank is one row of a Table IV-style ranking: the per-fold mean and
// standard deviation of a feature's gain ratio and of its rank position.
type FeatureRank struct {
	Feature       int
	GainRatioMean float64
	GainRatioStd  float64
	RankMean      float64
	RankStd       float64
}

// RankFeaturesCV ranks every feature by gain ratio with k-fold
// cross-validation: gain ratios are computed on each training fold, ranks
// are assigned per fold (1 = best), and means/standard deviations are
// aggregated. The result is sorted by mean rank ascending.
func RankFeaturesCV(ds *Dataset, k int, rng *rand.Rand) []FeatureRank {
	nf := ds.NumFeatures()
	folds := StratifiedKFold(ds.Y, k, rng)
	grs := make([][]float64, nf)   // per-feature gain ratios across folds
	ranks := make([][]float64, nf) // per-feature ranks across folds

	for _, test := range folds {
		train := ds.Subset(TrainIndices(ds.Len(), test))
		fold := make([]float64, nf)
		order := make([]int, nf)
		for f := 0; f < nf; f++ {
			fold[f] = GainRatio(train, f)
			order[f] = f
		}
		sort.SliceStable(order, func(a, b int) bool { return fold[order[a]] > fold[order[b]] })
		for pos, f := range order {
			grs[f] = append(grs[f], fold[f])
			ranks[f] = append(ranks[f], float64(pos+1))
		}
	}

	out := make([]FeatureRank, nf)
	for f := 0; f < nf; f++ {
		gm, gs := meanStd(grs[f])
		rm, rs := meanStd(ranks[f])
		out[f] = FeatureRank{Feature: f, GainRatioMean: gm, GainRatioStd: gs, RankMean: rm, RankStd: rs}
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].RankMean < out[b].RankMean })
	return out
}

func meanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		std += (x - mean) * (x - mean)
	}
	std = math.Sqrt(std / float64(len(xs)))
	return mean, std
}
