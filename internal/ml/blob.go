package ml

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"unsafe"
)

// Flat model blob: a versioned little-endian binary artifact for
// FlatForest. Unlike the JSON wire format, which costs a full parse and a
// node-stream rebuild, the blob *is* the in-memory representation: six raw
// slab sections behind a fixed header, so loading is O(header) parsing plus
// one checksum sweep, and LoadFlatBlobMapped aliases the slabs directly
// over the caller's (possibly mmap-ed) buffer without copying at all.
//
// Layout (all integers little-endian; sections 8-byte aligned, packed in
// order, no gaps — the section table is validated against this canonical
// layout, so v1 blobs are byte-reproducible from their contents):
//
//	off   0  magic "DMFB"
//	off   4  format version  uint32 (= 1)
//	off   8  crc32 (IEEE)    uint32 over bytes [16:len)
//	off  12  reserved        uint32 (= 0)
//	off  16  features        int32
//	off  20  tree count      int32
//	off  24  node count      int64
//	off  32  ForestConfig    5 × int64 (NumTrees, MaxFeatures,
//	         MinSamplesLeaf, MaxDepth, Seed)
//	off  72  section table   6 × {offset uint64, count uint64}
//	off 168  sections: treeStart int32[nTrees+1], feature int32[nNodes],
//	         right int32[nNodes], threshold float64[nNodes],
//	         p0 float64[nNodes], p1 float64[nNodes]
//
// Every blob accepted by the loaders passes the same semantic screens as
// LoadForest (feature bounds, finite thresholds, leaf probabilities in
// [0, 1], preorder tree shape, depth cap) plus canonical-payload checks
// (leaves carry -1/0/0, internals carry zero probabilities, right indices
// match the preorder structure), so a loaded blob scores
// math.Float64bits-identical to the JSON-loaded forest and re-serializes
// to byte-identical JSON and blob forms.
const (
	flatBlobMagic      = "DMFB"
	flatBlobVersion    = 1
	flatBlobHeaderSize = 168
	flatBlobSections   = 6
)

// flatBlobMaxNodes bounds node counts so slab indices (int32) cannot
// overflow; the canonical-size check against len(data) rejects absurd
// counts long before any allocation.
const flatBlobMaxNodes = math.MaxInt32 - 1

// hostLittleEndian reports whether the running machine stores integers
// little-endian — the blob's on-disk order. On such hosts slab encoding
// and decoding are single memmoves (or, for LoadFlatBlobMapped, free);
// big-endian hosts take the per-element fallback and stay correct.
var hostLittleEndian = func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// IsFlatBlob reports whether data begins with the flat-blob magic; callers
// use it to sniff model files before choosing a loader.
func IsFlatBlob(data []byte) bool {
	return len(data) >= len(flatBlobMagic) && string(data[:len(flatBlobMagic)]) == flatBlobMagic
}

// Config returns the training configuration the forest was built with.
func (ff *FlatForest) Config() ForestConfig { return ff.cfg }

// Config returns the training configuration the forest was built with.
func (f *Forest) Config() ForestConfig { return f.cfg }

// NumNodes returns the total node count across all trees.
func (f *Forest) NumNodes() int {
	n := 0
	for _, t := range f.trees {
		n += t.NodeCount()
	}
	return n
}

// blobLayout computes the canonical section offsets for a blob with the
// given tree and node counts, returning the six {offset, count} pairs in
// section-table order and the total blob size.
func blobLayout(nTrees, nNodes int64) (offs [flatBlobSections][2]uint64, total int64) {
	align8 := func(x int64) int64 { return (x + 7) &^ 7 }
	counts := [flatBlobSections]int64{nTrees + 1, nNodes, nNodes, nNodes, nNodes, nNodes}
	sizes := [flatBlobSections]int64{4, 4, 4, 8, 8, 8}
	off := int64(flatBlobHeaderSize)
	for i := 0; i < flatBlobSections; i++ {
		offs[i][0] = uint64(off)
		offs[i][1] = uint64(counts[i])
		off = align8(off + counts[i]*sizes[i])
	}
	return offs, off
}

// appendI32LE appends the int32 slab in little-endian order, padding to 8
// bytes; on little-endian hosts the body is one copy.
func appendI32LE(dst []byte, s []int32) []byte {
	if hostLittleEndian && len(s) > 0 {
		dst = append(dst, unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), 4*len(s))...)
	} else {
		for _, v := range s {
			dst = binary.LittleEndian.AppendUint32(dst, uint32(v))
		}
	}
	for len(dst)%8 != 0 {
		dst = append(dst, 0)
	}
	return dst
}

// appendF64LE appends the float64 slab bit-exactly in little-endian order.
func appendF64LE(dst []byte, s []float64) []byte {
	if hostLittleEndian && len(s) > 0 {
		return append(dst, unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), 8*len(s))...)
	}
	for _, v := range s {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

// AppendFlatBlob appends the forest's blob encoding to dst and returns it.
func (ff *FlatForest) AppendFlatBlob(dst []byte) []byte {
	nTrees := int64(ff.NumTrees())
	nNodes := int64(ff.NumNodes())
	offs, total := blobLayout(nTrees, nNodes)

	start := len(dst)
	if cap(dst)-start < int(total) {
		grown := make([]byte, start, start+int(total))
		copy(grown, dst)
		dst = grown
	}
	dst = append(dst, flatBlobMagic...)
	dst = binary.LittleEndian.AppendUint32(dst, flatBlobVersion)
	dst = binary.LittleEndian.AppendUint32(dst, 0) // crc32, patched below
	dst = binary.LittleEndian.AppendUint32(dst, 0) // reserved
	dst = binary.LittleEndian.AppendUint32(dst, uint32(int32(ff.nf)))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(int32(nTrees)))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(nNodes))
	for _, v := range [5]int64{
		int64(ff.cfg.NumTrees), int64(ff.cfg.MaxFeatures),
		int64(ff.cfg.MinSamplesLeaf), int64(ff.cfg.MaxDepth), ff.cfg.Seed,
	} {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(v))
	}
	for _, s := range offs {
		dst = binary.LittleEndian.AppendUint64(dst, s[0])
		dst = binary.LittleEndian.AppendUint64(dst, s[1])
	}
	dst = appendI32LE(dst, ff.treeStart)
	dst = appendI32LE(dst, ff.feature)
	dst = appendI32LE(dst, ff.right)
	dst = appendF64LE(dst, ff.threshold)
	dst = appendF64LE(dst, ff.p0)
	dst = appendF64LE(dst, ff.p1)
	if int64(len(dst)-start) != total {
		panic("ml: flat blob encoder produced a non-canonical layout")
	}
	crc := crc32.ChecksumIEEE(dst[start+16:])
	binary.LittleEndian.PutUint32(dst[start+8:], crc)
	return dst
}

// BlobCRC returns the CRC-32 (IEEE) of the forest's canonical flat-blob
// encoding — the same checksum a DMFB artifact stores at offset 8. Because
// the v1 layout is byte-reproducible from the forest's contents, the value
// is a stable identity for the trained model: equal across JSON, blob, and
// in-memory forms, different for any forest that scores differently.
func (ff *FlatForest) BlobCRC() uint32 {
	return crc32.ChecksumIEEE(ff.AppendFlatBlob(nil)[16:])
}

// SaveFlatBlob writes the forest's binary blob artifact to w.
func (ff *FlatForest) SaveFlatBlob(w io.Writer) error {
	if _, err := w.Write(ff.AppendFlatBlob(nil)); err != nil {
		return fmt.Errorf("ml: save flat blob: %w", err)
	}
	return nil
}

// i32Section returns section i of data as an []int32, aliasing the buffer
// when the host representation permits and copying otherwise.
func i32Section(data []byte, off, count uint64, alias bool) []int32 {
	raw := data[off : off+4*count]
	if count == 0 {
		return []int32{}
	}
	if alias && hostLittleEndian && uintptr(unsafe.Pointer(&raw[0]))%4 == 0 {
		return unsafe.Slice((*int32)(unsafe.Pointer(&raw[0])), count)
	}
	out := make([]int32, count)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(raw[4*i:]))
	}
	return out
}

// f64Section returns section i of data as a []float64, aliasing when
// possible (see i32Section) and copying bit-exactly otherwise.
func f64Section(data []byte, off, count uint64, alias bool) []float64 {
	raw := data[off : off+8*count]
	if count == 0 {
		return []float64{}
	}
	if alias && hostLittleEndian && uintptr(unsafe.Pointer(&raw[0]))%8 == 0 {
		return unsafe.Slice((*float64)(unsafe.Pointer(&raw[0])), count)
	}
	out := make([]float64, count)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
	}
	return out
}

// LoadFlatBlob reads a blob from r and returns the decoded forest. The
// slabs alias the private read buffer, so the load is zero-parse: O(header)
// decoding plus the checksum sweep.
func LoadFlatBlob(r io.Reader) (*FlatForest, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("ml: load flat blob: %w", err)
	}
	return parseFlatBlob(data, true)
}

// LoadFlatBlobMapped decodes a blob directly over data — typically an
// mmap-ed model file — without copying the slabs: the returned forest
// aliases data, which must stay live and unmodified for the forest's
// lifetime. On hosts whose memory representation does not match the wire
// format (big-endian, misaligned buffer) the slabs are copied instead;
// scoring is identical either way.
func LoadFlatBlobMapped(data []byte) (*FlatForest, error) {
	return parseFlatBlob(data, true)
}

// parseFlatBlob validates the header, checksum, canonical layout, and
// node-stream semantics, then materializes the forest (aliasing data when
// alias is set and the host representation allows).
func parseFlatBlob(data []byte, alias bool) (*FlatForest, error) {
	if len(data) < flatBlobHeaderSize {
		return nil, fmt.Errorf("ml: flat blob truncated: %d bytes, header is %d", len(data), flatBlobHeaderSize)
	}
	if !IsFlatBlob(data) {
		return nil, fmt.Errorf("ml: bad flat blob magic %q", data[:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != flatBlobVersion {
		return nil, fmt.Errorf("ml: unsupported flat blob version %d", v)
	}
	wantCRC := binary.LittleEndian.Uint32(data[8:])
	if got := crc32.ChecksumIEEE(data[16:]); got != wantCRC {
		return nil, fmt.Errorf("ml: flat blob checksum mismatch: file says %#x, contents hash to %#x", wantCRC, got)
	}
	if rsv := binary.LittleEndian.Uint32(data[12:]); rsv != 0 {
		return nil, fmt.Errorf("ml: flat blob reserved field is %#x, want 0", rsv)
	}
	features := int32(binary.LittleEndian.Uint32(data[16:]))
	nTrees := int64(int32(binary.LittleEndian.Uint32(data[20:])))
	nNodes := int64(binary.LittleEndian.Uint64(data[24:]))
	if features < 0 {
		return nil, fmt.Errorf("ml: negative feature count %d", features)
	}
	if nTrees <= 0 {
		return nil, fmt.Errorf("ml: forest file has no trees")
	}
	if nNodes < nTrees || nNodes > flatBlobMaxNodes {
		return nil, fmt.Errorf("ml: implausible node count %d for %d trees", nNodes, nTrees)
	}
	var cfgRaw [5]int64
	for i := range cfgRaw {
		cfgRaw[i] = int64(binary.LittleEndian.Uint64(data[32+8*i:]))
	}
	wantOffs, total := blobLayout(nTrees, nNodes)
	if int64(len(data)) != total {
		return nil, fmt.Errorf("ml: flat blob is %d bytes, canonical layout needs %d", len(data), total)
	}
	sizes := [flatBlobSections]uint64{4, 4, 4, 8, 8, 8}
	for i := 0; i < flatBlobSections; i++ {
		off := binary.LittleEndian.Uint64(data[72+16*i:])
		cnt := binary.LittleEndian.Uint64(data[72+16*i+8:])
		if off != wantOffs[i][0] || cnt != wantOffs[i][1] {
			return nil, fmt.Errorf("ml: section %d at {%d,%d}, canonical layout is {%d,%d}", i, off, cnt, wantOffs[i][0], wantOffs[i][1])
		}
		// Alignment padding after the int32 sections must be zero, so an
		// accepted blob always re-encodes byte-identically.
		padEnd := int64(total)
		if i+1 < flatBlobSections {
			padEnd = int64(wantOffs[i+1][0])
		}
		for p := int64(off + cnt*sizes[i]); p < padEnd; p++ {
			if data[p] != 0 {
				return nil, fmt.Errorf("ml: non-zero padding byte at offset %d", p)
			}
		}
	}
	ff := &FlatForest{
		treeStart: i32Section(data, wantOffs[0][0], wantOffs[0][1], alias),
		feature:   i32Section(data, wantOffs[1][0], wantOffs[1][1], alias),
		right:     i32Section(data, wantOffs[2][0], wantOffs[2][1], alias),
		threshold: f64Section(data, wantOffs[3][0], wantOffs[3][1], alias),
		p0:        f64Section(data, wantOffs[4][0], wantOffs[4][1], alias),
		p1:        f64Section(data, wantOffs[5][0], wantOffs[5][1], alias),
		cfg: ForestConfig{
			NumTrees:       int(cfgRaw[0]),
			MaxFeatures:    int(cfgRaw[1]),
			MinSamplesLeaf: int(cfgRaw[2]),
			MaxDepth:       int(cfgRaw[3]),
			Seed:           cfgRaw[4],
		},
		nf: int(features),
	}
	if err := ff.validateSlabs(); err != nil {
		return nil, err
	}
	return ff, nil
}

// validateSlabs runs the LoadForest semantic screens over the decoded
// slabs: every tree must be a canonical preorder node stream with in-range
// features, finite thresholds, leaf probabilities in [0, 1], depth under
// maxModelDepth, and right-child indices exactly matching the preorder
// structure. Canonical zero payloads (leaf threshold/right, internal
// probabilities) are enforced too, which is what makes blob→JSON→blob
// round trips byte-identical.
func (ff *FlatForest) validateSlabs() error {
	nt := ff.NumTrees()
	nn := int32(len(ff.feature))
	if ff.treeStart[0] != 0 || ff.treeStart[nt] != nn {
		return fmt.Errorf("ml: tree index spans [%d, %d), want [0, %d)", ff.treeStart[0], ff.treeStart[nt], nn)
	}
	for t := 0; t < nt; t++ {
		if ff.treeStart[t] >= ff.treeStart[t+1] {
			return fmt.Errorf("ml: tree %d: empty or non-monotone node range [%d, %d)", t, ff.treeStart[t], ff.treeStart[t+1])
		}
		if err := ff.validateTreeSlab(ff.treeStart[t], ff.treeStart[t+1]); err != nil {
			return fmt.Errorf("ml: tree %d: %w", t, err)
		}
	}
	return nil
}

// validateTreeSlab checks one tree's nodes [base, end) with the same
// explicit stack walk as appendTree, verifying instead of patching the
// right-child indices.
func (ff *FlatForest) validateTreeSlab(base, end int32) error {
	type frame struct {
		idx     int32
		inRight bool
	}
	var stack []frame
	for i := base; i < end; i++ {
		var nw nodeWire
		leaf := ff.feature[i] < 0
		if leaf {
			if ff.feature[i] != -1 {
				return fmt.Errorf("node %d: non-canonical leaf marker %d", i-base, ff.feature[i])
			}
			if math.Float64bits(ff.threshold[i]) != 0 || ff.right[i] != 0 {
				return fmt.Errorf("node %d: leaf carries non-zero threshold/right payload", i-base)
			}
			nw = nodeWire{Leaf: true, P0: ff.p0[i], P1: ff.p1[i]}
		} else {
			if math.Float64bits(ff.p0[i]) != 0 || math.Float64bits(ff.p1[i]) != 0 {
				return fmt.Errorf("node %d: internal node carries non-zero probabilities", i-base)
			}
			nw = nodeWire{Feature: int(ff.feature[i]), Threshold: ff.threshold[i]}
		}
		if err := validateNode(nw, ff.nf, len(stack)); err != nil {
			return fmt.Errorf("node %d: %w", i-base, err)
		}
		if !leaf {
			stack = append(stack, frame{idx: i})
			continue
		}
		for {
			if len(stack) == 0 {
				if i != end-1 {
					return fmt.Errorf("%d trailing nodes", end-1-i)
				}
				return nil
			}
			top := &stack[len(stack)-1]
			if !top.inRight {
				top.inRight = true
				if ff.right[top.idx] != i+1 {
					return fmt.Errorf("node %d: right child %d does not match preorder position %d", top.idx-base, ff.right[top.idx], i+1)
				}
				break
			}
			stack = stack[:len(stack)-1]
		}
	}
	return fmt.Errorf("truncated node stream at %d", end-base)
}
