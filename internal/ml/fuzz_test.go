package ml

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
)

// FuzzLoadForest throws arbitrary bytes at both loaders. The invariants:
// neither loader may panic; both must agree on accepting or rejecting the
// input; and any model that loads must score without panicking, with
// bit-identical results from the pointer and flat representations — i.e.
// load-time validation is strong enough that nothing semantically broken
// reaches the serve path.
func FuzzLoadForest(f *testing.F) {
	rng := rand.New(rand.NewSource(12))
	ds := gaussDataset(80, 5, 2, 1.5, rng)
	trained, err := TrainForest(ds, ForestConfig{NumTrees: 3, Seed: 6})
	if err != nil {
		f.Fatal(err)
	}
	var valid bytes.Buffer
	if err := trained.Save(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte(`{"version":1,"features":2,"trees":[{"nodes":[{"leaf":true,"p1":1}]}]}`))
	f.Add([]byte(`{"version":1,"features":2,"trees":[{"nodes":[{"f":9,"t":1},{"leaf":true},{"leaf":true}]}]}`))
	f.Add([]byte(`{"version":1,"trees":[{"nodes":[{"f":0,"t":1}]}]}`))
	f.Add([]byte(`{"version":1,"features":1,"trees":[{"nodes":[{"leaf":true,"p0":2,"p1":-1}]}]}`))
	f.Add([]byte(strings.Repeat(`{"f":0,"t":0.5},`, 64)))

	f.Fuzz(func(t *testing.T, data []byte) {
		ptr, perr := LoadForest(bytes.NewReader(data))
		flat, ferr := LoadFlatForest(bytes.NewReader(data))
		if (perr == nil) != (ferr == nil) {
			t.Fatalf("loaders disagree: pointer err %v, flat err %v", perr, ferr)
		}
		if perr != nil {
			return
		}
		// Any accepted model must serve: probe with the declared
		// dimensionality, or (legacy files with no feature count) the
		// widest feature index any node references.
		dim := flat.NumFeatures()
		if dim == 0 {
			for _, fi := range flat.feature {
				if int(fi)+1 > dim {
					dim = int(fi) + 1
				}
			}
			if dim == 0 {
				dim = 1
			}
		}
		x := make([]float64, dim)
		for i := range x {
			x[i] = float64(i%7) - 3
		}
		ps := ptr.Score(x)
		fs := flat.Score(x)
		if math.Float64bits(ps) != math.Float64bits(fs) {
			t.Fatalf("loaded representations score differently: %v vs %v", ps, fs)
		}
		if math.IsNaN(ps) || ps < 0 || ps > 1 {
			t.Fatalf("validated model scored %v, outside [0, 1]", ps)
		}
	})
}
