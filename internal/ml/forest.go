package ml

import (
	"fmt"
	"math"
	"math/rand"
)

// ForestConfig parameterizes the ensemble per Section V-A: N_t trees, each
// trained on a bootstrap sample with N_f candidate features per split.
type ForestConfig struct {
	// NumTrees is N_t. The paper's best classifier uses 20.
	NumTrees int
	// MaxFeatures is N_f; 0 selects the paper's log2(NumFeatures)+1.
	MaxFeatures int
	// MinSamplesLeaf passes through to the trees.
	MinSamplesLeaf int
	// MaxDepth passes through to the trees (0 = unbounded).
	MaxDepth int
	// Seed makes training deterministic.
	Seed int64
}

// DefaultForestConfig is the paper's best configuration: N_t = 20 and
// N_f = log2(F) + 1.
func DefaultForestConfig() ForestConfig {
	return ForestConfig{NumTrees: 20, Seed: 1}
}

// Forest is an Ensemble Random Forest. Its Predict combines trees by
// averaging their probabilistic predictions — the variance-reducing choice
// the paper makes over majority voting.
type Forest struct {
	trees []*Tree
	cfg   ForestConfig
	nf    int // feature dimensionality the forest was trained on
}

// LogMaxFeatures is the paper's N_f rule: log2(numFeatures) + 1.
func LogMaxFeatures(numFeatures int) int {
	if numFeatures <= 1 {
		return 1
	}
	return int(math.Log2(float64(numFeatures))) + 1
}

// TrainForest trains the ensemble on ds.
func TrainForest(ds *Dataset, cfg ForestConfig) (*Forest, error) {
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	if cfg.NumTrees <= 0 {
		return nil, fmt.Errorf("ml: NumTrees must be positive, got %d", cfg.NumTrees)
	}
	maxF := cfg.MaxFeatures
	if maxF <= 0 {
		maxF = LogMaxFeatures(ds.NumFeatures())
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	f := &Forest{cfg: cfg, trees: make([]*Tree, cfg.NumTrees), nf: ds.NumFeatures()}
	treeCfg := TreeConfig{
		MaxFeatures:    maxF,
		MinSamplesLeaf: cfg.MinSamplesLeaf,
		MaxDepth:       cfg.MaxDepth,
	}
	for i := range f.trees {
		sample := ds.Subset(bootstrap(ds.Len(), rng))
		f.trees[i] = TrainTree(sample, treeCfg, rng)
	}
	return f, nil
}

// NumTrees returns the ensemble size.
func (f *Forest) NumTrees() int { return len(f.trees) }

// NumFeatures returns the feature dimensionality the forest was trained
// on (0 for forests loaded from files written before versioned metadata).
func (f *Forest) NumFeatures() int { return f.nf }

// checkDim guards tree traversal against mis-dimensioned vectors: a short
// vector would otherwise die as a bare index-out-of-range deep inside
// PredictProba. The named panic lets the detector's quarantine ladder
// catch and attribute the fault. Forests loaded from files written before
// versioned metadata have nf == 0 and stay unguarded.
func (f *Forest) checkDim(x []float64) {
	if f.nf > 0 && len(x) != f.nf {
		panic(fmt.Sprintf("ml: Forest.Score: feature vector has %d features, forest was trained on %d", len(x), f.nf))
	}
}

// Score returns the averaged probability that x is an infection: the mean
// of P(infection) over all trees.
func (f *Forest) Score(x []float64) float64 {
	f.checkDim(x)
	sum := 0.0
	for _, t := range f.trees {
		sum += t.PredictProba(x)[LabelInfection]
	}
	return sum / float64(len(f.trees))
}

// ScoreWithVotes returns the ensemble score together with the per-tree
// vote tally: how many of the ensemble's trees put the infection class
// above 0.5 for x. The score accumulates in exactly the same order as
// Score, so the two are bit-identical — the detector's alert journal
// relies on that to record the precise decision value.
func (f *Forest) ScoreWithVotes(x []float64) (score float64, votes, trees int) {
	f.checkDim(x)
	sum := 0.0
	for _, t := range f.trees {
		p := t.PredictProba(x)[LabelInfection]
		sum += p
		if p > 0.5 {
			votes++
		}
	}
	return sum / float64(len(f.trees)), votes, len(f.trees)
}

// Predict classifies x by probability averaging with a 0.5 threshold.
func (f *Forest) Predict(x []float64) int {
	if f.Score(x) > 0.5 {
		return LabelInfection
	}
	return LabelBenign
}

// PredictVote classifies x by per-tree majority vote — the standard random
// forest rule the paper's ERF deliberately replaces. Kept for the voting
// ablation experiment.
func (f *Forest) PredictVote(x []float64) int {
	f.checkDim(x)
	votes := 0
	for _, t := range f.trees {
		if t.Predict(x) == LabelInfection {
			votes++
		}
	}
	if 2*votes > len(f.trees) {
		return LabelInfection
	}
	return LabelBenign
}
