package ml

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math"
	"math/rand"
	"strings"
	"testing"
	"unsafe"
)

// blobFixture trains a forest, flattens it, and returns the flat form with
// its blob encoding.
func blobFixture(tb testing.TB) (*FlatForest, []byte) {
	tb.Helper()
	rng := rand.New(rand.NewSource(91))
	ds := gaussDataset(200, 6, 3, 1.5, rng)
	f, err := TrainForest(ds, ForestConfig{NumTrees: 7, Seed: 13})
	if err != nil {
		tb.Fatal(err)
	}
	ff := f.Flatten()
	return ff, ff.AppendFlatBlob(nil)
}

func refixBlobCRC(b []byte) []byte {
	binary.LittleEndian.PutUint32(b[8:], crc32.ChecksumIEEE(b[16:]))
	return b
}

// TestFlatBlobRoundTrip pins the full artifact cycle: JSON → flat → blob →
// flat is score-bit-identical, the blob-loaded forest re-saves to
// byte-identical JSON and byte-identical blob, and the config survives.
func TestFlatBlobRoundTrip(t *testing.T) {
	ff, blob := blobFixture(t)

	loaded, err := LoadFlatBlob(bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	mapped, err := LoadFlatBlobMapped(blob)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumTrees() != ff.NumTrees() || loaded.NumNodes() != ff.NumNodes() || loaded.NumFeatures() != ff.NumFeatures() {
		t.Fatalf("shape mismatch: %d/%d/%d vs %d/%d/%d",
			loaded.NumTrees(), loaded.NumNodes(), loaded.NumFeatures(),
			ff.NumTrees(), ff.NumNodes(), ff.NumFeatures())
	}
	if loaded.Config() != ff.Config() {
		t.Fatalf("config mismatch: %+v vs %+v", loaded.Config(), ff.Config())
	}
	for i, x := range probeVectors(200, ff.NumFeatures(), rand.New(rand.NewSource(5))) {
		want := ff.Score(x)
		for name, g := range map[string]*FlatForest{"loaded": loaded, "mapped": mapped} {
			if got := g.Score(x); math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("probe %d: %s scores %v, original %v", i, name, got, want)
			}
		}
		s1, v1, n1 := ff.ScoreWithVotes(x)
		s2, v2, n2 := loaded.ScoreWithVotes(x)
		if math.Float64bits(s1) != math.Float64bits(s2) || v1 != v2 || n1 != n2 {
			t.Fatalf("probe %d: vote tally diverged", i)
		}
	}

	var jsonA, jsonB bytes.Buffer
	if err := ff.Save(&jsonA); err != nil {
		t.Fatal(err)
	}
	if err := loaded.Save(&jsonB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(jsonA.Bytes(), jsonB.Bytes()) {
		t.Fatal("blob round trip changed the JSON serialization")
	}
	if reblob := loaded.AppendFlatBlob(nil); !bytes.Equal(reblob, blob) {
		t.Fatal("blob round trip is not byte-identical")
	}
	if !IsFlatBlob(blob) || IsFlatBlob(jsonA.Bytes()) {
		t.Fatal("IsFlatBlob misclassifies an artifact")
	}
}

// TestFlatBlobMappedAliasesBuffer proves the mapped loader is zero-copy on
// little-endian hosts: the forest's slabs point into the caller's buffer.
func TestFlatBlobMappedAliasesBuffer(t *testing.T) {
	if !hostLittleEndian {
		t.Skip("aliasing requires a little-endian host")
	}
	ff, blob := blobFixture(t)
	mapped, err := LoadFlatBlobMapped(blob)
	if err != nil {
		t.Fatal(err)
	}
	offs, _ := blobLayout(int64(ff.NumTrees()), int64(ff.NumNodes()))
	if unsafe.Pointer(&mapped.treeStart[0]) != unsafe.Pointer(&blob[offs[0][0]]) {
		t.Fatal("treeStart slab does not alias the buffer")
	}
	if unsafe.Pointer(&mapped.threshold[0]) != unsafe.Pointer(&blob[offs[3][0]]) {
		t.Fatal("threshold slab does not alias the buffer")
	}
	// LoadFlatBlob must NOT share the caller's bytes beyond its private copy:
	// it reads from r, so mutating blob afterwards cannot affect it.
	reader, err := LoadFlatBlob(bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	probe := probeVectors(1, ff.NumFeatures(), rand.New(rand.NewSource(3)))[0]
	before := reader.Score(probe)
	blob[int(offs[3][0])] ^= 0xFF
	after := reader.Score(probe)
	if math.Float64bits(before) != math.Float64bits(after) {
		t.Fatal("LoadFlatBlob forest aliases the caller's mutable buffer")
	}
}

// TestLoadFlatBlobRejections drives every load-time screen with targeted
// corruptions of a valid blob. Semantic corruptions re-fix the checksum so
// the failure exercises the validator, not CRC.
func TestLoadFlatBlobRejections(t *testing.T) {
	ff, blob := blobFixture(t)
	offs, _ := blobLayout(int64(ff.NumTrees()), int64(ff.NumNodes()))
	internal, leaf := -1, -1
	for i, f := range ff.feature {
		if f >= 0 && internal < 0 {
			internal = i
		}
		if f < 0 && leaf < 0 {
			leaf = i
		}
	}
	if internal < 0 || leaf < 0 {
		t.Fatal("fixture forest lacks an internal node or a leaf")
	}
	featAt := func(i int) int { return int(offs[1][0]) + 4*i }
	rightAt := func(i int) int { return int(offs[2][0]) + 4*i }
	thrAt := func(i int) int { return int(offs[3][0]) + 8*i }
	p1At := func(i int) int { return int(offs[5][0]) + 8*i }

	cases := map[string]func(b []byte) []byte{
		"truncated header":  func(b []byte) []byte { return b[:flatBlobHeaderSize-1] },
		"truncated body":    func(b []byte) []byte { return b[:len(b)-5] },
		"trailing garbage":  func(b []byte) []byte { return append(b, 0xAB) },
		"bad magic":         func(b []byte) []byte { b[0] = 'X'; return b },
		"bad version":       func(b []byte) []byte { binary.LittleEndian.PutUint32(b[4:], 2); return b },
		"bad checksum":      func(b []byte) []byte { b[8] ^= 0xFF; return b },
		"nonzero reserved":  func(b []byte) []byte { binary.LittleEndian.PutUint32(b[12:], 1); return b },
		"flipped body byte": func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b },
		"negative features": func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[16:], ^uint32(0))
			return refixBlobCRC(b)
		},
		"zero trees": func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[20:], 0)
			return refixBlobCRC(b)
		},
		"absurd node count": func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[24:], 1<<40)
			return refixBlobCRC(b)
		},
		"shifted section offset": func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[72:], binary.LittleEndian.Uint64(b[72:])+8)
			return refixBlobCRC(b)
		},
		"feature out of range": func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[featAt(internal):], uint32(int32(ff.nf+5)))
			return refixBlobCRC(b)
		},
		"NaN threshold": func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[thrAt(internal):], math.Float64bits(math.NaN()))
			return refixBlobCRC(b)
		},
		"leaf probability above 1": func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[p1At(leaf):], math.Float64bits(1.5))
			return refixBlobCRC(b)
		},
		"dangling right index": func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[rightAt(internal):], binary.LittleEndian.Uint32(b[rightAt(internal):])+1)
			return refixBlobCRC(b)
		},
		"non-canonical leaf payload": func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[thrAt(leaf):], math.Float64bits(0.25))
			return refixBlobCRC(b)
		},
		"non-canonical leaf marker": func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[featAt(leaf):], ^uint32(1)) // -2
			return refixBlobCRC(b)
		},
		"internal node with probabilities": func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[int(offs[4][0])+8*internal:], math.Float64bits(0.5))
			return refixBlobCRC(b)
		},
	}
	for name, corrupt := range cases {
		mutated := corrupt(append([]byte(nil), blob...))
		_, rerr := LoadFlatBlob(bytes.NewReader(mutated))
		_, merr := LoadFlatBlobMapped(mutated)
		if rerr == nil || merr == nil {
			t.Errorf("%s: loaded without error (reader %v, mapped %v)", name, rerr, merr)
		}
	}
	// Control: the untouched blob still loads.
	if _, err := LoadFlatBlob(bytes.NewReader(blob)); err != nil {
		t.Fatalf("valid blob rejected: %v", err)
	}
}

// combChainForest hand-builds a left-linear chain of the given depth in
// slab form — the shape the JSON depth test uses, but constructed directly
// because the JSON loaders reject it before a blob could be written.
func combChainForest(depth int) *FlatForest {
	n := 2*depth + 1
	ff := &FlatForest{
		feature:   make([]int32, n),
		threshold: make([]float64, n),
		right:     make([]int32, n),
		p0:        make([]float64, n),
		p1:        make([]float64, n),
		treeStart: []int32{0, int32(n)},
		cfg:       ForestConfig{NumTrees: 1},
		nf:        1,
	}
	for i := 0; i < depth; i++ {
		ff.feature[i] = 0
		ff.threshold[i] = 0.5
		ff.right[i] = int32(2*depth - i)
	}
	for i := depth; i < n; i++ {
		ff.feature[i] = -1
		if i == depth {
			ff.p1[i] = 1
		} else {
			ff.p0[i] = 1
		}
	}
	return ff
}

// TestLoadFlatBlobDepthBound pins that the blob loader enforces the same
// depth cap as the JSON loaders, against an adversarial blob no JSON
// document could produce.
func TestLoadFlatBlobDepthBound(t *testing.T) {
	deep := combChainForest(maxModelDepth + 10).AppendFlatBlob(nil)
	if _, err := LoadFlatBlob(bytes.NewReader(deep)); err == nil {
		t.Fatal("over-deep blob loaded without error")
	} else if !strings.Contains(err.Error(), "depth") {
		t.Fatalf("depth violation error does not mention depth: %v", err)
	}
	ok := combChainForest(64).AppendFlatBlob(nil)
	if _, err := LoadFlatBlob(bytes.NewReader(ok)); err != nil {
		t.Fatalf("reasonable depth rejected: %v", err)
	}
}

// FuzzLoadFlatBlob throws arbitrary bytes at the blob loaders. Invariants:
// no panic; the reader and mapped forms agree on accept/reject; any
// accepted blob re-encodes byte-identically, re-saves as JSON that the
// strict JSON loaders accept, and all four resulting representations score
// bit-identically.
func FuzzLoadFlatBlob(f *testing.F) {
	ff, blob := blobFixture(f)
	offs, _ := blobLayout(int64(ff.NumTrees()), int64(ff.NumNodes()))
	f.Add(append([]byte(nil), blob...))
	f.Add(combChainForest(8).AppendFlatBlob(nil))
	f.Add(blob[:flatBlobHeaderSize])
	f.Add([]byte(flatBlobMagic))
	// Semantically corrupt seeds with valid checksums, so mutation starts
	// past the CRC screen.
	badFeat := append([]byte(nil), blob...)
	binary.LittleEndian.PutUint32(badFeat[offs[1][0]:], 99)
	f.Add(refixBlobCRC(badFeat))
	badThr := append([]byte(nil), blob...)
	binary.LittleEndian.PutUint64(badThr[offs[3][0]:], math.Float64bits(math.Inf(1)))
	f.Add(refixBlobCRC(badThr))

	f.Fuzz(func(t *testing.T, data []byte) {
		fromReader, rerr := LoadFlatBlob(bytes.NewReader(data))
		mapped, merr := LoadFlatBlobMapped(append([]byte(nil), data...))
		if (rerr == nil) != (merr == nil) {
			t.Fatalf("blob loaders disagree: reader err %v, mapped err %v", rerr, merr)
		}
		if rerr != nil {
			return
		}
		if reblob := fromReader.AppendFlatBlob(nil); !bytes.Equal(reblob, data) {
			t.Fatal("accepted blob does not re-encode byte-identically")
		}
		var asJSON bytes.Buffer
		if err := fromReader.Save(&asJSON); err != nil {
			t.Fatalf("accepted blob does not re-save as JSON: %v", err)
		}
		ptr, err := LoadForest(bytes.NewReader(asJSON.Bytes()))
		if err != nil {
			t.Fatalf("JSON loader rejects a blob-validated model: %v", err)
		}
		dim := fromReader.NumFeatures()
		if dim == 0 {
			for _, fi := range fromReader.feature {
				if int(fi)+1 > dim {
					dim = int(fi) + 1
				}
			}
			if dim == 0 {
				dim = 1
			}
		}
		x := make([]float64, dim)
		for i := range x {
			x[i] = float64(i%7) - 3
		}
		rs, ms, ps := fromReader.Score(x), mapped.Score(x), ptr.Score(x)
		if math.Float64bits(rs) != math.Float64bits(ms) || math.Float64bits(rs) != math.Float64bits(ps) {
			t.Fatalf("representations score differently: %v / %v / %v", rs, ms, ps)
		}
		if math.IsNaN(rs) || rs < 0 || rs > 1 {
			t.Fatalf("validated model scored %v, outside [0, 1]", rs)
		}
	})
}
