package ml

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// gaussDataset builds a two-class dataset: class means separated by sep on
// the first dim features; remaining dims are pure noise.
func gaussDataset(n, dim, dimInformative int, sep float64, rng *rand.Rand) *Dataset {
	ds := &Dataset{}
	for i := 0; i < n; i++ {
		label := i % 2
		row := make([]float64, dim)
		for j := 0; j < dim; j++ {
			row[j] = rng.NormFloat64()
			if j < dimInformative && label == LabelInfection {
				row[j] += sep
			}
		}
		ds.X = append(ds.X, row)
		ds.Y = append(ds.Y, label)
	}
	return ds
}

func TestDatasetValidate(t *testing.T) {
	good := &Dataset{X: [][]float64{{1, 2}, {3, 4}}, Y: []int{0, 1}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*Dataset{
		{X: [][]float64{{1}}, Y: []int{0, 1}}, // length mismatch
		{},                                    // empty
		{X: [][]float64{{1, 2}, {3}}, Y: []int{0, 0}}, // ragged
		{X: [][]float64{{1}}, Y: []int{7}},            // bad label
	}
	for i, ds := range bad {
		if err := ds.Validate(); err == nil {
			t.Errorf("bad dataset %d validated", i)
		}
	}
}

func TestSubsetAndSelectFeatures(t *testing.T) {
	ds := &Dataset{X: [][]float64{{1, 10}, {2, 20}, {3, 30}}, Y: []int{0, 1, 0}}
	sub := ds.Subset([]int{2, 0})
	if sub.Len() != 2 || sub.X[0][0] != 3 || sub.Y[1] != 0 {
		t.Fatalf("subset wrong: %+v", sub)
	}
	sel := ds.SelectFeatures([]int{1})
	if sel.NumFeatures() != 1 || sel.X[1][0] != 20 {
		t.Fatalf("select wrong: %+v", sel)
	}
	// Selecting must copy: mutating the selection must not touch ds.
	sel.X[0][0] = -1
	if ds.X[0][1] == -1 {
		t.Fatal("SelectFeatures aliases the source")
	}
}

func TestStratifiedKFold(t *testing.T) {
	y := make([]int, 100)
	for i := 60; i < 100; i++ {
		y[i] = 1
	}
	rng := rand.New(rand.NewSource(5))
	folds := StratifiedKFold(y, 10, rng)
	if len(folds) != 10 {
		t.Fatalf("folds = %d", len(folds))
	}
	seen := make(map[int]int)
	for _, fold := range folds {
		pos := 0
		for _, i := range fold {
			seen[i]++
			if y[i] == 1 {
				pos++
			}
		}
		if len(fold) != 10 || pos != 4 {
			t.Fatalf("fold size=%d positives=%d, want 10/4", len(fold), pos)
		}
	}
	if len(seen) != 100 {
		t.Fatalf("folds cover %d samples, want 100", len(seen))
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("sample %d appears %d times", i, c)
		}
	}
	train := TrainIndices(100, folds[0])
	if len(train) != 90 {
		t.Fatalf("train size = %d", len(train))
	}
}

func TestTreeSeparableData(t *testing.T) {
	ds := &Dataset{
		X: [][]float64{{0}, {0.1}, {0.2}, {0.9}, {1.0}, {1.1}},
		Y: []int{0, 0, 0, 1, 1, 1},
	}
	tree := TrainTree(ds, TreeConfig{}, nil)
	for i, x := range ds.X {
		if tree.Predict(x) != ds.Y[i] {
			t.Fatalf("misclassified training sample %d", i)
		}
	}
	if tree.Depth() != 1 {
		t.Fatalf("depth = %d, want 1 for a single split", tree.Depth())
	}
	if tree.NodeCount() != 3 {
		t.Fatalf("nodes = %d, want 3", tree.NodeCount())
	}
	p := tree.PredictProba([]float64{0})
	if p[LabelBenign] != 1 || p[LabelInfection] != 0 {
		t.Fatalf("probs = %v", p)
	}
}

func TestTreePureLeaf(t *testing.T) {
	ds := &Dataset{X: [][]float64{{1}, {2}, {3}}, Y: []int{1, 1, 1}}
	tree := TrainTree(ds, TreeConfig{}, nil)
	if tree.Depth() != 0 {
		t.Fatal("pure dataset must produce a single leaf")
	}
	if tree.Predict([]float64{99}) != 1 {
		t.Fatal("pure leaf prediction wrong")
	}
}

func TestTreeMaxDepth(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ds := gaussDataset(200, 4, 2, 1.5, rng)
	tree := TrainTree(ds, TreeConfig{MaxDepth: 2}, nil)
	if tree.Depth() > 2 {
		t.Fatalf("depth = %d exceeds MaxDepth 2", tree.Depth())
	}
}

func TestTreeMinSamplesLeaf(t *testing.T) {
	ds := &Dataset{
		X: [][]float64{{0}, {1}, {2}, {3}},
		Y: []int{0, 0, 1, 1},
	}
	tree := TrainTree(ds, TreeConfig{MinSamplesLeaf: 3}, nil)
	// A split would leave a side with < 3 samples, so the root is a leaf.
	if tree.Depth() != 0 {
		t.Fatalf("depth = %d, want 0 with MinSamplesLeaf 3", tree.Depth())
	}
	p := tree.PredictProba([]float64{0})
	if math.Abs(p[0]-0.5) > 1e-9 {
		t.Fatalf("leaf probs = %v, want 0.5/0.5", p)
	}
}

func TestTreeConstantFeature(t *testing.T) {
	// All feature values equal: no split possible, never panics.
	ds := &Dataset{X: [][]float64{{5}, {5}, {5}, {5}}, Y: []int{0, 1, 0, 1}}
	tree := TrainTree(ds, TreeConfig{}, nil)
	if tree.Depth() != 0 {
		t.Fatal("constant feature must not split")
	}
}

func TestLogMaxFeatures(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 4: 3, 37: 6, 64: 7}
	for nf, want := range cases {
		if got := LogMaxFeatures(nf); got != want {
			t.Errorf("LogMaxFeatures(%d) = %d, want %d", nf, got, want)
		}
	}
}

func TestForestTrainsAndPredicts(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	train := gaussDataset(400, 8, 3, 2.0, rng)
	test := gaussDataset(200, 8, 3, 2.0, rng)
	f, err := TrainForest(train, ForestConfig{NumTrees: 20, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if f.NumTrees() != 20 {
		t.Fatalf("trees = %d", f.NumTrees())
	}
	res := Evaluate(f, test.X, test.Y)
	if res.TPR < 0.9 {
		t.Fatalf("TPR = %v, want >= 0.9 on well-separated data", res.TPR)
	}
	if res.FPR > 0.1 {
		t.Fatalf("FPR = %v, want <= 0.1", res.FPR)
	}
	if res.ROCArea < 0.95 {
		t.Fatalf("AUC = %v", res.ROCArea)
	}
}

func TestForestDeterministicWithSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ds := gaussDataset(100, 5, 2, 1.0, rng)
	f1, err := TrainForest(ds, ForestConfig{NumTrees: 5, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	f2, err := TrainForest(ds, ForestConfig{NumTrees: 5, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	probe := []float64{0.5, 0.5, 0.5, 0.5, 0.5}
	if f1.Score(probe) != f2.Score(probe) {
		t.Fatal("same seed must give identical forests")
	}
}

func TestForestErrors(t *testing.T) {
	ds := &Dataset{X: [][]float64{{1}}, Y: []int{0}}
	if _, err := TrainForest(ds, ForestConfig{NumTrees: 0}); err == nil {
		t.Fatal("NumTrees 0 must error")
	}
	if _, err := TrainForest(&Dataset{}, DefaultForestConfig()); err == nil {
		t.Fatal("empty dataset must error")
	}
}

func TestConfusionMetrics(t *testing.T) {
	var c Confusion
	// 8 infections: 7 caught; 10 benign: 1 flagged.
	for i := 0; i < 7; i++ {
		c.Add(LabelInfection, LabelInfection)
	}
	c.Add(LabelInfection, LabelBenign)
	for i := 0; i < 9; i++ {
		c.Add(LabelBenign, LabelBenign)
	}
	c.Add(LabelBenign, LabelInfection)

	if math.Abs(c.TPR()-0.875) > 1e-9 {
		t.Fatalf("TPR = %v", c.TPR())
	}
	if math.Abs(c.FPR()-0.1) > 1e-9 {
		t.Fatalf("FPR = %v", c.FPR())
	}
	if math.Abs(c.Precision()-7.0/8.0) > 1e-9 {
		t.Fatalf("precision = %v", c.Precision())
	}
	if math.Abs(c.Accuracy()-16.0/18.0) > 1e-9 {
		t.Fatalf("accuracy = %v", c.Accuracy())
	}
	want := 2 * 0.875 * 0.875 / (0.875 + 0.875)
	if math.Abs(c.FScore()-want) > 1e-9 {
		t.Fatalf("fscore = %v, want %v", c.FScore(), want)
	}
	var empty Confusion
	if empty.TPR() != 0 || empty.FScore() != 0 {
		t.Fatal("empty confusion must yield zeros")
	}
}

func TestROCPerfectAndReversed(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	y := []int{1, 1, 0, 0}
	if auc := AUC(ROC(scores, y)); math.Abs(auc-1) > 1e-9 {
		t.Fatalf("perfect AUC = %v", auc)
	}
	yRev := []int{0, 0, 1, 1}
	if auc := AUC(ROC(scores, yRev)); math.Abs(auc) > 1e-9 {
		t.Fatalf("reversed AUC = %v", auc)
	}
}

func TestROCTiedScores(t *testing.T) {
	scores := []float64{0.5, 0.5, 0.5, 0.5}
	y := []int{1, 0, 1, 0}
	curve := ROC(scores, y)
	if auc := AUC(curve); math.Abs(auc-0.5) > 1e-9 {
		t.Fatalf("tied AUC = %v, want 0.5", auc)
	}
	last := curve[len(curve)-1]
	if last.TPR != 1 || last.FPR != 1 {
		t.Fatalf("curve must end at (1,1): %+v", last)
	}
}

func TestAUCRangeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(200)
		scores := make([]float64, n)
		y := make([]int, n)
		for i := range scores {
			scores[i] = rng.Float64()
			y[i] = rng.Intn(2)
		}
		auc := AUC(ROC(scores, y))
		return auc >= -1e-9 && auc <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTreeProbsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ds := gaussDataset(300, 6, 2, 1.0, rng)
	tree := TrainTree(ds, TreeConfig{MaxFeatures: 3}, rng)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x := make([]float64, 6)
		for i := range x {
			x[i] = r.NormFloat64() * 3
		}
		p := tree.PredictProba(x)
		return math.Abs(p[0]+p[1]-1) < 1e-9 && p[0] >= 0 && p[1] >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestGainRatio(t *testing.T) {
	// Feature 0 separates classes perfectly; feature 1 is constant.
	ds := &Dataset{
		X: [][]float64{{0, 5}, {0.1, 5}, {0.9, 5}, {1.0, 5}},
		Y: []int{0, 0, 1, 1},
	}
	if gr := GainRatio(ds, 0); math.Abs(gr-1) > 1e-9 {
		t.Fatalf("perfect feature gain ratio = %v, want 1", gr)
	}
	if gr := GainRatio(ds, 1); gr != 0 {
		t.Fatalf("constant feature gain ratio = %v, want 0", gr)
	}
	// Pure labels: no information to gain.
	pure := &Dataset{X: [][]float64{{1}, {2}}, Y: []int{1, 1}}
	if gr := GainRatio(pure, 0); gr != 0 {
		t.Fatalf("pure labels gain ratio = %v", gr)
	}
}

func TestRankFeaturesCV(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	// Feature 0 strongly informative, 1 weakly, 2-4 noise.
	ds := &Dataset{}
	for i := 0; i < 300; i++ {
		label := i % 2
		row := make([]float64, 5)
		row[0] = float64(label)*3 + rng.NormFloat64()*0.3
		row[1] = float64(label) + rng.NormFloat64()
		for j := 2; j < 5; j++ {
			row[j] = rng.NormFloat64()
		}
		ds.X = append(ds.X, row)
		ds.Y = append(ds.Y, label)
	}
	ranks := RankFeaturesCV(ds, 10, rng)
	if len(ranks) != 5 {
		t.Fatalf("ranks = %d", len(ranks))
	}
	if ranks[0].Feature != 0 {
		t.Fatalf("top feature = %d, want 0 (%+v)", ranks[0].Feature, ranks[0])
	}
	if ranks[0].RankMean != 1 {
		t.Fatalf("top rank mean = %v", ranks[0].RankMean)
	}
	if ranks[0].GainRatioMean <= ranks[4].GainRatioMean {
		t.Fatal("gain ratios not ordered with ranks")
	}
}

func TestCrossValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	ds := gaussDataset(300, 6, 3, 2.0, rng)
	res, err := CrossValidate(ds, ForestConfig{NumTrees: 10, Seed: 3}, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.TPR < 0.9 || res.FPR > 0.1 {
		t.Fatalf("cv result off: TPR=%v FPR=%v", res.TPR, res.FPR)
	}
	total := res.Confusion.TP + res.Confusion.TN + res.Confusion.FP + res.Confusion.FN
	if total != 300 {
		t.Fatalf("cv predictions = %d, want 300", total)
	}
	if _, err := CrossValidate(&Dataset{}, DefaultForestConfig(), 5, rng); err == nil {
		t.Fatal("empty dataset must error")
	}
}

func TestCrossValidateVoting(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	ds := gaussDataset(200, 6, 3, 2.0, rng)
	res, err := CrossValidateVoting(ds, ForestConfig{NumTrees: 11, Seed: 3}, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.TPR < 0.85 {
		t.Fatalf("voting TPR = %v", res.TPR)
	}
	if _, err := CrossValidateVoting(&Dataset{}, DefaultForestConfig(), 5, rng); err == nil {
		t.Fatal("empty dataset must error")
	}
}

func TestMeanStd(t *testing.T) {
	m, s := meanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(m-5) > 1e-9 || math.Abs(s-2) > 1e-9 {
		t.Fatalf("meanStd = %v, %v; want 5, 2", m, s)
	}
	m, s = meanStd(nil)
	if m != 0 || s != 0 {
		t.Fatal("empty meanStd must be zeros")
	}
}
