package ml

import (
	"math/rand"
	"sort"
)

// trainTreeWithImportance grows a CART tree while accumulating each
// feature's mean-decrease-in-impurity contribution into imp (weighted Gini
// gain, normalized by the root sample count).
func trainTreeWithImportance(ds *Dataset, cfg TreeConfig, rng *rand.Rand, imp []float64) *Tree {
	cfg = cfg.withDefaults()
	t := &Tree{cfg: cfg}
	idx := make([]int, ds.Len())
	for i := range idx {
		idx[i] = i
	}
	t.root = growTracked(ds, idx, cfg, rng, 0, imp, ds.Len(), newTrainScratch(ds))
	return t
}

// growTracked grows the subtree over the sample indices idx, recording
// impurity decreases into imp when non-nil. sc is the per-training
// scratch every split borrows its buffers from.
func growTracked(ds *Dataset, idx []int, cfg TreeConfig, rng *rand.Rand, depth int, imp []float64, rootN int, sc *trainScratch) *treeNode {
	counts := classCounts(ds, idx)
	total := len(idx)
	pure := counts[0] == total || counts[1] == total
	if pure || total < 2*cfg.MinSamplesLeaf || (cfg.MaxDepth > 0 && depth >= cfg.MaxDepth) {
		return makeLeaf(counts, total)
	}
	feature, threshold, gain := bestSplit(ds, idx, counts, cfg, rng, sc)
	if feature < 0 {
		return makeLeaf(counts, total)
	}
	var left, right []int
	for _, j := range idx {
		if ds.X[j][feature] <= threshold {
			left = append(left, j)
		} else {
			right = append(right, j)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		return makeLeaf(counts, total)
	}
	if imp != nil {
		imp[feature] += gain * float64(total) / float64(rootN)
	}
	return &treeNode{
		feature:   feature,
		threshold: threshold,
		left:      growTracked(ds, left, cfg, rng, depth+1, imp, rootN, sc),
		right:     growTracked(ds, right, cfg, rng, depth+1, imp, rootN, sc),
	}
}

// bestSplit finds the Gini-optimal (feature, threshold) over a feature
// subsample; it returns feature -1 when no split improves purity. The
// candidate list and the value/label buffer come out of the training
// scratch; both are fully consumed before bestSplit returns, so the
// recursion into child splits can reuse them.
func bestSplit(ds *Dataset, idx []int, counts [numClasses]int, cfg TreeConfig, rng *rand.Rand, sc *trainScratch) (feature int, threshold, gain float64) {
	total := len(idx)
	parentGini := gini(counts, total)
	candidates := featureSample(sc, ds.NumFeatures(), cfg.MaxFeatures, rng)
	feature = -1

	if cap(sc.buf) < total {
		sc.buf = make([]valueLabel, total)
	}
	buf := sc.buf[:total]
	for _, f := range candidates {
		for i, j := range idx {
			buf[i] = valueLabel{v: ds.X[j][f], y: ds.Y[j]}
		}
		sort.Slice(buf, func(a, b int) bool { return buf[a].v < buf[b].v })
		var leftCounts [numClasses]int
		for i := 0; i+1 < total; i++ {
			leftCounts[buf[i].y]++
			if buf[i].v == buf[i+1].v {
				continue
			}
			nl, nr := i+1, total-i-1
			if nl < cfg.MinSamplesLeaf || nr < cfg.MinSamplesLeaf {
				continue
			}
			var rightCounts [numClasses]int
			rightCounts[0] = counts[0] - leftCounts[0]
			rightCounts[1] = counts[1] - leftCounts[1]
			g := parentGini -
				(float64(nl)*gini(leftCounts, nl)+float64(nr)*gini(rightCounts, nr))/float64(total)
			if g > gain {
				gain = g
				feature = f
				threshold = (buf[i].v + buf[i+1].v) / 2
			}
		}
	}
	return feature, threshold, gain
}

// FeatureImportances retrains the ensemble's structure over ds and returns
// the per-feature mean decrease in impurity, normalized to sum to 1.
// Deterministic for a fixed config and dataset.
func FeatureImportances(ds *Dataset, cfg ForestConfig) ([]float64, error) {
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	if cfg.NumTrees <= 0 {
		cfg.NumTrees = 20
	}
	maxF := cfg.MaxFeatures
	if maxF <= 0 {
		maxF = LogMaxFeatures(ds.NumFeatures())
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	imp := make([]float64, ds.NumFeatures())
	treeCfg := TreeConfig{
		MaxFeatures:    maxF,
		MinSamplesLeaf: cfg.MinSamplesLeaf,
		MaxDepth:       cfg.MaxDepth,
	}
	for i := 0; i < cfg.NumTrees; i++ {
		sample := ds.Subset(bootstrap(ds.Len(), rng))
		trainTreeWithImportance(sample, treeCfg, rng, imp)
	}
	sum := 0.0
	for _, v := range imp {
		sum += v
	}
	if sum > 0 {
		for i := range imp {
			imp[i] /= sum
		}
	}
	return imp, nil
}
