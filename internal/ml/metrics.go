package ml

import "sort"

// Confusion is a binary confusion matrix with infection as the positive
// class.
type Confusion struct {
	TP, FP, TN, FN int
}

// Add records one prediction.
func (c *Confusion) Add(actual, predicted int) {
	switch {
	case actual == LabelInfection && predicted == LabelInfection:
		c.TP++
	case actual == LabelInfection && predicted == LabelBenign:
		c.FN++
	case actual == LabelBenign && predicted == LabelInfection:
		c.FP++
	default:
		c.TN++
	}
}

// TPR is the true positive rate (recall on infections).
func (c Confusion) TPR() float64 { return ratio(c.TP, c.TP+c.FN) }

// FPR is the false positive rate (benign flagged as infection).
func (c Confusion) FPR() float64 { return ratio(c.FP, c.FP+c.TN) }

// Precision is TP / (TP + FP).
func (c Confusion) Precision() float64 { return ratio(c.TP, c.TP+c.FP) }

// Accuracy is the fraction of correct predictions.
func (c Confusion) Accuracy() float64 { return ratio(c.TP+c.TN, c.TP+c.TN+c.FP+c.FN) }

// FScore is the harmonic mean of precision and recall.
func (c Confusion) FScore() float64 {
	p, r := c.Precision(), c.TPR()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

func ratio(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// ROCPoint is one operating point on a ROC curve.
type ROCPoint struct {
	Threshold float64
	FPR, TPR  float64
}

// ROC computes the ROC curve for infection scores against true labels.
// Points run from the strictest threshold (0,0) to the loosest (1,1).
func ROC(scores []float64, y []int) []ROCPoint {
	type sy struct {
		s float64
		y int
	}
	pairs := make([]sy, len(scores))
	pos, neg := 0, 0
	for i := range scores {
		pairs[i] = sy{scores[i], y[i]}
		if y[i] == LabelInfection {
			pos++
		} else {
			neg++
		}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].s > pairs[j].s })

	curve := []ROCPoint{{Threshold: 1.01, FPR: 0, TPR: 0}}
	tp, fp := 0, 0
	for i := 0; i < len(pairs); {
		j := i
		for j < len(pairs) && pairs[j].s == pairs[i].s {
			if pairs[j].y == LabelInfection {
				tp++
			} else {
				fp++
			}
			j++
		}
		curve = append(curve, ROCPoint{
			Threshold: pairs[i].s,
			FPR:       ratio(fp, neg),
			TPR:       ratio(tp, pos),
		})
		i = j
	}
	return curve
}

// AUC computes the area under the ROC curve by the trapezoid rule.
func AUC(curve []ROCPoint) float64 {
	area := 0.0
	for i := 1; i < len(curve); i++ {
		dx := curve[i].FPR - curve[i-1].FPR
		area += dx * (curve[i].TPR + curve[i-1].TPR) / 2
	}
	return area
}

// ThresholdForFPR returns the lowest score threshold whose false positive
// rate does not exceed maxFPR, plus the TPR achieved there — the "best
// balance between true positive and false positive rates" tuning the paper
// describes. With no admissible threshold it returns 1.01 (flag nothing).
func ThresholdForFPR(scores []float64, y []int, maxFPR float64) (threshold, tpr float64) {
	curve := ROC(scores, y)
	threshold, tpr = 1.01, 0
	for _, p := range curve {
		if p.FPR <= maxFPR && p.TPR >= tpr {
			threshold, tpr = p.Threshold, p.TPR
		}
	}
	return threshold, tpr
}

// EvalResult aggregates the evaluation-metric row reported per classifier
// configuration (the columns of Table III).
type EvalResult struct {
	Confusion Confusion
	TPR       float64
	FPR       float64
	FScore    float64
	ROCArea   float64
}

// Evaluate scores X with the forest, thresholds at 0.5 for the confusion
// matrix, and computes TPR/FPR/F-score plus ROC area. Scoring runs through
// the flattened representation's tree-outer batch kernel — bit-identical
// to the pointer walk by the FlatForest contract, at roughly half the
// per-sample cost.
func Evaluate(f *Forest, X [][]float64, y []int) EvalResult {
	scores := f.Flatten().ScoreBatchParallel(X, 0)
	var c Confusion
	for i, s := range scores {
		pred := LabelBenign
		if s > 0.5 {
			pred = LabelInfection
		}
		c.Add(y[i], pred)
	}
	return EvalResult{
		Confusion: c,
		TPR:       c.TPR(),
		FPR:       c.FPR(),
		FScore:    c.FScore(),
		ROCArea:   AUC(ROC(scores, y)),
	}
}
