package ml

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestFeatureImportances(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	// Feature 0 informative, 1-3 noise.
	ds := &Dataset{}
	for i := 0; i < 400; i++ {
		label := i % 2
		row := []float64{float64(label)*2 + rng.NormFloat64()*0.4, rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		ds.X = append(ds.X, row)
		ds.Y = append(ds.Y, label)
	}
	imp, err := FeatureImportances(ds, ForestConfig{NumTrees: 15, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(imp) != 4 {
		t.Fatalf("importances = %d", len(imp))
	}
	sum := 0.0
	for _, v := range imp {
		if v < 0 {
			t.Fatalf("negative importance %v", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("importances sum to %v", sum)
	}
	if imp[0] < 0.5 {
		t.Fatalf("informative feature importance = %v, want dominant", imp[0])
	}
	// Deterministic.
	imp2, err := FeatureImportances(ds, ForestConfig{NumTrees: 15, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range imp {
		if imp[i] != imp2[i] {
			t.Fatal("importances not deterministic")
		}
	}
	if _, err := FeatureImportances(&Dataset{}, DefaultForestConfig()); err == nil {
		t.Fatal("empty dataset must error")
	}
}

func TestPRCurvePerfect(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	y := []int{1, 1, 0, 0}
	curve := PRCurve(scores, y)
	if ap := AveragePrecision(curve); math.Abs(ap-1) > 1e-9 {
		t.Fatalf("perfect AP = %v", ap)
	}
	// Every point of a perfect ranking before exhausting positives has
	// precision 1.
	if curve[0].Precision != 1 || curve[1].Precision != 1 {
		t.Fatalf("curve = %+v", curve)
	}
	last := curve[len(curve)-1]
	if last.Recall != 1 {
		t.Fatalf("final recall = %v", last.Recall)
	}
}

func TestPRCurveWorst(t *testing.T) {
	// Reversed ranking: positives scored lowest.
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	y := []int{0, 0, 1, 1}
	ap := AveragePrecision(PRCurve(scores, y))
	if ap > 0.55 {
		t.Fatalf("reversed AP = %v, want low", ap)
	}
}

func TestAveragePrecisionRange(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(150)
		scores := make([]float64, n)
		y := make([]int, n)
		pos := 0
		for i := range scores {
			scores[i] = rng.Float64()
			y[i] = rng.Intn(2)
			pos += y[i]
		}
		if pos == 0 {
			return true // no positives: AP undefined, skip
		}
		ap := AveragePrecision(PRCurve(scores, y))
		return ap >= -1e-9 && ap <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestTrainForestOOB(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	ds := gaussDataset(400, 6, 3, 2.0, rng)
	f, oobErr, err := TrainForestOOB(ds, ForestConfig{NumTrees: 20, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if f.NumTrees() != 20 {
		t.Fatalf("trees = %d", f.NumTrees())
	}
	if oobErr < 0 || oobErr > 0.2 {
		t.Fatalf("OOB error = %v, want small on separable data", oobErr)
	}
	// The OOB estimate should roughly track held-out error.
	test := gaussDataset(400, 6, 3, 2.0, rng)
	res := Evaluate(f, test.X, test.Y)
	holdout := 1 - res.Confusion.Accuracy()
	if math.Abs(oobErr-holdout) > 0.1 {
		t.Fatalf("OOB %v far from holdout %v", oobErr, holdout)
	}
	if _, _, err := TrainForestOOB(&Dataset{}, DefaultForestConfig()); err == nil {
		t.Fatal("empty dataset must error")
	}
	if _, _, err := TrainForestOOB(ds, ForestConfig{NumTrees: -1}); err == nil {
		t.Fatal("negative NumTrees must error")
	}
}

func TestGrowViaBestSplitEquivalence(t *testing.T) {
	// The refactored grow (via growTracked) must classify training data
	// identically to a freshly trained tree with the same inputs.
	rng := rand.New(rand.NewSource(101))
	ds := gaussDataset(200, 4, 2, 1.5, rng)
	t1 := TrainTree(ds, TreeConfig{}, nil)
	t2 := TrainTree(ds, TreeConfig{}, nil)
	for i := range ds.X {
		if t1.Predict(ds.X[i]) != t2.Predict(ds.X[i]) {
			t.Fatal("deterministic training diverged")
		}
	}
}

func TestDescribe(t *testing.T) {
	ds := &Dataset{
		X: [][]float64{{0, 5}, {0.1, 5}, {0.9, 5}, {1.0, 5}},
		Y: []int{0, 0, 1, 1},
	}
	tree := TrainTree(ds, TreeConfig{}, nil)
	out := tree.Describe([]string{"speed", "noise"})
	if !strings.Contains(out, "if speed <= 0.5") {
		t.Fatalf("describe = %q", out)
	}
	if !strings.Contains(out, "P(infection)=1.00") {
		t.Fatalf("describe missing leaf probs: %q", out)
	}
	// Raw indices without names.
	if raw := tree.Describe(nil); !strings.Contains(raw, "if f1 <=") {
		t.Fatalf("raw describe = %q", raw)
	}
}

func TestForestDescribeAndUsage(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ds := gaussDataset(200, 4, 2, 2.0, rng)
	f, err := TrainForest(ds, ForestConfig{NumTrees: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	out, err := f.DescribeTree(0, nil)
	if err != nil || !strings.Contains(out, "if f") {
		t.Fatalf("describe tree: %q, %v", out, err)
	}
	if _, err := f.DescribeTree(99, nil); err == nil {
		t.Fatal("out-of-range tree must error")
	}
	usage := f.FeatureUsage(4)
	total := 0
	for _, c := range usage {
		total += c
	}
	if total == 0 {
		t.Fatal("no feature usage recorded")
	}
	// Informative features (0,1) should dominate the splits.
	if usage[0]+usage[1] <= usage[2]+usage[3] {
		t.Fatalf("usage = %v; informative features should dominate", usage)
	}
}

func TestThresholdForFPR(t *testing.T) {
	scores := []float64{0.95, 0.9, 0.7, 0.6, 0.4, 0.3, 0.2, 0.1}
	y := []int{1, 1, 1, 0, 1, 0, 0, 0}
	// maxFPR 0: only thresholds above the best-scoring negative (0.6).
	th, tpr := ThresholdForFPR(scores, y, 0)
	if th <= 0.6 || tpr != 0.75 {
		t.Fatalf("th=%v tpr=%v, want th>0.6 tpr=0.75", th, tpr)
	}
	// maxFPR 0.25: one negative allowed -> can reach TPR 1.0 at 0.4.
	th, tpr = ThresholdForFPR(scores, y, 0.25)
	if tpr != 1.0 || th > 0.6 {
		t.Fatalf("th=%v tpr=%v, want tpr=1 at th<=0.6", th, tpr)
	}
	// Impossible target with all-positive scores below every negative.
	th, tpr = ThresholdForFPR([]float64{0.9, 0.1}, []int{0, 1}, 0)
	if tpr != 0 || th <= 1.0 {
		t.Fatalf("impossible target: th=%v tpr=%v", th, tpr)
	}
}
