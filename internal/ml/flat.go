package ml

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
)

// FlatForest is the ensemble in a contiguous struct-of-arrays layout: every
// tree's nodes live preorder in one shared slab, so a traversal touches
// sequential memory instead of chasing treeNode pointers, and the whole
// model is four flat arrays — the representation a model-distribution
// control plane can ship as one blob.
//
// Layout invariants (pinned by the differential tests in flat_test.go):
//   - nodes are preorder per tree; tree t occupies [treeStart[t],
//     treeStart[t+1]) with a sentinel treeStart[numTrees] == len(feature);
//   - an internal node's left child is the next node (i+1), its right child
//     is right[i]; feature[i] >= 0;
//   - a leaf has feature[i] == -1 and carries its class probabilities in
//     p0[i]/p1[i]; threshold and right are zero.
//
// Score and ScoreWithVotes accumulate per-tree leaf probabilities in tree
// order and divide once, exactly like *Forest — the two are bit-identical
// (math.Float64bits) on every input, so a FlatForest can replace the
// pointer forest anywhere, including under the detector's journal rescoring
// contract. FlatForest is immutable after construction and safe for
// concurrent use.
type FlatForest struct {
	feature   []int32
	threshold []float64
	right     []int32
	p0, p1    []float64
	treeStart []int32
	cfg       ForestConfig
	nf        int
}

// Flatten converts the pointer forest into its contiguous representation.
func (f *Forest) Flatten() *FlatForest {
	nodes := 0
	for _, t := range f.trees {
		nodes += t.NodeCount()
	}
	ff := &FlatForest{
		feature:   make([]int32, 0, nodes),
		threshold: make([]float64, 0, nodes),
		right:     make([]int32, 0, nodes),
		p0:        make([]float64, 0, nodes),
		p1:        make([]float64, 0, nodes),
		treeStart: make([]int32, 0, len(f.trees)+1),
		cfg:       f.cfg,
		nf:        f.nf,
	}
	for _, t := range f.trees {
		ff.treeStart = append(ff.treeStart, int32(len(ff.feature)))
		ff.flattenNode(t.root)
	}
	ff.treeStart = append(ff.treeStart, int32(len(ff.feature)))
	return ff
}

// flattenNode appends the subtree rooted at n in preorder and returns its
// slab index.
func (ff *FlatForest) flattenNode(n *treeNode) int32 {
	i := int32(len(ff.feature))
	if n.leaf {
		ff.feature = append(ff.feature, -1)
		ff.threshold = append(ff.threshold, 0)
		ff.right = append(ff.right, 0)
		ff.p0 = append(ff.p0, n.probs[0])
		ff.p1 = append(ff.p1, n.probs[1])
		return i
	}
	ff.feature = append(ff.feature, int32(n.feature))
	ff.threshold = append(ff.threshold, n.threshold)
	ff.right = append(ff.right, 0) // patched after the left subtree lands
	ff.p0 = append(ff.p0, 0)
	ff.p1 = append(ff.p1, 0)
	ff.flattenNode(n.left)
	ff.right[i] = ff.flattenNode(n.right)
	return i
}

// NumTrees returns the ensemble size.
func (ff *FlatForest) NumTrees() int { return len(ff.treeStart) - 1 }

// NumFeatures returns the feature dimensionality the forest was trained
// on (0 for models loaded from files written before versioned metadata).
func (ff *FlatForest) NumFeatures() int { return ff.nf }

// NumNodes returns the total node count across all trees.
func (ff *FlatForest) NumNodes() int { return len(ff.feature) }

// checkDim guards traversal against mis-dimensioned vectors: a short
// vector would otherwise die as a bare index-out-of-range deep inside the
// node loop. The named panic lets the detector's quarantine ladder
// attribute the fault.
func (ff *FlatForest) checkDim(x []float64) {
	if ff.nf > 0 && len(x) != ff.nf {
		panic(fmt.Sprintf("ml: FlatForest.Score: feature vector has %d features, forest was trained on %d", len(x), ff.nf))
	}
}

// leafFor walks one tree to the leaf x lands in and returns its slab index.
//
//dynalint:hotpath
func (ff *FlatForest) leafFor(t int, x []float64) int32 {
	feats, thr, right := ff.feature, ff.threshold, ff.right
	i := ff.treeStart[t]
	for {
		f := feats[i]
		if f < 0 {
			return i
		}
		if x[f] <= thr[i] {
			i++
		} else {
			i = right[i]
		}
	}
}

// Score returns the averaged probability that x is an infection —
// bit-identical to Forest.Score.
//
//dynalint:hotpath
func (ff *FlatForest) Score(x []float64) float64 {
	ff.checkDim(x)
	sum := 0.0
	nt := ff.NumTrees()
	for t := 0; t < nt; t++ {
		sum += ff.p1[ff.leafFor(t, x)]
	}
	return sum / float64(nt)
}

// ScoreWithVotes returns the ensemble score with the per-tree vote tally,
// accumulating in exactly the same order as Score (and as the pointer
// forest), so the score is bit-identical — the detector's alert journal
// relies on that.
//
//dynalint:hotpath
func (ff *FlatForest) ScoreWithVotes(x []float64) (score float64, votes, trees int) {
	ff.checkDim(x)
	sum := 0.0
	nt := ff.NumTrees()
	for t := 0; t < nt; t++ {
		p := ff.p1[ff.leafFor(t, x)]
		sum += p
		if p > 0.5 {
			votes++
		}
	}
	return sum / float64(nt), votes, nt
}

// Predict classifies x by probability averaging with a 0.5 threshold.
//
//dynalint:hotpath
func (ff *FlatForest) Predict(x []float64) int {
	if ff.Score(x) > 0.5 {
		return LabelInfection
	}
	return LabelBenign
}

// scoreBatchKernel scores X[i] into dst[i] tree-outer: each tree's slab
// region stays hot in cache while every sample traverses it, amortizing
// the per-tree dispatch across the batch. Per sample the leaf
// probabilities still accumulate in tree order with one final divide, so
// every dst[i] is bit-identical to Score(X[i]).
//
//dynalint:hotpath
func (ff *FlatForest) scoreBatchKernel(dst []float64, X [][]float64) {
	for i := range dst {
		dst[i] = 0
	}
	nt := ff.NumTrees()
	for t := 0; t < nt; t++ {
		for i, x := range X {
			dst[i] += ff.p1[ff.leafFor(t, x)]
		}
	}
	inv := float64(nt)
	for i := range dst {
		dst[i] /= inv
	}
}

// ScoreBatch evaluates the ensemble over X, writing the score of X[i]
// into dst[i]. dst is grown only when its capacity is insufficient; the
// (possibly reallocated) slice is returned, and nothing allocates when
// dst has room.
//
//dynalint:hotpath
func (ff *FlatForest) ScoreBatch(dst []float64, X [][]float64) []float64 {
	for _, x := range X {
		ff.checkDim(x)
	}
	if cap(dst) < len(X) {
		dst = make([]float64, len(X))
	}
	dst = dst[:len(X)]
	ff.scoreBatchKernel(dst, X)
	return dst
}

// ScoreBatchParallel evaluates the ensemble over X with worker goroutines
// (0 means GOMAXPROCS), fanning sample chunks out and running the batch
// kernel per chunk. Each score is written only to its own index, so the
// result is bit-identical to ScoreBatch regardless of scheduling. Small
// batches run sequentially.
func (ff *FlatForest) ScoreBatchParallel(X [][]float64, workers int) []float64 {
	for _, x := range X {
		ff.checkDim(x)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(X)/scoreChunk {
		workers = len(X) / scoreChunk
	}
	out := make([]float64, len(X))
	if len(X) < scoresParallelCutoff || workers < 2 {
		ff.scoreBatchKernel(out, X)
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo := int(next.Add(scoreChunk)) - scoreChunk
				if lo >= len(X) {
					return
				}
				hi := lo + scoreChunk
				if hi > len(X) {
					hi = len(X)
				}
				ff.scoreBatchKernel(out[lo:hi], X[lo:hi])
			}
		}()
	}
	wg.Wait()
	return out
}

// Save serializes the flat forest in the same wire format as Forest.Save:
// preorder node arrays per tree. The output is byte-identical to saving
// the pointer forest the FlatForest was flattened from, so either
// representation loads from either loader.
func (ff *FlatForest) Save(w io.Writer) error {
	wire := forestWire{Version: forestWireVersion, Features: ff.nf, Config: ff.cfg}
	nt := ff.NumTrees()
	for t := 0; t < nt; t++ {
		var tw treeWire
		for i := ff.treeStart[t]; i < ff.treeStart[t+1]; i++ {
			if ff.feature[i] < 0 {
				tw.Nodes = append(tw.Nodes, nodeWire{Leaf: true, P0: ff.p0[i], P1: ff.p1[i]})
			} else {
				tw.Nodes = append(tw.Nodes, nodeWire{Feature: int(ff.feature[i]), Threshold: ff.threshold[i]})
			}
		}
		wire.Trees = append(wire.Trees, tw)
	}
	return writeForestWire(w, wire)
}

// LoadFlatForest deserializes a forest written by Forest.Save or
// FlatForest.Save straight into the contiguous representation — the
// preorder wire nodes are the slab, only the right-child indices are
// reconstructed. The node stream is validated like LoadForest: feature
// bounds, finite thresholds, probability ranges, tree shape, and depth.
func LoadFlatForest(r io.Reader) (*FlatForest, error) {
	wire, err := readForestWire(r)
	if err != nil {
		return nil, err
	}
	nodes := 0
	for _, tw := range wire.Trees {
		nodes += len(tw.Nodes)
	}
	ff := &FlatForest{
		feature:   make([]int32, 0, nodes),
		threshold: make([]float64, 0, nodes),
		right:     make([]int32, 0, nodes),
		p0:        make([]float64, 0, nodes),
		p1:        make([]float64, 0, nodes),
		treeStart: make([]int32, 0, len(wire.Trees)+1),
		cfg:       wire.Config,
		nf:        wire.Features,
	}
	for ti, tw := range wire.Trees {
		ff.treeStart = append(ff.treeStart, int32(len(ff.feature)))
		if err := ff.appendTree(tw.Nodes, wire.Features); err != nil {
			return nil, fmt.Errorf("ml: tree %d: %w", ti, err)
		}
	}
	ff.treeStart = append(ff.treeStart, int32(len(ff.feature)))
	return ff, nil
}

// appendTree validates one preorder node stream and appends it to the
// slab, patching right-child indices with an explicit stack (no recursion,
// so adversarial streams cannot exhaust the goroutine stack; depth is
// bounded by maxModelDepth like the pointer loader).
func (ff *FlatForest) appendTree(nodes []nodeWire, features int) error {
	base := int32(len(ff.feature))
	// pending holds slab indices of internal nodes: awaiting[i] false while
	// the left subtree parses, true while the right subtree parses.
	type frame struct {
		idx     int32
		inRight bool
	}
	var stack []frame
	for pos, nw := range nodes {
		if err := validateNode(nw, features, len(stack)); err != nil {
			return fmt.Errorf("node %d: %w", pos, err)
		}
		i := base + int32(pos)
		if nw.Leaf {
			ff.feature = append(ff.feature, -1)
			ff.threshold = append(ff.threshold, 0)
			ff.right = append(ff.right, 0)
			ff.p0 = append(ff.p0, nw.P0)
			ff.p1 = append(ff.p1, nw.P1)
			// A completed subtree either starts its parent's right subtree
			// or completes the parent too, recursively up the stack.
			for {
				if len(stack) == 0 {
					if pos != len(nodes)-1 {
						return fmt.Errorf("%d trailing nodes", len(nodes)-1-pos)
					}
					return nil
				}
				top := &stack[len(stack)-1]
				if !top.inRight {
					top.inRight = true
					ff.right[top.idx] = i + 1
					break
				}
				stack = stack[:len(stack)-1]
			}
			continue
		}
		ff.feature = append(ff.feature, int32(nw.Feature))
		ff.threshold = append(ff.threshold, nw.Threshold)
		ff.right = append(ff.right, 0)
		ff.p0 = append(ff.p0, 0)
		ff.p1 = append(ff.p1, 0)
		stack = append(stack, frame{idx: i})
	}
	return fmt.Errorf("truncated node stream at %d", len(nodes))
}
