// Package ml implements the learning substrate DynaMiner trains on: CART
// decision trees, the Ensemble Random Forest (ERF) that averages per-tree
// class probabilities (Section V-A), gain-ratio feature ranking (Table IV),
// stratified k-fold cross-validation, and the TPR/FPR/F-score/ROC metrics
// of the evaluation section. Binary classification only: label 0 is benign,
// label 1 is infection.
package ml

import (
	"fmt"
	"math/rand"
)

// Labels used throughout.
const (
	LabelBenign    = 0
	LabelInfection = 1
	numClasses     = 2
)

// Dataset is a design matrix with binary labels.
type Dataset struct {
	X [][]float64
	Y []int
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.X) }

// Validate checks shape consistency and label range.
func (d *Dataset) Validate() error {
	if len(d.X) != len(d.Y) {
		return fmt.Errorf("ml: %d rows but %d labels", len(d.X), len(d.Y))
	}
	if len(d.X) == 0 {
		return fmt.Errorf("ml: empty dataset")
	}
	width := len(d.X[0])
	for i, row := range d.X {
		if len(row) != width {
			return fmt.Errorf("ml: row %d has %d features, want %d", i, len(row), width)
		}
		if d.Y[i] != LabelBenign && d.Y[i] != LabelInfection {
			return fmt.Errorf("ml: row %d has label %d", i, d.Y[i])
		}
	}
	return nil
}

// NumFeatures returns the width of the design matrix.
func (d *Dataset) NumFeatures() int {
	if len(d.X) == 0 {
		return 0
	}
	return len(d.X[0])
}

// Subset returns a view-dataset of the given row indices (rows are shared,
// not copied).
func (d *Dataset) Subset(idx []int) *Dataset {
	sub := &Dataset{X: make([][]float64, len(idx)), Y: make([]int, len(idx))}
	for i, j := range idx {
		sub.X[i] = d.X[j]
		sub.Y[i] = d.Y[j]
	}
	return sub
}

// SelectFeatures returns a copy of the dataset restricted to the given
// feature columns, in the given order.
func (d *Dataset) SelectFeatures(cols []int) *Dataset {
	sub := &Dataset{X: make([][]float64, len(d.X)), Y: make([]int, len(d.Y))}
	copy(sub.Y, d.Y)
	for i, row := range d.X {
		nr := make([]float64, len(cols))
		for k, c := range cols {
			nr[k] = row[c]
		}
		sub.X[i] = nr
	}
	return sub
}

// bootstrap draws n indices with replacement.
func bootstrap(n int, rng *rand.Rand) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = rng.Intn(n)
	}
	return idx
}

// StratifiedKFold splits sample indices into k folds preserving the class
// balance of y. The shuffle is driven by rng for reproducibility. Each
// returned fold is a set of test indices; the remaining indices form the
// corresponding training set.
func StratifiedKFold(y []int, k int, rng *rand.Rand) [][]int {
	if k < 2 {
		k = 2
	}
	byClass := make(map[int][]int)
	for i, label := range y {
		byClass[label] = append(byClass[label], i)
	}
	folds := make([][]int, k)
	for label := 0; label < numClasses; label++ {
		idx := byClass[label]
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for i, j := range idx {
			folds[i%k] = append(folds[i%k], j)
		}
	}
	return folds
}

// TrainIndices returns all indices not in test, given the total count.
func TrainIndices(n int, test []int) []int {
	inTest := make([]bool, n)
	for _, i := range test {
		inTest[i] = true
	}
	train := make([]int, 0, n-len(test))
	for i := 0; i < n; i++ {
		if !inTest[i] {
			train = append(train, i)
		}
	}
	return train
}
