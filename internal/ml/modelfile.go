package ml

import (
	"bufio"
	"fmt"
	"os"
)

// LoadModelFile reads a trained model from path, sniffing the format from
// the leading bytes: the DMFB magic selects the flat-blob loader, anything
// else is parsed as JSON (and flattened). Both routes run the full
// semantic screens — feature bounds, finite thresholds, preorder shape,
// depth cap, canonical payloads — so a forest this returns is exactly as
// validated as one from LoadForest or LoadFlatBlob. This is the loader the
// detector's hot-reload path uses: a candidate model is fully screened
// before it can ever be swapped into a running engine.
func LoadModelFile(path string) (*FlatForest, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("ml: load model: %w", err)
	}
	defer f.Close()
	br := bufio.NewReader(f)
	if prefix, err := br.Peek(len(flatBlobMagic)); err == nil && IsFlatBlob(prefix) {
		return LoadFlatBlob(br)
	}
	forest, err := LoadForest(br)
	if err != nil {
		return nil, err
	}
	return forest.Flatten(), nil
}
