package ml

import (
	"math"
	"math/rand"
	"testing"
)

func scoreTestForest(t *testing.T, samples int) (*Forest, [][]float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	X := make([][]float64, samples)
	y := make([]int, samples)
	for i := range X {
		x := make([]float64, 6)
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		if x[0]+x[1] > 0 {
			y[i] = LabelInfection
			x[2] += 1.5
		}
		X[i] = x
	}
	f, err := TrainForest(&Dataset{X: X, Y: y}, ForestConfig{NumTrees: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return f, X
}

// TestScoresParallelMatchesSequential pins bit-identical scores across
// worker counts, above and below the sequential cutoff.
func TestScoresParallelMatchesSequential(t *testing.T) {
	for _, samples := range []int{10, scoresParallelCutoff + 300} {
		f, X := scoreTestForest(t, samples)
		want := f.Scores(X)
		for _, workers := range []int{0, 1, 2, 3, 8} {
			got := f.ScoresParallel(X, workers)
			if len(got) != len(want) {
				t.Fatalf("workers=%d: %d scores, want %d", workers, len(got), len(want))
			}
			for i := range got {
				if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
					t.Fatalf("workers=%d sample %d: %v != %v", workers, i, got[i], want[i])
				}
			}
		}
	}
}

// TestScoreIntoReusesBuffer checks ScoreInto grows only when needed and
// reuses a sufficient destination without allocating.
func TestScoreIntoReusesBuffer(t *testing.T) {
	f, X := scoreTestForest(t, 50)
	buf := make([]float64, 0, len(X))
	out := f.ScoreInto(buf, X)
	if &out[0] != &buf[:1][0] {
		t.Fatal("ScoreInto reallocated despite sufficient capacity")
	}
	want := f.Scores(X)
	for i := range out {
		if out[i] != want[i] {
			t.Fatalf("sample %d: %v != %v", i, out[i], want[i])
		}
	}
	allocs := testing.AllocsPerRun(20, func() {
		buf = f.ScoreInto(buf, X)
	})
	if allocs != 0 {
		t.Fatalf("ScoreInto with warm buffer allocated %.1f times per run", allocs)
	}
	// Short destinations grow.
	short := make([]float64, 2)
	if got := f.ScoreInto(short, X); len(got) != len(X) {
		t.Fatalf("ScoreInto returned %d scores, want %d", len(got), len(X))
	}
}
