package ml

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestForestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	ds := gaussDataset(200, 6, 3, 1.5, rng)
	f, err := TrainForest(ds, ForestConfig{NumTrees: 7, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := LoadForest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumTrees() != f.NumTrees() {
		t.Fatalf("trees = %d, want %d", g.NumTrees(), f.NumTrees())
	}
	for i := 0; i < 100; i++ {
		x := make([]float64, 6)
		for j := range x {
			x[j] = rng.NormFloat64() * 2
		}
		if f.Score(x) != g.Score(x) {
			t.Fatalf("scores differ on probe %d", i)
		}
	}
}

func TestLoadForestErrors(t *testing.T) {
	if _, err := LoadForest(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage must error")
	}
	if _, err := LoadForest(strings.NewReader(`{"version":99,"trees":[{"nodes":[]}]}`)); err == nil {
		t.Fatal("bad version must error")
	}
	if _, err := LoadForest(strings.NewReader(`{"version":1,"trees":[]}`)); err == nil {
		t.Fatal("empty forest must error")
	}
	// Truncated node stream.
	if _, err := LoadForest(strings.NewReader(`{"version":1,"trees":[{"nodes":[{"f":0,"t":1}]}]}`)); err == nil {
		t.Fatal("truncated tree must error")
	}
	// Trailing nodes.
	trailing := `{"version":1,"trees":[{"nodes":[{"leaf":true,"p0":1},{"leaf":true,"p1":1}]}]}`
	if _, err := LoadForest(strings.NewReader(trailing)); err == nil {
		t.Fatal("trailing nodes must error")
	}
}

func TestSaveLoadPreservesFeatureCount(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	ds := gaussDataset(60, 9, 3, 2.0, rng)
	f, err := TrainForest(ds, ForestConfig{NumTrees: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if f.NumFeatures() != 9 {
		t.Fatalf("trained NumFeatures = %d", f.NumFeatures())
	}
	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := LoadForest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumFeatures() != 9 {
		t.Fatalf("loaded NumFeatures = %d", g.NumFeatures())
	}
}
