package ml

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestForestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	ds := gaussDataset(200, 6, 3, 1.5, rng)
	f, err := TrainForest(ds, ForestConfig{NumTrees: 7, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := LoadForest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumTrees() != f.NumTrees() {
		t.Fatalf("trees = %d, want %d", g.NumTrees(), f.NumTrees())
	}
	for i := 0; i < 100; i++ {
		x := make([]float64, 6)
		for j := range x {
			x[j] = rng.NormFloat64() * 2
		}
		if f.Score(x) != g.Score(x) {
			t.Fatalf("scores differ on probe %d", i)
		}
	}
}

func TestLoadForestErrors(t *testing.T) {
	if _, err := LoadForest(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage must error")
	}
	if _, err := LoadForest(strings.NewReader(`{"version":99,"trees":[{"nodes":[]}]}`)); err == nil {
		t.Fatal("bad version must error")
	}
	if _, err := LoadForest(strings.NewReader(`{"version":1,"trees":[]}`)); err == nil {
		t.Fatal("empty forest must error")
	}
	// Truncated node stream.
	if _, err := LoadForest(strings.NewReader(`{"version":1,"trees":[{"nodes":[{"f":0,"t":1}]}]}`)); err == nil {
		t.Fatal("truncated tree must error")
	}
	// Trailing nodes.
	trailing := `{"version":1,"trees":[{"nodes":[{"leaf":true,"p0":1},{"leaf":true,"p1":1}]}]}`
	if _, err := LoadForest(strings.NewReader(trailing)); err == nil {
		t.Fatal("trailing nodes must error")
	}
}

// loadBoth runs both loaders over the same document and asserts they agree
// on rejection; it returns the pointer loader's error.
func loadBoth(t *testing.T, doc string) error {
	t.Helper()
	_, perr := LoadForest(strings.NewReader(doc))
	_, ferr := LoadFlatForest(strings.NewReader(doc))
	if (perr == nil) != (ferr == nil) {
		t.Fatalf("loaders disagree on %q: pointer %v, flat %v", doc, perr, ferr)
	}
	return perr
}

// TestLoadForestSemanticValidation pins the load-time screens added after
// semantically broken models were found to load fine and fail at serve
// time: a feature index past the trained dimensionality panicked inside
// PredictProba, and out-of-range leaf probabilities silently mis-scored.
// Every case here loaded without error before the fix.
func TestLoadForestSemanticValidation(t *testing.T) {
	cases := map[string]string{
		"feature out of range": `{"version":1,"features":2,"trees":[{"nodes":[` +
			`{"f":5,"t":1},{"leaf":true,"p1":1},{"leaf":true,"p0":1}]}]}`,
		"negative feature": `{"version":1,"features":2,"trees":[{"nodes":[` +
			`{"f":-1,"t":1},{"leaf":true,"p1":1},{"leaf":true,"p0":1}]}]}`,
		"leaf prob above 1": `{"version":1,"features":1,"trees":[{"nodes":[` +
			`{"leaf":true,"p0":0.5,"p1":1.5}]}]}`,
		"negative leaf prob": `{"version":1,"features":1,"trees":[{"nodes":[` +
			`{"leaf":true,"p0":-0.25,"p1":0.25}]}]}`,
		"negative feature count": `{"version":1,"features":-3,"trees":[{"nodes":[` +
			`{"leaf":true,"p1":1}]}]}`,
	}
	for name, doc := range cases {
		if err := loadBoth(t, doc); err == nil {
			t.Errorf("%s: loaded without error", name)
		}
	}
	// Control: a well-formed single-leaf model still loads.
	if err := loadBoth(t, `{"version":1,"features":1,"trees":[{"nodes":[{"leaf":true,"p1":1}]}]}`); err != nil {
		t.Fatalf("well-formed model rejected: %v", err)
	}
}

// TestLoadForestNonFiniteThreshold exercises validateNode directly: JSON
// cannot carry NaN/Inf literals, but the screen guards any future binary
// format and documents the invariant.
func TestLoadForestNonFiniteThreshold(t *testing.T) {
	if err := validateNode(nodeWire{Feature: 0, Threshold: math.NaN()}, 1, 0); err == nil {
		t.Fatal("NaN threshold passed validation")
	}
	if err := validateNode(nodeWire{Feature: 0, Threshold: math.Inf(1)}, 1, 0); err == nil {
		t.Fatal("+Inf threshold passed validation")
	}
	if err := validateNode(nodeWire{Leaf: true, P1: math.NaN()}, 1, 0); err == nil {
		t.Fatal("NaN leaf probability passed validation")
	}
}

// TestLoadForestDepthBound feeds both loaders an adversarially deep
// left-linear chain. Before the bound, the recursive unflattener would
// recurse once per node — a large enough stream could exhaust the
// goroutine stack; now anything past maxModelDepth is rejected with a
// clear error.
func TestLoadForestDepthBound(t *testing.T) {
	deepChain := func(depth int) string {
		var sb strings.Builder
		sb.WriteString(`{"version":1,"features":1,"trees":[{"nodes":[`)
		for i := 0; i < depth; i++ {
			sb.WriteString(`{"f":0,"t":0.5},`)
		}
		sb.WriteString(`{"leaf":true,"p1":1}`) // deepest left leaf
		for i := 0; i < depth; i++ {
			sb.WriteString(`,{"leaf":true,"p0":1}`) // right leaves on the way up
		}
		sb.WriteString(`]}]}`)
		return sb.String()
	}
	if err := loadBoth(t, deepChain(maxModelDepth+10)); err == nil {
		t.Fatal("over-deep model loaded without error")
	}
	if !strings.Contains(loadBoth(t, deepChain(maxModelDepth+10)).Error(), "depth") {
		t.Fatal("depth violation error does not mention depth")
	}
	if err := loadBoth(t, deepChain(64)); err != nil {
		t.Fatalf("reasonable depth rejected: %v", err)
	}
}

func TestSaveLoadPreservesFeatureCount(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	ds := gaussDataset(60, 9, 3, 2.0, rng)
	f, err := TrainForest(ds, ForestConfig{NumTrees: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if f.NumFeatures() != 9 {
		t.Fatalf("trained NumFeatures = %d", f.NumFeatures())
	}
	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := LoadForest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumFeatures() != 9 {
		t.Fatalf("loaded NumFeatures = %d", g.NumFeatures())
	}
}
