package ml

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// scoresParallelCutoff is the batch size below which the fan-out overhead
// outweighs the tree walks and ScoresParallel stays sequential.
const scoresParallelCutoff = 256

// scoreChunk is the number of samples a worker claims at a time: large
// enough to amortize the atomic increment, small enough to balance load
// across forests with uneven tree depths.
const scoreChunk = 64

// ScoreInto evaluates the ensemble over X, writing the score of X[i] into
// dst[i]. dst is grown only if its capacity is insufficient; the (possibly
// reallocated) slice is returned. Scoring allocates nothing when dst has
// room, which keeps the per-update cost of the on-the-wire pipeline flat.
func (f *Forest) ScoreInto(dst []float64, X [][]float64) []float64 {
	if cap(dst) < len(X) {
		dst = make([]float64, len(X))
	}
	dst = dst[:len(X)]
	for i, x := range X {
		dst[i] = f.Score(x)
	}
	return dst
}

// Scores evaluates the ensemble over a matrix of samples.
func (f *Forest) Scores(X [][]float64) []float64 {
	return f.ScoreInto(nil, X)
}

// ScoresParallel evaluates the ensemble over X with worker goroutines
// (0 means GOMAXPROCS). Each sample's score is written only to its own
// index and each score is a pure function of one sample, so the result is
// identical to the sequential Scores regardless of scheduling. Small
// batches run sequentially.
func (f *Forest) ScoresParallel(X [][]float64, workers int) []float64 {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(X)/scoreChunk {
		workers = len(X) / scoreChunk
	}
	out := make([]float64, len(X))
	if len(X) < scoresParallelCutoff || workers < 2 {
		for i, x := range X {
			out[i] = f.Score(x)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo := int(next.Add(scoreChunk)) - scoreChunk
				if lo >= len(X) {
					return
				}
				hi := lo + scoreChunk
				if hi > len(X) {
					hi = len(X)
				}
				for i := lo; i < hi; i++ {
					out[i] = f.Score(X[i])
				}
			}
		}()
	}
	wg.Wait()
	return out
}
