package ml

import (
	"encoding/json"
	"fmt"
	"io"
)

// Wire formats for persisting a trained forest. Node is flattened into a
// preorder array so the JSON stays compact and version-checkable.
type forestWire struct {
	Version  int          `json:"version"`
	Features int          `json:"features"`
	Config   ForestConfig `json:"config"`
	Trees    []treeWire   `json:"trees"`
}

type treeWire struct {
	Nodes []nodeWire `json:"nodes"`
}

type nodeWire struct {
	Feature   int     `json:"f"`
	Threshold float64 `json:"t"`
	Leaf      bool    `json:"leaf,omitempty"`
	P0        float64 `json:"p0,omitempty"`
	P1        float64 `json:"p1,omitempty"`
}

const forestWireVersion = 1

// Save serializes the trained forest as JSON.
func (f *Forest) Save(w io.Writer) error {
	wire := forestWire{Version: forestWireVersion, Features: f.nf, Config: f.cfg}
	for _, t := range f.trees {
		var tw treeWire
		flattenTree(t.root, &tw.Nodes)
		wire.Trees = append(wire.Trees, tw)
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(wire); err != nil {
		return fmt.Errorf("ml: save forest: %w", err)
	}
	return nil
}

func flattenTree(n *treeNode, out *[]nodeWire) {
	if n.leaf {
		*out = append(*out, nodeWire{Leaf: true, P0: n.probs[0], P1: n.probs[1]})
		return
	}
	*out = append(*out, nodeWire{Feature: n.feature, Threshold: n.threshold})
	flattenTree(n.left, out)
	flattenTree(n.right, out)
}

// LoadForest deserializes a forest previously written by Save.
func LoadForest(r io.Reader) (*Forest, error) {
	var wire forestWire
	if err := json.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("ml: load forest: %w", err)
	}
	if wire.Version != forestWireVersion {
		return nil, fmt.Errorf("ml: unsupported forest version %d", wire.Version)
	}
	if len(wire.Trees) == 0 {
		return nil, fmt.Errorf("ml: forest file has no trees")
	}
	f := &Forest{cfg: wire.Config, nf: wire.Features}
	for ti, tw := range wire.Trees {
		pos := 0
		root, err := unflattenTree(tw.Nodes, &pos)
		if err != nil {
			return nil, fmt.Errorf("ml: tree %d: %w", ti, err)
		}
		if pos != len(tw.Nodes) {
			return nil, fmt.Errorf("ml: tree %d: %d trailing nodes", ti, len(tw.Nodes)-pos)
		}
		f.trees = append(f.trees, &Tree{root: root})
	}
	return f, nil
}

func unflattenTree(nodes []nodeWire, pos *int) (*treeNode, error) {
	if *pos >= len(nodes) {
		return nil, fmt.Errorf("truncated node stream at %d", *pos)
	}
	nw := nodes[*pos]
	*pos++
	if nw.Leaf {
		n := &treeNode{leaf: true}
		n.probs[0], n.probs[1] = nw.P0, nw.P1
		return n, nil
	}
	left, err := unflattenTree(nodes, pos)
	if err != nil {
		return nil, err
	}
	right, err := unflattenTree(nodes, pos)
	if err != nil {
		return nil, err
	}
	return &treeNode{feature: nw.Feature, threshold: nw.Threshold, left: left, right: right}, nil
}
