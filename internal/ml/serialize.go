package ml

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// Wire formats for persisting a trained forest. Node is flattened into a
// preorder array so the JSON stays compact and version-checkable — and so
// the same format loads directly into the contiguous FlatForest slabs.
type forestWire struct {
	Version  int          `json:"version"`
	Features int          `json:"features"`
	Config   ForestConfig `json:"config"`
	Trees    []treeWire   `json:"trees"`
}

type treeWire struct {
	Nodes []nodeWire `json:"nodes"`
}

type nodeWire struct {
	Feature   int     `json:"f"`
	Threshold float64 `json:"t"`
	Leaf      bool    `json:"leaf,omitempty"`
	P0        float64 `json:"p0,omitempty"`
	P1        float64 `json:"p1,omitempty"`
}

const forestWireVersion = 1

// maxLegacyFeature bounds node feature indices in files that predate the
// features count (features == 0): real models have a few dozen features,
// and an absurd index would otherwise make every consumer that sizes a
// vector off the model allocate gigabytes.
const maxLegacyFeature = 1 << 16

// maxModelDepth bounds the tree depth any loader accepts. Trained CART
// trees peel at worst one sample per level, so real depth stays well under
// the training-set size; an adversarial node stream, by contrast, could
// nest millions of internal nodes and blow the goroutine stack in the
// recursive unflattener before this bound existed.
const maxModelDepth = 4096

// writeForestWire encodes one wire record (shared by both Save paths so
// the two representations serialize byte-identically).
func writeForestWire(w io.Writer, wire forestWire) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(wire); err != nil {
		return fmt.Errorf("ml: save forest: %w", err)
	}
	return nil
}

// readForestWire decodes and structurally screens one wire record (shared
// by both loaders).
func readForestWire(r io.Reader) (forestWire, error) {
	var wire forestWire
	if err := json.NewDecoder(r).Decode(&wire); err != nil {
		return wire, fmt.Errorf("ml: load forest: %w", err)
	}
	if wire.Version != forestWireVersion {
		return wire, fmt.Errorf("ml: unsupported forest version %d", wire.Version)
	}
	if len(wire.Trees) == 0 {
		return wire, fmt.Errorf("ml: forest file has no trees")
	}
	if wire.Features < 0 {
		return wire, fmt.Errorf("ml: negative feature count %d", wire.Features)
	}
	return wire, nil
}

// validateNode screens one wire node before it joins a model. A bad node
// that loads silently fails much later — a Feature beyond the trained
// dimensionality indexes out of range in the middle of PredictProba at
// serve time, a NaN threshold mis-routes every traversal (NaN compares
// false), out-of-range leaf probabilities corrupt the ensemble average —
// so every bound is enforced here, at load, with a clear error.
func validateNode(nw nodeWire, features, depth int) error {
	if depth > maxModelDepth {
		return fmt.Errorf("exceeds max depth %d", maxModelDepth)
	}
	if nw.Leaf {
		for _, p := range [2]float64{nw.P0, nw.P1} {
			if math.IsNaN(p) || p < 0 || p > 1 {
				return fmt.Errorf("leaf probability %v outside [0, 1]", p)
			}
		}
		return nil
	}
	if nw.Feature < 0 {
		return fmt.Errorf("negative feature index %d", nw.Feature)
	}
	if features > 0 && nw.Feature >= features {
		return fmt.Errorf("feature index %d out of range for %d-feature model", nw.Feature, features)
	}
	if features <= 0 && nw.Feature >= maxLegacyFeature {
		return fmt.Errorf("feature index %d implausible for a model with no feature count", nw.Feature)
	}
	if math.IsNaN(nw.Threshold) || math.IsInf(nw.Threshold, 0) {
		return fmt.Errorf("non-finite threshold %v", nw.Threshold)
	}
	return nil
}

// Save serializes the trained forest as JSON.
func (f *Forest) Save(w io.Writer) error {
	wire := forestWire{Version: forestWireVersion, Features: f.nf, Config: f.cfg}
	for _, t := range f.trees {
		var tw treeWire
		flattenTree(t.root, &tw.Nodes)
		wire.Trees = append(wire.Trees, tw)
	}
	return writeForestWire(w, wire)
}

func flattenTree(n *treeNode, out *[]nodeWire) {
	if n.leaf {
		*out = append(*out, nodeWire{Leaf: true, P0: n.probs[0], P1: n.probs[1]})
		return
	}
	*out = append(*out, nodeWire{Feature: n.feature, Threshold: n.threshold})
	flattenTree(n.left, out)
	flattenTree(n.right, out)
}

// LoadForest deserializes a forest previously written by Save (or by
// FlatForest.Save — the wire format is shared). Node streams are validated
// semantically: feature bounds against the trained dimensionality, finite
// thresholds, leaf probabilities in [0, 1], and bounded depth, so a
// corrupt or adversarial model file is rejected here instead of panicking
// deep inside PredictProba at serve time.
func LoadForest(r io.Reader) (*Forest, error) {
	wire, err := readForestWire(r)
	if err != nil {
		return nil, err
	}
	f := &Forest{cfg: wire.Config, nf: wire.Features}
	for ti, tw := range wire.Trees {
		pos := 0
		root, err := unflattenTree(tw.Nodes, &pos, wire.Features, 0)
		if err != nil {
			return nil, fmt.Errorf("ml: tree %d: %w", ti, err)
		}
		if pos != len(tw.Nodes) {
			return nil, fmt.Errorf("ml: tree %d: %d trailing nodes", ti, len(tw.Nodes)-pos)
		}
		f.trees = append(f.trees, &Tree{root: root})
	}
	return f, nil
}

func unflattenTree(nodes []nodeWire, pos *int, features, depth int) (*treeNode, error) {
	if *pos >= len(nodes) {
		return nil, fmt.Errorf("truncated node stream at %d", *pos)
	}
	nw := nodes[*pos]
	if err := validateNode(nw, features, depth); err != nil {
		return nil, fmt.Errorf("node %d: %w", *pos, err)
	}
	*pos++
	if nw.Leaf {
		n := &treeNode{leaf: true}
		n.probs[0], n.probs[1] = nw.P0, nw.P1
		return n, nil
	}
	left, err := unflattenTree(nodes, pos, features, depth+1)
	if err != nil {
		return nil, err
	}
	right, err := unflattenTree(nodes, pos, features, depth+1)
	if err != nil {
		return nil, err
	}
	return &treeNode{feature: nw.Feature, threshold: nw.Threshold, left: left, right: right}, nil
}
