package experiments

import (
	"net/netip"
	"strings"
	"testing"

	"dynaminer/internal/features"
	"dynaminer/internal/httpstream"
	"dynaminer/internal/synth"
)

// smallOpts keeps unit tests quick; the benches run paper scale.
var smallOpts = Options{
	Seed:            3,
	TrainInfections: 160,
	TrainBenign:     200,
	ValInfections:   300,
	ValBenign:       120,
	Folds:           5,
	Trees:           12,
}

func TestTableI(t *testing.T) {
	eps := GroundTruth(smallOpts)
	res := TableI(eps)
	if len(res.Rows) != 11 { // Benign + 9 families + Other Kits
		t.Fatalf("rows = %d, want 11", len(res.Rows))
	}
	if res.Rows[0].Family != "Benign" {
		t.Fatal("first row must be Benign")
	}
	total := 0
	for _, row := range res.Rows[1:] {
		total += row.Episodes
	}
	if total != smallOpts.TrainInfections {
		t.Fatalf("infection episodes = %d, want %d", total, smallOpts.TrainInfections)
	}
	// Benign redirects stay small; infection hosts exceed benign hosts.
	benign := res.Rows[0]
	if benign.RedirAvg > 1.0 {
		t.Fatalf("benign avg redirects = %v, want < 1", benign.RedirAvg)
	}
	var angler TableIRow
	for _, row := range res.Rows {
		if row.Family == "Angler" {
			angler = row
		}
	}
	if angler.Episodes == 0 {
		t.Fatal("no Angler episodes at this scale")
	}
	if angler.JS == 0 {
		t.Fatal("Angler JS payload count must be positive")
	}
	if !strings.Contains(res.String(), "Angler") {
		t.Fatal("rendering broken")
	}
}

func TestFigure1And2(t *testing.T) {
	eps := GroundTruth(smallOpts)
	f1 := Figure1(eps)
	sum := 0.0
	var google, social float64
	for _, row := range f1.Rows {
		sum += row.Pct
		switch row.Category {
		case "google":
			google = row.Pct
		case "social":
			social = row.Pct
		}
	}
	if sum < 99.9 || sum > 100.1 {
		t.Fatalf("figure 1 percentages sum to %v", sum)
	}
	if google < 25 || google > 50 {
		t.Fatalf("google share = %v, want ~37", google)
	}
	if social > 5 {
		t.Fatalf("social share = %v, want ~1", social)
	}

	f2 := Figure2(eps)
	if len(f2.Families) != 10 || len(f2.Pct) != 10 {
		t.Fatalf("figure 2 families = %d", len(f2.Families))
	}
	if !strings.Contains(f2.String(), "Angler") {
		t.Fatal("figure 2 rendering broken")
	}
}

func TestFigure3And4Shapes(t *testing.T) {
	eps := GroundTruth(smallOpts)
	f3 := Figure3(eps)
	get := func(r PropResult, name string) PropRow {
		for _, row := range r.Rows {
			if row.Property == name {
				return row
			}
		}
		t.Fatalf("property %s missing", name)
		return PropRow{}
	}
	// Figure 3 shape: infection graphs have more nodes, edges, diameter,
	// degree, volume; lower closeness/betweenness centralities.
	for _, p := range []string{"nodes", "edges", "diameter", "max-degree", "volume"} {
		row := get(f3, p)
		if row.Infection <= row.Benign {
			t.Errorf("%s: infection %v <= benign %v", p, row.Infection, row.Benign)
		}
	}
	for _, p := range []string{"closeness-centrality", "betweenness-centrality", "degree-centrality"} {
		row := get(f3, p)
		if row.Infection >= row.Benign {
			t.Errorf("%s: infection %v >= benign %v (paper: lower for infections)", p, row.Infection, row.Benign)
		}
	}

	f4 := Figure4(eps)
	for _, p := range []string{"GETs", "POSTs", "HTTP-30X", "HTTP-40X", "redirections"} {
		row := get(f4, p)
		if row.Infection <= row.Benign {
			t.Errorf("%s: infection %v <= benign %v", p, row.Infection, row.Benign)
		}
	}
}

func TestFigure6(t *testing.T) {
	res := Figure6(smallOpts)
	if res.Order < 3 || res.Size < 4 {
		t.Fatalf("figure 6 WCG too small: order=%d size=%d", res.Order, res.Size)
	}
	if !strings.Contains(res.DOT, "digraph wcg") {
		t.Fatal("missing DOT header")
	}
}

func TestFigures7to9(t *testing.T) {
	eps := GroundTruth(smallOpts)
	series := Figures7to9(eps)
	if len(series) != 3 {
		t.Fatalf("series = %d", len(series))
	}
	for _, s := range series {
		// Deciles must be monotone.
		for i := 1; i <= 10; i++ {
			if s.Infection[i] < s.Infection[i-1] || s.Benign[i] < s.Benign[i-1] {
				t.Fatalf("%s deciles not monotone", s.Metric)
			}
		}
		if s.String() == "" {
			t.Fatal("empty rendering")
		}
	}
	// Figures 8-9 shape: centralities lower for infections on average.
	if series[1].InfMean >= series[1].BenMean {
		t.Errorf("betweenness: infection mean %v >= benign %v", series[1].InfMean, series[1].BenMean)
	}
	if series[2].InfMean >= series[2].BenMean {
		t.Errorf("closeness: infection mean %v >= benign %v", series[2].InfMean, series[2].BenMean)
	}
}

func TestTableIIIOrdering(t *testing.T) {
	ds := BuildDataset(GroundTruth(smallOpts))
	res, err := TableIII(ds, smallOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	all, gf, rest := res.Rows[0], res.Rows[1], res.Rows[2]
	t.Logf("\n%s", res)
	// The paper's stated combination effect (Section VI-A): relative to
	// graph features alone, combining all features improves TPR and
	// clearly drops FPR.
	if all.TPR < gf.TPR {
		t.Errorf("All TPR %v below GFs %v", all.TPR, gf.TPR)
	}
	if all.FPR > gf.FPR {
		t.Errorf("All FPR %v above GFs %v", all.FPR, gf.FPR)
	}
	// Graph features alone carry strong signal (paper: 0.958/0.059).
	if gf.TPR < 0.85 || gf.FPR > 0.15 {
		t.Errorf("GFs weak: TPR=%v FPR=%v", gf.TPR, gf.FPR)
	}
	// Every group is informative, and the full model is strong overall.
	if rest.TPR < 0.7 {
		t.Errorf("header group TPR = %v, implausibly weak", rest.TPR)
	}
	if all.TPR < 0.9 || all.ROCArea < 0.97 {
		t.Errorf("All TPR/ROC = %v/%v, want high", all.TPR, all.ROCArea)
	}
}

func TestTableIVTop20(t *testing.T) {
	ds := BuildDataset(GroundTruth(smallOpts))
	res := TableIV(ds, smallOpts)
	if len(res.Rows) != 20 {
		t.Fatalf("rows = %d, want 20", len(res.Rows))
	}
	t.Logf("\n%s", res)
	// Paper shape: graph features are the largest block in the top 20
	// (the paper reports 15/20; our corpus yields 8-10 with several of the
	// remaining slots held by size-carrying HLF/HF counts — the divergence
	// is documented in EXPERIMENTS.md) and the temporal features rank at
	// the very top.
	if res.GraphFeatureCount() < 8 {
		t.Errorf("graph features in top-20 = %d, want the largest block", res.GraphFeatureCount())
	}
	temporalNearTop := false
	for _, row := range res.Rows[:5] {
		if row.Group == features.TF {
			temporalNearTop = true
		}
	}
	if !temporalNearTop {
		t.Error("no temporal feature in the top 5 (paper: they rank 1-2)")
	}
	// Ranks must be ascending.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].RankMean < res.Rows[i-1].RankMean {
			t.Fatal("rows not sorted by rank")
		}
	}
}

func TestFigure10(t *testing.T) {
	ds := BuildDataset(GroundTruth(smallOpts))
	res, err := Figure10(ds, smallOpts)
	if err != nil {
		t.Fatal(err)
	}
	if res.AUC < 0.93 {
		t.Fatalf("AUC = %v, want high", res.AUC)
	}
	first, last := res.Points[0], res.Points[len(res.Points)-1]
	if first.FPR != 0 || first.TPR != 0 || last.FPR != 1 || last.TPR != 1 {
		t.Fatalf("curve endpoints wrong: %+v %+v", first, last)
	}
}

func TestTableVShape(t *testing.T) {
	res, err := TableV(smallOpts)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res)
	dm, vt := res.Rows[0], res.Rows[1]
	if dm.System != "DynaMiner" {
		t.Fatal("row order wrong")
	}
	// Core Table V shape: DynaMiner beats the AV ensemble on infection
	// recall by a clear margin, and both do well on benign.
	if dm.InfectionAccuracy() <= vt.InfectionAccuracy() {
		t.Errorf("DynaMiner %v <= AV %v on infections", dm.InfectionAccuracy(), vt.InfectionAccuracy())
	}
	if dm.InfectionAccuracy() < 0.90 {
		t.Errorf("DynaMiner infection accuracy = %v, want >= 0.90", dm.InfectionAccuracy())
	}
	if vt.InfectionAccuracy() < 0.70 || vt.InfectionAccuracy() > 0.95 {
		t.Errorf("AV infection accuracy = %v, want ~0.84", vt.InfectionAccuracy())
	}
	if dm.BenignAccuracy() < 0.90 {
		t.Errorf("DynaMiner benign accuracy = %v", dm.BenignAccuracy())
	}
	if vt.Timeouts == 0 && smallOpts.ValInfections >= 300 {
		t.Log("note: no AV timeouts at this scale (rate is ~1.5%)")
	}
}

func TestCaseStudy1(t *testing.T) {
	res, err := CaseStudy1(smallOpts)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res)
	if res.Transactions < 2000 {
		t.Fatalf("transactions = %d", res.Transactions)
	}
	if res.Downloads != 32 || res.MaliciousDrops != 5 {
		t.Fatalf("downloads = %d/%d, want 32/5", res.Downloads, res.MaliciousDrops)
	}
	if res.Alerts < 4 || res.Alerts > 6 {
		t.Fatalf("alerts = %d, want ~5", res.Alerts)
	}
	if res.VTFlaggedAtCapture != 4 {
		t.Fatalf("AV flagged %d at capture, want 4", res.VTFlaggedAtCapture)
	}
	if res.FreshPayloadLagDays != 11 {
		t.Fatalf("fresh payload lag = %d days, want 11", res.FreshPayloadLagDays)
	}
}

func TestTableVI(t *testing.T) {
	res, err := TableVI(smallOpts)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	totalAlerts := 0
	for _, row := range res.Rows {
		totalAlerts += row.Alerts
	}
	// Table VI shape: 8 alerts total, 4/3/1 across the hosts.
	if totalAlerts < 6 || totalAlerts > 10 {
		t.Fatalf("total alerts = %d, want ~8", totalAlerts)
	}
	if res.Rows[0].Alerts < res.Rows[2].Alerts {
		t.Errorf("windows host alerts %d < macos %d", res.Rows[0].Alerts, res.Rows[2].Alerts)
	}
	if res.VTOnlyPDFs != 2 {
		t.Errorf("trojan PDFs flagged by AV = %d, want 2", res.VTOnlyPDFs)
	}
	if res.TotalDownloads < 40 {
		t.Errorf("downloads = %d", res.TotalDownloads)
	}
}

func TestAblations(t *testing.T) {
	ds := BuildDataset(GroundTruth(smallOpts))

	a1, err := AblationClueThreshold(smallOpts, 30)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", a1)
	if len(a1.Rows) != 6 {
		t.Fatalf("a1 rows = %d", len(a1.Rows))
	}
	// Detection rate decreases (weakly) as the threshold rises.
	for i := 1; i < len(a1.Rows); i++ {
		if a1.Rows[i].DetectionRate > a1.Rows[i-1].DetectionRate+0.05 {
			t.Errorf("detection rate rose with threshold: %v", a1.Rows)
		}
	}

	a2, err := AblationTrees(ds, smallOpts)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", a2)
	if a2.Rows[0].Trees != 1 || a2.Rows[len(a2.Rows)-1].Trees != 80 {
		t.Fatal("a2 sweep wrong")
	}
	if a2.Rows[3].ROCArea < a2.Rows[0].ROCArea {
		t.Errorf("20 trees AUC %v below single tree %v", a2.Rows[3].ROCArea, a2.Rows[0].ROCArea)
	}

	a3, err := AblationVoting(ds, smallOpts)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", a3)
	if len(a3.Rows) != 2 || a3.Rows[0].Rule != "prob-averaging" {
		t.Fatal("a3 rows wrong")
	}
	if a3.Rows[0].ROCArea < a3.Rows[1].ROCArea-0.02 {
		t.Errorf("averaging AUC %v well below voting %v", a3.Rows[0].ROCArea, a3.Rows[1].ROCArea)
	}
}

func TestEvasion(t *testing.T) {
	res, err := Evasion(smallOpts, 40)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res)
	byMode := make(map[string]EvasionRow)
	for _, row := range res.Rows {
		byMode[row.Mode] = row
	}
	base := byMode["none"]
	if base.OfflineTPR < 0.9 || base.WireTPR < 0.5 {
		t.Fatalf("baseline too weak: %+v", base)
	}
	// Section VII shapes:
	// Fileless infection defeats the on-the-wire clue (no download) but the
	// offline classifier still catches many via redirects + call-backs.
	if fl := byMode["fileless"]; fl.WireTPR > 0.05 {
		t.Errorf("fileless wire TPR = %v, want ~0 (no download, no clue)", fl.WireTPR)
	}
	if fl := byMode["fileless"]; fl.OfflineTPR < 0.4 {
		t.Errorf("fileless offline TPR = %v; paper expects averaging to still flag many", fl.OfflineTPR)
	}
	// Compressed payloads evade the clue too (not a likely-malicious type).
	if cp := byMode["compressed-payload"]; cp.WireTPR > 0.05 {
		t.Errorf("compressed wire TPR = %v, want ~0", cp.WireTPR)
	}
	// Removing redirections starves the clue threshold.
	if nr := byMode["no-redirect"]; nr.WireTPR >= base.WireTPR {
		t.Errorf("no-redirect wire TPR %v not below baseline %v", nr.WireTPR, base.WireTPR)
	}
	// Suppressing call-backs hurts but does not disable offline detection.
	if nc := byMode["no-callback"]; nc.OfflineTPR < 0.5 {
		t.Errorf("no-callback offline TPR = %v, too low", nc.OfflineTPR)
	}
}

func TestPerFamily(t *testing.T) {
	res, err := PerFamily(smallOpts, 20)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res)
	if len(res.Rows) != 10 {
		t.Fatalf("rows = %d, want 10", len(res.Rows))
	}
	total, detected := 0, 0
	for _, row := range res.Rows {
		if row.OfflineTPR < 0 || row.OfflineTPR > 1 {
			t.Fatalf("TPR out of range: %+v", row)
		}
		total += row.Episodes
		detected += row.Detected
	}
	if frac := float64(detected) / float64(total); frac < 0.85 {
		t.Fatalf("overall per-family TPR = %v, want high", frac)
	}
}

func TestDetectionLatency(t *testing.T) {
	res, err := DetectionLatency(smallOpts, 40)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res)
	if res.Detected < res.Episodes*6/10 {
		t.Fatalf("detected %d/%d", res.Detected, res.Episodes)
	}
	if res.MedianTxBefore <= 0 {
		t.Fatal("median tx-before-alert must be positive")
	}
	// The on-the-wire claim: alerts land while conversation remains.
	if res.MedianRemaining <= 0 {
		t.Fatal("alerts should preempt part of the conversation")
	}
}

func TestExtendedFeatures(t *testing.T) {
	res, err := ExtendedFeatures(smallOpts)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res)
	if res.Base.TPR < 0.9 || res.Extended.TPR < 0.9 {
		t.Fatalf("weak classifiers: base %v ext %v", res.Base.TPR, res.Extended.TPR)
	}
	// The extended set must not be materially worse.
	if res.Extended.ROCArea < res.Base.ROCArea-0.02 {
		t.Fatalf("extended AUC %v well below base %v", res.Extended.ROCArea, res.Base.ROCArea)
	}
}

func TestLearningCurve(t *testing.T) {
	res, err := LearningCurve(smallOpts)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res)
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	if last.TrainEpisodes <= first.TrainEpisodes {
		t.Fatal("sizes not increasing")
	}
	// More data must not make the classifier substantially worse.
	if last.ROCArea < first.ROCArea-0.02 {
		t.Fatalf("AUC degraded with data: %v -> %v", first.ROCArea, last.ROCArea)
	}
	if last.TPR < 0.9 {
		t.Fatalf("full-data TPR = %v", last.TPR)
	}
}

func TestCrossFamily(t *testing.T) {
	res, err := CrossFamily(smallOpts, 25)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res)
	if len(res.Rows) != 10 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// The paper's unknown-malware claim: conversation dynamics generalize
	// across families — even fully held-out kits are mostly caught.
	if res.MinTPR() < 0.6 {
		t.Fatalf("worst held-out family TPR = %v", res.MinTPR())
	}
}

func TestWriteMarkdownReport(t *testing.T) {
	var sb strings.Builder
	if err := WriteMarkdownReport(&sb, smallOpts); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# DynaMiner experiment report",
		"## Table I", "## Table III", "## Table V",
		"## Case study 1", "## Evasion resilience",
		"```",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q", want)
		}
	}
}

func TestIPToHostByServerFoldsCase(t *testing.T) {
	// Host headers off the wire are case-insensitive DNS names. Before
	// dynalint's hostfold rule, the alert-attribution join compared
	// tx.Host to the download's Server record case-sensitively, so a
	// capture carrying "CDN.Example" silently lost the client->host
	// mapping and the per-host alert rows under-counted. The join must
	// fold case (regression test for the triaged hostfold finding).
	mixed := httpstream.Transaction{
		ClientIP: netip.MustParseAddr("10.1.2.3"),
		Host:     "CDN.Example",
	}
	lower := httpstream.Transaction{
		ClientIP: netip.MustParseAddr("10.4.5.6"),
		Host:     "files.example",
	}
	downloads := []synth.Download{
		{Server: "cdn.example", HostName: "alpha"},
		{Server: "FILES.EXAMPLE", HostName: "bravo"},
	}
	got := ipToHostByServer(downloads, []httpstream.Transaction{mixed, lower})
	if got["10.1.2.3"] != "alpha" {
		t.Fatalf("mixed-case Host not attributed: %v", got)
	}
	if got["10.4.5.6"] != "bravo" {
		t.Fatalf("mixed-case Server record not attributed: %v", got)
	}
}
