// Package experiments regenerates every table and figure of the paper's
// evaluation (Section VI) plus the ablations DESIGN.md adds: dataset
// statistics (Table I, Figures 1-4, 6-9), classifier effectiveness
// (Table III, Table IV, Figure 10), the independent validation against the
// simulated AV ensemble (Table V), and both case studies (Section VI-C and
// Table VI). Each experiment returns a structured result with a String
// rendering; cmd/experiments and the root bench suite share this code.
package experiments

import (
	"math/rand"

	"dynaminer/internal/core"

	"dynaminer/internal/ml"
	"dynaminer/internal/synth"
)

// Options scales the experiments. The zero value reproduces the paper's
// dataset sizes; tests shrink them.
type Options struct {
	// Seed anchors every random choice.
	Seed int64
	// TrainInfections / TrainBenign size the ground-truth corpus
	// (defaults 770 / 980, Table I).
	TrainInfections int
	TrainBenign     int
	// ValInfections / ValBenign size the independent validation set
	// (defaults 7489 / 1500, Table V).
	ValInfections int
	ValBenign     int
	// Folds is the cross-validation fold count (default 10).
	Folds int
	// Trees is N_t (default 20).
	Trees int
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.TrainInfections == 0 {
		o.TrainInfections = 770
	}
	if o.TrainBenign == 0 {
		o.TrainBenign = 980
	}
	if o.ValInfections == 0 {
		o.ValInfections = 7489
	}
	if o.ValBenign == 0 {
		o.ValBenign = 1500
	}
	if o.Folds == 0 {
		o.Folds = 10
	}
	if o.Trees == 0 {
		o.Trees = 20
	}
	return o
}

// GroundTruth generates the training corpus for the options.
func GroundTruth(o Options) []synth.Episode {
	o = o.withDefaults()
	return synth.GenerateCorpus(synth.Config{
		Seed:       o.Seed,
		Infections: o.TrainInfections,
		Benign:     o.TrainBenign,
	})
}

// ValidationSet generates the disjoint validation corpus (a different seed
// stream than the ground truth).
func ValidationSet(o Options) []synth.Episode {
	o = o.withDefaults()
	return synth.GenerateCorpus(synth.Config{
		Seed:       o.Seed + 7777,
		Infections: o.ValInfections,
		Benign:     o.ValBenign,
	})
}

// conversations adapts a corpus to the core training pipelines.
func conversations(eps []synth.Episode) []core.LabeledConversation {
	convs := make([]core.LabeledConversation, len(eps))
	for i := range eps {
		convs[i] = core.LabeledConversation{Infection: eps[i].Infection, Txs: eps[i].Txs}
	}
	return convs
}

// BuildDataset featurizes a labeled corpus into an ML design matrix
// (Stage 1's whole-trace representation).
func BuildDataset(eps []synth.Episode) *ml.Dataset {
	return core.OfflineDataset(conversations(eps))
}

// BuildMonitorDataset featurizes a corpus the way the on-the-wire stage
// sees it (clue-extracted potential-infection subsets).
func BuildMonitorDataset(eps []synth.Episode) *ml.Dataset {
	return core.MonitorDataset(conversations(eps))
}

// trainForest fits the paper-configuration ERF on the full dataset.
func trainForest(ds *ml.Dataset, o Options) (*ml.Forest, error) {
	return ml.TrainForest(ds, ml.ForestConfig{NumTrees: o.Trees, Seed: o.Seed})
}

// trainMonitorForest fits the deployment-matched ERF used by the case
// studies and the clue-threshold ablation.
func trainMonitorForest(o Options) (*ml.Forest, error) {
	o = o.withDefaults()
	return core.TrainMonitor(conversations(GroundTruth(o)), core.TrainConfig{NumTrees: o.Trees, Seed: o.Seed})
}

func newRNG(o Options, salt int64) *rand.Rand {
	return rand.New(rand.NewSource(o.Seed*1000003 + salt))
}
