package experiments

import (
	"fmt"
	"strings"

	"dynaminer/internal/features"
	"dynaminer/internal/ml"
	"dynaminer/internal/synth"
	"dynaminer/internal/wcg"
)

// ExtendedFeatureResult compares the paper's 37-feature set against the
// 45-dimensional extended set (radius, degeneracy, assortativity, SCC
// structure, redirect diversity) under identical cross-validation — the
// "richer analytics" direction the paper's conclusion gestures at.
type ExtendedFeatureResult struct {
	Base     ml.EvalResult
	Extended ml.EvalResult
	// TopExtended lists extended features that crack the combined top-10
	// gain-ratio ranking.
	TopExtended []string
}

// buildExtendedDataset featurizes a corpus with ExtractExtended.
func buildExtendedDataset(eps []synth.Episode) *ml.Dataset {
	ds := &ml.Dataset{
		X: make([][]float64, 0, len(eps)),
		Y: make([]int, 0, len(eps)),
	}
	for i := range eps {
		ds.X = append(ds.X, features.ExtractExtended(wcg.FromTransactions(eps[i].Txs)))
		label := ml.LabelBenign
		if eps[i].Infection {
			label = ml.LabelInfection
		}
		ds.Y = append(ds.Y, label)
	}
	return ds
}

// ExtendedFeatures runs the comparison.
func ExtendedFeatures(o Options) (ExtendedFeatureResult, error) {
	o = o.withDefaults()
	eps := GroundTruth(o)
	base := BuildDataset(eps)
	ext := buildExtendedDataset(eps)

	cfg := ml.ForestConfig{NumTrees: o.Trees, Seed: o.Seed}
	baseRes, err := ml.CrossValidate(base, cfg, o.Folds, newRNG(o, 900))
	if err != nil {
		return ExtendedFeatureResult{}, fmt.Errorf("extended features (base): %w", err)
	}
	extRes, err := ml.CrossValidate(ext, cfg, o.Folds, newRNG(o, 900))
	if err != nil {
		return ExtendedFeatureResult{}, fmt.Errorf("extended features (ext): %w", err)
	}
	res := ExtendedFeatureResult{Base: baseRes, Extended: extRes}
	for _, fr := range ml.RankFeaturesCV(ext, o.Folds, newRNG(o, 901)) {
		if fr.RankMean > 10 {
			break
		}
		if fr.Feature >= features.NumFeatures {
			res.TopExtended = append(res.TopExtended, features.ExtendedName(fr.Feature))
		}
	}
	return res, nil
}

// String renders the comparison.
func (r ExtendedFeatureResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-20s %7s %7s %9s\n", "feature set", "TPR", "FPR", "ROC Area")
	fmt.Fprintf(&sb, "%-20s %7.3f %7.3f %9.3f\n", "Table II (37)", r.Base.TPR, r.Base.FPR, r.Base.ROCArea)
	fmt.Fprintf(&sb, "%-20s %7.3f %7.3f %9.3f\n", "extended (45)", r.Extended.TPR, r.Extended.FPR, r.Extended.ROCArea)
	if len(r.TopExtended) > 0 {
		fmt.Fprintf(&sb, "extended features in the combined top-10: %s\n", strings.Join(r.TopExtended, ", "))
	} else {
		fmt.Fprintf(&sb, "no extended feature cracks the combined top-10\n")
	}
	return sb.String()
}
