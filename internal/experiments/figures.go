package experiments

import (
	"fmt"
	"sort"
	"strings"

	"dynaminer/internal/graph"
	"dynaminer/internal/ml"
	"dynaminer/internal/synth"
	"dynaminer/internal/wcg"
)

// ------------------------------------------------------------ Figures 1-2

// DistRow is one slice of a categorical distribution.
type DistRow struct {
	Category string
	Count    int
	Pct      float64
}

// Figure1Result is the overall enticement-strategy distribution over
// infection episodes.
type Figure1Result struct {
	Rows []DistRow
}

// Figure1 computes the overall enticement distribution (infections only).
func Figure1(eps []synth.Episode) Figure1Result {
	counts := make(map[string]int)
	total := 0
	for i := range eps {
		if !eps[i].Infection {
			continue
		}
		counts[eps[i].Enticement]++
		total++
	}
	var res Figure1Result
	for _, cat := range []string{"google", "bing", "empty", "compromised", "redacted", "social"} {
		res.Rows = append(res.Rows, DistRow{
			Category: cat,
			Count:    counts[cat],
			Pct:      pct(counts[cat], total),
		})
	}
	return res
}

func pct(n, total int) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(n) / float64(total)
}

// String renders the distribution like the Figure 1 legend
// (category, count, percentage).
func (r Figure1Result) String() string {
	var sb strings.Builder
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-12s %5d  %5.1f%%\n", row.Category, row.Count, row.Pct)
	}
	return sb.String()
}

// Figure2Result is the per-family enticement-origin distribution.
type Figure2Result struct {
	Families   []string
	Categories []string
	// Pct[f][c] is the percentage of family f's episodes enticed via
	// category c.
	Pct [][]float64
}

// Figure2 computes the per-family enticement distribution.
func Figure2(eps []synth.Episode) Figure2Result {
	res := Figure2Result{
		Categories: []string{"google", "bing", "empty", "compromised", "redacted", "social"},
	}
	for _, f := range synth.Families {
		res.Families = append(res.Families, f.Name)
	}
	counts := make(map[string]map[string]int)
	totals := make(map[string]int)
	for i := range eps {
		if !eps[i].Infection {
			continue
		}
		if counts[eps[i].Family] == nil {
			counts[eps[i].Family] = make(map[string]int)
		}
		counts[eps[i].Family][eps[i].Enticement]++
		totals[eps[i].Family]++
	}
	for _, fam := range res.Families {
		row := make([]float64, len(res.Categories))
		for ci, cat := range res.Categories {
			row[ci] = pct(counts[fam][cat], totals[fam])
		}
		res.Pct = append(res.Pct, row)
	}
	return res
}

// String renders the per-family matrix.
func (r Figure2Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s", "Family")
	for _, c := range r.Categories {
		fmt.Fprintf(&sb, " %11s", c)
	}
	sb.WriteByte('\n')
	for fi, fam := range r.Families {
		fmt.Fprintf(&sb, "%-12s", fam)
		for ci := range r.Categories {
			fmt.Fprintf(&sb, " %10.1f%%", r.Pct[fi][ci])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// ------------------------------------------------------------ Figures 3-4

// PropRow compares one average measure between classes.
type PropRow struct {
	Property  string
	Infection float64
	Benign    float64
}

// PropResult is a class-comparison of average measures (Figures 3 and 4).
type PropResult struct {
	Title string
	Rows  []PropRow
}

// String renders the comparison.
func (r PropResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-26s %12s %12s\n", r.Title, "Infection", "Benign")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-26s %12.4f %12.4f\n", row.Property, row.Infection, row.Benign)
	}
	return sb.String()
}

// classAverager accumulates per-class means of named measures.
type classAverager struct {
	names []string
	inf   []float64
	ben   []float64
	nInf  int
	nBen  int
}

func newClassAverager(names []string) *classAverager {
	return &classAverager{
		names: names,
		inf:   make([]float64, len(names)),
		ben:   make([]float64, len(names)),
	}
}

func (a *classAverager) add(infection bool, vals []float64) {
	if infection {
		a.nInf++
		for i, v := range vals {
			a.inf[i] += v
		}
	} else {
		a.nBen++
		for i, v := range vals {
			a.ben[i] += v
		}
	}
}

func (a *classAverager) result(title string) PropResult {
	res := PropResult{Title: title}
	for i, name := range a.names {
		row := PropRow{Property: name}
		if a.nInf > 0 {
			row.Infection = a.inf[i] / float64(a.nInf)
		}
		if a.nBen > 0 {
			row.Benign = a.ben[i] / float64(a.nBen)
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// Figure3 computes the average graph-property measures per class
// (nodes, edges, diameter, degree, volume, centralities, connectedness).
func Figure3(eps []synth.Episode) PropResult {
	avg := newClassAverager([]string{
		"nodes", "edges", "diameter", "max-degree", "volume", "density",
		"degree-centrality", "closeness-centrality", "betweenness-centrality",
		"load-centrality", "node-connectivity", "clustering-coeff",
		"neighbor-degree", "degree-connectivity", "pagerank",
	})
	for i := range eps {
		g := wcg.FromTransactions(eps[i].Txs).Graph()
		avg.add(eps[i].Infection, []float64{
			float64(g.N()), float64(g.M()), float64(g.Diameter()),
			float64(g.MaxDegree()), float64(g.Volume()), g.Density(),
			graph.Mean(g.DegreeCentrality()), graph.Mean(g.ClosenessCentrality()),
			graph.Mean(g.BetweennessCentrality()), graph.Mean(g.LoadCentrality()),
			float64(g.NodeConnectivity()), g.AvgClusteringCoefficient(),
			graph.Mean(g.AvgNeighborDegrees()), g.AvgDegreeConnectivity(),
			graph.Mean(g.PageRank(0.85, 100, 1e-10)),
		})
	}
	return avg.result("Figure 3: avg graph properties")
}

// Figure4 computes the average HTTP header element counts per class.
func Figure4(eps []synth.Episode) PropResult {
	avg := newClassAverager([]string{
		"GETs", "POSTs", "HTTP-20X", "HTTP-30X", "HTTP-40X",
		"redirections", "referrer-set", "referrer-empty",
	})
	for i := range eps {
		s := wcg.FromTransactions(eps[i].Txs).Summarize()
		avg.add(eps[i].Infection, []float64{
			float64(s.GETs), float64(s.POSTs), float64(s.HTTP20X),
			float64(s.HTTP30X), float64(s.HTTP40X),
			float64(s.Redirects.TotalRedirects),
			float64(s.RefererSet), float64(s.RefererEmpty),
		})
	}
	return avg.result("Figure 4: avg HTTP header elements")
}

// --------------------------------------------------------------- Figure 6

// Figure6Result is the example WCG rendering.
type Figure6Result struct {
	DOT   string
	Order int
	Size  int
}

// Figure6 builds an example Angler WCG (as in the paper's Figure 6) and
// renders it as Graphviz DOT.
func Figure6(o Options) Figure6Result {
	o = o.withDefaults()
	rng := newRNG(o, 6)
	ep := synth.GenerateInfection("Angler", corpusEpoch, rng)
	w := wcg.FromTransactions(ep.Txs)
	return Figure6Result{
		DOT:   w.DOT("Angler exploit kit WCG (synthetic)"),
		Order: w.Order(),
		Size:  w.Size(),
	}
}

// String returns the DOT source.
func (r Figure6Result) String() string {
	return fmt.Sprintf("order=%d size=%d\n%s", r.Order, r.Size, r.DOT)
}

// ------------------------------------------------------------ Figures 7-9

// SeriesResult carries the per-class distribution of one graph measure as
// decile series (p0, p10, ..., p100), the data behind Figures 7-9.
type SeriesResult struct {
	Metric    string
	Infection [11]float64
	Benign    [11]float64
	InfMean   float64
	BenMean   float64
}

// Figures7to9 computes the distributions of average node connectivity
// (Fig. 7), average betweenness centrality (Fig. 8), and average closeness
// centrality (Fig. 9).
func Figures7to9(eps []synth.Episode) []SeriesResult {
	metrics := []string{"avg-node-connectivity", "avg-betweenness-centrality", "avg-closeness-centrality"}
	var inf, ben [3][]float64
	for i := range eps {
		g := wcg.FromTransactions(eps[i].Txs).Graph()
		vals := [3]float64{
			float64(g.NodeConnectivity()),
			graph.Mean(g.BetweennessCentrality()),
			graph.Mean(g.ClosenessCentrality()),
		}
		for m := 0; m < 3; m++ {
			if eps[i].Infection {
				inf[m] = append(inf[m], vals[m])
			} else {
				ben[m] = append(ben[m], vals[m])
			}
		}
	}
	out := make([]SeriesResult, 3)
	for m := 0; m < 3; m++ {
		out[m] = SeriesResult{
			Metric:    metrics[m],
			Infection: deciles(inf[m]),
			Benign:    deciles(ben[m]),
			InfMean:   mean(inf[m]),
			BenMean:   mean(ben[m]),
		}
	}
	return out
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func deciles(xs []float64) [11]float64 {
	var out [11]float64
	if len(xs) == 0 {
		return out
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	for i := 0; i <= 10; i++ {
		idx := i * (len(sorted) - 1) / 10
		out[i] = sorted[idx]
	}
	return out
}

// String renders one decile series.
func (r SeriesResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s (mean: infection %.4f, benign %.4f)\n", r.Metric, r.InfMean, r.BenMean)
	fmt.Fprintf(&sb, "  %-10s", "pct")
	for i := 0; i <= 10; i++ {
		fmt.Fprintf(&sb, " %8d", i*10)
	}
	fmt.Fprintf(&sb, "\n  %-10s", "infection")
	for _, v := range r.Infection {
		fmt.Fprintf(&sb, " %8.4f", v)
	}
	fmt.Fprintf(&sb, "\n  %-10s", "benign")
	for _, v := range r.Benign {
		fmt.Fprintf(&sb, " %8.4f", v)
	}
	sb.WriteByte('\n')
	return sb.String()
}

// -------------------------------------------------------------- Figure 10

// Figure10Result is the ROC curve of the ERF on all features.
type Figure10Result struct {
	Points []ml.ROCPoint
	AUC    float64
}

// Figure10 computes the cross-validated ROC curve of the full-feature ERF.
func Figure10(ds *ml.Dataset, o Options) (Figure10Result, error) {
	o = o.withDefaults()
	folds := ml.StratifiedKFold(ds.Y, o.Folds, newRNG(o, 10))
	var scores []float64
	var labels []int
	for fi, test := range folds {
		train := ds.Subset(ml.TrainIndices(ds.Len(), test))
		forest, err := ml.TrainForest(train, ml.ForestConfig{NumTrees: o.Trees, Seed: o.Seed + int64(fi)})
		if err != nil {
			return Figure10Result{}, err
		}
		testX := make([][]float64, len(test))
		for j, i := range test {
			testX[j] = ds.X[i]
			labels = append(labels, ds.Y[i])
		}
		scores = append(scores, forest.ScoresParallel(testX, 0)...)
	}
	curve := ml.ROC(scores, labels)
	return Figure10Result{Points: curve, AUC: ml.AUC(curve)}, nil
}

// String renders a downsampled curve.
func (r Figure10Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "ROC curve (AUC = %.3f)\n%8s %8s\n", r.AUC, "FPR", "TPR")
	step := 1
	if len(r.Points) > 25 {
		step = len(r.Points) / 25
	}
	for i := 0; i < len(r.Points); i += step {
		fmt.Fprintf(&sb, "%8.4f %8.4f\n", r.Points[i].FPR, r.Points[i].TPR)
	}
	last := r.Points[len(r.Points)-1]
	fmt.Fprintf(&sb, "%8.4f %8.4f\n", last.FPR, last.TPR)
	return sb.String()
}
