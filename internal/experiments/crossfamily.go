package experiments

import (
	"fmt"
	"strings"

	"dynaminer/internal/httpstream"
	"dynaminer/internal/synth"
)

// CrossFamilyRow measures recall on one family when the classifier never
// saw that family during training.
type CrossFamilyRow struct {
	HeldOut  string
	Episodes int
	Detected int
	TPR      float64
}

// CrossFamilyResult is the A9 extension: leave-one-family-out
// generalization, probing the paper's claim that payload-agnostic
// conversation dynamics catch *unknown* malware — here, whole unknown
// exploit-kit families.
type CrossFamilyResult struct {
	Rows []CrossFamilyRow
}

// CrossFamily trains once per family on a corpus with that family removed
// and measures recall on fresh episodes of the held-out family.
func CrossFamily(o Options, perFamily int) (CrossFamilyResult, error) {
	o = o.withDefaults()
	if perFamily <= 0 {
		perFamily = 50
	}
	full := GroundTruth(o)
	rng := newRNG(o, 1000)

	var res CrossFamilyResult
	for _, fam := range synth.Families {
		train := make([]synth.Episode, 0, len(full))
		for i := range full {
			if full[i].Family != fam.Name {
				train = append(train, full[i])
			}
		}
		forest, err := trainForest(BuildDataset(train), o)
		if err != nil {
			return CrossFamilyResult{}, fmt.Errorf("cross-family %s: %w", fam.Name, err)
		}
		// Generate first (preserving RNG order), then featurize and score
		// the whole family as one batch.
		txss := make([][]httpstream.Transaction, perFamily)
		for i := 0; i < perFamily; i++ {
			txss[i] = synth.GenerateInfection(fam.Name, corpusEpoch, rng).Txs
		}
		detected := 0
		for _, s := range batchScores(forest, txss) {
			if s > 0.5 {
				detected++
			}
		}
		res.Rows = append(res.Rows, CrossFamilyRow{
			HeldOut:  fam.Name,
			Episodes: perFamily,
			Detected: detected,
			TPR:      float64(detected) / float64(perFamily),
		})
	}
	return res, nil
}

// MinTPR returns the worst held-out-family recall.
func (r CrossFamilyResult) MinTPR() float64 {
	minT := 1.0
	for _, row := range r.Rows {
		if row.TPR < minT {
			minT = row.TPR
		}
	}
	return minT
}

// String renders the table.
func (r CrossFamilyResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %9s %9s %8s\n", "held out", "episodes", "detected", "TPR")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-12s %9d %9d %7.1f%%\n", row.HeldOut, row.Episodes, row.Detected, 100*row.TPR)
	}
	return sb.String()
}
