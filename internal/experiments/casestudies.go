package experiments

import (
	"fmt"
	"strings"
	"time"

	"dynaminer/internal/detector"
	"dynaminer/internal/httpstream"
	"dynaminer/internal/synth"
	"dynaminer/internal/vtsim"
)

// corpusEpoch anchors case-study timestamps (July 10 2016, the EURO2016
// final of Section VI-C).
var corpusEpoch = time.Date(2016, 7, 10, 19, 0, 0, 0, time.UTC)

// ------------------------------------------------------- Case study 1

// CaseStudy1Result is the forensic replay of the free-streaming session.
type CaseStudy1Result struct {
	Transactions   int
	Downloads      int
	MaliciousDrops int
	Alerts         int
	AlertPayloads  []string // payload classes of the alerts
	// VTFlaggedAtCapture is how many of the alerted payloads the AV
	// ensemble already flags when the capture is taken.
	VTFlaggedAtCapture int
	// FreshPayloadLagDays is how many days after the capture the AV
	// ensemble first flags the remaining payload (the paper's 11 days).
	FreshPayloadLagDays int
	RedirectThreshold   int
}

// CaseStudy1 trains the ERF on the ground-truth corpus and replays the
// 90-minute streaming-session capture through the on-the-wire engine with
// redirect threshold 3, then submits every alerted payload to the AV
// simulator at capture time and tracks the fresh payload's detection lag.
func CaseStudy1(o Options) (CaseStudy1Result, error) {
	o = o.withDefaults()
	forest, err := trainMonitorForest(o)
	if err != nil {
		return CaseStudy1Result{}, err
	}
	ss := synth.GenerateStreamingSession(corpusEpoch, newRNG(o, 101))

	res := CaseStudy1Result{
		Transactions:      len(ss.Episode.Txs),
		Downloads:         len(ss.Downloads),
		RedirectThreshold: 3,
	}
	for _, d := range ss.Downloads {
		if d.Malicious {
			res.MaliciousDrops++
		}
	}

	eng := detector.New(detector.Config{RedirectThreshold: 3}, forest)
	alerts := eng.ProcessAll(ss.Episode.Txs)
	res.Alerts = len(alerts)
	for _, a := range alerts {
		res.AlertPayloads = append(res.AlertPayloads, a.TriggerPayload.String())
	}

	// Submit the malicious payloads to the AV ensemble at capture time.
	av := vtsim.Default()
	captureEnd := corpusEpoch.Add(2 * time.Hour)
	for _, d := range ss.Downloads {
		if !d.Malicious {
			continue
		}
		if av.Scan(d.ID, true, d.FirstSeen, captureEnd).Flagged(av.Threshold) {
			res.VTFlaggedAtCapture++
			continue
		}
		if lag := av.DetectionDate(d.ID, d.FirstSeen, 60); lag > res.FreshPayloadLagDays {
			res.FreshPayloadLagDays = lag
		}
	}
	return res, nil
}

// String renders the case-study report.
func (r CaseStudy1Result) String() string {
	return fmt.Sprintf(
		"forensic replay: %d transactions, %d downloads (%d malicious)\n"+
			"redirect threshold %d -> %d alerts (payloads: %s)\n"+
			"AV ensemble at capture time: %d/%d alerted payloads flagged\n"+
			"remaining payload first flagged by AV %d days later\n",
		r.Transactions, r.Downloads, r.MaliciousDrops,
		r.RedirectThreshold, r.Alerts, strings.Join(r.AlertPayloads, ", "),
		r.VTFlaggedAtCapture, r.Alerts, r.FreshPayloadLagDays)
}

// ---------------------------------------------------------- Table VI

// TableVIRow is one host column of the live case study.
type TableVIRow struct {
	Host        string
	OS          string
	PDF         int
	Executable  int
	Flash       int
	Silverlight int
	JAR         int
	AvgChain    float64
	MaxChain    int
	Alerts      int
}

// TableVIResult is the regenerated Table VI plus the AV comparison notes.
type TableVIResult struct {
	Rows []TableVIRow
	// Hours is the monitored window (48).
	Hours int
	// VTFlaggedAlerted counts alerted payloads the AV ensemble confirms.
	VTFlaggedAlerted int
	// VTOnlyPDFs counts the trojanized PDFs only the AV ensemble catches
	// (content-borne maliciousness invisible to payload-agnostic
	// analysis).
	VTOnlyPDFs int
	// TotalDownloads across all hosts (62 in the paper).
	TotalDownloads int
}

// TableVI runs the 48-hour three-host mini-enterprise live study: the
// engine watches the interleaved proxy stream, and every downloaded file
// is afterwards submitted to the AV simulator.
func TableVI(o Options) (TableVIResult, error) {
	o = o.withDefaults()
	forest, err := trainMonitorForest(o)
	if err != nil {
		return TableVIResult{}, err
	}
	ec := synth.GenerateEnterprise48h(corpusEpoch, newRNG(o, 202))

	// One engine sees all three hosts, as a proxy deployment would. The
	// live study's chains run as short as 2, so the clue threshold is 2.
	eng := detector.New(detector.Config{RedirectThreshold: 2}, forest)
	alerts := eng.ProcessAll(ec.Txs)

	// Attribute alerts to hosts via client IPs observed per host name.
	clientHost := ipToHostByServer(ec.Downloads, ec.Txs)

	res := TableVIResult{Hours: 48, TotalDownloads: len(ec.Downloads)}
	rows := make(map[string]*TableVIRow)
	for _, hp := range synth.Table6Hosts {
		rows[hp.Name] = &TableVIRow{Host: hp.Name, OS: hp.OS}
	}
	for _, d := range ec.Downloads {
		row := rows[d.HostName]
		if row == nil {
			continue
		}
		switch d.Ext {
		case "pdf":
			row.PDF++
		case "exe", "dmg":
			row.Executable++
		case "jar":
			row.JAR++
		case "swf":
			row.Flash++
		case "xap":
			row.Silverlight++
		}
	}
	for _, a := range alerts {
		if hn, ok := clientHost[a.Client.String()]; ok {
			rows[hn].Alerts++
		}
	}
	// Redirect chain statistics per host from that host's infections.
	chainStats(ec, rows)

	// AV comparison: scan all downloads a day after the window closes.
	av := vtsim.Default()
	scanAt := corpusEpoch.Add(72 * time.Hour)
	for _, d := range ec.Downloads {
		if !d.Malicious {
			continue
		}
		if av.Scan(d.ID, true, d.FirstSeen, scanAt).Flagged(av.Threshold) {
			if d.Ext == "pdf" {
				res.VTOnlyPDFs++
			} else {
				res.VTFlaggedAlerted++
			}
		}
	}
	for _, hp := range synth.Table6Hosts {
		res.Rows = append(res.Rows, *rows[hp.Name])
	}
	return res, nil
}

// ipToHostByServer maps observed client IPs to monitored host names: each
// download names the server that delivered it, so the client that talked
// to that server is the download's host. Host names off the wire are
// case-insensitive DNS names, so the match folds case — a capture whose
// Host headers disagree on case with the download records must still
// attribute every alert.
func ipToHostByServer(downloads []synth.Download, txs []httpstream.Transaction) map[string]string {
	ipToHost := make(map[string]string)
	for _, d := range downloads {
		for _, tx := range txs {
			if strings.EqualFold(tx.Host, d.Server) {
				ipToHost[tx.ClientIP.String()] = d.HostName
				break
			}
		}
	}
	return ipToHost
}

// chainStats fills average and maximum redirect-chain length per host.
func chainStats(ec synth.EnterpriseCapture, rows map[string]*TableVIRow) {
	ipToHost := ipToHostByServer(ec.Downloads, ec.Txs)
	for name, row := range rows {
		chains := chainLengths(ec, name, ipToHost)
		if len(chains) == 0 {
			continue
		}
		sum, maxLen := 0, 0
		for _, c := range chains {
			sum += c
			if c > maxLen {
				maxLen = c
			}
		}
		row.AvgChain = float64(sum) / float64(len(chains))
		row.MaxChain = maxLen
	}
}

// chainLengths extracts redirect-run lengths for one monitored host:
// maximal runs of consecutive 3xx responses in its client stream, with the
// landing-page iframe hop counted once per run.
func chainLengths(ec synth.EnterpriseCapture, hostName string, ipToHost map[string]string) []int {
	var lengths []int
	run := 0
	for _, tx := range ec.Txs {
		if ipToHost[tx.ClientIP.String()] != hostName {
			continue
		}
		if tx.StatusCode >= 300 && tx.StatusCode < 400 {
			run++
			continue
		}
		if run > 0 {
			lengths = append(lengths, run+1) // + landing hop
			run = 0
		}
	}
	if run > 0 {
		lengths = append(lengths, run+1)
	}
	return lengths
}

// String renders Table VI.
func (r TableVIResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-22s", fmt.Sprintf("Total (%dh)", r.Hours))
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, " %12s", row.Host)
	}
	sb.WriteByte('\n')
	line := func(name string, get func(TableVIRow) string) {
		fmt.Fprintf(&sb, "%-22s", name)
		for _, row := range r.Rows {
			fmt.Fprintf(&sb, " %12s", get(row))
		}
		sb.WriteByte('\n')
	}
	line("PDF", func(x TableVIRow) string { return fmt.Sprint(x.PDF) })
	line("Executable", func(x TableVIRow) string { return fmt.Sprint(x.Executable) })
	line("Flash", func(x TableVIRow) string { return fmt.Sprint(x.Flash) })
	line("Silverlight", func(x TableVIRow) string { return fmt.Sprint(x.Silverlight) })
	line("JAR", func(x TableVIRow) string { return fmt.Sprint(x.JAR) })
	line("Avg. Redirection Chain", func(x TableVIRow) string { return fmt.Sprintf("%.1f", x.AvgChain) })
	line("Max. Redirection Chain", func(x TableVIRow) string { return fmt.Sprint(x.MaxChain) })
	line("DynaMiner Alerts", func(x TableVIRow) string { return fmt.Sprint(x.Alerts) })
	fmt.Fprintf(&sb, "downloads=%d, AV confirms %d alerted payloads + %d trojan PDFs DynaMiner cannot see\n",
		r.TotalDownloads, r.VTFlaggedAlerted, r.VTOnlyPDFs)
	return sb.String()
}
