package experiments

import (
	"fmt"
	"strings"

	"dynaminer/internal/features"
	"dynaminer/internal/ml"
	"dynaminer/internal/synth"
	"dynaminer/internal/wcg"
)

// LearningCurveRow measures the classifier at one training-set size.
type LearningCurveRow struct {
	TrainEpisodes int
	TPR           float64
	FPR           float64
	ROCArea       float64
}

// LearningCurveResult is the A8 extension: how much ground truth the
// approach needs. The paper's dataset took three years to assemble; this
// curve shows where the returns flatten.
type LearningCurveResult struct {
	Rows []LearningCurveRow
}

// LearningCurve trains at increasing fractions of the ground truth and
// evaluates each model on one fixed held-out set.
func LearningCurve(o Options) (LearningCurveResult, error) {
	o = o.withDefaults()
	full := GroundTruth(o)
	holdout := synth.GenerateCorpus(synth.Config{
		Seed:       o.Seed + 31337,
		Infections: o.TrainInfections / 2,
		Benign:     o.TrainBenign / 2,
	})
	// Featurize the fixed holdout as one batch; the slab-backed vectors are
	// retained across every training fraction.
	ws := make([]*wcg.WCG, len(holdout))
	testY := make([]int, 0, len(holdout))
	for i := range holdout {
		ws[i] = wcg.FromTransactions(holdout[i].Txs)
		label := ml.LabelBenign
		if holdout[i].Infection {
			label = ml.LabelInfection
		}
		testY = append(testY, label)
	}
	testX := features.ExtractBatch(ws)

	var res LearningCurveResult
	for _, frac := range []float64{0.05, 0.1, 0.25, 0.5, 1.0} {
		n := int(float64(len(full)) * frac)
		if n < 10 {
			n = 10
		}
		subset := full[:n]
		forest, err := trainForest(BuildDataset(subset), o)
		if err != nil {
			return LearningCurveResult{}, fmt.Errorf("learning curve at %d: %w", n, err)
		}
		ev := ml.Evaluate(forest, testX, testY)
		res.Rows = append(res.Rows, LearningCurveRow{
			TrainEpisodes: n, TPR: ev.TPR, FPR: ev.FPR, ROCArea: ev.ROCArea,
		})
	}
	return res, nil
}

// String renders the curve.
func (r LearningCurveResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%9s %7s %7s %9s\n", "episodes", "TPR", "FPR", "ROC Area")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%9d %7.3f %7.3f %9.3f\n", row.TrainEpisodes, row.TPR, row.FPR, row.ROCArea)
	}
	return sb.String()
}
