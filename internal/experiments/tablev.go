package experiments

import (
	"fmt"
	"hash/fnv"
	"strings"
	"time"

	"dynaminer/internal/httpstream"
	"dynaminer/internal/vtsim"
)

// TableVRow is one system's row of the independent-validation comparison.
type TableVRow struct {
	System           string
	BenignTested     int
	InfectionTested  int
	BenignCorrect    int
	InfectionCorrect int
	FalsePositives   int
	FalseNegatives   int
	Timeouts         int // AV ensemble only
}

// TableVResult is the regenerated Table V.
type TableVResult struct {
	Rows []TableVRow
}

// TableV trains the ERF on the ground-truth corpus and compares it against
// the simulated AV ensemble on a disjoint validation set. The AV ensemble
// scans each infection's primary payload at its (deterministic per-sample)
// in-the-wild age, reproducing the signature-lag disadvantage the paper
// measures.
func TableV(o Options) (TableVResult, error) {
	o = o.withDefaults()
	train := BuildDataset(GroundTruth(o))
	forest, err := trainForest(train, o)
	if err != nil {
		return TableVResult{}, err
	}
	val := ValidationSet(o)

	av := vtsim.Default()
	scanTime := time.Date(2016, 8, 1, 0, 0, 0, 0, time.UTC)

	// Featurize and score the whole validation set as one batch.
	txss := make([][]httpstream.Transaction, len(val))
	for i := range val {
		txss[i] = val[i].Txs
	}
	scores := batchScores(forest, txss)

	dm := TableVRow{System: "DynaMiner"}
	vt := TableVRow{System: "VirusTotal(sim)"}
	for i := range val {
		ep := &val[i]
		pred := scores[i] > 0.5

		id := fmt.Sprintf("val-%s-%d", ep.Family, i)
		// Deterministic per-sample in-the-wild age in [0, 90) days.
		age := time.Duration(sampleUnit(id) * 90 * 24 * float64(time.Hour))
		verdict := av.Scan(id, ep.Infection, scanTime.Add(-age), scanTime)
		flagged := verdict.Flagged(av.Threshold)

		if ep.Infection {
			dm.InfectionTested++
			vt.InfectionTested++
			if pred {
				dm.InfectionCorrect++
			} else {
				dm.FalseNegatives++
			}
			if flagged {
				vt.InfectionCorrect++
			} else {
				vt.FalseNegatives++
				if verdict.TimedOut {
					vt.Timeouts++
				}
			}
		} else {
			dm.BenignTested++
			vt.BenignTested++
			if pred {
				dm.FalsePositives++
			} else {
				dm.BenignCorrect++
			}
			if flagged {
				vt.FalsePositives++
			} else {
				vt.BenignCorrect++
			}
		}
	}
	return TableVResult{Rows: []TableVRow{dm, vt}}, nil
}

// sampleUnit maps an id to a deterministic uniform in [0,1).
func sampleUnit(id string) float64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(id))
	return float64(h.Sum64()>>11) / float64(1<<53)
}

// InfectionAccuracy returns the infection classification rate of a row.
func (r TableVRow) InfectionAccuracy() float64 {
	if r.InfectionTested == 0 {
		return 0
	}
	return float64(r.InfectionCorrect) / float64(r.InfectionTested)
}

// BenignAccuracy returns the benign classification rate of a row.
func (r TableVRow) BenignAccuracy() float64 {
	if r.BenignTested == 0 {
		return 0
	}
	return float64(r.BenignCorrect) / float64(r.BenignTested)
}

// String renders Table V.
func (r TableVResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-16s %22s %24s %6s %6s %9s\n",
		"System", "Benign correct", "Infection correct", "FP", "FN", "Timeouts")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-16s %12d/%d (%4.1f%%) %13d/%d (%5.2f%%) %6d %6d %9d\n",
			row.System,
			row.BenignCorrect, row.BenignTested, 100*row.BenignAccuracy(),
			row.InfectionCorrect, row.InfectionTested, 100*row.InfectionAccuracy(),
			row.FalsePositives, row.FalseNegatives, row.Timeouts)
	}
	return sb.String()
}
