package experiments

import (
	"fmt"
	"strings"

	"dynaminer/internal/features"
	"dynaminer/internal/ml"
	"dynaminer/internal/synth"
	"dynaminer/internal/wcg"
)

// ---------------------------------------------------------------- Table I

// TableIRow is one family row of the ground-truth dataset statistics.
type TableIRow struct {
	Family   string
	Episodes int
	HostsMin int
	HostsMax int
	HostsAvg float64
	RedirMin int
	RedirMax int
	RedirAvg float64
	PDF      int
	EXE      int
	JAR      int
	SWF      int
	Crypt    int
	JS       int
}

// TableIResult is the regenerated Table I.
type TableIResult struct {
	Rows []TableIRow
}

// TableI computes the dataset statistics of a corpus, one row per family
// with Benign first, matching the paper's Table I layout.
func TableI(eps []synth.Episode) TableIResult {
	type acc struct {
		row   TableIRow
		hosts int
		redir int
	}
	order := []string{"Benign"}
	for _, f := range synth.Families {
		order = append(order, f.Name)
	}
	accs := make(map[string]*acc, len(order))
	for _, name := range order {
		accs[name] = &acc{row: TableIRow{Family: name, HostsMin: 1 << 30, RedirMin: 1 << 30}}
	}
	for i := range eps {
		a, ok := accs[eps[i].Family]
		if !ok {
			continue
		}
		w := wcg.FromTransactions(eps[i].Txs)
		s := w.Summarize()
		a.row.Episodes++
		hosts := s.UniqueHosts
		redir := s.Redirects.MaxChainLen
		a.hosts += hosts
		a.redir += redir
		if hosts < a.row.HostsMin {
			a.row.HostsMin = hosts
		}
		if hosts > a.row.HostsMax {
			a.row.HostsMax = hosts
		}
		if redir < a.row.RedirMin {
			a.row.RedirMin = redir
		}
		if redir > a.row.RedirMax {
			a.row.RedirMax = redir
		}
		a.row.PDF += s.PayloadCounts[wcg.PayloadPDF]
		a.row.EXE += s.PayloadCounts[wcg.PayloadEXE]
		a.row.JAR += s.PayloadCounts[wcg.PayloadJAR]
		a.row.SWF += s.PayloadCounts[wcg.PayloadSWF]
		a.row.Crypt += s.PayloadCounts[wcg.PayloadCrypt]
		a.row.JS += s.PayloadCounts[wcg.PayloadJS]
	}
	var res TableIResult
	for _, name := range order {
		a := accs[name]
		if a.row.Episodes == 0 {
			a.row.HostsMin, a.row.RedirMin = 0, 0
			res.Rows = append(res.Rows, a.row)
			continue
		}
		a.row.HostsAvg = float64(a.hosts) / float64(a.row.Episodes)
		a.row.RedirAvg = float64(a.redir) / float64(a.row.Episodes)
		res.Rows = append(res.Rows, a.row)
	}
	return res
}

// String renders the table in the paper's column layout.
func (r TableIResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %6s | %4s %4s %5s | %4s %4s %5s | %5s %5s %5s %5s %6s %6s\n",
		"Family", "Eps", "Hmin", "Hmax", "Havg", "Rmin", "Rmax", "Ravg",
		"pdf", "exe", "jar", "swf", "crypt", "js")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-12s %6d | %4d %4d %5.1f | %4d %4d %5.1f | %5d %5d %5d %5d %6d %6d\n",
			row.Family, row.Episodes, row.HostsMin, row.HostsMax, row.HostsAvg,
			row.RedirMin, row.RedirMax, row.RedirAvg,
			row.PDF, row.EXE, row.JAR, row.SWF, row.Crypt, row.JS)
	}
	return sb.String()
}

// -------------------------------------------------------------- Table III

// TableIIIRow is one feature-ablation row.
type TableIIIRow struct {
	Features string
	TPR      float64
	FPR      float64
	FScore   float64
	ROCArea  float64
}

// TableIIIResult is the regenerated Table III.
type TableIIIResult struct {
	Rows []TableIIIRow
}

// TableIII runs the feature-group ablation: all 37 features, graph
// features only, and everything but graph features, each under k-fold CV
// with the paper's ERF configuration.
func TableIII(ds *ml.Dataset, o Options) (TableIIIResult, error) {
	o = o.withDefaults()
	groups := []struct {
		name string
		cols []int
	}{
		{"All", nil},
		{"GFs", features.Indices(features.GF)},
		{"HLFs+HFs+TFs", features.Indices(features.HLF, features.HF, features.TF)},
	}
	var res TableIIIResult
	for gi, g := range groups {
		sub := ds
		if g.cols != nil {
			sub = ds.SelectFeatures(g.cols)
		}
		ev, err := ml.CrossValidate(sub, ml.ForestConfig{NumTrees: o.Trees, Seed: o.Seed}, o.Folds, newRNG(o, int64(gi)))
		if err != nil {
			return TableIIIResult{}, fmt.Errorf("table III %s: %w", g.name, err)
		}
		res.Rows = append(res.Rows, TableIIIRow{
			Features: g.name, TPR: ev.TPR, FPR: ev.FPR, FScore: ev.FScore, ROCArea: ev.ROCArea,
		})
	}
	return res, nil
}

// String renders Table III.
func (r TableIIIResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-14s %6s %6s %8s %9s\n", "Features", "TPR", "FPR", "F-score", "ROC Area")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-14s %6.3f %6.3f %8.3f %9.3f\n", row.Features, row.TPR, row.FPR, row.FScore, row.ROCArea)
	}
	return sb.String()
}

// --------------------------------------------------------------- Table IV

// TableIVRow is one feature-ranking row.
type TableIVRow struct {
	Name          string
	Group         features.Group
	Novel         bool
	GainRatioMean float64
	GainRatioStd  float64
	RankMean      float64
	RankStd       float64
}

// TableIVResult is the regenerated Table IV (top-20 features).
type TableIVResult struct {
	Rows []TableIVRow
}

// TableIV ranks the 37 features by gain ratio under k-fold CV and returns
// the top 20.
func TableIV(ds *ml.Dataset, o Options) TableIVResult {
	o = o.withDefaults()
	ranks := ml.RankFeaturesCV(ds, o.Folds, newRNG(o, 40))
	var res TableIVResult
	for i, fr := range ranks {
		if i >= 20 {
			break
		}
		res.Rows = append(res.Rows, TableIVRow{
			Name:          features.Name(fr.Feature),
			Group:         features.GroupOf(fr.Feature),
			Novel:         features.IsNovel(fr.Feature),
			GainRatioMean: fr.GainRatioMean,
			GainRatioStd:  fr.GainRatioStd,
			RankMean:      fr.RankMean,
			RankStd:       fr.RankStd,
		})
	}
	return res
}

// GraphFeatureCount returns how many of the ranked rows are graph features
// (the paper reports 15 of the top 20).
func (r TableIVResult) GraphFeatureCount() int {
	n := 0
	for _, row := range r.Rows {
		if row.Group == features.GF {
			n++
		}
	}
	return n
}

// String renders Table IV.
func (r TableIVResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-28s %-5s %-5s %18s %16s\n", "Feature", "Group", "Novel", "Gain Ratio", "Average Rank")
	for _, row := range r.Rows {
		novel := ""
		if row.Novel {
			novel = "yes"
		}
		fmt.Fprintf(&sb, "%-28s %-5s %-5s %9.3f ± %5.3f %9.1f ± %4.2f\n",
			row.Name, row.Group, novel, row.GainRatioMean, row.GainRatioStd, row.RankMean, row.RankStd)
	}
	return sb.String()
}
