package experiments

import (
	"fmt"
	"strings"

	"dynaminer/internal/httpstream"
	"dynaminer/internal/synth"
)

// FamilyRow is one family's detection measurement.
type FamilyRow struct {
	Family     string
	Episodes   int
	Detected   int
	OfflineTPR float64
}

// PerFamilyResult breaks the offline classifier's recall down by
// exploit-kit family — an extension the paper's per-family dataset makes
// natural but that its evaluation aggregates away.
type PerFamilyResult struct {
	Rows []FamilyRow
}

// PerFamily trains on the ground truth and measures recall per family on
// freshly generated episodes.
func PerFamily(o Options, perFamily int) (PerFamilyResult, error) {
	o = o.withDefaults()
	if perFamily <= 0 {
		perFamily = 50
	}
	forest, err := trainForest(BuildDataset(GroundTruth(o)), o)
	if err != nil {
		return PerFamilyResult{}, err
	}
	rng := newRNG(o, 700)
	var res PerFamilyResult
	for _, fam := range synth.Families {
		// Generate first (preserving RNG order), then featurize and score
		// the whole family as one batch.
		txss := make([][]httpstream.Transaction, perFamily)
		for i := 0; i < perFamily; i++ {
			txss[i] = synth.GenerateInfection(fam.Name, corpusEpoch, rng).Txs
		}
		detected := 0
		for _, s := range batchScores(forest, txss) {
			if s > 0.5 {
				detected++
			}
		}
		res.Rows = append(res.Rows, FamilyRow{
			Family:     fam.Name,
			Episodes:   perFamily,
			Detected:   detected,
			OfflineTPR: float64(detected) / float64(perFamily),
		})
	}
	return res, nil
}

// String renders the per-family table.
func (r PerFamilyResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %9s %9s %8s\n", "family", "episodes", "detected", "TPR")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-12s %9d %9d %7.1f%%\n", row.Family, row.Episodes, row.Detected, 100*row.OfflineTPR)
	}
	return sb.String()
}
