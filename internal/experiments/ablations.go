package experiments

import (
	"fmt"
	"strings"

	"dynaminer/internal/detector"
	"dynaminer/internal/ml"
	"dynaminer/internal/synth"
)

// ------------------------------------------------- A1: clue threshold

// ClueThresholdRow measures the on-the-wire engine at one redirect
// threshold L.
type ClueThresholdRow struct {
	Threshold     int
	DetectionRate float64 // infection episodes with at least one alert
	FalseAlerts   float64 // benign episodes with at least one alert
	CluesPerEp    float64 // clue-inference firings per episode
}

// ClueThresholdResult is the A1 ablation output.
type ClueThresholdResult struct {
	Rows []ClueThresholdRow
}

// AblationClueThreshold sweeps the clue redirect threshold L in [1,6],
// replaying fresh infection and benign episodes through the engine per
// setting. It exposes the coverage/noise trade-off the paper fixes at 3.
func AblationClueThreshold(o Options, episodesPerClass int) (ClueThresholdResult, error) {
	o = o.withDefaults()
	forest, err := trainMonitorForest(o)
	if err != nil {
		return ClueThresholdResult{}, err
	}
	if episodesPerClass <= 0 {
		episodesPerClass = 100
	}
	rng := newRNG(o, 301)
	var infEps, benEps []synth.Episode
	for i := 0; i < episodesPerClass; i++ {
		fam := synth.Families[i%len(synth.Families)].Name
		infEps = append(infEps, synth.GenerateInfection(fam, corpusEpoch, rng))
		benEps = append(benEps, synth.GenerateBenign("search", corpusEpoch, rng))
	}
	var res ClueThresholdResult
	for l := 1; l <= 6; l++ {
		detected, falsed, clues := 0, 0, 0
		for i := range infEps {
			eng := detector.New(detector.Config{RedirectThreshold: l}, forest)
			if len(eng.ProcessAll(infEps[i].Txs)) > 0 {
				detected++
			}
			clues += eng.Stats().CluesFired
		}
		for i := range benEps {
			eng := detector.New(detector.Config{RedirectThreshold: l}, forest)
			if len(eng.ProcessAll(benEps[i].Txs)) > 0 {
				falsed++
			}
		}
		res.Rows = append(res.Rows, ClueThresholdRow{
			Threshold:     l,
			DetectionRate: float64(detected) / float64(episodesPerClass),
			FalseAlerts:   float64(falsed) / float64(episodesPerClass),
			CluesPerEp:    float64(clues) / float64(episodesPerClass),
		})
	}
	return res, nil
}

// String renders the sweep.
func (r ClueThresholdResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%9s %10s %12s %10s\n", "threshold", "detection", "false-alert", "clues/ep")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%9d %9.1f%% %11.1f%% %10.2f\n",
			row.Threshold, 100*row.DetectionRate, 100*row.FalseAlerts, row.CluesPerEp)
	}
	return sb.String()
}

// --------------------------------------------------- A2: tree count

// TreeCountRow is one N_t setting of the A2 sweep.
type TreeCountRow struct {
	Trees   int
	TPR     float64
	FPR     float64
	ROCArea float64
}

// TreeCountResult is the A2 ablation output.
type TreeCountResult struct {
	Rows []TreeCountRow
}

// AblationTrees sweeps the ensemble size N_t under cross-validation,
// showing the saturation around the paper's choice of 20.
func AblationTrees(ds *ml.Dataset, o Options) (TreeCountResult, error) {
	o = o.withDefaults()
	var res TreeCountResult
	for _, n := range []int{1, 5, 10, 20, 40, 80} {
		ev, err := ml.CrossValidate(ds, ml.ForestConfig{NumTrees: n, Seed: o.Seed}, o.Folds, newRNG(o, int64(400+n)))
		if err != nil {
			return TreeCountResult{}, err
		}
		res.Rows = append(res.Rows, TreeCountRow{Trees: n, TPR: ev.TPR, FPR: ev.FPR, ROCArea: ev.ROCArea})
	}
	return res, nil
}

// String renders the sweep.
func (r TreeCountResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%6s %7s %7s %9s\n", "trees", "TPR", "FPR", "ROC Area")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%6d %7.3f %7.3f %9.3f\n", row.Trees, row.TPR, row.FPR, row.ROCArea)
	}
	return sb.String()
}

// ------------------------------------------------ A3: voting rule

// VotingRow compares one combination rule.
type VotingRow struct {
	Rule    string
	TPR     float64
	FPR     float64
	FScore  float64
	ROCArea float64
}

// VotingResult is the A3 ablation output.
type VotingResult struct {
	Rows []VotingRow
}

// AblationVoting contrasts the paper's probability-averaging ERF against
// standard majority voting under identical training.
func AblationVoting(ds *ml.Dataset, o Options) (VotingResult, error) {
	o = o.withDefaults()
	cfg := ml.ForestConfig{NumTrees: o.Trees, Seed: o.Seed}
	avg, err := ml.CrossValidate(ds, cfg, o.Folds, newRNG(o, 500))
	if err != nil {
		return VotingResult{}, err
	}
	vote, err := ml.CrossValidateVoting(ds, cfg, o.Folds, newRNG(o, 500))
	if err != nil {
		return VotingResult{}, err
	}
	return VotingResult{Rows: []VotingRow{
		{Rule: "prob-averaging", TPR: avg.TPR, FPR: avg.FPR, FScore: avg.FScore, ROCArea: avg.ROCArea},
		{Rule: "majority-vote", TPR: vote.TPR, FPR: vote.FPR, FScore: vote.FScore, ROCArea: vote.ROCArea},
	}}, nil
}

// String renders the comparison.
func (r VotingResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-15s %7s %7s %8s %9s\n", "rule", "TPR", "FPR", "F-score", "ROC Area")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-15s %7.3f %7.3f %8.3f %9.3f\n", row.Rule, row.TPR, row.FPR, row.FScore, row.ROCArea)
	}
	return sb.String()
}
