package experiments

import (
	"dynaminer/internal/features"
	"dynaminer/internal/httpstream"
	"dynaminer/internal/ml"
	"dynaminer/internal/wcg"
)

// episodeWCGs materializes one WCG per transaction stream, preserving
// input order.
func episodeWCGs(txss [][]httpstream.Transaction) []*wcg.WCG {
	ws := make([]*wcg.WCG, len(txss))
	for i, txs := range txss {
		ws[i] = wcg.FromTransactions(txs)
	}
	return ws
}

// batchScores featurizes every transaction stream through the batched
// extractor and scores the whole batch with the flattened forest's
// tree-outer kernel. Every score is bit-identical to the per-episode
// forest.Score(features.Extract(wcg.FromTransactions(txs))) it replaces —
// the experiment drivers rely on that to keep their published numbers
// unchanged — but the featurization scaffolding and model dispatch are
// built once per batch instead of once per episode.
func batchScores(forest *ml.Forest, txss [][]httpstream.Transaction) []float64 {
	return forest.Flatten().ScoreBatch(nil, features.ExtractBatch(episodeWCGs(txss)))
}
