package experiments

import (
	"fmt"
	"strings"
	"time"

	"dynaminer/internal/detector"
	"dynaminer/internal/synth"
)

// LatencyResult measures how quickly the on-the-wire engine alerts inside
// an infection episode: the transactions observed and conversation time
// elapsed before the first alert, and how much of the post-download C&C
// dialogue the alert preempts.
type LatencyResult struct {
	Episodes        int
	Detected        int
	MedianTxBefore  int           // transactions processed before the first alert
	MedianElapsed   time.Duration // conversation time before the first alert
	MedianRemaining time.Duration // conversation time still ahead at alert time
}

// DetectionLatency replays fresh infection episodes through the engine and
// measures alert latency. It quantifies the "on-the-wire" value the paper
// claims over offline forensics: alerts land while the conversation is
// still unfolding, before the C&C dialogue completes.
func DetectionLatency(o Options, episodes int) (LatencyResult, error) {
	o = o.withDefaults()
	if episodes <= 0 {
		episodes = 100
	}
	forest, err := trainMonitorForest(o)
	if err != nil {
		return LatencyResult{}, err
	}
	rng := newRNG(o, 800)
	var (
		txBefore  []int
		elapsed   []time.Duration
		remaining []time.Duration
	)
	res := LatencyResult{Episodes: episodes}
	for i := 0; i < episodes; i++ {
		fam := synth.Families[i%len(synth.Families)].Name
		ep := synth.GenerateInfection(fam, corpusEpoch, rng)
		eng := detector.New(detector.Config{RedirectThreshold: 1}, forest)
		start := ep.Txs[0].ReqTime
		end := ep.Txs[len(ep.Txs)-1].ReqTime
		alerted := false
		for j, tx := range ep.Txs {
			if len(eng.Process(tx)) == 0 {
				continue
			}
			alerted = true
			txBefore = append(txBefore, j+1)
			elapsed = append(elapsed, tx.ReqTime.Sub(start))
			remaining = append(remaining, end.Sub(tx.ReqTime))
			break
		}
		if alerted {
			res.Detected++
		}
	}
	res.MedianTxBefore = medianInt(txBefore)
	res.MedianElapsed = medianDuration(elapsed)
	res.MedianRemaining = medianDuration(remaining)
	return res, nil
}

func medianInt(xs []int) int {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]int(nil), xs...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	return sorted[len(sorted)/2]
}

func medianDuration(xs []time.Duration) time.Duration {
	if len(xs) == 0 {
		return 0
	}
	ints := make([]int, len(xs))
	for i, d := range xs {
		ints[i] = int(d)
	}
	return time.Duration(medianInt(ints))
}

// String renders the latency report.
func (r LatencyResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "detected %d/%d episodes on the wire\n", r.Detected, r.Episodes)
	fmt.Fprintf(&sb, "median alert after %d transactions / %s of conversation\n",
		r.MedianTxBefore, r.MedianElapsed.Round(time.Millisecond))
	fmt.Fprintf(&sb, "median conversation remaining at alert time: %s (C&C dialogue preempted)\n",
		r.MedianRemaining.Round(time.Millisecond))
	return sb.String()
}
