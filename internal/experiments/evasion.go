package experiments

import (
	"fmt"
	"strings"

	"dynaminer/internal/detector"
	"dynaminer/internal/httpstream"
	"dynaminer/internal/synth"
)

// EvasionRow measures DynaMiner against one Section VII evasion strategy.
type EvasionRow struct {
	Mode string
	// OfflineTPR is the whole-trace classifier's detection rate.
	OfflineTPR float64
	// WireTPR is the on-the-wire engine's detection rate (any alert).
	WireTPR float64
	// CluesFired is the average clue firings per episode on the wire.
	CluesFired float64
}

// EvasionResult quantifies the paper's Section VII evasion discussion.
type EvasionResult struct {
	Rows []EvasionRow
}

// Evasion generates infections under each Section VII evasion strategy and
// measures both detection paths: offline classification of the recorded
// conversation and on-the-wire detection (clue threshold 2). The paper
// argues qualitatively which moves hurt which path; this experiment puts
// numbers on it.
func Evasion(o Options, perMode int) (EvasionResult, error) {
	o = o.withDefaults()
	if perMode <= 0 {
		perMode = 100
	}
	offline, err := trainForest(BuildDataset(GroundTruth(o)), o)
	if err != nil {
		return EvasionResult{}, err
	}
	monitor, err := trainMonitorForest(o)
	if err != nil {
		return EvasionResult{}, err
	}

	rng := newRNG(o, 600)
	var res EvasionResult
	for _, mode := range synth.EvasionModes {
		// Generate every episode first (RNG order unchanged — only
		// generation consumes it), then score the offline path as one
		// batch before replaying the wire engines.
		txss := make([][]httpstream.Transaction, perMode)
		for i := 0; i < perMode; i++ {
			fam := synth.Families[i%len(synth.Families)].Name
			ep, err := synth.GenerateEvasiveInfection(mode, fam, corpusEpoch, rng)
			if err != nil {
				return EvasionResult{}, err
			}
			txss[i] = ep.Txs
		}
		offlineHits, wireHits, clues := 0, 0, 0
		for _, s := range batchScores(offline, txss) {
			if s > 0.5 {
				offlineHits++
			}
		}
		for i := 0; i < perMode; i++ {
			eng := detector.New(detector.Config{RedirectThreshold: 2}, monitor)
			if len(eng.ProcessAll(txss[i])) > 0 {
				wireHits++
			}
			clues += eng.Stats().CluesFired
		}
		res.Rows = append(res.Rows, EvasionRow{
			Mode:       mode,
			OfflineTPR: float64(offlineHits) / float64(perMode),
			WireTPR:    float64(wireHits) / float64(perMode),
			CluesFired: float64(clues) / float64(perMode),
		})
	}
	return res, nil
}

// String renders the evasion table.
func (r EvasionResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-20s %12s %10s %10s\n", "evasion", "offline-TPR", "wire-TPR", "clues/ep")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-20s %11.1f%% %9.1f%% %10.2f\n",
			row.Mode, 100*row.OfflineTPR, 100*row.WireTPR, row.CluesFired)
	}
	return sb.String()
}
