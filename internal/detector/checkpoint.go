package detector

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"net/http"
	"net/netip"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"dynaminer/internal/httpstream"
)

// The DMCP checkpoint artifact ("DynaMiner CheckPoint") captures a
// ShardedEngine's in-flight state — every session cluster's transaction
// history plus the flags replay cannot reproduce — so a restarted process
// rebuilds its watches instead of going blind until clients re-offend.
// The layout follows the DMFB model blob's conventions: little-endian,
// canonical (one state, one byte sequence), CRC-32-protected, with a
// 16-byte header:
//
//	offset 0:  magic "DMCP"
//	offset 4:  u32 format version (currently 1)
//	offset 8:  u32 CRC-32 (IEEE) over every byte from offset 16
//	offset 12: u32 reserved (zero)
//
// The body is the model version (generation u64 + blob CRC u32), the
// shard count u32, then per shard: txSeen u64, cluster count u32, and
// each cluster in engine order (order is load-bearing: cluster IDs
// allocate from the live cluster count, so replaying in order makes a
// recovered engine hand out the same IDs an uninterrupted run would).
//
// Restore does NOT trust the checkpoint for derived state. Each
// cluster's transactions are replayed through the real pipeline
// (clue inference, WCG construction, incremental feature state) with
// classification suppressed, so the rebuilt watches are byte-for-byte
// the structures the original engine held — only the flags replay
// cannot reproduce (alerted, quarantine faults, cross-shard shed
// decisions, the pinned model version) are applied from the snapshot.
const (
	checkpointMagic   = "DMCP"
	checkpointVersion = 1
	checkpointHdrLen  = 16
)

// cluster flag bits in the checkpoint encoding.
const (
	ckptWatching = 1 << 0
	ckptAlerted  = 1 << 1
)

// IsCheckpoint reports whether prefix starts with the DMCP magic.
func IsCheckpoint(prefix []byte) bool {
	return len(prefix) >= len(checkpointMagic) && string(prefix[:len(checkpointMagic)]) == string(checkpointMagic)
}

// AppendCheckpoint appends the engine's canonical DMCP encoding to dst
// and returns the extended slice. Each shard is serialized under its own
// lock, one shard at a time, so a checkpoint never stops the world — it
// is a sequence of per-shard consistent cuts, which the recovery
// contract only needs per-cluster consistency for (clients never span
// shards).
func (s *ShardedEngine) AppendCheckpoint(dst []byte) []byte {
	base := len(dst)
	dst = append(dst, checkpointMagic...)
	dst = binary.LittleEndian.AppendUint32(dst, checkpointVersion)
	dst = binary.LittleEndian.AppendUint32(dst, 0) // CRC patched below
	dst = binary.LittleEndian.AppendUint32(dst, 0) // reserved

	v := s.ModelVersion()
	dst = binary.LittleEndian.AppendUint64(dst, v.Gen)
	dst = binary.LittleEndian.AppendUint32(dst, v.CRC)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(s.shards)))
	for _, sh := range s.shards {
		sh.mu.Lock()
		dst = sh.eng.appendShardState(dst)
		sh.mu.Unlock()
	}
	crc := crc32.ChecksumIEEE(dst[base+checkpointHdrLen:])
	binary.LittleEndian.PutUint32(dst[base+8:], crc)
	return dst
}

// appendShardState serializes one engine shard; the caller holds the
// shard lock.
func (e *Engine) appendShardState(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, uint64(e.txSeen))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(e.clusters)))
	for _, c := range e.clusters {
		dst = appendClusterState(dst, c)
	}
	return dst
}

func appendClusterState(dst []byte, c *cluster) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, uint64(int64(c.id)))
	dst = appendAddr(dst, c.client)
	var flags byte
	if c.watching {
		flags |= ckptWatching
	}
	if c.alerted {
		flags |= ckptAlerted
	}
	dst = append(dst, flags, byte(c.faults))
	var pin ModelVersion
	if c.pinned != nil {
		pin = c.pinned.version
	}
	dst = binary.LittleEndian.AppendUint64(dst, pin.Gen)
	dst = binary.LittleEndian.AppendUint32(dst, pin.CRC)
	dst = appendTime(dst, c.lastActive)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(c.txs)))
	for i := range c.txs {
		dst = appendTx(dst, &c.txs[i])
	}
	return dst
}

// appendTx serializes one HTTP transaction canonically: fixed field
// order, u32 length prefixes, header keys sorted.
func appendTx(dst []byte, tx *httpstream.Transaction) []byte {
	dst = appendAddr(dst, tx.ClientIP)
	dst = appendAddr(dst, tx.ServerIP)
	dst = binary.LittleEndian.AppendUint16(dst, tx.ClientPort)
	dst = binary.LittleEndian.AppendUint16(dst, tx.ServerPort)
	dst = appendString(dst, tx.Method)
	dst = appendString(dst, tx.URI)
	dst = appendString(dst, tx.Host)
	dst = appendHeader(dst, tx.ReqHdr)
	dst = appendTime(dst, tx.ReqTime)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(int64(tx.ReqBodySize)))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(int32(tx.StatusCode)))
	dst = appendHeader(dst, tx.RespHdr)
	dst = appendTime(dst, tx.RespTime)
	dst = appendString(dst, tx.ContentType)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(int64(tx.BodySize)))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(tx.Body)))
	dst = append(dst, tx.Body...)
	return dst
}

func appendString(dst []byte, s string) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(s)))
	return append(dst, s...)
}

func appendAddr(dst []byte, a netip.Addr) []byte {
	b, _ := a.MarshalBinary() // cannot fail
	dst = append(dst, byte(len(b)))
	return append(dst, b...)
}

// appendTime encodes a timestamp as a set/unset flag plus UnixNano: the
// zero time.Time is outside UnixNano's round-trippable range, and the
// engine's "no response yet" checks depend on IsZero surviving a
// restart.
func appendTime(dst []byte, t time.Time) []byte {
	if t.IsZero() {
		dst = append(dst, 0)
		return binary.LittleEndian.AppendUint64(dst, 0)
	}
	dst = append(dst, 1)
	return binary.LittleEndian.AppendUint64(dst, uint64(t.UnixNano()))
}

// appendHeader encodes an http.Header with sorted keys so identical
// headers always produce identical bytes.
func appendHeader(dst []byte, h http.Header) []byte {
	keys := make([]string, 0, len(h))
	for k := range h {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(keys)))
	for _, k := range keys {
		dst = appendString(dst, k)
		vals := h[k]
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(vals)))
		for _, v := range vals {
			dst = appendString(dst, v)
		}
	}
	return dst
}

// ckptReader is a bounds-checked little-endian cursor over a checkpoint
// body; every read returns a named error instead of panicking on
// truncated or hostile input.
type ckptReader struct {
	b   []byte
	off int
}

func (r *ckptReader) take(n int) ([]byte, error) {
	if n < 0 || r.off+n > len(r.b) {
		return nil, fmt.Errorf("detector: checkpoint: truncated at offset %d (need %d bytes)", r.off, n)
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out, nil
}

func (r *ckptReader) u8() (byte, error) {
	b, err := r.take(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (r *ckptReader) u16() (uint16, error) {
	b, err := r.take(2)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(b), nil
}

func (r *ckptReader) u32() (uint32, error) {
	b, err := r.take(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (r *ckptReader) u64() (uint64, error) {
	b, err := r.take(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

func (r *ckptReader) str() (string, error) {
	n, err := r.u32()
	if err != nil {
		return "", err
	}
	b, err := r.take(int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func (r *ckptReader) addr() (netip.Addr, error) {
	n, err := r.u8()
	if err != nil {
		return netip.Addr{}, err
	}
	b, err := r.take(int(n))
	if err != nil {
		return netip.Addr{}, err
	}
	var a netip.Addr
	if err := a.UnmarshalBinary(b); err != nil {
		return netip.Addr{}, fmt.Errorf("detector: checkpoint: bad address: %w", err)
	}
	return a, nil
}

func (r *ckptReader) timestamp() (time.Time, error) {
	set, err := r.u8()
	if err != nil {
		return time.Time{}, err
	}
	n, err := r.u64()
	if err != nil {
		return time.Time{}, err
	}
	if set == 0 {
		return time.Time{}, nil
	}
	return time.Unix(0, int64(n)), nil
}

func (r *ckptReader) header() (http.Header, error) {
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	h := make(http.Header, n)
	for i := uint32(0); i < n; i++ {
		k, err := r.str()
		if err != nil {
			return nil, err
		}
		nv, err := r.u32()
		if err != nil {
			return nil, err
		}
		vals := make([]string, 0, nv)
		for j := uint32(0); j < nv; j++ {
			v, err := r.str()
			if err != nil {
				return nil, err
			}
			vals = append(vals, v)
		}
		h[k] = vals
	}
	return h, nil
}

// clusterSnapshot is one decoded cluster record: the transaction history
// to replay plus the flags replay cannot reproduce.
type clusterSnapshot struct {
	id         int
	client     netip.Addr
	watching   bool
	alerted    bool
	faults     int
	pin        ModelVersion
	lastActive time.Time
	txs        []httpstream.Transaction
}

func (r *ckptReader) cluster() (*clusterSnapshot, error) {
	cs := &clusterSnapshot{}
	id, err := r.u64()
	if err != nil {
		return nil, err
	}
	cs.id = int(int64(id))
	if cs.client, err = r.addr(); err != nil {
		return nil, err
	}
	flags, err := r.u8()
	if err != nil {
		return nil, err
	}
	cs.watching = flags&ckptWatching != 0
	cs.alerted = flags&ckptAlerted != 0
	faults, err := r.u8()
	if err != nil {
		return nil, err
	}
	cs.faults = int(faults)
	if cs.pin.Gen, err = r.u64(); err != nil {
		return nil, err
	}
	if cs.pin.CRC, err = r.u32(); err != nil {
		return nil, err
	}
	if cs.lastActive, err = r.timestamp(); err != nil {
		return nil, err
	}
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	cs.txs = make([]httpstream.Transaction, 0, n)
	for i := uint32(0); i < n; i++ {
		tx, err := r.tx()
		if err != nil {
			return nil, err
		}
		cs.txs = append(cs.txs, tx)
	}
	return cs, nil
}

func (r *ckptReader) tx() (httpstream.Transaction, error) {
	var tx httpstream.Transaction
	var err error
	if tx.ClientIP, err = r.addr(); err != nil {
		return tx, err
	}
	if tx.ServerIP, err = r.addr(); err != nil {
		return tx, err
	}
	if tx.ClientPort, err = r.u16(); err != nil {
		return tx, err
	}
	if tx.ServerPort, err = r.u16(); err != nil {
		return tx, err
	}
	if tx.Method, err = r.str(); err != nil {
		return tx, err
	}
	if tx.URI, err = r.str(); err != nil {
		return tx, err
	}
	if tx.Host, err = r.str(); err != nil {
		return tx, err
	}
	if tx.ReqHdr, err = r.header(); err != nil {
		return tx, err
	}
	if tx.ReqTime, err = r.timestamp(); err != nil {
		return tx, err
	}
	reqBody, err := r.u64()
	if err != nil {
		return tx, err
	}
	tx.ReqBodySize = int(int64(reqBody))
	status, err := r.u32()
	if err != nil {
		return tx, err
	}
	tx.StatusCode = int(int32(status))
	if tx.RespHdr, err = r.header(); err != nil {
		return tx, err
	}
	if tx.RespTime, err = r.timestamp(); err != nil {
		return tx, err
	}
	if tx.ContentType, err = r.str(); err != nil {
		return tx, err
	}
	bodySize, err := r.u64()
	if err != nil {
		return tx, err
	}
	tx.BodySize = int(int64(bodySize))
	n, err := r.u32()
	if err != nil {
		return tx, err
	}
	body, err := r.take(int(n))
	if err != nil {
		return tx, err
	}
	if len(body) > 0 {
		tx.Body = append([]byte(nil), body...)
	}
	return tx, nil
}

// checkpointBody validates a DMCP artifact's header and CRC and returns
// a reader over the body.
func checkpointBody(data []byte) (*ckptReader, error) {
	if len(data) < checkpointHdrLen {
		return nil, fmt.Errorf("detector: checkpoint: %d bytes is shorter than the %d-byte header", len(data), checkpointHdrLen)
	}
	if !IsCheckpoint(data) {
		return nil, fmt.Errorf("detector: checkpoint: bad magic %q", string(data[:4]))
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != checkpointVersion {
		return nil, fmt.Errorf("detector: checkpoint: unsupported format version %d (want %d)", v, checkpointVersion)
	}
	want := binary.LittleEndian.Uint32(data[8:])
	if got := crc32.ChecksumIEEE(data[checkpointHdrLen:]); got != want {
		return nil, fmt.Errorf("detector: checkpoint: CRC mismatch: stored %08x, computed %08x", want, got)
	}
	return &ckptReader{b: data, off: checkpointHdrLen}, nil
}

// CheckpointInfo summarizes a DMCP artifact without restoring it.
type CheckpointInfo struct {
	// ModelVersion is the serving model at checkpoint time.
	ModelVersion ModelVersion
	// Shards is the engine's shard count; a checkpoint only restores into
	// an engine with the same count.
	Shards int
	// TxSeen totals the per-shard ingestion counters.
	TxSeen int64
	// Clusters and Watching count session clusters and in-flight watches.
	Clusters, Watching int
	// Transactions totals the checkpointed transaction histories.
	Transactions int
}

// ReadCheckpointInfo validates and summarizes a DMCP artifact.
func ReadCheckpointInfo(data []byte) (CheckpointInfo, error) {
	var info CheckpointInfo
	r, err := checkpointBody(data)
	if err != nil {
		return info, err
	}
	if info.ModelVersion.Gen, err = r.u64(); err != nil {
		return info, err
	}
	if info.ModelVersion.CRC, err = r.u32(); err != nil {
		return info, err
	}
	shards, err := r.u32()
	if err != nil {
		return info, err
	}
	info.Shards = int(shards)
	for s := uint32(0); s < shards; s++ {
		txSeen, err := r.u64()
		if err != nil {
			return info, err
		}
		info.TxSeen += int64(txSeen)
		n, err := r.u32()
		if err != nil {
			return info, err
		}
		for i := uint32(0); i < n; i++ {
			cs, err := r.cluster()
			if err != nil {
				return info, err
			}
			info.Clusters++
			info.Transactions += len(cs.txs)
			if cs.watching {
				info.Watching++
			}
		}
	}
	return info, nil
}

// RestoreCheckpoint rebuilds a freshly constructed engine from a DMCP
// artifact: every cluster's transactions are replayed through the real
// pipeline with classification suppressed, then the snapshot's
// irreproducible flags (alerted, faults, shed/watching state, pinned
// model) are applied. The engine must be empty and have the same shard
// count the checkpoint was taken with; on any validation error the
// engine is left untouched or partially restored — callers treat a
// failed restore as a cold start.
func (s *ShardedEngine) RestoreCheckpoint(data []byte) (restored int, err error) {
	r, err := checkpointBody(data)
	if err != nil {
		return 0, err
	}
	if _, err = r.u64(); err != nil { // model generation (informational)
		return 0, err
	}
	if _, err = r.u32(); err != nil { // model CRC (informational)
		return 0, err
	}
	shards, err := r.u32()
	if err != nil {
		return 0, err
	}
	if int(shards) != len(s.shards) {
		return 0, fmt.Errorf("detector: checkpoint: taken with %d shards, engine has %d (cluster IDs would not line up)", shards, len(s.shards))
	}
	for si := uint32(0); si < shards; si++ {
		txSeen, err := r.u64()
		if err != nil {
			return restored, err
		}
		n, err := r.u32()
		if err != nil {
			return restored, err
		}
		sh := s.shards[si]
		sh.mu.Lock()
		if len(sh.eng.clusters) != 0 {
			sh.mu.Unlock()
			return restored, fmt.Errorf("detector: checkpoint: shard %d is not empty (restore requires a fresh engine)", si)
		}
		for i := uint32(0); i < n; i++ {
			cs, err := r.cluster()
			if err != nil {
				sh.mu.Unlock()
				return restored, err
			}
			sh.eng.restoreCluster(cs)
			restored++
		}
		sh.eng.txSeen = int64(txSeen)
		sh.mu.Unlock()
	}
	if r.off != len(r.b) {
		return restored, fmt.Errorf("detector: checkpoint: %d trailing bytes after the last shard", len(r.b)-r.off)
	}
	return restored, nil
}

// restoreCluster rebuilds one session cluster by replaying its
// checkpointed transactions through the per-cluster pipeline with
// e.restoring set: clue inference, WCG construction and incremental
// feature state all rebuild exactly as they did live, while
// classification, shedding and the activity counters stay quiet. The
// snapshot's irreproducible flags are applied afterwards. The caller
// holds the shard lock.
func (e *Engine) restoreCluster(cs *clusterSnapshot) {
	c := &cluster{
		id:       cs.id,
		client:   cs.client,
		hosts:    make(map[string]struct{}),
		sessions: make(map[string]struct{}),
		hostLast: make(map[string]time.Time),
	}
	e.clusters = append(e.clusters, c)
	e.byClient[cs.client] = append(e.byClient[cs.client], c)
	e.mx.clusters.Inc()

	e.restoring = true
	defer func() { e.restoring = false }()
	for i := range cs.txs {
		tx := cs.txs[i]
		host := strings.ToLower(tx.Host)
		if host == "" {
			host = tx.ServerIP.String()
		}
		e.processInCluster(c, tx, host)
	}

	// Reconcile with the snapshot: a watch the original engine closed (a
	// cross-cluster shed, which per-cluster replay cannot see) is closed
	// here too, preserving its WCG in the closed list exactly as the shed
	// did.
	if c.watching && !cs.watching {
		e.closeWatch(c)
	}
	c.alerted = cs.alerted
	c.faults = cs.faults
	if c.faults > 0 {
		// Quarantine dropped the incremental cache in the original engine;
		// keeping the replayed one would resurrect the path quarantine
		// pinned away from.
		c.ib, c.cache, c.fed = nil, nil, 0
	}
	c.lastActive = cs.lastActive
	if c.watching {
		// Re-pin by blob CRC: generations restarted with the process, but
		// the same forest bytes mean bit-identical scoring.
		c.pinned = e.models.matchPinned(cs.pin.CRC)
	}
}

// MarkAlerted sets the alerted flag on the identified cluster, returning
// whether it was found. Recovery uses this while replaying the alert
// journal: an alert the pre-crash process already raised must not fire
// again from the restored watch's next growth.
func (s *ShardedEngine) MarkAlerted(client netip.Addr, clusterID int) bool {
	sh := s.shardFor(client)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for _, c := range sh.eng.byClient[client] {
		if c.id == clusterID {
			c.alerted = true
			return true
		}
	}
	return false
}

// WriteCheckpointFile atomically writes the engine's checkpoint to path:
// the artifact is staged in a temp file in the same directory, fsynced,
// and renamed into place, so a crash mid-write leaves the previous
// checkpoint intact — a reader never observes a torn DMCP file.
func (s *ShardedEngine) WriteCheckpointFile(path string) error {
	return writeFileAtomic(path, s.AppendCheckpoint(nil))
}

// RestoreCheckpointFile restores the engine from a DMCP file; see
// RestoreCheckpoint.
func (s *ShardedEngine) RestoreCheckpointFile(path string) (int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("detector: checkpoint: %w", err)
	}
	return s.RestoreCheckpoint(data)
}

// ReadCheckpointInfoFile validates and summarizes a DMCP file.
func ReadCheckpointInfoFile(path string) (CheckpointInfo, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return CheckpointInfo{}, fmt.Errorf("detector: checkpoint: %w", err)
	}
	return ReadCheckpointInfo(data)
}

// writeFileAtomic stages data in a temp file next to path, forces it to
// stable storage, and renames it into place.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("detector: checkpoint write: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after the rename succeeds
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("detector: checkpoint write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("detector: checkpoint sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("detector: checkpoint close: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("detector: checkpoint rename: %w", err)
	}
	// Best effort: persist the rename itself so the checkpoint survives a
	// power loss immediately after this call returns.
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}
