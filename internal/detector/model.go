package detector

import (
	"fmt"
	"sync"
	"sync/atomic"

	"dynaminer/internal/ml"
	"dynaminer/internal/obs"
)

// ModelVersion identifies the exact forest a classification came from, so
// journal records stay replayable across hot-swaps and restarts.
type ModelVersion struct {
	// Gen is the monotonic swap generation within one engine lifetime: the
	// construction-time model is generation 1 and every successful reload
	// increments it. Generations restart when the process does; CRC is the
	// cross-restart identity.
	Gen uint64
	// CRC is the CRC-32 (IEEE) of the model's canonical DMFB blob encoding
	// (ml.FlatForest.BlobCRC) — stable for the same trained forest across
	// JSON, blob, and in-memory forms — and zero for scorers with no blob
	// form (test doubles, extraction-only engines).
	CRC uint32
}

// String renders the version the way journal records and /metrics label
// it: "g<generation>-<crc hex>".
func (v ModelVersion) String() string { return fmt.Sprintf("g%d-%08x", v.Gen, v.CRC) }

// modelRef is one immutable (scorer, version) pair. Watches pin the ref
// that armed them, so an episode is scored by one forest end-to-end no
// matter how many swaps happen while it grows.
type modelRef struct {
	scorer  Scorer // nil in extraction-only mode
	version ModelVersion
}

// modelHolder owns the serving model behind an atomic pointer. All shards
// of a ShardedEngine share one holder: a swap is a single pointer store,
// visible to every shard's next watch arming without taking any shard
// lock, while in-flight watches keep their pinned ref. The previous ref is
// retained for instant rollback.
type modelHolder struct {
	cur atomic.Pointer[modelRef]

	mu     sync.Mutex
	prev   *modelRef // guarded by mu; rollback target (nil until a swap)
	gen    uint64    // guarded by mu; last allocated generation
	active string    // guarded by mu; version label currently set to 1

	reloads        *obs.Counter
	reloadFailures *obs.Counter
	generation     *obs.Gauge
	versions       *obs.GaugeVec
}

// newModelHolder wraps the construction-time model as generation 1 and
// registers the model-lifecycle metric family on reg.
func newModelHolder(reg *obs.Registry, model Scorer) *modelHolder {
	h := &modelHolder{
		reloads: reg.Counter("dynaminer_model_reloads_total",
			"Successful model hot-swaps into running engines."),
		reloadFailures: reg.Counter("dynaminer_model_reload_failures_total",
			"Model reloads rejected before the swap (load error, failed validation, panicking loader)."),
		generation: reg.Gauge("dynaminer_model_generation_total",
			"Serving model's swap generation (1 = the construction-time model)."),
		versions: reg.GaugeVec("dynaminer_model_version_total",
			"Serving model version: the active version's series is 1, swapped-out versions drop to 0.",
			"version"),
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.gen = 1
	ref := &modelRef{scorer: model, version: ModelVersion{Gen: 1, CRC: scorerCRC(model)}}
	h.cur.Store(ref)
	h.noteActiveLocked(ref.version)
	return h
}

// scorerCRC derives the model identity of a scorer: the blob CRC for flat
// forests, zero for anything without a canonical artifact.
func scorerCRC(model Scorer) uint32 {
	if ff, ok := model.(*ml.FlatForest); ok && ff != nil {
		return ff.BlobCRC()
	}
	return 0
}

// current returns the serving model reference. Never nil; lock-free, so
// the arming path costs one atomic load.
func (h *modelHolder) current() *modelRef { return h.cur.Load() }

// noteActiveLocked flips the version gauge family to v; the caller holds
// mu.
func (h *modelHolder) noteActiveLocked(v ModelVersion) {
	if h.active != "" {
		h.versions.With(h.active).Set(0)
	}
	h.active = v.String()
	h.versions.With(h.active).Set(1)
	h.generation.Set(int64(v.Gen))
}

// validateCandidate runs the pre-swap screens that do not require a file:
// the candidate must exist and must score the same feature dimensionality
// as the serving model, so a mis-dimensioned forest is rejected before it
// can panic a shard's score-time guards. (File-format and semantic-screen
// validation happens in the loader, before this is reached.)
func validateCandidate(cur, candidate Scorer) error {
	if candidate == nil {
		return fmt.Errorf("detector: reload: nil model")
	}
	type dims interface{ NumFeatures() int }
	cd, cok := candidate.(dims)
	sd, sok := cur.(dims)
	if cok && sok && cd.NumFeatures() != sd.NumFeatures() {
		return fmt.Errorf("detector: reload: candidate scores %d features, serving model scores %d",
			cd.NumFeatures(), sd.NumFeatures())
	}
	return nil
}

// swap validates candidate and atomically replaces the serving model,
// returning the new version. On rejection the serving model is untouched
// and the failure is counted.
func (h *modelHolder) swap(candidate Scorer) (ModelVersion, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	cur := h.cur.Load()
	if err := validateCandidate(cur.scorer, candidate); err != nil {
		h.reloadFailures.Inc()
		return cur.version, err
	}
	h.gen++
	ref := &modelRef{scorer: candidate, version: ModelVersion{Gen: h.gen, CRC: scorerCRC(candidate)}}
	h.prev = cur
	h.cur.Store(ref)
	h.reloads.Inc()
	h.noteActiveLocked(ref.version)
	return ref.version, nil
}

// reload obtains a candidate from load — typically a file read through the
// full blob/JSON semantic screens — and swaps it in. A load error, a
// panicking loader, or a failed validation leaves the serving model
// untouched and counts one reload failure; serving never stops.
func (h *modelHolder) reload(load func() (Scorer, error)) (ModelVersion, error) {
	candidate, err := func() (c Scorer, err error) {
		defer func() {
			if r := recover(); r != nil {
				c, err = nil, fmt.Errorf("detector: reload: loader panicked: %v", r)
			}
		}()
		return load()
	}()
	if err != nil {
		h.reloadFailures.Inc()
		return h.current().version, err
	}
	if f, ok := candidate.(*ml.Forest); ok && f != nil {
		candidate = f.Flatten()
	}
	return h.swap(candidate)
}

// rollback atomically reinstates the previous model under its original
// version identity, so watches still pinned to it match the serving
// version again. The swapped-out model becomes the new rollback target,
// making rollback its own inverse.
func (h *modelHolder) rollback() (ModelVersion, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	cur := h.cur.Load()
	if h.prev == nil {
		return cur.version, fmt.Errorf("detector: rollback: no previous model")
	}
	ref := h.prev
	h.prev = cur
	h.cur.Store(ref)
	h.noteActiveLocked(ref.version)
	return ref.version, nil
}

// matchPinned resolves a checkpointed watch's pinned version against the
// live holder. A serving or rollback model with the same blob CRC keeps
// the pin — the forest bytes are identical, so scoring stays bit-identical
// even though generation counters restarted — while an unknown CRC re-pins
// the watch to the serving model (the recorded forest is gone; scoring
// with the current one beats dropping the watch).
func (h *modelHolder) matchPinned(crc uint32) *modelRef {
	h.mu.Lock()
	defer h.mu.Unlock()
	cur := h.cur.Load()
	if cur.version.CRC == crc {
		return cur
	}
	if h.prev != nil && h.prev.version.CRC == crc {
		return h.prev
	}
	return cur
}
