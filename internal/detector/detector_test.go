package detector

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/netip"
	"strings"
	"testing"
	"time"

	"dynaminer/internal/features"
	"dynaminer/internal/httpstream"
	"dynaminer/internal/ml"
	"dynaminer/internal/synth"
	"dynaminer/internal/wcg"
)

var (
	t0       = time.Date(2016, 7, 10, 15, 0, 0, 0, time.UTC)
	clientIP = netip.MustParseAddr("10.0.0.44")
)

// constScorer always returns a fixed infection probability.
type constScorer float64

func (c constScorer) Score([]float64) float64 { return float64(c) }

func mkTx(host, uri, method string, code int, ct string, size int, ref string, at time.Duration) httpstream.Transaction {
	rh := http.Header{}
	if ref != "" {
		rh.Set("Referer", ref)
	}
	return httpstream.Transaction{
		ClientIP: clientIP, ServerIP: netip.MustParseAddr("198.51.100.77"),
		ClientPort: 50100, ServerPort: 80,
		Method: method, URI: uri, Host: host,
		ReqHdr: rh, RespHdr: http.Header{},
		ReqTime: t0.Add(at), RespTime: t0.Add(at + 10*time.Millisecond),
		StatusCode: code, ContentType: ct, BodySize: size,
	}
}

// redirectTx builds a 302 hop from host to next.
func redirectTx(host, next string, at time.Duration) httpstream.Transaction {
	tx := mkTx(host, "/r", "GET", 302, "", 0, "", at)
	tx.RespHdr.Set("Location", "http://"+next+"/x")
	return tx
}

// infectionStream is a redirect chain (3 hops) followed by an EXE download.
func infectionStream() []httpstream.Transaction {
	return []httpstream.Transaction{
		redirectTx("a.evil", "b.evil", 0),
		mkTx("b.evil", "/x", "GET", 302, "", 0, "http://a.evil/r", 100*time.Millisecond),
		redirectTx("b.evil", "c.evil", 150*time.Millisecond),
		redirectTx("c.evil", "d.evil", 300*time.Millisecond),
		mkTx("d.evil", "/drop.exe", "GET", 200, "application/x-msdownload", 90000, "http://c.evil/r", 500*time.Millisecond),
	}
}

func TestClueFiresAndAlerts(t *testing.T) {
	e := New(Config{RedirectThreshold: 3}, constScorer(0.9))
	alerts := e.ProcessAll(infectionStream())
	if len(alerts) != 1 {
		t.Fatalf("alerts = %d, want 1 (stats %+v)", len(alerts), e.Stats())
	}
	a := alerts[0]
	if a.TriggerHost != "d.evil" || a.TriggerPayload != wcg.PayloadEXE {
		t.Fatalf("alert trigger = %s/%v", a.TriggerHost, a.TriggerPayload)
	}
	if a.Score != 0.9 || a.Client != clientIP {
		t.Fatalf("alert fields wrong: %+v", a)
	}
	if a.WCG == nil || a.WCG.Order() < 4 {
		t.Fatal("alert must carry the potential-infection WCG")
	}
	if a.Time.IsZero() {
		t.Fatal("alert time unset")
	}
	st := e.Stats()
	if st.CluesFired != 1 || st.Alerts != 1 || st.Classifications != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestNoClueWithoutDownload(t *testing.T) {
	e := New(Config{RedirectThreshold: 3}, constScorer(0.9))
	txs := infectionStream()
	alerts := e.ProcessAll(txs[:4]) // redirects only, no download
	if len(alerts) != 0 {
		t.Fatalf("alerts = %d without a download", len(alerts))
	}
	if e.Stats().CluesFired != 0 {
		t.Fatal("clue must not fire without a download")
	}
}

func TestNoClueBelowThreshold(t *testing.T) {
	e := New(Config{RedirectThreshold: 5}, constScorer(0.9))
	if alerts := e.ProcessAll(infectionStream()); len(alerts) != 0 {
		t.Fatalf("alerts = %d with threshold 5", len(alerts))
	}
}

func TestBenignScoreNoAlertButKeepsWatching(t *testing.T) {
	e := New(Config{RedirectThreshold: 3}, constScorer(0.1))
	alerts := e.ProcessAll(infectionStream())
	if len(alerts) != 0 {
		t.Fatal("low score must not alert")
	}
	st := e.Stats()
	if st.CluesFired != 1 {
		t.Fatal("clue must fire")
	}
	if st.Classifications != 1 {
		t.Fatalf("classifications = %d, want 1", st.Classifications)
	}
	// Another transaction in the watched cluster triggers re-classification.
	e.Process(mkTx("d.evil", "/more", "GET", 200, "text/html", 100, "http://d.evil/drop.exe", time.Second))
	if got := e.Stats().Classifications; got != 2 {
		t.Fatalf("classifications after update = %d, want 2", got)
	}
}

func TestAlertPerDownload(t *testing.T) {
	e := New(Config{RedirectThreshold: 3}, constScorer(0.9))
	txs := infectionStream()
	txs = append(txs,
		// A second payload raises a second, download-centric alert.
		mkTx("d.evil", "/second.exe", "GET", 200, "application/x-msdownload", 10000, "http://d.evil/drop.exe", time.Second),
		// A plain page fetch in the same infectious cluster does not.
		mkTx("d.evil", "/page", "GET", 200, "text/html", 500, "http://d.evil/drop.exe", 2*time.Second))
	alerts := e.ProcessAll(txs)
	if len(alerts) != 2 {
		t.Fatalf("alerts = %d, want 2 (one per payload)", len(alerts))
	}
	if alerts[1].TriggerPayload != wcg.PayloadEXE {
		t.Fatalf("second alert payload = %v", alerts[1].TriggerPayload)
	}
}

func TestTrustedVendorWeeding(t *testing.T) {
	e := New(Config{TrustedVendors: DefaultTrustedVendors}, constScorer(0.9))
	e.Process(mkTx("downloads.vendor-store.com", "/app.exe", "GET", 200, "application/x-msdownload", 5<<20, "", 0))
	e.Process(mkTx("cdn.apple.com", "/update.dmg", "GET", 200, "application/x-apple-diskimage", 9<<20, "", time.Second))
	st := e.Stats()
	if st.Weeded != 2 {
		t.Fatalf("weeded = %d, want 2", st.Weeded)
	}
	if st.Clusters != 0 {
		t.Fatal("trusted traffic must not open clusters")
	}
}

func TestSessionClusteringByCookie(t *testing.T) {
	e := New(Config{}, constScorer(0))
	a := mkTx("x.com", "/1", "GET", 200, "text/html", 10, "", 0)
	a.RespHdr.Set("Set-Cookie", "sid=42; Path=/")
	b := mkTx("y.com", "/2", "GET", 200, "text/html", 10, "", 10*time.Minute) // beyond gap
	b.ReqHdr.Set("Cookie", "sid=42")
	e.Process(a)
	e.Process(b)
	if e.Stats().Clusters != 1 {
		t.Fatalf("clusters = %d, want 1 (cookie links them)", e.Stats().Clusters)
	}
}

func TestSessionClusteringByReferer(t *testing.T) {
	e := New(Config{}, constScorer(0))
	e.Process(mkTx("first.com", "/", "GET", 200, "text/html", 10, "", 0))
	e.Process(mkTx("second.com", "/p", "GET", 200, "text/html", 10, "http://first.com/", 10*time.Minute))
	if e.Stats().Clusters != 1 {
		t.Fatalf("clusters = %d, want 1 (referer links them)", e.Stats().Clusters)
	}
}

func TestSessionGapOpensNewCluster(t *testing.T) {
	e := New(Config{SessionGap: time.Minute}, constScorer(0))
	e.Process(mkTx("one.com", "/", "GET", 200, "text/html", 10, "", 0))
	e.Process(mkTx("two.com", "/", "GET", 200, "text/html", 10, "", 5*time.Minute))
	if e.Stats().Clusters != 2 {
		t.Fatalf("clusters = %d, want 2 (gap exceeded)", e.Stats().Clusters)
	}
}

func TestClientsSeparated(t *testing.T) {
	e := New(Config{}, constScorer(0))
	a := mkTx("shared.com", "/", "GET", 200, "text/html", 10, "", 0)
	b := mkTx("shared.com", "/", "GET", 200, "text/html", 10, "", time.Second)
	b.ClientIP = netip.MustParseAddr("10.0.0.45")
	e.Process(a)
	e.Process(b)
	if e.Stats().Clusters != 2 {
		t.Fatalf("clusters = %d, want 2 (distinct clients)", e.Stats().Clusters)
	}
}

// TestEndToEndWithTrainedModel trains a real ERF the way deployment
// requires — on the clue-extracted potential-infection WCG subsets — and
// verifies the engine flags infections and passes benign sessions.
func TestEndToEndWithTrainedModel(t *testing.T) {
	eps := synth.GenerateCorpus(synth.Config{Seed: 99, Infections: 80, Benign: 80})
	extract := Config{RedirectThreshold: 1}
	ds := &ml.Dataset{}
	for _, ep := range eps {
		y := ml.LabelBenign
		if ep.Infection {
			y = ml.LabelInfection
		}
		subs := ClueSubsets(extract, ep.Txs)
		for _, sub := range subs {
			ds.X = append(ds.X, features.Extract(wcg.FromTransactions(sub)))
			ds.Y = append(ds.Y, y)
		}
		if len(subs) == 0 || !ep.Infection {
			ds.X = append(ds.X, features.Extract(wcg.FromTransactions(ep.Txs)))
			ds.Y = append(ds.Y, y)
		}
	}
	forest, err := ml.TrainForest(ds, ml.ForestConfig{NumTrees: 20, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(123))
	detected := 0
	nInf := 40
	for i := 0; i < nInf; i++ {
		ep := synth.GenerateInfection("Angler", t0, rng)
		e := New(Config{RedirectThreshold: 1}, forest)
		if len(e.ProcessAll(ep.Txs)) > 0 {
			detected++
		}
	}
	if detected < nInf*6/10 {
		t.Fatalf("detected %d/%d Angler episodes, too few", detected, nInf)
	}

	falseAlerts := 0
	nBen := 40
	for i := 0; i < nBen; i++ {
		ep := synth.GenerateBenign("search", t0, rng)
		e := New(Config{RedirectThreshold: 1}, forest)
		if len(e.ProcessAll(ep.Txs)) > 0 {
			falseAlerts++
		}
	}
	if falseAlerts > nBen/5 {
		t.Fatalf("false alerts on %d/%d benign search sessions", falseAlerts, nBen)
	}
}

func TestCappedClusterSurvivesEviction(t *testing.T) {
	// When a cluster hits MaxClusterTxs the excess transactions are
	// dropped, but the session is still active: lastActive must track the
	// dropped traffic (or TTL eviction destroys a live session mid-watch)
	// and the drops must be visible in Stats.
	e := New(Config{MaxClusterTxs: 8, SessionGap: 30 * time.Minute}, constScorer(0))
	for i := 0; i < 11; i++ {
		e.Process(mkTx("busy.com", fmt.Sprintf("/p%d", i), "GET", 200, "text/html", 10, "", time.Duration(i)*time.Minute))
	}
	st := e.Stats()
	if st.Transactions != 11 {
		t.Fatalf("transactions = %d, want 11", st.Transactions)
	}
	if st.Dropped != 3 {
		t.Fatalf("dropped = %d, want 3", st.Dropped)
	}
	// Cutoff after the cap was reached (8th tx at t0+7m) but before the
	// last dropped transaction (t0+10m): the cluster is still active.
	if n := e.EvictIdle(t0.Add(9 * time.Minute)); n != 0 {
		t.Fatalf("capped-but-active cluster evicted (%d)", n)
	}
	// A cutoff beyond the last activity still evicts.
	if n := e.EvictIdle(t0.Add(11 * time.Minute)); n != 1 {
		t.Fatalf("idle capped cluster not evicted (%d)", n)
	}
}

func TestTrustedVendorCaseInsensitive(t *testing.T) {
	e := New(Config{TrustedVendors: []string{"Apple.COM"}}, constScorer(0.9))
	e.Process(mkTx("CDN.Apple.com", "/update.dmg", "GET", 200, "application/x-apple-diskimage", 1<<20, "", 0))
	if st := e.Stats(); st.Weeded != 1 || st.Clusters != 0 {
		t.Fatalf("stats %+v: mixed-case trusted host not weeded", st)
	}
}

func TestHostCaseInsensitiveClustering(t *testing.T) {
	e := New(Config{}, constScorer(0))
	e.Process(mkTx("First.com", "/", "GET", 200, "text/html", 10, "", 0))
	// Beyond the session gap, so only referrer linkage can join them.
	e.Process(mkTx("second.com", "/p", "GET", 200, "text/html", 10, "http://FIRST.com/", 10*time.Minute))
	if e.Stats().Clusters != 1 {
		t.Fatalf("clusters = %d, want 1 (case-folded referer must link)", e.Stats().Clusters)
	}
}

func TestMixedCaseInfectionChainAlerts(t *testing.T) {
	// DNS names are case-insensitive: a chain whose Host, Referer, and
	// Location headers disagree on case must still link up and alert.
	e := New(Config{RedirectThreshold: 3}, constScorer(0.9))
	txs := []httpstream.Transaction{
		redirectTx("A.Evil", "B.EVIL", 0),
		mkTx("b.evil", "/x", "GET", 302, "", 0, "http://A.evil/r", 100*time.Millisecond),
		redirectTx("B.evil", "C.evil", 150*time.Millisecond),
		redirectTx("c.EVIL", "d.evil", 300*time.Millisecond),
		mkTx("D.Evil", "/drop.exe", "GET", 200, "application/x-msdownload", 90000, "http://C.evil/r", 500*time.Millisecond),
	}
	alerts := e.ProcessAll(txs)
	if len(alerts) != 1 {
		t.Fatalf("alerts = %d, want 1 (stats %+v)", len(alerts), e.Stats())
	}
	if alerts[0].TriggerHost != "d.evil" {
		t.Fatalf("trigger host = %q, want lowercase d.evil", alerts[0].TriggerHost)
	}
	if e.Stats().Clusters != 1 {
		t.Fatalf("clusters = %d, want 1", e.Stats().Clusters)
	}
}

func TestAlertTimeFallbackToReqTime(t *testing.T) {
	// A triggering transaction that never got a response (zero RespTime,
	// e.g. an upstream timeout in a replay) must still stamp the alert.
	e := New(Config{RedirectThreshold: 3}, constScorer(0.9))
	txs := infectionStream()
	txs[len(txs)-1].RespTime = time.Time{}
	alerts := e.ProcessAll(txs)
	if len(alerts) != 1 {
		t.Fatalf("alerts = %d, want 1", len(alerts))
	}
	if alerts[0].Time.IsZero() {
		t.Fatal("alert stamped with the zero time")
	}
	if want := t0.Add(500 * time.Millisecond); !alerts[0].Time.Equal(want) {
		t.Fatalf("alert time = %v, want request time %v", alerts[0].Time, want)
	}
}

func TestRefererHost(t *testing.T) {
	tx := mkTx("a.com", "/", "GET", 200, "text/html", 1, "http://ref.net:8080/p?q=1", 0)
	if got := refererHost(&tx); got != "ref.net" {
		t.Fatalf("refererHost = %q", got)
	}
	tx2 := mkTx("a.com", "/", "GET", 200, "text/html", 1, "", 0)
	if refererHost(&tx2) != "" {
		t.Fatal("empty referer must give empty host")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.RedirectThreshold != 3 || c.ScoreThreshold != 0.5 || c.SessionGap != 5*time.Minute || c.MaxClusterTxs != 4096 {
		t.Fatalf("defaults wrong: %+v", c)
	}
}

func TestEvictIdle(t *testing.T) {
	e := New(Config{}, constScorer(0))
	e.Process(mkTx("old.com", "/", "GET", 200, "text/html", 10, "", 0))
	b := mkTx("new.com", "/", "GET", 200, "text/html", 10, "", 2*time.Hour)
	b.ClientIP = netip.MustParseAddr("10.0.0.99")
	e.Process(b)
	if e.Stats().Clusters != 2 {
		t.Fatalf("clusters = %d", e.Stats().Clusters)
	}
	n := e.EvictIdle(t0.Add(time.Hour))
	if n != 1 {
		t.Fatalf("evicted = %d, want 1", n)
	}
	if e.Stats().Evicted != 1 {
		t.Fatalf("stats.Evicted = %d", e.Stats().Evicted)
	}
	// The surviving client's traffic still clusters correctly.
	c := mkTx("new.com", "/2", "GET", 200, "text/html", 10, "", 2*time.Hour+time.Minute)
	c.ClientIP = netip.MustParseAddr("10.0.0.99")
	e.Process(c)
	if got := e.Stats().Clusters; got != 2 {
		t.Fatalf("clusters after eviction+reuse = %d, want 2 (no new cluster)", got)
	}
	// The evicted client starts fresh.
	d := mkTx("old.com", "/again", "GET", 200, "text/html", 10, "", 3*time.Hour)
	e.Process(d)
	if got := e.Stats().Clusters; got != 3 {
		t.Fatalf("clusters after evicted client returns = %d, want 3", got)
	}
}

func TestAutomaticEviction(t *testing.T) {
	e := New(Config{ClusterTTL: time.Minute, SessionGap: time.Second}, constScorer(0))
	// Many short-lived single-host clusters spread over hours trigger
	// periodic sweeps (distinct hosts so nothing re-clusters by host).
	for i := 0; i < 2*evictEvery; i++ {
		host := fmt.Sprintf("h%d.com", i)
		tx := mkTx(host, "/", "GET", 200, "text/html", 10, "", time.Duration(i)*10*time.Second)
		e.Process(tx)
	}
	if e.Stats().Evicted == 0 {
		t.Fatal("automatic eviction never ran")
	}
	if live := e.Stats().Clusters - e.Stats().Evicted; live > evictEvery {
		t.Fatalf("live clusters = %d, eviction not bounding memory", live)
	}
}

func TestWatchedSnapshots(t *testing.T) {
	e := New(Config{RedirectThreshold: 3}, constScorer(0.1))
	if len(e.Watched()) != 0 {
		t.Fatal("nothing should be watched initially")
	}
	e.ProcessAll(infectionStream())
	watched := e.Watched()
	if len(watched) != 1 {
		t.Fatalf("watched = %d, want 1", len(watched))
	}
	w := watched[0]
	if w.Client != clientIP || w.Transactions < 4 || w.Hosts < 3 {
		t.Fatalf("snapshot = %+v", w)
	}
	if w.LastGrowth.IsZero() {
		t.Fatal("LastGrowth unset")
	}
	// Closing the watch (idle) clears the snapshot list.
	e.Process(mkTx("later.com", "/", "GET", 200, "text/html", 10, "http://d.evil/drop.exe", 4*time.Minute))
	if len(e.Watched()) != 0 {
		t.Fatalf("watched after idle close = %d, want 0", len(e.Watched()))
	}
}

func TestAlertMarshalJSON(t *testing.T) {
	e := New(Config{RedirectThreshold: 3}, constScorer(0.9))
	alerts := e.ProcessAll(infectionStream())
	if len(alerts) != 1 {
		t.Fatal("need one alert")
	}
	data, err := json.Marshal(alerts[0])
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded["client"] != clientIP.String() || decoded["payload"] != "exe" {
		t.Fatalf("json = %s", data)
	}
	if decoded["wcgOrder"].(float64) < 4 {
		t.Fatalf("wcgOrder = %v", decoded["wcgOrder"])
	}
}

func TestAlertZeroTimeRendering(t *testing.T) {
	// An alert that somehow carries no timestamp must not render as the
	// zero time ("0001-01-01...", year 1): JSON serializes it as "" and
	// FormatTime says "unset", so a SIEM timeline is never silently
	// corrupted (regression guard for the PR-1 zero-timestamp bug, now
	// also enforced by dynalint's zerotime analyzer).
	var a Alert
	if got := a.FormatTime(time.RFC3339); got != "unset" {
		t.Fatalf("FormatTime on zero alert = %q, want \"unset\"", got)
	}
	data, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "0001-01-01") {
		t.Fatalf("zero time leaked into JSON: %s", data)
	}
	var decoded map[string]any
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded["time"] != "" {
		t.Fatalf("time = %q, want empty string for unset", decoded["time"])
	}

	// A stamped alert still round-trips its timestamp.
	a.Time = time.Date(2016, 7, 10, 19, 30, 0, 0, time.UTC)
	if got := a.FormatTime("15:04:05"); got != "19:30:00" {
		t.Fatalf("FormatTime = %q", got)
	}
	data, err = json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "2016-07-10T19:30:00Z") {
		t.Fatalf("stamped time missing from JSON: %s", data)
	}
}

func TestFreshHostPOSTJoinsWatchedWCG(t *testing.T) {
	// After the clue fires, a POST to a host never seen pre-download (a
	// C&C call-back) must join the potential-infection WCG even without
	// any referrer or host linkage.
	e := New(Config{RedirectThreshold: 3}, constScorer(0.1))
	e.ProcessAll(infectionStream())
	before := e.Stats().Classifications
	cnc := mkTx("203.0.113.66", "/beacon.php", "POST", 200, "text/plain", 16, "", 2*time.Second)
	e.Process(cnc)
	if got := e.Stats().Classifications; got != before+1 {
		t.Fatalf("classifications = %d, want %d (callback must re-classify)", got, before+1)
	}
	w := e.Watched()
	if len(w) != 1 {
		t.Fatal("watch lost")
	}
	// An unrelated GET to a fresh host does NOT join.
	e.Process(mkTx("random.org", "/", "GET", 200, "text/html", 10, "", 3*time.Second))
	if got := e.Stats().Classifications; got != before+1 {
		t.Fatalf("unrelated GET re-classified (%d)", got)
	}
}
