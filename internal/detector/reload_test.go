package detector

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"dynaminer/internal/ml"
	"dynaminer/internal/obs"
)

// trainDimForest trains a small forest on random vectors of the given
// feature dimensionality, so reload tests can produce both compatible
// (37-feature) and mis-dimensioned candidates.
func trainDimForest(tb testing.TB, dim int, seed int64) *ml.FlatForest {
	tb.Helper()
	rng := rand.New(rand.NewSource(seed))
	ds := &ml.Dataset{}
	for i := 0; i < 40; i++ {
		x := make([]float64, dim)
		for j := range x {
			x[j] = rng.Float64()
		}
		ds.X = append(ds.X, x)
		ds.Y = append(ds.Y, i%2)
	}
	f, err := ml.TrainForest(ds, ml.ForestConfig{NumTrees: 3, Seed: seed})
	if err != nil {
		tb.Fatal(err)
	}
	return f.Flatten()
}

// writeBlob saves a forest's DMFB blob under dir and returns the path.
func writeBlob(tb testing.TB, dir, name string, ff *ml.FlatForest) string {
	tb.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, ff.AppendFlatBlob(nil), 0o644); err != nil {
		tb.Fatal(err)
	}
	return path
}

// counterValue reads a counter from a registry snapshot by name.
func counterValue(tb testing.TB, reg *obs.Registry, name string) int64 {
	tb.Helper()
	for _, ms := range reg.Snapshot() {
		if ms.Name == name {
			return ms.Value
		}
	}
	tb.Fatalf("metric %s not registered", name)
	return 0
}

// TestReloadCorruptBlobRejectedPreSwap is the reload safety regression:
// a corrupted DMFB artifact must be rejected before the swap — the old
// model keeps scoring, the failure is counted, and no cluster takes a
// quarantine strike.
func TestReloadCorruptBlobRejectedPreSwap(t *testing.T) {
	serving := trainDimForest(t, 37, 11)
	s := NewSharded(Config{Shards: 2, RedirectThreshold: 3}, serving)
	v0 := s.ModelVersion()
	if v0.Gen != 1 || v0.CRC != serving.BlobCRC() {
		t.Fatalf("initial version = %v, want g1 with the serving blob CRC", v0)
	}

	blob := serving.AppendFlatBlob(nil)
	blob[len(blob)/2] ^= 0xFF // corrupt a node slab byte
	dir := t.TempDir()
	bad := filepath.Join(dir, "corrupt.dmfb")
	if err := os.WriteFile(bad, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := s.ReloadModelFile(bad); err == nil {
		t.Fatal("corrupt blob reload must fail")
	}
	if got := s.ModelVersion(); got != v0 {
		t.Fatalf("rejected reload changed the serving version: %v -> %v", v0, got)
	}
	if n := counterValue(t, s.Registry(), "dynaminer_model_reload_failures_total"); n != 1 {
		t.Fatalf("reload failures = %d, want 1", n)
	}
	if n := counterValue(t, s.Registry(), "dynaminer_model_reloads_total"); n != 0 {
		t.Fatalf("reloads = %d, want 0", n)
	}

	// The engine still serves: the infection stream classifies through the
	// untouched model without any quarantine trip.
	s.ProcessAll(infectionStream())
	st := s.Stats()
	if st.CluesFired != 1 || st.Classifications == 0 {
		t.Fatalf("engine stopped serving after rejected reload: %+v", st)
	}
	if st.Panics != 0 || st.Quarantined != 0 {
		t.Fatalf("rejected reload tripped quarantine: %+v", st)
	}

	// An unreadable path and a mis-dimensioned model ride the same
	// pre-swap rejection.
	if _, err := s.ReloadModelFile(filepath.Join(dir, "missing.dmfb")); err == nil {
		t.Fatal("missing file reload must fail")
	}
	narrow := writeBlob(t, dir, "narrow.dmfb", trainDimForest(t, 5, 12))
	if _, err := s.ReloadModelFile(narrow); err == nil {
		t.Fatal("mis-dimensioned reload must fail")
	}
	if got := s.ModelVersion(); got != v0 {
		t.Fatalf("serving version drifted across rejected reloads: %v", got)
	}
	if n := counterValue(t, s.Registry(), "dynaminer_model_reload_failures_total"); n != 3 {
		t.Fatalf("reload failures = %d, want 3", n)
	}
}

// TestReloadSwapAndRollback pins the version lifecycle: a valid reload
// advances the generation, rollback reinstates the previous model under
// its original identity, and rollback is its own inverse.
func TestReloadSwapAndRollback(t *testing.T) {
	first := trainDimForest(t, 37, 21)
	second := trainDimForest(t, 37, 22)
	s := NewSharded(Config{Shards: 2}, first)
	v1 := s.ModelVersion()

	path := writeBlob(t, t.TempDir(), "second.dmfb", second)
	v2, err := s.ReloadModelFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if v2.Gen != v1.Gen+1 || v2.CRC != second.BlobCRC() {
		t.Fatalf("reload version = %v, want generation %d with the new blob CRC", v2, v1.Gen+1)
	}
	if s.ModelVersion() != v2 {
		t.Fatal("serving version not advanced")
	}
	if n := counterValue(t, s.Registry(), "dynaminer_model_reloads_total"); n != 1 {
		t.Fatalf("reloads = %d, want 1", n)
	}

	back, err := s.RollbackModel()
	if err != nil {
		t.Fatal(err)
	}
	if back != v1 || s.ModelVersion() != v1 {
		t.Fatalf("rollback reinstated %v, want the original %v", back, v1)
	}
	fwd, err := s.RollbackModel() // inverse: back to the reloaded model
	if err != nil || fwd != v2 {
		t.Fatalf("double rollback = %v, %v; want %v", fwd, err, v2)
	}

	e := New(Config{}, first)
	if _, err := e.RollbackModel(); err == nil {
		t.Fatal("rollback with no previous model must fail")
	}
	if _, err := e.SwapModel(nil); err == nil {
		t.Fatal("nil swap must fail")
	}
}

// TestMidStreamReloadPinsWatches is the hot-swap acceptance differential:
// a watch armed before the swap keeps scoring through its pinned model —
// bit-identical to an engine that never reloaded — while watches armed
// after the swap pick up the new model.
func TestMidStreamReloadPinsWatches(t *testing.T) {
	txs := relatedFollowUp(2) // clue at index 4, growth, second download at the end

	pinnedRun := New(Config{RedirectThreshold: 3}, constScorer(0.9))
	steadyRun := New(Config{RedirectThreshold: 3}, constScorer(0.9))

	var pinnedAlerts, steadyAlerts []Alert
	for i, tx := range txs {
		pinnedAlerts = append(pinnedAlerts, pinnedRun.Process(tx)...)
		steadyAlerts = append(steadyAlerts, steadyRun.Process(tx)...)
		if i == 4 {
			// Swap right after the watch armed: the pinned run now serves a
			// different scorer, but this watch must not notice.
			if _, err := pinnedRun.SwapModel(constScorer(0.2)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if len(pinnedAlerts) == 0 || len(pinnedAlerts) != len(steadyAlerts) {
		t.Fatalf("alert counts diverged: swapped=%d steady=%d", len(pinnedAlerts), len(steadyAlerts))
	}
	for i := range pinnedAlerts {
		p, s := pinnedAlerts[i], steadyAlerts[i]
		if math.Float64bits(p.Score) != math.Float64bits(s.Score) {
			t.Fatalf("alert %d score diverged across mid-stream reload: %v vs %v", i, p.Score, s.Score)
		}
		if p.ClusterID != s.ClusterID || p.Client != s.Client || !p.Time.Equal(s.Time) {
			t.Fatalf("alert %d identity diverged: %+v vs %+v", i, p, s)
		}
	}

	// A watch armed after the swap scores with the new model: close the
	// pinned watch by idling past WatchIdle, then re-offend.
	later := 30 * time.Minute
	second := infectionStream()
	for i := range second {
		second[i].ReqTime = second[i].ReqTime.Add(later)
		second[i].RespTime = second[i].RespTime.Add(later)
	}
	alerts := pinnedRun.ProcessAll(second)
	if len(alerts) != 0 {
		t.Fatalf("post-swap watch alerted at score 0.2: %+v", alerts)
	}
	if pinnedRun.Stats().CluesFired != 2 {
		t.Fatalf("second clue did not fire: %+v", pinnedRun.Stats())
	}
}
