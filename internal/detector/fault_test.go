package detector

import (
	"math"
	"math/rand"
	"net/netip"
	"sort"
	"strings"
	"testing"
	"time"

	"dynaminer/internal/httpstream"
	"dynaminer/internal/ml"
	"dynaminer/internal/synth"
)

// panicScorer fails hard on every classification.
type panicScorer struct{}

func (panicScorer) Score([]float64) float64 { panic("poisoned scorer") }

// nanScorer returns a non-finite probability on every classification.
type nanScorer struct{}

func (nanScorer) Score([]float64) float64 { return math.NaN() }

// gatedPanicScorer panics only while armed; the test arms it per
// transaction, which is well-defined because a plain Engine is serialized.
type gatedPanicScorer struct {
	base  Scorer
	armed bool
}

func (g *gatedPanicScorer) Score(x []float64) float64 {
	if g.armed {
		panic("poisoned client")
	}
	return g.base.Score(x)
}

// relatedFollowUp extends the infection stream with post-clue traffic to
// the watched chain: n non-download updates and one final download.
func relatedFollowUp(n int) []httpstream.Transaction {
	txs := infectionStream()
	at := 600 * time.Millisecond
	for i := 0; i < n; i++ {
		txs = append(txs, mkTx("d.evil", "/beacon", "GET", 200, "text/html", 512, "", at))
		at += 100 * time.Millisecond
	}
	txs = append(txs, mkTx("d.evil", "/second.exe", "GET", 200, "application/x-msdownload", 70000, "", at))
	return txs
}

// TestPanicQuarantineLadder walks one cluster down the full ladder: the
// first scorer panic quarantines it (incremental cache dropped, engine
// survives), the second evicts it outright.
func TestPanicQuarantineLadder(t *testing.T) {
	e := New(Config{RedirectThreshold: 3}, panicScorer{})
	txs := relatedFollowUp(0) // clue download, then a second download

	for _, tx := range txs[:5] {
		if got := e.Process(tx); got != nil {
			t.Fatalf("poisoned classify returned alerts: %v", got)
		}
	}
	st := e.Stats()
	if st.Panics != 1 || st.Quarantined != 1 {
		t.Fatalf("after first fault: stats %+v, want Panics=1 Quarantined=1", st)
	}
	if len(e.clusters) != 1 {
		t.Fatalf("quarantined cluster evicted too early (clusters=%d)", len(e.clusters))
	}
	if e.clusters[0].ib != nil || e.clusters[0].cache != nil {
		t.Fatal("quarantine must drop the incremental cache")
	}

	// The second classification rebuilds from scratch, faults again, and
	// the cluster is evicted.
	if got := e.Process(txs[5]); got != nil {
		t.Fatalf("second poisoned classify returned alerts: %v", got)
	}
	st = e.Stats()
	if st.Panics != 2 || st.Quarantined != 1 || st.Evicted != 1 {
		t.Fatalf("after second fault: stats %+v, want Panics=2 Quarantined=1 Evicted=1", st)
	}
	if len(e.clusters) != 0 {
		t.Fatalf("cluster survived the second fault (clusters=%d)", len(e.clusters))
	}
	if len(e.byClient) != 0 {
		t.Fatal("byClient index still references the evicted cluster")
	}

	// The engine keeps serving after the eviction.
	if e.Process(mkTx("fresh.com", "/", "GET", 200, "text/html", 100, "", time.Hour)); e.Stats().Transactions != 7 {
		t.Fatalf("engine stopped counting after eviction: %+v", e.Stats())
	}
}

// TestNonFiniteScoreQuarantines pins that a NaN probability rides the
// same ladder as a panic instead of corrupting threshold comparisons.
func TestNonFiniteScoreQuarantines(t *testing.T) {
	e := New(Config{RedirectThreshold: 3}, nanScorer{})
	for _, tx := range relatedFollowUp(0) {
		if got := e.Process(tx); got != nil {
			t.Fatalf("NaN score produced alerts: %v", got)
		}
	}
	st := e.Stats()
	if st.Panics != 2 || st.Quarantined != 1 || st.Evicted != 1 || st.Alerts != 0 {
		t.Fatalf("stats %+v, want the full ladder (Panics=2 Quarantined=1 Evicted=1) and zero alerts", st)
	}
}

// TestPoisonedClientDoesNotAffectOthers is the acceptance differential: a
// scorer that panics for exactly one client must degrade only that client
// — quarantine, rebuild, evict — while every other client's alert stream
// stays bit-identical to a fault-free engine's.
func TestPoisonedClientDoesNotAffectOthers(t *testing.T) {
	episodes := synth.GenerateCorpus(synth.Config{Seed: 97, Infections: 10, Benign: 8})
	// One distinct client per episode so per-client alert streams are
	// well-defined.
	var stream []httpstream.Transaction
	for i := range episodes {
		addr := netip.AddrFrom4([4]byte{10, 9, byte(i / 200), byte(1 + i%200)})
		for j := range episodes[i].Txs {
			episodes[i].Txs[j].ClientIP = addr
		}
		stream = append(stream, episodes[i].Txs...)
	}
	sort.SliceStable(stream, func(i, j int) bool { return stream[i].ReqTime.Before(stream[j].ReqTime) })

	cfg := Config{RedirectThreshold: 1, ScoreThreshold: 0.3}

	// Baseline: a healthy engine over the full interleaved stream.
	base := New(cfg, vecScorer{})
	var baseAlerts []Alert
	for _, tx := range stream {
		baseAlerts = append(baseAlerts, base.Process(tx)...)
	}
	if len(baseAlerts) == 0 {
		t.Fatal("baseline produced no alerts; the differential covers nothing")
	}
	poisoned := baseAlerts[0].Client

	// Faulty run: the scorer panics whenever the poisoned client's
	// transactions are being classified.
	gate := &gatedPanicScorer{base: vecScorer{}}
	faulty := New(cfg, gate)
	var faultyAlerts []Alert
	for _, tx := range stream {
		gate.armed = tx.ClientIP == poisoned
		faultyAlerts = append(faultyAlerts, faulty.Process(tx)...)
	}

	keepOthers := func(in []Alert) []Alert {
		var out []Alert
		for _, a := range in {
			if a.Client != poisoned {
				out = append(out, a)
			}
		}
		return out
	}
	wantOthers, gotOthers := keepOthers(baseAlerts), keepOthers(faultyAlerts)
	if len(wantOthers) == 0 {
		t.Fatal("no non-poisoned alerts to compare")
	}
	requireSameAlerts(t, "non-poisoned clients", gotOthers, wantOthers)

	for _, a := range faultyAlerts {
		if a.Client == poisoned {
			t.Fatalf("poisoned client still alerted: %+v", a)
		}
	}
	st := faulty.Stats()
	if st.Panics == 0 || st.Quarantined == 0 {
		t.Fatalf("poisoned client never walked the ladder: %+v", st)
	}
}

// slowClock advances a fixed step on every reading, so each classify
// appears to take one step of wall time.
type slowClock struct {
	t    time.Time
	step time.Duration
}

func (c *slowClock) Now() time.Time {
	c.t = c.t.Add(c.step)
	return c.t
}

// TestDegradedModeSkipsReclassification drives a watched WCG past the
// classify budget: growth continues, but only the clue firing and payload
// downloads are re-scored, and the skips are counted.
func TestDegradedModeSkipsReclassification(t *testing.T) {
	clock := &slowClock{t: t0, step: 40 * time.Millisecond}
	e := New(Config{
		RedirectThreshold:  3,
		MaxClassifyLatency: time.Millisecond,
		Now:                clock.Now,
	}, constScorer(0.9))

	txs := relatedFollowUp(4) // clue, 4 non-download updates, final download
	var alerts []Alert
	for _, tx := range txs {
		alerts = append(alerts, e.Process(tx)...)
	}
	st := e.Stats()
	// Classify #1 at the clue pushes the EWMA over the 1ms budget, so the
	// 4 non-download updates are skipped; the final download re-scores.
	if st.Classifications != 2 {
		t.Fatalf("classifications = %d, want 2 (clue + download): %+v", st.Classifications, st)
	}
	if st.Degraded != 4 {
		t.Fatalf("degraded = %d, want 4: %+v", st.Degraded, st)
	}
	// Degradation must not lose the alert-bearing moments.
	if len(alerts) != 2 || st.Alerts != 2 {
		t.Fatalf("alerts = %d (stats %+v), want clue + download alerts", len(alerts), st)
	}
	// The watch kept growing through the skipped updates.
	w := e.Watched()
	if len(w) != 1 || w[0].Transactions != len(txs) {
		t.Fatalf("watched = %+v, want one watch spanning all %d transactions", w, len(txs))
	}
}

// TestDegradationDisabledByDefault pins that with MaxClassifyLatency
// unset the engine never consults the clock and never degrades.
func TestDegradationDisabledByDefault(t *testing.T) {
	e := New(Config{RedirectThreshold: 3}, constScorer(0.9))
	e.now = func() time.Time { panic("clock consulted with degradation disabled") }
	for _, tx := range relatedFollowUp(4) {
		e.Process(tx)
	}
	st := e.Stats()
	if st.Degraded != 0 || st.Classifications != 6 {
		t.Fatalf("stats %+v, want every update classified", st)
	}
}

// shiftClient returns the infection stream re-attributed to a client and
// shifted in time.
func shiftClient(addr netip.Addr, by time.Duration) []httpstream.Transaction {
	txs := infectionStream()
	for i := range txs {
		txs[i].ClientIP = addr
		txs[i].ReqTime = txs[i].ReqTime.Add(by)
		txs[i].RespTime = txs[i].RespTime.Add(by)
	}
	return txs
}

// TestMaxWatchedShedsLargest pins the shedding step: when a new clue
// would exceed the watched-WCG ceiling, the largest existing watch is
// closed early and counted.
func TestMaxWatchedShedsLargest(t *testing.T) {
	e := New(Config{RedirectThreshold: 3, MaxWatched: 1}, constScorer(0.1))
	a := netip.MustParseAddr("10.5.0.1")
	b := netip.MustParseAddr("10.5.0.2")

	for _, tx := range shiftClient(a, 0) {
		e.Process(tx)
	}
	if w := e.Watched(); len(w) != 1 || w[0].Client != a {
		t.Fatalf("watched = %+v, want client a only", w)
	}
	for _, tx := range shiftClient(b, 2*time.Second) {
		e.Process(tx)
	}
	w := e.Watched()
	if len(w) != 1 || w[0].Client != b {
		t.Fatalf("watched = %+v, want client a shed and b kept", w)
	}
	st := e.Stats()
	if st.Shed != 1 || st.CluesFired != 2 {
		t.Fatalf("stats %+v, want Shed=1 CluesFired=2", st)
	}
	// The shed watch is preserved for offline extraction, exactly like a
	// watch that stopped growing.
	subsets := 0
	for _, c := range e.clusters {
		subsets += len(c.closed)
	}
	if subsets != 1 {
		t.Fatalf("shed watch not preserved in closed subsets (%d)", subsets)
	}
}

// TestShardProcessRecovers pins the shard-level last-resort guard: a
// panic that escapes Engine.Process (here: a corrupted client index, so
// the fault fires before cluster attribution) is swallowed at the shard
// boundary and counted, instead of unwinding into the caller.
func TestShardProcessRecovers(t *testing.T) {
	s := NewSharded(Config{Shards: 1}, constScorer(0))
	s.shards[0].eng.byClient = nil // poison: clusterFor writes into a nil map
	if got := s.Process(mkTx("x.com", "/", "GET", 200, "text/html", 10, "", 0)); got != nil {
		t.Fatalf("poisoned shard returned alerts: %v", got)
	}
	if st := s.Stats(); st.Panics != 1 {
		t.Fatalf("stats %+v, want Panics=1", st)
	}
	// The shard keeps serving.
	s.shards[0].eng.byClient = map[netip.Addr][]*cluster{}
	s.Process(mkTx("x.com", "/", "GET", 200, "text/html", 10, "", time.Second))
	if st := s.Stats(); st.Transactions != 2 {
		t.Fatalf("shard stopped serving: %+v", st)
	}
}

// trainNarrowForest trains a real ERF on deliberately 5-dimensional
// vectors — a stand-in for a model file from an older feature schema.
func trainNarrowForest(tb testing.TB) *ml.Forest {
	tb.Helper()
	rng := rand.New(rand.NewSource(3))
	ds := &ml.Dataset{}
	for i := 0; i < 60; i++ {
		x := make([]float64, 5)
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		y := ml.LabelBenign
		if i%2 == 0 {
			x[0] += 3
			y = ml.LabelInfection
		}
		ds.X = append(ds.X, x)
		ds.Y = append(ds.Y, y)
	}
	f, err := ml.TrainForest(ds, ml.ForestConfig{NumTrees: 3, Seed: 1})
	if err != nil {
		tb.Fatal(err)
	}
	return f
}

// TestMisdimensionedModelQuarantines is the engine-side regression test
// for the forest dimension guard: a model trained on a different feature
// schema (5 features) cannot score the engine's 37-feature vectors. The
// guard turns what used to be an index-out-of-range crash deep inside
// tree traversal into a named panic that the engine's fault isolation
// attributes like any other scorer fault: first classification
// quarantines the cluster, the rebuild's repeat fault evicts it, and the
// engine keeps serving other clients throughout.
func TestMisdimensionedModelQuarantines(t *testing.T) {
	e := New(Config{RedirectThreshold: 3}, trainNarrowForest(t))
	txs := relatedFollowUp(0)

	for _, tx := range txs[:5] {
		if got := e.Process(tx); got != nil {
			t.Fatalf("mis-dimensioned classify returned alerts: %v", got)
		}
	}
	st := e.Stats()
	if st.Panics != 1 || st.Quarantined != 1 {
		t.Fatalf("after clue classify: stats %+v, want Panics=1 Quarantined=1", st)
	}

	if got := e.Process(txs[5]); got != nil {
		t.Fatalf("rebuild classify returned alerts: %v", got)
	}
	st = e.Stats()
	if st.Panics != 2 || st.Evicted != 1 {
		t.Fatalf("after rebuild classify: stats %+v, want Panics=2 Evicted=1", st)
	}

	// The guard's panic is named and self-describing so the fault is
	// attributable from a stack trace (not just an index-out-of-range).
	defer func() {
		r := recover()
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "ml: ") || !strings.Contains(msg, "features") {
			t.Fatalf("guard panic = %v, want a named ml dimension message", r)
		}
	}()
	e.models.current().scorer.Score(make([]float64, 37))
}

// TestNewUpgradesForestToFlat pins the construction-time upgrade: a
// pointer-tree *ml.Forest handed to New serves as a *ml.FlatForest, and
// scorers that are not pointer forests (including a nil model for
// extraction-only mode) pass through untouched.
func TestNewUpgradesForestToFlat(t *testing.T) {
	f := trainNarrowForest(t)
	e := New(Config{}, f)
	ff, ok := e.models.current().scorer.(*ml.FlatForest)
	if !ok {
		t.Fatalf("engine model is %T, want *ml.FlatForest", e.models.current().scorer)
	}
	x := []float64{0.5, -1, 2, 0, 1}
	if math.Float64bits(f.Score(x)) != math.Float64bits(ff.Score(x)) {
		t.Fatal("flattened engine model scores differently from the trained forest")
	}
	if e := New(Config{}, nil); e.models.current().scorer != nil {
		t.Fatalf("nil model rewritten to %T", e.models.current().scorer)
	}
	if e := New(Config{}, constScorer(0.4)); e.models.current().scorer != (constScorer(0.4)) {
		t.Fatalf("non-forest scorer rewritten to %T", e.models.current().scorer)
	}
	if e := New(Config{}, (*ml.Forest)(nil)); e.models.current().scorer.(*ml.Forest) != nil {
		t.Fatal("typed-nil forest must pass through, not be flattened")
	}
}
