package detector

import "dynaminer/internal/obs"

// engineMetrics binds one Engine to an observability registry. Every
// Stats field is backed by a per-engine Cell on a registry-wide counter
// family: the shards of a ShardedEngine each write their own cell with
// no cache-line contention, each shard's Stats() view reads back exactly
// its own increments, and the registry's Counter.Value sums all shards
// for the /metrics total. The latency histograms and the watched gauge
// are shared across shards (they are concurrency-safe and have no
// per-shard view).
type engineMetrics struct {
	reg *obs.Registry

	transactions    *obs.Cell
	weeded          *obs.Cell
	clusters        *obs.Cell
	evicted         *obs.Cell
	cluesFired      *obs.Cell
	classifications *obs.Cell
	alerts          *obs.Cell
	dropped         *obs.Cell
	rebuilds        *obs.Cell
	panics          *obs.Cell
	quarantined     *obs.Cell
	degraded        *obs.Cell
	shed            *obs.Cell

	// watched tracks potential-infection WCGs currently under watch; it
	// moves at clue firings, watch closes, shedding and eviction.
	watched *obs.Gauge

	// Classify wall time split by path: the incremental hot path vs the
	// from-scratch rebuild fallback. Observed only when the engine is
	// timed (Config.Metrics or Config.MaxClassifyLatency set).
	classifyIncremental *obs.Histogram
	classifyRebuild     *obs.Histogram
	// score is the ERF ensemble's share of classify time.
	score *obs.Histogram
}

// newEngineMetrics registers (or re-binds to) the detector metric
// families on reg and allocates this engine's private counter cells. A
// nil reg gets a private registry, so counters and the Stats view work
// identically whether or not observability is exported.
func newEngineMetrics(reg *obs.Registry) *engineMetrics {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	cell := func(name, help string) *obs.Cell {
		return reg.Counter(name, help).NewCell()
	}
	return &engineMetrics{
		reg:             reg,
		transactions:    cell("dynaminer_detector_transactions_total", "Transactions ingested by the detection engine."),
		weeded:          cell("dynaminer_detector_weeded_total", "Transactions weeded out as trusted-vendor traffic."),
		clusters:        cell("dynaminer_detector_clusters_total", "Session clusters opened."),
		evicted:         cell("dynaminer_detector_evicted_total", "Session clusters evicted (TTL, janitor, or quarantine ladder)."),
		cluesFired:      cell("dynaminer_detector_clues_fired_total", "Infection clues fired (redirect chain + payload download)."),
		classifications: cell("dynaminer_detector_classifications_total", "Classifier invocations over watched WCGs."),
		alerts:          cell("dynaminer_detector_alerts_total", "Infection alerts emitted."),
		dropped:         cell("dynaminer_detector_dropped_total", "Transactions dropped by the MaxClusterTxs cap."),
		rebuilds:        cell("dynaminer_detector_rebuilds_total", "Classifications served by the from-scratch rebuild path."),
		panics:          cell("dynaminer_detector_panics_total", "Recovered per-transaction faults (panics and non-finite scores)."),
		quarantined:     cell("dynaminer_detector_quarantined_total", "Clusters placed in quarantine after their first fault."),
		degraded:        cell("dynaminer_detector_degraded_total", "Watched-WCG updates skipped in degraded mode."),
		shed:            cell("dynaminer_detector_shed_total", "Watches closed early to hold the MaxWatched ceiling."),
		watched: reg.Gauge("dynaminer_detector_watched_total",
			"Potential-infection WCGs currently under watch."),
		classifyIncremental: reg.Histogram("dynaminer_detector_classify_incremental_seconds",
			"Classify wall time on the incremental path.", obs.LatencyBuckets),
		classifyRebuild: reg.Histogram("dynaminer_detector_classify_rebuild_seconds",
			"Classify wall time on the from-scratch rebuild path.", obs.LatencyBuckets),
		score: reg.Histogram("dynaminer_ml_score_seconds",
			"ERF ensemble scoring time per classification.", obs.LatencyBuckets),
	}
}

// engineStages holds the interned trace stage IDs for the detector's
// span tree. Interning happens once at engine construction so StartSpan
// on the hot path is an array write, never a map lookup.
type engineStages struct {
	process     obs.StageID
	classify    obs.StageID
	featInc     obs.StageID
	featRebuild obs.StageID
	score       obs.StageID
	journal     obs.StageID
}

func newEngineStages(t *obs.Tracer) engineStages {
	return engineStages{
		process:     t.Stage("detector.process"),
		classify:    t.Stage("detector.classify"),
		featInc:     t.Stage("features.incremental"),
		featRebuild: t.Stage("features.rebuild"),
		score:       t.Stage("ml.score"),
		journal:     t.Stage("journal.write"),
	}
}
