package detector

// Pipeline-tracing integration tests: every alert's journal record links
// to a span tree in the ring whose stages nest inside the end-to-end
// detector.process span and match the classification path actually taken
// (incremental vs from-scratch rebuild), and Engine.Health reports each
// degradation condition the /healthz endpoint serves.

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"dynaminer/internal/obs"
)

// traceFixture runs the infection stream through a fully traced engine
// and returns the tracer plus the journal records it produced.
func traceFixture(t *testing.T, disableIncremental bool) (*obs.Tracer, []obs.AlertRecord) {
	t.Helper()
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(reg, obs.TraceConfig{Sample: 1})
	var buf bytes.Buffer
	e := New(Config{
		RedirectThreshold:  3,
		DisableIncremental: disableIncremental,
		Metrics:            reg,
		Journal:            obs.NewJournalWriter(&buf),
		Tracer:             tracer,
	}, constScorer(0.9))
	var alerts []Alert
	for _, tx := range infectionStream() {
		alerts = append(alerts, e.ProcessTraced(tx, nil)...)
	}
	if len(alerts) != 1 {
		t.Fatalf("infection stream raised %d alerts, want 1", len(alerts))
	}
	recs, err := obs.ReadJournal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("journal has %d records, want 1", len(recs))
	}
	return tracer, recs
}

// checkAlertTrace resolves a journal record's trace id and validates the
// span tree: rooted at detector.process, every stage span inside the
// root's interval, direct children summing within it, and a stage set
// consistent with the record's incremental flag.
func checkAlertTrace(t *testing.T, tracer *obs.Tracer, rec obs.AlertRecord) obs.TraceSnapshot {
	t.Helper()
	if rec.TraceID == 0 {
		t.Fatal("alert journal record carries no trace_id")
	}
	snap, ok := tracer.Find(rec.TraceID)
	if !ok {
		t.Fatalf("trace %d not resolvable in the ring", rec.TraceID)
	}
	if !snap.Alert {
		t.Fatalf("alerting trace %d not alert-promoted: %+v", rec.TraceID, snap)
	}
	if len(snap.Spans) == 0 || snap.Spans[0].Stage != "detector.process" || snap.Spans[0].Parent != -1 {
		t.Fatalf("trace not rooted at detector.process: %+v", snap.Spans)
	}
	root := snap.Spans[0]
	if !strings.Contains(root.Flags, "alert") {
		t.Fatalf("root span of an alerting trace lacks the alert flag: %+v", root)
	}
	rootEnd := root.Start + root.Dur
	var childSum float64
	const eps = 1e-6
	for i := 1; i < len(snap.Spans); i++ {
		sp := snap.Spans[i]
		if sp.Start+eps < root.Start || sp.Start+sp.Dur > rootEnd+eps {
			t.Fatalf("span %q [%v,%v]us escapes the end-to-end span [%v,%v]us",
				sp.Stage, sp.Start, sp.Start+sp.Dur, root.Start, rootEnd)
		}
		if sp.Parent == 0 {
			childSum += sp.Dur
		}
	}
	if childSum > root.Dur+eps {
		t.Fatalf("direct children sum to %vus, more than the %vus end-to-end span", childSum, root.Dur)
	}
	return snap
}

// stageSet indexes a snapshot's spans by stage name.
func stageSet(snap obs.TraceSnapshot) map[string]obs.TraceSpan {
	set := map[string]obs.TraceSpan{}
	for _, sp := range snap.Spans {
		set[sp.Stage] = sp
	}
	return set
}

// TestAlertTraceLinkage is the per-engine acceptance check: the alert's
// trace resolves to a well-formed tree whose feature-extraction stage
// matches the path the journal record says was taken.
func TestAlertTraceLinkage(t *testing.T) {
	for _, tc := range []struct {
		name    string
		disable bool
	}{{"default", false}, {"rebuild-only", true}} {
		t.Run(tc.name, func(t *testing.T) {
			tracer, recs := traceFixture(t, tc.disable)
			snap := checkAlertTrace(t, tracer, recs[0])
			set := stageSet(snap)

			classify, ok := set["detector.classify"]
			if !ok || classify.Parent != 0 {
				t.Fatalf("no detector.classify span under the root: %+v", snap.Spans)
			}
			if _, ok := set["ml.score"]; !ok {
				t.Fatalf("no ml.score span: %+v", snap.Spans)
			}
			if _, ok := set["journal.write"]; !ok {
				t.Fatalf("no journal.write span: %+v", snap.Spans)
			}

			_, inc := set["features.incremental"]
			_, reb := set["features.rebuild"]
			if recs[0].Incremental {
				if !inc || reb {
					t.Fatalf("record says incremental but spans say inc=%v rebuild=%v", inc, reb)
				}
				if !strings.Contains(classify.Flags, "incremental") {
					t.Fatalf("classify span flags %q lack incremental", classify.Flags)
				}
			} else {
				if !reb {
					t.Fatalf("record says rebuild but the trace has no features.rebuild span: %+v", snap.Spans)
				}
				if !strings.Contains(classify.Flags, "rebuild") {
					t.Fatalf("classify span flags %q lack rebuild", classify.Flags)
				}
			}
			if tc.disable && inc {
				t.Fatal("DisableIncremental engine recorded a features.incremental span")
			}
		})
	}
}

// TestUntracedEngineUnchanged: a nil tracer keeps Process allocation- and
// behavior-identical, and a restoring engine never traces.
func TestUntracedEngineUnchanged(t *testing.T) {
	e := New(Config{RedirectThreshold: 3}, constScorer(0.9))
	if got := len(e.ProcessAll(infectionStream())); got != 1 {
		t.Fatalf("untraced engine raised %d alerts", got)
	}
}

// TestQuarantineSpanAttribution: a scorer panic flags the trace with
// error+quarantined so slow-path exemplars carry fault attribution.
func TestQuarantineSpanAttribution(t *testing.T) {
	tracer := obs.NewTracer(nil, obs.TraceConfig{Sample: 1})
	e := New(Config{RedirectThreshold: 3, Tracer: tracer}, panicScorer{})
	for _, tx := range infectionStream() {
		if got := e.ProcessTraced(tx, nil); got != nil {
			t.Fatalf("poisoned classify returned alerts: %v", got)
		}
	}
	if e.Stats().Panics != 1 {
		t.Fatalf("stats %+v, want one panic", e.Stats())
	}
	snaps := tracer.Snapshots()
	if len(snaps) == 0 {
		t.Fatal("no traces kept at Sample=1")
	}
	last := snaps[len(snaps)-1]
	root := last.Spans[0]
	if root.Stage != "detector.process" ||
		!strings.Contains(root.Flags, "error") || !strings.Contains(root.Flags, "quarantined") {
		t.Fatalf("faulting trace root = %+v, want error+quarantined flags", root)
	}
	if !e.Health().Quarantined {
		t.Fatal("engine not quarantined after a scorer panic")
	}
}

// TestEngineHealthConditions drives each readiness condition
// individually: fresh, shedding (MaxWatched saturated), degraded
// (classify EWMA over budget), and model version presence.
func TestEngineHealthConditions(t *testing.T) {
	fresh := New(Config{RedirectThreshold: 3}, constScorer(0.9))
	st := fresh.Health()
	if st.Degraded || st.Quarantined || st.Shedding {
		t.Fatalf("fresh engine health = %+v, want clean", st)
	}
	if st.ModelVersion == "" {
		t.Fatal("health lacks a model version")
	}

	shed := New(Config{RedirectThreshold: 3, MaxWatched: 1}, constScorer(0.1))
	shed.ProcessAll(infectionStream())
	if st := shed.Health(); !st.Shedding {
		t.Fatalf("MaxWatched=1 engine with a live watch not shedding: %+v", st)
	}

	clock := &slowClock{t: t0, step: 40 * time.Millisecond}
	slow := New(Config{
		RedirectThreshold:  3,
		MaxClassifyLatency: time.Millisecond,
		Now:                clock.Now,
	}, constScorer(0.1))
	slow.ProcessAll(infectionStream())
	if st := slow.Health(); !st.Degraded {
		t.Fatalf("over-budget engine not degraded: %+v", st)
	}
}

// TestShardedHealthAggregation: any shard's condition surfaces on the
// sharded engine's health.
func TestShardedHealthAggregation(t *testing.T) {
	se := NewSharded(Config{RedirectThreshold: 3, Shards: 4, MaxWatched: 1}, constScorer(0.1))
	if st := se.Health(); st.Degraded || st.Quarantined || st.Shedding || st.ModelVersion == "" {
		t.Fatalf("fresh sharded health = %+v, want clean with a model version", st)
	}
	// The infection stream is one client: exactly one shard saturates its
	// MaxWatched=1, and the aggregate must report shedding.
	for _, tx := range infectionStream() {
		se.Process(tx)
	}
	if st := se.Health(); !st.Shedding {
		t.Fatalf("sharded health after saturating one shard = %+v, want shedding", st)
	}
}
