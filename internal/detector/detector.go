// Package detector implements DynaMiner's Stage 2, on-the-wire malware
// detection (Section V-B): it consumes a live stream of HTTP transactions,
// weeds out trusted-vendor traffic, clusters transactions into per-client
// sessions via session IDs, referrer linkage and timestamps, infers
// infection clues (a redirection chain of length >= L followed by a
// download of a likely-malicious payload type), goes back in time to build
// a potential-infection WCG around each clue, and re-classifies that WCG
// with the trained ERF model on every related update until the session
// ends or the WCG stops growing.
package detector

import (
	"encoding/json"
	"math"
	"net/netip"
	"strings"
	"time"

	"dynaminer/internal/features"
	"dynaminer/internal/graph"
	"dynaminer/internal/httpstream"
	"dynaminer/internal/ml"
	"dynaminer/internal/obs"
	"dynaminer/internal/wcg"
)

// Scorer produces the infection probability of a feature vector. The ERF
// classifier satisfies it in both representations (*ml.Forest and
// *ml.FlatForest); New upgrades the former to the latter.
type Scorer interface {
	Score(x []float64) float64
}

// VoteScorer is optionally implemented by scorers that can report the
// per-tree vote tally alongside the ensemble score (*ml.Forest and
// *ml.FlatForest both do).
// ScoreWithVotes must accumulate in exactly the same order as Score so
// the score it returns is bit-identical; the journal uses it to record
// how contested each alert's verdict was.
type VoteScorer interface {
	ScoreWithVotes(x []float64) (score float64, votes, trees int)
}

// Config tunes the on-the-wire engine.
type Config struct {
	// RedirectThreshold is L in the clue rule; the forensic case study uses
	// 3. Zero selects 3.
	RedirectThreshold int
	// ScoreThreshold is the ERF probability above which an alert fires.
	// Zero selects 0.5.
	ScoreThreshold float64
	// TrustedVendors lists host suffixes whose traffic is weeded out
	// before WCG construction (app stores, software repositories).
	TrustedVendors []string
	// SessionGap is the inactivity window beyond which a transaction
	// starts a new session cluster instead of joining the client's most
	// recent one. Zero selects 5 minutes.
	SessionGap time.Duration
	// WatchIdle closes a potential-infection WCG that has stopped growing
	// for this long (Section V-B: DynaMiner watches each WCG "until ...
	// the WCG stops growing"); later clues in the same session open a
	// fresh WCG. Zero selects 3 minutes.
	WatchIdle time.Duration
	// MaxClusterTxs caps a cluster's transaction history to bound memory
	// on long-lived sessions. Zero selects 4096.
	MaxClusterTxs int
	// ClusterTTL evicts session clusters idle longer than this, bounding
	// memory on long-running deployments. Zero selects 1 hour.
	ClusterTTL time.Duration
	// Shards is the number of independent engine shards a ShardedEngine
	// routes clients across. Zero selects runtime.GOMAXPROCS(0). A plain
	// Engine ignores it.
	Shards int
	// DisableIncremental forces every classification onto the from-scratch
	// path: rebuild the watched WCG with FromTransactions and re-extract
	// all 37 features on each update. The incremental path produces
	// bit-identical scores and alerts (pinned by the differential tests),
	// so this knob exists for debugging and as the documented fallback.
	DisableIncremental bool
	// MaxClassifyLatency is the per-classification time budget. When the
	// smoothed classify latency exceeds it, the engine degrades: watched
	// WCGs keep growing but are re-scored only at clue boundaries (the
	// clue firing and payload downloads), and the skips are counted in
	// Stats.Degraded. Zero disables degradation, keeping every update
	// classified.
	MaxClassifyLatency time.Duration
	// MaxWatched caps how many potential-infection WCGs one engine (one
	// shard of a ShardedEngine) watches concurrently. When a new clue
	// would exceed the cap, the largest existing watches are shed
	// (closed early, counted in Stats.Shed) so a burst of clue-triggering
	// traffic degrades gracefully instead of pinning the classify budget.
	// Zero means unlimited.
	MaxWatched int
	// Now supplies time for the classify-latency measurement; nil selects
	// time.Now. Only consulted when MaxClassifyLatency or Metrics is set,
	// so replays with both knobs off never observe the wall clock.
	Now func() time.Time
	// Metrics selects the observability registry the engine's counters,
	// the watched gauge and the classify/score latency histograms are
	// registered on (shards of one ShardedEngine share it). nil keeps a
	// private registry: the Stats view still works, nothing is exported,
	// and no timing instrumentation (clock reads) is enabled.
	Metrics *obs.Registry
	// Journal, when set, receives one provenance record per alert: the
	// arming clue, the WCG shape, the exact feature vector and score the
	// classifier used, and the degraded-mode flags active at decision
	// time. Journal failures never affect detection.
	Journal *obs.Journal
	// Tracer, when set, records one span tree per transaction —
	// detector.process → detector.classify → features.incremental or
	// features.rebuild → ml.score → journal.write — with shard,
	// quarantine and degraded attribution on the spans, sampled and
	// promoted per the tracer's config. Shards of a ShardedEngine share
	// it. nil disables tracing entirely (the hot path pays one nil
	// check).
	Tracer *obs.Tracer
}

func (c Config) withDefaults() Config {
	if c.RedirectThreshold == 0 {
		c.RedirectThreshold = 3
	}
	if c.ScoreThreshold == 0 {
		c.ScoreThreshold = 0.5
	}
	if c.SessionGap == 0 {
		c.SessionGap = 5 * time.Minute
	}
	if c.WatchIdle == 0 {
		c.WatchIdle = 3 * time.Minute
	}
	if c.MaxClusterTxs == 0 {
		c.MaxClusterTxs = 4096
	}
	if c.ClusterTTL == 0 {
		c.ClusterTTL = time.Hour
	}
	if len(c.TrustedVendors) > 0 {
		// DNS names are case-insensitive; hosts are normalized to lowercase
		// at extraction, so the weed-out list must be too.
		lowered := make([]string, len(c.TrustedVendors))
		for i, v := range c.TrustedVendors {
			lowered[i] = strings.ToLower(v)
		}
		c.TrustedVendors = lowered
	}
	return c
}

// evictEvery is how many processed transactions pass between idle-cluster
// sweeps.
const evictEvery = 512

// DefaultTrustedVendors is the weed-out list used by the examples and
// benches: well-known application stores and software repositories.
var DefaultTrustedVendors = []string{
	"vendor-store.com",
	"trusted-repo.org",
	"windowsupdate.com",
	"apple.com",
	"mozilla.org",
}

// Alert is one infection verdict.
type Alert struct {
	Time      time.Time
	Client    netip.Addr
	ClusterID int
	Score     float64
	// TriggerHost is the host that served the payload whose download
	// produced the alert.
	TriggerHost string
	// TriggerPayload is the payload class of the triggering download.
	TriggerPayload wcg.PayloadClass
	// WCG is the potential-infection graph at alert time.
	WCG *wcg.WCG
}

// FormatTime renders the alert timestamp in the given layout, or "unset"
// when the alert carries no timestamp: the zero time.Time would render as
// the year 1 and silently corrupt SIEM timelines.
func (a Alert) FormatTime(layout string) string {
	if a.Time.IsZero() {
		return "unset"
	}
	return a.Time.Format(layout)
}

// MarshalJSON renders the alert as a SIEM-friendly JSON object (the WCG is
// summarized, not embedded).
func (a Alert) MarshalJSON() ([]byte, error) {
	order, size := 0, 0
	if a.WCG != nil {
		order, size = a.WCG.Order(), a.WCG.Size()
	}
	// An unset timestamp serializes as "", never as the zero time's
	// "0001-01-01T00:00:00Z".
	ts := ""
	if !a.Time.IsZero() {
		ts = a.Time.UTC().Format(time.RFC3339Nano)
	}
	return json.Marshal(struct {
		Time      string  `json:"time"`
		Client    string  `json:"client"`
		ClusterID int     `json:"clusterId"`
		Score     float64 `json:"score"`
		Host      string  `json:"host"`
		Payload   string  `json:"payload"`
		WCGOrder  int     `json:"wcgOrder"`
		WCGSize   int     `json:"wcgSize"`
	}{
		Time:      ts,
		Client:    a.Client.String(),
		ClusterID: a.ClusterID,
		Score:     a.Score,
		Host:      a.TriggerHost,
		Payload:   a.TriggerPayload.String(),
		WCGOrder:  order,
		WCGSize:   size,
	})
}

// Stats counts engine activity, matching the numbers the case studies
// report (transactions inspected, clues fired, classifier invocations).
type Stats struct {
	Transactions    int
	Weeded          int
	Clusters        int
	Evicted         int
	CluesFired      int
	Classifications int
	Alerts          int
	// Dropped counts transactions discarded because their cluster hit
	// MaxClusterTxs.
	Dropped int
	// Rebuilds counts classifications served by the from-scratch path:
	// all of them when DisableIncremental is set, otherwise only watches
	// whose transactions arrived out of request-time order, plus every
	// classification of a quarantined cluster.
	Rebuilds int
	// Panics counts per-transaction faults the engine recovered from: a
	// panic while processing or classifying, or a scorer returning a
	// non-finite probability. The transaction's alerts are discarded; the
	// engine itself keeps serving.
	Panics int
	// Quarantined counts clusters placed in quarantine after their first
	// fault: the incremental cache is dropped and every later
	// classification of that cluster rebuilds from scratch. A second
	// fault evicts the cluster outright (counted in Evicted).
	Quarantined int
	// Degraded counts watched-WCG updates whose re-classification was
	// skipped because the engine exceeded MaxClassifyLatency; the WCG
	// still grows and is re-scored at the next clue boundary.
	Degraded int
	// Shed counts watches closed early to hold the MaxWatched ceiling.
	Shed int
}

// add accumulates o into s (used to aggregate shard counters).
func (s *Stats) add(o Stats) {
	s.Transactions += o.Transactions
	s.Weeded += o.Weeded
	s.Clusters += o.Clusters
	s.Evicted += o.Evicted
	s.CluesFired += o.CluesFired
	s.Classifications += o.Classifications
	s.Alerts += o.Alerts
	s.Dropped += o.Dropped
	s.Rebuilds += o.Rebuilds
	s.Panics += o.Panics
	s.Quarantined += o.Quarantined
	s.Degraded += o.Degraded
	s.Shed += o.Shed
}

// clickGap separates automatic redirections from human link-clicks, as in
// the WCG construction stage.
const clickGap = 2 * time.Second

// txMeta caches per-transaction linkage facts so the backward chain walk
// does not re-parse bodies.
type txMeta struct {
	host      string
	refHost   string
	locHost   string
	sniff     []string // redirect target hosts sniffed from the body
	refRecent bool     // the referring host was active within clickGap
	download  bool     // 2xx response with a likely-malicious payload type
	post      bool
	payload   wcg.PayloadClass
}

type cluster struct {
	id         int
	client     netip.Addr
	txs        []httpstream.Transaction
	metas      []txMeta
	hosts      map[string]struct{}
	sessions   map[string]struct{}
	hostLast   map[string]time.Time
	lastActive time.Time
	redirects  int // running count of redirect evidence (sum-of-all rule)

	watching  bool
	alerted   bool
	watch     []int // indices into txs forming the potential-infection WCG
	snapshot  []int // the watch set at the moment the clue fired
	watchLast time.Time
	related   map[string]struct{}
	preWatch  map[string]struct{} // hosts seen before the clue fired

	// Clue provenance for the current watch, recorded in journal entries:
	// the host and payload class of the arming download and the redirect
	// evidence accumulated when it fired.
	clueHost      string
	cluePayload   wcg.PayloadClass
	clueRedirects int

	// closed holds the watch sets of WCGs that stopped growing, for
	// offline subset extraction.
	closed [][]int

	// pinned is the model reference that armed the current watch: every
	// classification of this watch scores through it, so an episode is
	// judged by one forest end-to-end even if the engine hot-swaps models
	// while the WCG grows. nil outside a watch.
	pinned *modelRef

	// Incremental classification state for the current watch: the live
	// WCG, its feature cache, and how many watch entries have been fed.
	// incBroken pins the from-scratch fallback for the rest of a watch
	// whose transactions arrived out of request-time order.
	ib        *wcg.IncrementalBuilder
	cache     *features.Cache
	fed       int
	incBroken bool

	// faults is the cluster's position on the quarantine ladder: 0 is
	// healthy, 1 is quarantined (incremental cache dropped, every
	// classification rebuilds from scratch), and a second fault evicts
	// the cluster.
	faults int
}

// Engine is the streaming detector. It is not safe for concurrent use; run
// one Engine per capture point, serialize access, or use a ShardedEngine,
// which partitions clients across independently locked Engines.
type Engine struct {
	cfg Config
	// models holds the serving scorer behind an atomic pointer tagged with
	// a ModelVersion; shards of a ShardedEngine share one holder, so a
	// hot-swap reaches every shard's next watch arming at once.
	models   *modelHolder
	clusters []*cluster
	byClient map[netip.Addr][]*cluster
	// mx backs every Stats counter with registry cells; Stats() is a
	// bridged view over it.
	mx      *engineMetrics
	journal *obs.Journal
	// idBase/idStep parameterize cluster ID allocation so the shards of a
	// ShardedEngine never collide: shard i of n allocates i, i+n, i+2n, ...
	idBase, idStep int
	// scratch is the graph workspace shared by every cluster's feature
	// cache (safe: the engine is serialized); fvec is the reusable
	// classification vector and subset the reusable rebuild slab
	// (wcg.FromTransactions copies its input, so reuse is safe).
	scratch *graph.Scratch
	fvec    []float64
	subset  []httpstream.Transaction
	// rebuild is the reusable feature cache for the from-scratch classify
	// fallback: Reset against each rebuilt WCG, it derives the vector with
	// the engine's shared scratch instead of allocating fresh featurization
	// state per rebuild. Bit-identical to features.Extract by the Reset
	// contract.
	rebuild features.Cache
	// now and classifyEWMA drive overload detection: an exponentially
	// weighted average of classify wall time, compared against
	// Config.MaxClassifyLatency. timed enables the clock reads: set when
	// either MaxClassifyLatency (degradation) or Metrics (latency
	// histograms) asks for them.
	now          func() time.Time
	timed        bool
	classifyEWMA time.Duration
	// txSeen counts transactions this engine ingested, driving the inline
	// eviction cadence. Unlike the metrics cell it is checkpointed and
	// restored, so a recovered engine sweeps at the same transaction
	// offsets as an uninterrupted run — a prerequisite for bit-identical
	// post-recovery alerts.
	txSeen int64
	// restoring suppresses classification, stat counters and watch
	// shedding while a checkpointed cluster's transactions are replayed
	// through the structural pipeline (see restoreCluster).
	restoring bool
	// tracer and stg drive pipeline tracing; at/atRoot carry the current
	// transaction's trace through the call tree (the engine is
	// serialized, so a field is safe and keeps every signature intact).
	// at is nil when tracing is off — every span call is nil-receiver
	// safe, so untraced engines pay one predictable branch.
	tracer *obs.Tracer
	stg    engineStages
	at     *obs.ActiveTrace
	atRoot int
	// ownAT is the engine's reusable trace recorder: engines are
	// serialized, so one embedded recorder per engine replaces the
	// tracer pool's Get/Put on every transaction (commit copies kept
	// trees out, so reuse is safe).
	ownAT obs.ActiveTrace
}

// New returns an Engine using the given trained model. A pointer-tree
// *ml.Forest is upgraded to its flattened struct-of-arrays form here,
// once, so every classification traverses the contiguous slabs instead of
// chasing node pointers; the flat representation scores bit-identically
// (pinned by ml's differential tests), so the upgrade changes latency,
// never verdicts.
func New(cfg Config, model Scorer) *Engine {
	if f, ok := model.(*ml.Forest); ok && f != nil {
		model = f.Flatten()
	}
	cfg = cfg.withDefaults()
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	mx := newEngineMetrics(cfg.Metrics)
	if cfg.Journal != nil {
		cfg.Journal.PublishMetrics(mx.reg)
	}
	e := &Engine{
		cfg:      cfg,
		models:   newModelHolder(mx.reg, model),
		byClient: make(map[netip.Addr][]*cluster),
		mx:       mx,
		journal:  cfg.Journal,
		idStep:   1,
		scratch:  graph.NewScratch(),
		now:      now,
		timed:    cfg.MaxClassifyLatency > 0 || cfg.Metrics != nil || cfg.Tracer != nil,
		tracer:   cfg.Tracer,
		atRoot:   -1,
	}
	if cfg.Tracer != nil {
		e.stg = newEngineStages(cfg.Tracer)
	}
	return e
}

// ModelVersion returns the serving model's version.
func (e *Engine) ModelVersion() ModelVersion { return e.models.current().version }

// SwapModel validates candidate and atomically replaces the serving
// model: watches armed before the swap keep scoring through their pinned
// version, watches armed after it pick up the new one. A rejected
// candidate (nil, wrong feature dimensionality) leaves serving untouched.
// A pointer-tree *ml.Forest is flattened first, exactly as in New.
func (e *Engine) SwapModel(candidate Scorer) (ModelVersion, error) {
	if f, ok := candidate.(*ml.Forest); ok && f != nil {
		candidate = f.Flatten()
	}
	return e.models.swap(candidate)
}

// ReloadModel loads a candidate through load and swaps it in; any load
// error, loader panic, or failed validation is counted as a reload
// failure and leaves the serving model untouched.
func (e *Engine) ReloadModel(load func() (Scorer, error)) (ModelVersion, error) {
	return e.models.reload(load)
}

// ReloadModelFile reads a model file (DMFB blob or JSON, sniffed) through
// the full semantic screens and hot-swaps it in.
func (e *Engine) ReloadModelFile(path string) (ModelVersion, error) {
	return e.models.reload(func() (Scorer, error) {
		ff, err := ml.LoadModelFile(path)
		if err != nil {
			return nil, err
		}
		return ff, nil
	})
}

// RollbackModel reinstates the previous model under its original version.
func (e *Engine) RollbackModel() (ModelVersion, error) { return e.models.rollback() }

// Stats returns a snapshot of engine counters — a bridged view over this
// engine's registry cells, so the numbers here and on /metrics are the
// same counters read two ways.
func (e *Engine) Stats() Stats {
	return Stats{
		Transactions:    int(e.mx.transactions.Value()),
		Weeded:          int(e.mx.weeded.Value()),
		Clusters:        int(e.mx.clusters.Value()),
		Evicted:         int(e.mx.evicted.Value()),
		CluesFired:      int(e.mx.cluesFired.Value()),
		Classifications: int(e.mx.classifications.Value()),
		Alerts:          int(e.mx.alerts.Value()),
		Dropped:         int(e.mx.dropped.Value()),
		Rebuilds:        int(e.mx.rebuilds.Value()),
		Panics:          int(e.mx.panics.Value()),
		Quarantined:     int(e.mx.quarantined.Value()),
		Degraded:        int(e.mx.degraded.Value()),
		Shed:            int(e.mx.shed.Value()),
	}
}

// Registry returns the observability registry this engine's metrics live
// on (the one from Config.Metrics, or the engine's private registry).
func (e *Engine) Registry() *obs.Registry { return e.mx.reg }

// Health reports the engine's readiness conditions for the /healthz
// endpoint: Degraded when the classify-latency EWMA is over budget,
// Quarantined while any cluster carries a quarantine strike, Shedding
// when the watch cap is saturated, plus the serving model generation.
// Like every other Engine method it requires external serialization;
// ShardedEngine.Health takes the shard locks.
func (e *Engine) Health() obs.HealthStatus {
	st := obs.HealthStatus{
		Degraded:     e.overBudget(),
		ModelVersion: e.models.current().version.String(),
	}
	watching := 0
	for _, c := range e.clusters {
		if c.faults > 0 {
			st.Quarantined = true
		}
		if c.watching {
			watching++
		}
	}
	st.Shedding = e.cfg.MaxWatched > 0 && watching >= e.cfg.MaxWatched
	return st
}

// trusted reports whether the host matches the weed-out list.
func (e *Engine) trusted(host string) bool {
	for _, suffix := range e.cfg.TrustedVendors {
		if host == suffix || strings.HasSuffix(host, "."+suffix) {
			return true
		}
	}
	return false
}

// Process ingests one transaction and returns any alerts it triggers.
// A panic raised while processing — a poisoned cluster state, a faulty
// scorer — is recovered here and converted into quarantine of the
// offending session cluster (see quarantine), so one hostile client
// cannot take the engine down.
func (e *Engine) Process(tx httpstream.Transaction) []Alert {
	return e.ProcessTraced(tx, nil)
}

// ProcessTraced is Process with an ambient trace. When at is non-nil
// (the proxy threading its request trace through), the engine's spans
// nest under the caller's; when at is nil and a Tracer is configured,
// the engine begins and finishes its own per-transaction trace. An
// alert-raising transaction promotes its trace to always-keep, and the
// journaled record's TraceID resolves back to the tree.
func (e *Engine) ProcessTraced(tx httpstream.Transaction, at *obs.ActiveTrace) []Alert {
	owned := false
	if at == nil && e.tracer != nil && !e.restoring {
		at = e.tracer.BeginIn(&e.ownAT)
		owned = true
	}
	root := at.StartSpan(e.stg.process)
	at.SetArg(root, int32(e.idBase)) // shard attribution
	e.at, e.atRoot = at, root
	alerts := e.process(tx)
	if len(alerts) > 0 {
		at.MarkAlert()
	}
	at.EndSpan(root)
	e.at, e.atRoot = nil, -1
	if owned {
		e.tracer.FinishIn(at)
	}
	return alerts
}

// process is the untraced body of Process.
func (e *Engine) process(tx httpstream.Transaction) []Alert {
	e.mx.transactions.Inc()
	e.txSeen++
	if e.txSeen%evictEvery == 0 {
		e.EvictIdle(tx.ReqTime.Add(-e.cfg.ClusterTTL))
	}
	host := strings.ToLower(tx.Host)
	if host == "" {
		host = tx.ServerIP.String()
	}
	if e.trusted(host) {
		e.mx.weeded.Inc()
		return nil
	}
	c := e.clusterFor(&tx, host)
	return e.processInCluster(c, tx, host)
}

// processInCluster runs the per-cluster pipeline under a panic guard:
// a fault anywhere past cluster assignment discards the transaction's
// alerts and advances the cluster on the quarantine ladder instead of
// unwinding through the caller.
func (e *Engine) processInCluster(c *cluster, tx httpstream.Transaction, host string) (alerts []Alert) {
	defer func() {
		if r := recover(); r != nil {
			alerts = nil
			e.at.Annotate(e.atRoot, obs.SpanError|obs.SpanQuarantined)
			e.quarantine(c)
		}
	}()
	if len(c.txs) >= e.cfg.MaxClusterTxs {
		// The session is still active even though its history is capped:
		// keep lastActive fresh so TTL eviction does not destroy the
		// cluster (and any watched WCG) mid-session, and make the drop
		// visible in the counters.
		c.lastActive = tx.ReqTime
		if !e.restoring {
			e.mx.dropped.Inc()
		}
		return nil
	}
	meta := c.buildMeta(&tx, host)
	idx := len(c.txs)
	c.txs = append(c.txs, tx)
	c.metas = append(c.metas, meta)
	c.noteActivity(&tx, meta)

	// A watched WCG that stopped growing is closed; later clues in the
	// same session open a fresh potential-infection WCG with fresh
	// redirect evidence.
	if c.watching && tx.ReqTime.Sub(c.watchLast) > e.cfg.WatchIdle {
		e.closeWatch(c)
	}

	// Accumulate redirect evidence (the sum-of-all-redirections rule).
	if tx.StatusCode >= 300 && tx.StatusCode < 400 {
		c.redirects++
	}
	c.redirects += len(meta.sniff)

	// Infection clue: enough redirect evidence followed by a download of a
	// likely-malicious payload type. The clue triggers the backward
	// construction of a potential-infection WCG around the chain.
	if meta.download && !c.watching && c.redirects >= e.cfg.RedirectThreshold {
		c.watching = true
		// Pin the serving model: this watch scores through exactly this
		// forest until it closes, no matter what hot-swaps happen meanwhile.
		c.pinned = e.models.current()
		if !e.restoring {
			e.mx.cluesFired.Inc()
		}
		e.mx.watched.Inc()
		// Clue provenance for this watch's journal records: the arming
		// download and the redirect evidence that armed it.
		c.clueHost, c.cluePayload, c.clueRedirects = meta.host, meta.payload, c.redirects
		c.preWatch = make(map[string]struct{}, len(c.hosts))
		for h := range c.hosts {
			c.preWatch[h] = struct{}{}
		}
		c.buildPotentialWCG(idx, e.cfg.WatchIdle)
		c.snapshot = append([]int(nil), c.watch...)
		c.watchLast = tx.ReqTime
		if !e.restoring {
			// Shedding is a cross-cluster decision the per-cluster replay
			// cannot reproduce; restore honors the checkpointed watching
			// flags instead.
			e.shedWatches(c)
		}
		return e.classify(c, idx, meta)
	}
	if !c.watching {
		return nil
	}
	// Watched WCG: related transactions grow it and trigger
	// re-classification; unrelated browsing is left out, as the paper's
	// session-ID/referrer grouping prescribes.
	if !c.relatedTx(meta) {
		return nil
	}
	c.include(idx)
	c.watchLast = tx.ReqTime
	// Degraded mode: when classification is over budget, the WCG keeps
	// growing but only clue boundaries — payload downloads — re-score it;
	// the incremental builder catches up on the skipped growth at the
	// next classify call.
	if !meta.download && e.overBudget() && !e.restoring {
		e.mx.degraded.Inc()
		e.at.Annotate(e.atRoot, obs.SpanDegraded)
		return nil
	}
	return e.classify(c, idx, meta)
}

// overBudget reports whether the smoothed classify latency exceeds the
// configured budget, selecting degraded mode.
func (e *Engine) overBudget() bool {
	return e.cfg.MaxClassifyLatency > 0 && e.classifyEWMA > e.cfg.MaxClassifyLatency
}

// shedWatches enforces the MaxWatched ceiling after opened (the watch
// that just fired) joined the watched set: while the engine watches more
// than the ceiling, the largest watch other than opened is closed early.
// Its WCG is preserved in the cluster's closed list, exactly as if it
// had stopped growing; only the continued re-classification is lost.
func (e *Engine) shedWatches(opened *cluster) {
	if e.cfg.MaxWatched <= 0 {
		return
	}
	var watching []*cluster
	for _, c := range e.clusters {
		if c.watching {
			watching = append(watching, c)
		}
	}
	for len(watching) > e.cfg.MaxWatched {
		victim := -1
		for i, c := range watching {
			if c == opened {
				continue
			}
			if victim < 0 || len(c.watch) > len(watching[victim].watch) {
				victim = i
			}
		}
		if victim < 0 {
			return // only the just-opened watch remains
		}
		e.closeWatch(watching[victim])
		watching = append(watching[:victim], watching[victim+1:]...)
		e.mx.shed.Inc()
		e.at.Annotate(e.atRoot, obs.SpanShed)
	}
}

// closeWatch finalizes a cluster's watch via cluster.closeWatch and keeps
// the watched gauge in step.
func (e *Engine) closeWatch(c *cluster) {
	if c.watching {
		e.mx.watched.Dec()
	}
	c.closeWatch()
}

// quarantine advances a faulted cluster on the quarantine ladder. First
// fault: drop the (possibly poisoned) incremental cache and pin every
// later classification of this cluster to the from-scratch rebuild path.
// Second fault: the rebuild did not cure it — evict the cluster outright
// so its state cannot fault a third time.
func (e *Engine) quarantine(c *cluster) {
	e.mx.panics.Inc()
	c.faults++
	if c.faults == 1 {
		c.ib, c.cache, c.fed = nil, nil, 0
		e.mx.quarantined.Inc()
		return
	}
	e.dropCluster(c)
}

// dropCluster removes one session cluster from the engine.
func (e *Engine) dropCluster(target *cluster) {
	kept := e.clusters[:0]
	for _, c := range e.clusters {
		if c != target {
			kept = append(kept, c)
		}
	}
	e.clusters = kept
	list := e.byClient[target.client]
	keptList := list[:0]
	for _, c := range list {
		if c != target {
			keptList = append(keptList, c)
		}
	}
	if len(keptList) == 0 {
		delete(e.byClient, target.client)
	} else {
		e.byClient[target.client] = keptList
	}
	if target.watching {
		e.mx.watched.Dec()
	}
	e.mx.evicted.Inc()
}

// classify scores the cluster's potential-infection WCG and emits an
// alert on the first infectious verdict and on every payload download into
// an infectious-scoring WCG.
//
// The hot path is incremental: new watch transactions are appended to the
// cluster's live WCG and the cached feature vector is refreshed in place,
// so the per-update cost no longer re-copies the cumulative subset,
// rebuilds the graph, or re-derives all 37 features. The WCG itself is
// materialized (snapshotted) only when an alert actually fires. The
// from-scratch path remains as the explicit fallback — selected by
// Config.DisableIncremental or by out-of-order arrival — and produces
// bit-identical scores and alerts.
func (e *Engine) classify(c *cluster, idx int, meta txMeta) []Alert {
	if e.restoring {
		return nil // checkpoint replay rebuilds structure, never verdicts
	}
	ref := c.pinned
	if ref == nil {
		// Defensive: classify is only reached inside a watch, which pins at
		// arming; an unpinned call scores with the serving model.
		ref = e.models.current()
	}
	if ref.scorer == nil {
		return nil // extraction-only mode (training-set construction)
	}
	at := e.at
	// A traced engine is always timed, so every classify span boundary
	// reuses a latency-metric clock reading — tracing adds stamps to
	// reads the instrumented path was already taking, not new reads. The
	// classify span is ended explicitly at each return (no defer): a
	// panic unwinds past it, and the root span's pop-through close
	// finalizes it at the end-to-end instant.
	var start time.Time
	var cs int
	if e.timed {
		start = e.now()
		cs = at.StartSpanAt(e.stg.classify, start)
	} else {
		cs = at.StartSpan(e.stg.classify)
	}
	if c.faults > 0 {
		at.Annotate(cs, obs.SpanQuarantined)
	}
	if e.overBudget() {
		at.Annotate(cs, obs.SpanDegraded)
	}
	var x []float64
	var g *wcg.WCG // nil on the incremental path until an alert needs it
	incremental := false
	fs := -1 // the feature span, left open for scoreVector to close at its t0
	if e.incrementalEligible(c) {
		// The features.incremental span records only genuine attempts: a
		// cluster pinned to the rebuild path never opens it, so a trace's
		// stage set reflects the path actually taken. A mid-feed fallback
		// (out-of-order arrival) leaves the attempt flagged SpanError next
		// to the rebuild span that served the verdict. The attempt begins
		// at the same instant the classify measurement does (only flag
		// annotations separate them), so the stamp is shared.
		fs = at.StartSpanAt(e.stg.featInc, start)
		v, ok := e.incrementalVector(c)
		if ok {
			x, incremental = v, true
		} else {
			at.Annotate(fs, obs.SpanError)
			at.EndSpan(fs)
			fs = -1
		}
	}
	if incremental {
		at.Annotate(cs, obs.SpanIncremental)
	} else {
		fs = at.StartSpan(e.stg.featRebuild)
		e.subset = e.subset[:0]
		for _, i := range c.watch {
			e.subset = append(e.subset, c.txs[i])
		}
		g = wcg.FromTransactions(e.subset)
		e.rebuild.Reset(g, e.scratch)
		e.fvec = e.rebuild.FeaturesInto(e.fvec)
		x = e.fvec
		e.mx.rebuilds.Inc()
		at.Annotate(cs, obs.SpanRebuild)
	}
	score := e.scoreVector(ref.scorer, x, fs)
	e.mx.classifications.Inc()
	var endT time.Time
	if e.timed {
		endT = e.now()
		elapsed := endT.Sub(start)
		if e.cfg.MaxClassifyLatency > 0 {
			// EWMA with alpha 1/8: smooth enough to ride out one slow WCG,
			// fast enough to catch sustained overload within a few updates.
			e.classifyEWMA += (elapsed - e.classifyEWMA) / 8
		}
		if incremental {
			e.mx.classifyIncremental.Observe(elapsed.Seconds())
		} else {
			e.mx.classifyRebuild.Observe(elapsed.Seconds())
		}
	}
	// A scorer emitting a non-finite probability is as broken as one
	// that panics: NaN compares false with every threshold and would
	// either always or never alert. Treat it as a fault so the recover
	// guard quarantines the cluster instead of corrupting verdicts.
	if math.IsNaN(score) || math.IsInf(score, 0) {
		panic("detector: scorer returned a non-finite probability")
	}
	if score <= e.cfg.ScoreThreshold {
		at.EndSpanAt(cs, endT)
		return nil
	}
	if c.alerted && !meta.download {
		at.EndSpanAt(cs, endT)
		return nil
	}
	c.alerted = true
	e.mx.alerts.Inc()
	trigger := meta
	if !meta.download {
		// First crossing on a non-download update (e.g. a C&C call-back):
		// attribute the alert to the latest download in the WCG.
		for i := len(c.watch) - 1; i >= 0; i-- {
			if m := c.metas[c.watch[i]]; m.download {
				trigger = m
				break
			}
		}
	}
	// Transactions that never got a response (e.g. upstream timeouts in
	// extraction-only replays) carry a zero RespTime; fall back to the
	// request time so alerts are always stamped.
	when := c.txs[idx].RespTime
	if when.IsZero() {
		when = c.txs[idx].ReqTime
	}
	if g == nil {
		// Incremental path: materialize the alert's WCG only now — a
		// finalized clone immune to later appends to the live graph.
		g = c.ib.Snapshot()
	}
	alert := Alert{
		Time:           when,
		Client:         c.client,
		ClusterID:      c.id,
		Score:          score,
		TriggerHost:    trigger.host,
		TriggerPayload: trigger.payload,
		WCG:            g,
	}
	e.journalAlert(c, ref, &alert, x, incremental)
	at.EndSpan(cs)
	return []Alert{alert}
}

// scoreVector runs the watch's pinned model, timing the ensemble's share
// of classify wall time when the engine is timed. prev is the still-open
// feature-extraction span (-1 when none): its end and the score span's
// start share one clock reading, as do the score span's end and the
// score latency metric.
func (e *Engine) scoreVector(model Scorer, x []float64, prev int) float64 {
	if !e.timed {
		e.at.EndSpan(prev)
		ss := e.at.StartSpan(e.stg.score)
		score := model.Score(x)
		e.at.EndSpan(ss)
		return score
	}
	t0 := e.now()
	e.at.EndSpanAt(prev, t0)
	ss := e.at.StartSpanAt(e.stg.score, t0)
	score := model.Score(x)
	end := e.now()
	e.at.EndSpanAt(ss, end)
	e.mx.score.Observe(end.Sub(t0).Seconds())
	return score
}

// journalAlert appends the alert's provenance record: the arming clue,
// the WCG shape, the exact feature vector and score the classifier used
// (the vector is copied before the reusable buffer is overwritten by the
// next classification), and the degraded-mode flags active at decision
// time. The journal's Append never panics, so a failing sink costs the
// record, never the alert.
func (e *Engine) journalAlert(c *cluster, ref *modelRef, a *Alert, x []float64, incremental bool) {
	if e.journal == nil {
		return
	}
	js := e.at.StartSpan(e.stg.journal)
	defer e.at.EndSpan(js)
	rec := obs.AlertRecord{
		TraceID:          e.at.ID(),
		ModelVersion:     ref.version.String(),
		Time:             a.Time,
		Client:           a.Client.String(),
		ClusterID:        a.ClusterID,
		ClueHost:         c.clueHost,
		CluePayload:      c.cluePayload.String(),
		ClueRedirects:    c.clueRedirects,
		WCGNodes:         a.WCG.Order(),
		WCGEdges:         a.WCG.Size(),
		WCGStructVersion: a.WCG.StructVersion(),
		Incremental:      incremental,
		Features:         append([]float64(nil), x...),
		Score:            a.Score,
		Threshold:        e.cfg.ScoreThreshold,
		Degraded:         e.overBudget(),
		Quarantined:      c.faults > 0,
	}
	if vs, ok := ref.scorer.(VoteScorer); ok {
		// The tally re-scores the vector; the VoteScorer contract makes
		// the result bit-identical to the decision score, and the guard
		// drops the tally (never the record) from an implementation that
		// breaks it.
		if score, votes, trees := vs.ScoreWithVotes(x); score == a.Score {
			rec.Votes, rec.Trees = votes, trees
		}
	}
	_ = e.journal.Append(rec)
}

// incrementalVector feeds the watch set's new transactions into the
// cluster's live WCG and returns the refreshed cached feature vector
// (valid until the next classify call). It reports false when the
// incremental path is disabled or has fallen back for this watch, in
// which case the caller rebuilds from scratch.
func (e *Engine) incrementalVector(c *cluster) ([]float64, bool) {
	if !e.incrementalEligible(c) {
		return nil, false
	}
	if c.ib == nil {
		c.ib = wcg.NewIncrementalBuilder()
		c.cache = features.NewCache(c.ib.Live(), e.scratch)
		c.fed = 0
	}
	for _, i := range c.watch[c.fed:] {
		if !c.ib.Append(c.txs[i]) {
			// Out-of-order arrival voids the byte-identity contract with
			// the batch builder: abandon the live graph and serve the rest
			// of this watch from scratch.
			c.incBroken = true
			c.ib, c.cache = nil, nil
			return nil, false
		}
		c.fed++
	}
	e.fvec = c.cache.FeaturesInto(e.fvec)
	return e.fvec, true
}

// incrementalEligible reports whether the incremental feature path may be
// attempted for this cluster. It can still fall back mid-feed (out-of-
// order arrival), but an ineligible cluster — incremental disabled,
// fallen back earlier, or quarantined — goes straight to the rebuild.
func (e *Engine) incrementalEligible(c *cluster) bool {
	return !e.cfg.DisableIncremental && !c.incBroken && c.faults == 0
}

// ClueSubsets replays a recorded transaction stream with the clue
// heuristic only (no classifier) and returns, per session cluster whose
// clue fired, both the potential-infection subset at clue time and the
// fully-grown subset at stream end. The offline training stage uses these
// so the classifier learns on exactly the WCG representations — early and
// mature — that the on-the-wire stage scores.
func ClueSubsets(cfg Config, txs []httpstream.Transaction) [][]httpstream.Transaction {
	e := New(cfg, nil)
	for _, tx := range txs {
		e.Process(tx)
	}
	var out [][]httpstream.Transaction
	collect := func(c *cluster, idxs []int) {
		subset := make([]httpstream.Transaction, 0, len(idxs))
		for _, i := range idxs {
			subset = append(subset, c.txs[i])
		}
		out = append(out, subset)
	}
	for _, c := range e.clusters {
		for _, w := range c.closed {
			collect(c, w)
		}
		if !c.watching {
			continue
		}
		collect(c, c.snapshot)
		if len(c.watch) > len(c.snapshot) {
			collect(c, c.watch)
		}
	}
	return out
}

// buildMeta derives the linkage facts of a transaction against the
// cluster's current state. Must run before noteActivity.
func (c *cluster) buildMeta(tx *httpstream.Transaction, host string) txMeta {
	m := txMeta{
		host:    host,
		refHost: refererHost(tx),
		post:    tx.Method == "POST",
		payload: wcg.ClassifyPayload(tx.URI, tx.ContentType),
	}
	if tx.IsRedirect() {
		m.locHost = hostOf(tx.Location())
		if m.locHost == "" {
			m.locHost = host
		}
	}
	if m.payload == wcg.PayloadHTML || m.payload == wcg.PayloadJS {
		for _, target := range wcg.SniffBodyRedirects(tx.Body) {
			if th := hostOf(target); th != "" {
				m.sniff = append(m.sniff, th)
			}
		}
	}
	m.download = m.payload.IsExploitType() && tx.StatusCode >= 200 && tx.StatusCode < 300
	if m.refHost != "" {
		if last, ok := c.hostLast[m.refHost]; ok && tx.ReqTime.Sub(last) <= clickGap {
			m.refRecent = true
		}
	}
	return m
}

// noteActivity updates the cluster's host and session bookkeeping.
func (c *cluster) noteActivity(tx *httpstream.Transaction, m txMeta) {
	c.hosts[m.host] = struct{}{}
	if m.refHost != "" {
		c.hosts[m.refHost] = struct{}{}
	}
	if sid := tx.SessionID(); sid != "" {
		c.sessions[sid] = struct{}{}
	}
	ts := tx.RespTime
	if ts.IsZero() {
		ts = tx.ReqTime
	}
	c.hostLast[m.host] = ts
	c.lastActive = tx.ReqTime
}

// buildPotentialWCG walks back in time from the triggering download and
// collects the transactions linked to it: traffic to related hosts,
// redirects into related hosts (Location or sniffed body targets), and
// fast referrer continuations. It runs to a fixpoint so multi-hop chains
// resolve regardless of discovery order, and it looks back at most horizon
// so a chain reusing hosts hours later does not absorb stale traffic.
func (c *cluster) buildPotentialWCG(trigger int, horizon time.Duration) {
	c.related = make(map[string]struct{})
	include := make([]bool, trigger+1)
	include[trigger] = true
	c.addRelated(c.metas[trigger])
	oldest := c.txs[trigger].ReqTime.Add(-horizon)
	first := trigger
	for first > 0 && !c.txs[first-1].ReqTime.Before(oldest) {
		first--
	}
	for changed := true; changed; {
		changed = false
		for i := trigger - 1; i >= first; i-- {
			if include[i] {
				continue
			}
			if c.relatedTx(c.metas[i]) {
				include[i] = true
				c.addRelated(c.metas[i])
				changed = true
			}
		}
	}
	c.watch = c.watch[:0]
	for i, in := range include {
		if in {
			c.watch = append(c.watch, i)
		}
	}
}

// relatedTx reports whether a transaction belongs to the potential
// infection WCG under the current related-host set.
func (c *cluster) relatedTx(m txMeta) bool {
	if _, ok := c.related[m.host]; ok {
		return true
	}
	if m.locHost != "" {
		if _, ok := c.related[m.locHost]; ok {
			return true
		}
	}
	for _, t := range m.sniff {
		if _, ok := c.related[t]; ok {
			return true
		}
	}
	if m.refRecent && m.refHost != "" {
		if _, ok := c.related[m.refHost]; ok {
			return true
		}
	}
	// Post-download call-backs go to hosts never seen before the download
	// dynamics (Section II-D).
	if m.post && c.preWatch != nil {
		if _, seen := c.preWatch[m.host]; !seen {
			return true
		}
	}
	return false
}

// addRelated extends the related-host set with a transaction's hosts.
func (c *cluster) addRelated(m txMeta) {
	c.related[m.host] = struct{}{}
	if m.locHost != "" {
		c.related[m.locHost] = struct{}{}
	}
	for _, t := range m.sniff {
		c.related[t] = struct{}{}
	}
	if m.refRecent && m.refHost != "" {
		c.related[m.refHost] = struct{}{}
	}
}

// include appends a related transaction to the watched WCG.
func (c *cluster) include(idx int) {
	c.watch = append(c.watch, idx)
	c.addRelated(c.metas[idx])
}

// closeWatch finalizes the current potential-infection WCG and returns the
// cluster to pre-clue monitoring with fresh redirect evidence.
func (c *cluster) closeWatch() {
	if len(c.watch) > 0 {
		c.closed = append(c.closed, append([]int(nil), c.watch...))
	}
	c.watching = false
	c.alerted = false
	c.watch = nil
	c.snapshot = nil
	c.related = nil
	c.preWatch = nil
	c.redirects = 0
	c.clueHost, c.cluePayload, c.clueRedirects = "", 0, 0
	c.pinned = nil
	c.ib = nil
	c.cache = nil
	c.fed = 0
	c.incBroken = false
}

// WatchedWCG describes one actively watched potential-infection WCG, for
// operator dashboards.
type WatchedWCG struct {
	ClusterID    int
	Client       netip.Addr
	Transactions int       // size of the potential-infection subset
	LastGrowth   time.Time // when the WCG last gained a transaction
	Hosts        int       // related hosts under watch
}

// Watched returns snapshots of every potential-infection WCG currently
// being grown and re-classified.
func (e *Engine) Watched() []WatchedWCG {
	var out []WatchedWCG
	for _, c := range e.clusters {
		if !c.watching {
			continue
		}
		out = append(out, WatchedWCG{
			ClusterID:    c.id,
			Client:       c.client,
			Transactions: len(c.watch),
			LastGrowth:   c.watchLast,
			Hosts:        len(c.related),
		})
	}
	return out
}

// EvictIdle drops every session cluster whose last activity precedes
// cutoff and returns how many were removed. Process calls this
// automatically every few hundred transactions with the configured TTL;
// deployments may also call it explicitly.
func (e *Engine) EvictIdle(cutoff time.Time) int {
	evicted := 0
	kept := e.clusters[:0]
	for _, c := range e.clusters {
		if c.lastActive.Before(cutoff) {
			evicted++
			if c.watching {
				e.mx.watched.Dec()
			}
			continue
		}
		kept = append(kept, c)
	}
	if evicted == 0 {
		return 0
	}
	e.clusters = kept
	for client, list := range e.byClient {
		keptList := list[:0]
		for _, c := range list {
			if !c.lastActive.Before(cutoff) {
				keptList = append(keptList, c)
			}
		}
		if len(keptList) == 0 {
			delete(e.byClient, client)
			continue
		}
		e.byClient[client] = keptList
	}
	e.mx.evicted.Add(int64(evicted))
	return evicted
}

// ProcessAll feeds a transaction slab through the engine in order. (A
// plain Engine is serialized, so the slab is processed sequentially; the
// sharded variant fans slabs out across shards.)
func (e *Engine) ProcessAll(txs []httpstream.Transaction) []Alert {
	var alerts []Alert
	for _, tx := range txs {
		alerts = append(alerts, e.Process(tx)...)
	}
	return alerts
}

func refererHost(tx *httpstream.Transaction) string {
	return hostOf(tx.Referer())
}

// hostOf extracts the host of an absolute or schemeless URL, lowercased
// (DNS names are case-insensitive, so all host comparisons fold case).
func hostOf(raw string) string {
	s := raw
	if i := strings.Index(s, "://"); i >= 0 {
		s = s[i+3:]
	} else if strings.HasPrefix(s, "//") {
		s = s[2:]
	} else if strings.HasPrefix(s, "/") || s == "" {
		return ""
	}
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '/', '?', '#', ':':
			return strings.ToLower(s[:i])
		}
	}
	return strings.ToLower(s)
}

// clusterFor assigns the transaction to a session cluster of its client:
// first by session ID, then by referrer linkage to a cluster's known
// hosts, then by recency within the session gap; otherwise a new cluster
// is opened (Section V-B's grouping heuristic).
func (e *Engine) clusterFor(tx *httpstream.Transaction, host string) *cluster {
	clusters := e.byClient[tx.ClientIP]

	if sid := tx.SessionID(); sid != "" {
		for i := len(clusters) - 1; i >= 0; i-- {
			if _, ok := clusters[i].sessions[sid]; ok {
				return clusters[i]
			}
		}
	}
	ref := refererHost(tx)
	for i := len(clusters) - 1; i >= 0; i-- {
		c := clusters[i]
		if ref != "" {
			if _, ok := c.hosts[ref]; ok {
				return c
			}
		}
		if _, ok := c.hosts[host]; ok {
			return c
		}
	}
	if len(clusters) > 0 {
		last := clusters[len(clusters)-1]
		if tx.ReqTime.Sub(last.lastActive) <= e.cfg.SessionGap {
			return last
		}
	}
	c := &cluster{
		id:       e.idBase + e.idStep*len(e.clusters),
		client:   tx.ClientIP,
		hosts:    make(map[string]struct{}),
		sessions: make(map[string]struct{}),
		hostLast: make(map[string]time.Time),
	}
	e.clusters = append(e.clusters, c)
	e.byClient[tx.ClientIP] = append(clusters, c)
	e.mx.clusters.Inc()
	return c
}
