package detector

import (
	"math"
	"net/netip"
	"path/filepath"
	"testing"
	"time"

	"dynaminer/internal/httpstream"
)

// readdress clones a transaction stream onto a different client address,
// so multi-client checkpoint tests exercise more than one shard.
func readdress(txs []httpstream.Transaction, client netip.Addr) []httpstream.Transaction {
	out := append([]httpstream.Transaction(nil), txs...)
	for i := range out {
		out[i].ClientIP = client
	}
	return out
}

// checkpointClients is a fixed set of clients that hash to more than one
// shard of a two-shard engine.
var checkpointClients = []netip.Addr{
	netip.MustParseAddr("10.0.0.44"),
	netip.MustParseAddr("10.0.1.7"),
	netip.MustParseAddr("10.0.2.99"),
}

// interleaved returns per-client infection streams interleaved in time
// order: for each of the 5 stream positions, every client's transaction.
func interleaved(txs []httpstream.Transaction) []httpstream.Transaction {
	perClient := make([][]httpstream.Transaction, len(checkpointClients))
	for i, c := range checkpointClients {
		perClient[i] = readdress(txs, c)
	}
	var out []httpstream.Transaction
	for p := 0; p < len(txs); p++ {
		for i := range perClient {
			out = append(out, perClient[i][p])
		}
	}
	return out
}

// TestCheckpointRoundTripBitIdentical is the recovery acceptance test: an
// engine checkpointed mid-watch, restored into a fresh process-alike
// engine, must continue the stream with alerts bit-identical to the
// uninterrupted engine's — same scores (to the bit), same cluster IDs,
// same timestamps, same watch inventory.
func TestCheckpointRoundTripBitIdentical(t *testing.T) {
	// A low threshold makes the real forest's fractional votes cross on
	// every download, so the differential compares live alert scores.
	cfg := Config{Shards: 2, RedirectThreshold: 3, ScoreThreshold: 0.05}
	model := trainDimForest(t, 37, 31)

	uninterrupted := NewSharded(cfg, model)
	crashed := NewSharded(cfg, model)

	head := interleaved(infectionStream()) // arms one watch per client
	var headUn, headCr []Alert
	for _, tx := range head {
		headUn = append(headUn, uninterrupted.Process(tx)...)
		headCr = append(headCr, crashed.Process(tx)...)
	}
	if len(headUn) != len(headCr) {
		t.Fatalf("pre-checkpoint alert streams diverged: %d vs %d", len(headUn), len(headCr))
	}

	data := crashed.AppendCheckpoint(nil)
	info, err := ReadCheckpointInfo(data)
	if err != nil {
		t.Fatal(err)
	}
	if info.Shards != 2 || info.Clusters != len(checkpointClients) || info.Watching != len(checkpointClients) {
		t.Fatalf("checkpoint info %+v, want 2 shards, %d clusters all watching", info, len(checkpointClients))
	}
	if info.ModelVersion != crashed.ModelVersion() {
		t.Fatalf("checkpoint model version %v, want %v", info.ModelVersion, crashed.ModelVersion())
	}
	if info.TxSeen != int64(len(head)) {
		t.Fatalf("checkpoint TxSeen = %d, want %d", info.TxSeen, len(head))
	}

	// "Restart": a fresh engine with the same config and model.
	restored := NewSharded(cfg, model)
	n, err := restored.RestoreCheckpoint(data)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(checkpointClients) {
		t.Fatalf("restored %d clusters, want %d", n, len(checkpointClients))
	}

	// The watch inventory must match the pre-crash engine exactly.
	wantWatch, gotWatch := crashed.Watched(), restored.Watched()
	if len(gotWatch) != len(wantWatch) {
		t.Fatalf("restored %d watches, want %d", len(gotWatch), len(wantWatch))
	}
	for i := range wantWatch {
		w, g := wantWatch[i], gotWatch[i]
		if g.ClusterID != w.ClusterID || g.Client != w.Client ||
			g.Transactions != w.Transactions || g.Hosts != w.Hosts || !g.LastGrowth.Equal(w.LastGrowth) {
			t.Fatalf("watch %d diverged after restore:\n got %+v\nwant %+v", i, g, w)
		}
	}

	// Continue both runs with growth and a second download per client; the
	// alert streams must be bit-identical.
	var tail []httpstream.Transaction
	for _, c := range checkpointClients {
		full := readdress(relatedFollowUp(3), c)
		tail = append(tail, full[5:]...) // the post-clue transactions only
	}
	var tailUn, tailRe []Alert
	for _, tx := range tail {
		tailUn = append(tailUn, uninterrupted.Process(tx)...)
		tailRe = append(tailRe, restored.Process(tx)...)
	}
	if len(tailUn) == 0 {
		t.Fatal("tail produced no alerts; the differential is vacuous")
	}
	if len(tailUn) != len(tailRe) {
		t.Fatalf("post-recovery alert counts diverged: uninterrupted=%d restored=%d", len(tailUn), len(tailRe))
	}
	for i := range tailUn {
		u, r := tailUn[i], tailRe[i]
		if math.Float64bits(u.Score) != math.Float64bits(r.Score) {
			t.Fatalf("alert %d score diverged after recovery: %x vs %x",
				i, math.Float64bits(u.Score), math.Float64bits(r.Score))
		}
		if u.ClusterID != r.ClusterID || u.Client != r.Client || !u.Time.Equal(r.Time) ||
			u.TriggerHost != r.TriggerHost || u.TriggerPayload != r.TriggerPayload {
			t.Fatalf("alert %d identity diverged after recovery:\n got %+v\nwant %+v", i, r, u)
		}
	}

	// The restored engine resumes the eviction cadence from the same
	// transaction offset.
	var wantSeen, gotSeen int64
	for i := range uninterrupted.shards {
		wantSeen += uninterrupted.shards[i].eng.txSeen
		gotSeen += restored.shards[i].eng.txSeen
	}
	if gotSeen != wantSeen {
		t.Fatalf("restored txSeen = %d, want %d", gotSeen, wantSeen)
	}
}

// TestCheckpointFileRoundTrip exercises the atomic file path and the
// info reader on disk.
func TestCheckpointFileRoundTrip(t *testing.T) {
	cfg := Config{Shards: 1, RedirectThreshold: 3}
	s := NewSharded(cfg, constScorer(0.9))
	s.ProcessAll(infectionStream())

	path := filepath.Join(t.TempDir(), "state.dmcp")
	if err := s.WriteCheckpointFile(path); err != nil {
		t.Fatal(err)
	}
	info, err := ReadCheckpointInfoFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Clusters != 1 || info.Watching != 1 || info.Shards != 1 {
		t.Fatalf("info %+v", info)
	}

	restored := NewSharded(cfg, constScorer(0.9))
	if n, err := restored.RestoreCheckpointFile(path); err != nil || n != 1 {
		t.Fatalf("restore: n=%d err=%v", n, err)
	}
	// The alerted flag survives: the restored watch only re-alerts on a
	// download, exactly like the original.
	growth := mkTx("d.evil", "/beacon", "GET", 200, "text/html", 512, "", time.Second)
	if alerts := restored.Process(growth); len(alerts) != 0 {
		t.Fatalf("restored alerted watch re-fired on non-download growth: %+v", alerts)
	}
}

// TestCheckpointRejectsDamage pins the validation screens: bit flips,
// truncation, bad magic, and a shard-count mismatch are all rejected with
// named errors before any cluster is restored.
func TestCheckpointRejectsDamage(t *testing.T) {
	s := NewSharded(Config{Shards: 2, RedirectThreshold: 3}, constScorer(0.9))
	s.ProcessAll(interleaved(infectionStream()))
	data := s.AppendCheckpoint(nil)

	fresh := func() *ShardedEngine { return NewSharded(Config{Shards: 2, RedirectThreshold: 3}, constScorer(0.9)) }

	flipped := append([]byte(nil), data...)
	flipped[len(flipped)-3] ^= 0x01
	if _, err := fresh().RestoreCheckpoint(flipped); err == nil {
		t.Fatal("bit-flipped checkpoint accepted")
	}
	if _, err := fresh().RestoreCheckpoint(data[:len(data)/2]); err == nil {
		t.Fatal("truncated checkpoint accepted")
	}
	if _, err := fresh().RestoreCheckpoint([]byte("DMFB----------------")); err == nil {
		t.Fatal("wrong magic accepted")
	}
	if _, err := NewSharded(Config{Shards: 3}, constScorer(0.9)).RestoreCheckpoint(data); err == nil {
		t.Fatal("shard-count mismatch accepted")
	}
	// A non-empty engine must refuse to restore (cluster IDs would collide).
	busy := fresh()
	busy.ProcessAll(infectionStream())
	if _, err := busy.RestoreCheckpoint(data); err == nil {
		t.Fatal("restore into a non-empty engine accepted")
	}
}

// TestMarkAlertedDedup covers journal replay during recovery: an alert
// the pre-crash process raised after the last checkpoint is marked on
// the restored cluster, so the watch's next growth does not re-fire it.
func TestMarkAlertedDedup(t *testing.T) {
	// Arm a watch below the alert threshold, checkpoint, then restore into
	// an engine whose serving model scores hot: without MarkAlerted the
	// first growth would fire the alert the pre-crash process already
	// journaled.
	cfg := Config{Shards: 1, RedirectThreshold: 3}
	cold := NewSharded(cfg, constScorer(0.4))
	cold.ProcessAll(infectionStream())
	if cold.Stats().Alerts != 0 {
		t.Fatal("setup: watch must arm without alerting")
	}
	data := cold.AppendCheckpoint(nil)

	growth := mkTx("d.evil", "/beacon", "GET", 200, "text/html", 512, "", time.Second)

	// Control: restored without the journal mark, the growth alerts (the
	// const scorer's CRC matches the serving model, so the pin re-attaches
	// to the hot scorer).
	control := NewSharded(cfg, constScorer(0.9))
	if _, err := control.RestoreCheckpoint(data); err != nil {
		t.Fatal(err)
	}
	if alerts := control.Process(growth); len(alerts) != 1 {
		t.Fatalf("control growth alerts = %d, want 1", len(alerts))
	}

	// Recovery path: MarkAlerted from the replayed journal suppresses the
	// duplicate.
	recovered := NewSharded(cfg, constScorer(0.9))
	if _, err := recovered.RestoreCheckpoint(data); err != nil {
		t.Fatal(err)
	}
	w := recovered.Watched()
	if len(w) != 1 {
		t.Fatalf("restored watches = %d, want 1", len(w))
	}
	if !recovered.MarkAlerted(w[0].Client, w[0].ClusterID) {
		t.Fatal("MarkAlerted did not find the restored cluster")
	}
	if recovered.MarkAlerted(netip.MustParseAddr("203.0.113.9"), 999) {
		t.Fatal("MarkAlerted invented a cluster")
	}
	if alerts := recovered.Process(growth); len(alerts) != 0 {
		t.Fatalf("marked watch re-fired the journaled alert: %+v", alerts)
	}
}
