package detector

import (
	"bytes"
	"encoding/json"
	"net/netip"
	"reflect"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"dynaminer/internal/httpstream"
	"dynaminer/internal/synth"
)

// interleavedCorpus merges a synthetic corpus into one multi-client
// transaction stream: each episode gets its own client IP and the streams
// are interleaved in timestamp order, the way a capture point sees them.
func interleavedCorpus(tb testing.TB, n int) []httpstream.Transaction {
	tb.Helper()
	eps := synth.GenerateCorpus(synth.Config{Seed: 7, Infections: n, Benign: n})
	var all []httpstream.Transaction
	for i, ep := range eps {
		ip := netip.AddrFrom4([4]byte{10, 7, byte(i >> 8), byte(i)})
		for _, tx := range ep.Txs {
			tx.ClientIP = ip
			all = append(all, tx)
		}
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].ReqTime.Before(all[j].ReqTime) })
	return all
}

// TestShardedOneShardMatchesEngine is the determinism guard: with a single
// shard, the ShardedEngine must reproduce the plain Engine's alert stream
// byte for byte on a replayed corpus.
func TestShardedOneShardMatchesEngine(t *testing.T) {
	txs := interleavedCorpus(t, 10)
	plain := New(Config{RedirectThreshold: 1}, constScorer(0.9))
	sharded := NewSharded(Config{RedirectThreshold: 1, Shards: 1}, constScorer(0.9))

	pa := plain.ProcessAll(txs)
	sa := sharded.ProcessAll(txs)
	if len(pa) == 0 {
		t.Fatal("corpus produced no alerts; determinism guard is vacuous")
	}
	pj, err := json.Marshal(pa)
	if err != nil {
		t.Fatal(err)
	}
	sj, err := json.Marshal(sa)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pj, sj) {
		t.Fatalf("alert streams differ:\nplain   = %s\nsharded = %s", pj, sj)
	}
	if plain.Stats() != sharded.Stats() {
		t.Fatalf("stats differ: plain %+v, sharded %+v", plain.Stats(), sharded.Stats())
	}
}

// TestShardedPerClientDeterminism checks the shard-per-client invariant:
// each client's alerts are identical regardless of shard count (only
// cluster IDs, which are strided per shard, may differ).
func TestShardedPerClientDeterminism(t *testing.T) {
	txs := interleavedCorpus(t, 8)
	perClient := func(alerts []Alert) map[string][]string {
		m := make(map[string][]string)
		for _, a := range alerts {
			a.ClusterID = 0 // shard-striding makes IDs layout-dependent
			data, err := json.Marshal(a)
			if err != nil {
				t.Fatal(err)
			}
			m[a.Client.String()] = append(m[a.Client.String()], string(data))
		}
		return m
	}
	a1 := NewSharded(Config{RedirectThreshold: 1, Shards: 1}, constScorer(0.9)).ProcessAll(txs)
	a4 := NewSharded(Config{RedirectThreshold: 1, Shards: 4}, constScorer(0.9)).ProcessAll(txs)
	if len(a1) == 0 {
		t.Fatal("no alerts; test is vacuous")
	}
	if g1, g4 := perClient(a1), perClient(a4); !reflect.DeepEqual(g1, g4) {
		t.Fatalf("per-client alerts differ across shard counts:\n1 shard: %v\n4 shards: %v", g1, g4)
	}
}

func TestShardedRoutingAndAggregation(t *testing.T) {
	s := NewSharded(Config{RedirectThreshold: 3, Shards: 4}, constScorer(0.1))
	const clients = 16
	for i := 0; i < clients; i++ {
		ip := netip.AddrFrom4([4]byte{10, 9, 0, byte(i)})
		for _, tx := range infectionStream() {
			tx.ClientIP = ip
			s.Process(tx)
		}
	}
	st := s.Stats()
	if st.Transactions != clients*5 {
		t.Fatalf("transactions = %d, want %d", st.Transactions, clients*5)
	}
	// Each client's whole chain must land in one shard and one cluster; a
	// client split across shards would open extra clusters.
	if st.Clusters != clients {
		t.Fatalf("clusters = %d, want %d", st.Clusters, clients)
	}
	if st.CluesFired != clients {
		t.Fatalf("clues = %d, want %d", st.CluesFired, clients)
	}

	w := s.Watched()
	if len(w) != clients {
		t.Fatalf("watched = %d, want %d", len(w), clients)
	}
	seen := make(map[int]bool)
	for _, ww := range w {
		if seen[ww.ClusterID] {
			t.Fatalf("cluster ID %d not unique across shards", ww.ClusterID)
		}
		seen[ww.ClusterID] = true
	}
	if !sort.SliceIsSorted(w, func(i, j int) bool { return w[i].ClusterID < w[j].ClusterID }) {
		t.Fatal("Watched not ordered by cluster ID")
	}

	if n := s.EvictIdle(t0.Add(time.Hour)); n != clients {
		t.Fatalf("evicted = %d, want %d", n, clients)
	}
	if got := s.Stats().Evicted; got != clients {
		t.Fatalf("stats.Evicted = %d, want %d", got, clients)
	}
	if len(s.Watched()) != 0 {
		t.Fatal("watches must not survive eviction")
	}
}

func TestShardedDefaults(t *testing.T) {
	if got := NewSharded(Config{}, nil).NumShards(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("default shards = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := NewSharded(Config{Shards: 3}, nil).NumShards(); got != 3 {
		t.Fatalf("shards = %d, want 3", got)
	}
}

// TestShardedEngineRaceStress hammers one ShardedEngine from many
// goroutines with interleaved Process/Stats/Watched/EvictIdle calls; run
// under -race (the tier-2 target) to validate the shard locking.
func TestShardedEngineRaceStress(t *testing.T) {
	s := NewSharded(Config{RedirectThreshold: 3, Shards: 4}, constScorer(0.6))
	const (
		writers = 8
		rounds  = 40
	)
	done := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-done:
					return
				default:
					_ = s.Stats()
					_ = s.Watched()
				}
			}
		}()
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ip := netip.AddrFrom4([4]byte{10, 0, 1, byte(w)})
			for i := 0; i < rounds; i++ {
				shift := time.Duration(i) * time.Minute
				for _, tx := range infectionStream() {
					tx.ClientIP = ip
					tx.ReqTime = tx.ReqTime.Add(shift)
					tx.RespTime = tx.RespTime.Add(shift)
					s.Process(tx)
				}
				switch i % 3 {
				case 0:
					_ = s.Stats()
				case 1:
					_ = s.Watched()
				case 2:
					s.EvictIdle(t0.Add(shift - 30*time.Minute))
				}
			}
		}(w)
	}
	wg.Wait()
	close(done)
	readers.Wait()
	if got := s.Stats().Transactions; got != writers*rounds*5 {
		t.Fatalf("transactions = %d, want %d", got, writers*rounds*5)
	}
}

// TestShardedProcessAllMatchesPerTx pins the slab contract directly: on a
// multi-shard engine, ProcessAll (shard-grouped batches, concurrent
// shards, order-preserving merge) must emit exactly the alert stream that
// per-transaction Process calls produce on an identically configured
// engine.
func TestShardedProcessAllMatchesPerTx(t *testing.T) {
	txs := interleavedCorpus(t, 8)
	serial := NewSharded(Config{RedirectThreshold: 1, Shards: 4}, constScorer(0.9))
	slab := NewSharded(Config{RedirectThreshold: 1, Shards: 4}, constScorer(0.9))

	var want []Alert
	for _, tx := range txs {
		want = append(want, serial.Process(tx)...)
	}
	got := slab.ProcessAll(txs)
	if len(want) == 0 {
		t.Fatal("no alerts; test is vacuous")
	}
	wj, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	gj, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wj, gj) {
		t.Fatalf("slab alert stream differs from per-tx stream:\nper-tx = %s\nslab   = %s", wj, gj)
	}
	if serial.Stats() != slab.Stats() {
		t.Fatalf("stats differ: per-tx %+v, slab %+v", serial.Stats(), slab.Stats())
	}
}
