package detector

import (
	"bytes"
	"math"
	"sort"
	"testing"
	"time"

	"dynaminer/internal/httpstream"
	"dynaminer/internal/synth"
	"dynaminer/internal/wcg"
)

// recordingScorer captures every vector it is asked to score, so the
// differential tests can compare the exact feature vectors each classify
// path produced, not just the resulting alerts.
type recordingScorer struct {
	base    Scorer
	vectors [][]float64
}

func (r *recordingScorer) Score(x []float64) float64 {
	r.vectors = append(r.vectors, append([]float64(nil), x...))
	return r.base.Score(x)
}

// vecScorer derives a deterministic pseudo-probability from the vector
// content: identical bits in, identical score out, and small feature
// differences move it across the alert threshold — so the differential
// tests exercise both alerting and non-alerting classifications.
type vecScorer struct{}

func (vecScorer) Score(x []float64) float64 {
	h := 0.0
	for i, v := range x {
		h += v * float64(i%7+1)
	}
	_, frac := math.Modf(h / 10)
	return math.Abs(frac)
}

func wcgJSON(t *testing.T, w *wcg.WCG) []byte {
	t.Helper()
	if w == nil {
		return nil
	}
	var buf bytes.Buffer
	if err := w.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// requireSameAlerts compares two alert batches field by field, scores
// bitwise, and the carried WCGs byte for byte.
func requireSameAlerts(t *testing.T, ctx string, inc, scr []Alert) {
	t.Helper()
	if len(inc) != len(scr) {
		t.Fatalf("%s: %d alerts incremental, %d from scratch", ctx, len(inc), len(scr))
	}
	for i := range inc {
		a, b := inc[i], scr[i]
		if math.Float64bits(a.Score) != math.Float64bits(b.Score) {
			t.Fatalf("%s: alert %d score %v != %v", ctx, i, a.Score, b.Score)
		}
		if !a.Time.Equal(b.Time) || a.Client != b.Client || a.ClusterID != b.ClusterID ||
			a.TriggerHost != b.TriggerHost || a.TriggerPayload != b.TriggerPayload {
			t.Fatalf("%s: alert %d fields diverged:\nincremental: %+v\nscratch:     %+v", ctx, i, a, b)
		}
		if !bytes.Equal(wcgJSON(t, a.WCG), wcgJSON(t, b.WCG)) {
			t.Fatalf("%s: alert %d WCG serializations diverged", ctx, i)
		}
	}
}

// runDifferential streams txs through an incremental engine and a
// DisableIncremental twin, comparing alerts per transaction and the full
// scored-vector sequences at the end. Returns the incremental engine's
// stats.
func runDifferential(t *testing.T, ctx string, cfg Config, base Scorer, txs []httpstream.Transaction) Stats {
	t.Helper()
	incRec := &recordingScorer{base: base}
	scrRec := &recordingScorer{base: base}
	scrCfg := cfg
	scrCfg.DisableIncremental = true
	inc := New(cfg, incRec)
	scr := New(scrCfg, scrRec)
	for _, tx := range txs {
		requireSameAlerts(t, ctx, inc.Process(tx), scr.Process(tx))
	}
	if len(incRec.vectors) != len(scrRec.vectors) {
		t.Fatalf("%s: %d classifications incremental, %d from scratch", ctx, len(incRec.vectors), len(scrRec.vectors))
	}
	for i := range incRec.vectors {
		a, b := incRec.vectors[i], scrRec.vectors[i]
		for j := range a {
			if math.Float64bits(a[j]) != math.Float64bits(b[j]) {
				t.Fatalf("%s: classification %d feature %d = %v incremental, %v from scratch",
					ctx, i, j, a[j], b[j])
			}
		}
	}
	is, ss := inc.Stats(), scr.Stats()
	if is.Classifications != ss.Classifications || is.CluesFired != ss.CluesFired || is.Alerts != ss.Alerts {
		t.Fatalf("%s: stats diverged:\nincremental: %+v\nscratch:     %+v", ctx, is, ss)
	}
	if ss.Rebuilds != ss.Classifications {
		t.Fatalf("%s: DisableIncremental engine rebuilt %d of %d classifications", ctx, ss.Rebuilds, ss.Classifications)
	}
	return is
}

// TestIncrementalClassifyMatchesScratch is the tentpole's correctness
// gate: over 55 seeded synthetic episodes, the incremental classify path
// must produce bit-identical feature vectors, scores, and alert sequences
// (including the serialized alert WCGs) to the from-scratch path.
func TestIncrementalClassifyMatchesScratch(t *testing.T) {
	episodes := synth.GenerateCorpus(synth.Config{Seed: 59, Infections: 30, Benign: 25})
	if len(episodes) < 50 {
		t.Fatalf("only %d episodes generated", len(episodes))
	}
	cfg := Config{RedirectThreshold: 1, ScoreThreshold: 0.3}
	classified, rebuilt := 0, 0
	for _, ep := range episodes {
		st := runDifferential(t, ep.Family, cfg, vecScorer{}, ep.Txs)
		classified += st.Classifications
		rebuilt += st.Rebuilds
	}
	if classified == 0 {
		t.Fatal("no episode triggered a classification; the differential covered nothing")
	}
	// Synthetic episodes arrive in request-time order, so the incremental
	// path must have served every classification.
	if rebuilt != 0 {
		t.Fatalf("incremental engine fell back on %d of %d classifications", rebuilt, classified)
	}
}

// TestIncrementalInterleavedClients merges all episodes into one stream
// ordered by request time, so many clients' clusters grow interleaved
// through the same engine (and the same shared scratch workspace).
func TestIncrementalInterleavedClients(t *testing.T) {
	episodes := synth.GenerateCorpus(synth.Config{Seed: 71, Infections: 12, Benign: 10})
	var stream []httpstream.Transaction
	for _, ep := range episodes {
		stream = append(stream, ep.Txs...)
	}
	sort.SliceStable(stream, func(i, j int) bool { return stream[i].ReqTime.Before(stream[j].ReqTime) })
	st := runDifferential(t, "interleaved", Config{RedirectThreshold: 1, ScoreThreshold: 0.3}, vecScorer{}, stream)
	if st.Classifications == 0 {
		t.Fatal("interleaved stream triggered no classifications")
	}
	if st.Rebuilds != 0 {
		t.Fatalf("incremental engine fell back on %d of %d classifications", st.Rebuilds, st.Classifications)
	}
}

// TestIncrementalFallbackOnOutOfOrder pins the explicit fallback: a
// watched transaction arriving with an earlier request time than the live
// WCG's last append voids the byte-identity contract, so the engine must
// finish the watch from scratch — with output still identical to the
// always-from-scratch twin.
func TestIncrementalFallbackOnOutOfOrder(t *testing.T) {
	txs := infectionStream()
	// A related follow-up (same host as the download) whose ReqTime
	// precedes the download it follows in arrival order.
	late := mkTx("d.evil", "/beacon", "POST", 200, "text/plain", 40, "", 400*time.Millisecond)
	txs = append(txs, late)
	// And one more in-order growth transaction afterwards.
	txs = append(txs, mkTx("d.evil", "/beacon2", "POST", 200, "text/plain", 40, "", 900*time.Millisecond))

	st := runDifferential(t, "out-of-order", Config{RedirectThreshold: 3}, constScorer(0.9), txs)
	if st.Rebuilds == 0 {
		t.Fatal("out-of-order watched transaction did not trigger the from-scratch fallback")
	}
	if st.Rebuilds >= st.Classifications {
		t.Fatalf("fallback served all %d classifications; the clue itself should have been incremental", st.Classifications)
	}
}

// TestCloseWatchResetsIncrementalState checks a second clue in the same
// cluster starts a fresh live WCG instead of growing the closed one.
func TestCloseWatchResetsIncrementalState(t *testing.T) {
	cfg := Config{RedirectThreshold: 3, WatchIdle: time.Minute}
	var txs []httpstream.Transaction
	txs = append(txs, infectionStream()...)
	// Let the watch go idle, then run a second, unrelated infection chain.
	base := 10 * time.Minute
	txs = append(txs,
		redirectTx("p.evil", "q.evil", base),
		mkTx("q.evil", "/x", "GET", 302, "", 0, "http://p.evil/r", base+100*time.Millisecond),
		redirectTx("q.evil", "r.evil", base+150*time.Millisecond),
		redirectTx("r.evil", "s.evil", base+300*time.Millisecond),
		mkTx("s.evil", "/second.exe", "GET", 200, "application/x-msdownload", 70000, "http://r.evil/r", base+500*time.Millisecond),
	)
	st := runDifferential(t, "second-clue", cfg, constScorer(0.9), txs)
	if st.CluesFired != 2 {
		t.Fatalf("clues fired = %d, want 2", st.CluesFired)
	}
	if st.Rebuilds != 0 {
		t.Fatalf("second watch fell back to from-scratch (%d rebuilds)", st.Rebuilds)
	}
}
