package detector

import (
	"net/netip"
	"runtime"
	"sort"
	"sync"
	"time"

	"dynaminer/internal/httpstream"
	"dynaminer/internal/ml"
	"dynaminer/internal/obs"
)

// ShardedEngine partitions the streaming detector across N independent
// Engine shards so concurrent capture points (e.g. the proxy's request
// handlers) classify in parallel. Every transaction is routed by a hash of
// its client IP, so all of a client's session clusters live in exactly one
// shard and each client's alert stream is identical to what a single
// Engine would produce — sharding changes throughput, not verdicts. Each
// shard is guarded by its own mutex; there is no cross-shard state, so no
// lock is ever held while another is taken.
//
// ShardedEngine is safe for concurrent use.
type ShardedEngine struct {
	shards []*engineShard
	// models is the holder every shard serves from: one atomic swap
	// reaches all shards at once, while each shard's in-flight watches
	// keep their pinned version. Immutable after construction.
	models *modelHolder
	// slabs pools ProcessAll's per-call scratch (the per-transaction result
	// table and per-shard index groups), so steady-state slab ingestion
	// stops allocating scaffolding proportional to the slab size.
	slabs sync.Pool
}

// slabScratch is ProcessAll's pooled working state.
type slabScratch struct {
	results [][]Alert
	groups  [][]int
}

type engineShard struct {
	mu  sync.Mutex
	eng *Engine // guarded by mu
}

// NewSharded returns a ShardedEngine with cfg.Shards shards (zero selects
// runtime.GOMAXPROCS(0)) sharing one trained model. With one shard it
// reproduces a plain Engine exactly, cluster IDs included.
func NewSharded(cfg Config, model Scorer) *ShardedEngine {
	n := cfg.Shards
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if cfg.Metrics == nil {
		// All shards must share one registry so the /metrics totals sum
		// their per-shard cells; a private default keeps Registry coherent
		// even when the caller exports nothing.
		cfg.Metrics = obs.NewRegistry()
	}
	s := &ShardedEngine{shards: make([]*engineShard, n)}
	for i := range s.shards {
		eng := New(cfg, model)
		// Stride cluster IDs so IDs stay unique across shards: shard i of
		// n allocates i, i+n, i+2n, ...
		eng.idBase, eng.idStep = i, n
		if i == 0 {
			s.models = eng.models
		} else {
			// All shards serve from shard 0's holder, so one swap reaches
			// every shard and per-shard reload metrics never diverge.
			eng.models = s.models
		}
		s.shards[i] = &engineShard{eng: eng}
	}
	return s
}

// ModelVersion returns the serving model's version (shared by all shards).
func (s *ShardedEngine) ModelVersion() ModelVersion { return s.models.current().version }

// SwapModel validates candidate and atomically swaps it into every shard:
// watches armed before the swap keep their pinned version, watches armed
// after it score with the new model. See Engine.SwapModel.
func (s *ShardedEngine) SwapModel(candidate Scorer) (ModelVersion, error) {
	if f, ok := candidate.(*ml.Forest); ok && f != nil {
		candidate = f.Flatten()
	}
	return s.models.swap(candidate)
}

// ReloadModel loads a candidate through load and swaps it into every
// shard; failures leave the serving model untouched.
func (s *ShardedEngine) ReloadModel(load func() (Scorer, error)) (ModelVersion, error) {
	return s.models.reload(load)
}

// ReloadModelFile reads a model file (DMFB blob or JSON, sniffed) through
// the full semantic screens and hot-swaps it into every shard. On any
// failure — unreadable file, corrupt blob, failed screens, wrong feature
// dimensionality — the serving model keeps scoring and the failure is
// counted in dynaminer_model_reload_failures_total.
func (s *ShardedEngine) ReloadModelFile(path string) (ModelVersion, error) {
	return s.models.reload(func() (Scorer, error) {
		ff, err := ml.LoadModelFile(path)
		if err != nil {
			return nil, err
		}
		return ff, nil
	})
}

// RollbackModel reinstates the previous model under its original version.
func (s *ShardedEngine) RollbackModel() (ModelVersion, error) { return s.models.rollback() }

// NumShards returns the number of engine shards.
func (s *ShardedEngine) NumShards() int { return len(s.shards) }

// Registry returns the observability registry shared by every shard.
func (s *ShardedEngine) Registry() *obs.Registry {
	sh := s.shards[0]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.eng.Registry()
}

// shardIndex routes a client address to its owning shard: FNV-1a over the
// 16-byte address, so IPv4 and its v6-mapped form land together and the
// assignment is stable for the engine's lifetime.
func (s *ShardedEngine) shardIndex(client netip.Addr) int {
	if len(s.shards) == 1 {
		return 0
	}
	b := client.As16()
	h := uint32(2166136261)
	for _, x := range b {
		h ^= uint32(x)
		h *= 16777619
	}
	return int(h % uint32(len(s.shards)))
}

func (s *ShardedEngine) shardFor(client netip.Addr) *engineShard {
	return s.shards[s.shardIndex(client)]
}

// Process ingests one transaction under its client's shard lock and
// returns any alerts it triggers.
func (s *ShardedEngine) Process(tx httpstream.Transaction) []Alert {
	return s.shardFor(tx.ClientIP).process(tx, nil)
}

// ProcessTraced is Process with an ambient trace; the shard's spans nest
// under the caller's (see Engine.ProcessTraced).
func (s *ShardedEngine) ProcessTraced(tx httpstream.Transaction, at *obs.ActiveTrace) []Alert {
	return s.shardFor(tx.ClientIP).process(tx, at)
}

// process runs one transaction under the shard lock.
func (sh *engineShard) process(tx httpstream.Transaction, at *obs.ActiveTrace) []Alert {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.processTracedLocked(tx, at)
}

// processLocked runs one transaction with a last-resort panic guard; the
// caller holds sh.mu. Engine.Process already recovers per-cluster faults;
// this outer guard catches anything that escapes it (including faults in
// the recovery path itself), so a panic on one shard can never unwind
// into the proxy's request handler and kill the process.
func (sh *engineShard) processLocked(tx httpstream.Transaction) []Alert {
	return sh.processTracedLocked(tx, nil)
}

// processTracedLocked is processLocked with an ambient trace.
func (sh *engineShard) processTracedLocked(tx httpstream.Transaction, at *obs.ActiveTrace) (alerts []Alert) {
	defer func() {
		if r := recover(); r != nil {
			alerts = nil
			sh.eng.mx.panics.Inc()
		}
	}()
	return sh.eng.ProcessTraced(tx, at)
}

// processSlab runs this shard's share of a slab — the transactions of txs
// selected by idxs, or all of them when idxs is nil — under ONE lock
// acquisition, writing each transaction's alerts into results at its
// original index.
func (sh *engineShard) processSlab(txs []httpstream.Transaction, idxs []int, results [][]Alert) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if idxs == nil {
		for i := range txs {
			results[i] = sh.processLocked(txs[i])
		}
		return
	}
	for _, i := range idxs {
		results[i] = sh.processLocked(txs[i])
	}
}

// ProcessAll moves a transaction slab through the engine: transactions
// are grouped by owning shard, each shard processes its group as one
// batch under a single lock acquisition (instead of a lock round-trip per
// transaction), the groups run concurrently, and the per-transaction
// alert slices are merged back in input order. Because every client's
// transactions live in exactly one shard and keep their relative order,
// the merged alert stream is identical to feeding Process one transaction
// at a time.
func (s *ShardedEngine) ProcessAll(txs []httpstream.Transaction) []Alert {
	if len(txs) == 0 {
		return nil
	}
	ws, _ := s.slabs.Get().(*slabScratch)
	if ws == nil {
		ws = &slabScratch{}
	}
	if cap(ws.results) < len(txs) {
		ws.results = make([][]Alert, len(txs))
	}
	results := ws.results[:len(txs)]
	for i := range results {
		results[i] = nil
	}
	if len(s.shards) == 1 {
		s.shards[0].processSlab(txs, nil, results)
	} else {
		if cap(ws.groups) < len(s.shards) {
			ws.groups = make([][]int, len(s.shards))
		}
		groups := ws.groups[:len(s.shards)]
		for i := range groups {
			groups[i] = groups[i][:0]
		}
		for i := range txs {
			si := s.shardIndex(txs[i].ClientIP)
			groups[si] = append(groups[si], i)
		}
		var wg sync.WaitGroup
		for si, idxs := range groups {
			if len(idxs) == 0 {
				continue
			}
			wg.Add(1)
			go func(sh *engineShard, idxs []int) {
				defer wg.Done()
				defer func() {
					// processLocked recovers per transaction; this guard
					// covers the slab plumbing itself so one shard's fault
					// cannot leave the WaitGroup hanging. processSlab's
					// deferred unlock has run by the time a panic lands
					// here, so the lock is free to take.
					if r := recover(); r != nil {
						sh.mu.Lock()
						sh.eng.mx.panics.Inc()
						sh.mu.Unlock()
					}
				}()
				sh.processSlab(txs, idxs, results)
			}(s.shards[si], idxs)
		}
		wg.Wait()
	}
	n := 0
	for _, a := range results {
		n += len(a)
	}
	var alerts []Alert
	if n > 0 {
		alerts = make([]Alert, 0, n)
		for _, a := range results {
			alerts = append(alerts, a...)
		}
	}
	for i := range results {
		results[i] = nil // release alert references before pooling
	}
	s.slabs.Put(ws)
	return alerts
}

// Health reports readiness conditions OR-ed across every shard (any
// shard over budget, quarantined or shedding marks the whole engine),
// with the shared serving model's generation.
func (s *ShardedEngine) Health() obs.HealthStatus {
	var st obs.HealthStatus
	for _, sh := range s.shards {
		sh.mu.Lock()
		h := sh.eng.Health()
		sh.mu.Unlock()
		st.Degraded = st.Degraded || h.Degraded
		st.Quarantined = st.Quarantined || h.Quarantined
		st.Shedding = st.Shedding || h.Shedding
		st.ModelVersion = h.ModelVersion
	}
	return st
}

// Stats returns the engine counters aggregated across all shards.
func (s *ShardedEngine) Stats() Stats {
	var total Stats
	for _, sh := range s.shards {
		sh.mu.Lock()
		total.add(sh.eng.Stats())
		sh.mu.Unlock()
	}
	return total
}

// Watched returns snapshots of every potential-infection WCG currently
// being grown, merged across shards and ordered by cluster ID.
func (s *ShardedEngine) Watched() []WatchedWCG {
	var out []WatchedWCG
	for _, sh := range s.shards {
		sh.mu.Lock()
		out = append(out, sh.eng.Watched()...)
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ClusterID < out[j].ClusterID })
	return out
}

// EvictIdle fans the sweep out to every shard and returns the total number
// of session clusters removed.
func (s *ShardedEngine) EvictIdle(cutoff time.Time) int {
	evicted := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		evicted += sh.eng.EvictIdle(cutoff)
		sh.mu.Unlock()
	}
	return evicted
}
