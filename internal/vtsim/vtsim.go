// Package vtsim simulates a VirusTotal-style ensemble of signature-based
// AV engines with signature lag. The paper uses VirusTotal in three roles —
// ground-truth sanitization, the Table V baseline, and the case studies
// where DynaMiner flags payloads days before any engine does — and in all
// of them VirusTotal behaves as a hash-lookup oracle whose coverage of a
// sample grows as signatures ship over days. This package models exactly
// that: per-sample detection counts are a deterministic function of the
// sample identity (its "hash"), the scan time relative to when the sample
// first appeared in the wild, and the configured lag curve.
package vtsim

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"time"
)

// Ensemble models the AV detector pool. The zero value is unusable; use
// Default() or fill every field.
type Ensemble struct {
	// Engines is the pool size; VirusTotal had 56 at the time of the paper.
	Engines int
	// Threshold is the conservative flagging rule: a sample is deemed
	// malicious when at least this many engines detect it (the paper uses
	// "at least 3 of the detectors").
	Threshold int
	// MeanLagDays is the time constant of signature maturity: the fraction
	// of eventually-detecting engines with a signature at age a days is
	// 1 - exp(-a/MeanLagDays).
	MeanLagDays float64
	// QualityExp skews per-sample detectability: a sample's eventual
	// engine coverage is quality^QualityExp where quality is a
	// hash-uniform in [0,1]. Larger exponents leave more hard samples
	// (paper: ~14% of validation infections were missed).
	QualityExp float64
	// BenignFPRate is the fraction of benign samples that accumulate
	// Threshold or more spurious detections (Table V: 91 of 1500).
	BenignFPRate float64
	// TimeoutRate is the fraction of scans that time out (Table V: 110 of
	// the 1179 missed infection WCGs were timeouts).
	TimeoutRate float64
}

// Default returns the calibration that matches the paper's Table V shape.
func Default() Ensemble {
	return Ensemble{
		Engines:      56,
		Threshold:    3,
		MeanLagDays:  5,
		QualityExp:   1.5,
		BenignFPRate: 0.06,
		TimeoutRate:  110.0 / 7489,
	}
}

// Verdict is one scan result.
type Verdict struct {
	Detections int
	Engines    int
	TimedOut   bool
}

// Flagged reports whether the ensemble deems the sample malicious under
// the configured threshold. Timed-out scans never flag.
func (v Verdict) Flagged(threshold int) bool {
	return !v.TimedOut && v.Detections >= threshold
}

// hashUnit maps a string to a deterministic uniform in [0,1).
func hashUnit(s string) float64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return float64(h.Sum64()>>11) / float64(1<<53)
}

// Scan evaluates the sample identified by id (a payload hash or equivalent
// stable identity) at the given wall-clock time. firstSeen is when the
// sample first appeared in the wild; signatures mature from that moment.
// Scans are deterministic: the same (id, malicious, firstSeen, at) always
// produces the same verdict.
func (e Ensemble) Scan(id string, malicious bool, firstSeen, at time.Time) Verdict {
	v := Verdict{Engines: e.Engines}
	if hashUnit(id+"|timeout") < e.TimeoutRate {
		v.TimedOut = true
		return v
	}
	if !malicious {
		// Benign samples: a small deterministic fraction accumulates enough
		// heuristic detections to cross the threshold; the rest see 0-2.
		noise := int(hashUnit(id+"|noise") * float64(e.Threshold))
		if hashUnit(id+"|fp") < e.BenignFPRate {
			v.Detections = e.Threshold + noise
		} else {
			v.Detections = noise
		}
		return v
	}
	ageDays := at.Sub(firstSeen).Hours() / 24
	if ageDays < 0 {
		ageDays = 0
	}
	maturity := 1 - math.Exp(-ageDays/e.MeanLagDays)
	quality := math.Pow(hashUnit(id+"|quality"), e.QualityExp)
	v.Detections = int(float64(e.Engines)*quality*maturity + 0.5)
	if v.Detections > e.Engines {
		v.Detections = e.Engines
	}
	return v
}

// engineNameParts generate the deterministic pool of AV engine names.
var (
	enginePrefixes = []string{"Aegis", "Bastion", "Cipher", "Drake", "Ember", "Falcon", "Guard", "Hexa", "Iron", "Jade", "Krypt", "Lumen", "Mantis", "Nova"}
	engineSuffixes = []string{"AV", "Scan", "Shield", "Defender"}
)

// EngineNames returns the deterministic names of the pool's engines.
func (e Ensemble) EngineNames() []string {
	names := make([]string, e.Engines)
	for i := range names {
		names[i] = enginePrefixes[i%len(enginePrefixes)] + engineSuffixes[(i/len(enginePrefixes))%len(engineSuffixes)]
		if i >= len(enginePrefixes)*len(engineSuffixes) {
			names[i] = fmt.Sprintf("%s%d", names[i], i)
		}
	}
	return names
}

// Report is a detailed scan result naming the flagging engines, as a
// VirusTotal-style per-engine breakdown.
type Report struct {
	Verdict  Verdict
	Flagging []string
}

// ScanDetail runs Scan and attributes the detections to specific engines:
// for a given sample, each engine has a deterministic affinity, and the
// Detections most-affine engines are the flaggers. Repeated calls agree
// with each other and with Scan.
func (e Ensemble) ScanDetail(id string, malicious bool, firstSeen, at time.Time) Report {
	v := e.Scan(id, malicious, firstSeen, at)
	rep := Report{Verdict: v}
	if v.Detections == 0 || v.TimedOut {
		return rep
	}
	names := e.EngineNames()
	type affinity struct {
		name string
		u    float64
	}
	affs := make([]affinity, len(names))
	for i, name := range names {
		affs[i] = affinity{name: name, u: hashUnit(id + "|" + name)}
	}
	sort.Slice(affs, func(a, b int) bool { return affs[a].u < affs[b].u })
	n := v.Detections
	if n > len(affs) {
		n = len(affs)
	}
	for _, a := range affs[:n] {
		rep.Flagging = append(rep.Flagging, a.name)
	}
	sort.Strings(rep.Flagging)
	return rep
}

// DetectionDate returns the first day offset (in whole days from
// firstSeen) at which the ensemble would flag the sample, scanning once per
// day up to horizon days. It returns -1 if the sample is never flagged
// within the horizon. This backs the "detected 11 days earlier" forensic
// comparison.
func (e Ensemble) DetectionDate(id string, firstSeen time.Time, horizonDays int) int {
	for d := 0; d <= horizonDays; d++ {
		v := e.Scan(id, true, firstSeen, firstSeen.Add(time.Duration(d)*24*time.Hour))
		if v.Flagged(e.Threshold) {
			return d
		}
	}
	return -1
}
