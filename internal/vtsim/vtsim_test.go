package vtsim

import (
	"fmt"
	"testing"
	"time"
)

var (
	seen = time.Date(2016, 6, 1, 0, 0, 0, 0, time.UTC)
)

func TestScanDeterministic(t *testing.T) {
	e := Default()
	at := seen.Add(48 * time.Hour)
	a := e.Scan("sample-1", true, seen, at)
	b := e.Scan("sample-1", true, seen, at)
	if a != b {
		t.Fatalf("scans differ: %+v vs %+v", a, b)
	}
}

func TestFreshMalwareUndetected(t *testing.T) {
	e := Default()
	misses := 0
	n := 500
	for i := 0; i < n; i++ {
		v := e.Scan(fmt.Sprintf("fresh-%d", i), true, seen, seen)
		if !v.Flagged(e.Threshold) {
			misses++
		}
	}
	// At age zero signatures have not shipped: nearly everything is missed.
	if misses < n*95/100 {
		t.Fatalf("fresh samples missed = %d/%d, want nearly all", misses, n)
	}
}

func TestMatureMalwareMostlyDetected(t *testing.T) {
	e := Default()
	hits := 0
	n := 2000
	at := seen.Add(60 * 24 * time.Hour) // two months old
	for i := 0; i < n; i++ {
		v := e.Scan(fmt.Sprintf("old-%d", i), true, seen, at)
		if v.Flagged(e.Threshold) {
			hits++
		}
	}
	rate := float64(hits) / float64(n)
	// Table V shape: ~84% of validation infections flagged.
	if rate < 0.75 || rate > 0.92 {
		t.Fatalf("mature detection rate = %v, want ~0.84", rate)
	}
}

func TestBenignFPRate(t *testing.T) {
	e := Default()
	flagged := 0
	n := 3000
	for i := 0; i < n; i++ {
		v := e.Scan(fmt.Sprintf("benign-%d", i), false, seen, seen)
		if v.Flagged(e.Threshold) {
			flagged++
		}
	}
	rate := float64(flagged) / float64(n)
	// Table V shape: 91/1500 = ~6% of benign flagged.
	if rate < 0.03 || rate > 0.10 {
		t.Fatalf("benign FP rate = %v, want ~0.06", rate)
	}
}

func TestTimeoutRate(t *testing.T) {
	e := Default()
	timeouts := 0
	n := 5000
	for i := 0; i < n; i++ {
		v := e.Scan(fmt.Sprintf("t-%d", i), true, seen, seen)
		if v.TimedOut {
			timeouts++
			if v.Flagged(e.Threshold) {
				t.Fatal("timed-out scan must not flag")
			}
		}
	}
	rate := float64(timeouts) / float64(n)
	if rate < 0.005 || rate > 0.03 {
		t.Fatalf("timeout rate = %v, want ~0.015", rate)
	}
}

func TestDetectionsBounded(t *testing.T) {
	e := Default()
	for i := 0; i < 500; i++ {
		v := e.Scan(fmt.Sprintf("b-%d", i), true, seen, seen.Add(365*24*time.Hour))
		if v.Detections < 0 || v.Detections > e.Engines {
			t.Fatalf("detections out of range: %d", v.Detections)
		}
	}
}

func TestDetectionDateLag(t *testing.T) {
	e := Default()
	// Across many samples, detection dates must span a lag distribution:
	// some immediate-ish, some after many days, some never.
	histogram := map[string]int{"early": 0, "late": 0, "never": 0}
	n := 400
	for i := 0; i < n; i++ {
		d := e.DetectionDate(fmt.Sprintf("lag-%d", i), seen, 60)
		switch {
		case d < 0:
			histogram["never"]++
		case d <= 3:
			histogram["early"]++
		default:
			histogram["late"]++
		}
	}
	if histogram["late"] == 0 {
		t.Fatal("no samples with multi-day lag; the 11-days-early scenario is impossible")
	}
	if histogram["never"] == 0 {
		t.Fatal("every sample eventually detected; hard samples missing")
	}
	if histogram["early"] == 0 {
		t.Fatal("no promptly detected samples")
	}
}

func TestDetectionDateMonotoneWithThreshold(t *testing.T) {
	e := Default()
	strict := e
	strict.Threshold = 10
	for i := 0; i < 50; i++ {
		id := fmt.Sprintf("m-%d", i)
		loose := e.DetectionDate(id, seen, 90)
		hard := strict.DetectionDate(id, seen, 90)
		if loose >= 0 && hard >= 0 && hard < loose {
			t.Fatalf("stricter threshold detected earlier: %d < %d", hard, loose)
		}
	}
}

func TestHashUnitRange(t *testing.T) {
	for i := 0; i < 1000; i++ {
		u := hashUnit(fmt.Sprintf("h-%d", i))
		if u < 0 || u >= 1 {
			t.Fatalf("hashUnit out of range: %v", u)
		}
	}
	if hashUnit("x") != hashUnit("x") {
		t.Fatal("hashUnit must be deterministic")
	}
}

func TestEngineNames(t *testing.T) {
	e := Default()
	names := e.EngineNames()
	if len(names) != 56 {
		t.Fatalf("names = %d", len(names))
	}
	seenName := make(map[string]bool)
	for _, n := range names {
		if n == "" || seenName[n] {
			t.Fatalf("bad or duplicate engine name %q", n)
		}
		seenName[n] = true
	}
}

func TestScanDetail(t *testing.T) {
	e := Default()
	at := seen.Add(45 * 24 * time.Hour)
	rep := e.ScanDetail("detail-sample", true, seen, at)
	if len(rep.Flagging) != rep.Verdict.Detections {
		t.Fatalf("flagging = %d, detections = %d", len(rep.Flagging), rep.Verdict.Detections)
	}
	// Deterministic.
	rep2 := e.ScanDetail("detail-sample", true, seen, at)
	if len(rep2.Flagging) != len(rep.Flagging) {
		t.Fatal("repeat scan differs")
	}
	for i := range rep.Flagging {
		if rep.Flagging[i] != rep2.Flagging[i] {
			t.Fatal("flagging engines differ between scans")
		}
	}
	// Maturity monotonicity: more engines flag later, and early flaggers
	// stay flaggers (affinity ordering is scan-time independent).
	early := e.ScanDetail("detail-sample", true, seen, seen.Add(24*time.Hour))
	if early.Verdict.Detections > rep.Verdict.Detections {
		t.Fatal("detections decreased with age")
	}
	inLate := make(map[string]bool)
	for _, n := range rep.Flagging {
		inLate[n] = true
	}
	for _, n := range early.Flagging {
		if !inLate[n] {
			t.Fatalf("early flagger %s vanished later", n)
		}
	}
}
