package chaos

import (
	"bytes"
	"math"
	"math/rand"
	"net/netip"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"dynaminer/internal/detector"
	"dynaminer/internal/ml"
	"dynaminer/internal/obs"
)

// trainSoakForest trains a small 37-feature forest on seeded random
// vectors, so the lifecycle soak swaps between two genuinely different
// models with distinct blob CRCs.
func trainSoakForest(t *testing.T, seed int64) *ml.FlatForest {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ds := &ml.Dataset{}
	for i := 0; i < 60; i++ {
		x := make([]float64, 37)
		for j := range x {
			x[j] = rng.Float64() * 10
		}
		ds.X = append(ds.X, x)
		ds.Y = append(ds.Y, i%2)
	}
	f, err := ml.TrainForest(ds, ml.ForestConfig{NumTrees: 5, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return f.Flatten()
}

// versionCRC extracts the blob CRC from a journal record's
// "g<gen>-<crc>" model version label.
func versionCRC(t *testing.T, version string) uint32 {
	t.Helper()
	i := strings.LastIndexByte(version, '-')
	if i < 0 {
		t.Fatalf("unparseable model version %q", version)
	}
	crc, err := strconv.ParseUint(version[i+1:], 16, 32)
	if err != nil {
		t.Fatalf("unparseable model version %q: %v", version, err)
	}
	return uint32(crc)
}

// TestLifecycleSoak is the model-lifecycle acceptance soak: the seeded
// corpus streams through a sharded engine while reloads land mid-stream —
// valid swaps, corrupt artifacts, erroring and panicking loaders,
// rollbacks — with the journal fsyncing through a sync-faulting sink.
// It asserts zero crashes, reload-counter conservation, and that every
// journaled alert re-scores bit-identically against the exact model
// version recorded on it.
func TestLifecycleSoak(t *testing.T) {
	stream, _ := soakStream(t)
	cfg := detector.Config{RedirectThreshold: 1, ScoreThreshold: 0.05, Shards: 4}

	modelA := trainSoakForest(t, 101)
	modelB := trainSoakForest(t, 102)
	if modelA.BlobCRC() == modelB.BlobCRC() {
		t.Fatal("soak models share a CRC; the version attribution check is vacuous")
	}
	dir := t.TempDir()
	pathA := filepath.Join(dir, "a.dmfb")
	pathB := filepath.Join(dir, "b.dmfb")
	pathCorrupt := filepath.Join(dir, "corrupt.dmfb")
	for path, blob := range map[string][]byte{
		pathA:       modelA.AppendFlatBlob(nil),
		pathB:       modelB.AppendFlatBlob(nil),
		pathCorrupt: CorruptBlob(7, modelB.AppendFlatBlob(nil)),
	} {
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	var sink bytes.Buffer
	flaky := NewFlakyWriter(5, &sink, 0, 0)
	flaky.FailSyncs(0.5)
	journal := obs.NewJournalWriterWith(flaky, obs.JournalConfig{FsyncEvery: 1})
	soakCfg := cfg
	soakCfg.Journal = journal
	eng := detector.NewSharded(soakCfg, modelA)

	loader := NewFlakyLoader(9, func() (detector.Scorer, error) {
		return ml.LoadModelFile(pathB)
	}, 0.4, 0.3)

	// Reload actions injected every few hundred transactions, cycling
	// through every failure shape the reload path must absorb.
	wantReloads, wantFailures := 0, 0
	action := 0
	reloadAt := 80
	alerts := 0
	for i, tx := range stream {
		alerts += len(eng.Process(tx)) // must never crash
		if i%reloadAt != reloadAt-1 {
			continue
		}
		switch action % 5 {
		case 0: // clean swap to B
			if _, err := eng.ReloadModelFile(pathB); err != nil {
				t.Fatalf("valid reload failed: %v", err)
			}
			wantReloads++
		case 1: // corrupt artifact: rejected pre-swap
			if _, err := eng.ReloadModelFile(pathCorrupt); err == nil {
				t.Fatal("corrupt reload succeeded")
			}
			wantFailures++
		case 2: // flaky loader: error, panic, or success — all absorbed
			before := eng.ModelVersion()
			if _, err := eng.ReloadModel(loader.Load); err != nil {
				wantFailures++
				if eng.ModelVersion() != before {
					t.Fatal("failed reload moved the serving version")
				}
			} else {
				wantReloads++
			}
		case 3: // rollback to the previous model
			if _, err := eng.RollbackModel(); err != nil {
				t.Fatalf("rollback failed mid-soak: %v", err)
			}
		case 4: // clean swap back to A
			if _, err := eng.ReloadModelFile(pathA); err != nil {
				t.Fatalf("valid reload failed: %v", err)
			}
			wantReloads++
		}
		action++
	}
	if action < 10 {
		t.Fatalf("soak injected only %d reload actions", action)
	}

	// Conservation: nothing lost, nothing crashed, every counter accounted.
	st := eng.Stats()
	if st.Transactions != len(stream) {
		t.Fatalf("engine lost transactions: %d of %d", st.Transactions, len(stream))
	}
	if st.Panics != 0 {
		t.Fatalf("lifecycle soak tripped %d engine panics", st.Panics)
	}
	reg := eng.Registry()
	if n := reg.CounterValue("dynaminer_model_reloads_total"); int(n) != wantReloads {
		t.Fatalf("reloads = %d, injected %d", n, wantReloads)
	}
	if n := reg.CounterValue("dynaminer_model_reload_failures_total"); int(n) != wantFailures {
		t.Fatalf("reload failures = %d, injected %d", n, wantFailures)
	}
	if wantFailures == 0 || loader.Faults() == 0 {
		t.Fatal("reload fault injection vacuous")
	}
	// The sync-faulting sink never cost a record: appends succeed even
	// when fsync fails, and both outcomes are counted.
	if journal.Drops() != 0 || int(journal.Writes()) != alerts {
		t.Fatalf("journal writes=%d drops=%d, want %d/0", journal.Writes(), journal.Drops(), alerts)
	}
	if journal.SyncFailures() == 0 || journal.Syncs() == 0 {
		t.Fatalf("sync fault injection vacuous: syncs=%d failures=%d", journal.Syncs(), journal.SyncFailures())
	}

	// Every journaled alert re-scores bit-identically against the exact
	// model version recorded on it — across every swap and rollback.
	recs, err := obs.ReadJournal(&sink)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != alerts {
		t.Fatalf("journal holds %d records, engine alerted %d times", len(recs), alerts)
	}
	byCRC := map[uint32]*ml.FlatForest{modelA.BlobCRC(): modelA, modelB.BlobCRC(): modelB}
	seen := map[uint32]int{}
	for i, rec := range recs {
		crc := versionCRC(t, rec.ModelVersion)
		forest, ok := byCRC[crc]
		if !ok {
			t.Fatalf("record %d scored by unknown model version %s", i, rec.ModelVersion)
		}
		seen[crc]++
		if got := forest.Score(rec.Features); math.Float64bits(got) != math.Float64bits(rec.Score) {
			t.Fatalf("record %d does not re-score against %s: %x vs %x",
				i, rec.ModelVersion, math.Float64bits(got), math.Float64bits(rec.Score))
		}
	}
	if len(seen) < 2 {
		t.Fatalf("all %d alerts scored by one model; mid-stream swaps never pinned (%v)", len(recs), seen)
	}
	t.Logf("lifecycle soak: %d alerts across versions %v, %d reloads, %d rejected, %d sync faults",
		alerts, seen, wantReloads, wantFailures, journal.SyncFailures())
}

// TestCrashRecoverySoak is the kill-and-restart acceptance: the corpus
// runs uninterrupted in one engine and crash-interrupted in another —
// checkpointed mid-stream, abandoned (the kill -9), restored into a
// fresh engine — and the post-recovery alert stream must be bit-identical
// to the uninterrupted run's.
func TestCrashRecoverySoak(t *testing.T) {
	stream, _ := soakStream(t)
	mid := len(stream) / 2
	cfg := detector.Config{RedirectThreshold: 1, ScoreThreshold: 0.05, Shards: 4}
	model := trainSoakForest(t, 103)

	uninterrupted := detector.NewSharded(cfg, model)
	uninterrupted.ProcessAll(stream[:mid])
	wantTail := uninterrupted.ProcessAll(stream[mid:])
	if len(wantTail) == 0 {
		t.Fatal("no post-checkpoint alerts; the recovery differential is vacuous")
	}

	// The doomed process: runs to the checkpoint, checkpoints, dies.
	doomed := detector.NewSharded(cfg, model)
	doomed.ProcessAll(stream[:mid])
	ckptPath := filepath.Join(t.TempDir(), "state.dmcp")
	if err := doomed.WriteCheckpointFile(ckptPath); err != nil {
		t.Fatal(err)
	}
	wantWatch := len(doomed.Watched())
	doomed = nil // kill -9

	// A checkpoint torn by the crash is rejected, never half-restored.
	data, err := os.ReadFile(ckptPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := detector.NewSharded(cfg, model).RestoreCheckpoint(CorruptBlob(11, data)); err == nil {
		t.Fatal("corrupted checkpoint restored")
	}

	restored := detector.NewSharded(cfg, model)
	if _, err := restored.RestoreCheckpointFile(ckptPath); err != nil {
		t.Fatal(err)
	}
	if got := len(restored.Watched()); got != wantWatch {
		t.Fatalf("restored engine watches %d clusters, pre-kill process watched %d", got, wantWatch)
	}
	gotTail := restored.ProcessAll(stream[mid:])
	if len(gotTail) != len(wantTail) {
		t.Fatalf("post-recovery alerts = %d, uninterrupted run raised %d", len(gotTail), len(wantTail))
	}
	for i := range wantTail {
		w, g := wantTail[i], gotTail[i]
		if math.Float64bits(w.Score) != math.Float64bits(g.Score) ||
			w.Client != g.Client || w.ClusterID != g.ClusterID || !w.Time.Equal(g.Time) ||
			w.TriggerHost != g.TriggerHost || w.TriggerPayload != g.TriggerPayload {
			t.Fatalf("post-recovery alert %d diverged:\n got %+v\nwant %+v", i, g, w)
		}
	}
	t.Logf("crash recovery soak: %d post-recovery alerts bit-identical across kill/restart", len(wantTail))
}

// TestMidWindowCrashRecovery covers the weaker guarantee for a crash
// BETWEEN checkpoints: transactions since the checkpoint are lost, but
// the restored engine must come back cleanly, journal-replay must mark
// already-raised alerts so they are not re-fired on the next growth, and
// the recovered process must keep serving without a crash.
func TestMidWindowCrashRecovery(t *testing.T) {
	stream, _ := soakStream(t)
	mid := len(stream) / 2
	window := mid + len(stream)/4 // crash point past the checkpoint
	cfg := detector.Config{RedirectThreshold: 1, ScoreThreshold: 0.05, Shards: 4}
	model := trainSoakForest(t, 104)

	var sink bytes.Buffer
	jcfg := cfg
	jcfg.Journal = obs.NewJournalWriter(&sink)
	doomed := detector.NewSharded(jcfg, model)
	headAlerts := len(doomed.ProcessAll(stream[:mid]))
	ckpt := doomed.AppendCheckpoint(nil)
	windowAlerts := len(doomed.ProcessAll(stream[mid:window])) // journaled but not checkpointed
	doomed = nil                                               // kill -9 mid-window
	if windowAlerts == 0 {
		t.Fatal("no alerts between checkpoint and crash; the replay-dedup leg is vacuous")
	}

	// Restart: restore the checkpoint, then replay the journal so alerts
	// raised after the checkpoint was cut are marked and not re-fired by
	// the next non-download growth.
	restored := detector.NewSharded(cfg, model)
	if _, err := restored.RestoreCheckpoint(ckpt); err != nil {
		t.Fatal(err)
	}
	recs, err := obs.ReadJournal(&sink)
	if err != nil {
		t.Fatalf("journal unreadable after mid-window crash: %v", err)
	}
	if len(recs) != headAlerts+windowAlerts {
		t.Fatalf("journal holds %d records, doomed process raised %d", len(recs), headAlerts+windowAlerts)
	}
	marked := 0
	for _, rec := range recs {
		addr, err := netip.ParseAddr(rec.Client)
		if err != nil {
			t.Fatalf("journal record client %q: %v", rec.Client, err)
		}
		if restored.MarkAlerted(addr, rec.ClusterID) {
			marked++
		}
	}

	// The recovered process keeps serving the rest of the corpus — the
	// mid-window transactions replay, the tail streams fresh — without a
	// crash and without losing anything.
	restored.ProcessAll(stream[mid:])
	st := restored.Stats()
	if st.Panics != 0 {
		t.Fatalf("recovered engine tripped %d panics", st.Panics)
	}
	// The Transactions stat counts live intake only; the checkpointed head
	// is restored into txSeen (eviction cadence) without inflating it.
	if st.Transactions != len(stream)-mid {
		t.Fatalf("recovered engine saw %d live transactions, want %d", st.Transactions, len(stream)-mid)
	}
	t.Logf("mid-window crash: %d journaled alerts replayed, %d marked on live clusters, engine healthy",
		len(recs), marked)
}
