// Package chaos provides seeded, deterministic fault injectors for
// DynaMiner's serving path: a scorer that panics or returns non-finite
// probabilities, an HTTP transport that times out, resets, truncates, and
// garbles upstream exchanges, and a transaction mutator that feeds the
// engine the kind of damage real captures exhibit. Every injector draws
// its decisions from its own math/rand stream, so a run is reproducible
// bit-for-bit from its seed, and every injector counts the faults it
// actually delivered so soak tests can assert coverage.
package chaos

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"time"

	"dynaminer/internal/detector"
	"dynaminer/internal/httpstream"
)

// Scorer wraps a detector scorer with seeded fault injection: with
// probability PanicProb a classification panics, and with probability
// NaNProb it returns a non-finite value. With both probabilities zero the
// wrapper is transparent — verdicts are bit-identical to the base
// scorer's, which is what chaos replay tests pin.
//
// Scorer is safe for concurrent use (sharded engines classify in
// parallel).
type Scorer struct {
	base      detector.Scorer
	panicProb float64
	nanProb   float64

	mu     sync.Mutex
	rng    *rand.Rand // guarded by mu
	faults int        // guarded by mu
}

// NewScorer wraps base with fault injection drawn from seed.
func NewScorer(seed int64, base detector.Scorer, panicProb, nanProb float64) *Scorer {
	return &Scorer{
		base:      base,
		panicProb: panicProb,
		nanProb:   nanProb,
		rng:       rand.New(rand.NewSource(seed)),
	}
}

// Faults returns how many classifications were sabotaged so far.
func (s *Scorer) Faults() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.faults
}

// Score classifies x through the base scorer, or injects a fault.
func (s *Scorer) Score(x []float64) float64 {
	s.mu.Lock()
	roll := s.rng.Float64()
	sabotage := roll < s.panicProb+s.nanProb
	doPanic := roll < s.panicProb
	if sabotage {
		s.faults++
	}
	s.mu.Unlock()
	if doPanic {
		panic("chaos: injected scorer panic")
	}
	if sabotage {
		return math.NaN()
	}
	return s.base.Score(x)
}

// Fault modes the chaos transport injects.
const (
	faultReset     = iota // transport error before any response
	faultTimeout          // hang until the request context expires
	faultTruncate         // response body cut mid-transfer
	faultMalformed        // garbage headers and an unreadable body
	faultLatency          // delivery delayed by a latency spike
	numFaultModes
)

// RoundTripper wraps an upstream transport with seeded fault injection.
// With probability FaultProb an exchange is sabotaged by one of the five
// fault modes above, chosen uniformly. A nil Inner serves a canned 200
// HTML page, which is enough for soak tests that only need the proxy's
// serving path exercised.
//
// RoundTripper is safe for concurrent use.
type RoundTripper struct {
	Inner http.RoundTripper
	// Sleep implements latency spikes; nil selects time.Sleep. Soak tests
	// inject a no-op.
	Sleep func(time.Duration)
	// Spike is the latency-spike duration; zero selects 5ms.
	Spike     time.Duration
	faultProb float64

	mu     sync.Mutex
	rng    *rand.Rand // guarded by mu
	faults int        // guarded by mu
}

// NewRoundTripper returns a chaos transport drawing from seed.
func NewRoundTripper(seed int64, faultProb float64) *RoundTripper {
	return &RoundTripper{
		faultProb: faultProb,
		rng:       rand.New(rand.NewSource(seed)),
	}
}

// Faults returns how many exchanges were sabotaged so far.
func (rt *RoundTripper) Faults() int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.faults
}

// errReader fails after its prefix is consumed, like a connection cut
// mid-body.
type errReader struct {
	r   io.Reader
	err error
}

func (e *errReader) Read(p []byte) (int, error) {
	n, err := e.r.Read(p)
	if err == io.EOF {
		err = e.err
	}
	return n, err
}

func (rt *RoundTripper) inner(r *http.Request) (*http.Response, error) {
	if rt.Inner != nil {
		return rt.Inner.RoundTrip(r)
	}
	body := "<html><body>chaos upstream ok</body></html>"
	return &http.Response{
		StatusCode:    http.StatusOK,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        http.Header{"Content-Type": []string{"text/html"}},
		Body:          io.NopCloser(strings.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       r,
	}, nil
}

// RoundTrip performs the exchange, possibly sabotaged.
func (rt *RoundTripper) RoundTrip(r *http.Request) (*http.Response, error) {
	rt.mu.Lock()
	mode := -1
	if rt.rng.Float64() < rt.faultProb {
		mode = rt.rng.Intn(numFaultModes)
		rt.faults++
	}
	rt.mu.Unlock()

	switch mode {
	case faultReset:
		return nil, fmt.Errorf("chaos: connection reset by peer")
	case faultTimeout:
		<-r.Context().Done()
		return nil, r.Context().Err()
	case faultTruncate:
		resp, err := rt.inner(r)
		if err != nil {
			return resp, err
		}
		cut, _ := io.ReadAll(io.LimitReader(resp.Body, 8))
		resp.Body.Close()
		resp.Body = io.NopCloser(&errReader{r: strings.NewReader(string(cut)), err: io.ErrUnexpectedEOF})
		return resp, nil
	case faultMalformed:
		resp, err := rt.inner(r)
		if err != nil {
			return resp, err
		}
		resp.Body.Close()
		resp.Header = http.Header{
			"Content-Type":   []string{"\x00\xfftext/\x01garbage"},
			"X-Chaos-Header": []string{strings.Repeat("\xfe", 64)},
		}
		resp.Body = io.NopCloser(&errReader{r: strings.NewReader(""), err: io.ErrUnexpectedEOF})
		return resp, nil
	case faultLatency:
		sleep := rt.Sleep
		if sleep == nil {
			sleep = time.Sleep
		}
		spike := rt.Spike
		if spike == 0 {
			spike = 5 * time.Millisecond
		}
		sleep(spike)
		return rt.inner(r)
	default:
		return rt.inner(r)
	}
}

// FlakyWriter sabotages an io.Writer with seeded faults, standing in for
// a full disk or a yanked log volume under an alert journal: with
// probability errProb a write fails, and with probability panicProb it
// panics outright. Soak tests wrap a journal around one to prove that
// provenance recording can never take the serving path down.
//
// FlakyWriter is safe for concurrent use.
type FlakyWriter struct {
	inner     io.Writer
	errProb   float64
	panicProb float64

	mu         sync.Mutex
	rng        *rand.Rand // guarded by mu
	faults     int        // guarded by mu
	writes     int        // guarded by mu
	syncProb   float64    // guarded by mu
	syncFaults int        // guarded by mu
	syncs      int        // guarded by mu
}

// NewFlakyWriter wraps inner with fault injection drawn from seed. A nil
// inner discards successful writes.
func NewFlakyWriter(seed int64, inner io.Writer, errProb, panicProb float64) *FlakyWriter {
	if inner == nil {
		inner = io.Discard
	}
	return &FlakyWriter{
		inner:     inner,
		errProb:   errProb,
		panicProb: panicProb,
		rng:       rand.New(rand.NewSource(seed)),
	}
}

// Faults returns how many writes were sabotaged so far.
func (w *FlakyWriter) Faults() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.faults
}

// Writes returns how many writes were forwarded intact.
func (w *FlakyWriter) Writes() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.writes
}

// Write forwards p to the inner writer, or injects a fault.
func (w *FlakyWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	roll := w.rng.Float64()
	sabotage := roll < w.errProb+w.panicProb
	doPanic := roll < w.panicProb
	if sabotage {
		w.faults++
	} else {
		w.writes++
	}
	w.mu.Unlock()
	if doPanic {
		panic("chaos: injected journal write panic")
	}
	if sabotage {
		return 0, fmt.Errorf("chaos: no space left on device")
	}
	return w.inner.Write(p)
}

// FailSyncs makes every later Sync call fail with probability prob —
// the fsync path of a journal riding a dying disk. Zero restores clean
// syncs.
func (w *FlakyWriter) FailSyncs(prob float64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.syncProb = prob
}

// SyncFaults returns how many Sync calls were sabotaged so far.
func (w *FlakyWriter) SyncFaults() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.syncFaults
}

// Syncs returns how many Sync calls succeeded.
func (w *FlakyWriter) Syncs() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.syncs
}

// Sync satisfies the journal's optional stable-storage hook; it forwards
// to the inner writer's Sync when it has one, or succeeds as a no-op.
func (w *FlakyWriter) Sync() error {
	w.mu.Lock()
	sabotage := w.rng.Float64() < w.syncProb
	if sabotage {
		w.syncFaults++
	} else {
		w.syncs++
	}
	w.mu.Unlock()
	if sabotage {
		return fmt.Errorf("chaos: fsync: input/output error")
	}
	if s, ok := w.inner.(interface{ Sync() error }); ok {
		return s.Sync()
	}
	return nil
}

// FlakyLoader sabotages a model-loader callback, standing in for a model
// artifact that is corrupt on disk or a loader that faults mid-parse:
// with probability errProb the load fails, and with probability
// panicProb it panics — exactly the two failure shapes the detector's
// reload path must absorb without touching the serving model.
//
// FlakyLoader is safe for concurrent use.
type FlakyLoader struct {
	inner     func() (detector.Scorer, error)
	errProb   float64
	panicProb float64

	mu     sync.Mutex
	rng    *rand.Rand // guarded by mu
	faults int        // guarded by mu
	loads  int        // guarded by mu
}

// NewFlakyLoader wraps inner with fault injection drawn from seed.
func NewFlakyLoader(seed int64, inner func() (detector.Scorer, error), errProb, panicProb float64) *FlakyLoader {
	return &FlakyLoader{
		inner:     inner,
		errProb:   errProb,
		panicProb: panicProb,
		rng:       rand.New(rand.NewSource(seed)),
	}
}

// Faults returns how many loads were sabotaged so far.
func (l *FlakyLoader) Faults() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.faults
}

// Loads returns how many loads went through intact.
func (l *FlakyLoader) Loads() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.loads
}

// Load produces a candidate model, or injects a fault.
func (l *FlakyLoader) Load() (detector.Scorer, error) {
	l.mu.Lock()
	roll := l.rng.Float64()
	sabotage := roll < l.errProb+l.panicProb
	doPanic := roll < l.panicProb
	if sabotage {
		l.faults++
	} else {
		l.loads++
	}
	l.mu.Unlock()
	if doPanic {
		panic("chaos: injected model loader panic")
	}
	if sabotage {
		return nil, fmt.Errorf("chaos: model artifact unreadable")
	}
	return l.inner()
}

// CorruptBlob returns a copy of a binary artifact with one seeded byte
// flip past the header, the minimal damage a checksum screen must catch.
func CorruptBlob(seed int64, blob []byte) []byte {
	out := append([]byte(nil), blob...)
	if len(out) <= 16 {
		return out
	}
	rng := rand.New(rand.NewSource(seed))
	out[16+rng.Intn(len(out)-16)] ^= 1 << rng.Intn(8)
	return out
}

// Mutation modes the transaction mutator injects.
const (
	mutGarbageHeaders = iota // binary garbage in request headers
	mutZeroTimes             // request/response timestamps zeroed
	mutReorder               // transaction swapped with its predecessor
	numMutModes
)

// Mutator damages transaction streams the way broken captures do: binary
// garbage in headers, zero timestamps, and out-of-order delivery. Mutate
// copies its input, so the caller's stream stays pristine for baselines.
//
// Mutator is safe for concurrent use.
type Mutator struct {
	rate float64

	mu     sync.Mutex
	rng    *rand.Rand // guarded by mu
	faults int        // guarded by mu
}

// NewMutator returns a mutator damaging each transaction with probability
// rate, drawing from seed.
func NewMutator(seed int64, rate float64) *Mutator {
	return &Mutator{rate: rate, rng: rand.New(rand.NewSource(seed))}
}

// Faults returns how many transactions were damaged so far.
func (m *Mutator) Faults() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.faults
}

// Mutate returns a damaged copy of txs.
func (m *Mutator) Mutate(txs []httpstream.Transaction) []httpstream.Transaction {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]httpstream.Transaction, len(txs))
	copy(out, txs)
	for i := range out {
		if m.rng.Float64() >= m.rate {
			continue
		}
		m.faults++
		switch m.rng.Intn(numMutModes) {
		case mutGarbageHeaders:
			hdr := http.Header{}
			for k, v := range out[i].ReqHdr {
				hdr[k] = v
			}
			hdr.Set("User-Agent", "\x00\xff\xfe"+strings.Repeat("\x01", 32))
			hdr.Set("X-Chaos", string(rune(m.rng.Intn(0x10FFFF))))
			out[i].ReqHdr = hdr
		case mutZeroTimes:
			out[i].ReqTime = time.Time{}
			out[i].RespTime = time.Time{}
		case mutReorder:
			if i > 0 {
				out[i-1], out[i] = out[i], out[i-1]
			}
		}
	}
	return out
}
