package chaos

import (
	"context"
	"fmt"
	"net/http"
	"net/netip"
	"reflect"
	"testing"
	"time"

	"dynaminer/internal/httpstream"
)

// constScorer returns a fixed infection probability.
type constScorer float64

func (c constScorer) Score([]float64) float64 { return float64(c) }

// scoreSignature runs n classifications and records each outcome: the
// score, or which fault fired.
func scoreSignature(s *Scorer, n int) []string {
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		func() {
			defer func() {
				if r := recover(); r != nil {
					out = append(out, "panic")
				}
			}()
			v := s.Score([]float64{1, 2, 3})
			if v != v {
				out = append(out, "nan")
				return
			}
			out = append(out, fmt.Sprintf("%g", v))
		}()
	}
	return out
}

func TestScorerDeterministic(t *testing.T) {
	a := scoreSignature(NewScorer(42, constScorer(0.7), 0.1, 0.1), 500)
	b := scoreSignature(NewScorer(42, constScorer(0.7), 0.1, 0.1), 500)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different fault sequences")
	}
	faults := 0
	for _, s := range a {
		if s == "panic" || s == "nan" {
			faults++
		}
	}
	if faults == 0 {
		t.Fatal("no faults injected in 500 classifications at 20% rate")
	}
}

func TestScorerTransparentAtZeroRate(t *testing.T) {
	s := NewScorer(7, constScorer(0.42), 0, 0)
	for i := 0; i < 100; i++ {
		if v := s.Score(nil); v != 0.42 {
			t.Fatalf("fault-free scorer altered verdict: %v", v)
		}
	}
	if s.Faults() != 0 {
		t.Fatalf("faults = %d at zero rate", s.Faults())
	}
}

// tripSignature performs n exchanges against a chaos transport and
// classifies each outcome.
func tripSignature(rt *RoundTripper, n int) []string {
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		// An already-expired context makes the timeout mode return
		// immediately instead of hanging the signature run.
		ctx, cancel := context.WithDeadline(context.Background(), time.Unix(0, 0))
		r, _ := http.NewRequestWithContext(ctx, http.MethodGet, "http://chaos.example/", nil)
		resp, err := rt.RoundTrip(r)
		switch {
		case err != nil:
			out = append(out, "err:"+err.Error())
		case resp.Header.Get("X-Chaos-Header") != "":
			out = append(out, "malformed")
			resp.Body.Close()
		default:
			b := make([]byte, 64)
			n, rerr := resp.Body.Read(b)
			resp.Body.Close()
			out = append(out, fmt.Sprintf("body:%d:%v", n, rerr))
		}
		cancel()
	}
	return out
}

func TestRoundTripperDeterministic(t *testing.T) {
	mk := func() *RoundTripper {
		rt := NewRoundTripper(99, 0.5)
		rt.Sleep = func(time.Duration) {}
		return rt
	}
	a, b := tripSignature(mk(), 300), tripSignature(mk(), 300)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different exchange outcomes")
	}
	rt := mk()
	if tripSignature(rt, 300); rt.Faults() < 100 {
		t.Fatalf("faults = %d in 300 exchanges at 50%% rate", rt.Faults())
	}
}

func TestRoundTripperTransparentAtZeroRate(t *testing.T) {
	rt := NewRoundTripper(5, 0)
	r, _ := http.NewRequest(http.MethodGet, "http://ok.example/", nil)
	resp, err := rt.RoundTrip(r)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("fault-free exchange broken: %v %v", resp, err)
	}
	resp.Body.Close()
	if rt.Faults() != 0 {
		t.Fatalf("faults = %d at zero rate", rt.Faults())
	}
}

func sampleTxs(n int) []httpstream.Transaction {
	client := netip.MustParseAddr("10.1.1.1")
	server := netip.MustParseAddr("203.0.113.9")
	base := time.Date(2016, 7, 10, 12, 0, 0, 0, time.UTC)
	txs := make([]httpstream.Transaction, n)
	for i := range txs {
		txs[i] = httpstream.Transaction{
			ClientIP: client, ServerIP: server,
			Method: "GET", URI: fmt.Sprintf("/p%d", i), Host: "site.example",
			ReqHdr: http.Header{"User-Agent": []string{"MSIE8.0"}}, RespHdr: http.Header{},
			ReqTime: base.Add(time.Duration(i) * time.Second), RespTime: base.Add(time.Duration(i)*time.Second + 40*time.Millisecond),
			StatusCode: 200, ContentType: "text/html", BodySize: 512,
		}
	}
	return txs
}

func TestMutatorDeterministicAndNonDestructive(t *testing.T) {
	in := sampleTxs(200)
	pristine := sampleTxs(200)
	a := NewMutator(13, 0.3).Mutate(in)
	b := NewMutator(13, 0.3).Mutate(in)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different mutations")
	}
	if !reflect.DeepEqual(in, pristine) {
		t.Fatal("Mutate damaged the caller's stream")
	}
	m := NewMutator(13, 0.3)
	m.Mutate(in)
	if m.Faults() < 30 {
		t.Fatalf("faults = %d in 200 transactions at 30%% rate", m.Faults())
	}
	if reflect.DeepEqual(a, in) {
		t.Fatal("mutations had no observable effect")
	}
}
