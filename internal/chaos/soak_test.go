package chaos

import (
	"net/http"
	"net/http/httptest"
	"net/netip"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"dynaminer/internal/detector"
	"dynaminer/internal/httpstream"
	"dynaminer/internal/obs"
	"dynaminer/internal/proxy"
	"dynaminer/internal/synth"
)

// soakStream renders a seeded synth corpus into one merged transaction
// stream with a distinct client per episode, so per-client alert streams
// are well-defined for the replay comparison.
func soakStream(t *testing.T) ([]httpstream.Transaction, int) {
	t.Helper()
	eps := synth.GenerateCorpus(synth.Config{Seed: 77, Infections: 30, Benign: 30})
	if len(eps) < 50 {
		t.Fatalf("corpus has %d episodes, the soak needs at least 50", len(eps))
	}
	var stream []httpstream.Transaction
	for i := range eps {
		addr := netip.AddrFrom4([4]byte{10, 20, byte(i / 200), byte(1 + i%200)})
		for j := range eps[i].Txs {
			eps[i].Txs[j].ClientIP = addr
		}
		stream = append(stream, eps[i].Txs...)
	}
	sort.SliceStable(stream, func(i, j int) bool { return stream[i].ReqTime.Before(stream[j].ReqTime) })
	return stream, len(eps)
}

// TestChaosSoak is the acceptance soak: a seeded synth corpus streamed
// through the sharded engine and the proxy under injected faults. It
// asserts three properties — nothing crashes, the stats counters stay
// conserved, and a fault-free chaos replay is bit-identical to a plain
// baseline run.
func TestChaosSoak(t *testing.T) {
	stream, episodes := soakStream(t)
	cfg := detector.Config{RedirectThreshold: 1, ScoreThreshold: 0.5, Shards: 4}
	base := constScorer(0.9)

	// Baseline: a healthy engine over the pristine stream.
	baseline := detector.NewSharded(cfg, base)
	baseAlerts := baseline.ProcessAll(stream)
	if len(baseAlerts) == 0 {
		t.Fatal("baseline produced no alerts; the replay comparison covers nothing")
	}

	// Property 3: with every fault rate at zero, the chaos wrappers are
	// transparent and the replay is bit-identical.
	replay := detector.NewSharded(cfg, NewScorer(1, base, 0, 0))
	if got := replay.ProcessAll(stream); !reflect.DeepEqual(got, baseAlerts) {
		t.Fatalf("fault-free replay diverged: %d alerts vs %d baseline", len(got), len(baseAlerts))
	}

	// Faulty engine run: a damaged copy of the stream through an engine
	// whose scorer panics and returns NaNs, with the alert journal writing
	// through a failing, panicking sink.
	mut := NewMutator(2, 0.15)
	damaged := mut.Mutate(stream)
	scorer := NewScorer(3, base, 0.1, 0.1)
	flaky := NewFlakyWriter(5, nil, 0.2, 0.2)
	journal := obs.NewJournalWriter(flaky)
	faultyCfg := cfg
	faultyCfg.Journal = journal
	eng := detector.NewSharded(faultyCfg, scorer)
	faultyAlerts := 0
	for _, tx := range damaged {
		faultyAlerts += len(eng.Process(tx)) // property 1: must not crash
	}
	st := eng.Stats()
	if st.Transactions != len(damaged) {
		t.Fatalf("engine lost transactions: processed %d of %d", st.Transactions, len(damaged))
	}
	// Property 2 (engine): every injected scorer fault was recovered and
	// counted, one for one.
	if st.Panics != scorer.Faults() {
		t.Fatalf("panics = %d, scorer injected %d", st.Panics, scorer.Faults())
	}
	if scorer.Faults() == 0 || mut.Faults() == 0 {
		t.Fatalf("soak injected no engine faults (scorer=%d mutator=%d)", scorer.Faults(), mut.Faults())
	}
	// Property 2 (registry): the metrics registry agrees with the bridged
	// Stats view counter-for-counter, under faults.
	reg := eng.Registry()
	if n := reg.CounterValue("dynaminer_detector_transactions_total"); int(n) != len(damaged) {
		t.Fatalf("registry transactions = %d, want %d", n, len(damaged))
	}
	if n := reg.CounterValue("dynaminer_detector_panics_total"); int(n) != scorer.Faults() {
		t.Fatalf("registry panics = %d, scorer injected %d", n, scorer.Faults())
	}
	if n := reg.CounterValue("dynaminer_detector_alerts_total"); int(n) != faultyAlerts {
		t.Fatalf("registry alerts = %d, engine returned %d", n, faultyAlerts)
	}
	// Journal conservation: every alert attempted exactly one record, and
	// neither the write errors nor the write panics escaped Append.
	if got := journal.Writes() + journal.Drops(); got != int64(faultyAlerts) {
		t.Fatalf("journal writes+drops = %d, want one attempt per alert (%d)", got, faultyAlerts)
	}
	if int(journal.Writes()) != flaky.Writes() {
		t.Fatalf("journal counted %d writes, sink saw %d", journal.Writes(), flaky.Writes())
	}
	if journal.Drops() == 0 || journal.Writes() == 0 {
		t.Fatalf("journal fault injection vacuous: writes=%d drops=%d", journal.Writes(), journal.Drops())
	}

	// Proxy under a chaotic upstream: resets, hangs, truncations, garbage
	// headers, and latency spikes.
	rt := NewRoundTripper(4, 0.35)
	rt.Sleep = func(time.Duration) {}
	p := proxy.New(proxy.Config{
		Detector:        cfg,
		Transport:       rt,
		UpstreamTimeout: 25 * time.Millisecond,
		Sleep:           func(time.Duration) {},
	}, base)
	requests := 0
	for _, tx := range stream[:300] {
		r := httptest.NewRequest(http.MethodGet, tx.URL(), nil)
		r.RemoteAddr = tx.ClientIP.String() + ":40000"
		p.ServeHTTP(httptest.NewRecorder(), r) // property 1: must not crash
		requests++
	}
	ps := p.Stats()
	sum := ps.Relayed + ps.Refused + ps.UpstreamErrors + ps.BreakerRejected + ps.BadRequests
	if ps.Requests != requests || sum != ps.Requests {
		t.Fatalf("proxy conservation violated: Requests=%d, sum of outcomes=%d (%+v)", ps.Requests, sum, ps)
	}
	if ps.Relayed == 0 || ps.UpstreamErrors == 0 {
		t.Fatalf("soak exercised only one proxy outcome: %+v", ps)
	}
	// Under chaos the proxy's /metrics exposition must still be
	// well-formed (cumulative buckets, +Inf == _count, parseable text).
	var exp strings.Builder
	if err := p.Registry().WritePrometheus(&exp); err != nil {
		t.Fatalf("WritePrometheus under chaos: %v", err)
	}
	if _, err := obs.ParseExposition(strings.NewReader(exp.String())); err != nil {
		t.Fatalf("chaos proxy exposition malformed: %v", err)
	}

	total := scorer.Faults() + mut.Faults() + rt.Faults()
	if total < 200 {
		t.Fatalf("soak injected %d faults across %d episodes, want at least 200", total, episodes)
	}
	t.Logf("soak: %d episodes, %d faults (scorer=%d mutator=%d transport=%d), engine stats %+v, proxy stats %+v",
		episodes, total, scorer.Faults(), mut.Faults(), rt.Faults(), st, ps)
}
