// Package core wires DynaMiner's stages together: it owns the two training
// pipelines the paper defines — offline whole-trace classification
// (Stage 1) and deployment-matched monitoring, where the classifier learns
// on the same clue-extracted potential-infection WCG representation the
// on-the-wire engine scores (Stage 2). The public dynaminer package and
// the experiment harness both build on this package, so there is exactly
// one definition of "how DynaMiner trains".
package core

import (
	"fmt"

	"dynaminer/internal/detector"
	"dynaminer/internal/features"
	"dynaminer/internal/httpstream"
	"dynaminer/internal/ml"
	"dynaminer/internal/wcg"
)

// LabeledConversation is one training conversation: a transaction stream
// with its ground-truth label.
type LabeledConversation struct {
	Infection bool
	Txs       []httpstream.Transaction
}

// TrainConfig parameterizes both training pipelines. The zero value
// selects the paper's best configuration: N_t = 20 trees with
// N_f = log2(37)+1 candidate features per split.
type TrainConfig struct {
	NumTrees int
	Seed     int64
}

func (c TrainConfig) forestConfig() ml.ForestConfig {
	n := c.NumTrees
	if n == 0 {
		n = 20
	}
	return ml.ForestConfig{NumTrees: n, Seed: c.Seed}
}

// label converts a conversation's ground truth to an ML label.
func label(infection bool) int {
	if infection {
		return ml.LabelInfection
	}
	return ml.LabelBenign
}

// OfflineDataset featurizes whole conversations (Stage 1: one WCG per
// recorded trace). Vectors come from the batched extractor, so the whole
// dataset lands in one slab and the featurization scaffolding is built
// once instead of per conversation; each vector is bit-identical to
// features.Extract on the same WCG.
func OfflineDataset(convs []LabeledConversation) *ml.Dataset {
	ws := make([]*wcg.WCG, len(convs))
	ds := &ml.Dataset{Y: make([]int, 0, len(convs))}
	for i := range convs {
		ws[i] = wcg.FromTransactions(convs[i].Txs)
		ds.Y = append(ds.Y, label(convs[i].Infection))
	}
	ds.X = features.ExtractBatch(ws)
	return ds
}

// monitorExtraction is the clue configuration used to build monitoring
// training sets: threshold 1 so every chain-plus-download subset is
// captured regardless of the deployment threshold.
var monitorExtraction = detector.Config{RedirectThreshold: 1}

// MonitorDataset featurizes conversations the way the on-the-wire stage
// sees them: each conversation is replayed through the clue heuristic and
// the resulting potential-infection WCG subsets (both the clue-time
// snapshot and the fully grown set) become samples. Conversations that
// never fire a clue contribute their whole trace, and benign conversations
// always also contribute theirs, so the negative class covers both
// representations.
func MonitorDataset(convs []LabeledConversation) *ml.Dataset {
	ds := &ml.Dataset{}
	var ws []*wcg.WCG
	for i := range convs {
		y := label(convs[i].Infection)
		subs := detector.ClueSubsets(monitorExtraction, convs[i].Txs)
		for _, sub := range subs {
			ws = append(ws, wcg.FromTransactions(sub))
			ds.Y = append(ds.Y, y)
		}
		if len(subs) == 0 || !convs[i].Infection {
			ws = append(ws, wcg.FromTransactions(convs[i].Txs))
			ds.Y = append(ds.Y, y)
		}
	}
	ds.X = features.ExtractBatch(ws)
	return ds
}

// TrainOffline fits the Stage 1 ERF on whole-trace WCGs.
func TrainOffline(convs []LabeledConversation, cfg TrainConfig) (*ml.Forest, error) {
	forest, err := ml.TrainForest(OfflineDataset(convs), cfg.forestConfig())
	if err != nil {
		return nil, fmt.Errorf("core: train offline classifier: %w", err)
	}
	return forest, nil
}

// TrainMonitor fits the deployment-matched ERF for Stage 2.
func TrainMonitor(convs []LabeledConversation, cfg TrainConfig) (*ml.Forest, error) {
	forest, err := ml.TrainForest(MonitorDataset(convs), cfg.forestConfig())
	if err != nil {
		return nil, fmt.Errorf("core: train monitoring classifier: %w", err)
	}
	return forest, nil
}
