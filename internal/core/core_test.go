package core

import (
	"testing"

	"dynaminer/internal/ml"
	"dynaminer/internal/synth"
)

func corpus(t *testing.T) []LabeledConversation {
	t.Helper()
	eps := synth.GenerateCorpus(synth.Config{Seed: 5, Infections: 80, Benign: 100})
	convs := make([]LabeledConversation, len(eps))
	for i := range eps {
		convs[i] = LabeledConversation{Infection: eps[i].Infection, Txs: eps[i].Txs}
	}
	return convs
}

func TestOfflineDatasetShape(t *testing.T) {
	convs := corpus(t)
	ds := OfflineDataset(convs)
	if ds.Len() != len(convs) {
		t.Fatalf("rows = %d, want %d", ds.Len(), len(convs))
	}
	if ds.NumFeatures() != 37 {
		t.Fatalf("features = %d, want 37", ds.NumFeatures())
	}
	pos := 0
	for _, y := range ds.Y {
		if y == ml.LabelInfection {
			pos++
		}
	}
	if pos != 80 {
		t.Fatalf("positives = %d, want 80", pos)
	}
}

func TestMonitorDatasetShape(t *testing.T) {
	convs := corpus(t)
	ds := MonitorDataset(convs)
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every benign conversation contributes at least its whole trace, and
	// infections contribute clue subsets, so the monitor set is at least
	// as large as the benign count plus the infection count.
	if ds.Len() < len(convs) {
		t.Fatalf("monitor dataset = %d rows, want >= %d", ds.Len(), len(convs))
	}
	// And strictly larger than offline (subset snapshots add samples).
	if off := OfflineDataset(convs); ds.Len() <= off.Len() {
		t.Fatalf("monitor dataset = %d rows, offline = %d; snapshots missing", ds.Len(), off.Len())
	}
}

func TestTrainOfflineAndMonitor(t *testing.T) {
	convs := corpus(t)
	off, err := TrainOffline(convs, TrainConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if off.NumTrees() != 20 {
		t.Fatalf("default trees = %d, want 20", off.NumTrees())
	}
	mon, err := TrainMonitor(convs, TrainConfig{NumTrees: 7, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if mon.NumTrees() != 7 {
		t.Fatalf("trees = %d, want 7", mon.NumTrees())
	}
	// Training accuracy of the offline model on its own data is high.
	ds := OfflineDataset(convs)
	res := ml.Evaluate(off, ds.X, ds.Y)
	if res.TPR < 0.95 || res.FPR > 0.05 {
		t.Fatalf("training accuracy off: TPR=%v FPR=%v", res.TPR, res.FPR)
	}
}

func TestTrainErrorsOnEmptyCorpus(t *testing.T) {
	if _, err := TrainOffline(nil, TrainConfig{}); err == nil {
		t.Fatal("empty corpus must error")
	}
	if _, err := TrainMonitor(nil, TrainConfig{}); err == nil {
		t.Fatal("empty corpus must error")
	}
}
