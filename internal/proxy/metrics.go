package proxy

import "dynaminer/internal/obs"

// proxyMetrics binds one Proxy to the observability registry shared with
// its embedded detection engine. The counters are atomic, so the hot
// path increments them without taking p.mu; Stats() is a bridged view
// over the same counters.
type proxyMetrics struct {
	reg *obs.Registry

	requests        *obs.Counter
	relayed         *obs.Counter
	blockedClients  *obs.Counter
	refused         *obs.Counter
	upstreamErrors  *obs.Counter
	alerts          *obs.Counter
	retries         *obs.Counter
	badRequests     *obs.Counter
	breakerRejected *obs.Counter
	breakerTrips    *obs.Counter

	// relay is the upstream round-trip latency of relayed exchanges,
	// measured between the clock reads the handler already makes (so
	// instrumentation adds no clock calls to the request path).
	relay *obs.Histogram
	// breakerState tracks each failing upstream host's circuit:
	// 0 closed-but-failing, 1 open, 2 probing. Children exist only while
	// the host has a breaker entry and are deleted when it heals, exactly
	// mirroring the breaker map.
	breakerState *obs.GaugeVec
}

func newProxyMetrics(reg *obs.Registry) *proxyMetrics {
	return &proxyMetrics{
		reg:             reg,
		requests:        reg.Counter("dynaminer_proxy_requests_total", "Proxied requests received."),
		relayed:         reg.Counter("dynaminer_proxy_relayed_total", "Requests relayed upstream and answered."),
		blockedClients:  reg.Counter("dynaminer_proxy_blocked_clients_total", "Clients whose sessions were terminated after an alert."),
		refused:         reg.Counter("dynaminer_proxy_refused_total", "Requests refused because their client is blocked."),
		upstreamErrors:  reg.Counter("dynaminer_proxy_upstream_errors_total", "Exchanges failed against the upstream after retries."),
		alerts:          reg.Counter("dynaminer_proxy_alerts_total", "Alerts raised on proxied traffic."),
		retries:         reg.Counter("dynaminer_proxy_retries_total", "Idempotent requests re-sent after a retryable failure."),
		badRequests:     reg.Counter("dynaminer_proxy_bad_requests_total", "Requests refused outright (CONNECT, no usable target)."),
		breakerRejected: reg.Counter("dynaminer_proxy_breaker_rejected_total", "Requests answered 502 because their upstream circuit was open."),
		breakerTrips:    reg.Counter("dynaminer_proxy_breaker_trips_total", "Circuit transitions to open, failed probes included."),
		relay: reg.Histogram("dynaminer_proxy_relay_seconds",
			"Upstream round-trip latency of relayed exchanges (request sent to response headers received).",
			obs.LatencyBuckets),
		breakerState: reg.GaugeVec("dynaminer_proxy_breaker_state_total",
			"Circuit state per failing upstream host: 0 closed-but-failing, 1 open, 2 probing.",
			"host"),
	}
}

// proxyStages holds the interned trace stage IDs for the proxy's share
// of a request's span tree (the detector's spans nest under
// proxy.request via ProcessTraced).
type proxyStages struct {
	request  obs.StageID
	upstream obs.StageID
	relay    obs.StageID
}

func newProxyStages(t *obs.Tracer) proxyStages {
	return proxyStages{
		request:  t.Stage("proxy.request"),
		upstream: t.Stage("proxy.upstream"),
		relay:    t.Stage("proxy.relay"),
	}
}
