package proxy

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"dynaminer/internal/detector"
)

// constScorer returns a fixed infection probability.
type constScorer float64

func (c constScorer) Score([]float64) float64 { return float64(c) }

// fakeClock is an injectable clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.t = f.t.Add(50 * time.Millisecond)
	return f.t
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.t = f.t.Add(d)
}

// originMux simulates the web: a benign page, a redirect chain, and an
// exploit payload, all host-routed via the Host header.
func originMux() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.Host == "benign.com":
			w.Header().Set("Content-Type", "text/html")
			fmt.Fprint(w, "<html>hello</html>")
		case r.Host == "hop1.evil" && r.URL.Path == "/go":
			http.Redirect(w, r, "http://hop2.evil/go", http.StatusFound)
		case r.Host == "hop2.evil" && r.URL.Path == "/go":
			http.Redirect(w, r, "http://hop3.evil/land", http.StatusFound)
		case r.Host == "hop3.evil" && r.URL.Path == "/land":
			w.Header().Set("Content-Type", "text/html")
			fmt.Fprint(w, `<html><iframe src="http://drop.evil/p.exe"></iframe></html>`)
		case r.Host == "drop.evil":
			w.Header().Set("Content-Type", "application/x-msdownload")
			fmt.Fprint(w, strings.Repeat("M", 4096))
		default:
			http.NotFound(w, r)
		}
	})
	return mux
}

// testSetup wires origin server -> proxy -> client.
func testSetup(t *testing.T, cfg Config, model detector.Scorer) (*Proxy, *http.Client, func()) {
	t.Helper()
	origin := httptest.NewServer(originMux())

	// Route all upstream traffic to the test origin regardless of logical
	// host, preserving the Host header for routing.
	cfg.Transport = rewriteTransport{target: origin.URL}

	p := New(cfg, model)
	proxySrv := httptest.NewServer(p)
	proxyURL, err := url.Parse(proxySrv.URL)
	if err != nil {
		t.Fatal(err)
	}
	client := &http.Client{
		Transport: &http.Transport{Proxy: http.ProxyURL(proxyURL)},
		CheckRedirect: func(req *http.Request, via []*http.Request) error {
			return http.ErrUseLastResponse // follow redirects manually
		},
	}
	cleanup := func() {
		proxySrv.Close()
		origin.Close()
	}
	return p, client, cleanup
}

// rewriteTransport sends every request to the test origin, keeping the
// logical Host for routing.
type rewriteTransport struct{ target string }

func (rt rewriteTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	u, err := url.Parse(rt.target)
	if err != nil {
		return nil, err
	}
	clone := r.Clone(r.Context())
	clone.URL.Scheme = u.Scheme
	clone.Host = r.URL.Host
	clone.URL.Host = u.Host
	return http.DefaultTransport.RoundTrip(clone)
}

func get(t *testing.T, client *http.Client, rawurl, referer string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, rawurl, nil)
	if err != nil {
		t.Fatal(err)
	}
	if referer != "" {
		req.Header.Set("Referer", referer)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	return resp
}

func TestProxyRelaysBenignTraffic(t *testing.T) {
	p, client, cleanup := testSetup(t, Config{}, constScorer(0))
	defer cleanup()

	resp := get(t, client, "http://benign.com/", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	st := p.Stats()
	if st.Relayed != 1 || st.Alerts != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if es := p.EngineStats(); es.Transactions != 1 {
		t.Fatalf("engine stats = %+v", es)
	}
}

// driveInfection walks the client through the redirect chain and payload.
func driveInfection(t *testing.T, client *http.Client) {
	t.Helper()
	get(t, client, "http://hop1.evil/go", "http://benign.com/")
	get(t, client, "http://hop2.evil/go", "http://hop1.evil/go")
	get(t, client, "http://hop3.evil/land", "http://hop2.evil/go")
	get(t, client, "http://drop.evil/p.exe", "http://hop3.evil/land")
}

func TestProxyDetectsAndAlerts(t *testing.T) {
	var alerts []detector.Alert
	cfg := Config{
		Detector: detector.Config{RedirectThreshold: 3},
		OnAlert:  func(a detector.Alert) { alerts = append(alerts, a) },
	}
	p, client, cleanup := testSetup(t, cfg, constScorer(0.95))
	defer cleanup()

	get(t, client, "http://benign.com/", "")
	driveInfection(t, client)

	if len(alerts) != 1 {
		t.Fatalf("alerts = %d (engine %+v)", len(alerts), p.EngineStats())
	}
	if alerts[0].TriggerHost != "drop.evil" {
		t.Fatalf("alert host = %s", alerts[0].TriggerHost)
	}
	if p.Stats().Alerts != 1 {
		t.Fatalf("stats = %+v", p.Stats())
	}
}

func TestProxyBlocksAfterAlert(t *testing.T) {
	clock := &fakeClock{t: time.Date(2016, 7, 10, 12, 0, 0, 0, time.UTC)}
	cfg := Config{
		Detector:        detector.Config{RedirectThreshold: 3},
		BlockAfterAlert: true,
		BlockDuration:   10 * time.Minute,
		Now:             clock.Now,
	}
	p, client, cleanup := testSetup(t, cfg, constScorer(0.95))
	defer cleanup()

	driveInfection(t, client)
	if p.Stats().BlockedClients != 1 {
		t.Fatalf("blocked = %d, want 1 (stats %+v, engine %+v)", p.Stats().BlockedClients, p.Stats(), p.EngineStats())
	}
	// The session is terminated: further requests are refused.
	resp := get(t, client, "http://benign.com/", "")
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("post-alert status = %d, want 403", resp.StatusCode)
	}
	if p.Stats().Refused != 1 {
		t.Fatalf("refused = %d", p.Stats().Refused)
	}
	// After the block expires the client may browse again.
	clock.Advance(11 * time.Minute)
	resp = get(t, client, "http://benign.com/", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-expiry status = %d, want 200", resp.StatusCode)
	}
}

func TestProxyRefusesConnect(t *testing.T) {
	_, client, cleanup := testSetup(t, Config{}, constScorer(0))
	defer cleanup()
	// https through the proxy would use CONNECT; simulate with a raw
	// CONNECT request.
	req, err := http.NewRequest(http.MethodConnect, "http://secure.example:443", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		// Transport-level CONNECT handling can also surface as an error;
		// both outcomes mean the tunnel was refused.
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("CONNECT must be refused")
	}
}

func TestProxyUpstreamError(t *testing.T) {
	cfg := Config{Transport: errTransport{}}
	p := New(cfg, constScorer(0))
	srv := httptest.NewServer(p)
	defer srv.Close()
	proxyURL, _ := url.Parse(srv.URL)
	client := &http.Client{Transport: &http.Transport{Proxy: http.ProxyURL(proxyURL)}}
	resp, err := client.Get("http://unreachable.example/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status = %d, want 502", resp.StatusCode)
	}
	if p.Stats().UpstreamErrors != 1 {
		t.Fatalf("stats = %+v", p.Stats())
	}
}

type errTransport struct{}

func (errTransport) RoundTrip(*http.Request) (*http.Response, error) {
	return nil, fmt.Errorf("synthetic upstream failure")
}

func TestBufferPrefix(t *testing.T) {
	prefix, rest, err := bufferPrefix(strings.NewReader("hello world"), 5)
	if err != nil {
		t.Fatal(err)
	}
	if string(prefix) != "hello" && len(prefix) < 5 {
		t.Fatalf("prefix = %q", prefix)
	}
	tail, _ := io.ReadAll(rest)
	if string(prefix)+string(tail) != "hello world" {
		t.Fatalf("prefix+tail = %q + %q", prefix, tail)
	}
	// Short body: everything buffered.
	prefix, rest, err = bufferPrefix(strings.NewReader("tiny"), 100)
	if err != nil {
		t.Fatal(err)
	}
	if string(prefix) != "tiny" {
		t.Fatalf("prefix = %q", prefix)
	}
	if tail, _ := io.ReadAll(rest); len(tail) != 0 {
		t.Fatal("short body must leave no tail")
	}
}

// recordTransport captures the upstream request and answers with a fixed
// header set, so hop-by-hop handling is observable on both directions.
type recordTransport struct {
	mu      sync.Mutex
	last    *http.Request
	respHdr http.Header
}

func (rt *recordTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	rt.mu.Lock()
	rt.last = r
	rt.mu.Unlock()
	return &http.Response{
		StatusCode: http.StatusOK,
		Header:     rt.respHdr.Clone(),
		Body:       io.NopCloser(strings.NewReader("<html>ok</html>")),
		Request:    r,
	}, nil
}

func TestHopByHopHeadersStripped(t *testing.T) {
	respHdr := http.Header{}
	respHdr.Set("Content-Type", "text/html")
	respHdr.Set("Connection", "keep-alive, x-hop-token")
	respHdr.Set("Keep-Alive", "timeout=5, max=100")
	respHdr.Set("Upgrade", "h2c")
	respHdr.Set("Trailer", "X-Checksum")
	respHdr.Set("Transfer-Encoding", "chunked")
	respHdr.Set("X-Hop-Token", "secret") // connection-scoped via Connection
	respHdr.Set("X-End-To-End", "keep-me")
	rt := &recordTransport{respHdr: respHdr}
	p := New(Config{Transport: rt}, constScorer(0))

	r := httptest.NewRequest(http.MethodGet, "http://origin.example/page", nil)
	r.RemoteAddr = "192.0.2.10:4444"
	r.Header.Set("Referer", "http://before.example/")
	r.Header.Set("Connection", "keep-alive, x-private")
	r.Header.Set("X-Private", "token") // connection-scoped via Connection
	r.Header.Set("Keep-Alive", "timeout=5")
	r.Header.Set("TE", "trailers")
	r.Header.Set("Trailer", "X-Req-Trailer")
	r.Header.Set("Upgrade", "websocket")
	r.Header.Set("Proxy-Authorization", "Basic Zm9vOmJhcg==")
	w := httptest.NewRecorder()
	p.ServeHTTP(w, r)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d", w.Code)
	}

	// Upstream direction: RFC 7230 §6.1 headers and Connection-named
	// fields must not be forwarded.
	up := rt.last
	for _, name := range []string{"Connection", "Keep-Alive", "TE", "Trailer", "Upgrade", "Proxy-Authorization", "X-Private"} {
		if got := up.Header.Get(name); got != "" {
			t.Errorf("hop-by-hop request header %s forwarded upstream (%q)", name, got)
		}
	}
	if up.Header.Get("Referer") != "http://before.example/" {
		t.Error("end-to-end request header lost")
	}

	// Client direction: the relayed response must be stripped too.
	got := w.Result().Header
	for _, name := range []string{"Connection", "Keep-Alive", "Upgrade", "Trailer", "Transfer-Encoding", "X-Hop-Token"} {
		if v := got.Get(name); v != "" {
			t.Errorf("hop-by-hop response header %s relayed to client (%q)", name, v)
		}
	}
	if got.Get("X-End-To-End") != "keep-me" {
		t.Error("end-to-end response header lost")
	}
	if got.Get("Content-Type") != "text/html" {
		t.Error("content-type lost in relay")
	}
}

func TestXForwardedForAttribution(t *testing.T) {
	clock := &fakeClock{t: time.Date(2016, 7, 10, 12, 0, 0, 0, time.UTC)}
	cfg := Config{
		Detector:           detector.Config{RedirectThreshold: 3},
		BlockAfterAlert:    true,
		Now:                clock.Now,
		TrustXForwardedFor: true,
	}
	p, client, cleanup := testSetup(t, cfg, constScorer(0.95))
	defer cleanup()

	// Drive the infection with one forwarded client identity.
	infected := func(rawurl, referer string) {
		req, err := http.NewRequest(http.MethodGet, rawurl, nil)
		if err != nil {
			t.Fatal(err)
		}
		if referer != "" {
			req.Header.Set("Referer", referer)
		}
		req.Header.Set("X-Forwarded-For", "203.0.113.50, 10.0.0.1")
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}
	infected("http://hop1.evil/go", "http://benign.com/")
	infected("http://hop2.evil/go", "http://hop1.evil/go")
	infected("http://hop3.evil/land", "http://hop2.evil/go")
	infected("http://drop.evil/p.exe", "http://hop3.evil/land")
	if p.Stats().BlockedClients != 1 {
		t.Fatalf("blocked = %d (stats %+v)", p.Stats().BlockedClients, p.EngineStats())
	}

	// A different forwarded identity from the same TCP peer is NOT blocked.
	req, err := http.NewRequest(http.MethodGet, "http://benign.com/", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Forwarded-For", "203.0.113.99")
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("other client status = %d, want 200", resp.StatusCode)
	}
	// The infected identity IS blocked.
	req2, err := http.NewRequest(http.MethodGet, "http://benign.com/", nil)
	if err != nil {
		t.Fatal(err)
	}
	req2.Header.Set("X-Forwarded-For", "203.0.113.50")
	resp2, err := client.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusForbidden {
		t.Fatalf("infected client status = %d, want 403", resp2.StatusCode)
	}
}
