// Package proxy deploys DynaMiner the way the paper's live case study does
// (Section VI-D): as a forward HTTP web proxy that relays every
// request/response pair, feeds it to the on-the-wire detection engine, and
// terminates the sessions of clients whose conversations are deemed
// infectious.
package proxy

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/netip"
	"strings"
	"sync"
	"time"

	"dynaminer/internal/detector"
	"dynaminer/internal/httpstream"
)

// maxCapturedBody bounds how much response body is buffered for analysis;
// the remainder streams through uninspected (payload-agnostic analysis
// needs sizes and document prefixes, not full binaries).
const maxCapturedBody = 256 << 10

// Config tunes the proxy.
type Config struct {
	// Detector configures the embedded on-the-wire engine.
	Detector detector.Config
	// BlockAfterAlert terminates the offending client's web session: once
	// a client alerts, its requests are refused with 403 for
	// BlockDuration.
	BlockAfterAlert bool
	// BlockDuration is how long an alerted client stays blocked; zero
	// selects 10 minutes.
	BlockDuration time.Duration
	// OnAlert, when set, is invoked synchronously for every alert.
	OnAlert func(detector.Alert)
	// Transport performs the upstream requests; nil selects
	// http.DefaultTransport.
	Transport http.RoundTripper
	// Now supplies time for block expiry; nil selects time.Now. Tests
	// inject a fake clock.
	Now func() time.Time
	// TrustXForwardedFor attributes traffic to the first X-Forwarded-For
	// address instead of the TCP peer. Enable only when an upstream
	// load balancer or proxy chain sets the header trustworthily.
	TrustXForwardedFor bool
}

// Stats counts proxy activity.
type Stats struct {
	Requests       int
	Relayed        int
	BlockedClients int
	Refused        int
	UpstreamErrors int
	Alerts         int
}

// Proxy is an http.Handler implementing a detecting forward proxy. Safe
// for concurrent use: detection runs on a sharded engine whose per-client
// shard locks let distinct clients classify in parallel, while p.mu guards
// only the blocklist and the proxy counters.
type Proxy struct {
	cfg       Config
	transport http.RoundTripper
	now       func() time.Time
	engine    *detector.ShardedEngine

	mu      sync.Mutex
	blocked map[netip.Addr]time.Time // guarded by mu; client -> block expiry
	stats   Stats                    // guarded by mu
}

var _ http.Handler = (*Proxy)(nil)

// New returns a Proxy detecting with the given trained model.
func New(cfg Config, model detector.Scorer) *Proxy {
	if cfg.BlockDuration == 0 {
		cfg.BlockDuration = 10 * time.Minute
	}
	transport := cfg.Transport
	if transport == nil {
		transport = http.DefaultTransport
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	return &Proxy{
		cfg:       cfg,
		transport: transport,
		now:       now,
		engine:    detector.NewSharded(cfg.Detector, model),
		blocked:   make(map[netip.Addr]time.Time),
	}
}

// Stats returns a snapshot of proxy counters.
func (p *Proxy) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// EngineStats returns a snapshot of the embedded detector's counters,
// aggregated across its shards.
func (p *Proxy) EngineStats() detector.Stats {
	return p.engine.Stats()
}

// Watched returns snapshots of every potential-infection WCG the embedded
// detector is currently growing, for operator dashboards.
func (p *Proxy) Watched() []detector.WatchedWCG {
	return p.engine.Watched()
}

// clientAddr extracts the client IP from a request, honoring
// X-Forwarded-For when configured.
func (p *Proxy) clientAddr(r *http.Request) netip.Addr {
	if p.cfg.TrustXForwardedFor {
		if xff := r.Header.Get("X-Forwarded-For"); xff != "" {
			first := xff
			if i := strings.IndexByte(first, ','); i >= 0 {
				first = first[:i]
			}
			if addr, err := netip.ParseAddr(strings.TrimSpace(first)); err == nil {
				return addr.Unmap()
			}
		}
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		host = r.RemoteAddr
	}
	addr, err := netip.ParseAddr(host)
	if err != nil {
		return netip.Addr{}
	}
	return addr.Unmap()
}

// ServeHTTP relays one proxied request and runs detection on the exchange.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	p.mu.Lock()
	p.stats.Requests++
	client := p.clientAddr(r)
	if expiry, ok := p.blocked[client]; ok {
		if p.now().Before(expiry) {
			p.stats.Refused++
			p.mu.Unlock()
			http.Error(w, "session terminated by DynaMiner", http.StatusForbidden)
			return
		}
		delete(p.blocked, client)
	}
	p.mu.Unlock()

	if r.Method == http.MethodConnect {
		// DynaMiner operates on unencrypted HTTP (Section VII); tunneled
		// TLS cannot be inspected and is refused by this deployment.
		http.Error(w, "CONNECT not supported: DynaMiner inspects plain HTTP", http.StatusMethodNotAllowed)
		return
	}

	out, err := p.buildUpstreamRequest(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	reqTime := p.now()
	resp, err := p.transport.RoundTrip(out)
	if err != nil {
		p.mu.Lock()
		p.stats.UpstreamErrors++
		p.mu.Unlock()
		http.Error(w, fmt.Sprintf("upstream: %v", err), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	respTime := p.now()

	// Buffer a prefix of the body for analysis, stream the rest through.
	prefix, rest, err := bufferPrefix(resp.Body, maxCapturedBody)
	if err != nil {
		http.Error(w, fmt.Sprintf("upstream body: %v", err), http.StatusBadGateway)
		return
	}
	relayHdr := resp.Header.Clone()
	removeHopByHop(relayHdr)
	copyHeader(w.Header(), relayHdr)
	w.WriteHeader(resp.StatusCode)
	written, _ := w.Write(prefix)
	tail, _ := io.Copy(w, rest)

	// Classification runs under the owning shard's lock only, so two
	// clients' exchanges classify concurrently; p.mu guards just the
	// blocklist and counters.
	tx := p.buildTransaction(r, resp, client, reqTime, respTime, prefix, int(tail)+written)
	alerts := p.engine.Process(tx)
	p.mu.Lock()
	p.stats.Relayed++
	p.stats.Alerts += len(alerts)
	if len(alerts) > 0 && p.cfg.BlockAfterAlert {
		if _, already := p.blocked[client]; !already {
			p.stats.BlockedClients++
		}
		p.blocked[client] = p.now().Add(p.cfg.BlockDuration)
	}
	p.mu.Unlock()
	if p.cfg.OnAlert != nil {
		for _, a := range alerts {
			p.cfg.OnAlert(a)
		}
	}
}

// buildUpstreamRequest converts the proxied request into an origin request.
func (p *Proxy) buildUpstreamRequest(r *http.Request) (*http.Request, error) {
	u := *r.URL
	if u.Host == "" {
		u.Host = r.Host
	}
	if u.Scheme == "" {
		u.Scheme = "http"
	}
	if u.Host == "" {
		return nil, fmt.Errorf("proxy: request has no target host")
	}
	out, err := http.NewRequestWithContext(r.Context(), r.Method, u.String(), r.Body)
	if err != nil {
		return nil, fmt.Errorf("proxy: build upstream request: %w", err)
	}
	out.Header = r.Header.Clone()
	out.Header.Del("Proxy-Connection")
	removeHopByHop(out.Header)
	return out, nil
}

// hopByHopHeaders are the connection-scoped fields of RFC 7230 §6.1; a
// proxy must consume them rather than forward them, or keep-alive and
// transfer framing negotiated on one hop corrupt the other.
var hopByHopHeaders = []string{
	"Connection",
	"Keep-Alive",
	"Proxy-Authenticate",
	"Proxy-Authorization",
	"TE",
	"Trailer",
	"Transfer-Encoding",
	"Upgrade",
}

// removeHopByHop strips the standard hop-by-hop headers plus any field the
// Connection header names as connection-scoped.
func removeHopByHop(h http.Header) {
	for _, v := range h.Values("Connection") {
		for _, name := range strings.Split(v, ",") {
			if name = strings.TrimSpace(name); name != "" {
				h.Del(name)
			}
		}
	}
	for _, name := range hopByHopHeaders {
		h.Del(name)
	}
}

// bufferPrefix reads up to limit bytes and returns them plus a reader for
// any remainder.
func bufferPrefix(body io.Reader, limit int) ([]byte, io.Reader, error) {
	prefix := make([]byte, 0, 4096)
	buf := make([]byte, 4096)
	for len(prefix) < limit {
		n, err := body.Read(buf)
		prefix = append(prefix, buf[:n]...)
		if err == io.EOF {
			return prefix, emptyReader{}, nil
		}
		if err != nil {
			return prefix, emptyReader{}, err
		}
	}
	return prefix, body, nil
}

type emptyReader struct{}

func (emptyReader) Read([]byte) (int, error) { return 0, io.EOF }

func copyHeader(dst, src http.Header) {
	for k, vs := range src {
		for _, v := range vs {
			dst.Add(k, v)
		}
	}
}

// buildTransaction assembles the httpstream view of the exchange.
func (p *Proxy) buildTransaction(r *http.Request, resp *http.Response, client netip.Addr, reqTime, respTime time.Time, prefix []byte, totalBody int) httpstream.Transaction {
	host := r.URL.Host
	if host == "" {
		host = r.Host
	}
	if h, _, err := net.SplitHostPort(host); err == nil {
		host = h
	}
	uri := r.URL.RequestURI()
	body := prefix
	if len(body) > 64<<10 {
		body = body[:64<<10]
	}
	return httpstream.Transaction{
		ClientIP:    client,
		Method:      r.Method,
		URI:         uri,
		Host:        host,
		ReqHdr:      r.Header,
		ReqTime:     reqTime,
		StatusCode:  resp.StatusCode,
		RespHdr:     resp.Header,
		RespTime:    respTime,
		ContentType: resp.Header.Get("Content-Type"),
		BodySize:    totalBody,
		Body:        body,
	}
}
