// Package proxy deploys DynaMiner the way the paper's live case study does
// (Section VI-D): as a forward HTTP web proxy that relays every
// request/response pair, feeds it to the on-the-wire detection engine, and
// terminates the sessions of clients whose conversations are deemed
// infectious.
package proxy

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/netip"
	"strings"
	"sync"
	"time"

	"dynaminer/internal/detector"
	"dynaminer/internal/httpstream"
	"dynaminer/internal/obs"
)

// maxCapturedBody bounds how much response body is buffered for analysis;
// the remainder streams through uninspected (payload-agnostic analysis
// needs sizes and document prefixes, not full binaries).
const maxCapturedBody = 256 << 10

// Config tunes the proxy.
type Config struct {
	// Detector configures the embedded on-the-wire engine.
	Detector detector.Config
	// BlockAfterAlert terminates the offending client's web session: once
	// a client alerts, its requests are refused with 403 for
	// BlockDuration.
	BlockAfterAlert bool
	// BlockDuration is how long an alerted client stays blocked; zero
	// selects 10 minutes.
	BlockDuration time.Duration
	// OnAlert, when set, is invoked synchronously for every alert.
	OnAlert func(detector.Alert)
	// Transport performs the upstream requests; nil selects
	// http.DefaultTransport.
	Transport http.RoundTripper
	// Now supplies time for block expiry, circuit-breaker cooldowns and
	// upstream timing; nil selects time.Now. Tests inject a fake clock.
	Now func() time.Time
	// TrustXForwardedFor attributes traffic to the first X-Forwarded-For
	// address instead of the TCP peer. Enable only when an upstream
	// load balancer or proxy chain sets the header trustworthily.
	TrustXForwardedFor bool
	// UpstreamTimeout bounds one upstream exchange end to end: the round
	// trip, buffering the analysis prefix of the body, and relaying the
	// tail. A hung upstream or a slow-loris body surfaces as a 504 within
	// this deadline instead of pinning the handler forever. Zero selects
	// 30 seconds.
	UpstreamTimeout time.Duration
	// UpstreamRetries is how many extra attempts an idempotent (GET/HEAD,
	// bodyless) request gets after a retryable transport failure, within
	// the same UpstreamTimeout deadline. Zero selects 2; negative
	// disables retries. Timeouts are never retried — the budget is
	// already spent.
	UpstreamRetries int
	// RetryBackoff is the base of the jittered exponential backoff
	// between retries (doubles per attempt, jittered to 50–100% of the
	// step). Zero selects 100ms.
	RetryBackoff time.Duration
	// BreakerThreshold is how many consecutive transport failures to one
	// upstream host open its circuit: while open, requests for that host
	// are answered with a synthesized 502 without touching the upstream.
	// Zero selects 5; negative disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is how long an open circuit refuses traffic before
	// letting a single probe request test the upstream. Zero selects
	// 30 seconds.
	BreakerCooldown time.Duration
	// Sleep pauses between retry attempts; nil selects time.Sleep. Tests
	// inject a no-op to run fault schedules without real delays.
	Sleep func(time.Duration)
}

// Stats counts proxy activity. Every request lands in exactly one of
// Relayed, Refused, UpstreamErrors, BreakerRejected or BadRequests, so
// Requests always equals their sum — the conservation identity the chaos
// soak asserts.
type Stats struct {
	Requests       int
	Relayed        int
	BlockedClients int
	Refused        int
	// UpstreamErrors counts exchanges that failed against the upstream
	// after exhausting any retries: transport errors, timeouts, and body
	// reads that died while buffering the analysis prefix.
	UpstreamErrors int
	Alerts         int
	// Retries counts re-sent idempotent requests (not terminal outcomes;
	// a request that eventually succeeds after 2 retries adds 2 here and
	// 1 to Relayed).
	Retries int
	// BadRequests counts requests the proxy refused to relay at all:
	// CONNECT tunnels and requests with no usable target.
	BadRequests int
	// BreakerRejected counts requests answered with a synthesized 502
	// because their upstream's circuit was open.
	BreakerRejected int
	// BreakerTrips counts circuit transitions to open (including a failed
	// half-open probe re-opening).
	BreakerTrips int
}

// Proxy is an http.Handler implementing a detecting forward proxy. Safe
// for concurrent use: detection runs on a sharded engine whose per-client
// shard locks let distinct clients classify in parallel, while p.mu guards
// only the blocklist and the proxy counters.
type Proxy struct {
	cfg       Config
	transport http.RoundTripper
	now       func() time.Time
	sleep     func(time.Duration)
	engine    *detector.ShardedEngine

	// mx backs every Stats counter with registry metrics shared with the
	// embedded engine; the atomic counters need no lock.
	mx *proxyMetrics

	// tracer and stg drive per-request pipeline tracing; nil tracer means
	// every span call is a single nil check. The tracer is taken from
	// cfg.Detector.Tracer so proxy and detector spans share one trace.
	tracer *obs.Tracer
	stg    proxyStages

	mu       sync.Mutex
	blocked  map[netip.Addr]time.Time // guarded by mu; client -> block expiry
	breakers map[string]*breaker      // guarded by mu; upstream host -> circuit
	rng      *rand.Rand               // guarded by mu; retry-backoff jitter
}

var _ http.Handler = (*Proxy)(nil)

// New returns a Proxy detecting with the given trained model.
func New(cfg Config, model detector.Scorer) *Proxy {
	if cfg.BlockDuration == 0 {
		cfg.BlockDuration = 10 * time.Minute
	}
	if cfg.UpstreamTimeout == 0 {
		cfg.UpstreamTimeout = 30 * time.Second
	}
	if cfg.UpstreamRetries == 0 {
		cfg.UpstreamRetries = 2
	}
	if cfg.RetryBackoff == 0 {
		cfg.RetryBackoff = 100 * time.Millisecond
	}
	if cfg.BreakerThreshold == 0 {
		cfg.BreakerThreshold = 5
	}
	if cfg.BreakerCooldown == 0 {
		cfg.BreakerCooldown = 30 * time.Second
	}
	transport := cfg.Transport
	if transport == nil {
		transport = http.DefaultTransport
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	sleep := cfg.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	engine := detector.NewSharded(cfg.Detector, model)
	p := &Proxy{
		cfg:       cfg,
		transport: transport,
		now:       now,
		sleep:     sleep,
		engine:    engine,
		mx:        newProxyMetrics(engine.Registry()),
		tracer:    cfg.Detector.Tracer,
		blocked:   make(map[netip.Addr]time.Time),
		breakers:  make(map[string]*breaker),
		rng:       rand.New(rand.NewSource(1)),
	}
	if p.tracer != nil {
		p.stg = newProxyStages(p.tracer)
	}
	return p
}

// Stats returns a snapshot of proxy counters — a bridged view over the
// same registry metrics /metrics exports.
func (p *Proxy) Stats() Stats {
	return Stats{
		Requests:        int(p.mx.requests.Value()),
		Relayed:         int(p.mx.relayed.Value()),
		BlockedClients:  int(p.mx.blockedClients.Value()),
		Refused:         int(p.mx.refused.Value()),
		UpstreamErrors:  int(p.mx.upstreamErrors.Value()),
		Alerts:          int(p.mx.alerts.Value()),
		Retries:         int(p.mx.retries.Value()),
		BadRequests:     int(p.mx.badRequests.Value()),
		BreakerRejected: int(p.mx.breakerRejected.Value()),
		BreakerTrips:    int(p.mx.breakerTrips.Value()),
	}
}

// Registry returns the observability registry shared by the proxy and
// its embedded detection engine.
func (p *Proxy) Registry() *obs.Registry { return p.mx.reg }

// Health reports the embedded detection engine's readiness conditions,
// OR-ed across its shards, for the /healthz endpoint.
func (p *Proxy) Health() obs.HealthStatus { return p.engine.Health() }

// EngineStats returns a snapshot of the embedded detector's counters,
// aggregated across its shards.
func (p *Proxy) EngineStats() detector.Stats {
	return p.engine.Stats()
}

// Watched returns snapshots of every potential-infection WCG the embedded
// detector is currently growing, for operator dashboards.
func (p *Proxy) Watched() []detector.WatchedWCG {
	return p.engine.Watched()
}

// ModelVersion returns the serving model's version.
func (p *Proxy) ModelVersion() detector.ModelVersion { return p.engine.ModelVersion() }

// ReloadModelFile validates a model file through the full semantic
// screens and hot-swaps it into the embedded engine without dropping a
// request or a watch; failures leave the serving model untouched.
func (p *Proxy) ReloadModelFile(path string) (detector.ModelVersion, error) {
	return p.engine.ReloadModelFile(path)
}

// RollbackModel reinstates the previously served model.
func (p *Proxy) RollbackModel() (detector.ModelVersion, error) { return p.engine.RollbackModel() }

// WriteCheckpointFile atomically writes the embedded engine's in-flight
// watch state to path.
func (p *Proxy) WriteCheckpointFile(path string) error { return p.engine.WriteCheckpointFile(path) }

// RestoreCheckpointFile rebuilds the embedded engine's in-flight state
// from a checkpoint written by a previous process; call before serving.
func (p *Proxy) RestoreCheckpointFile(path string) (int, error) {
	return p.engine.RestoreCheckpointFile(path)
}

// clientAddr extracts the client IP from a request, honoring
// X-Forwarded-For when configured.
func (p *Proxy) clientAddr(r *http.Request) netip.Addr {
	if p.cfg.TrustXForwardedFor {
		if xff := r.Header.Get("X-Forwarded-For"); xff != "" {
			first := xff
			if i := strings.IndexByte(first, ','); i >= 0 {
				first = first[:i]
			}
			if addr, err := netip.ParseAddr(strings.TrimSpace(first)); err == nil {
				return addr.Unmap()
			}
		}
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		host = r.RemoteAddr
	}
	addr, err := netip.ParseAddr(host)
	if err != nil {
		return netip.Addr{}
	}
	return addr.Unmap()
}

// ServeHTTP relays one proxied request and runs detection on the exchange.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	p.mx.requests.Inc()
	// One trace per proxied request: proxy.request is the root span, the
	// upstream attempts and the client-side relay are children, and the
	// detector's spans nest under it via ProcessTraced. Begin/Finish are
	// nil-safe, so an untraced proxy pays a handful of nil checks.
	at := p.tracer.Begin()
	rs := at.StartSpan(p.stg.request)
	defer func() {
		at.EndSpan(rs)
		p.tracer.Finish(at)
	}()
	client := p.clientAddr(r)
	p.mu.Lock()
	if expiry, ok := p.blocked[client]; ok {
		if p.now().Before(expiry) {
			p.mu.Unlock()
			p.mx.refused.Inc()
			http.Error(w, "session terminated by DynaMiner", http.StatusForbidden)
			return
		}
		delete(p.blocked, client)
	}
	p.mu.Unlock()

	if r.Method == http.MethodConnect {
		// DynaMiner operates on unencrypted HTTP (Section VII); tunneled
		// TLS cannot be inspected and is refused by this deployment.
		p.mx.badRequests.Inc()
		http.Error(w, "CONNECT not supported: DynaMiner inspects plain HTTP", http.StatusMethodNotAllowed)
		return
	}

	// The deadline covers the whole upstream exchange — connecting, the
	// response headers, buffering the analysis prefix, and the tail relay
	// — so neither a hung upstream nor a slow-loris body can pin this
	// handler past UpstreamTimeout.
	ctx, cancel := context.WithTimeout(r.Context(), p.cfg.UpstreamTimeout)
	defer cancel()
	out, err := p.buildUpstreamRequest(ctx, r)
	if err != nil {
		p.mx.badRequests.Inc()
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	upstreamHost := strings.ToLower(out.URL.Hostname())
	if !p.breakerAllow(upstreamHost) {
		p.mx.breakerRejected.Inc()
		at.Annotate(rs, obs.SpanBreakerOpen)
		http.Error(w, "upstream circuit open: "+upstreamHost, http.StatusBadGateway)
		return
	}

	reqTime := p.now()
	resp, err := p.roundTrip(out, at)
	if err != nil {
		p.breakerResult(upstreamHost, false)
		p.mx.upstreamErrors.Inc()
		at.Annotate(rs, obs.SpanError)
		code := http.StatusBadGateway
		if isTimeout(err) {
			code = http.StatusGatewayTimeout
		}
		http.Error(w, fmt.Sprintf("upstream: %v", err), code)
		return
	}
	defer resp.Body.Close()
	respTime := p.now()

	// Buffer a prefix of the body for analysis, stream the rest through.
	prefix, rest, err := bufferPrefix(resp.Body, maxCapturedBody)
	if err != nil {
		p.breakerResult(upstreamHost, false)
		p.mx.upstreamErrors.Inc()
		at.Annotate(rs, obs.SpanError)
		code := http.StatusBadGateway
		if isTimeout(err) {
			code = http.StatusGatewayTimeout
		}
		http.Error(w, fmt.Sprintf("upstream body: %v", err), code)
		return
	}
	p.breakerResult(upstreamHost, true)
	ls := at.StartSpan(p.stg.relay)
	relayHdr := resp.Header.Clone()
	removeHopByHop(relayHdr)
	copyHeader(w.Header(), relayHdr)
	w.WriteHeader(resp.StatusCode)
	written, _ := w.Write(prefix)
	tail, _ := io.Copy(w, rest)
	at.EndSpan(ls)

	// Classification runs under the owning shard's lock only, so two
	// clients' exchanges classify concurrently; p.mu guards just the
	// blocklist and counters.
	tx := p.buildTransaction(r, resp, client, reqTime, respTime, prefix, int(tail)+written)
	alerts := p.engine.ProcessTraced(tx, at)
	p.mx.relayed.Inc()
	p.mx.relay.Observe(respTime.Sub(reqTime).Seconds())
	p.mx.alerts.Add(int64(len(alerts)))
	if len(alerts) > 0 && p.cfg.BlockAfterAlert {
		p.mu.Lock()
		if _, already := p.blocked[client]; !already {
			p.mx.blockedClients.Inc()
		}
		p.blocked[client] = p.now().Add(p.cfg.BlockDuration)
		p.mu.Unlock()
	}
	if p.cfg.OnAlert != nil {
		for _, a := range alerts {
			p.cfg.OnAlert(a)
		}
	}
}

// roundTrip performs the upstream exchange with bounded, jittered
// exponential-backoff retries. Only idempotent bodyless requests
// (GET/HEAD) are retried — a request body has already been consumed by
// the failed attempt — and only on retryable transport errors; the
// context deadline set by ServeHTTP bounds all attempts together, so
// retries never extend the caller-visible latency past UpstreamTimeout.
func (p *Proxy) roundTrip(out *http.Request, at *obs.ActiveTrace) (*http.Response, error) {
	retries := 0
	if (out.Method == http.MethodGet || out.Method == http.MethodHead) && out.Body == nil && p.cfg.UpstreamRetries > 0 {
		retries = p.cfg.UpstreamRetries
	}
	backoff := p.cfg.RetryBackoff
	for attempt := 0; ; attempt++ {
		// One proxy.upstream span per attempt, the attempt number as its
		// Arg; failed attempts are flagged SpanError, re-sent ones also
		// SpanRetried — the flame view shows exactly where a slow exchange
		// spent its retry budget.
		us := at.StartSpan(p.stg.upstream)
		at.SetArg(us, int32(attempt))
		resp, err := p.transport.RoundTrip(out)
		if err == nil || attempt >= retries || !retryable(err) {
			if err != nil {
				at.Annotate(us, obs.SpanError)
			}
			at.EndSpan(us)
			return resp, err
		}
		at.Annotate(us, obs.SpanError|obs.SpanRetried)
		at.EndSpan(us)
		p.mx.retries.Inc()
		p.sleep(p.jitter(backoff))
		backoff *= 2
		if ctxErr := out.Context().Err(); ctxErr != nil {
			return nil, ctxErr
		}
	}
}

// retryable reports whether a transport error is worth a second attempt:
// connection-level failures (refused, reset, broken pipe) are; timeouts
// and cancellations are not, because the deadline budget is shared across
// attempts.
func retryable(err error) bool {
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return false
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return false
	}
	return true
}

// isTimeout classifies an upstream error as a deadline expiry (504) as
// opposed to a generic relay failure (502).
func isTimeout(err error) bool {
	if errors.Is(err, context.DeadlineExceeded) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// jitter draws a uniform duration in [d/2, d]: full-magnitude backoff
// jitter so synchronized retry storms against a recovering upstream
// spread out.
func (p *Proxy) jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return d/2 + time.Duration(p.rng.Int63n(int64(d/2)+1))
}

// buildUpstreamRequest converts the proxied request into an origin request
// carrying the deadline-bearing context.
func (p *Proxy) buildUpstreamRequest(ctx context.Context, r *http.Request) (*http.Request, error) {
	u := *r.URL
	if u.Host == "" {
		u.Host = r.Host
	}
	if u.Scheme == "" {
		u.Scheme = "http"
	}
	if u.Host == "" {
		return nil, fmt.Errorf("proxy: request has no target host")
	}
	// Server-side requests always carry a non-nil Body; normalize the
	// bodyless GET/HEAD case to nil so the retry gate can recognize a
	// replayable request.
	body := io.Reader(r.Body)
	if (r.Method == http.MethodGet || r.Method == http.MethodHead) &&
		r.ContentLength == 0 && len(r.TransferEncoding) == 0 {
		body = nil
	}
	out, err := http.NewRequestWithContext(ctx, r.Method, u.String(), body)
	if err != nil {
		return nil, fmt.Errorf("proxy: build upstream request: %w", err)
	}
	out.Header = r.Header.Clone()
	out.Header.Del("Proxy-Connection")
	removeHopByHop(out.Header)
	return out, nil
}

// hopByHopHeaders are the connection-scoped fields of RFC 7230 §6.1; a
// proxy must consume them rather than forward them, or keep-alive and
// transfer framing negotiated on one hop corrupt the other.
var hopByHopHeaders = []string{
	"Connection",
	"Keep-Alive",
	"Proxy-Authenticate",
	"Proxy-Authorization",
	"TE",
	"Trailer",
	"Transfer-Encoding",
	"Upgrade",
}

// removeHopByHop strips the standard hop-by-hop headers plus any field the
// Connection header names as connection-scoped.
func removeHopByHop(h http.Header) {
	for _, v := range h.Values("Connection") {
		for _, name := range strings.Split(v, ",") {
			if name = strings.TrimSpace(name); name != "" {
				h.Del(name)
			}
		}
	}
	for _, name := range hopByHopHeaders {
		h.Del(name)
	}
}

// bufferPrefix reads up to limit bytes and returns them plus a reader for
// any remainder.
func bufferPrefix(body io.Reader, limit int) ([]byte, io.Reader, error) {
	prefix := make([]byte, 0, 4096)
	buf := make([]byte, 4096)
	for len(prefix) < limit {
		n, err := body.Read(buf)
		prefix = append(prefix, buf[:n]...)
		if err == io.EOF {
			return prefix, emptyReader{}, nil
		}
		if err != nil {
			return prefix, emptyReader{}, err
		}
	}
	return prefix, body, nil
}

type emptyReader struct{}

func (emptyReader) Read([]byte) (int, error) { return 0, io.EOF }

func copyHeader(dst, src http.Header) {
	for k, vs := range src {
		for _, v := range vs {
			dst.Add(k, v)
		}
	}
}

// buildTransaction assembles the httpstream view of the exchange.
func (p *Proxy) buildTransaction(r *http.Request, resp *http.Response, client netip.Addr, reqTime, respTime time.Time, prefix []byte, totalBody int) httpstream.Transaction {
	host := r.URL.Host
	if host == "" {
		host = r.Host
	}
	if h, _, err := net.SplitHostPort(host); err == nil {
		host = h
	}
	uri := r.URL.RequestURI()
	body := prefix
	if len(body) > 64<<10 {
		body = body[:64<<10]
	}
	return httpstream.Transaction{
		ClientIP:    client,
		Method:      r.Method,
		URI:         uri,
		Host:        host,
		ReqHdr:      r.Header,
		ReqTime:     reqTime,
		StatusCode:  resp.StatusCode,
		RespHdr:     resp.Header,
		RespTime:    respTime,
		ContentType: resp.Header.Get("Content-Type"),
		BodySize:    totalBody,
		Body:        body,
	}
}
