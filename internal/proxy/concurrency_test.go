package proxy

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"dynaminer/internal/detector"
)

// TestProxyConcurrentClients drives many goroutine clients through the
// proxy at once; run with -race to validate the engine locking.
func TestProxyConcurrentClients(t *testing.T) {
	p, client, cleanup := testSetup(t, Config{}, constScorer(0.2))
	defer cleanup()

	var wg sync.WaitGroup
	const workers = 8
	const perWorker = 20
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				resp, err := client.Get(fmt.Sprintf("http://benign.com/?w=%d&i=%d", w, i))
				if err != nil {
					errs <- err
					return
				}
				_ = resp.Body.Close()
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := p.Stats().Relayed; got != workers*perWorker {
		t.Fatalf("relayed = %d, want %d", got, workers*perWorker)
	}
	if es := p.EngineStats(); es.Transactions != workers*perWorker {
		t.Fatalf("engine transactions = %d", es.Transactions)
	}
}

// TestProxyShardedStatsConsistent drives many concurrent client identities
// (distinct X-Forwarded-For addresses) through the sharded proxy, each one
// walking into an infection and getting blocked mid-run, and checks the
// aggregated proxy and engine counters stay consistent.
func TestProxyShardedStatsConsistent(t *testing.T) {
	cfg := Config{
		Detector:           detector.Config{RedirectThreshold: 3, Shards: 4},
		BlockAfterAlert:    true,
		TrustXForwardedFor: true,
	}
	p, client, cleanup := testSetup(t, cfg, constScorer(0.95))
	defer cleanup()

	const workers = 12
	do := func(w int, rawurl, referer string) error {
		req, err := http.NewRequest(http.MethodGet, rawurl, nil)
		if err != nil {
			return err
		}
		if referer != "" {
			req.Header.Set("Referer", referer)
		}
		req.Header.Set("X-Forwarded-For", fmt.Sprintf("203.0.113.%d", w+1))
		resp, err := client.Do(req)
		if err != nil {
			return err
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		return resp.Body.Close()
	}
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			chain := []struct{ url, ref string }{
				{"http://benign.com/", ""},
				{"http://hop1.evil/go", "http://benign.com/"},
				{"http://hop2.evil/go", "http://hop1.evil/go"},
				{"http://hop3.evil/land", "http://hop2.evil/go"},
				{"http://drop.evil/p.exe", "http://hop3.evil/land"},
			}
			for _, c := range chain {
				if err := do(w, c.url, c.ref); err != nil {
					errs <- err
					return
				}
			}
			// The payload download alerted and blocked this identity:
			// everything after it is refused.
			for i := 0; i < 4; i++ {
				if err := do(w, fmt.Sprintf("http://benign.com/?i=%d", i), ""); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := p.Stats()
	if st.Requests != workers*9 {
		t.Fatalf("requests = %d, want %d", st.Requests, workers*9)
	}
	if st.Requests != st.Relayed+st.Refused+st.UpstreamErrors {
		t.Fatalf("stats inconsistent: %+v", st)
	}
	if st.Refused != workers*4 {
		t.Fatalf("refused = %d, want %d (stats %+v)", st.Refused, workers*4, st)
	}
	if st.BlockedClients != workers {
		t.Fatalf("blocked = %d, want %d", st.BlockedClients, workers)
	}
	es := p.EngineStats()
	if es.Transactions != st.Relayed {
		t.Fatalf("engine transactions = %d, relayed = %d", es.Transactions, st.Relayed)
	}
	if es.Alerts < workers {
		t.Fatalf("engine alerts = %d, want >= %d", es.Alerts, workers)
	}
	if st.Alerts != es.Alerts {
		t.Fatalf("proxy alerts = %d, engine alerts = %d", st.Alerts, es.Alerts)
	}
	if len(p.Watched()) == 0 {
		t.Fatal("watched WCGs must be visible through the proxy")
	}
}

// TestProxyDirectRequest covers the non-proxied (origin-form) request path
// where the URL has no host and the Host header is used.
func TestProxyDirectRequest(t *testing.T) {
	p, _, cleanup := testSetup(t, Config{}, constScorer(0))
	defer cleanup()
	// Hit the proxy directly (reverse-proxy style): URL path only.
	srv := httptest.NewServer(p)
	defer srv.Close()
	req, err := http.NewRequest(http.MethodGet, srv.URL+"/", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Host = "benign.com"
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}
