package proxy

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

// TestProxyConcurrentClients drives many goroutine clients through the
// proxy at once; run with -race to validate the engine locking.
func TestProxyConcurrentClients(t *testing.T) {
	p, client, cleanup := testSetup(t, Config{}, constScorer(0.2))
	defer cleanup()

	var wg sync.WaitGroup
	const workers = 8
	const perWorker = 20
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				resp, err := client.Get(fmt.Sprintf("http://benign.com/?w=%d&i=%d", w, i))
				if err != nil {
					errs <- err
					return
				}
				_ = resp.Body.Close()
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := p.Stats().Relayed; got != workers*perWorker {
		t.Fatalf("relayed = %d, want %d", got, workers*perWorker)
	}
	if es := p.EngineStats(); es.Transactions != workers*perWorker {
		t.Fatalf("engine transactions = %d", es.Transactions)
	}
}

// TestProxyDirectRequest covers the non-proxied (origin-form) request path
// where the URL has no host and the Host header is used.
func TestProxyDirectRequest(t *testing.T) {
	p, _, cleanup := testSetup(t, Config{}, constScorer(0))
	defer cleanup()
	// Hit the proxy directly (reverse-proxy style): URL path only.
	srv := httptest.NewServer(p)
	defer srv.Close()
	req, err := http.NewRequest(http.MethodGet, srv.URL+"/", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Host = "benign.com"
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}
