package proxy

import "time"

// breakerState is the classic three-state circuit: closed (requests flow,
// consecutive failures are counted), open (requests are refused with a
// synthesized 502 until the cooldown elapses), and probe (half-open: one
// request is let through to test the upstream; its outcome closes or
// re-opens the circuit).
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerProbe
)

// breaker tracks one upstream host's circuit. Entries exist only for
// hosts that are currently failing: a healthy host has no breaker at all,
// and a circuit that closes again is deleted, so the map stays bounded by
// the number of concurrently broken upstreams.
type breaker struct {
	state    breakerState
	failures int       // consecutive failures while closed
	openedAt time.Time // when the circuit last opened
}

// breakerAllow reports whether a request to host may be sent upstream. An
// open circuit transitions to probe once the cooldown has elapsed, and the
// caller observing that transition carries the probe request; every other
// caller is refused until the probe resolves. Callers must not hold p.mu.
func (p *Proxy) breakerAllow(host string) bool {
	if p.cfg.BreakerThreshold < 0 {
		return true
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	b, ok := p.breakers[host]
	if !ok {
		return true
	}
	switch b.state {
	case breakerOpen:
		if p.now().Sub(b.openedAt) < p.cfg.BreakerCooldown {
			return false
		}
		b.state = breakerProbe
		p.mx.breakerState.With(host).Set(int64(breakerProbe))
		return true
	case breakerProbe:
		return false
	default:
		return true
	}
}

// breakerResult records the outcome of an upstream exchange with host:
// transport-level failures advance the circuit toward open, successes
// reset it. Callers must not hold p.mu.
func (p *Proxy) breakerResult(host string, ok bool) {
	if p.cfg.BreakerThreshold < 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	b := p.breakers[host]
	if ok {
		// Healthy again (or still healthy): the circuit closes and its
		// bookkeeping — the state gauge child included — is dropped.
		if b != nil {
			delete(p.breakers, host)
			p.mx.breakerState.Delete(host)
		}
		return
	}
	if b == nil {
		b = &breaker{}
		p.breakers[host] = b
		// The gauge child is created here, when the host starts failing —
		// never on the relay hot path — and mirrors the breaker's life.
		p.mx.breakerState.With(host).Set(int64(breakerClosed))
	}
	switch b.state {
	case breakerProbe:
		// The probe failed: re-open and restart the cooldown.
		b.state = breakerOpen
		b.openedAt = p.now()
		p.mx.breakerState.With(host).Set(int64(breakerOpen))
		p.mx.breakerTrips.Inc()
	default:
		b.failures++
		if b.state == breakerClosed && b.failures >= p.cfg.BreakerThreshold {
			b.state = breakerOpen
			b.openedAt = p.now()
			p.mx.breakerState.With(host).Set(int64(breakerOpen))
			p.mx.breakerTrips.Inc()
		}
	}
}
