package proxy

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// hungTransport never answers: it parks until the request context
// expires, like an upstream that accepted the connection and went silent.
type hungTransport struct{}

func (hungTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	<-r.Context().Done()
	return nil, r.Context().Err()
}

// countingTransport wraps an attempt schedule: fail[i] decides whether
// attempt i errors (connection-reset style) or succeeds with a small
// HTML response. Attempts past the schedule succeed.
type countingTransport struct {
	mu       sync.Mutex
	attempts int
	fail     []bool
}

func (ct *countingTransport) calls() int {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	return ct.attempts
}

func (ct *countingTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	ct.mu.Lock()
	i := ct.attempts
	ct.attempts++
	ct.mu.Unlock()
	if i < len(ct.fail) && ct.fail[i] {
		return nil, fmt.Errorf("read tcp: connection reset by peer")
	}
	return &http.Response{
		StatusCode: http.StatusOK,
		Header:     http.Header{"Content-Type": []string{"text/html"}},
		Body:       io.NopCloser(strings.NewReader("<html>ok</html>")),
		Request:    r,
	}, nil
}

// noSleep makes retry backoff instantaneous in tests.
func noSleep(time.Duration) {}

func proxyGet(t *testing.T, p *Proxy, rawurl string) *httptest.ResponseRecorder {
	t.Helper()
	r := httptest.NewRequest(http.MethodGet, rawurl, nil)
	r.RemoteAddr = "192.0.2.10:4444"
	w := httptest.NewRecorder()
	p.ServeHTTP(w, r)
	return w
}

// TestProxyUpstreamTimeout is the regression for the unbounded zero-value
// transport: a never-responding upstream must surface as a 504 within
// UpstreamTimeout (+1s of slack), not pin the handler forever. Before
// UpstreamTimeout existed this test hung.
func TestProxyUpstreamTimeout(t *testing.T) {
	p := New(Config{Transport: hungTransport{}, UpstreamTimeout: 150 * time.Millisecond}, constScorer(0))
	start := time.Now()
	w := proxyGet(t, p, "http://silent.example/")
	elapsed := time.Since(start)
	if elapsed > 150*time.Millisecond+time.Second {
		t.Fatalf("handler took %v, want under UpstreamTimeout+1s", elapsed)
	}
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", w.Code)
	}
	if st := p.Stats(); st.UpstreamErrors != 1 || st.Retries != 0 {
		t.Fatalf("stats = %+v, want UpstreamErrors=1 and no retries of a timeout", st)
	}
}

// slowLorisBody hands out headers immediately but never finishes the
// body: reads park until the request context expires.
type slowLorisBody struct{ r *http.Request }

func (b slowLorisBody) Read([]byte) (int, error) {
	<-b.r.Context().Done()
	return 0, b.r.Context().Err()
}
func (slowLorisBody) Close() error { return nil }

type slowLorisTransport struct{}

func (slowLorisTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	return &http.Response{
		StatusCode: http.StatusOK,
		Header:     http.Header{"Content-Type": []string{"text/html"}},
		Body:       slowLorisBody{r: r},
		Request:    r,
	}, nil
}

// TestProxySlowLorisBody pins the body-read deadline: an upstream that
// sends headers and then trickles nothing cannot wedge bufferPrefix.
func TestProxySlowLorisBody(t *testing.T) {
	p := New(Config{Transport: slowLorisTransport{}, UpstreamTimeout: 150 * time.Millisecond}, constScorer(0))
	start := time.Now()
	w := proxyGet(t, p, "http://loris.example/")
	if elapsed := time.Since(start); elapsed > 150*time.Millisecond+time.Second {
		t.Fatalf("handler took %v, want under UpstreamTimeout+1s", elapsed)
	}
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", w.Code)
	}
	if st := p.Stats(); st.UpstreamErrors != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestProxyRetriesTransientFailures pins the happy retry path: two
// connection resets followed by a success relay the page and cost two
// retries.
func TestProxyRetriesTransientFailures(t *testing.T) {
	ct := &countingTransport{fail: []bool{true, true}}
	p := New(Config{Transport: ct, Sleep: noSleep}, constScorer(0))
	w := proxyGet(t, p, "http://flaky.example/")
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200 after retries", w.Code)
	}
	if ct.calls() != 3 {
		t.Fatalf("attempts = %d, want 3", ct.calls())
	}
	st := p.Stats()
	if st.Retries != 2 || st.Relayed != 1 || st.UpstreamErrors != 0 {
		t.Fatalf("stats = %+v, want Retries=2 Relayed=1", st)
	}
}

// TestProxyDoesNotRetryPOST pins idempotency gating: a POST whose body
// was already consumed by the failed attempt is never re-sent.
func TestProxyDoesNotRetryPOST(t *testing.T) {
	ct := &countingTransport{fail: []bool{true, true, true}}
	p := New(Config{Transport: ct, Sleep: noSleep}, constScorer(0))
	r := httptest.NewRequest(http.MethodPost, "http://flaky.example/submit", strings.NewReader("a=1"))
	r.RemoteAddr = "192.0.2.10:4444"
	w := httptest.NewRecorder()
	p.ServeHTTP(w, r)
	if w.Code != http.StatusBadGateway {
		t.Fatalf("status = %d, want 502", w.Code)
	}
	if ct.calls() != 1 {
		t.Fatalf("attempts = %d, want exactly 1 for POST", ct.calls())
	}
	if st := p.Stats(); st.Retries != 0 || st.UpstreamErrors != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// breakerConfig returns a proxy configured for deterministic breaker
// tests: no retries, injected clock, no real sleeps.
func breakerConfig(transport http.RoundTripper, clock *fakeClock) Config {
	return Config{
		Transport:        transport,
		Now:              clock.Now,
		Sleep:            noSleep,
		UpstreamRetries:  -1,
		BreakerThreshold: 3,
		BreakerCooldown:  time.Minute,
	}
}

// TestCircuitBreakerOpensAndRecovers walks the circuit through its full
// life: threshold failures open it, an open circuit serves synthesized
// 502s without touching the upstream, the cooldown admits one probe, and
// a successful probe closes the circuit again.
func TestCircuitBreakerOpensAndRecovers(t *testing.T) {
	clock := &fakeClock{t: time.Date(2016, 7, 10, 12, 0, 0, 0, time.UTC)}
	ct := &countingTransport{fail: []bool{true, true, true}} // then healthy
	p := New(breakerConfig(ct, clock), constScorer(0))

	for i := 0; i < 3; i++ {
		if w := proxyGet(t, p, "http://down.example/"); w.Code != http.StatusBadGateway {
			t.Fatalf("failure %d: status = %d, want 502", i, w.Code)
		}
	}
	st := p.Stats()
	if st.UpstreamErrors != 3 || st.BreakerTrips != 1 {
		t.Fatalf("stats = %+v, want UpstreamErrors=3 BreakerTrips=1", st)
	}

	// Open: the upstream is not contacted.
	if w := proxyGet(t, p, "http://down.example/"); w.Code != http.StatusBadGateway {
		t.Fatalf("open-circuit status = %d, want 502", w.Code)
	}
	if ct.calls() != 3 {
		t.Fatalf("attempts = %d while open, want 3 (no new contact)", ct.calls())
	}
	if st := p.Stats(); st.BreakerRejected != 1 {
		t.Fatalf("stats = %+v, want BreakerRejected=1", st)
	}

	// After the cooldown a single probe goes through; the upstream has
	// recovered, so the circuit closes and traffic flows again.
	clock.Advance(2 * time.Minute)
	if w := proxyGet(t, p, "http://down.example/"); w.Code != http.StatusOK {
		t.Fatalf("probe status = %d, want 200", w.Code)
	}
	if w := proxyGet(t, p, "http://down.example/"); w.Code != http.StatusOK {
		t.Fatalf("post-recovery status = %d, want 200", w.Code)
	}
	st = p.Stats()
	if st.Relayed != 2 || st.BreakerRejected != 1 {
		t.Fatalf("stats = %+v, want Relayed=2 after recovery", st)
	}
}

// TestCircuitBreakerFailedProbeReopens pins the probe-failure edge: the
// half-open probe failing re-opens the circuit and restarts the cooldown.
func TestCircuitBreakerFailedProbeReopens(t *testing.T) {
	clock := &fakeClock{t: time.Date(2016, 7, 10, 12, 0, 0, 0, time.UTC)}
	ct := &countingTransport{fail: []bool{true, true, true, true}} // probe fails too
	p := New(breakerConfig(ct, clock), constScorer(0))

	for i := 0; i < 3; i++ {
		proxyGet(t, p, "http://down.example/")
	}
	clock.Advance(2 * time.Minute)
	if w := proxyGet(t, p, "http://down.example/"); w.Code != http.StatusBadGateway {
		t.Fatalf("probe status = %d, want 502", w.Code)
	}
	st := p.Stats()
	if st.BreakerTrips != 2 {
		t.Fatalf("stats = %+v, want BreakerTrips=2 (initial + failed probe)", st)
	}
	// Re-opened: rejected again without contact.
	calls := ct.calls()
	if w := proxyGet(t, p, "http://down.example/"); w.Code != http.StatusBadGateway {
		t.Fatalf("status = %d, want 502", w.Code)
	}
	if ct.calls() != calls {
		t.Fatal("re-opened circuit contacted the upstream")
	}
}

// hostRoutedTransport fails for one host and succeeds for everything
// else, to prove breaker isolation.
type hostRoutedTransport struct{ failHost string }

func (ht hostRoutedTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	if strings.EqualFold(r.URL.Hostname(), ht.failHost) {
		return nil, fmt.Errorf("connection refused")
	}
	return &http.Response{
		StatusCode: http.StatusOK,
		Header:     http.Header{"Content-Type": []string{"text/html"}},
		Body:       io.NopCloser(strings.NewReader("ok")),
		Request:    r,
	}, nil
}

// TestCircuitBreakerPerHost pins that one broken upstream never opens the
// circuit for healthy ones.
func TestCircuitBreakerPerHost(t *testing.T) {
	clock := &fakeClock{t: time.Date(2016, 7, 10, 12, 0, 0, 0, time.UTC)}
	cfg := breakerConfig(hostRoutedTransport{failHost: "down.example"}, clock)
	cfg.BreakerThreshold = 1
	p := New(cfg, constScorer(0))

	proxyGet(t, p, "http://down.example/") // trips immediately
	if w := proxyGet(t, p, "http://down.example/"); w.Code != http.StatusBadGateway {
		t.Fatalf("broken host status = %d, want 502", w.Code)
	}
	if w := proxyGet(t, p, "http://up.example/"); w.Code != http.StatusOK {
		t.Fatalf("healthy host status = %d, want 200", w.Code)
	}
	st := p.Stats()
	if st.BreakerTrips != 1 || st.BreakerRejected != 1 || st.Relayed != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestStatsConservation pins the accounting identity across every
// terminal outcome the handler has.
func TestStatsConservation(t *testing.T) {
	clock := &fakeClock{t: time.Date(2016, 7, 10, 12, 0, 0, 0, time.UTC)}
	cfg := breakerConfig(hostRoutedTransport{failHost: "down.example"}, clock)
	cfg.BreakerThreshold = 2
	p := New(cfg, constScorer(0))

	proxyGet(t, p, "http://up.example/")   // relayed
	proxyGet(t, p, "http://down.example/") // upstream error
	proxyGet(t, p, "http://down.example/") // upstream error, trips breaker
	proxyGet(t, p, "http://down.example/") // breaker rejected
	// CONNECT: bad request.
	r := httptest.NewRequest(http.MethodConnect, "http://secure.example:443/", nil)
	r.RemoteAddr = "192.0.2.10:4444"
	p.ServeHTTP(httptest.NewRecorder(), r)

	st := p.Stats()
	sum := st.Relayed + st.Refused + st.UpstreamErrors + st.BreakerRejected + st.BadRequests
	if st.Requests != 5 || sum != st.Requests {
		t.Fatalf("conservation violated: Requests=%d, sum of outcomes=%d (%+v)", st.Requests, sum, st)
	}
}
