package pcap

import (
	"sync/atomic"
	"time"

	"dynaminer/internal/obs"
)

// pcap has no owning serving instance, so its share of pipeline tracing
// is a package-level binding: SetTracer points the batch reassembly
// entry points at a tracer's pcap.reassemble stage (histogram + slow
// EWMA), nil detaches. Reassembly is batch-shaped — many packets, many
// flows per call — so it feeds stage latency rather than opening spans
// inside any one transaction's tree.
type traceBinding struct {
	t     *obs.Tracer
	stage obs.StageID
}

var capTrace atomic.Pointer[traceBinding]

// traceClock is a function value per the zerotime invariant.
var traceClock = time.Now

// SetTracer attaches (or, with nil, detaches) a pipeline tracer to the
// package's batch reassembly timing.
func SetTracer(t *obs.Tracer) {
	if t == nil {
		capTrace.Store(nil)
		return
	}
	capTrace.Store(&traceBinding{t: t, stage: t.Stage("pcap.reassemble")})
}
