package pcap

import (
	"bytes"
	"net/netip"
	"testing"
	"time"
)

// FuzzDecodeFrame shakes the layer decoder with arbitrary bytes: it must
// never panic, and any frame it accepts must re-encode losslessly enough
// to decode again.
func FuzzDecodeFrame(f *testing.F) {
	valid, _ := EncodeFrame(&Frame{
		SrcIP: netip.MustParseAddr("10.0.0.1"), DstIP: netip.MustParseAddr("10.0.0.2"),
		SrcPort: 1234, DstPort: 80, Payload: []byte("GET / HTTP/1.1\r\n\r\n"),
	})
	f.Add(valid)
	v6, _ := EncodeFrame(&Frame{
		SrcIP: netip.MustParseAddr("2001:db8::1"), DstIP: netip.MustParseAddr("2001:db8::2"),
		SrcPort: 1234, DstPort: 80, Payload: []byte("x"),
	})
	f.Add(v6)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 60))

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := DecodeFrame(data)
		if err != nil {
			return
		}
		if fr.SrcIP.Is4() != fr.DstIP.Is4() {
			t.Fatalf("mixed address families decoded: %v -> %v", fr.SrcIP, fr.DstIP)
		}
	})
}

// FuzzReadAllAuto drives both capture-format readers with arbitrary bytes.
func FuzzReadAllAuto(f *testing.F) {
	var classic bytes.Buffer
	w := NewWriter(&classic)
	_ = w.WritePacket(Packet{Timestamp: time.Unix(100, 0), Data: []byte{1, 2, 3, 4}})
	f.Add(classic.Bytes())

	var ng bytes.Buffer
	nw := NewNGWriter(&ng)
	_ = nw.WritePacket(Packet{Timestamp: time.Unix(100, 0), Data: []byte{1, 2, 3, 4}})
	f.Add(ng.Bytes())
	f.Add([]byte("not a capture at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		pkts, err := ReadAllAuto(bytes.NewReader(data))
		if err != nil {
			return
		}
		for _, p := range pkts {
			if len(p.Data) > defaultSnapLen {
				t.Fatalf("packet exceeds snaplen: %d", len(p.Data))
			}
		}
	})
}
