package pcap

import (
	"sort"
	"sync"
	"time"
)

// Stream is one direction of a reassembled TCP conversation: a contiguous
// byte stream plus enough timing information to attribute byte offsets back
// to capture timestamps.
type Stream struct {
	Key       FlowKey
	Data      []byte
	FirstSeen time.Time
	LastSeen  time.Time

	marks []streamMark
}

type streamMark struct {
	offset int
	ts     time.Time
}

// TimeAt returns the capture timestamp of the segment containing byte
// offset off, falling back to FirstSeen for out-of-range offsets.
func (s *Stream) TimeAt(off int) time.Time {
	if len(s.marks) == 0 {
		return s.FirstSeen
	}
	idx := sort.Search(len(s.marks), func(i int) bool { return s.marks[i].offset > off }) - 1
	if idx < 0 {
		idx = 0
	}
	return s.marks[idx].ts
}

// segment is a raw TCP payload pending reassembly. The bytes live in the
// owning Assembler's payload slab as [off:end) so that feeding never
// allocates per segment; offsets stay valid across slab growth.
type segment struct {
	relSeq   int64 // sequence relative to the ISN
	off, end int   // payload byte range in Assembler.slab
	ts       time.Time
}

// span is a half-open relative-sequence interval [start, end) covered by a
// single previously fed segment.
type span struct {
	start, end int64
}

type flowState struct {
	key    FlowKey
	isn    uint32
	sawISN bool
	segs   []segment
	// sorted tracks whether segs is already nondecreasing by relSeq, so
	// the common in-order capture skips the per-Streams sort entirely.
	sorted bool
	// covered holds containment-pruned single-segment spans: starts and
	// ends both strictly increasing. A newly fed segment fully inside one
	// of these spans can never contribute bytes (first copy wins) and is
	// dropped at feed time instead of being kept alive until Streams.
	covered []span
	// hasData/tsFirst/tsLast fold the capture-timestamp envelope over
	// every payload-bearing frame — including dropped duplicates — so
	// FirstSeen/LastSeen match the keep-everything behavior exactly.
	hasData bool
	tsFirst time.Time
	tsLast  time.Time
}

func (st *flowState) reset() {
	st.key = FlowKey{}
	st.isn = 0
	st.sawISN = false
	st.segs = st.segs[:0]
	st.sorted = true
	st.covered = st.covered[:0]
	st.hasData = false
	st.tsFirst = time.Time{}
	st.tsLast = time.Time{}
}

// duplicate reports whether [start, end) is fully contained in a single
// previously fed segment. Only single-segment containment is safe to drop:
// a segment covered only by the union of earlier segments can still
// contribute bytes when an earlier segment is itself trimmed.
func (st *flowState) duplicate(start, end int64) bool {
	// Last covered span with span.start <= start; ends increase with
	// starts, so it has the largest end among candidates.
	idx := sort.Search(len(st.covered), func(i int) bool { return st.covered[i].start > start }) - 1
	return idx >= 0 && st.covered[idx].end >= end
}

// insertSpan records [start, end) in the covered set, pruning any spans the
// new one contains so both starts and ends stay strictly increasing.
func (st *flowState) insertSpan(start, end int64) {
	lo := sort.Search(len(st.covered), func(i int) bool { return st.covered[i].start >= start })
	hi := lo
	for hi < len(st.covered) && st.covered[hi].end <= end {
		hi++
	}
	if lo == hi {
		st.covered = append(st.covered, span{})
		copy(st.covered[lo+1:], st.covered[lo:])
		st.covered[lo] = span{start: start, end: end}
		return
	}
	st.covered[lo] = span{start: start, end: end}
	st.covered = append(st.covered[:lo+1], st.covered[hi:]...)
}

// ensureSorted restores relSeq order with an in-place stable insertion
// sort: zero-alloc (sort.SliceStable boxes its arguments), stable so the
// first-fed copy of an equal-seq retransmission still wins, and O(n +
// inversions) on the nearly-in-order captures that reach it.
func (st *flowState) ensureSorted() {
	if st.sorted {
		return
	}
	segs := st.segs
	for i := 1; i < len(segs); i++ {
		for j := i; j > 0 && segs[j].relSeq < segs[j-1].relSeq; j-- {
			segs[j], segs[j-1] = segs[j-1], segs[j]
		}
	}
	st.sorted = true
}

// Assembler reconstructs per-direction TCP byte streams from frames fed in
// capture order. It tolerates out-of-order delivery, retransmissions, and
// overlapping segments (first copy wins). It does not track TCP state
// machines beyond the ISN: synthetic and well-formed captures are the
// target, mirroring the paper's use of pre-recorded traces.
//
// All reassembly products — segment payloads, Stream.Data, timing marks,
// and the Stream structs themselves — are carved from arenas owned by the
// Assembler. Streams returned by Streams/StreamsInto are therefore only
// valid until the Assembler is Released or fed again after a Streams call.
type Assembler struct {
	flows map[FlowKey]*flowState
	order []FlowKey // insertion order for deterministic output

	slab     []byte // payload arena shared by every segment
	flowFree []*flowState

	// Product arenas, rebuilt by each StreamsInto call.
	streams []Stream
	data    []byte
	marks   []streamMark
}

// NewAssembler returns an empty Assembler.
func NewAssembler() *Assembler {
	return &Assembler{flows: make(map[FlowKey]*flowState)}
}

var assemblerPool = sync.Pool{New: func() any { return NewAssembler() }}

// GetAssembler returns a reset Assembler from the package pool. Pair it
// with Release once every Stream derived from it has been consumed.
func GetAssembler() *Assembler {
	return assemblerPool.Get().(*Assembler)
}

// Release resets the Assembler and returns it to the package pool. Streams
// previously returned by this Assembler alias its arenas and must not be
// used afterwards.
func (a *Assembler) Release() {
	a.Reset()
	assemblerPool.Put(a)
}

// Reset discards all fed flows and reassembly products while retaining
// arena capacity for reuse.
func (a *Assembler) Reset() {
	for _, key := range a.order {
		st := a.flows[key]
		st.reset()
		a.flowFree = append(a.flowFree, st)
	}
	clear(a.flows)
	a.order = a.order[:0]
	a.slab = a.slab[:0]
	a.streams = a.streams[:0]
	a.data = a.data[:0]
	a.marks = a.marks[:0]
}

func (a *Assembler) newFlow(key FlowKey) *flowState {
	var st *flowState
	if n := len(a.flowFree); n > 0 {
		st = a.flowFree[n-1]
		a.flowFree[n-1] = nil
		a.flowFree = a.flowFree[:n-1]
	} else {
		st = &flowState{sorted: true}
	}
	st.key = key
	return st
}

// Feed ingests one decoded frame with its capture timestamp. Payload bytes
// are appended to the assembler's slab (one amortized copy, no per-segment
// allocation); frames whose payload is fully contained in a single earlier
// segment are duplicates under first-copy-wins and are dropped here rather
// than retained until Streams.
func (a *Assembler) Feed(f *Frame, ts time.Time) {
	key := f.Key()
	st, ok := a.flows[key]
	if !ok {
		st = a.newFlow(key)
		a.flows[key] = st
		a.order = append(a.order, key)
	}
	if f.Flags&FlagSYN != 0 && !st.sawISN {
		st.isn = f.Seq + 1 // data begins after SYN consumes one sequence number
		st.sawISN = true
	}
	if len(f.Payload) == 0 {
		return
	}
	if !st.sawISN {
		// Mid-stream capture: treat the first data seq as the origin.
		st.isn = f.Seq
		st.sawISN = true
	}
	if !st.hasData {
		st.hasData = true
		st.tsFirst = ts
		st.tsLast = ts
	} else {
		if ts.Before(st.tsFirst) {
			st.tsFirst = ts
		}
		if ts.After(st.tsLast) {
			st.tsLast = ts
		}
	}
	rel := int64(int32(f.Seq - st.isn)) // handles 32-bit wraparound locally
	end := rel + int64(len(f.Payload))
	if st.duplicate(rel, end) {
		return
	}
	st.insertSpan(rel, end)
	off := len(a.slab)
	a.slab = append(a.slab, f.Payload...)
	if n := len(st.segs); n > 0 && rel < st.segs[n-1].relSeq {
		st.sorted = false
	}
	st.segs = append(st.segs, segment{relSeq: rel, off: off, end: off + len(f.Payload), ts: ts})
}

// Streams finalizes reassembly and returns one Stream per flow direction in
// first-seen order. Gaps in the sequence space are skipped (the stream
// continues at the next available segment), matching what offline forensic
// tooling does with lossy captures. The returned streams alias the
// Assembler's arenas: they stay valid until the next StreamsInto/Reset/
// Release on this Assembler.
func (a *Assembler) Streams() []*Stream {
	return a.StreamsInto(nil)
}

// StreamsInto appends the reassembled streams to dst and returns it,
// carving Stream structs, Data, and timing marks from reused arenas so a
// warm Assembler produces streams without allocating.
//
//dynalint:hotpath
func (a *Assembler) StreamsInto(dst []*Stream) []*Stream {
	nFlows, nSegs := 0, 0
	for _, key := range a.order {
		st := a.flows[key]
		if len(st.segs) > 0 {
			nFlows++
			nSegs += len(st.segs)
		}
	}
	// Pre-size every arena so the carving appends below never reallocate:
	// pointers into a.streams and slices over a.data/a.marks stay valid.
	if cap(a.streams) < nFlows {
		a.streams = make([]Stream, 0, nFlows)
	}
	if cap(a.data) < len(a.slab) {
		a.data = make([]byte, 0, cap(a.slab))
	}
	if cap(a.marks) < nSegs {
		a.marks = make([]streamMark, 0, nSegs)
	}
	if cap(dst)-len(dst) < nFlows {
		grown := make([]*Stream, len(dst), len(dst)+nFlows)
		copy(grown, dst)
		dst = grown
	}
	a.streams = a.streams[:0]
	a.data = a.data[:0]
	a.marks = a.marks[:0]

	for _, key := range a.order {
		st := a.flows[key]
		if len(st.segs) == 0 {
			continue
		}
		st.ensureSorted()

		a.streams = append(a.streams, Stream{Key: key, FirstSeen: st.tsFirst, LastSeen: st.tsLast})
		stream := &a.streams[len(a.streams)-1]
		dataStart := len(a.data)
		markStart := len(a.marks)
		nextSeq := st.segs[0].relSeq
		for i := range st.segs {
			seg := &st.segs[i]
			end := seg.relSeq + int64(seg.end-seg.off)
			if end <= nextSeq {
				continue // full retransmission
			}
			data := a.slab[seg.off:seg.end]
			if seg.relSeq < nextSeq {
				data = data[nextSeq-seg.relSeq:] // partial overlap
			}
			a.marks = append(a.marks, streamMark{offset: len(a.data) - dataStart, ts: seg.ts})
			a.data = append(a.data, data...)
			nextSeq = end
		}
		stream.Data = a.data[dataStart:len(a.data):len(a.data)]
		stream.marks = a.marks[markStart:len(a.marks):len(a.marks)]
		dst = append(dst, stream) //dynalint:ignore hotalloc capacity for every stream is ensured by the grow block above
	}
	return dst
}

// AssembleStreams is a convenience that decodes every packet (skipping
// non-TCP frames) and returns the reassembled streams. The backing
// Assembler is garbage-collected, never pooled, so the streams live as
// long as the caller keeps them.
func AssembleStreams(pkts []Packet) []*Stream {
	tb := capTrace.Load()
	var t0 time.Time
	if tb != nil {
		t0 = traceClock()
	}
	out := feedAll(NewAssembler(), pkts).Streams()
	if tb != nil {
		tb.t.ObserveStage(tb.stage, traceClock().Sub(t0).Seconds())
	}
	return out
}

// AssembleStreamsInto is the pooled counterpart of AssembleStreams: it
// draws an Assembler from the package pool, feeds every packet, and
// appends the reassembled streams to dst. The caller must Release the
// returned Assembler once it is done with the streams (they alias its
// arenas).
//
//dynalint:hotpath
func AssembleStreamsInto(dst []*Stream, pkts []Packet) ([]*Stream, *Assembler) {
	tb := capTrace.Load()
	var t0 time.Time
	if tb != nil {
		t0 = traceClock()
	}
	a := GetAssembler()
	out := feedAll(a, pkts).StreamsInto(dst)
	if tb != nil {
		tb.t.ObserveStage(tb.stage, traceClock().Sub(t0).Seconds())
	}
	return out, a
}

func feedAll(a *Assembler, pkts []Packet) *Assembler {
	var f Frame
	for i := range pkts {
		if err := DecodeFrameInto(&f, pkts[i].Data); err != nil {
			continue // non-IP/TCP frame: irrelevant to HTTP analytics
		}
		a.Feed(&f, pkts[i].Timestamp)
	}
	return a
}
