package pcap

import (
	"sort"
	"time"
)

// Stream is one direction of a reassembled TCP conversation: a contiguous
// byte stream plus enough timing information to attribute byte offsets back
// to capture timestamps.
type Stream struct {
	Key       FlowKey
	Data      []byte
	FirstSeen time.Time
	LastSeen  time.Time

	marks []streamMark
}

type streamMark struct {
	offset int
	ts     time.Time
}

// TimeAt returns the capture timestamp of the segment containing byte
// offset off, falling back to FirstSeen for out-of-range offsets.
func (s *Stream) TimeAt(off int) time.Time {
	if len(s.marks) == 0 {
		return s.FirstSeen
	}
	idx := sort.Search(len(s.marks), func(i int) bool { return s.marks[i].offset > off }) - 1
	if idx < 0 {
		idx = 0
	}
	return s.marks[idx].ts
}

// segment is a raw TCP payload pending reassembly.
type segment struct {
	relSeq  int64 // sequence relative to the ISN
	payload []byte
	ts      time.Time
}

type flowState struct {
	key    FlowKey
	isn    uint32
	sawISN bool
	segs   []segment
}

// Assembler reconstructs per-direction TCP byte streams from frames fed in
// capture order. It tolerates out-of-order delivery, retransmissions, and
// overlapping segments (first copy wins). It does not track TCP state
// machines beyond the ISN: synthetic and well-formed captures are the
// target, mirroring the paper's use of pre-recorded traces.
type Assembler struct {
	flows map[FlowKey]*flowState
	order []FlowKey // insertion order for deterministic output
}

// NewAssembler returns an empty Assembler.
func NewAssembler() *Assembler {
	return &Assembler{flows: make(map[FlowKey]*flowState)}
}

// Feed ingests one decoded frame with its capture timestamp.
func (a *Assembler) Feed(f *Frame, ts time.Time) {
	key := f.Key()
	st, ok := a.flows[key]
	if !ok {
		st = &flowState{key: key}
		a.flows[key] = st
		a.order = append(a.order, key)
	}
	if f.Flags&FlagSYN != 0 && !st.sawISN {
		st.isn = f.Seq + 1 // data begins after SYN consumes one sequence number
		st.sawISN = true
	}
	if len(f.Payload) == 0 {
		return
	}
	if !st.sawISN {
		// Mid-stream capture: treat the first data seq as the origin.
		st.isn = f.Seq
		st.sawISN = true
	}
	rel := int64(int32(f.Seq - st.isn)) // handles 32-bit wraparound locally
	payload := make([]byte, len(f.Payload))
	copy(payload, f.Payload)
	st.segs = append(st.segs, segment{relSeq: rel, payload: payload, ts: ts})
}

// Streams finalizes reassembly and returns one Stream per flow direction in
// first-seen order. Gaps in the sequence space are skipped (the stream
// continues at the next available segment), matching what offline forensic
// tooling does with lossy captures.
func (a *Assembler) Streams() []*Stream {
	out := make([]*Stream, 0, len(a.order))
	for _, key := range a.order {
		st := a.flows[key]
		if len(st.segs) == 0 {
			continue
		}
		segs := make([]segment, len(st.segs))
		copy(segs, st.segs)
		sort.SliceStable(segs, func(i, j int) bool { return segs[i].relSeq < segs[j].relSeq })

		stream := &Stream{Key: key, FirstSeen: segs[0].ts, LastSeen: segs[0].ts}
		var nextSeq int64 = segs[0].relSeq
		for _, seg := range segs {
			if seg.ts.Before(stream.FirstSeen) {
				stream.FirstSeen = seg.ts
			}
			if seg.ts.After(stream.LastSeen) {
				stream.LastSeen = seg.ts
			}
			end := seg.relSeq + int64(len(seg.payload))
			if end <= nextSeq {
				continue // full retransmission
			}
			data := seg.payload
			if seg.relSeq < nextSeq {
				data = data[nextSeq-seg.relSeq:] // partial overlap
			}
			stream.marks = append(stream.marks, streamMark{offset: len(stream.Data), ts: seg.ts})
			stream.Data = append(stream.Data, data...)
			nextSeq = end
		}
		out = append(out, stream)
	}
	return out
}

// AssembleStreams is a convenience that decodes every packet (skipping
// non-TCP frames) and returns the reassembled streams.
func AssembleStreams(pkts []Packet) []*Stream {
	a := NewAssembler()
	for _, p := range pkts {
		f, err := DecodeFrame(p.Data)
		if err != nil {
			continue // non-IPv4/TCP frame: irrelevant to HTTP analytics
		}
		a.Feed(f, p.Timestamp)
	}
	return a.Streams()
}
