package pcap

import (
	"bytes"
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
	"time"
)

// mkPackets encodes frames into capture packets spaced 1ms apart.
func mkPackets(t testing.TB, frames []*Frame) []Packet {
	t.Helper()
	pkts := make([]Packet, 0, len(frames))
	for i, f := range frames {
		data, err := EncodeFrame(f)
		if err != nil {
			t.Fatalf("encode frame %d: %v", i, err)
		}
		pkts = append(pkts, Packet{Timestamp: baseTime.Add(time.Duration(i) * time.Millisecond), Data: data})
	}
	return pkts
}

// retransmissionHeavyFrames builds a capture where over half the data
// frames are exact or contained retransmissions of earlier segments.
func retransmissionHeavyFrames() []*Frame {
	frames := []*Frame{mkDataFrame(100, "", true)}
	payload := "0123456789abcdefghij" // 20 bytes at rel 0..20
	frames = append(frames,
		mkDataFrame(101, payload[:10], false),  // [0,10)
		mkDataFrame(101, payload[:10], false),  // exact retransmit: duplicate
		mkDataFrame(103, "XXXX", false),        // [2,6): contained, first copy must win
		mkDataFrame(111, payload[10:], false),  // [10,20)
		mkDataFrame(111, payload[10:], false),  // exact retransmit: duplicate
		mkDataFrame(105, payload[4:16], false), // [4,16): spans two segments, NOT droppable
		mkDataFrame(106, "YY", false),          // [5,7): contained in [0,10)
	)
	return frames
}

// TestFeedDropsDuplicateSegments is the regression test for the feed-time
// memory bug: retransmitted payloads fully contained in a single earlier
// segment must be dropped at Feed rather than retained in flowState.segs
// until Streams. Before the fix every duplicate stayed alive (8 data
// frames -> 8 segments); now only the 3 distinct-contribution segments
// survive, and the reassembled bytes still honor first-copy-wins.
func TestFeedDropsDuplicateSegments(t *testing.T) {
	a := NewAssembler()
	for i, f := range retransmissionHeavyFrames() {
		a.Feed(f, baseTime.Add(time.Duration(i)*time.Millisecond))
	}
	st := a.flows[a.order[0]]
	if got, want := len(st.segs), 3; got != want {
		t.Fatalf("retained segments = %d, want %d (duplicates must be dropped at feed time)", got, want)
	}
	streams := a.Streams()
	if len(streams) != 1 {
		t.Fatalf("streams = %d, want 1", len(streams))
	}
	if got := string(streams[0].Data); got != "0123456789abcdefghij" {
		t.Fatalf("data = %q, want first-copy-wins reassembly %q", got, "0123456789abcdefghij")
	}
	// The timestamp envelope still covers dropped duplicates: the last
	// data frame fed (a dropped duplicate at +7ms) defines LastSeen.
	if want := baseTime.Add(7 * time.Millisecond); !streams[0].LastSeen.Equal(want) {
		t.Fatalf("LastSeen = %v, want %v (dropped duplicates still advance the envelope)", streams[0].LastSeen, want)
	}
}

// TestUnionCoveredSegmentKept pins the subtle half of the duplicate rule:
// a segment covered only by the *union* of earlier segments can still
// contribute bytes, so only single-segment containment may drop.
func TestUnionCoveredSegmentKept(t *testing.T) {
	a := NewAssembler()
	a.Feed(mkDataFrame(100, "", true), baseTime)
	a.Feed(mkDataFrame(101, "AAAAA", false), baseTime)      // [0,5)
	a.Feed(mkDataFrame(111, "CCCCC", false), baseTime)      // [10,15)
	a.Feed(mkDataFrame(104, "BBBBBBBBBB", false), baseTime) // [3,13): union-covered at the edges, contributes [5,10)
	streams := a.Streams()
	if got := string(streams[0].Data); got != "AAAAABBBBBBBBCC" {
		t.Fatalf("data = %q, want %q", got, "AAAAABBBBBBBBCC")
	}
}

// TestAssembleStreamsIntoMatchesAssembleStreams differentially checks the
// pooled path against the GC-owned path on randomized retransmission-heavy
// captures: same keys, bytes, timestamp envelopes, and TimeAt attribution.
func TestAssembleStreamsIntoMatchesAssembleStreams(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(3000)
		orig := make([]byte, n)
		r.Read(orig)
		var frames []*Frame
		frames = append(frames, mkDataFrame(100, "", true))
		for off := 0; off < n; {
			l := 1 + r.Intn(400)
			if off+l > n {
				l = n - off
			}
			frames = append(frames, mkDataFrame(101+uint32(off), string(orig[off:off+l]), false))
			off += l
		}
		for i, n0 := 0, len(frames); i < n0; i++ { // heavy duplication
			frames = append(frames, frames[r.Intn(n0)])
		}
		r.Shuffle(len(frames), func(i, j int) { frames[i], frames[j] = frames[j], frames[i] })
		pkts := mkPackets(t, frames)

		want := AssembleStreams(pkts)
		got, asm := AssembleStreamsInto(nil, pkts)
		defer asm.Release()
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			g, w := got[i], want[i]
			if g.Key != w.Key || !bytes.Equal(g.Data, w.Data) ||
				!g.FirstSeen.Equal(w.FirstSeen) || !g.LastSeen.Equal(w.LastSeen) {
				return false
			}
			for off := 0; off < len(g.Data); off += 97 {
				if !g.TimeAt(off).Equal(w.TimeAt(off)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestAssemblerReleaseReuse feeds two different captures through the same
// pooled assembler and checks the second result carries no residue of the
// first.
func TestAssemblerReleaseReuse(t *testing.T) {
	a := GetAssembler()
	a.Feed(mkDataFrame(100, "", true), baseTime)
	a.Feed(mkDataFrame(101, "first capture", false), baseTime)
	if got := string(a.Streams()[0].Data); got != "first capture" {
		t.Fatalf("first use: data = %q", got)
	}
	a.Reset()

	f := mkDataFrame(201, "second", false)
	f.SrcIP = netip.MustParseAddr("192.0.2.9")
	a.Feed(f, baseTime.Add(time.Hour))
	streams := a.Streams()
	if len(streams) != 1 {
		t.Fatalf("after reset: streams = %d, want 1", len(streams))
	}
	if got := string(streams[0].Data); got != "second" {
		t.Fatalf("after reset: data = %q", got)
	}
	if streams[0].Key.SrcIP != netip.MustParseAddr("192.0.2.9") {
		t.Fatalf("after reset: key = %+v", streams[0].Key)
	}
	if !streams[0].FirstSeen.Equal(baseTime.Add(time.Hour)) {
		t.Fatalf("after reset: FirstSeen = %v", streams[0].FirstSeen)
	}
	a.Release()
}

// TestPooledReassemblyAllocs pins the steady-state zero-alloc contract of
// the pooled reassembly path: once the pooled assembler's arenas are warm,
// decoding + feeding + stream carving for a whole capture (including
// out-of-order and duplicate segments) allocates nothing.
func TestPooledReassemblyAllocs(t *testing.T) {
	frames := retransmissionHeavyFrames()
	// Out-of-order tail exercises the in-place insertion sort.
	frames = append(frames, mkDataFrame(131, "tail", false), mkDataFrame(121, "0123456789", false))
	pkts := mkPackets(t, frames)

	var dst []*Stream
	run := func() {
		streams, asm := AssembleStreamsInto(dst[:0], pkts)
		dst = streams[:0]
		if len(streams) != 1 || len(streams[0].Data) == 0 {
			panic("pooled reassembly produced wrong streams")
		}
		asm.Release()
	}
	run() // warm the pool and arenas
	if allocs := testing.AllocsPerRun(200, run); allocs != 0 {
		t.Fatalf("pooled reassembly allocates %.1f times per capture in steady state, want 0", allocs)
	}
}

func BenchmarkAssembleStreams(b *testing.B) {
	pkts := benchCapture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		streams := AssembleStreams(pkts)
		if len(streams) == 0 {
			b.Fatal("no streams")
		}
	}
}

func BenchmarkAssembleStreamsPooled(b *testing.B) {
	pkts := benchCapture(b)
	var dst []*Stream
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		streams, asm := AssembleStreamsInto(dst[:0], pkts)
		if len(streams) == 0 {
			b.Fatal("no streams")
		}
		dst = streams[:0]
		asm.Release()
	}
}

func benchCapture(tb testing.TB) []Packet {
	r := rand.New(rand.NewSource(42))
	var frames []*Frame
	for conn := 0; conn < 8; conn++ {
		base := &Frame{
			SrcIP:   netip.MustParseAddr("10.0.0.1"),
			DstIP:   netip.MustParseAddr("10.0.0.2"),
			SrcPort: uint16(40000 + conn),
			DstPort: 80,
			Seq:     100,
			Flags:   FlagSYN,
		}
		frames = append(frames, base)
		for off := 0; off < 32<<10; off += 1024 {
			buf := make([]byte, 1024)
			r.Read(buf)
			f := *base
			f.Flags = FlagACK
			f.Seq = 101 + uint32(off)
			f.Payload = buf
			frames = append(frames, &f)
			if r.Intn(4) == 0 { // sprinkle retransmissions
				frames = append(frames, &f)
			}
		}
	}
	return mkPackets(tb, frames)
}
