package pcap

import (
	"bytes"
	"encoding/binary"
	"testing"
	"time"
)

func TestNGWriterReaderRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewNGWriter(&buf)
	pkts := []Packet{
		{Timestamp: baseTime, Data: []byte{1, 2, 3, 4, 5}}, // needs padding
		{Timestamp: baseTime.Add(1500 * time.Microsecond), Data: bytes.Repeat([]byte{0xee}, 64)},
	}
	for _, p := range pkts {
		if err := w.WritePacket(p); err != nil {
			t.Fatal(err)
		}
	}
	ng, err := NewNGReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range pkts {
		got, err := ng.Next()
		if err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
		if !bytes.Equal(got.Data, want.Data) {
			t.Fatalf("packet %d data mismatch", i)
		}
		if !got.Timestamp.Equal(want.Timestamp) {
			t.Fatalf("packet %d ts = %v, want %v", i, got.Timestamp, want.Timestamp)
		}
	}
	if _, err := ng.Next(); err == nil {
		t.Fatal("expected EOF")
	}
}

func TestNGReaderRejectsClassic(t *testing.T) {
	var buf bytes.Buffer
	cw := NewWriter(&buf)
	if err := cw.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := NewNGReader(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("classic pcap must be rejected by the NG reader")
	}
}

func TestReadAllAutoBothFormats(t *testing.T) {
	payload := []byte{9, 9, 9, 9}

	var classic bytes.Buffer
	cw := NewWriter(&classic)
	if err := cw.WritePacket(Packet{Timestamp: baseTime, Data: payload}); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAllAuto(bytes.NewReader(classic.Bytes()))
	if err != nil || len(got) != 1 || !bytes.Equal(got[0].Data, payload) {
		t.Fatalf("classic auto-read: %v %v", got, err)
	}

	var ng bytes.Buffer
	nw := NewNGWriter(&ng)
	if err := nw.WritePacket(Packet{Timestamp: baseTime, Data: payload}); err != nil {
		t.Fatal(err)
	}
	got, err = ReadAllAuto(bytes.NewReader(ng.Bytes()))
	if err != nil || len(got) != 1 || !bytes.Equal(got[0].Data, payload) {
		t.Fatalf("pcapng auto-read: %v %v", got, err)
	}
}

// appendBlock writes a raw little-endian pcapng block.
func appendBlock(buf *bytes.Buffer, blockType uint32, body []byte) {
	pad := (4 - len(body)%4) % 4
	total := uint32(12 + len(body) + pad)
	var head [8]byte
	binary.LittleEndian.PutUint32(head[0:], blockType)
	binary.LittleEndian.PutUint32(head[4:], total)
	buf.Write(head[:])
	buf.Write(body)
	buf.Write(make([]byte, pad))
	var trail [4]byte
	binary.LittleEndian.PutUint32(trail[:], total)
	buf.Write(trail[:])
}

func TestNGReaderSkipsUnknownBlocks(t *testing.T) {
	var buf bytes.Buffer
	w := NewNGWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	// Unknown/statistics block between header and packet.
	appendBlock(&buf, 0x00000005, make([]byte, 16))
	if err := w.WritePacket(Packet{Timestamp: baseTime, Data: []byte{7, 7}}); err != nil {
		t.Fatal(err)
	}
	pkts, err := ReadAllAuto(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) != 1 || !bytes.Equal(pkts[0].Data, []byte{7, 7}) {
		t.Fatalf("pkts = %v", pkts)
	}
}

func TestNGReaderSimplePacketBlock(t *testing.T) {
	var buf bytes.Buffer
	w := NewNGWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 4+6)
	binary.LittleEndian.PutUint32(body[0:], 6)
	copy(body[4:], []byte{1, 2, 3, 4, 5, 6})
	appendBlock(&buf, blockSPB, body)
	pkts, err := ReadAllAuto(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) != 1 || len(pkts[0].Data) != 6 {
		t.Fatalf("spb pkts = %v", pkts)
	}
}

func TestNGReaderTsResol(t *testing.T) {
	// Build a capture with if_tsresol = 3 (millisecond ticks).
	var buf bytes.Buffer
	shb := make([]byte, 16)
	binary.LittleEndian.PutUint32(shb[0:], byteOrderMagic)
	binary.LittleEndian.PutUint16(shb[4:], 1)
	for i := 8; i < 16; i++ {
		shb[i] = 0xff // unspecified section length
	}
	appendBlock(&buf, blockSHB, shb)

	idb := make([]byte, 8+8)
	binary.LittleEndian.PutUint16(idb[0:], LinkTypeEthernet)
	binary.LittleEndian.PutUint32(idb[4:], defaultSnapLen)
	// Option: if_tsresol(9), length 1, value 3, padded; then end-of-options.
	binary.LittleEndian.PutUint16(idb[8:], optTsResol)
	binary.LittleEndian.PutUint16(idb[10:], 1)
	idb[12] = 3
	appendBlock(&buf, blockIDB, idb)

	ts := baseTime.Truncate(time.Millisecond)
	ticks := uint64(ts.UnixMilli())
	epb := make([]byte, 20+4)
	binary.LittleEndian.PutUint32(epb[4:], uint32(ticks>>32))
	binary.LittleEndian.PutUint32(epb[8:], uint32(ticks))
	binary.LittleEndian.PutUint32(epb[12:], 4)
	binary.LittleEndian.PutUint32(epb[16:], 4)
	copy(epb[20:], []byte{1, 2, 3, 4})
	appendBlock(&buf, blockEPB, epb)

	pkts, err := ReadAllAuto(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) != 1 {
		t.Fatalf("pkts = %d", len(pkts))
	}
	if !pkts[0].Timestamp.Equal(ts) {
		t.Fatalf("ts = %v, want %v", pkts[0].Timestamp, ts)
	}
}

func TestTsResolUnit(t *testing.T) {
	cases := map[byte]time.Duration{
		0:    time.Second,
		3:    time.Millisecond,
		6:    time.Microsecond,
		9:    time.Nanosecond,
		0x80: time.Second,
	}
	for v, want := range cases {
		if got := tsResolUnit(v); got != want {
			t.Errorf("tsResolUnit(%#x) = %v, want %v", v, got, want)
		}
	}
	// 2^-10 ticks: roughly a millisecond.
	if got := tsResolUnit(0x8a); got > time.Millisecond || got < 900*time.Microsecond {
		t.Errorf("tsResolUnit(0x8a) = %v", got)
	}
}

func TestNGReaderTruncated(t *testing.T) {
	var buf bytes.Buffer
	w := NewNGWriter(&buf)
	if err := w.WritePacket(Packet{Timestamp: baseTime, Data: []byte{1, 2, 3, 4}}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()[:buf.Len()-6]
	ng, err := NewNGReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ng.Next(); err == nil {
		t.Fatal("truncated capture must error")
	}
}
