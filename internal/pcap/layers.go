package pcap

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// Protocol numbers and header constants.
const (
	etherTypeIPv4 = 0x0800
	etherTypeIPv6 = 0x86DD
	protoTCP      = 6

	ethernetHeaderLen = 14
	ipv4HeaderLen     = 20
	ipv6HeaderLen     = 40
	tcpHeaderLen      = 20
)

// IPv6 extension headers that may precede the transport header.
var ipv6ExtensionHeaders = map[byte]bool{
	0:  true, // hop-by-hop
	43: true, // routing
	60: true, // destination options
}

// TCP flag bits.
const (
	FlagFIN = 1 << iota
	FlagSYN
	FlagRST
	FlagPSH
	FlagACK
)

// Frame is a decoded Ethernet/IPv4/TCP frame.
type Frame struct {
	SrcMAC  [6]byte
	DstMAC  [6]byte
	SrcIP   netip.Addr
	DstIP   netip.Addr
	SrcPort uint16
	DstPort uint16
	Seq     uint32
	Ack     uint32
	Flags   uint8
	Payload []byte
}

// FlowKey identifies one direction of a TCP conversation.
type FlowKey struct {
	SrcIP   netip.Addr
	DstIP   netip.Addr
	SrcPort uint16
	DstPort uint16
}

// Reverse returns the key of the opposite direction.
func (k FlowKey) Reverse() FlowKey {
	return FlowKey{SrcIP: k.DstIP, DstIP: k.SrcIP, SrcPort: k.DstPort, DstPort: k.SrcPort}
}

// String renders the flow as "src:port->dst:port".
func (k FlowKey) String() string {
	return fmt.Sprintf("%s:%d->%s:%d", k.SrcIP, k.SrcPort, k.DstIP, k.DstPort)
}

// Key returns the flow key of the frame's direction.
func (f *Frame) Key() FlowKey {
	return FlowKey{SrcIP: f.SrcIP, DstIP: f.DstIP, SrcPort: f.SrcPort, DstPort: f.DstPort}
}

// ipChecksum computes the ones-complement checksum over hdr.
func ipChecksum(hdr []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(hdr); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(hdr[i:]))
	}
	if len(hdr)%2 == 1 {
		sum += uint32(hdr[len(hdr)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}

// EncodeFrame serializes f into Ethernet/IP/TCP wire bytes. IPv4 and IPv6
// source/destination pairs are supported (mixed families are not). The
// IPv4 header checksum is computed; the TCP checksum is computed over the
// standard pseudo-header.
func EncodeFrame(f *Frame) ([]byte, error) {
	if f.SrcIP.Is6() && !f.SrcIP.Is4In6() {
		return encodeFrame6(f)
	}
	if !f.SrcIP.Is4() || !f.DstIP.Is4() {
		return nil, fmt.Errorf("pcap: encode requires same-family addresses, got %s -> %s", f.SrcIP, f.DstIP)
	}
	total := ethernetHeaderLen + ipv4HeaderLen + tcpHeaderLen + len(f.Payload)
	buf := make([]byte, total)

	// Ethernet.
	copy(buf[0:6], f.DstMAC[:])
	copy(buf[6:12], f.SrcMAC[:])
	binary.BigEndian.PutUint16(buf[12:], etherTypeIPv4)

	// IPv4.
	ip := buf[ethernetHeaderLen:]
	ip[0] = 0x45 // version 4, IHL 5
	ipLen := ipv4HeaderLen + tcpHeaderLen + len(f.Payload)
	binary.BigEndian.PutUint16(ip[2:], uint16(ipLen))
	ip[8] = 64 // TTL
	ip[9] = protoTCP
	src4 := f.SrcIP.As4()
	dst4 := f.DstIP.As4()
	copy(ip[12:16], src4[:])
	copy(ip[16:20], dst4[:])
	binary.BigEndian.PutUint16(ip[10:], ipChecksum(ip[:ipv4HeaderLen]))

	// TCP.
	tcp := ip[ipv4HeaderLen:]
	binary.BigEndian.PutUint16(tcp[0:], f.SrcPort)
	binary.BigEndian.PutUint16(tcp[2:], f.DstPort)
	binary.BigEndian.PutUint32(tcp[4:], f.Seq)
	binary.BigEndian.PutUint32(tcp[8:], f.Ack)
	tcp[12] = (tcpHeaderLen / 4) << 4 // data offset
	tcp[13] = f.Flags
	binary.BigEndian.PutUint16(tcp[14:], 65535) // window
	copy(tcp[tcpHeaderLen:], f.Payload)

	// TCP checksum over pseudo-header + segment.
	pseudo := make([]byte, 12+tcpHeaderLen+len(f.Payload))
	copy(pseudo[0:4], src4[:])
	copy(pseudo[4:8], dst4[:])
	pseudo[9] = protoTCP
	binary.BigEndian.PutUint16(pseudo[10:], uint16(tcpHeaderLen+len(f.Payload)))
	copy(pseudo[12:], tcp[:tcpHeaderLen+len(f.Payload)])
	binary.BigEndian.PutUint16(tcp[16:], ipChecksum(pseudo))

	return buf, nil
}

// encodeFrame6 serializes an IPv6/TCP frame.
func encodeFrame6(f *Frame) ([]byte, error) {
	if !f.SrcIP.Is6() || !f.DstIP.Is6() || f.DstIP.Is4In6() {
		return nil, fmt.Errorf("pcap: encode requires same-family addresses, got %s -> %s", f.SrcIP, f.DstIP)
	}
	total := ethernetHeaderLen + ipv6HeaderLen + tcpHeaderLen + len(f.Payload)
	buf := make([]byte, total)
	copy(buf[0:6], f.DstMAC[:])
	copy(buf[6:12], f.SrcMAC[:])
	binary.BigEndian.PutUint16(buf[12:], etherTypeIPv6)

	ip := buf[ethernetHeaderLen:]
	ip[0] = 6 << 4
	binary.BigEndian.PutUint16(ip[4:], uint16(tcpHeaderLen+len(f.Payload)))
	ip[6] = protoTCP
	ip[7] = 64 // hop limit
	src16 := f.SrcIP.As16()
	dst16 := f.DstIP.As16()
	copy(ip[8:24], src16[:])
	copy(ip[24:40], dst16[:])

	tcp := ip[ipv6HeaderLen:]
	binary.BigEndian.PutUint16(tcp[0:], f.SrcPort)
	binary.BigEndian.PutUint16(tcp[2:], f.DstPort)
	binary.BigEndian.PutUint32(tcp[4:], f.Seq)
	binary.BigEndian.PutUint32(tcp[8:], f.Ack)
	tcp[12] = (tcpHeaderLen / 4) << 4
	tcp[13] = f.Flags
	binary.BigEndian.PutUint16(tcp[14:], 65535)
	copy(tcp[tcpHeaderLen:], f.Payload)

	// TCP checksum over the IPv6 pseudo-header.
	pseudo := make([]byte, 40+tcpHeaderLen+len(f.Payload))
	copy(pseudo[0:16], src16[:])
	copy(pseudo[16:32], dst16[:])
	binary.BigEndian.PutUint32(pseudo[32:], uint32(tcpHeaderLen+len(f.Payload)))
	pseudo[39] = protoTCP
	copy(pseudo[40:], tcp[:tcpHeaderLen+len(f.Payload)])
	binary.BigEndian.PutUint16(tcp[16:], ipChecksum(pseudo))
	return buf, nil
}

// DecodeFrame parses Ethernet/IP/TCP wire bytes (IPv4 or IPv6). Frames
// that do not carry TCP over IP over Ethernet yield an error; callers
// typically skip them. The returned payload aliases data.
func DecodeFrame(data []byte) (*Frame, error) {
	f := &Frame{}
	if err := DecodeFrameInto(f, data); err != nil {
		return nil, err
	}
	return f, nil
}

// DecodeFrameInto is the allocation-free form of DecodeFrame: it resets f
// and parses the wire bytes into it, so a caller can reuse one Frame across
// a whole capture. The decoded payload aliases data.
func DecodeFrameInto(f *Frame, data []byte) error {
	*f = Frame{}
	if len(data) < ethernetHeaderLen+ipv4HeaderLen+tcpHeaderLen {
		return fmt.Errorf("pcap: frame too short (%d bytes)", len(data))
	}
	copy(f.DstMAC[:], data[0:6])
	copy(f.SrcMAC[:], data[6:12])
	switch binary.BigEndian.Uint16(data[12:]) {
	case etherTypeIPv4:
	case etherTypeIPv6:
		_, err := decodeFrame6(f, data[ethernetHeaderLen:])
		return err
	default:
		return fmt.Errorf("pcap: not IP (ethertype %#x)", binary.BigEndian.Uint16(data[12:]))
	}
	ip := data[ethernetHeaderLen:]
	ihl := int(ip[0]&0x0f) * 4
	if ip[0]>>4 != 4 || ihl < ipv4HeaderLen || len(ip) < ihl {
		return fmt.Errorf("pcap: bad IPv4 header")
	}
	if ip[9] != protoTCP {
		return fmt.Errorf("pcap: not TCP (proto %d)", ip[9])
	}
	ipLen := int(binary.BigEndian.Uint16(ip[2:]))
	if ipLen > len(ip) || ipLen < ihl+tcpHeaderLen {
		return fmt.Errorf("pcap: bad IPv4 total length %d", ipLen)
	}
	f.SrcIP = netip.AddrFrom4([4]byte(ip[12:16]))
	f.DstIP = netip.AddrFrom4([4]byte(ip[16:20]))

	tcp := ip[ihl:ipLen]
	if len(tcp) < tcpHeaderLen {
		return fmt.Errorf("pcap: truncated TCP header")
	}
	dataOff := int(tcp[12]>>4) * 4
	if dataOff < tcpHeaderLen || dataOff > len(tcp) {
		return fmt.Errorf("pcap: bad TCP data offset %d", dataOff)
	}
	f.SrcPort = binary.BigEndian.Uint16(tcp[0:])
	f.DstPort = binary.BigEndian.Uint16(tcp[2:])
	f.Seq = binary.BigEndian.Uint32(tcp[4:])
	f.Ack = binary.BigEndian.Uint32(tcp[8:])
	f.Flags = tcp[13]
	f.Payload = tcp[dataOff:]
	return nil
}

// decodeFrame6 parses the IPv6 portion of a frame, walking any leading
// extension headers to the TCP segment.
func decodeFrame6(f *Frame, ip []byte) (*Frame, error) {
	if len(ip) < ipv6HeaderLen {
		return nil, fmt.Errorf("pcap: truncated IPv6 header")
	}
	if ip[0]>>4 != 6 {
		return nil, fmt.Errorf("pcap: bad IPv6 version")
	}
	payloadLen := int(binary.BigEndian.Uint16(ip[4:]))
	f.SrcIP = netip.AddrFrom16([16]byte(ip[8:24]))
	f.DstIP = netip.AddrFrom16([16]byte(ip[24:40]))

	next := ip[6]
	rest := ip[ipv6HeaderLen:]
	if payloadLen <= len(rest) {
		rest = rest[:payloadLen]
	}
	for ipv6ExtensionHeaders[next] {
		if len(rest) < 8 {
			return nil, fmt.Errorf("pcap: truncated IPv6 extension header")
		}
		next = rest[0]
		extLen := 8 + int(rest[1])*8
		if extLen > len(rest) {
			return nil, fmt.Errorf("pcap: IPv6 extension header overruns packet")
		}
		rest = rest[extLen:]
	}
	if next != protoTCP {
		return nil, fmt.Errorf("pcap: not TCP (next header %d)", next)
	}
	tcp := rest
	if len(tcp) < tcpHeaderLen {
		return nil, fmt.Errorf("pcap: truncated TCP header")
	}
	dataOff := int(tcp[12]>>4) * 4
	if dataOff < tcpHeaderLen || dataOff > len(tcp) {
		return nil, fmt.Errorf("pcap: bad TCP data offset %d", dataOff)
	}
	f.SrcPort = binary.BigEndian.Uint16(tcp[0:])
	f.DstPort = binary.BigEndian.Uint16(tcp[2:])
	f.Seq = binary.BigEndian.Uint32(tcp[4:])
	f.Ack = binary.BigEndian.Uint32(tcp[8:])
	f.Flags = tcp[13]
	f.Payload = tcp[dataOff:]
	return f, nil
}
