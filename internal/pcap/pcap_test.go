package pcap

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
	"time"
)

var baseTime = time.Date(2016, 7, 10, 14, 0, 0, 0, time.UTC)

func TestWriterReaderRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	pkts := []Packet{
		{Timestamp: baseTime, Data: bytes.Repeat([]byte{0xaa}, 60)},
		{Timestamp: baseTime.Add(1500 * time.Microsecond), Data: []byte{1, 2, 3}},
	}
	for _, p := range pkts {
		if err := w.WritePacket(p); err != nil {
			t.Fatal(err)
		}
	}
	got, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(pkts) {
		t.Fatalf("read %d packets, want %d", len(got), len(pkts))
	}
	for i := range pkts {
		if !got[i].Timestamp.Equal(pkts[i].Timestamp) {
			t.Errorf("packet %d ts = %v, want %v", i, got[i].Timestamp, pkts[i].Timestamp)
		}
		if !bytes.Equal(got[i].Data, pkts[i].Data) {
			t.Errorf("packet %d data mismatch", i)
		}
	}
}

func TestReaderBigEndian(t *testing.T) {
	// Hand-build a big-endian capture with one 4-byte packet.
	var buf bytes.Buffer
	hdr := make([]byte, 24)
	binary.BigEndian.PutUint32(hdr[0:], magicLE) // stored BE => reader sees swapped magic
	binary.BigEndian.PutUint16(hdr[4:], 2)
	binary.BigEndian.PutUint16(hdr[6:], 4)
	binary.BigEndian.PutUint32(hdr[16:], defaultSnapLen)
	binary.BigEndian.PutUint32(hdr[20:], LinkTypeEthernet)
	buf.Write(hdr)
	rec := make([]byte, 16)
	binary.BigEndian.PutUint32(rec[0:], uint32(baseTime.Unix()))
	binary.BigEndian.PutUint32(rec[4:], 250)
	binary.BigEndian.PutUint32(rec[8:], 4)
	binary.BigEndian.PutUint32(rec[12:], 4)
	buf.Write(rec)
	buf.Write([]byte{9, 8, 7, 6})

	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !bytes.Equal(got[0].Data, []byte{9, 8, 7, 6}) {
		t.Fatalf("big-endian read wrong: %+v", got)
	}
	if got[0].Timestamp.Nanosecond() != 250000 {
		t.Fatalf("usec decode wrong: %v", got[0].Timestamp)
	}
}

func TestReaderBadMagic(t *testing.T) {
	_, err := NewReader(bytes.NewReader(make([]byte, 24)))
	if !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestReaderTruncated(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WritePacket(Packet{Timestamp: baseTime, Data: []byte{1, 2, 3, 4}}); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-2]
	_, err := ReadAll(bytes.NewReader(trunc))
	if err == nil {
		t.Fatal("expected error for truncated capture")
	}
}

func TestEmptyCaptureFlush(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty capture returned %d packets", len(got))
	}
}

func TestFrameEncodeDecodeRoundTrip(t *testing.T) {
	f := &Frame{
		SrcMAC:  [6]byte{2, 0, 0, 0, 0, 1},
		DstMAC:  [6]byte{2, 0, 0, 0, 0, 2},
		SrcIP:   netip.MustParseAddr("10.0.0.5"),
		DstIP:   netip.MustParseAddr("93.184.216.34"),
		SrcPort: 49152,
		DstPort: 80,
		Seq:     12345,
		Ack:     67890,
		Flags:   FlagACK | FlagPSH,
		Payload: []byte("GET / HTTP/1.1\r\nHost: example.com\r\n\r\n"),
	}
	data, err := EncodeFrame(f)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeFrame(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.SrcIP != f.SrcIP || got.DstIP != f.DstIP {
		t.Fatalf("IPs: %v->%v, want %v->%v", got.SrcIP, got.DstIP, f.SrcIP, f.DstIP)
	}
	if got.SrcPort != f.SrcPort || got.DstPort != f.DstPort {
		t.Fatalf("ports wrong: %d->%d", got.SrcPort, got.DstPort)
	}
	if got.Seq != f.Seq || got.Ack != f.Ack || got.Flags != f.Flags {
		t.Fatalf("tcp fields wrong: seq=%d ack=%d flags=%d", got.Seq, got.Ack, got.Flags)
	}
	if !bytes.Equal(got.Payload, f.Payload) {
		t.Fatalf("payload mismatch: %q", got.Payload)
	}
}

func TestEncodeFrameRejectsIPv6(t *testing.T) {
	f := &Frame{SrcIP: netip.MustParseAddr("::1"), DstIP: netip.MustParseAddr("10.0.0.1")}
	if _, err := EncodeFrame(f); err == nil {
		t.Fatal("expected error for IPv6 source")
	}
}

func TestDecodeFrameErrors(t *testing.T) {
	if _, err := DecodeFrame([]byte{1, 2, 3}); err == nil {
		t.Fatal("short frame must error")
	}
	// Valid frame but with UDP protocol.
	f := &Frame{
		SrcIP: netip.MustParseAddr("10.0.0.1"),
		DstIP: netip.MustParseAddr("10.0.0.2"),
	}
	data, err := EncodeFrame(f)
	if err != nil {
		t.Fatal(err)
	}
	data[ethernetHeaderLen+9] = 17 // UDP
	if _, err := DecodeFrame(data); err == nil {
		t.Fatal("non-TCP frame must error")
	}
	// Wrong ethertype.
	data2, _ := EncodeFrame(f)
	data2[12], data2[13] = 0x86, 0xdd
	if _, err := DecodeFrame(data2); err == nil {
		t.Fatal("non-IPv4 ethertype must error")
	}
}

func TestIPChecksum(t *testing.T) {
	// RFC 1071 example-style check: checksum of header including its own
	// checksum field must verify to zero.
	f := &Frame{
		SrcIP: netip.MustParseAddr("192.168.1.10"),
		DstIP: netip.MustParseAddr("8.8.8.8"),
	}
	data, err := EncodeFrame(f)
	if err != nil {
		t.Fatal(err)
	}
	ip := data[ethernetHeaderLen : ethernetHeaderLen+ipv4HeaderLen]
	if ipChecksum(ip) != 0 {
		t.Fatalf("IP checksum does not verify: %#x", ipChecksum(ip))
	}
}

func TestFlowKeyReverse(t *testing.T) {
	k := FlowKey{
		SrcIP:   netip.MustParseAddr("1.1.1.1"),
		DstIP:   netip.MustParseAddr("2.2.2.2"),
		SrcPort: 1000,
		DstPort: 80,
	}
	r := k.Reverse()
	if r.SrcIP != k.DstIP || r.DstPort != k.SrcPort {
		t.Fatalf("reverse wrong: %v", r)
	}
	if r.Reverse() != k {
		t.Fatal("double reverse must be identity")
	}
	if k.String() != "1.1.1.1:1000->2.2.2.2:80" {
		t.Fatalf("string = %q", k.String())
	}
}

func mkDataFrame(seq uint32, payload string, syn bool) *Frame {
	flags := uint8(FlagACK)
	if syn {
		flags = FlagSYN
	}
	return &Frame{
		SrcIP:   netip.MustParseAddr("10.0.0.1"),
		DstIP:   netip.MustParseAddr("10.0.0.2"),
		SrcPort: 1234,
		DstPort: 80,
		Seq:     seq,
		Flags:   flags,
		Payload: []byte(payload),
	}
}

func TestReassemblyInOrder(t *testing.T) {
	a := NewAssembler()
	a.Feed(mkDataFrame(100, "", true), baseTime)
	a.Feed(mkDataFrame(101, "hello ", false), baseTime.Add(time.Millisecond))
	a.Feed(mkDataFrame(107, "world", false), baseTime.Add(2*time.Millisecond))
	streams := a.Streams()
	if len(streams) != 1 {
		t.Fatalf("streams = %d, want 1", len(streams))
	}
	if string(streams[0].Data) != "hello world" {
		t.Fatalf("data = %q", streams[0].Data)
	}
	if !streams[0].FirstSeen.Equal(baseTime.Add(time.Millisecond)) {
		t.Fatalf("first seen = %v", streams[0].FirstSeen)
	}
}

func TestReassemblyOutOfOrderAndDup(t *testing.T) {
	a := NewAssembler()
	a.Feed(mkDataFrame(100, "", true), baseTime)
	a.Feed(mkDataFrame(107, "world", false), baseTime.Add(2*time.Millisecond))
	a.Feed(mkDataFrame(101, "hello ", false), baseTime.Add(3*time.Millisecond))
	a.Feed(mkDataFrame(101, "hello ", false), baseTime.Add(4*time.Millisecond)) // retransmit
	a.Feed(mkDataFrame(104, "lo wor", false), baseTime.Add(5*time.Millisecond)) // overlap
	streams := a.Streams()
	if len(streams) != 1 {
		t.Fatalf("streams = %d, want 1", len(streams))
	}
	if string(streams[0].Data) != "hello world" {
		t.Fatalf("data = %q, want %q", streams[0].Data, "hello world")
	}
}

func TestReassemblyMidStreamCapture(t *testing.T) {
	// No SYN observed: first data segment defines the origin.
	a := NewAssembler()
	a.Feed(mkDataFrame(5000, "abc", false), baseTime)
	a.Feed(mkDataFrame(5003, "def", false), baseTime.Add(time.Millisecond))
	streams := a.Streams()
	if len(streams) != 1 || string(streams[0].Data) != "abcdef" {
		t.Fatalf("mid-stream reassembly wrong: %+v", streams)
	}
}

func TestStreamTimeAt(t *testing.T) {
	a := NewAssembler()
	a.Feed(mkDataFrame(100, "", true), baseTime)
	a.Feed(mkDataFrame(101, "aaaa", false), baseTime.Add(time.Millisecond))
	a.Feed(mkDataFrame(105, "bbbb", false), baseTime.Add(5*time.Millisecond))
	s := a.Streams()[0]
	if got := s.TimeAt(0); !got.Equal(baseTime.Add(time.Millisecond)) {
		t.Fatalf("TimeAt(0) = %v", got)
	}
	if got := s.TimeAt(5); !got.Equal(baseTime.Add(5 * time.Millisecond)) {
		t.Fatalf("TimeAt(5) = %v", got)
	}
	if got := s.TimeAt(400); !got.Equal(baseTime.Add(5 * time.Millisecond)) {
		t.Fatalf("TimeAt(overrun) = %v", got)
	}
}

func TestBuildConversationRoundTrip(t *testing.T) {
	conv := Conversation{
		ClientIP:   netip.MustParseAddr("10.0.0.7"),
		ServerIP:   netip.MustParseAddr("203.0.113.9"),
		ClientPort: 50000,
		ServerPort: 80,
		Exchanges: []Exchange{
			{ClientToServer: true, Payload: []byte("GET /a HTTP/1.1\r\n\r\n"), Timestamp: baseTime},
			{ClientToServer: false, Payload: bytes.Repeat([]byte("X"), 5000), Timestamp: baseTime.Add(30 * time.Millisecond)},
			{ClientToServer: true, Payload: []byte("GET /b HTTP/1.1\r\n\r\n"), Timestamp: baseTime.Add(60 * time.Millisecond)},
		},
	}
	pkts, err := BuildConversation(conv)
	if err != nil {
		t.Fatal(err)
	}
	// 5000-byte payload must be split into multiple segments.
	if len(pkts) < 8 {
		t.Fatalf("too few packets: %d", len(pkts))
	}
	streams := AssembleStreams(pkts)
	if len(streams) != 2 {
		t.Fatalf("streams = %d, want 2", len(streams))
	}
	var c2s, s2c *Stream
	for _, s := range streams {
		if s.Key.DstPort == 80 {
			c2s = s
		} else {
			s2c = s
		}
	}
	if c2s == nil || s2c == nil {
		t.Fatal("missing direction")
	}
	if string(c2s.Data) != "GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n" {
		t.Fatalf("client stream = %q", c2s.Data)
	}
	if len(s2c.Data) != 5000 {
		t.Fatalf("server stream len = %d, want 5000", len(s2c.Data))
	}
}

func TestWriteConversationsMergesByTime(t *testing.T) {
	mk := func(port uint16, at time.Time) Conversation {
		return Conversation{
			ClientIP:   netip.MustParseAddr("10.0.0.7"),
			ServerIP:   netip.MustParseAddr("203.0.113.9"),
			ClientPort: port,
			ServerPort: 80,
			Exchanges: []Exchange{
				{ClientToServer: true, Payload: []byte("x"), Timestamp: at},
			},
		}
	}
	var buf bytes.Buffer
	err := WriteConversations(&buf, []Conversation{
		mk(50001, baseTime.Add(time.Second)),
		mk(50002, baseTime),
	})
	if err != nil {
		t.Fatal(err)
	}
	pkts, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pkts); i++ {
		if pkts[i].Timestamp.Before(pkts[i-1].Timestamp) {
			t.Fatalf("packets not time-ordered at %d", i)
		}
	}
}

func TestBuildConversationEmpty(t *testing.T) {
	if _, err := BuildConversation(Conversation{}); err == nil {
		t.Fatal("expected error for empty conversation")
	}
}

// Property: any payload split into random segments, fed in random order
// with random duplication, reassembles to the original.
func TestReassemblyProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(4000)
		orig := make([]byte, n)
		r.Read(orig)
		// Split into segments.
		type piece struct {
			off int
			buf []byte
		}
		var pieces []piece
		for off := 0; off < n; {
			l := 1 + r.Intn(600)
			if off+l > n {
				l = n - off
			}
			pieces = append(pieces, piece{off, orig[off : off+l]})
			off += l
		}
		// Duplicate some pieces.
		for i := 0; i < len(pieces)/3; i++ {
			pieces = append(pieces, pieces[r.Intn(len(pieces))])
		}
		r.Shuffle(len(pieces), func(i, j int) { pieces[i], pieces[j] = pieces[j], pieces[i] })
		a := NewAssembler()
		a.Feed(mkDataFrame(100, "", true), baseTime)
		for i, p := range pieces {
			fr := mkDataFrame(101+uint32(p.off), string(p.buf), false)
			a.Feed(fr, baseTime.Add(time.Duration(i)*time.Millisecond))
		}
		streams := a.Streams()
		return len(streams) == 1 && bytes.Equal(streams[0].Data, orig)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: pcap write/read round-trips arbitrary packet data.
func TestPcapRoundTripProperty(t *testing.T) {
	f := func(payloads [][]byte) bool {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		ts := baseTime
		for _, p := range payloads {
			if len(p) > defaultSnapLen {
				p = p[:defaultSnapLen]
			}
			if err := w.WritePacket(Packet{Timestamp: ts, Data: p}); err != nil {
				return false
			}
			ts = ts.Add(time.Millisecond)
		}
		if err := w.Flush(); err != nil {
			return false
		}
		got, err := ReadAll(bytes.NewReader(buf.Bytes()))
		if err != nil {
			return false
		}
		if len(got) != len(payloads) {
			return false
		}
		for i := range got {
			want := payloads[i]
			if len(want) > defaultSnapLen {
				want = want[:defaultSnapLen]
			}
			if !bytes.Equal(got[i].Data, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestIPv6FrameRoundTrip(t *testing.T) {
	f := &Frame{
		SrcIP:   netip.MustParseAddr("2001:db8::1"),
		DstIP:   netip.MustParseAddr("2001:db8::2"),
		SrcPort: 50000,
		DstPort: 80,
		Seq:     111,
		Ack:     222,
		Flags:   FlagACK | FlagPSH,
		Payload: []byte("GET /v6 HTTP/1.1\r\nHost: six.example\r\n\r\n"),
	}
	data, err := EncodeFrame(f)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeFrame(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.SrcIP != f.SrcIP || got.DstIP != f.DstIP {
		t.Fatalf("addrs: %v -> %v", got.SrcIP, got.DstIP)
	}
	if got.SrcPort != f.SrcPort || got.Seq != f.Seq || got.Flags != f.Flags {
		t.Fatalf("tcp fields wrong: %+v", got)
	}
	if !bytes.Equal(got.Payload, f.Payload) {
		t.Fatalf("payload = %q", got.Payload)
	}
}

func TestIPv6MixedFamilyRejected(t *testing.T) {
	f := &Frame{
		SrcIP: netip.MustParseAddr("2001:db8::1"),
		DstIP: netip.MustParseAddr("10.0.0.1"),
	}
	if _, err := EncodeFrame(f); err == nil {
		t.Fatal("mixed families must error")
	}
}

func TestIPv6ExtensionHeaderWalk(t *testing.T) {
	f := &Frame{
		SrcIP:   netip.MustParseAddr("2001:db8::10"),
		DstIP:   netip.MustParseAddr("2001:db8::20"),
		SrcPort: 1234,
		DstPort: 80,
		Payload: []byte("x"),
	}
	data, err := EncodeFrame(f)
	if err != nil {
		t.Fatal(err)
	}
	// Splice in a hop-by-hop extension header (8 bytes) before the TCP
	// segment: set next-header to 0 and insert ext header whose own
	// next-header is TCP.
	ip := data[ethernetHeaderLen:]
	ext := make([]byte, 8)
	ext[0] = protoTCP // next header after extension
	ext[1] = 0        // length: 8 bytes total
	spliced := append([]byte{}, data[:ethernetHeaderLen+ipv6HeaderLen]...)
	spliced = append(spliced, ext...)
	spliced = append(spliced, ip[ipv6HeaderLen:]...)
	spliced[ethernetHeaderLen+6] = 0 // hop-by-hop
	// Fix payload length (+8).
	plen := binary.BigEndian.Uint16(spliced[ethernetHeaderLen+4:])
	binary.BigEndian.PutUint16(spliced[ethernetHeaderLen+4:], plen+8)

	got, err := DecodeFrame(spliced)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Payload, []byte("x")) {
		t.Fatalf("payload = %q", got.Payload)
	}
}

func TestIPv6ReassemblyEndToEnd(t *testing.T) {
	// A full v6 conversation through the assembler.
	a := NewAssembler()
	mk := func(seq uint32, payload string, syn bool) *Frame {
		flags := uint8(FlagACK)
		if syn {
			flags = FlagSYN
		}
		return &Frame{
			SrcIP: netip.MustParseAddr("2001:db8::a"), DstIP: netip.MustParseAddr("2001:db8::b"),
			SrcPort: 40000, DstPort: 80, Seq: seq, Flags: flags, Payload: []byte(payload),
		}
	}
	a.Feed(mk(10, "", true), baseTime)
	a.Feed(mk(11, "hello-", false), baseTime.Add(time.Millisecond))
	a.Feed(mk(17, "v6", false), baseTime.Add(2*time.Millisecond))
	streams := a.Streams()
	if len(streams) != 1 || string(streams[0].Data) != "hello-v6" {
		t.Fatalf("v6 reassembly: %+v", streams)
	}
}
