package pcap

import (
	"fmt"
	"io"
	"net/netip"
	"time"
)

// Exchange is one application-level send within a TCP conversation.
type Exchange struct {
	ClientToServer bool
	Payload        []byte
	Timestamp      time.Time
}

// Conversation describes a full TCP conversation to synthesize: SYN
// handshake, a series of payload-bearing segments, and a FIN teardown.
type Conversation struct {
	ClientIP   netip.Addr
	ServerIP   netip.Addr
	ClientPort uint16
	ServerPort uint16
	Exchanges  []Exchange
}

// maxSegment is the synthetic MSS: payloads larger than this are split
// across several frames so reassembly is genuinely exercised.
const maxSegment = 1400

// BuildConversation renders the conversation into capture-ready packets:
// a three-way handshake, MSS-sized data segments with correct cumulative
// sequence/ack numbers, and a FIN from the client. Timestamps of control
// packets are derived from the surrounding exchanges.
func BuildConversation(c Conversation) ([]Packet, error) {
	if len(c.Exchanges) == 0 {
		return nil, fmt.Errorf("pcap: conversation has no exchanges")
	}
	clientMAC := [6]byte{0x02, 0x00, 0x00, 0x00, 0x00, 0x01}
	serverMAC := [6]byte{0x02, 0x00, 0x00, 0x00, 0x00, 0x02}

	var (
		pkts      []Packet
		clientSeq = uint32(1000)
		serverSeq = uint32(5000)
	)
	start := c.Exchanges[0].Timestamp

	emit := func(fromClient bool, flags uint8, payload []byte, ts time.Time) error {
		f := &Frame{Flags: flags, Payload: payload}
		if fromClient {
			f.SrcMAC, f.DstMAC = clientMAC, serverMAC
			f.SrcIP, f.DstIP = c.ClientIP, c.ServerIP
			f.SrcPort, f.DstPort = c.ClientPort, c.ServerPort
			f.Seq, f.Ack = clientSeq, serverSeq
		} else {
			f.SrcMAC, f.DstMAC = serverMAC, clientMAC
			f.SrcIP, f.DstIP = c.ServerIP, c.ClientIP
			f.SrcPort, f.DstPort = c.ServerPort, c.ClientPort
			f.Seq, f.Ack = serverSeq, clientSeq
		}
		data, err := EncodeFrame(f)
		if err != nil {
			return err
		}
		pkts = append(pkts, Packet{Timestamp: ts, Data: data})
		advance := uint32(len(payload))
		if flags&(FlagSYN|FlagFIN) != 0 {
			advance++
		}
		if fromClient {
			clientSeq += advance
		} else {
			serverSeq += advance
		}
		return nil
	}

	// Three-way handshake just before the first exchange.
	hsTime := start.Add(-3 * time.Millisecond)
	if err := emit(true, FlagSYN, nil, hsTime); err != nil {
		return nil, err
	}
	if err := emit(false, FlagSYN|FlagACK, nil, hsTime.Add(time.Millisecond)); err != nil {
		return nil, err
	}
	if err := emit(true, FlagACK, nil, hsTime.Add(2*time.Millisecond)); err != nil {
		return nil, err
	}

	last := start
	for _, ex := range c.Exchanges {
		payload := ex.Payload
		ts := ex.Timestamp
		for len(payload) > 0 {
			n := len(payload)
			if n > maxSegment {
				n = maxSegment
			}
			if err := emit(ex.ClientToServer, FlagACK|FlagPSH, payload[:n], ts); err != nil {
				return nil, err
			}
			payload = payload[n:]
			ts = ts.Add(200 * time.Microsecond)
		}
		if ts.After(last) {
			last = ts
		}
	}

	// Teardown.
	if err := emit(true, FlagFIN|FlagACK, nil, last.Add(time.Millisecond)); err != nil {
		return nil, err
	}
	if err := emit(false, FlagFIN|FlagACK, nil, last.Add(2*time.Millisecond)); err != nil {
		return nil, err
	}
	return pkts, nil
}

// WriteConversations renders every conversation, merges the packets in
// timestamp order, and writes a single pcap file to w.
func WriteConversations(w io.Writer, convs []Conversation) error {
	var all []Packet
	for i, c := range convs {
		pkts, err := BuildConversation(c)
		if err != nil {
			return fmt.Errorf("conversation %d: %w", i, err)
		}
		all = append(all, pkts...)
	}
	sortPacketsByTime(all)
	pw := NewWriter(w)
	for _, p := range all {
		if err := pw.WritePacket(p); err != nil {
			return err
		}
	}
	return pw.Flush()
}

func sortPacketsByTime(pkts []Packet) {
	// Stable insertion-friendly sort: captures are near-sorted already.
	for i := 1; i < len(pkts); i++ {
		for j := i; j > 0 && pkts[j].Timestamp.Before(pkts[j-1].Timestamp); j-- {
			pkts[j], pkts[j-1] = pkts[j-1], pkts[j]
		}
	}
}
