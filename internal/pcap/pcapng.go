package pcap

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"time"
)

// pcapng block types.
const (
	blockSHB = 0x0A0D0D0A // section header
	blockIDB = 0x00000001 // interface description
	blockSPB = 0x00000003 // simple packet
	blockEPB = 0x00000006 // enhanced packet

	byteOrderMagic = 0x1A2B3C4D
	optTsResol     = 9
	optEndOfOpts   = 0
)

// NGReader parses a pcapng capture: section header, interface description,
// and enhanced/simple packet blocks. Unknown block types are skipped, as
// the format prescribes. Multiple sections and interfaces are supported;
// only Ethernet interfaces yield packets.
type NGReader struct {
	r     *bufio.Reader
	order binary.ByteOrder
	// ifaces[i] describes interface i of the current section.
	ifaces []ngInterface
}

type ngInterface struct {
	linkType uint16
	tsUnit   time.Duration // duration of one timestamp tick
}

// NewNGReader validates the leading section header of r.
func NewNGReader(r io.Reader) (*NGReader, error) {
	ng := &NGReader{r: bufio.NewReader(r)}
	if err := ng.readSectionHeader(); err != nil {
		return nil, err
	}
	return ng, nil
}

func (ng *NGReader) readSectionHeader() error {
	var head [12]byte
	if _, err := io.ReadFull(ng.r, head[:]); err != nil {
		return fmt.Errorf("pcapng: read section header: %w", err)
	}
	if binary.LittleEndian.Uint32(head[0:]) != blockSHB {
		return ErrBadMagic
	}
	switch binary.LittleEndian.Uint32(head[8:]) {
	case byteOrderMagic:
		ng.order = binary.LittleEndian
	case 0x4D3C2B1A:
		ng.order = binary.BigEndian
	default:
		return fmt.Errorf("pcapng: bad byte-order magic")
	}
	totalLen := ng.order.Uint32(head[4:])
	if totalLen < 28 || totalLen%4 != 0 {
		return fmt.Errorf("pcapng: bad section header length %d", totalLen)
	}
	// Consume the remainder of the block (version, section length, options,
	// trailing length).
	if _, err := io.CopyN(io.Discard, ng.r, int64(totalLen-12)); err != nil {
		return fmt.Errorf("pcapng: section header body: %w", err)
	}
	ng.ifaces = ng.ifaces[:0]
	return nil
}

// parseIDB registers an interface from an IDB block body (without the
// leading type/length and trailing length).
func (ng *NGReader) parseIDB(body []byte) error {
	if len(body) < 8 {
		return fmt.Errorf("pcapng: short interface description")
	}
	iface := ngInterface{
		linkType: ng.order.Uint16(body[0:]),
		tsUnit:   time.Microsecond,
	}
	// Walk options for if_tsresol.
	opts := body[8:]
	for len(opts) >= 4 {
		code := ng.order.Uint16(opts[0:])
		length := int(ng.order.Uint16(opts[2:]))
		opts = opts[4:]
		if code == optEndOfOpts {
			break
		}
		if length > len(opts) {
			return fmt.Errorf("pcapng: option overruns block")
		}
		if code == optTsResol && length >= 1 {
			iface.tsUnit = tsResolUnit(opts[0])
		}
		// Options are padded to 4 bytes.
		pad := (4 - length%4) % 4
		if length+pad > len(opts) {
			break
		}
		opts = opts[length+pad:]
	}
	ng.ifaces = append(ng.ifaces, iface)
	return nil
}

// tsResolUnit decodes an if_tsresol byte: MSB clear means 10^-v seconds,
// MSB set means 2^-v seconds.
func tsResolUnit(v byte) time.Duration {
	if v&0x80 == 0 {
		d := time.Second
		for i := byte(0); i < v && d > 1; i++ {
			d /= 10
		}
		return d
	}
	exp := v & 0x7f
	return time.Duration(float64(time.Second) / math.Pow(2, float64(exp)))
}

// Next returns the next packet, or io.EOF at the end of the capture.
func (ng *NGReader) Next() (Packet, error) {
	for {
		var head [8]byte
		if _, err := io.ReadFull(ng.r, head[:]); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return Packet{}, io.EOF
			}
			return Packet{}, fmt.Errorf("pcapng: read block header: %w", err)
		}
		blockType := ng.order.Uint32(head[0:])
		totalLen := ng.order.Uint32(head[4:])
		if blockType == blockSHB {
			// New section: re-parse with a fresh byte order. Push back the
			// 8 bytes read is awkward with bufio; re-read manually.
			var rest [4]byte
			if _, err := io.ReadFull(ng.r, rest[:]); err != nil {
				return Packet{}, fmt.Errorf("pcapng: section header: %w", err)
			}
			switch binary.LittleEndian.Uint32(rest[:]) {
			case byteOrderMagic:
				ng.order = binary.LittleEndian
			case 0x4D3C2B1A:
				ng.order = binary.BigEndian
			default:
				return Packet{}, fmt.Errorf("pcapng: bad byte-order magic")
			}
			totalLen = ng.order.Uint32(head[4:])
			if totalLen < 28 || totalLen%4 != 0 {
				return Packet{}, fmt.Errorf("pcapng: bad section length %d", totalLen)
			}
			if _, err := io.CopyN(io.Discard, ng.r, int64(totalLen-12)); err != nil {
				return Packet{}, err
			}
			ng.ifaces = ng.ifaces[:0]
			continue
		}
		if totalLen < 12 || totalLen%4 != 0 {
			return Packet{}, fmt.Errorf("pcapng: bad block length %d", totalLen)
		}
		body := make([]byte, totalLen-12)
		if _, err := io.ReadFull(ng.r, body); err != nil {
			return Packet{}, fmt.Errorf("pcapng: block body: %w", err)
		}
		var trail [4]byte
		if _, err := io.ReadFull(ng.r, trail[:]); err != nil {
			return Packet{}, fmt.Errorf("pcapng: block trailer: %w", err)
		}
		if ng.order.Uint32(trail[:]) != totalLen {
			return Packet{}, fmt.Errorf("pcapng: trailer length mismatch")
		}

		switch blockType {
		case blockIDB:
			if err := ng.parseIDB(body); err != nil {
				return Packet{}, err
			}
		case blockEPB:
			pkt, ok, err := ng.parseEPB(body)
			if err != nil {
				return Packet{}, err
			}
			if ok {
				return pkt, nil
			}
		case blockSPB:
			pkt, ok, err := ng.parseSPB(body)
			if err != nil {
				return Packet{}, err
			}
			if ok {
				return pkt, nil
			}
		default:
			// Name resolution, statistics, custom blocks: skip.
		}
	}
}

func (ng *NGReader) parseEPB(body []byte) (Packet, bool, error) {
	if len(body) < 20 {
		return Packet{}, false, fmt.Errorf("pcapng: short enhanced packet block")
	}
	ifID := ng.order.Uint32(body[0:])
	tsHigh := ng.order.Uint32(body[4:])
	tsLow := ng.order.Uint32(body[8:])
	capLen := ng.order.Uint32(body[12:])
	if int(capLen) > len(body)-20 {
		return Packet{}, false, fmt.Errorf("pcapng: packet overruns block")
	}
	if int(ifID) >= len(ng.ifaces) {
		return Packet{}, false, fmt.Errorf("pcapng: unknown interface %d", ifID)
	}
	iface := ng.ifaces[ifID]
	if iface.linkType != LinkTypeEthernet {
		return Packet{}, false, nil // skip non-Ethernet interfaces
	}
	ticks := uint64(tsHigh)<<32 | uint64(tsLow)
	data := make([]byte, capLen)
	copy(data, body[20:20+capLen])
	return Packet{
		Timestamp: time.Unix(0, int64(ticks)*int64(iface.tsUnit)).UTC(),
		Data:      data,
	}, true, nil
}

func (ng *NGReader) parseSPB(body []byte) (Packet, bool, error) {
	if len(body) < 4 {
		return Packet{}, false, fmt.Errorf("pcapng: short simple packet block")
	}
	if len(ng.ifaces) == 0 {
		return Packet{}, false, fmt.Errorf("pcapng: simple packet before interface description")
	}
	if ng.ifaces[0].linkType != LinkTypeEthernet {
		return Packet{}, false, nil
	}
	origLen := int(ng.order.Uint32(body[0:]))
	data := body[4:]
	if origLen < len(data) {
		data = data[:origLen]
	}
	out := make([]byte, len(data))
	copy(out, data)
	return Packet{Data: out}, true, nil
}

// NGWriter emits a little-endian pcapng capture with one Ethernet
// interface at microsecond resolution.
type NGWriter struct {
	w           io.Writer
	wroteHeader bool
}

// NewNGWriter returns an NGWriter targeting w.
func NewNGWriter(w io.Writer) *NGWriter { return &NGWriter{w: w} }

func (nw *NGWriter) writeHeader() error {
	if nw.wroteHeader {
		return nil
	}
	// Section header: 28 bytes, unspecified section length.
	shb := make([]byte, 28)
	binary.LittleEndian.PutUint32(shb[0:], blockSHB)
	binary.LittleEndian.PutUint32(shb[4:], 28)
	binary.LittleEndian.PutUint32(shb[8:], byteOrderMagic)
	binary.LittleEndian.PutUint16(shb[12:], 1) // major
	binary.LittleEndian.PutUint64(shb[16:], math.MaxUint64)
	binary.LittleEndian.PutUint32(shb[24:], 28)
	// Interface description: Ethernet, default microsecond resolution.
	idb := make([]byte, 20)
	binary.LittleEndian.PutUint32(idb[0:], blockIDB)
	binary.LittleEndian.PutUint32(idb[4:], 20)
	binary.LittleEndian.PutUint16(idb[8:], LinkTypeEthernet)
	binary.LittleEndian.PutUint32(idb[12:], defaultSnapLen)
	binary.LittleEndian.PutUint32(idb[16:], 20)
	if _, err := nw.w.Write(shb); err != nil {
		return fmt.Errorf("pcapng: write section header: %w", err)
	}
	if _, err := nw.w.Write(idb); err != nil {
		return fmt.Errorf("pcapng: write interface block: %w", err)
	}
	nw.wroteHeader = true
	return nil
}

// WritePacket appends one frame as an enhanced packet block.
func (nw *NGWriter) WritePacket(p Packet) error {
	if err := nw.writeHeader(); err != nil {
		return err
	}
	pad := (4 - len(p.Data)%4) % 4
	total := 32 + len(p.Data) + pad
	block := make([]byte, total)
	binary.LittleEndian.PutUint32(block[0:], blockEPB)
	binary.LittleEndian.PutUint32(block[4:], uint32(total))
	// Interface 0; microsecond ticks.
	ticks := uint64(p.Timestamp.UnixMicro())
	binary.LittleEndian.PutUint32(block[12:], uint32(ticks>>32))
	binary.LittleEndian.PutUint32(block[16:], uint32(ticks))
	binary.LittleEndian.PutUint32(block[20:], uint32(len(p.Data)))
	binary.LittleEndian.PutUint32(block[24:], uint32(len(p.Data)))
	copy(block[28:], p.Data)
	binary.LittleEndian.PutUint32(block[total-4:], uint32(total))
	if _, err := nw.w.Write(block); err != nil {
		return fmt.Errorf("pcapng: write packet block: %w", err)
	}
	return nil
}

// Flush ensures the section and interface headers exist for empty
// captures.
func (nw *NGWriter) Flush() error { return nw.writeHeader() }

// ReadAllAuto detects the capture format (classic pcap or pcapng) from the
// leading magic and drains it into memory.
func ReadAllAuto(r io.Reader) ([]Packet, error) {
	br := bufio.NewReader(r)
	magic, err := br.Peek(4)
	if err != nil {
		return nil, fmt.Errorf("pcap: read magic: %w", err)
	}
	if binary.LittleEndian.Uint32(magic) == blockSHB {
		ng, err := NewNGReader(br)
		if err != nil {
			return nil, err
		}
		var pkts []Packet
		for {
			p, err := ng.Next()
			if errors.Is(err, io.EOF) {
				return pkts, nil
			}
			if err != nil {
				return nil, err
			}
			pkts = append(pkts, p)
		}
	}
	return ReadAll(br)
}
