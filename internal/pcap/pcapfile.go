// Package pcap implements the subset of the packet-capture toolchain that
// DynaMiner's offline analytics stage needs, from scratch on the standard
// library: the classic libpcap file format (read and write), Ethernet/IPv4/
// TCP encoding and decoding, TCP flow reassembly, and a conversation
// builder that turns byte-level client/server exchanges into valid capture
// files. The synthetic trace generator emits real pcap files through this
// package and the analytics stage re-parses them, so the byte-level path
// the paper's deep-packet-inspection pipeline exercises is preserved.
package pcap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// Classic pcap magic numbers (microsecond resolution).
const (
	magicLE = 0xa1b2c3d4 // written natively little-endian by this package
	magicBE = 0xd4c3b2a1

	// LinkTypeEthernet is the only link type this package handles.
	LinkTypeEthernet = 1

	globalHeaderLen = 24
	recordHeaderLen = 16
	defaultSnapLen  = 262144
)

// ErrBadMagic reports a file that does not start with a classic pcap magic.
var ErrBadMagic = errors.New("pcap: bad magic number")

// Packet is one captured frame with its capture timestamp.
type Packet struct {
	Timestamp time.Time
	Data      []byte // raw frame bytes starting at the link layer
}

// Writer emits a classic little-endian microsecond pcap file.
type Writer struct {
	w           io.Writer
	wroteHeader bool
	snapLen     uint32
}

// NewWriter returns a Writer targeting w. The global header is written
// lazily on the first packet (or by Flush on an empty capture).
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: w, snapLen: defaultSnapLen}
}

func (pw *Writer) writeHeader() error {
	if pw.wroteHeader {
		return nil
	}
	var hdr [globalHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:], magicLE)
	binary.LittleEndian.PutUint16(hdr[4:], 2) // version major
	binary.LittleEndian.PutUint16(hdr[6:], 4) // version minor
	// thiszone and sigfigs stay zero.
	binary.LittleEndian.PutUint32(hdr[16:], pw.snapLen)
	binary.LittleEndian.PutUint32(hdr[20:], LinkTypeEthernet)
	if _, err := pw.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("pcap: write global header: %w", err)
	}
	pw.wroteHeader = true
	return nil
}

// WritePacket appends one frame to the capture.
func (pw *Writer) WritePacket(p Packet) error {
	if err := pw.writeHeader(); err != nil {
		return err
	}
	if uint32(len(p.Data)) > pw.snapLen {
		return fmt.Errorf("pcap: packet length %d exceeds snaplen %d", len(p.Data), pw.snapLen)
	}
	var hdr [recordHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(p.Timestamp.Unix()))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(p.Timestamp.Nanosecond()/1000))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(p.Data)))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(len(p.Data)))
	if _, err := pw.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("pcap: write record header: %w", err)
	}
	if _, err := pw.w.Write(p.Data); err != nil {
		return fmt.Errorf("pcap: write record body: %w", err)
	}
	return nil
}

// Flush makes sure the global header exists even for empty captures.
func (pw *Writer) Flush() error { return pw.writeHeader() }

// Reader parses a classic pcap file in either byte order.
type Reader struct {
	r        io.Reader
	order    binary.ByteOrder
	snapLen  uint32
	linkType uint32
}

// NewReader validates the global header of r and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	var hdr [globalHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("pcap: read global header: %w", err)
	}
	var order binary.ByteOrder
	switch binary.LittleEndian.Uint32(hdr[0:]) {
	case magicLE:
		order = binary.LittleEndian
	case magicBE:
		order = binary.BigEndian
	default:
		return nil, ErrBadMagic
	}
	pr := &Reader{
		r:        r,
		order:    order,
		snapLen:  order.Uint32(hdr[16:]),
		linkType: order.Uint32(hdr[20:]),
	}
	if pr.linkType != LinkTypeEthernet {
		return nil, fmt.Errorf("pcap: unsupported link type %d", pr.linkType)
	}
	return pr, nil
}

// Next returns the next packet, or io.EOF at the end of the capture.
func (pr *Reader) Next() (Packet, error) {
	var hdr [recordHeaderLen]byte
	if _, err := io.ReadFull(pr.r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return Packet{}, io.EOF
		}
		return Packet{}, fmt.Errorf("pcap: read record header: %w", err)
	}
	sec := pr.order.Uint32(hdr[0:])
	usec := pr.order.Uint32(hdr[4:])
	capLen := pr.order.Uint32(hdr[8:])
	if capLen > pr.snapLen {
		return Packet{}, fmt.Errorf("pcap: record length %d exceeds snaplen %d", capLen, pr.snapLen)
	}
	data := make([]byte, capLen)
	if _, err := io.ReadFull(pr.r, data); err != nil {
		return Packet{}, fmt.Errorf("pcap: read record body: %w", err)
	}
	return Packet{
		Timestamp: time.Unix(int64(sec), int64(usec)*1000).UTC(),
		Data:      data,
	}, nil
}

// ReadAll drains the capture into memory.
func ReadAll(r io.Reader) ([]Packet, error) {
	pr, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	var pkts []Packet
	for {
		p, err := pr.Next()
		if errors.Is(err, io.EOF) {
			return pkts, nil
		}
		if err != nil {
			return nil, err
		}
		pkts = append(pkts, p)
	}
}
