package graph

import (
	"math/rand"
	"testing"
)

// benchGraph builds a WCG-shaped graph: a hub (the victim) connected to
// every host, plus a redirect chain and some host-to-host edges — sized
// like the largest graphs in the corpus (hundreds of nodes).
func benchGraph(n int) *Digraph {
	rng := rand.New(rand.NewSource(1))
	g := New(n)
	for v := 1; v < n; v++ {
		_ = g.AddEdge(0, v) // request
		_ = g.AddEdge(v, 0) // response
	}
	for v := 1; v+1 < n/4; v++ {
		_ = g.AddEdge(v, v+1) // chain
	}
	for i := 0; i < n; i++ {
		_ = g.AddEdge(1+rng.Intn(n-1), 1+rng.Intn(n-1))
	}
	return g
}

func BenchmarkBetweenness200(b *testing.B) {
	g := benchGraph(200)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.BetweennessCentrality()
	}
}

func BenchmarkLoadCentrality200(b *testing.B) {
	g := benchGraph(200)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.LoadCentrality()
	}
}

func BenchmarkCloseness200(b *testing.B) {
	g := benchGraph(200)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.ClosenessCentrality()
	}
}

func BenchmarkNodeConnectivity200(b *testing.B) {
	g := benchGraph(200)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.NodeConnectivity()
	}
}

func BenchmarkPageRank200(b *testing.B) {
	g := benchGraph(200)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.PageRank(0.85, 100, 1e-10)
	}
}

func BenchmarkDiameter200(b *testing.B) {
	g := benchGraph(200)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Diameter()
	}
}

func BenchmarkCoreNumbers200(b *testing.B) {
	g := benchGraph(200)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.CoreNumbers()
	}
}

// benchScratch runs fn against a warmed scratch so the numbers show the
// zero-allocation steady state of the reusable workspace.
func benchScratch(b *testing.B, fn func(g *Digraph, s *Scratch)) {
	g := benchGraph(200)
	s := NewScratch()
	s.ParallelCutoff = -1
	fn(g, s) // warm the buffers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fn(g, s)
	}
}

func BenchmarkBetweennessScratch200(b *testing.B) {
	dst := make([]float64, 0, 200)
	benchScratch(b, func(g *Digraph, s *Scratch) { dst = g.BetweennessCentralityInto(dst, s) })
}

func BenchmarkLoadCentralityScratch200(b *testing.B) {
	dst := make([]float64, 0, 200)
	benchScratch(b, func(g *Digraph, s *Scratch) { dst = g.LoadCentralityInto(dst, s) })
}

func BenchmarkClosenessScratch200(b *testing.B) {
	dst := make([]float64, 0, 200)
	benchScratch(b, func(g *Digraph, s *Scratch) { dst = g.ClosenessCentralityInto(dst, s) })
}

func BenchmarkPageRankScratch200(b *testing.B) {
	dst := make([]float64, 0, 200)
	benchScratch(b, func(g *Digraph, s *Scratch) { dst = g.PageRankInto(dst, s, 0.85, 100, 1e-10) })
}

func BenchmarkDiameterScratch200(b *testing.B) {
	benchScratch(b, func(g *Digraph, s *Scratch) { g.DiameterS(s) })
}

func BenchmarkCoreNumbersScratch200(b *testing.B) {
	core := make([]int, 0, 200)
	benchScratch(b, func(g *Digraph, s *Scratch) { core = g.CoreNumbersInto(core, s) })
}

// BenchmarkBetweennessScratchParallel200 exercises the deterministic
// ordered fan-out (bit-identical to the sequential pass by construction).
func BenchmarkBetweennessScratchParallel200(b *testing.B) {
	g := benchGraph(200)
	s := NewScratch()
	s.ParallelCutoff = 1
	dst := g.BetweennessCentralityInto(nil, s)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = g.BetweennessCentralityInto(dst, s)
	}
	_ = dst
}
