package graph

// DegreeCentrality returns, for every node, its undirected simple degree
// normalized by n-1 (the NetworkX convention). For graphs with fewer than
// two nodes all values are zero.
func (g *Digraph) DegreeCentrality() []float64 {
	adj := g.undirectedSimple()
	n := len(adj)
	cent := make([]float64, n)
	if n < 2 {
		return cent
	}
	norm := 1 / float64(n-1)
	for u := range adj {
		cent[u] = float64(len(adj[u])) * norm
	}
	return cent
}

// ClosenessCentrality returns the improved (Wasserman–Faust) closeness for
// every node on the undirected simple projection:
//
//	C(u) = ((r-1)/(n-1)) * ((r-1)/Σ d(u,v))
//
// where r is the number of nodes reachable from u. Isolated nodes score 0.
func (g *Digraph) ClosenessCentrality() []float64 {
	adj := g.undirectedSimple()
	n := len(adj)
	cent := make([]float64, n)
	if n < 2 {
		return cent
	}
	for u := range adj {
		sum, reach := 0, 0
		for _, d := range bfsDistances(adj, u) {
			if d > 0 {
				sum += d
				reach++
			}
		}
		if sum > 0 {
			frac := float64(reach) / float64(n-1)
			cent[u] = frac * float64(reach) / float64(sum)
		}
	}
	return cent
}

// BetweennessCentrality computes exact shortest-path betweenness on the
// undirected simple projection using Brandes' algorithm, normalized by
// 2/((n-1)(n-2)) so values are comparable across graph sizes.
func (g *Digraph) BetweennessCentrality() []float64 {
	adj := g.undirectedSimple()
	n := len(adj)
	cent := make([]float64, n)
	if n < 3 {
		return cent
	}
	sigma := make([]float64, n)
	dist := make([]int, n)
	delta := make([]float64, n)
	preds := make([][]int, n)
	stack := make([]int, 0, n)
	queue := make([]int, 0, n)

	for s := 0; s < n; s++ {
		stack = stack[:0]
		queue = queue[:0]
		for i := 0; i < n; i++ {
			sigma[i] = 0
			dist[i] = -1
			delta[i] = 0
			preds[i] = preds[i][:0]
		}
		sigma[s] = 1
		dist[s] = 0
		queue = append(queue, s)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			stack = append(stack, v)
			for _, w := range adj[v] {
				if dist[w] < 0 {
					dist[w] = dist[v] + 1
					queue = append(queue, w)
				}
				if dist[w] == dist[v]+1 {
					sigma[w] += sigma[v]
					preds[w] = append(preds[w], v)
				}
			}
		}
		for i := len(stack) - 1; i >= 0; i-- {
			w := stack[i]
			for _, v := range preds[w] {
				delta[v] += sigma[v] / sigma[w] * (1 + delta[w])
			}
			if w != s {
				cent[w] += delta[w]
			}
		}
	}
	// Undirected: every pair was counted twice; normalize to [0,1].
	norm := 1 / (float64(n-1) * float64(n-2))
	for i := range cent {
		cent[i] *= norm
	}
	return cent
}

// LoadCentrality computes Goh-style load centrality on the undirected
// simple projection: a unit commodity is routed from every source to every
// other node along shortest paths, splitting equally among the predecessors
// at each branch, and each node accumulates the load passing through it.
// Values are normalized by 2/((n-1)(n-2)) to match NetworkX.
func (g *Digraph) LoadCentrality() []float64 {
	adj := g.undirectedSimple()
	n := len(adj)
	cent := make([]float64, n)
	if n < 3 {
		return cent
	}
	for s := 0; s < n; s++ {
		dist := bfsDistances(adj, s)
		// Order nodes by decreasing distance from s.
		order := make([]int, 0, n)
		for v, d := range dist {
			if d > 0 {
				order = append(order, v)
			}
		}
		for i := 1; i < len(order); i++ {
			for j := i; j > 0 && dist[order[j]] > dist[order[j-1]]; j-- {
				order[j], order[j-1] = order[j-1], order[j]
			}
		}
		load := make([]float64, n)
		for v := range load {
			if dist[v] > 0 {
				load[v] = 1 // each node must receive one unit from s
			}
		}
		for _, w := range order {
			var preds []int
			for _, v := range adj[w] {
				if dist[v] >= 0 && dist[v] == dist[w]-1 {
					preds = append(preds, v)
				}
			}
			if len(preds) == 0 {
				continue
			}
			share := load[w] / float64(len(preds))
			for _, v := range preds {
				if v != s {
					cent[v] += share
				}
				load[v] += share
			}
		}
	}
	norm := 1 / (float64(n-1) * float64(n-2))
	for i := range cent {
		cent[i] *= norm
	}
	return cent
}

// PageRank computes PageRank with damping factor d over the directed simple
// projection using power iteration (up to iters rounds, stopping early when
// the L1 change drops below tol). Dangling mass is redistributed uniformly.
func (g *Digraph) PageRank(d float64, iters int, tol float64) []float64 {
	adj := g.directedSimple()
	n := len(adj)
	if n == 0 {
		return nil
	}
	rank := make([]float64, n)
	next := make([]float64, n)
	inv := 1 / float64(n)
	for i := range rank {
		rank[i] = inv
	}
	for it := 0; it < iters; it++ {
		dangling := 0.0
		for u := range adj {
			if len(adj[u]) == 0 {
				dangling += rank[u]
			}
		}
		base := (1-d)*inv + d*dangling*inv
		for i := range next {
			next[i] = base
		}
		for u, vs := range adj {
			if len(vs) == 0 {
				continue
			}
			share := d * rank[u] / float64(len(vs))
			for _, v := range vs {
				next[v] += share
			}
		}
		diff := 0.0
		for i := range rank {
			delta := next[i] - rank[i]
			if delta < 0 {
				delta = -delta
			}
			diff += delta
		}
		rank, next = next, rank
		if diff < tol {
			break
		}
	}
	return rank
}

// Mean is the arithmetic mean of xs, or zero when xs is empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
