package graph

import (
	"math"
	"sort"
)

// Eccentricities returns, for each node, the greatest shortest-path
// distance to any node reachable from it in the undirected simple
// projection. Isolated nodes have eccentricity 0.
func (g *Digraph) Eccentricities() []int {
	adj := g.undirectedSimple()
	ecc := make([]int, len(adj))
	for u := range adj {
		for _, d := range bfsDistances(adj, u) {
			if d > ecc[u] {
				ecc[u] = d
			}
		}
	}
	return ecc
}

// Radius is the minimum eccentricity over the largest weakly connected
// component (the standard definition restricted to stay finite on
// fragmented conversation graphs). Zero for graphs with fewer than two
// nodes.
func (g *Digraph) Radius() int {
	comps := g.ConnectedComponents()
	if len(comps) == 0 || len(comps[0]) < 2 {
		return 0
	}
	inBig := make(map[int]bool, len(comps[0]))
	for _, u := range comps[0] {
		inBig[u] = true
	}
	ecc := g.Eccentricities()
	radius := -1
	for u := range ecc {
		if !inBig[u] {
			continue
		}
		if radius < 0 || ecc[u] < radius {
			radius = ecc[u]
		}
	}
	if radius < 0 {
		return 0
	}
	return radius
}

// Center returns the nodes of the largest component whose eccentricity
// equals the radius, in ascending id order.
func (g *Digraph) Center() []int {
	comps := g.ConnectedComponents()
	if len(comps) == 0 || len(comps[0]) < 2 {
		return nil
	}
	inBig := make(map[int]bool, len(comps[0]))
	for _, u := range comps[0] {
		inBig[u] = true
	}
	radius := g.Radius()
	ecc := g.Eccentricities()
	var center []int
	for u := range ecc {
		if inBig[u] && ecc[u] == radius {
			center = append(center, u)
		}
	}
	sort.Ints(center)
	return center
}

// StronglyConnectedComponents returns the SCCs of the directed simple
// projection via Tarjan's algorithm (iterative), largest first.
func (g *Digraph) StronglyConnectedComponents() [][]int {
	adj := g.directedSimple()
	n := len(adj)
	const unvisited = -1
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
	}
	var (
		counter int
		stack   []int
		comps   [][]int
	)

	type frame struct {
		v, childIdx int
	}
	for start := 0; start < n; start++ {
		if index[start] != unvisited {
			continue
		}
		callStack := []frame{{v: start}}
		for len(callStack) > 0 {
			f := &callStack[len(callStack)-1]
			v := f.v
			if f.childIdx == 0 {
				index[v] = counter
				low[v] = counter
				counter++
				stack = append(stack, v)
				onStack[v] = true
			}
			advanced := false
			for f.childIdx < len(adj[v]) {
				w := adj[v][f.childIdx]
				f.childIdx++
				if index[w] == unvisited {
					callStack = append(callStack, frame{v: w})
					advanced = true
					break
				}
				if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
			}
			if advanced {
				continue
			}
			// v is finished: pop an SCC if v is a root.
			if low[v] == index[v] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				sort.Ints(comp)
				comps = append(comps, comp)
			}
			callStack = callStack[:len(callStack)-1]
			if len(callStack) > 0 {
				parent := callStack[len(callStack)-1].v
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
		}
	}
	sort.SliceStable(comps, func(i, j int) bool { return len(comps[i]) > len(comps[j]) })
	return comps
}

// CoreNumbers returns the k-core number of every node in the undirected
// simple projection: the largest k such that the node belongs to a
// subgraph where every node has degree >= k (Batagelj-Zaveršnik peeling).
func (g *Digraph) CoreNumbers() []int {
	adj := g.undirectedSimple()
	n := len(adj)
	deg := make([]int, n)
	maxDeg := 0
	for u := range adj {
		deg[u] = len(adj[u])
		if deg[u] > maxDeg {
			maxDeg = deg[u]
		}
	}
	// Bucket sort nodes by degree.
	bins := make([]int, maxDeg+2)
	for _, d := range deg {
		bins[d]++
	}
	startIdx := 0
	for d := 0; d <= maxDeg; d++ {
		count := bins[d]
		bins[d] = startIdx
		startIdx += count
	}
	pos := make([]int, n)
	vert := make([]int, n)
	for u := 0; u < n; u++ {
		pos[u] = bins[deg[u]]
		vert[pos[u]] = u
		bins[deg[u]]++
	}
	for d := maxDeg; d > 0; d-- {
		bins[d] = bins[d-1]
	}
	bins[0] = 0

	core := make([]int, n)
	copy(core, deg)
	for i := 0; i < n; i++ {
		v := vert[i]
		for _, u := range adj[v] {
			if core[u] > core[v] {
				// Move u one bucket down.
				du := core[u]
				pu := pos[u]
				pw := bins[du]
				w := vert[pw]
				if u != w {
					pos[u], pos[w] = pw, pu
					vert[pu], vert[pw] = w, u
				}
				bins[du]++
				core[u]--
			}
		}
	}
	return core
}

// Degeneracy is the maximum core number (the graph's degeneracy).
func (g *Digraph) Degeneracy() int {
	best := 0
	for _, c := range g.CoreNumbers() {
		if c > best {
			best = c
		}
	}
	return best
}

// DegreeHistogram returns counts[d] = number of nodes with undirected
// simple degree d.
func (g *Digraph) DegreeHistogram() []int {
	adj := g.undirectedSimple()
	maxDeg := 0
	for u := range adj {
		if len(adj[u]) > maxDeg {
			maxDeg = len(adj[u])
		}
	}
	counts := make([]int, maxDeg+1)
	for u := range adj {
		counts[len(adj[u])]++
	}
	return counts
}

// DegreeAssortativity is the Pearson correlation of degrees across the
// undirected simple edges (Newman's assortativity coefficient). Zero for
// graphs without at least two edges or with constant degree.
func (g *Digraph) DegreeAssortativity() float64 {
	adj := g.undirectedSimple()
	var xs, ys []float64
	for u := range adj {
		for _, v := range adj[u] {
			if v > u {
				xs = append(xs, float64(len(adj[u])))
				ys = append(ys, float64(len(adj[v])))
				// Count both orientations for symmetry.
				xs = append(xs, float64(len(adj[v])))
				ys = append(ys, float64(len(adj[u])))
			}
		}
	}
	if len(xs) < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var cov, vx, vy float64
	for i := range xs {
		cov += (xs[i] - mx) * (ys[i] - my)
		vx += (xs[i] - mx) * (xs[i] - mx)
		vy += (ys[i] - my) * (ys[i] - my)
	}
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}
