package graph

import "sort"

// ClusteringCoefficients returns the local clustering coefficient of every
// node on the undirected simple projection: the fraction of pairs of a
// node's neighbors that are themselves adjacent. Nodes with degree < 2
// score zero.
func (g *Digraph) ClusteringCoefficients() []float64 {
	adj := g.undirectedSimple()
	n := len(adj)
	coeff := make([]float64, n)
	isNbr := make([]bool, n)
	for u := range adj {
		k := len(adj[u])
		if k < 2 {
			continue
		}
		for _, v := range adj[u] {
			isNbr[v] = true
		}
		links := 0
		for _, v := range adj[u] {
			for _, w := range adj[v] {
				if w > v && isNbr[w] {
					links++
				}
			}
		}
		for _, v := range adj[u] {
			isNbr[v] = false
		}
		coeff[u] = 2 * float64(links) / (float64(k) * float64(k-1))
	}
	return coeff
}

// AvgClusteringCoefficient is the mean local clustering coefficient (f21).
func (g *Digraph) AvgClusteringCoefficient() float64 {
	return Mean(g.ClusteringCoefficients())
}

// AvgNeighborDegrees returns, for each node, the mean undirected simple
// degree of its neighbors (f22). Isolated nodes score zero.
func (g *Digraph) AvgNeighborDegrees() []float64 {
	adj := g.undirectedSimple()
	vals := make([]float64, len(adj))
	for u := range adj {
		if len(adj[u]) == 0 {
			continue
		}
		sum := 0
		for _, v := range adj[u] {
			sum += len(adj[v])
		}
		vals[u] = float64(sum) / float64(len(adj[u]))
	}
	return vals
}

// AverageDegreeConnectivity returns the NetworkX-style map from degree k to
// the average neighbor degree over all nodes of degree k, computed on the
// undirected simple projection (f23).
func (g *Digraph) AverageDegreeConnectivity() map[int]float64 {
	adj := g.undirectedSimple()
	sums := make(map[int]float64)
	counts := make(map[int]int)
	for u := range adj {
		k := len(adj[u])
		if k == 0 {
			continue
		}
		sum := 0
		for _, v := range adj[u] {
			sum += len(adj[v])
		}
		sums[k] += float64(sum) / float64(k)
		counts[k]++
	}
	out := make(map[int]float64, len(sums))
	for k, s := range sums {
		out[k] = s / float64(counts[k])
	}
	return out
}

// AvgDegreeConnectivity collapses AverageDegreeConnectivity to a scalar by
// averaging the per-degree values, giving "average degree for connected
// nodes" (f23) as a single feature.
func (g *Digraph) AvgDegreeConnectivity() float64 {
	m := g.AverageDegreeConnectivity()
	if len(m) == 0 {
		return 0
	}
	// Sum in ascending-degree order: float addition is not associative,
	// so map iteration order would make the low bits nondeterministic.
	degrees := make([]int, 0, len(m))
	for k := range m {
		degrees = append(degrees, k)
	}
	sort.Ints(degrees)
	sum := 0.0
	for _, k := range degrees {
		sum += m[k]
	}
	return sum / float64(len(m))
}
