package graph

import (
	"math"
	"math/rand"
	"testing"
)

// randomGraph builds a seeded random multigraph with parallel edges and
// self-loops, the shapes the scratch projections must collapse exactly like
// the map-based originals.
func randomMultigraph(rng *rand.Rand, n, edges int) *Digraph {
	g := New(n)
	for i := 0; i < edges; i++ {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if rng.Intn(10) == 0 {
			v = u // occasional self-loop
		}
		if err := g.AddEdge(u, v); err != nil {
			panic(err)
		}
	}
	return g
}

// sameFloats asserts bitwise equality — the scratch variants promise the
// identical arithmetic in the identical order, not just approximation.
func sameFloats(t *testing.T, name string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: len %d != %d", name, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s[%d]: %v (bits %x) != %v (bits %x)",
				name, i, got[i], math.Float64bits(got[i]), want[i], math.Float64bits(want[i]))
		}
	}
}

func sameScalar(t *testing.T, name string, got, want float64) {
	t.Helper()
	if math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("%s: %v != %v", name, got, want)
	}
}

// checkScratchMatches runs every scratch variant against its plain
// counterpart on g, reusing s across calls.
func checkScratchMatches(t *testing.T, g *Digraph, s *Scratch) {
	t.Helper()
	if got, want := g.DiameterS(s), g.Diameter(); got != want {
		t.Fatalf("DiameterS = %d, want %d", got, want)
	}
	sameFloats(t, "DegreeCentrality", g.DegreeCentralityInto(nil, s), g.DegreeCentrality())
	sameFloats(t, "ClosenessCentrality", g.ClosenessCentralityInto(nil, s), g.ClosenessCentrality())
	sameFloats(t, "BetweennessCentrality", g.BetweennessCentralityInto(nil, s), g.BetweennessCentrality())
	sameFloats(t, "LoadCentrality", g.LoadCentralityInto(nil, s), g.LoadCentrality())
	if got, want := g.NodeConnectivityS(s), g.NodeConnectivity(); got != want {
		t.Fatalf("NodeConnectivityS = %d, want %d", got, want)
	}
	sameScalar(t, "AvgClusteringCoefficient", g.AvgClusteringCoefficientS(s), g.AvgClusteringCoefficient())
	sameFloats(t, "AvgNeighborDegrees", g.AvgNeighborDegreesInto(nil, s), g.AvgNeighborDegrees())
	sameScalar(t, "AvgDegreeConnectivity", g.AvgDegreeConnectivityS(s), g.AvgDegreeConnectivity())
	sameScalar(t, "AvgNodesWithinK", g.AvgNodesWithinKS(2, s), g.AvgNodesWithinK(2))
	sameFloats(t, "PageRank", g.PageRankInto(nil, s, 0.85, 100, 1e-10), g.PageRank(0.85, 100, 1e-10))
	gotCore := g.CoreNumbersInto(nil, s)
	wantCore := g.CoreNumbers()
	for i := range wantCore {
		if gotCore[i] != wantCore[i] {
			t.Fatalf("CoreNumbers[%d] = %d, want %d", i, gotCore[i], wantCore[i])
		}
	}
}

func TestScratchMatchesPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	s := NewScratch()
	s.ParallelCutoff = -1 // sequential path
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(40)
		g := randomMultigraph(rng, n, rng.Intn(4*n))
		checkScratchMatches(t, g, s)
	}
}

func TestScratchMatchesPlainParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	s := NewScratch()
	s.ParallelCutoff = 1 // force the fan-out even on tiny graphs
	s.Workers = 4
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(80)
		g := randomMultigraph(rng, n, rng.Intn(5*n))
		checkScratchMatches(t, g, s)
	}
}

// TestScratchParallelDeterministic pins the contract that the fan-out's
// chunked accumulation gives bit-identical results regardless of worker
// count — the parallel path must not perturb feature values.
func TestScratchParallelDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomMultigraph(rng, 150, 600)
	seq := NewScratch()
	seq.ParallelCutoff = -1
	wantB := g.BetweennessCentralityInto(nil, seq)
	wantL := g.LoadCentralityInto(nil, seq)
	wantC := g.ClosenessCentralityInto(nil, seq)
	for _, workers := range []int{1, 2, 3, 8} {
		par := NewScratch()
		par.ParallelCutoff = 1
		par.Workers = workers
		sameFloats(t, "betweenness", g.BetweennessCentralityInto(nil, par), wantB)
		sameFloats(t, "load", g.LoadCentralityInto(nil, par), wantL)
		sameFloats(t, "closeness", g.ClosenessCentralityInto(nil, par), wantC)
	}
}

// TestScratchInvalidation mutates the graph between calls and checks the
// cached projection is rebuilt, including across distinct graphs sharing
// one scratch.
func TestScratchInvalidation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	s := NewScratch()
	s.ParallelCutoff = -1
	g := randomMultigraph(rng, 10, 20)
	checkScratchMatches(t, g, s)
	for i := 0; i < 15; i++ {
		if rng.Intn(4) == 0 {
			g.AddNode()
		} else {
			n := g.N()
			if err := g.AddEdge(rng.Intn(n), rng.Intn(n)); err != nil {
				t.Fatal(err)
			}
		}
		checkScratchMatches(t, g, s)
	}
	// Switch to a different graph mid-stream.
	h := randomMultigraph(rng, 25, 70)
	checkScratchMatches(t, h, s)
	checkScratchMatches(t, g, s)
}

func TestScratchTinyGraphs(t *testing.T) {
	s := NewScratch()
	for _, n := range []int{0, 1, 2} {
		g := New(n)
		if n == 2 {
			if err := g.AddEdge(0, 1); err != nil {
				t.Fatal(err)
			}
		}
		checkScratchMatches(t, g, s)
	}
}

// TestScratchSteadyStateAllocs pins the zero-allocation contract for the
// sequential analytics passes once the workspace has warmed up on a graph
// of the same size.
func TestScratchSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := randomMultigraph(rng, 60, 200)
	h := randomMultigraph(rng, 60, 210)
	s := NewScratch()
	s.ParallelCutoff = -1
	dst := make([]float64, 0, g.N())
	core := make([]int, 0, g.N())
	all := func(g *Digraph) {
		g.DiameterS(s)
		dst = g.BetweennessCentralityInto(dst, s)
		dst = g.LoadCentralityInto(dst, s)
		dst = g.ClosenessCentralityInto(dst, s)
		dst = g.DegreeCentralityInto(dst, s)
		dst = g.AvgNeighborDegreesInto(dst, s)
		dst = g.PageRankInto(dst, s, 0.85, 100, 1e-10)
		core = g.CoreNumbersInto(core, s)
		g.AvgClusteringCoefficientS(s)
		g.AvgDegreeConnectivityS(s)
		g.AvgNodesWithinKS(2, s)
	}
	all(g) // warm up every buffer
	all(h)
	allocs := testing.AllocsPerRun(20, func() {
		// Alternating graphs forces a full projection rebuild per call,
		// the incremental steady state, with no fresh allocations.
		all(g)
		all(h)
	})
	if allocs > 0.5 {
		t.Fatalf("steady-state analytics allocated %.1f objects/run, want 0", allocs)
	}
}
