package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEccentricitiesAndRadius(t *testing.T) {
	// Path 0-1-2-3-4: eccentricities 4,3,2,3,4; radius 2; center {2}.
	g := pathGraph(5)
	ecc := g.Eccentricities()
	want := []int{4, 3, 2, 3, 4}
	for i, w := range want {
		if ecc[i] != w {
			t.Fatalf("ecc[%d] = %d, want %d", i, ecc[i], w)
		}
	}
	if g.Radius() != 2 {
		t.Fatalf("radius = %d, want 2", g.Radius())
	}
	center := g.Center()
	if len(center) != 1 || center[0] != 2 {
		t.Fatalf("center = %v, want [2]", center)
	}
	// Star: hub eccentricity 1, leaves 2; radius 1; center = hub.
	s := starGraph(4)
	if s.Radius() != 1 {
		t.Fatalf("star radius = %d", s.Radius())
	}
	if c := s.Center(); len(c) != 1 || c[0] != 0 {
		t.Fatalf("star center = %v", c)
	}
}

func TestRadiusEdgeCases(t *testing.T) {
	if New(0).Radius() != 0 || New(1).Radius() != 0 {
		t.Fatal("tiny graph radius must be 0")
	}
	if New(1).Center() != nil {
		t.Fatal("tiny graph center must be nil")
	}
	// Disconnected: radius comes from the largest component.
	g := New(5)
	_ = g.AddEdge(0, 1)
	_ = g.AddEdge(1, 2)
	_ = g.AddEdge(3, 4)
	if g.Radius() != 1 {
		t.Fatalf("disconnected radius = %d, want 1 (path of 3)", g.Radius())
	}
}

func TestStronglyConnectedComponents(t *testing.T) {
	// Cycle 0->1->2->0 plus tail 2->3->4.
	g := New(5)
	_ = g.AddEdge(0, 1)
	_ = g.AddEdge(1, 2)
	_ = g.AddEdge(2, 0)
	_ = g.AddEdge(2, 3)
	_ = g.AddEdge(3, 4)
	comps := g.StronglyConnectedComponents()
	if len(comps) != 3 {
		t.Fatalf("sccs = %d, want 3: %v", len(comps), comps)
	}
	if len(comps[0]) != 3 || comps[0][0] != 0 || comps[0][2] != 2 {
		t.Fatalf("largest scc = %v, want [0 1 2]", comps[0])
	}
	// A DAG has only singleton SCCs.
	dag := pathGraph(4)
	if got := len(dag.StronglyConnectedComponents()); got != 4 {
		t.Fatalf("dag sccs = %d, want 4", got)
	}
	// Two interlocking cycles merge into one SCC.
	g2 := cycleGraph(4)
	_ = g2.AddEdge(2, 1)
	if got := g2.StronglyConnectedComponents(); len(got) != 1 || len(got[0]) != 4 {
		t.Fatalf("merged scc = %v", got)
	}
}

func TestSCCCoversAllNodes(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(15)
		g := randomGraph(n, r.Intn(4*n), r)
		seen := make(map[int]int)
		for _, comp := range g.StronglyConnectedComponents() {
			for _, u := range comp {
				seen[u]++
			}
		}
		if len(seen) != n {
			return false
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCoreNumbers(t *testing.T) {
	// Complete graph K4: every node has core number 3.
	for _, c := range completeGraph(4).CoreNumbers() {
		if c != 3 {
			t.Fatalf("K4 core = %d, want 3", c)
		}
	}
	// Path: all core 1.
	for _, c := range pathGraph(5).CoreNumbers() {
		if c != 1 {
			t.Fatalf("path core = %d, want 1", c)
		}
	}
	// Triangle plus pendant: triangle cores 2, pendant 1.
	g := completeGraph(3)
	p := g.AddNode()
	_ = g.AddEdge(0, p)
	cores := g.CoreNumbers()
	if cores[0] != 2 || cores[1] != 2 || cores[2] != 2 || cores[3] != 1 {
		t.Fatalf("cores = %v", cores)
	}
	if g.Degeneracy() != 2 {
		t.Fatalf("degeneracy = %d", g.Degeneracy())
	}
}

func TestCoreNumbersBoundedByDegree(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(20)
		g := randomGraph(n, r.Intn(5*n), r)
		adj := g.undirectedSimple()
		for u, c := range g.CoreNumbers() {
			if c > len(adj[u]) || c < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDegreeHistogram(t *testing.T) {
	h := starGraph(4).DegreeHistogram()
	// 4 leaves of degree 1, 1 hub of degree 4.
	if h[1] != 4 || h[4] != 1 {
		t.Fatalf("histogram = %v", h)
	}
	total := 0
	for _, c := range h {
		total += c
	}
	if total != 5 {
		t.Fatalf("histogram sums to %d", total)
	}
}

func TestDegreeAssortativity(t *testing.T) {
	// Star graphs are maximally disassortative: coefficient -1.
	if a := starGraph(5).DegreeAssortativity(); math.Abs(a+1) > 1e-9 {
		t.Fatalf("star assortativity = %v, want -1", a)
	}
	// Regular graphs have undefined correlation; we return 0.
	if a := cycleGraph(6).DegreeAssortativity(); a != 0 {
		t.Fatalf("cycle assortativity = %v, want 0", a)
	}
	// Range check on random graphs.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(3+r.Intn(15), r.Intn(40), r)
		a := g.DegreeAssortativity()
		return a >= -1-1e-9 && a <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
