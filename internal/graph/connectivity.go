package graph

// NodeConnectivity is the minimum number of nodes whose removal disconnects
// the undirected simple projection (or isolates a node), computed exactly
// via vertex-split max-flow between a fixed source and every non-neighbor,
// plus neighbor-of-source pairs — the standard exact algorithm. It returns
// 0 for disconnected graphs and n-1 for complete graphs.
func (g *Digraph) NodeConnectivity() int {
	adj := g.undirectedSimple()
	n := len(adj)
	if n < 2 {
		return 0
	}
	if !g.IsConnected() {
		return 0
	}
	// Complete graph: connectivity is n-1 and no vertex cut exists.
	complete := true
	for u := range adj {
		if len(adj[u]) != n-1 {
			complete = false
			break
		}
	}
	if complete {
		return n - 1
	}
	// Pick a minimum-degree node as the fixed endpoint.
	s := 0
	for u := range adj {
		if len(adj[u]) < len(adj[s]) {
			s = u
		}
	}
	best := n // upper bound
	isNbr := make([]bool, n)
	for _, v := range adj[s] {
		isNbr[v] = true
	}
	for t := 0; t < n; t++ {
		if t == s || isNbr[t] {
			continue
		}
		if k := localNodeConnectivity(adj, s, t); k < best {
			best = k
		}
	}
	// Also consider cuts separating neighbors of s from each other.
	for _, v := range adj[s] {
		vNbr := make(map[int]bool, len(adj[v]))
		for _, w := range adj[v] {
			vNbr[w] = true
		}
		for t := 0; t < n; t++ {
			if t == v || t == s || vNbr[t] {
				continue
			}
			if k := localNodeConnectivity(adj, v, t); k < best {
				best = k
			}
		}
	}
	if best == n {
		best = n - 1
	}
	return best
}

// localNodeConnectivity computes the maximum number of internally
// node-disjoint paths between s and t via unit-capacity max-flow on the
// vertex-split graph: node u becomes u_in (2u) and u_out (2u+1) joined by a
// unit arc; each undirected edge {u,v} becomes arcs u_out->v_in and
// v_out->u_in.
func localNodeConnectivity(adj [][]int, s, t int) int {
	var ws flowWS
	return localNodeConnectivityS(adj, s, t, &ws)
}

// flowArc is one residual arc of the vertex-split flow network.
type flowArc struct {
	to, rev int
	cap     int
}

// flowWS holds the Dinic max-flow state for localNodeConnectivityS. The
// arc lists, level/iterator arrays, and BFS queue are reused across the
// O(n·deg) flow computations one NodeConnectivity call performs — and, via
// Scratch, across every call on that scratch.
type flowWS struct {
	arcs  [][]flowArc
	level []int
	iter  []int
	queue []int
}

// size readies the workspace for a flow network of nn split nodes,
// retaining per-node arc capacity from earlier, larger runs.
func (ws *flowWS) size(nn int) {
	if len(ws.arcs) < nn {
		grown := make([][]flowArc, nn)
		copy(grown, ws.arcs)
		ws.arcs = grown
	}
	ws.level = growInts(ws.level, nn)
	ws.iter = growInts(ws.iter, nn)
	if cap(ws.queue) < nn {
		ws.queue = make([]int, 0, nn)
	}
	for i := 0; i < nn; i++ {
		ws.arcs[i] = ws.arcs[i][:0]
	}
}

func (ws *flowWS) addArc(u, v, c int) {
	ws.arcs[u] = append(ws.arcs[u], flowArc{to: v, rev: len(ws.arcs[v]), cap: c})
	ws.arcs[v] = append(ws.arcs[v], flowArc{to: u, rev: len(ws.arcs[u]) - 1, cap: 0})
}

func (ws *flowWS) bfs(src, sink, nn int) bool {
	level := ws.level
	for i := 0; i < nn; i++ {
		level[i] = -1
	}
	level[src] = 0
	queue := ws.queue[:0]
	queue = append(queue, src)
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, a := range ws.arcs[u] {
			if a.cap > 0 && level[a.to] < 0 {
				level[a.to] = level[u] + 1
				queue = append(queue, a.to)
			}
		}
	}
	ws.queue = queue
	return level[sink] >= 0
}

func (ws *flowWS) dfs(u, sink, f int) int {
	if u == sink {
		return f
	}
	for ; ws.iter[u] < len(ws.arcs[u]); ws.iter[u]++ {
		a := &ws.arcs[u][ws.iter[u]]
		if a.cap > 0 && ws.level[a.to] == ws.level[u]+1 {
			got := f
			if a.cap < got {
				got = a.cap
			}
			if d := ws.dfs(a.to, sink, got); d > 0 {
				a.cap -= d
				ws.arcs[a.to][a.rev].cap += d
				return d
			}
		}
	}
	return 0
}

// localNodeConnectivityS is localNodeConnectivity running entirely on the
// reusable workspace: identical arc construction order and Dinic phases,
// so the flow value matches the allocating form exactly.
func localNodeConnectivityS(adj [][]int, s, t int, ws *flowWS) int {
	n := len(adj)
	nn := 2 * n
	ws.size(nn)
	inN := func(u int) int { return 2 * u }
	outN := func(u int) int { return 2*u + 1 }
	for u := 0; u < n; u++ {
		c := 1
		if u == s || u == t {
			c = n // endpoints are not removable
		}
		ws.addArc(inN(u), outN(u), c)
		for _, v := range adj[u] {
			ws.addArc(outN(u), inN(v), n)
		}
	}
	// Dinic's algorithm.
	src, sink := outN(s), inN(t)
	flow := 0
	for ws.bfs(src, sink, nn) {
		for i := 0; i < nn; i++ {
			ws.iter[i] = 0
		}
		for {
			f := ws.dfs(src, sink, n)
			if f == 0 {
				break
			}
			flow += f
		}
	}
	return flow
}
