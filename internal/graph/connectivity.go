package graph

// NodeConnectivity is the minimum number of nodes whose removal disconnects
// the undirected simple projection (or isolates a node), computed exactly
// via vertex-split max-flow between a fixed source and every non-neighbor,
// plus neighbor-of-source pairs — the standard exact algorithm. It returns
// 0 for disconnected graphs and n-1 for complete graphs.
func (g *Digraph) NodeConnectivity() int {
	adj := g.undirectedSimple()
	n := len(adj)
	if n < 2 {
		return 0
	}
	if !g.IsConnected() {
		return 0
	}
	// Complete graph: connectivity is n-1 and no vertex cut exists.
	complete := true
	for u := range adj {
		if len(adj[u]) != n-1 {
			complete = false
			break
		}
	}
	if complete {
		return n - 1
	}
	// Pick a minimum-degree node as the fixed endpoint.
	s := 0
	for u := range adj {
		if len(adj[u]) < len(adj[s]) {
			s = u
		}
	}
	best := n // upper bound
	isNbr := make([]bool, n)
	for _, v := range adj[s] {
		isNbr[v] = true
	}
	for t := 0; t < n; t++ {
		if t == s || isNbr[t] {
			continue
		}
		if k := localNodeConnectivity(adj, s, t); k < best {
			best = k
		}
	}
	// Also consider cuts separating neighbors of s from each other.
	for _, v := range adj[s] {
		vNbr := make(map[int]bool, len(adj[v]))
		for _, w := range adj[v] {
			vNbr[w] = true
		}
		for t := 0; t < n; t++ {
			if t == v || t == s || vNbr[t] {
				continue
			}
			if k := localNodeConnectivity(adj, v, t); k < best {
				best = k
			}
		}
	}
	if best == n {
		best = n - 1
	}
	return best
}

// localNodeConnectivity computes the maximum number of internally
// node-disjoint paths between s and t via unit-capacity max-flow on the
// vertex-split graph: node u becomes u_in (2u) and u_out (2u+1) joined by a
// unit arc; each undirected edge {u,v} becomes arcs u_out->v_in and
// v_out->u_in.
func localNodeConnectivity(adj [][]int, s, t int) int {
	n := len(adj)
	nn := 2 * n
	type arc struct {
		to, rev int
		cap     int
	}
	arcs := make([][]arc, nn)
	addArc := func(u, v, c int) {
		arcs[u] = append(arcs[u], arc{to: v, rev: len(arcs[v]), cap: c})
		arcs[v] = append(arcs[v], arc{to: u, rev: len(arcs[u]) - 1, cap: 0})
	}
	inN := func(u int) int { return 2 * u }
	outN := func(u int) int { return 2*u + 1 }
	for u := 0; u < n; u++ {
		c := 1
		if u == s || u == t {
			c = n // endpoints are not removable
		}
		addArc(inN(u), outN(u), c)
		for _, v := range adj[u] {
			addArc(outN(u), inN(v), n)
		}
	}
	// Dinic's algorithm.
	src, sink := outN(s), inN(t)
	level := make([]int, nn)
	iter := make([]int, nn)
	queue := make([]int, 0, nn)
	bfs := func() bool {
		for i := range level {
			level[i] = -1
		}
		level[src] = 0
		queue = queue[:0]
		queue = append(queue, src)
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, a := range arcs[u] {
				if a.cap > 0 && level[a.to] < 0 {
					level[a.to] = level[u] + 1
					queue = append(queue, a.to)
				}
			}
		}
		return level[sink] >= 0
	}
	var dfs func(u, f int) int
	dfs = func(u, f int) int {
		if u == sink {
			return f
		}
		for ; iter[u] < len(arcs[u]); iter[u]++ {
			a := &arcs[u][iter[u]]
			if a.cap > 0 && level[a.to] == level[u]+1 {
				got := f
				if a.cap < got {
					got = a.cap
				}
				if d := dfs(a.to, got); d > 0 {
					a.cap -= d
					arcs[a.to][a.rev].cap += d
					return d
				}
			}
		}
		return 0
	}
	flow := 0
	for bfs() {
		for i := range iter {
			iter[i] = 0
		}
		for {
			f := dfs(src, n)
			if f == 0 {
				break
			}
			flow += f
		}
	}
	return flow
}
