package graph

import (
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
)

// DefaultParallelCutoff is the node count at or above which the per-source
// fan-out passes (Brandes betweenness and closeness) run on a worker pool.
// Below it the goroutine hand-off costs more than the BFS work it hides.
const DefaultParallelCutoff = 64

// Scratch is a reusable workspace for the graph analytics passes: the
// simple-projection adjacency, BFS queues and distance arrays, Brandes
// dependency buffers, and core-number bucket arrays all live here and are
// reused across calls, so repeated analysis of a growing graph reaches a
// zero-allocation steady state (verified by the package benchmarks with
// ReportAllocs). A Scratch may be moved between graphs; projections are
// keyed on the graph identity and its mutation version and rebuilt only
// when stale.
//
// Convention (enforced by the dynalint scratchsafe analyzer): functions
// that take a *Scratch parameter treat it as temporaries only — they must
// not return the scratch's slices or store them in struct fields. Results
// go into caller-owned dst buffers.
//
// A Scratch is not safe for concurrent use; the parallel fan-out it runs
// internally is contained within each call.
type Scratch struct {
	// ParallelCutoff overrides DefaultParallelCutoff when positive;
	// negative disables the parallel fan-out entirely. Zero selects the
	// default.
	ParallelCutoff int
	// Workers is the fan-out pool size; zero selects GOMAXPROCS. The
	// numeric results do not depend on it (see parallelChunk).
	Workers int

	// Cached undirected/directed simple projections, keyed by graph
	// identity and version.
	undG   *Digraph
	undV   uint64
	und    [][]int
	dirG   *Digraph
	dirV   uint64
	dir    [][]int
	pairs  []uint64
	arenaU []int
	arenaD []int
	deg    []int

	// Single-pass temporaries.
	ws0    passWS
	dist2  []int
	fsum   []float64
	fcnt   []int
	marks  []bool
	marks2 []bool
	bins   []int
	pos    []int
	vert   []int
	next   []float64

	// Max-flow workspace for NodeConnectivityS.
	flow flowWS

	// Parallel fan-out state.
	pool []*passWS
	accs [][]float64
}

// passWS holds the per-source temporaries one worker needs for a BFS or
// Brandes pass.
type passWS struct {
	dist  []int
	queue []int
	stack []int
	order []int
	sigma []float64
	delta []float64
	load  []float64
	preds [][]int
	pbuf  []int
}

// NewScratch returns an empty workspace.
func NewScratch() *Scratch { return &Scratch{} }

//dynalint:hotpath
func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

//dynalint:hotpath
func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func zeroFloats(s []float64) {
	for i := range s {
		s[i] = 0
	}
}

// size ensures the per-source temporaries cover n nodes.
func (w *passWS) size(n int) {
	w.dist = growInts(w.dist, n)
	w.sigma = growFloats(w.sigma, n)
	w.delta = growFloats(w.delta, n)
	w.load = growFloats(w.load, n)
	if cap(w.queue) < n {
		w.queue = make([]int, 0, n)
	}
	if cap(w.stack) < n {
		w.stack = make([]int, 0, n)
	}
	if cap(w.order) < n {
		w.order = make([]int, 0, n)
	}
	if cap(w.preds) < n {
		preds := make([][]int, n)
		copy(preds, w.preds)
		w.preds = preds
	}
	w.preds = w.preds[:n]
}

// undirected returns the cached undirected simple projection of g,
// rebuilding it (into reused storage) when the graph mutated. Adjacency
// lists are sorted ascending, matching Digraph.undirectedSimple.
//
//dynalint:hotpath
func (s *Scratch) undirected(g *Digraph) [][]int {
	if s.undG == g && s.undV == g.version {
		return s.und
	}
	n := len(g.out)
	s.pairs = s.pairs[:0]
	for u, vs := range g.out {
		for _, v := range vs {
			if u == v {
				continue
			}
			a, b := u, v
			if a > b {
				a, b = b, a
			}
			s.pairs = append(s.pairs, uint64(a)<<32|uint64(b))
		}
	}
	slices.Sort(s.pairs)
	s.pairs = slices.Compact(s.pairs)
	s.deg = growInts(s.deg, n)
	for i := range s.deg {
		s.deg[i] = 0
	}
	for _, p := range s.pairs {
		s.deg[int(p>>32)]++
		s.deg[int(p&0xffffffff)]++
	}
	s.arenaU = growInts(s.arenaU, 2*len(s.pairs))
	if cap(s.und) < n {
		s.und = make([][]int, n)
	}
	s.und = s.und[:n]
	off := 0
	for u := 0; u < n; u++ {
		s.und[u] = s.arenaU[off : off : off+s.deg[u]]
		off += s.deg[u]
	}
	// Pairs are sorted by (min,max), so each node receives its smaller
	// neighbors (ascending) before its larger ones (ascending): the lists
	// come out sorted without a per-node sort.
	for _, p := range s.pairs {
		a, b := int(p>>32), int(p&0xffffffff)
		s.und[a] = append(s.und[a], b)
		s.und[b] = append(s.und[b], a)
	}
	s.undG, s.undV = g, g.version
	return s.und
}

// directed returns the cached directed simple projection (distinct
// successors, self-loops removed, sorted ascending).
//
//dynalint:hotpath
func (s *Scratch) directed(g *Digraph) [][]int {
	if s.dirG == g && s.dirV == g.version {
		return s.dir
	}
	n := len(g.out)
	s.pairs = s.pairs[:0]
	for u, vs := range g.out {
		for _, v := range vs {
			if u != v {
				s.pairs = append(s.pairs, uint64(u)<<32|uint64(v))
			}
		}
	}
	slices.Sort(s.pairs)
	s.pairs = slices.Compact(s.pairs)
	s.deg = growInts(s.deg, n)
	for i := range s.deg {
		s.deg[i] = 0
	}
	for _, p := range s.pairs {
		s.deg[int(p>>32)]++
	}
	s.arenaD = growInts(s.arenaD, len(s.pairs))
	if cap(s.dir) < n {
		s.dir = make([][]int, n)
	}
	s.dir = s.dir[:n]
	off := 0
	for u := 0; u < n; u++ {
		s.dir[u] = s.arenaD[off : off : off+s.deg[u]]
		off += s.deg[u]
	}
	for _, p := range s.pairs {
		s.dir[int(p>>32)] = append(s.dir[int(p>>32)], int(p&0xffffffff))
	}
	s.dirG, s.dirV = g, g.version
	return s.dir
}

// bfsInto fills dist with BFS distances from src (-1 unreachable), reusing
// queue as the frontier. It returns the queue in visit order.
//
//dynalint:hotpath
func bfsInto(adj [][]int, src int, dist []int, queue []int) []int {
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue = queue[:0]
	queue = append(queue, src)
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, v := range adj[u] {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return queue
}

// workers resolves the fan-out pool size.
func (s *Scratch) workers() int {
	if s.Workers > 0 {
		return s.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// parallel reports whether an n-node per-source pass should fan out.
func (s *Scratch) parallel(n int) bool {
	cutoff := s.ParallelCutoff
	if cutoff == 0 {
		cutoff = DefaultParallelCutoff
	}
	return cutoff > 0 && n >= cutoff && s.workers() > 1
}

// ensurePool grows the worker workspace pool to nw entries sized for n.
func (s *Scratch) ensurePool(nw, n int) {
	for len(s.pool) < nw {
		s.pool = append(s.pool, &passWS{})
	}
	for i := 0; i < nw; i++ {
		s.pool[i].size(n)
	}
}

// fanOutIndependent runs source(src, ws) for every src in [0,n) on the
// worker pool. Sources must be mutually independent (each writes only its
// own output slots), which makes the result trivially bit-identical to a
// sequential pass.
func (s *Scratch) fanOutIndependent(n int, source func(src int, ws *passWS)) {
	nw := s.workers()
	if nw > n {
		nw = n
	}
	s.ensurePool(nw, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < nw; i++ {
		ws := s.pool[i]
		wg.Add(1)
		go func(ws *passWS) {
			defer wg.Done()
			for {
				src := int(next.Add(1)) - 1
				if src >= n {
					return
				}
				source(src, ws)
			}
		}(ws)
	}
	wg.Wait()
}

// fanOutOrdered runs source(src, ws, buf) for every src in [0,n), where
// each source deposits its whole contribution vector into a private buffer
// (zeroed before the call, at most one addition per slot). Sources are
// processed in rounds; after each round merge(buf) is invoked in ascending
// source order. Because every source's vector is added to the caller's
// accumulator exactly where the sequential loop would add it, the result is
// bit-identical to the sequential pass for any worker count.
func (s *Scratch) fanOutOrdered(n int, source func(src int, ws *passWS, buf []float64), merge func(buf []float64)) {
	nw := s.workers()
	round := 2 * nw // sources in flight per round
	if round > n {
		round = n
	}
	for len(s.accs) < round {
		s.accs = append(s.accs, nil)
	}
	for i := 0; i < round; i++ {
		s.accs[i] = growFloats(s.accs[i], n)
	}
	s.ensurePool(nw, n)
	for base := 0; base < n; base += round {
		hi := base + round
		if hi > n {
			hi = n
		}
		var next atomic.Int64
		next.Store(int64(base))
		var wg sync.WaitGroup
		for i := 0; i < nw; i++ {
			ws := s.pool[i]
			wg.Add(1)
			go func(ws *passWS) {
				defer wg.Done()
				for {
					src := int(next.Add(1)) - 1
					if src >= hi {
						return
					}
					buf := s.accs[src-base]
					zeroFloats(buf)
					source(src, ws, buf)
				}
			}(ws)
		}
		wg.Wait()
		for src := base; src < hi; src++ {
			merge(s.accs[src-base])
		}
	}
}

// DiameterS is Diameter using scratch storage.
//
//dynalint:hotpath
func (g *Digraph) DiameterS(s *Scratch) int {
	adj := s.undirected(g)
	s.ws0.size(len(adj))
	best := 0
	for src := range adj {
		s.ws0.queue = bfsInto(adj, src, s.ws0.dist, s.ws0.queue)
		for _, d := range s.ws0.dist {
			if d > best {
				best = d
			}
		}
	}
	return best
}

// DegreeCentralityInto writes DegreeCentrality into dst (resized as
// needed) and returns it.
//
//dynalint:hotpath
func (g *Digraph) DegreeCentralityInto(dst []float64, s *Scratch) []float64 {
	adj := s.undirected(g)
	n := len(adj)
	dst = growFloats(dst, n)
	zeroFloats(dst)
	if n < 2 {
		return dst
	}
	norm := 1 / float64(n-1)
	for u := range adj {
		dst[u] = float64(len(adj[u])) * norm
	}
	return dst
}

// ClosenessCentralityInto writes ClosenessCentrality into dst and returns
// it. Each node's value is independent of the others, so the parallel
// fan-out is bit-identical to the sequential pass.
//
//dynalint:hotpath
func (g *Digraph) ClosenessCentralityInto(dst []float64, s *Scratch) []float64 {
	adj := s.undirected(g)
	n := len(adj)
	dst = growFloats(dst, n)
	zeroFloats(dst)
	if n < 2 {
		return dst
	}
	if s.parallel(n) {
		//dynalint:ignore hotalloc the fan-out closure is allocated once per call and amortized over >= cutoff sources
		s.fanOutIndependent(n, func(u int, ws *passWS) {
			closenessSource(adj, u, ws, dst)
		})
		return dst
	}
	s.ws0.size(n)
	for u := range adj {
		closenessSource(adj, u, &s.ws0, dst)
	}
	return dst
}

// closenessSource computes one node's Wasserman–Faust closeness and writes
// it to dst[u]; no other slot is touched, so concurrent sources are safe.
//
//dynalint:hotpath
func closenessSource(adj [][]int, u int, ws *passWS, dst []float64) {
	n := len(adj)
	ws.queue = bfsInto(adj, u, ws.dist, ws.queue)
	sum, reach := 0, 0
	for _, d := range ws.dist {
		if d > 0 {
			sum += d
			reach++
		}
	}
	if sum > 0 {
		frac := float64(reach) / float64(n-1)
		dst[u] = frac * float64(reach) / float64(sum)
	}
}

// brandesSource runs one Brandes accumulation from src, adding each node's
// dependency into acc (the source itself excluded).
//
//dynalint:hotpath
func brandesSource(adj [][]int, src int, ws *passWS, acc []float64) {
	n := len(adj)
	ws.stack = ws.stack[:0]
	ws.queue = ws.queue[:0]
	for i := 0; i < n; i++ {
		ws.sigma[i] = 0
		ws.dist[i] = -1
		ws.delta[i] = 0
		ws.preds[i] = ws.preds[i][:0]
	}
	ws.sigma[src] = 1
	ws.dist[src] = 0
	ws.queue = append(ws.queue, src)
	for head := 0; head < len(ws.queue); head++ {
		v := ws.queue[head]
		ws.stack = append(ws.stack, v)
		for _, w := range adj[v] {
			if ws.dist[w] < 0 {
				ws.dist[w] = ws.dist[v] + 1
				ws.queue = append(ws.queue, w)
			}
			if ws.dist[w] == ws.dist[v]+1 {
				ws.sigma[w] += ws.sigma[v]
				ws.preds[w] = append(ws.preds[w], v)
			}
		}
	}
	for i := len(ws.stack) - 1; i >= 0; i-- {
		w := ws.stack[i]
		for _, v := range ws.preds[w] {
			ws.delta[v] += ws.sigma[v] / ws.sigma[w] * (1 + ws.delta[w])
		}
		if w != src {
			acc[w] += ws.delta[w]
		}
	}
}

// BetweennessCentralityInto writes BetweennessCentrality into dst and
// returns it, fanning the per-source Brandes passes over the worker pool
// for graphs at or above the parallel cutoff.
//
//dynalint:hotpath
func (g *Digraph) BetweennessCentralityInto(dst []float64, s *Scratch) []float64 {
	adj := s.undirected(g)
	n := len(adj)
	dst = growFloats(dst, n)
	zeroFloats(dst)
	if n < 3 {
		return dst
	}
	if s.parallel(n) {
		// Each source adds at most once into each slot of its private
		// buffer, so the ordered merge reproduces the sequential
		// summation exactly.
		//dynalint:ignore hotalloc the fan-out closures are allocated once per call and amortized over >= cutoff sources
		s.fanOutOrdered(n,
			func(src int, ws *passWS, buf []float64) { brandesSource(adj, src, ws, buf) },
			func(buf []float64) {
				for i, v := range buf {
					dst[i] += v
				}
			})
	} else {
		s.ws0.size(n)
		for src := 0; src < n; src++ {
			brandesSource(adj, src, &s.ws0, dst)
		}
	}
	norm := 1 / (float64(n-1) * float64(n-2))
	for i := range dst {
		dst[i] *= norm
	}
	return dst
}

// loadSource routes one unit of commodity from src to every reachable node
// along shortest paths (Goh load), accumulating the transit load into acc.
//
//dynalint:hotpath
func loadSource(adj [][]int, src int, ws *passWS, acc []float64) {
	ws.queue = bfsInto(adj, src, ws.dist, ws.queue)
	dist := ws.dist
	ws.order = ws.order[:0]
	for v, d := range dist {
		if d > 0 {
			ws.order = append(ws.order, v)
		}
	}
	order := ws.order
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && dist[order[j]] > dist[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	for v := range ws.load {
		ws.load[v] = 0
	}
	for _, v := range order {
		ws.load[v] = 1 // each node must receive one unit from src
	}
	for _, w := range order {
		ws.pbuf = ws.pbuf[:0]
		for _, v := range adj[w] {
			if dist[v] >= 0 && dist[v] == dist[w]-1 {
				ws.pbuf = append(ws.pbuf, v)
			}
		}
		if len(ws.pbuf) == 0 {
			continue
		}
		share := ws.load[w] / float64(len(ws.pbuf))
		for _, v := range ws.pbuf {
			if v != src {
				acc[v] += share
			}
			ws.load[v] += share
		}
	}
}

// LoadCentralityInto writes LoadCentrality into dst and returns it. Load
// stays sequential even above the cutoff: a source adds to the same
// accumulator slot many times during one pass, so a buffered parallel
// merge could not reproduce the sequential summation order bit-for-bit —
// and bit-identity with the plain implementation is the contract here.
//
//dynalint:hotpath
func (g *Digraph) LoadCentralityInto(dst []float64, s *Scratch) []float64 {
	adj := s.undirected(g)
	n := len(adj)
	dst = growFloats(dst, n)
	zeroFloats(dst)
	if n < 3 {
		return dst
	}
	s.ws0.size(n)
	for src := 0; src < n; src++ {
		loadSource(adj, src, &s.ws0, dst)
	}
	norm := 1 / (float64(n-1) * float64(n-2))
	for i := range dst {
		dst[i] *= norm
	}
	return dst
}

// NodeConnectivityS is NodeConnectivity reusing the scratch projection,
// the BFS buffers for the connectivity pre-checks, and the scratch's
// max-flow workspace for the inner vertex-split Dinic runs, so a warm
// scratch computes connectivity without allocating.
//
//dynalint:hotpath
func (g *Digraph) NodeConnectivityS(s *Scratch) int {
	adj := s.undirected(g)
	n := len(adj)
	if n < 2 {
		return 0
	}
	s.ws0.size(n)
	s.ws0.queue = bfsInto(adj, 0, s.ws0.dist, s.ws0.queue)
	for _, d := range s.ws0.dist {
		if d < 0 {
			return 0 // disconnected
		}
	}
	complete := true
	for u := range adj {
		if len(adj[u]) != n-1 {
			complete = false
			break
		}
	}
	if complete {
		return n - 1
	}
	st := 0
	for u := range adj {
		if len(adj[u]) < len(adj[st]) {
			st = u
		}
	}
	best := n
	s.marks = growBools(s.marks, n)
	for i := range s.marks {
		s.marks[i] = false
	}
	for _, v := range adj[st] {
		s.marks[v] = true
	}
	for t := 0; t < n; t++ {
		if t == st || s.marks[t] {
			continue
		}
		if k := localNodeConnectivityS(adj, st, t, &s.flow); k < best {
			best = k
		}
	}
	s.marks2 = growBools(s.marks2, n)
	for i := range s.marks2 {
		s.marks2[i] = false
	}
	for _, v := range adj[st] {
		for _, w := range adj[v] {
			s.marks2[w] = true
		}
		for t := 0; t < n; t++ {
			if t == v || t == st || s.marks2[t] {
				continue
			}
			if k := localNodeConnectivityS(adj, v, t, &s.flow); k < best {
				best = k
			}
		}
		for _, w := range adj[v] {
			s.marks2[w] = false
		}
	}
	if best == n {
		best = n - 1
	}
	return best
}

//dynalint:hotpath
func growBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

// AvgClusteringCoefficientS is AvgClusteringCoefficient using scratch
// storage; the mean is accumulated in node order, matching
// Mean(ClusteringCoefficients()).
//
//dynalint:hotpath
func (g *Digraph) AvgClusteringCoefficientS(s *Scratch) float64 {
	adj := s.undirected(g)
	n := len(adj)
	if n == 0 {
		return 0
	}
	s.marks = growBools(s.marks, n)
	for i := range s.marks {
		s.marks[i] = false
	}
	sum := 0.0
	for u := range adj {
		k := len(adj[u])
		if k < 2 {
			continue
		}
		for _, v := range adj[u] {
			s.marks[v] = true
		}
		links := 0
		for _, v := range adj[u] {
			for _, w := range adj[v] {
				if w > v && s.marks[w] {
					links++
				}
			}
		}
		for _, v := range adj[u] {
			s.marks[v] = false
		}
		sum += 2 * float64(links) / (float64(k) * float64(k-1))
	}
	return sum / float64(n)
}

// AvgNeighborDegreesInto writes AvgNeighborDegrees into dst and returns it.
//
//dynalint:hotpath
func (g *Digraph) AvgNeighborDegreesInto(dst []float64, s *Scratch) []float64 {
	adj := s.undirected(g)
	dst = growFloats(dst, len(adj))
	zeroFloats(dst)
	for u := range adj {
		if len(adj[u]) == 0 {
			continue
		}
		sum := 0
		for _, v := range adj[u] {
			sum += len(adj[v])
		}
		dst[u] = float64(sum) / float64(len(adj[u]))
	}
	return dst
}

// AvgDegreeConnectivityS is AvgDegreeConnectivity using scratch storage:
// per-degree sums in slice buckets, combined in ascending-degree order —
// the same deterministic order the map-based implementation sorts into.
//
//dynalint:hotpath
func (g *Digraph) AvgDegreeConnectivityS(s *Scratch) float64 {
	adj := s.undirected(g)
	maxDeg := 0
	for u := range adj {
		if len(adj[u]) > maxDeg {
			maxDeg = len(adj[u])
		}
	}
	s.fsum = growFloats(s.fsum, maxDeg+1)
	zeroFloats(s.fsum)
	s.fcnt = growInts(s.fcnt, maxDeg+1)
	for i := range s.fcnt {
		s.fcnt[i] = 0
	}
	for u := range adj {
		k := len(adj[u])
		if k == 0 {
			continue
		}
		sum := 0
		for _, v := range adj[u] {
			sum += len(adj[v])
		}
		s.fsum[k] += float64(sum) / float64(k)
		s.fcnt[k]++
	}
	degrees := 0
	total := 0.0
	for k := 1; k <= maxDeg; k++ {
		if s.fcnt[k] == 0 {
			continue
		}
		total += s.fsum[k] / float64(s.fcnt[k])
		degrees++
	}
	if degrees == 0 {
		return 0
	}
	return total / float64(degrees)
}

// AvgNodesWithinKS is AvgNodesWithinK using scratch storage.
//
//dynalint:hotpath
func (g *Digraph) AvgNodesWithinKS(k int, s *Scratch) float64 {
	adj := s.undirected(g)
	n := len(adj)
	if n == 0 {
		return 0
	}
	s.ws0.size(n)
	sum := 0
	for src := range adj {
		s.ws0.queue = bfsInto(adj, src, s.ws0.dist, s.ws0.queue)
		for v, d := range s.ws0.dist {
			if v != src && d > 0 && d <= k {
				sum++
			}
		}
	}
	return float64(sum) / float64(n)
}

// PageRankInto writes PageRank into dst and returns it, using scratch
// storage for the directed projection and the iteration vectors.
//
//dynalint:hotpath
func (g *Digraph) PageRankInto(dst []float64, s *Scratch, d float64, iters int, tol float64) []float64 {
	adj := s.directed(g)
	n := len(adj)
	if n == 0 {
		return dst[:0]
	}
	dst = growFloats(dst, n)
	s.next = growFloats(s.next, n)
	rank, next := dst, s.next
	inv := 1 / float64(n)
	for i := range rank {
		rank[i] = inv
	}
	swapped := false
	for it := 0; it < iters; it++ {
		dangling := 0.0
		for u := range adj {
			if len(adj[u]) == 0 {
				dangling += rank[u]
			}
		}
		base := (1-d)*inv + d*dangling*inv
		for i := range next {
			next[i] = base
		}
		for u, vs := range adj {
			if len(vs) == 0 {
				continue
			}
			share := d * rank[u] / float64(len(vs))
			for _, v := range vs {
				next[v] += share
			}
		}
		diff := 0.0
		for i := range rank {
			delta := next[i] - rank[i]
			if delta < 0 {
				delta = -delta
			}
			diff += delta
		}
		rank, next = next, rank
		swapped = !swapped
		if diff < tol {
			break
		}
	}
	if swapped {
		// The final ranks landed in the scratch buffer; copy them into
		// the caller-owned dst (scratch slices must not escape).
		copy(dst, rank)
	}
	return dst
}

// CoreNumbersInto writes CoreNumbers into dst and returns it.
//
//dynalint:hotpath
func (g *Digraph) CoreNumbersInto(dst []int, s *Scratch) []int {
	adj := s.undirected(g)
	n := len(adj)
	dst = growInts(dst, n)
	s.dist2 = growInts(s.dist2, n) // degree array
	deg := s.dist2
	maxDeg := 0
	for u := range adj {
		deg[u] = len(adj[u])
		if deg[u] > maxDeg {
			maxDeg = deg[u]
		}
	}
	s.bins = growInts(s.bins, maxDeg+2)
	bins := s.bins
	for i := range bins {
		bins[i] = 0
	}
	for _, d := range deg[:n] {
		bins[d]++
	}
	startIdx := 0
	for d := 0; d <= maxDeg; d++ {
		count := bins[d]
		bins[d] = startIdx
		startIdx += count
	}
	s.pos = growInts(s.pos, n)
	s.vert = growInts(s.vert, n)
	pos, vert := s.pos, s.vert
	for u := 0; u < n; u++ {
		pos[u] = bins[deg[u]]
		vert[pos[u]] = u
		bins[deg[u]]++
	}
	for d := maxDeg; d > 0; d-- {
		bins[d] = bins[d-1]
	}
	bins[0] = 0
	core := dst
	copy(core, deg[:n])
	for i := 0; i < n; i++ {
		v := vert[i]
		for _, u := range adj[v] {
			if core[u] > core[v] {
				du := core[u]
				pu := pos[u]
				pw := bins[du]
				w := vert[pw]
				if u != w {
					pos[u], pos[w] = pw, pu
					vert[pu], vert[pw] = w, u
				}
				bins[du]++
				core[u]--
			}
		}
	}
	return core
}
