package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// pathGraph returns the undirected-style path 0-1-2-...-(n-1) encoded with
// forward directed edges.
func pathGraph(n int) *Digraph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		if err := g.AddEdge(i, i+1); err != nil {
			panic(err)
		}
	}
	return g
}

func starGraph(leaves int) *Digraph {
	g := New(leaves + 1)
	for i := 1; i <= leaves; i++ {
		if err := g.AddEdge(0, i); err != nil {
			panic(err)
		}
	}
	return g
}

func completeGraph(n int) *Digraph {
	g := New(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				if err := g.AddEdge(i, j); err != nil {
					panic(err)
				}
			}
		}
	}
	return g
}

func cycleGraph(n int) *Digraph {
	g := New(n)
	for i := 0; i < n; i++ {
		if err := g.AddEdge(i, (i+1)%n); err != nil {
			panic(err)
		}
	}
	return g
}

func randomGraph(n, m int, rng *rand.Rand) *Digraph {
	g := New(n)
	for i := 0; i < m; i++ {
		_ = g.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	return g
}

func TestEmptyGraph(t *testing.T) {
	g := New(0)
	if g.N() != 0 || g.M() != 0 {
		t.Fatalf("empty graph: N=%d M=%d", g.N(), g.M())
	}
	if g.Density() != 0 || g.Diameter() != 0 || g.Reciprocity() != 0 {
		t.Fatal("empty graph metrics must be zero")
	}
	if g.PageRank(0.85, 50, 1e-9) != nil {
		t.Fatal("empty graph pagerank must be nil")
	}
	if got := g.AvgClusteringCoefficient(); got != 0 {
		t.Fatalf("empty clustering = %v", got)
	}
}

func TestSingleNode(t *testing.T) {
	g := New(1)
	if !g.IsConnected() {
		t.Fatal("single node must be connected")
	}
	if g.NodeConnectivity() != 0 {
		t.Fatal("single node connectivity must be 0")
	}
	pr := g.PageRank(0.85, 50, 1e-9)
	if len(pr) != 1 || !almostEq(pr[0], 1) {
		t.Fatalf("single node pagerank = %v", pr)
	}
}

func TestAddEdgeOutOfRange(t *testing.T) {
	g := New(2)
	if err := g.AddEdge(0, 2); err == nil {
		t.Fatal("expected out-of-range error")
	}
	if err := g.AddEdge(-1, 0); err == nil {
		t.Fatal("expected out-of-range error for negative node")
	}
	if g.M() != 0 {
		t.Fatal("failed AddEdge must not change M")
	}
}

func TestDegreesAndVolume(t *testing.T) {
	g := New(3)
	_ = g.AddEdge(0, 1)
	_ = g.AddEdge(0, 1) // parallel edge
	_ = g.AddEdge(1, 2)
	if g.OutDegree(0) != 2 || g.InDegree(1) != 2 || g.Degree(1) != 3 {
		t.Fatalf("degrees wrong: out0=%d in1=%d deg1=%d", g.OutDegree(0), g.InDegree(1), g.Degree(1))
	}
	if g.Volume() != 6 {
		t.Fatalf("volume = %d, want 6", g.Volume())
	}
	if !almostEq(g.AvgInDegree(), 1) || !almostEq(g.AvgOutDegree(), 1) {
		t.Fatalf("avg degrees: in=%v out=%v", g.AvgInDegree(), g.AvgOutDegree())
	}
	if g.MaxDegree() != 3 {
		t.Fatalf("max degree = %d, want 3", g.MaxDegree())
	}
}

func TestDensity(t *testing.T) {
	// Complete directed graph on 4 nodes has density 1.
	if d := completeGraph(4).Density(); !almostEq(d, 1) {
		t.Fatalf("complete density = %v", d)
	}
	// Path 0->1->2: 2 simple edges / (3*2).
	if d := pathGraph(3).Density(); !almostEq(d, 2.0/6.0) {
		t.Fatalf("path density = %v", d)
	}
	// Parallel edges must not inflate density.
	g := New(2)
	_ = g.AddEdge(0, 1)
	_ = g.AddEdge(0, 1)
	if d := g.Density(); !almostEq(d, 0.5) {
		t.Fatalf("parallel-edge density = %v, want 0.5", d)
	}
}

func TestDiameter(t *testing.T) {
	cases := []struct {
		name string
		g    *Digraph
		want int
	}{
		{"path5", pathGraph(5), 4},
		{"star6", starGraph(5), 2},
		{"complete4", completeGraph(4), 1},
		{"cycle6", cycleGraph(6), 3},
		{"single", New(1), 0},
	}
	for _, tc := range cases {
		if got := tc.g.Diameter(); got != tc.want {
			t.Errorf("%s diameter = %d, want %d", tc.name, got, tc.want)
		}
	}
}

func TestDiameterDisconnected(t *testing.T) {
	g := New(6) // path of 3 plus path of 2 plus isolated node
	_ = g.AddEdge(0, 1)
	_ = g.AddEdge(1, 2)
	_ = g.AddEdge(3, 4)
	if got := g.Diameter(); got != 2 {
		t.Fatalf("disconnected diameter = %d, want 2 (largest component)", got)
	}
}

func TestReciprocity(t *testing.T) {
	g := New(3)
	_ = g.AddEdge(0, 1)
	_ = g.AddEdge(1, 0)
	_ = g.AddEdge(1, 2)
	// Simple edges: (0,1),(1,0),(1,2); 2 of 3 reciprocated.
	if r := g.Reciprocity(); !almostEq(r, 2.0/3.0) {
		t.Fatalf("reciprocity = %v, want 2/3", r)
	}
	if r := pathGraph(4).Reciprocity(); r != 0 {
		t.Fatalf("path reciprocity = %v, want 0", r)
	}
	if r := completeGraph(3).Reciprocity(); !almostEq(r, 1) {
		t.Fatalf("complete reciprocity = %v, want 1", r)
	}
}

func TestConnectedComponents(t *testing.T) {
	g := New(7)
	_ = g.AddEdge(0, 1)
	_ = g.AddEdge(1, 2)
	_ = g.AddEdge(2, 0)
	_ = g.AddEdge(3, 4)
	comps := g.ConnectedComponents()
	if len(comps) != 4 {
		t.Fatalf("components = %d, want 4", len(comps))
	}
	if len(comps[0]) != 3 || len(comps[1]) != 2 {
		t.Fatalf("component sizes = %d,%d want 3,2", len(comps[0]), len(comps[1]))
	}
	if g.IsConnected() {
		t.Fatal("graph must not be connected")
	}
	if !cycleGraph(4).IsConnected() {
		t.Fatal("cycle must be connected")
	}
}

func TestDegreeCentrality(t *testing.T) {
	cent := starGraph(4).DegreeCentrality()
	if !almostEq(cent[0], 1) {
		t.Fatalf("star hub centrality = %v, want 1", cent[0])
	}
	for i := 1; i < 5; i++ {
		if !almostEq(cent[i], 0.25) {
			t.Fatalf("star leaf centrality = %v, want 0.25", cent[i])
		}
	}
}

func TestClosenessCentrality(t *testing.T) {
	// Path 0-1-2: closeness(1) = 2/(1+1) = 1; closeness(0) = 2/3.
	cent := pathGraph(3).ClosenessCentrality()
	if !almostEq(cent[1], 1) {
		t.Fatalf("center closeness = %v, want 1", cent[1])
	}
	if !almostEq(cent[0], 2.0/3.0) {
		t.Fatalf("end closeness = %v, want 2/3", cent[0])
	}
	// Disconnected: isolated node scores 0, pair scores scaled by reach.
	g := New(3)
	_ = g.AddEdge(0, 1)
	cent = g.ClosenessCentrality()
	if cent[2] != 0 {
		t.Fatalf("isolated closeness = %v, want 0", cent[2])
	}
	if !almostEq(cent[0], 0.5) { // (1/2)*(1/1)
		t.Fatalf("pair closeness = %v, want 0.5", cent[0])
	}
}

func TestBetweennessCentrality(t *testing.T) {
	// Path 0-1-2-3-4: betweenness of middle node 2 is 4 pairs /( (4*3)/2 )=...
	// Raw pair count through node 2: (0,3),(0,4),(1,3),(1,4) = 4 of C(4,2)=6.
	cent := pathGraph(5).BetweennessCentrality()
	if !almostEq(cent[2], 4.0/6.0) {
		t.Fatalf("middle betweenness = %v, want 4/6", cent[2])
	}
	if cent[0] != 0 || cent[4] != 0 {
		t.Fatalf("endpoint betweenness nonzero: %v %v", cent[0], cent[4])
	}
	// Star: hub carries all C(n-1,2) pairs -> normalized 1.
	cent = starGraph(5).BetweennessCentrality()
	if !almostEq(cent[0], 1) {
		t.Fatalf("star hub betweenness = %v, want 1", cent[0])
	}
}

func TestLoadCentralityMatchesBetweennessOnTrees(t *testing.T) {
	// On trees shortest paths are unique, so load == betweenness exactly.
	for _, g := range []*Digraph{pathGraph(6), starGraph(5)} {
		bc := g.BetweennessCentrality()
		lc := g.LoadCentrality()
		for i := range bc {
			if !almostEq(bc[i], lc[i]) {
				t.Fatalf("node %d: load %v != betweenness %v", i, lc[i], bc[i])
			}
		}
	}
}

func TestPageRank(t *testing.T) {
	pr := cycleGraph(5).PageRank(0.85, 100, 1e-12)
	for _, v := range pr {
		if !almostEq(v, 0.2) {
			t.Fatalf("cycle pagerank = %v, want uniform 0.2", pr)
		}
	}
	// Star directed outward: leaves absorb rank; hub keeps only base.
	pr = starGraph(4).PageRank(0.85, 100, 1e-12)
	if pr[0] >= pr[1] {
		t.Fatalf("outward star: hub rank %v must be below leaf rank %v", pr[0], pr[1])
	}
	sum := 0.0
	for _, v := range pr {
		sum += v
	}
	if !almostEq(sum, 1) {
		t.Fatalf("pagerank sum = %v, want 1", sum)
	}
}

func TestClusteringCoefficient(t *testing.T) {
	// Triangle: every node clusters perfectly.
	if c := completeGraph(3).AvgClusteringCoefficient(); !almostEq(c, 1) {
		t.Fatalf("triangle clustering = %v", c)
	}
	if c := pathGraph(5).AvgClusteringCoefficient(); c != 0 {
		t.Fatalf("path clustering = %v, want 0", c)
	}
	// Triangle plus pendant: node 0 has neighbors {1,2,3}, one linked pair.
	g := completeGraph(3)
	p := g.AddNode()
	_ = g.AddEdge(0, p)
	cs := g.ClusteringCoefficients()
	if !almostEq(cs[0], 1.0/3.0) {
		t.Fatalf("hub clustering = %v, want 1/3", cs[0])
	}
	if !almostEq(cs[1], 1) || cs[3] != 0 {
		t.Fatalf("clustering = %v", cs)
	}
}

func TestAvgNeighborDegrees(t *testing.T) {
	vals := starGraph(3).AvgNeighborDegrees()
	if !almostEq(vals[0], 1) { // hub's neighbors are leaves of degree 1
		t.Fatalf("hub neighbor degree = %v, want 1", vals[0])
	}
	if !almostEq(vals[1], 3) { // leaf's single neighbor is the hub, degree 3
		t.Fatalf("leaf neighbor degree = %v, want 3", vals[1])
	}
}

func TestAverageDegreeConnectivity(t *testing.T) {
	m := starGraph(3).AverageDegreeConnectivity()
	if !almostEq(m[3], 1) || !almostEq(m[1], 3) {
		t.Fatalf("degree connectivity = %v", m)
	}
	s := starGraph(3).AvgDegreeConnectivity()
	if !almostEq(s, 2) {
		t.Fatalf("scalar degree connectivity = %v, want 2", s)
	}
}

func TestNodesWithinK(t *testing.T) {
	g := pathGraph(5)
	counts := g.NodesWithinK(2)
	want := []int{2, 3, 4, 3, 2}
	for i, w := range want {
		if counts[i] != w {
			t.Fatalf("NodesWithinK(2)[%d] = %d, want %d (all=%v)", i, counts[i], w, counts)
		}
	}
	if avg := g.AvgNodesWithinK(2); !almostEq(avg, 14.0/5.0) {
		t.Fatalf("avg within 2 = %v", avg)
	}
}

func TestNodeConnectivity(t *testing.T) {
	cases := []struct {
		name string
		g    *Digraph
		want int
	}{
		{"path4", pathGraph(4), 1},
		{"cycle5", cycleGraph(5), 2},
		{"complete4", completeGraph(4), 3},
		{"star5", starGraph(4), 1},
		{"pair", pathGraph(2), 1},
	}
	for _, tc := range cases {
		if got := tc.g.NodeConnectivity(); got != tc.want {
			t.Errorf("%s connectivity = %d, want %d", tc.name, got, tc.want)
		}
	}
	// Disconnected graph has connectivity 0.
	g := New(4)
	_ = g.AddEdge(0, 1)
	_ = g.AddEdge(2, 3)
	if got := g.NodeConnectivity(); got != 0 {
		t.Fatalf("disconnected connectivity = %d, want 0", got)
	}
}

func TestNodeConnectivityCompleteBipartite(t *testing.T) {
	// K_{2,3}: connectivity = 2.
	g := New(5)
	for _, u := range []int{0, 1} {
		for _, v := range []int{2, 3, 4} {
			_ = g.AddEdge(u, v)
		}
	}
	if got := g.NodeConnectivity(); got != 2 {
		t.Fatalf("K23 connectivity = %d, want 2", got)
	}
}

// Property-based checks over random multigraphs.

func TestRandomGraphInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(12)
		m := r.Intn(4 * n)
		g := randomGraph(n, m, rng)
		if d := g.Density(); d < 0 || d > 1 {
			t.Logf("density out of range: %v", d)
			return false
		}
		if rec := g.Reciprocity(); rec < 0 || rec > 1 {
			t.Logf("reciprocity out of range: %v", rec)
			return false
		}
		if dia := g.Diameter(); dia < 0 || dia > n-1 {
			t.Logf("diameter out of range: %v", dia)
			return false
		}
		pr := g.PageRank(0.85, 100, 1e-10)
		sum := 0.0
		for _, v := range pr {
			if v < 0 {
				return false
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Logf("pagerank sum = %v", sum)
			return false
		}
		for _, v := range g.BetweennessCentrality() {
			if v < -1e-12 || v > 1+1e-9 {
				t.Logf("betweenness out of range: %v", v)
				return false
			}
		}
		for _, v := range g.ClosenessCentrality() {
			if v < 0 || v > 1+1e-9 {
				t.Logf("closeness out of range: %v", v)
				return false
			}
		}
		for _, c := range g.ClusteringCoefficients() {
			if c < 0 || c > 1+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestNodeConnectivityUpperBound(t *testing.T) {
	// Connectivity never exceeds minimum degree.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(8)
		g := randomGraph(n, n+r.Intn(2*n), r)
		if !g.IsConnected() {
			return g.NodeConnectivity() == 0
		}
		adj := g.undirectedSimple()
		minDeg := n
		for _, nbrs := range adj {
			if len(nbrs) < minDeg {
				minDeg = len(nbrs)
			}
		}
		return g.NodeConnectivity() <= minDeg
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestLoadVsBetweennessRandomTrees(t *testing.T) {
	// Random trees: unique shortest paths, so the two centralities agree.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(10)
		g := New(n)
		for v := 1; v < n; v++ {
			_ = g.AddEdge(r.Intn(v), v)
		}
		bc := g.BetweennessCentrality()
		lc := g.LoadCentrality()
		for i := range bc {
			if math.Abs(bc[i]-lc[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("mean of nil must be 0")
	}
	if !almostEq(Mean([]float64{1, 2, 3}), 2) {
		t.Fatal("mean of 1,2,3 must be 2")
	}
}
