// Package graph implements the directed-multigraph representation and the
// graph analytics that underpin DynaMiner's web conversation graph (WCG)
// features f7–f25: order, size, degree, density, volume, diameter,
// reciprocity, the centrality family (degree, closeness, betweenness, load,
// node connectivity), clustering coefficient, neighborhood statistics, and
// PageRank.
//
// The semantics of every measure follow the NetworkX definitions that the
// paper's feature names are drawn from: distance-based measures operate on
// the undirected simple projection of the multigraph, degree-based measures
// on the multigraph itself, and PageRank on the directed simple projection.
package graph

import (
	"fmt"
	"sort"
)

// Digraph is a directed multigraph over nodes 0..N-1. Parallel edges and
// self-loops are permitted; most analytics project them away as documented
// on each method. The zero value is an empty graph.
type Digraph struct {
	out [][]int // out[u] lists v for every edge u->v (with multiplicity)
	in  [][]int // in[v] lists u for every edge u->v (with multiplicity)
	m   int     // total number of edges including parallels

	// version counts mutations; Scratch uses it to invalidate cached
	// projections of this graph.
	version uint64
}

// Version returns the mutation counter, incremented by every AddNode and
// AddEdge. Two calls observing the same version see the same topology.
func (g *Digraph) Version() uint64 { return g.version }

// New returns a Digraph with n isolated nodes.
func New(n int) *Digraph {
	return &Digraph{
		out: make([][]int, n),
		in:  make([][]int, n),
	}
}

// N returns the number of nodes (the graph order).
func (g *Digraph) N() int { return len(g.out) }

// M returns the number of edges including parallel edges (the graph size).
func (g *Digraph) M() int { return g.m }

// AddNode appends a new isolated node and returns its id.
func (g *Digraph) AddNode() int {
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	g.version++
	return len(g.out) - 1
}

// AddEdge inserts a directed edge u->v. Parallel edges accumulate.
func (g *Digraph) AddEdge(u, v int) error {
	if u < 0 || u >= len(g.out) || v < 0 || v >= len(g.out) {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, len(g.out))
	}
	g.out[u] = append(g.out[u], v)
	g.in[v] = append(g.in[v], u)
	g.m++
	g.version++
	return nil
}

// OutDegree returns the multigraph out-degree of u.
func (g *Digraph) OutDegree(u int) int { return len(g.out[u]) }

// InDegree returns the multigraph in-degree of u.
func (g *Digraph) InDegree(u int) int { return len(g.in[u]) }

// Degree returns the total multigraph degree (in + out) of u.
func (g *Digraph) Degree(u int) int { return len(g.in[u]) + len(g.out[u]) }

// OutNeighbors returns the multiset of successors of u. The returned slice
// aliases internal storage and must not be modified.
func (g *Digraph) OutNeighbors(u int) []int { return g.out[u] }

// InNeighbors returns the multiset of predecessors of u. The returned slice
// aliases internal storage and must not be modified.
func (g *Digraph) InNeighbors(u int) []int { return g.in[u] }

// undirectedSimple returns, for each node, the sorted set of distinct
// neighbors in the undirected simple projection (parallel edges collapsed,
// self-loops removed).
func (g *Digraph) undirectedSimple() [][]int {
	n := len(g.out)
	adj := make([][]int, n)
	seen := make(map[[2]int]struct{}, g.m)
	add := func(u, v int) {
		if u == v {
			return
		}
		key := [2]int{u, v}
		if u > v {
			key = [2]int{v, u}
		}
		if _, ok := seen[key]; ok {
			return
		}
		seen[key] = struct{}{}
		adj[key[0]] = append(adj[key[0]], key[1])
		adj[key[1]] = append(adj[key[1]], key[0])
	}
	for u, vs := range g.out {
		for _, v := range vs {
			add(u, v)
		}
	}
	for u := range adj {
		sort.Ints(adj[u])
	}
	return adj
}

// directedSimple returns, for each node, the sorted set of distinct
// successors (parallel edges collapsed; self-loops removed).
func (g *Digraph) directedSimple() [][]int {
	n := len(g.out)
	adj := make([][]int, n)
	for u, vs := range g.out {
		set := make(map[int]struct{}, len(vs))
		for _, v := range vs {
			if v != u {
				set[v] = struct{}{}
			}
		}
		for v := range set {
			adj[u] = append(adj[u], v)
		}
		sort.Ints(adj[u])
	}
	return adj
}

// Density measures how close the number of simple directed edges is to the
// maximum possible: m_simple / (n*(n-1)). Zero for graphs with fewer than
// two nodes.
func (g *Digraph) Density() float64 {
	n := len(g.out)
	if n < 2 {
		return 0
	}
	simple := 0
	for _, vs := range g.directedSimple() {
		simple += len(vs)
	}
	return float64(simple) / float64(n*(n-1))
}

// Volume is the sum of multigraph degrees over all nodes (2·M).
func (g *Digraph) Volume() int { return 2 * g.m }

// AvgInDegree is the mean multigraph in-degree (M/N).
func (g *Digraph) AvgInDegree() float64 {
	if len(g.out) == 0 {
		return 0
	}
	return float64(g.m) / float64(len(g.out))
}

// AvgOutDegree is the mean multigraph out-degree (M/N). It equals
// AvgInDegree because every edge contributes to exactly one of each.
func (g *Digraph) AvgOutDegree() float64 { return g.AvgInDegree() }

// MaxDegree returns the largest multigraph degree in the graph, or zero for
// the empty graph.
func (g *Digraph) MaxDegree() int {
	best := 0
	for u := range g.out {
		if d := g.Degree(u); d > best {
			best = d
		}
	}
	return best
}

// Reciprocity is the fraction of simple directed edges (u,v) for which the
// reverse edge (v,u) also exists. Zero for edgeless graphs.
func (g *Digraph) Reciprocity() float64 {
	adj := g.directedSimple()
	has := make(map[[2]int]struct{})
	total := 0
	for u, vs := range adj {
		for _, v := range vs {
			has[[2]int{u, v}] = struct{}{}
			total++
		}
	}
	if total == 0 {
		return 0
	}
	recip := 0
	for e := range has {
		if _, ok := has[[2]int{e[1], e[0]}]; ok {
			recip++
		}
	}
	return float64(recip) / float64(total)
}
