package graph

// bfsDistances runs a breadth-first search over the given adjacency lists
// starting at src and returns the distance to every node, with -1 marking
// unreachable nodes.
func bfsDistances(adj [][]int, src int) []int {
	dist := make([]int, len(adj))
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range adj[u] {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// Diameter is the longest shortest-path distance between any pair of nodes
// in the undirected simple projection. For disconnected graphs it is the
// maximum eccentricity over reachable pairs (the diameter of the largest
// component by eccentricity), so it stays finite and comparable between
// WCGs, which are frequently weakly connected but occasionally fragmented.
func (g *Digraph) Diameter() int {
	adj := g.undirectedSimple()
	best := 0
	for src := range adj {
		for _, d := range bfsDistances(adj, src) {
			if d > best {
				best = d
			}
		}
	}
	return best
}

// ConnectedComponents returns the weakly connected components of the graph
// as slices of node ids, largest first.
func (g *Digraph) ConnectedComponents() [][]int {
	adj := g.undirectedSimple()
	seen := make([]bool, len(adj))
	var comps [][]int
	for s := range adj {
		if seen[s] {
			continue
		}
		var comp []int
		stack := []int{s}
		seen[s] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, u)
			for _, v := range adj[u] {
				if !seen[v] {
					seen[v] = true
					stack = append(stack, v)
				}
			}
		}
		comps = append(comps, comp)
	}
	for i := 1; i < len(comps); i++ {
		for j := i; j > 0 && len(comps[j]) > len(comps[j-1]); j-- {
			comps[j], comps[j-1] = comps[j-1], comps[j]
		}
	}
	return comps
}

// IsConnected reports whether the undirected simple projection is a single
// connected component. Graphs with fewer than two nodes are connected.
func (g *Digraph) IsConnected() bool {
	if len(g.out) < 2 {
		return true
	}
	return len(g.ConnectedComponents()) == 1
}

// NodesWithinK returns, for each node, the number of other nodes whose
// undirected shortest-path distance is at most k. This backs feature f24
// (Avg-K-Nearest-Neighbors): "average number of nodes at k-nodes distance
// from each node".
func (g *Digraph) NodesWithinK(k int) []int {
	adj := g.undirectedSimple()
	counts := make([]int, len(adj))
	for src := range adj {
		for v, d := range bfsDistances(adj, src) {
			if v != src && d > 0 && d <= k {
				counts[src]++
			}
		}
	}
	return counts
}

// AvgNodesWithinK is the mean of NodesWithinK over all nodes; zero for the
// empty graph.
func (g *Digraph) AvgNodesWithinK(k int) float64 {
	counts := g.NodesWithinK(k)
	if len(counts) == 0 {
		return 0
	}
	sum := 0
	for _, c := range counts {
		sum += c
	}
	return float64(sum) / float64(len(counts))
}
