// Package synth generates the ground-truth corpus DynaMiner is trained and
// evaluated on. The paper's dataset (770 exploit-kit infection PCAPs from
// malware-traffic-analysis.net plus 980 benign browsing captures) is not
// redistributable, so this package synthesizes statistically equivalent
// episodes: per-family models parameterized with Table I's host counts,
// redirect-chain lengths and payload mixes, the Figure 1/2 enticement
// distribution, Section II's timing statistics, and the noise sources the
// paper's misclassification analysis names (redirect-free compressed-
// payload infections, benign downloads from unofficial sources, torrent
// sessions). Because DynaMiner is payload-agnostic, reproducing these
// observable distributions reproduces the learning problem.
package synth

import (
	"fmt"
	"math/rand"
	"net/http"
	"net/netip"
	"time"

	"dynaminer/internal/httpstream"
)

// Episode is one labeled conversation: the unit of ground truth.
type Episode struct {
	Infection  bool
	Family     string // exploit-kit family, or benign scenario name
	Enticement string // "google", "bing", "social", "compromised", "empty", "redacted", "legit"
	Txs        []httpstream.Transaction
}

// Config parameterizes corpus generation.
type Config struct {
	// Seed drives all randomness; equal seeds give equal corpora.
	Seed int64
	// Infections and Benign are episode counts. Zero values default to the
	// paper's ground truth sizes (770 / 980).
	Infections int
	Benign     int
	// StartTime anchors episode timestamps; zero defaults to the ground
	// truth collection window.
	StartTime time.Time
}

func (c Config) withDefaults() Config {
	if c.Infections == 0 {
		c.Infections = 770
	}
	if c.Benign == 0 {
		c.Benign = 980
	}
	if c.StartTime.IsZero() {
		c.StartTime = time.Date(2016, 3, 1, 8, 0, 0, 0, time.UTC)
	}
	return c
}

// GenerateCorpus produces the labeled episode corpus: infections drawn from
// the family mix of Table I and benign episodes from the Section II-A
// browsing scenarios. The order interleaves classes deterministically.
func GenerateCorpus(cfg Config) []Episode {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	episodes := make([]Episode, 0, cfg.Infections+cfg.Benign)

	fams := familyPicks(cfg.Infections, rng)
	for i := 0; i < cfg.Infections; i++ {
		at := cfg.StartTime.Add(time.Duration(rng.Int63n(int64(90 * 24 * time.Hour))))
		episodes = append(episodes, GenerateInfection(fams[i], at, rng))
	}
	for i := 0; i < cfg.Benign; i++ {
		at := cfg.StartTime.Add(time.Duration(rng.Int63n(int64(90 * 24 * time.Hour))))
		episodes = append(episodes, GenerateBenign(benignScenario(rng), at, rng))
	}
	rng.Shuffle(len(episodes), func(i, j int) { episodes[i], episodes[j] = episodes[j], episodes[i] })
	return episodes
}

// familyPicks distributes n infections over the families proportionally to
// the Table I PCAP counts.
func familyPicks(n int, rng *rand.Rand) []string {
	total := 0
	for _, f := range Families {
		total += f.Weight
	}
	out := make([]string, n)
	for i := range out {
		r := rng.Intn(total)
		for _, f := range Families {
			if r < f.Weight {
				out[i] = f.Name
				break
			}
			r -= f.Weight
		}
	}
	return out
}

// episodeBuilder accumulates transactions with a moving clock.
type episodeBuilder struct {
	rng    *rand.Rand
	now    time.Time
	victim netip.Addr
	port   uint16
	txs    []httpstream.Transaction
}

func newBuilder(start time.Time, rng *rand.Rand) *episodeBuilder {
	return &episodeBuilder{
		rng:    rng,
		now:    start,
		victim: netip.AddrFrom4([4]byte{10, 0, byte(rng.Intn(250)), byte(1 + rng.Intn(250))}),
		port:   uint16(49152 + rng.Intn(10000)),
	}
}

// advance moves the clock forward by a uniform duration in [min,max].
func (b *episodeBuilder) advance(min, max time.Duration) {
	span := int64(max - min)
	if span <= 0 {
		b.now = b.now.Add(min)
		return
	}
	b.now = b.now.Add(min + time.Duration(b.rng.Int63n(span)))
}

// txOpts carries the optional fields of a generated transaction.
type txOpts struct {
	method   string
	status   int
	ctype    string
	size     int
	referer  string
	location string
	body     []byte
	cookie   string
	ua       string
	dnt      bool
	xflash   string
	respLag  time.Duration
}

// add appends one transaction at the current clock.
func (b *episodeBuilder) add(host, uri string, o txOpts) {
	if o.method == "" {
		o.method = "GET"
	}
	if o.status == 0 {
		o.status = 200
	}
	if o.respLag == 0 {
		o.respLag = time.Duration(10+b.rng.Intn(120)) * time.Millisecond
	}
	reqHdr := http.Header{}
	if o.referer != "" {
		reqHdr.Set("Referer", o.referer)
	}
	if o.cookie != "" {
		reqHdr.Set("Cookie", o.cookie)
	}
	if o.ua != "" {
		reqHdr.Set("User-Agent", o.ua)
	}
	if o.dnt {
		reqHdr.Set("DNT", "1")
	}
	if o.xflash != "" {
		reqHdr.Set("X-Flash-Version", o.xflash)
	}
	respHdr := http.Header{}
	if o.location != "" {
		respHdr.Set("Location", o.location)
	}
	if o.ctype != "" {
		respHdr.Set("Content-Type", o.ctype)
	}
	size := o.size
	if size == 0 && len(o.body) > 0 {
		size = len(o.body)
	}
	b.txs = append(b.txs, httpstream.Transaction{
		ClientIP:    b.victim,
		ServerIP:    ipForHost(host),
		ClientPort:  b.port,
		ServerPort:  80,
		Method:      o.method,
		URI:         uri,
		Host:        host,
		ReqHdr:      reqHdr,
		ReqTime:     b.now,
		StatusCode:  o.status,
		RespHdr:     respHdr,
		RespTime:    b.now.Add(o.respLag),
		ContentType: o.ctype,
		BodySize:    size,
		Body:        o.body,
	})
}

// url builds an absolute URL for referrer/location fields.
func url(host, uri string) string { return "http://" + host + uri }

// ipForHost derives a stable pseudo-random public IPv4 for a hostname, so
// repeated contacts hit the same address and distinct hosts differ.
func ipForHost(host string) netip.Addr {
	var h uint32 = 2166136261
	for i := 0; i < len(host); i++ {
		h ^= uint32(host[i])
		h *= 16777619
	}
	// Map into 198.18.0.0/15 (benchmark range, never a victim 10/8 address).
	return netip.AddrFrom4([4]byte{198, byte(18 + (h>>24)&1), byte(h >> 16), byte(h >> 8)})
}

var errUnknownFamily = fmt.Errorf("synth: unknown family")
