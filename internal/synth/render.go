package synth

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"dynaminer/internal/httpstream"
	"dynaminer/internal/pcap"
)

// maxRenderedBody caps response bodies written into pcap files so multi-
// hundred-megabyte synthetic payloads do not bloat captures. Payload *size*
// is irrelevant to the 37 features (only counts and types matter), so the
// cap does not change analytics results on the pcap path.
const maxRenderedBody = 64 << 10

// Conversations renders the episode into TCP conversations with real HTTP
// bytes, one conversation per (client port, server) pair, ready to be
// written as a pcap file and re-parsed by the full ingestion pipeline.
func (e *Episode) Conversations() []pcap.Conversation {
	// Group transactions by server, keeping capture order within a group.
	type group struct {
		key string
		txs []*httpstream.Transaction
	}
	var order []string
	byServer := make(map[string]*group)
	for i := range e.Txs {
		tx := &e.Txs[i]
		key := tx.Host + "|" + tx.ServerIP.String()
		g, ok := byServer[key]
		if !ok {
			g = &group{key: key}
			byServer[key] = g
			order = append(order, key)
		}
		g.txs = append(g.txs, tx)
	}

	convs := make([]pcap.Conversation, 0, len(order))
	for gi, key := range order {
		g := byServer[key]
		first := g.txs[0]
		conv := pcap.Conversation{
			ClientIP:   first.ClientIP,
			ServerIP:   first.ServerIP,
			ClientPort: first.ClientPort + uint16(gi),
			ServerPort: first.ServerPort,
		}
		for _, tx := range g.txs {
			conv.Exchanges = append(conv.Exchanges,
				pcap.Exchange{ClientToServer: true, Payload: renderRequest(tx), Timestamp: tx.ReqTime},
				pcap.Exchange{ClientToServer: false, Payload: renderResponse(tx), Timestamp: tx.RespTime},
			)
		}
		convs = append(convs, conv)
	}
	return convs
}

// WritePCAP renders the episode and writes it as a pcap capture.
func (e *Episode) WritePCAP(w io.Writer) error {
	return pcap.WriteConversations(w, e.Conversations())
}

// renderRequest serializes the request half of a transaction as HTTP/1.1
// wire bytes.
func renderRequest(tx *httpstream.Transaction) []byte {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s %s HTTP/1.1\r\nHost: %s\r\n", tx.Method, tx.URI, tx.Host)
	keys := make([]string, 0, len(tx.ReqHdr))
	for k := range tx.ReqHdr {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, v := range tx.ReqHdr[k] {
			fmt.Fprintf(&sb, "%s: %s\r\n", k, v)
		}
	}
	if tx.Method == "POST" {
		sb.WriteString("Content-Length: 11\r\nContent-Type: application/x-www-form-urlencoded\r\n\r\ndata=beacon")
		return []byte(sb.String())
	}
	sb.WriteString("\r\n")
	return []byte(sb.String())
}

// renderResponse serializes the response half of a transaction. Body bytes
// come from tx.Body when present (redirect-bearing documents), otherwise
// filler of the declared size capped at maxRenderedBody.
func renderResponse(tx *httpstream.Transaction) []byte {
	body := tx.Body
	if len(body) == 0 && tx.BodySize > 0 {
		n := tx.BodySize
		if n > maxRenderedBody {
			n = maxRenderedBody
		}
		body = make([]byte, n)
		for i := range body {
			body[i] = 'x'
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "HTTP/1.1 %d %s\r\n", tx.StatusCode, statusText(tx.StatusCode))
	if tx.ContentType != "" {
		fmt.Fprintf(&sb, "Content-Type: %s\r\n", tx.ContentType)
	}
	if loc := tx.RespHdr.Get("Location"); loc != "" {
		fmt.Fprintf(&sb, "Location: %s\r\n", loc)
	}
	if sc := tx.RespHdr.Get("Set-Cookie"); sc != "" {
		fmt.Fprintf(&sb, "Set-Cookie: %s\r\n", sc)
	}
	fmt.Fprintf(&sb, "Content-Length: %d\r\n\r\n", len(body))
	out := append([]byte(sb.String()), body...)
	return out
}

func statusText(code int) string {
	switch code {
	case 200:
		return "OK"
	case 301:
		return "Moved Permanently"
	case 302:
		return "Found"
	case 304:
		return "Not Modified"
	case 404:
		return "Not Found"
	case 403:
		return "Forbidden"
	case 500:
		return "Internal Server Error"
	default:
		return "Status"
	}
}

// WritePCAPNG renders the episode and writes it as a pcapng capture.
func (e *Episode) WritePCAPNG(w io.Writer) error {
	var all []pcap.Packet
	for i, c := range e.Conversations() {
		pkts, err := pcap.BuildConversation(c)
		if err != nil {
			return fmt.Errorf("conversation %d: %w", i, err)
		}
		all = append(all, pkts...)
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].Timestamp.Before(all[j].Timestamp) })
	nw := pcap.NewNGWriter(w)
	for _, p := range all {
		if err := nw.WritePacket(p); err != nil {
			return err
		}
	}
	return nw.Flush()
}
