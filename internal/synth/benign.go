package synth

import (
	"math/rand"
	"time"
)

// Benign scenario names (Section II-A's collection methodology) with their
// share of the benign corpus. The last two are the noise sources the
// paper's false-positive analysis names: downloads of benign content from
// unofficial sites, and long torrent/video sessions.
var benignScenarios = []struct {
	name  string
	share float64
}{
	{"search", 0.28},
	{"social", 0.15},
	{"webmail", 0.14},
	{"video", 0.12},
	{"alexa", 0.23},
	{"unofficial-download", 0.05},
	{"torrent", 0.03},
}

func benignScenario(rng *rand.Rand) string {
	r := rng.Float64()
	for _, s := range benignScenarios {
		if r < s.share {
			return s.name
		}
		r -= s.share
	}
	return "alexa"
}

// GenerateBenign synthesizes one infection-free browsing episode of the
// given scenario starting at the given time.
func GenerateBenign(scenario string, at time.Time, rng *rand.Rand) Episode {
	b := newBuilder(at, rng)
	ua := userAgents[rng.Intn(len(userAgents))]
	dnt := rng.Float64() < 0.25

	switch scenario {
	case "search":
		genSearch(b, ua, dnt, rng)
	case "social":
		genSocial(b, ua, dnt, rng)
	case "webmail":
		genWebmail(b, ua, dnt, rng)
	case "video":
		genVideo(b, ua, dnt, rng)
	case "unofficial-download":
		genUnofficialDownload(b, ua, dnt, rng)
	case "torrent":
		genTorrent(b, ua, dnt, rng)
	default:
		scenario = "alexa"
		genAlexa(b, ua, dnt, rng)
	}
	return Episode{Infection: false, Family: "Benign", Enticement: scenario, Txs: b.txs}
}

// pageVisit renders a normal page load: the HTML document plus a handful of
// subresources (images, scripts, styles) with human think-time afterwards.
func pageVisit(b *episodeBuilder, host, uri, referer, ua string, dnt bool, rng *rand.Rand) string {
	// Tracking parameters make benign URI lengths overlap exploit-kit
	// gate URIs.
	if rng.Float64() < 0.35 {
		uri += "?utm_source=" + randWord(rng) + "&sid=" + randHex(rng, 8)
	}
	b.add(host, uri, txOpts{
		referer: referer, ua: ua, dnt: dnt, ctype: "text/html",
		size: 2000 + rng.Intn(40000), cookie: "sid=" + randHex(rng, 12),
	})
	page := url(host, uri)
	sub := rng.Intn(5)
	for i := 0; i < sub; i++ {
		b.advance(50*time.Millisecond, 600*time.Millisecond)
		switch rng.Intn(3) {
		case 0:
			b.add(host, "/"+randWord(rng)+".png", txOpts{
				referer: page, ua: ua, dnt: dnt, ctype: "image/png", size: 500 + rng.Intn(60000),
			})
		case 1:
			cdn := randAdHost(rng)
			b.add(cdn, "/"+randWord(rng)+".js", txOpts{
				referer: page, ua: ua, dnt: dnt, ctype: "application/javascript", size: 300 + rng.Intn(30000),
			})
		default:
			b.add(host, "/"+randWord(rng)+".css", txOpts{
				referer: page, ua: ua, dnt: dnt, ctype: "text/css", size: 200 + rng.Intn(8000),
			})
		}
	}
	// Dead links happen in normal browsing too.
	if rng.Float64() < 0.08 {
		b.advance(100*time.Millisecond, 500*time.Millisecond)
		b.add(host, "/"+randWord(rng), txOpts{
			referer: page, ua: ua, dnt: dnt, status: 404, ctype: "text/html", size: 300,
		})
	}
	// Analytics beacons: modern pages POST telemetry machine-paced.
	if rng.Float64() < 0.25 {
		b.advance(200*time.Millisecond, 900*time.Millisecond)
		b.add(randAdHost(rng), "/collect", txOpts{
			method: "POST", referer: page, ua: ua, dnt: dnt, ctype: "text/plain", size: 2 + rng.Intn(40),
		})
	}
	// Ad-network bounces: an occasional benign redirect hop (Table I:
	// benign redirects range 0-2).
	if rng.Float64() < 0.05 {
		b.advance(150*time.Millisecond, 700*time.Millisecond)
		dest := randBenignHost(rng)
		b.add(randAdHost(rng), "/click?"+randHex(rng, 5), txOpts{
			referer: page, ua: ua, dnt: dnt, status: 302, location: url(dest, "/"),
		})
		b.advance(100*time.Millisecond, 400*time.Millisecond)
		b.add(dest, "/", txOpts{
			referer: page, ua: ua, dnt: dnt, ctype: "text/html", size: 1500 + rng.Intn(20000),
		})
	}
	return page
}

func humanPause(b *episodeBuilder, rng *rand.Rand) {
	b.advance(8*time.Second, 45*time.Second)
}

// sideTabs models the paper's multi-tab collection setup: direct
// navigations (typed URLs, restored tabs) with no referrer.
func sideTabs(b *episodeBuilder, ua string, dnt bool, rng *rand.Rand) {
	for i := 0; i < 1+rng.Intn(2); i++ {
		humanPause(b, rng)
		pageVisit(b, randBenignHost(rng), "/"+randWord(rng), "", ua, dnt, rng)
	}
}

func genSearch(b *episodeBuilder, ua string, dnt bool, rng *rand.Rand) {
	engine := searchEngines[rng.Intn(len(searchEngines))]
	var ref string
	if rng.Float64() < 0.5 {
		// The capture starts at the clicked result: the search itself
		// happened before recording began, so the session has a
		// search-engine origin exactly like enticed infections do.
		ref = url(engine, "/search?q="+randWord(rng))
		pageVisit(b, randBenignHost(rng), "/"+randWord(rng), ref, ua, dnt, rng)
		humanPause(b, rng)
	} else {
		ref = pageVisit(b, engine, "/search?q="+randWord(rng), "", ua, dnt, rng)
	}
	if rng.Float64() < 0.5 {
		sideTabs(b, ua, dnt, rng)
	}
	// Official software downloads from trusted stores/repositories: the
	// traffic the detector's vendor weed-out list exists for.
	if rng.Float64() < 0.08 {
		humanPause(b, rng)
		store := storeSites[rng.Intn(len(storeSites))]
		sref := pageVisit(b, store, "/apps", ref, ua, dnt, rng)
		b.advance(2*time.Second, 10*time.Second)
		b.add(store, "/get/"+randWord(rng)+".exe", txOpts{
			referer: sref, ua: ua, dnt: dnt,
			ctype: "application/x-msdownload", size: (2 << 20) + rng.Intn(80<<20),
		})
	}
	clicks := 1 + rng.Intn(3)
	for i := 0; i < clicks; i++ {
		humanPause(b, rng)
		site := randBenignHost(rng)
		// Some result clicks bounce through the engine's tracking redirect.
		if rng.Float64() < 0.10 {
			b.add(engine, "/url?q="+randWord(rng), txOpts{
				referer: ref, ua: ua, dnt: dnt, status: 302, location: url(site, "/"),
			})
			b.advance(80*time.Millisecond, 300*time.Millisecond)
		}
		ref2 := pageVisit(b, site, "/"+randWord(rng), ref, ua, dnt, rng)
		if rng.Float64() < 0.4 { // browse deeper
			humanPause(b, rng)
			pageVisit(b, site, "/"+randWord(rng), ref2, ua, dnt, rng)
		}
	}
}

func genSocial(b *episodeBuilder, ua string, dnt bool, rng *rand.Rand) {
	social := socialSites[rng.Intn(len(socialSites))]
	var ref string
	if rng.Float64() < 0.4 {
		// Capture starts at a shared link: social-site origin.
		ref = url(social, "/l.php?u="+randWord(rng))
		pageVisit(b, randBenignHost(rng), "/"+randWord(rng), ref, ua, dnt, rng)
		humanPause(b, rng)
	} else {
		ref = pageVisit(b, social, "/feed", "", ua, dnt, rng)
	}
	for i := 0; i < 1+rng.Intn(3); i++ {
		humanPause(b, rng)
		// Shared link opens an external article.
		pageVisit(b, randBenignHost(rng), "/"+randWord(rng), ref, ua, dnt, rng)
	}
	if rng.Float64() < 0.5 {
		sideTabs(b, ua, dnt, rng)
	}
}

func genWebmail(b *episodeBuilder, ua string, dnt bool, rng *rand.Rand) {
	mail := webmailSites[rng.Intn(len(webmailSites))]
	ref := pageVisit(b, mail, "/inbox", "", ua, dnt, rng)
	humanPause(b, rng)
	// Attachment download: PDFs, office docs, occasionally executables
	// (Table I benign payload counts: 60 pdf, 30 exe over 980 episodes).
	r := rng.Float64()
	switch {
	case r < 0.30:
		b.add(mail, "/attachment/"+randHex(rng, 6)+".pdf", txOpts{
			referer: ref, ua: ua, dnt: dnt, ctype: "application/pdf", size: (50 << 10) + rng.Intn(2<<20),
		})
	case r < 0.45:
		b.add(mail, "/attachment/"+randHex(rng, 6)+".exe", txOpts{
			referer: ref, ua: ua, dnt: dnt, ctype: "application/x-msdownload", size: (200 << 10) + rng.Intn(8<<20),
		})
	case r < 0.75:
		b.add(mail, "/attachment/"+randHex(rng, 6)+".docx", txOpts{
			referer: ref, ua: ua, dnt: dnt, ctype: "application/vnd.openxmlformats", size: (20 << 10) + rng.Intn(1<<20),
		})
	}
	// Click a link embedded in a message.
	if rng.Float64() < 0.5 {
		humanPause(b, rng)
		pageVisit(b, randBenignHost(rng), "/"+randWord(rng), ref, ua, dnt, rng)
	}
	if rng.Float64() < 0.4 {
		sideTabs(b, ua, dnt, rng)
	}
	// Compose / sync polling: web apps fire machine-paced POSTs, giving
	// benign traffic fast inter-transaction stretches too.
	for i := 0; i < 2+rng.Intn(6); i++ {
		b.advance(800*time.Millisecond, 3*time.Second)
		b.add(mail, "/sync", txOpts{
			method: "POST", referer: ref, ua: ua, dnt: dnt, ctype: "application/json", size: 200 + rng.Intn(2000),
		})
	}
}

func genVideo(b *episodeBuilder, ua string, dnt bool, rng *rand.Rand) {
	site := videoSites[rng.Intn(len(videoSites))]
	ref := pageVisit(b, site, "/watch?v="+randHex(rng, 8), "", ua, dnt, rng)
	// Streaming chunks.
	xflash := ""
	if rng.Float64() < 0.4 { // Flash-based players send the version header
		xflash = "18,0,0," + randDigits(rng, 3)
	}
	for i := 0; i < 3+rng.Intn(8); i++ {
		b.advance(2*time.Second, 12*time.Second)
		b.add("video-cdn"+randDigits(rng, 2)+".net", "/chunk/"+randHex(rng, 10), txOpts{
			referer: ref, ua: ua, dnt: dnt, xflash: xflash, ctype: "video/mp4", size: (500 << 10) + rng.Intn(2<<20),
		})
	}
	// Ad click with a benign redirect hop or two (benign redirects max 2).
	if rng.Float64() < 0.35 {
		humanPause(b, rng)
		adHost := randAdHost(rng)
		dest := randBenignHost(rng)
		b.add(adHost, "/click?id="+randHex(rng, 6), txOpts{
			referer: ref, ua: ua, dnt: dnt, status: 302, location: url(dest, "/"+randWord(rng)),
		})
		b.advance(200*time.Millisecond, time.Second)
		pageVisit(b, dest, "/"+randWord(rng), url(adHost, "/click"), ua, dnt, rng)
	}
}

func genAlexa(b *episodeBuilder, ua string, dnt bool, rng *rand.Rand) {
	// Multi-tab browsing of random popular sites: up to the benign host
	// maximum of 34 (Table I), but typically a handful.
	tabs := 1 + rng.Intn(4)
	if rng.Float64() < 0.12 {
		tabs = 5 + rng.Intn(9) // heavy multi-tab session (up to ~34 hosts)
	}
	for i := 0; i < tabs; i++ {
		site := randBenignHost(rng)
		// Each tab is a direct navigation: no referrer.
		ref := pageVisit(b, site, "/", "", ua, dnt, rng)
		humanPause(b, rng)
		if rng.Float64() < 0.5 {
			pageVisit(b, site, "/"+randWord(rng), ref, ua, dnt, rng)
			humanPause(b, rng)
		}
	}
}

// genUnofficialDownload is the paper's leading false-positive shape: benign
// content fetched from unofficial mirrors behind ad redirects, with
// download dynamics that resemble an infection.
func genUnofficialDownload(b *episodeBuilder, ua string, dnt bool, rng *rand.Rand) {
	ref := pageVisit(b, randBenignHost(rng), "/freeware", "", ua, dnt, rng)
	humanPause(b, rng)
	hops := 1 + rng.Intn(2)
	prev := ref
	host := randAdHost(rng)
	for i := 0; i < hops; i++ {
		next := randMaliciousHost(rng) // unofficial mirrors share shady TLDs
		b.add(host, "/go?"+randHex(rng, 5), txOpts{
			referer: prev, ua: ua, dnt: dnt, status: 302, location: url(next, "/dl"),
		})
		b.advance(100*time.Millisecond, 800*time.Millisecond)
		prev = url(host, "/go")
		host = next
	}
	ext := ".exe"
	ct := "application/x-msdownload"
	if rng.Float64() < 0.4 {
		ext, ct = ".zip", "application/zip"
	}
	b.add(host, "/files/"+randWord(rng)+ext, txOpts{
		referer: prev, ua: ua, dnt: dnt, ctype: ct, size: (1 << 20) + rng.Intn(200<<20),
	})
}

// genTorrent is the paper's second false-positive shape: very large video
// payloads over an exceptionally long session.
func genTorrent(b *episodeBuilder, ua string, dnt bool, rng *rand.Rand) {
	site := randMaliciousHost(rng)
	ref := pageVisit(b, site, "/torrents", "", ua, dnt, rng)
	files := 2 + rng.Intn(6)
	for i := 0; i < files; i++ {
		b.advance(30*time.Second, 8*time.Minute)
		b.add("peer"+randDigits(rng, 3)+".swarm.net", "/piece/"+randHex(rng, 12), txOpts{
			referer: ref, ua: ua, dnt: dnt, ctype: "video/x-matroska",
			size: (246 << 20) + rng.Intn(900<<20), // 246MB - 1.1GB per the paper
		})
	}
}
