package synth

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"dynaminer/internal/httpstream"
)

// Download records one payload fetched during a case-study session, with
// the identity and in-the-wild age information the AV simulator needs.
type Download struct {
	ID        string // stable pseudo-hash of the payload
	HostName  string // which monitored client downloaded it
	Server    string // remote host that served it
	Ext       string // payload extension ("exe", "jar", "pdf", ...)
	Malicious bool
	// FirstSeen is when the payload first appeared in the wild; fresh
	// payloads (FirstSeen == download time) are the zero-days AV lags on.
	FirstSeen time.Time
	Time      time.Time // download time within the session
}

// StreamingSession is the Section VI-C forensic scenario: a 90-minute free
// live-streaming session (18 tabs, ~3000 transactions, 12 unique remote
// domains) during which fake "player update" popups lure the user into 32
// payload downloads, 5 of them malicious infection chains and one of those
// a fresh payload no AV engine knows yet.
type StreamingSession struct {
	Episode   Episode
	Downloads []Download
}

// GenerateStreamingSession synthesizes the forensic case-study capture.
func GenerateStreamingSession(start time.Time, rng *rand.Rand) StreamingSession {
	b := newBuilder(start, rng)
	ua := userAgents[0] // single user
	site := "atdhe-stream.net"
	cdn := []string{"chunk1.stream-cdn.net", "chunk2.stream-cdn.net"}

	// 12 unique remote domains total: site + 2 CDNs + 2 ad hosts + 2 tabs
	// + 5 malicious lure hosts (raw-IP C&C endpoints excluded).
	adHosts := []string{"ads.popnetwork.biz", "track.viewstat.com"}
	malHosts := []string{"player-fix.xyz", "flashupd.top", "swiftdl.pw", "getplugin.ru", "mediasetup.cc"}
	extraTabs := []string{"sportsnews.com", "forum-goals.net"}

	var downloads []Download
	session := StreamingSession{}

	ref := url(site, "/watch/euro2016-final")
	b.add(site, "/watch/euro2016-final", txOpts{ua: ua, ctype: "text/html", size: 48000})

	// Background tabs opened at the start.
	for _, tab := range extraTabs {
		b.advance(time.Second, 5*time.Second)
		b.add(tab, "/", txOpts{ua: ua, ctype: "text/html", size: 20000})
	}

	interruptions := []time.Duration{18 * time.Minute, 47 * time.Minute, 71 * time.Minute}
	nextInterrupt := 0
	benignDrops := 0
	const wantBenignDrops = 27

	end := start.Add(90 * time.Minute)
	for b.now.Before(end) {
		// Streaming chunks dominate the transaction count.
		host := cdn[rng.Intn(len(cdn))]
		b.add(host, "/seg/"+randHex(rng, 10)+".ts", txOpts{
			ua: ua, referer: ref, ctype: "video/mp2t", size: 180000 + rng.Intn(250000),
		})
		// Occasional ad beacons.
		if rng.Float64() < 0.15 {
			ah := adHosts[rng.Intn(len(adHosts))]
			b.add(ah, "/pixel?"+randHex(rng, 6), txOpts{
				ua: ua, referer: ref, ctype: "image/gif", size: 43,
			})
		}
		// Occasional benign media/codec downloads, spread across the
		// session to reach 27 benign payloads. These are archive and media
		// files — not likely-malicious types — so they draw no clue.
		if benignDrops < wantBenignDrops && rng.Float64() < 0.02 {
			server := adHosts[rng.Intn(len(adHosts))]
			ext := []string{"zip", "flv", "mp4"}[rng.Intn(3)]
			dl := Download{
				ID:        "stream-benign-" + fmt.Sprint(benignDrops),
				HostName:  "viewer",
				Server:    server,
				Ext:       ext,
				Malicious: false,
				FirstSeen: start.Add(-30 * 24 * time.Hour),
				Time:      b.now,
			}
			b.add(server, "/pack/"+randHex(rng, 6)+"."+ext, txOpts{
				ua: ua, referer: ref, ctype: "application/octet-stream", size: (1 << 20) + rng.Intn(5<<20),
			})
			downloads = append(downloads, dl)
			benignDrops++
		}

		// Stream interruption: popup demands a "player update"; the user
		// clicks and is chained through up to 4 redirects to a payload.
		if nextInterrupt < len(interruptions) && b.now.Sub(start) >= interruptions[nextInterrupt] {
			mal := malHosts[nextInterrupt : nextInterrupt+3]
			downloads = append(downloads, playerUpdateLure(b, ua, ref, mal, nextInterrupt, start, rng)...)
			nextInterrupt++
			// Page reload after the interruption.
			b.add(site, "/watch/euro2016-final", txOpts{ua: ua, ctype: "text/html", size: 48000})
		}
		b.advance(800*time.Millisecond, 2200*time.Millisecond)
	}

	session.Episode = Episode{Infection: true, Family: "FreeStreaming", Enticement: "legit", Txs: b.txs}
	session.Downloads = downloads
	return session
}

// playerUpdateLure renders one fake-update infection chain: redirects
// through the malicious hosts, then payload downloads. The first
// interruption delivers the fresh PDF nobody detects yet plus a Flash
// "update" executable; later interruptions deliver known Flash EXEs and a
// JAR, matching the 5 alerts of the case study.
func playerUpdateLure(b *episodeBuilder, ua, ref string, mal []string, wave int, start time.Time, rng *rand.Rand) []Download {
	prev := ref
	for i, host := range mal {
		b.advance(300*time.Millisecond, 900*time.Millisecond)
		next := "/update/" + randHex(rng, 5)
		if i+1 < len(mal) {
			b.add(host, next, txOpts{
				ua: ua, referer: prev, status: 302, location: url(mal[i+1], "/get"),
			})
		} else {
			b.add(host, next, txOpts{
				ua: ua, referer: prev, ctype: "text/html",
				body: landingBody(host, rng),
			})
		}
		prev = url(host, next)
	}
	last := mal[len(mal)-1]
	// Plugin-detection scripts served by the lure chain.
	for i := 0; i < 2+rng.Intn(3); i++ {
		b.add(mal[rng.Intn(len(mal))], "/"+randWord(rng)+".js", txOpts{
			ua: ua, referer: prev, ctype: "application/javascript", size: 500 + rng.Intn(6000),
		})
		b.advance(30*time.Millisecond, 200*time.Millisecond)
	}

	var drops []Download
	drop := func(ext, ctype, id string, fresh bool) {
		b.advance(500*time.Millisecond, 1500*time.Millisecond)
		firstSeen := start.Add(-30 * 24 * time.Hour) // circulating for a month
		if fresh {
			firstSeen = b.now // zero-day
		}
		drops = append(drops, Download{
			ID: id, HostName: "viewer", Server: last, Ext: ext,
			Malicious: true, FirstSeen: firstSeen, Time: b.now,
		})
		b.add(last, "/dl/"+randHex(rng, 6)+"."+ext, txOpts{
			ua: ua, referer: prev, ctype: ctype, size: (300 << 10) + rng.Intn(700<<10),
		})
	}
	switch wave {
	case 0:
		drop("exe", "application/x-msdownload", "flashfix-exe-0", false)
		drop("pdf", "application/pdf", freshPDFID, true)
	case 1:
		drop("exe", "application/x-msdownload", "flashfix-exe-1", false)
		drop("jar", "application/java-archive", "playerfix-jar", false)
	default:
		drop("exe", "application/x-msdownload", "flashfix-exe-2", false)
	}
	// Post-infection beacon.
	b.advance(2*time.Second, 8*time.Second)
	b.add(randCncIP(rng), "/u.php", txOpts{method: "POST", ua: ua, ctype: "text/plain", size: 64})
	return drops
}

// freshPDFID identifies the case study's zero-day PDF. The suffix is chosen
// so the simulated AV ensemble first flags it 11 days after first seen —
// the scenario parameter the paper reports, not a tuned result.
const freshPDFID = "fresh-pdf-dropper-v256"

// HostProfile describes one monitored machine of the Table VI
// mini-enterprise.
type HostProfile struct {
	Name string
	OS   string // "windows", "ubuntu", "macos"
	// Downloads per payload type over the 48 hours (Table VI rows).
	PDF, EXE, JAR int
	// Infections embedded in this host's traffic: extensions of the
	// malicious payloads whose downloads should raise alerts.
	InfectionExts []string
}

// Table6Hosts reproduces the Table VI setup: a Windows host (with a COTS
// AV), an Ubuntu host, and a MacOS host. The infection payload mixes match
// the alert breakdown the paper reports (3 Flash-update EXEs + 1 JAR on
// Windows, 3 JARs on Ubuntu, 1 DMG on MacOS); the two trojanized PDFs on
// the Windows host carry no conversation dynamics and are invisible to
// payload-agnostic analysis.
var Table6Hosts = []HostProfile{
	{Name: "win-host", OS: "windows", PDF: 11, EXE: 6, JAR: 5,
		InfectionExts: []string{"exe", "exe", "exe", "jar"}},
	{Name: "ubuntu-host", OS: "ubuntu", PDF: 15, EXE: 0, JAR: 8,
		InfectionExts: []string{"jar", "jar", "jar"}},
	{Name: "macos-host", OS: "macos", PDF: 6, EXE: 8, JAR: 3,
		InfectionExts: []string{"dmg"}},
}

// EnterpriseCapture is the 48-hour three-host capture of Table VI.
type EnterpriseCapture struct {
	Txs       []httpstream.Transaction
	Downloads []Download
}

// GenerateEnterprise48h synthesizes the live case-study traffic: two days
// of routine browsing per host with the profile's benign downloads spread
// through it and the profile's infections embedded as redirect-chained
// exploit deliveries. The per-host transaction streams are interleaved in
// time, as a proxy-deployed DynaMiner would observe them.
func GenerateEnterprise48h(start time.Time, rng *rand.Rand) EnterpriseCapture {
	var out EnterpriseCapture
	for hi, hp := range Table6Hosts {
		txs, dls := enterpriseHostTraffic(hp, start, rng, hi)
		out.Txs = append(out.Txs, txs...)
		out.Downloads = append(out.Downloads, dls...)
	}
	sort.SliceStable(out.Txs, func(i, j int) bool { return out.Txs[i].ReqTime.Before(out.Txs[j].ReqTime) })
	sort.SliceStable(out.Downloads, func(i, j int) bool { return out.Downloads[i].Time.Before(out.Downloads[j].Time) })
	return out
}

func enterpriseHostTraffic(hp HostProfile, start time.Time, rng *rand.Rand, hostIdx int) ([]httpstream.Transaction, []Download) {
	b := newBuilder(start.Add(time.Duration(hostIdx)*7*time.Minute), rng)
	ua := userAgents[hostIdx%len(userAgents)]
	var downloads []Download
	end := start.Add(48 * time.Hour)

	// Benign download schedule: spread the profile's counts over 48 h.
	type sched struct {
		ext, ctype string
		count      int
	}
	plan := []sched{
		{"pdf", "application/pdf", hp.PDF},
		{"exe", "application/x-msdownload", hp.EXE},
		{"jar", "application/java-archive", hp.JAR},
	}
	var benignDrops []sched
	for _, p := range plan {
		for i := 0; i < p.count; i++ {
			benignDrops = append(benignDrops, sched{p.ext, p.ctype, 1})
		}
	}
	rng.Shuffle(len(benignDrops), func(i, j int) { benignDrops[i], benignDrops[j] = benignDrops[j], benignDrops[i] })

	// Reserve slots: the first two PDFs on the Windows host are the
	// trojanized ones VirusTotal flags but DynaMiner cannot.
	trojanPDFs := 0
	infections := append([]string(nil), hp.InfectionExts...)

	sessionsPerDay := 10
	totalSessions := 2 * sessionsPerDay
	for s := 0; s < totalSessions && b.now.Before(end); s++ {
		// A browsing burst: a couple of page visits.
		ref := pageVisit(b, randBenignHost(rng), "/", "", ua, false, rng)
		humanPause(b, rng)
		if rng.Float64() < 0.5 {
			ref = pageVisit(b, randBenignHost(rng), "/"+randWord(rng), ref, ua, false, rng)
			humanPause(b, rng)
		}

		// Scheduled benign download in this session?
		if len(benignDrops) > 0 && rng.Float64() < 0.75 {
			d := benignDrops[0]
			benignDrops = benignDrops[1:]
			server := randBenignHost(rng)
			malPDF := hp.OS == "windows" && d.ext == "pdf" && trojanPDFs < 2
			if malPDF {
				trojanPDFs++
			}
			id := fmt.Sprintf("ent-%s-%s-%d", hp.Name, d.ext, s)
			downloads = append(downloads, Download{
				ID: id, HostName: hp.Name, Server: server, Ext: d.ext,
				Malicious: malPDF, FirstSeen: b.now.Add(-20 * 24 * time.Hour), Time: b.now,
			})
			b.add(server, "/files/"+randHex(rng, 6)+"."+d.ext, txOpts{
				ua: ua, referer: ref, ctype: d.ctype, size: (100 << 10) + rng.Intn(4<<20),
			})
			humanPause(b, rng)
		}

		// Embedded infection in this session?
		if len(infections) > 0 && s >= 3 && rng.Float64() < 0.35 {
			ext := infections[0]
			infections = infections[1:]
			downloads = append(downloads, embedInfection(b, ua, ref, hp.Name, ext, s, rng))
		}

		// Idle gap to the next session (~2.4 h average).
		b.advance(30*time.Minute, 4*time.Hour)
	}
	// Any infections not yet placed go in trailing sessions.
	for _, ext := range infections {
		ref := pageVisit(b, randBenignHost(rng), "/", "", ua, false, rng)
		downloads = append(downloads, embedInfection(b, ua, ref, hp.Name, ext, 99, rng))
		b.advance(20*time.Minute, time.Hour)
	}
	return b.txs, downloads
}

// embedInfection renders a redirect-chained exploit delivery (chain length
// 2-6 per Table VI) followed by the payload download and a C&C beacon.
func embedInfection(b *episodeBuilder, ua, ref, hostName, ext string, seq int, rng *rand.Rand) Download {
	hops := 2 + rng.Intn(4)
	// Pre-draw the chain so each Location header targets the next host
	// actually visited, plus a final exploit host fed by the landing page.
	chain := make([]string, hops+1)
	for i := range chain {
		chain[i] = randMaliciousHost(rng)
	}
	session := "PHPSESSID=" + randHex(rng, 16)
	prev := ref
	for i := 0; i < hops; i++ {
		if i+1 == hops {
			b.add(chain[i], "/landing", txOpts{
				ua: ua, referer: prev, ctype: "text/html", cookie: session,
				body: landingBody(chain[i+1], rng),
			})
		} else {
			b.add(chain[i], "/go", txOpts{
				ua: ua, referer: prev, status: 302, location: url(chain[i+1], "/go"),
			})
		}
		prev = url(chain[i], "/go")
		b.advance(100*time.Millisecond, 500*time.Millisecond)
	}
	host := chain[hops]
	// Fingerprinting / plugin-detection scripts along the chain, as in
	// every ground-truth exploit-kit episode.
	for i := 0; i < 2+rng.Intn(4); i++ {
		b.add(chain[rng.Intn(len(chain))], "/"+randWord(rng)+".js", txOpts{
			ua: ua, referer: prev, ctype: "application/javascript", size: 400 + rng.Intn(8000),
		})
		b.advance(20*time.Millisecond, 250*time.Millisecond)
	}
	ctype := map[string]string{
		"exe": "application/x-msdownload",
		"jar": "application/java-archive",
		"dmg": "application/x-apple-diskimage",
	}[ext]
	dl := Download{
		ID: fmt.Sprintf("ent-inf-%s-%s-%d", hostName, ext, seq), HostName: hostName,
		Server: host, Ext: ext, Malicious: true,
		FirstSeen: b.now.Add(-15 * 24 * time.Hour), Time: b.now,
	}
	xflash := ""
	if rng.Float64() < 0.5 {
		xflash = "18,0,0," + randDigits(rng, 3)
	}
	b.add(host, "/drop/"+randHex(rng, 6)+"."+ext, txOpts{
		ua: ua, referer: prev, cookie: session, xflash: xflash,
		ctype: ctype, size: (200 << 10) + rng.Intn(600<<10),
	})
	// Dead resource probes, as exploit kits rotate payload URLs.
	for rng.Float64() < 0.4 {
		b.advance(50*time.Millisecond, 400*time.Millisecond)
		b.add(host, "/"+randHex(rng, 6), txOpts{
			ua: ua, referer: prev, status: 404, ctype: "text/html", size: 250,
		})
	}
	for i := 0; i < 1+rng.Intn(3); i++ {
		b.advance(2*time.Second, 10*time.Second)
		b.add(randCncIP(rng), "/b.php", txOpts{method: "POST", ua: ua, ctype: "text/plain", size: 48})
	}
	return dl
}
