package synth

import (
	"bytes"

	"dynaminer/internal/pcap"
)

// readAllPackets parses an in-memory pcap capture.
func readAllPackets(data []byte) ([]pcap.Packet, error) {
	return pcap.ReadAll(bytes.NewReader(data))
}
