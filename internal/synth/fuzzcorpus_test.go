package synth

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestWriteFuzzSeedCorpus regenerates the checked-in seed corpus for the
// httpstream fuzz targets from the synth generator, so the fuzzers start
// from realistic pipelined traffic (redirect chains, downloads, gzip
// bodies). The corpus files live in the httpstream package because the
// import direction (synth -> httpstream) forbids the fuzzers from calling
// the generator directly.
//
// It is a no-op unless DYNAMINER_WRITE_FUZZ_CORPUS=1 is set:
//
//	DYNAMINER_WRITE_FUZZ_CORPUS=1 go test ./internal/synth -run TestWriteFuzzSeedCorpus
func TestWriteFuzzSeedCorpus(t *testing.T) {
	if os.Getenv("DYNAMINER_WRITE_FUZZ_CORPUS") == "" {
		t.Skip("set DYNAMINER_WRITE_FUZZ_CORPUS=1 to regenerate the httpstream fuzz seed corpus")
	}
	root := filepath.Join("..", "httpstream", "testdata", "fuzz")

	write := func(target, name string, args ...[]byte) {
		t.Helper()
		dir := filepath.Join(root, target)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		data := "go test fuzz v1\n"
		for _, a := range args {
			data += fmt.Sprintf("[]byte(%q)\n", a)
		}
		if err := os.WriteFile(filepath.Join(dir, name), []byte(data), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	eps := GenerateCorpus(Config{Seed: 12, Infections: 2, Benign: 2})
	seeds := 0
	for i := range eps {
		for _, conv := range eps[i].Conversations() {
			var c2s, s2c []byte
			for _, ex := range conv.Exchanges {
				if ex.ClientToServer {
					c2s = append(c2s, ex.Payload...)
				} else {
					s2c = append(s2c, ex.Payload...)
				}
			}
			name := fmt.Sprintf("synth-%03d", seeds)
			write("FuzzParseRequests", name, c2s)
			write("FuzzParseResponses", name, s2c)
			write("FuzzExtractPair", name, c2s, s2c)
			seeds++
			if seeds >= 8 {
				return
			}
		}
	}
}
