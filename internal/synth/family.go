package synth

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"
)

// FamilyModel captures the Table I statistics of one exploit-kit family:
// its share of the corpus, host-count and redirect-chain distributions, and
// the per-episode expectation of each payload type.
type FamilyModel struct {
	Name   string
	Weight int // number of PCAPs in the paper's ground truth

	HostsAvg int
	HostsMax int

	RedirAvg int
	RedirMax int

	// Per-episode payload expectations (ground-truth count / Weight).
	PDF, EXE, JAR, SWF, Crypt, JS float64
}

// Families is the Table I family mix, "Other Kits" included.
var Families = []FamilyModel{
	{Name: "Angler", Weight: 253, HostsAvg: 6, HostsMax: 74, RedirAvg: 1, RedirMax: 18,
		PDF: 0, EXE: 80.0 / 253, JAR: 133.0 / 253, SWF: 0.4, Crypt: 64.0 / 253, JS: 1163.0 / 253},
	{Name: "RIG", Weight: 62, HostsAvg: 4, HostsMax: 17, RedirAvg: 1, RedirMax: 3,
		PDF: 0, EXE: 35.0 / 62, JAR: 74.0 / 62, SWF: 13.0 / 62, Crypt: 0, JS: 240.0 / 62},
	{Name: "Nuclear", Weight: 132, HostsAvg: 8, HostsMax: 213, RedirAvg: 1, RedirMax: 18,
		PDF: 8.0 / 132, EXE: 730.0 / 132, JAR: 146.0 / 132, SWF: 13.0 / 132, Crypt: 11.0 / 132, JS: 935.0 / 132},
	{Name: "Magnitude", Weight: 43, HostsAvg: 20, HostsMax: 231, RedirAvg: 2, RedirMax: 12,
		PDF: 0, EXE: 862.0 / 43, JAR: 22.0 / 43, SWF: 0, Crypt: 2.0 / 43, JS: 330.0 / 43},
	{Name: "SweetOrange", Weight: 33, HostsAvg: 8, HostsMax: 90, RedirAvg: 1, RedirMax: 6,
		PDF: 0, EXE: 310.0 / 33, JAR: 22.0 / 33, SWF: 0, Crypt: 0, JS: 227.0 / 33},
	{Name: "FlashPack", Weight: 29, HostsAvg: 5, HostsMax: 15, RedirAvg: 2, RedirMax: 8,
		PDF: 0, EXE: 556.0 / 29, JAR: 35.0 / 29, SWF: 0, Crypt: 0, JS: 159.0 / 29},
	{Name: "Neutrino", Weight: 40, HostsAvg: 6, HostsMax: 30, RedirAvg: 2, RedirMax: 14,
		PDF: 0, EXE: 45.0 / 40, JAR: 31.0 / 40, SWF: 5.0 / 40, Crypt: 6.0 / 40, JS: 217.0 / 40},
	{Name: "Goon", Weight: 19, HostsAvg: 9, HostsMax: 90, RedirAvg: 2, RedirMax: 30,
		PDF: 0, EXE: 78.0 / 19, JAR: 15.0 / 19, SWF: 10.0 / 19, Crypt: 0, JS: 71.0 / 19},
	{Name: "Fiesta", Weight: 89, HostsAvg: 7, HostsMax: 182, RedirAvg: 1, RedirMax: 3,
		PDF: 21.0 / 89, EXE: 226.0 / 89, JAR: 72.0 / 89, SWF: 63.0 / 89, Crypt: 0, JS: 414.0 / 89},
	{Name: "Other Kits", Weight: 70, HostsAvg: 4, HostsMax: 68, RedirAvg: 1, RedirMax: 5,
		PDF: 1.0 / 70, EXE: 420.0 / 70, JAR: 13.0 / 70, SWF: 4.0 / 70, Crypt: 0, JS: 271.0 / 70},
}

// FamilyByName returns the model for a family.
func FamilyByName(name string) (FamilyModel, error) {
	for _, f := range Families {
		if f.Name == name {
			return f, nil
		}
	}
	return FamilyModel{}, fmt.Errorf("%w: %q", errUnknownFamily, name)
}

// Enticement categories with the Figure 1 shares. Redacted referrers behave
// like empty ones on the wire but are tracked as their own category.
var enticements = []struct {
	name  string
	share float64
}{
	{"google", 0.37},
	{"bing", 0.25},
	{"empty", 0.1776},
	{"compromised", 0.1284},
	{"redacted", 0.0751},
	{"social", 0.009},
}

func pickEnticement(rng *rand.Rand) string {
	total := 0.0
	for _, e := range enticements {
		total += e.share
	}
	r := rng.Float64() * total
	for _, e := range enticements {
		if r < e.share {
			return e.name
		}
		r -= e.share
	}
	return "empty"
}

// entryReferer renders an enticement category into the Referer of the first
// request and possibly a compromised entry URI.
func entryReferer(ent string, rng *rand.Rand) (referer, entryURI string) {
	switch ent {
	case "google":
		return "http://google.com/search?q=" + randWord(rng), "/" + randWord(rng)
	case "bing":
		return "http://bing.com/search?q=" + randWord(rng), "/" + randWord(rng)
	case "social":
		return "http://facebook.com/l.php?u=" + randWord(rng), "/" + randWord(rng)
	case "compromised":
		// Predominantly WordPress-style URIs (Section II-B).
		if rng.Float64() < 0.6 {
			return "", "/wp-content/plugins/" + randWord(rng) + "/view.php"
		}
		return "", "/index.php?option=com_" + randWord(rng)
	default: // empty, redacted
		return "", "/" + randWord(rng)
	}
}

// userAgents seen across the corpus.
var userAgents = []string{
	"Mozilla/4.0 (compatible; MSIE 8.0; Windows NT 6.1)",
	"Mozilla/5.0 (Windows NT 6.1; rv:38.0) Gecko/20100101 Firefox/38.0",
	"Mozilla/5.0 (Macintosh; Intel Mac OS X 10_10) AppleWebKit/600.1",
	"Mozilla/5.0 (X11; Ubuntu; Linux x86_64; rv:41.0) Gecko Firefox/41.0",
}

// Rates of the paper's false-negative-shaped infection variants.
const (
	// noRedirectCompressedRate: infections with no redirections (11 of the
	// 770 ground-truth WCGs per Section VII), modeled as delivering a
	// compressed payload per the false-negative analysis.
	noRedirectCompressedRate = 11.0 / 770
	// noCallbackRate: infections without post-download dynamics (62 of 770).
	noCallbackRate = 62.0 / 770
)

// infectionTweaks parameterizes evasion variants of the infection
// generator, modeling the adversarial moves of the paper's Section VII.
type infectionTweaks struct {
	// NoRedirects skips the redirection chain ("cloaked redirection
	// dynamics": the victim is led directly to the exploit server).
	NoRedirects bool
	// CompressedOnly replaces exploit-class payloads with a compressed
	// archive (the paper's leading false-negative cause).
	CompressedOnly bool
	// Fileless drops nothing at all ("cloaked download dynamics" /
	// in-memory infection).
	Fileless bool
	// NoCallback suppresses post-download C&C traffic.
	NoCallback bool
	// CallbackDelay postpones the first call-back by this much ("delaying
	// the call to the C&C server").
	CallbackDelay time.Duration
}

// EvasionModes names the Section VII evasion strategies accepted by
// GenerateEvasiveInfection.
var EvasionModes = []string{
	"none", "no-redirect", "compressed-payload", "fileless", "no-callback", "delayed-callback",
}

// GenerateEvasiveInfection synthesizes an infection episode of the family
// with one of the paper's Section VII evasion strategies applied.
func GenerateEvasiveInfection(mode, family string, at time.Time, rng *rand.Rand) (Episode, error) {
	var tw infectionTweaks
	switch mode {
	case "none":
	case "no-redirect":
		tw.NoRedirects = true
	case "compressed-payload":
		tw.CompressedOnly = true
	case "fileless":
		tw.Fileless = true
	case "no-callback":
		tw.NoCallback = true
	case "delayed-callback":
		tw.CallbackDelay = time.Duration(10+rng.Intn(20)) * time.Minute
	default:
		return Episode{}, fmt.Errorf("synth: unknown evasion mode %q", mode)
	}
	return generateInfection(family, at, rng, tw), nil
}

// GenerateInfection synthesizes one exploit-kit infection episode of the
// given family starting at the given time, with the ground-truth corpus's
// natural variant rates (a small fraction redirect-free with compressed
// payloads, ~8% without call-backs).
func GenerateInfection(family string, at time.Time, rng *rand.Rand) Episode {
	var tw infectionTweaks
	if rng.Float64() < noRedirectCompressedRate {
		tw.NoRedirects = true
		tw.CompressedOnly = true
		tw.NoCallback = true
	}
	if rng.Float64() < noCallbackRate {
		tw.NoCallback = true
	}
	return generateInfection(family, at, rng, tw)
}

func generateInfection(family string, at time.Time, rng *rand.Rand, tw infectionTweaks) Episode {
	model, err := FamilyByName(family)
	if err != nil {
		model = Families[len(Families)-1] // fall back to "Other Kits"
	}
	b := newBuilder(at, rng)
	ent := pickEnticement(rng)
	referer, entryURI := entryReferer(ent, rng)
	ua := userAgents[rng.Intn(len(userAgents))]
	session := "PHPSESSID=" + randHex(rng, 16)

	// --- Pre-download: redirection chain to the exploit server. ---
	redirects := sampleCount(model.RedirAvg, model.RedirMax, rng)
	if tw.NoRedirects {
		redirects = 0
	}
	entry := randMaliciousHost(rng)
	if ent == "compromised" {
		entry = randBenignHost(rng) // a legitimate but compromised site
	}
	chain := []string{entry}
	for i := 0; i < redirects; i++ {
		chain = append(chain, randMaliciousHost(rng))
	}
	exploitHost := randMaliciousHost(rng)

	prev := referer
	for i, host := range chain {
		uri := entryURI
		if i > 0 {
			uri = "/gate.php?id=" + randHex(rng, 6)
		}
		isLast := i == len(chain)-1
		if isLast {
			// Landing page: 200 HTML carrying an iframe to the exploit host.
			body := landingBody(exploitHost, rng)
			b.add(host, uri, txOpts{
				referer: prev, ua: ua, ctype: "text/html", body: body, cookie: session,
			})
		} else {
			b.add(host, uri, txOpts{
				referer: prev, ua: ua, status: 302,
				location: url(chain[i+1], "/gate.php?id="+randHex(rng, 6)),
			})
		}
		prev = url(host, uri)
		b.advance(30*time.Millisecond, 400*time.Millisecond)
	}

	// JS fetched along the chain (fingerprinting / plugin detection code).
	jsCount := samplePoissonish(model.JS, rng)
	for i := 0; i < jsCount; i++ {
		host := chain[rng.Intn(len(chain))]
		b.add(host, "/"+randWord(rng)+".js", txOpts{
			referer: prev, ua: ua, ctype: "application/javascript",
			size: 400 + rng.Intn(8000),
		})
		b.advance(20*time.Millisecond, 250*time.Millisecond)
	}

	// --- Download stage. ---
	// X-Flash-Version travels with Flash-related fetches; Flash-heavy kits
	// trigger it more often, but benign Flash content sends it too (see
	// the benign video scenario), so it is indicative, not decisive.
	xflash := ""
	if rng.Float64() < 0.35+0.25*minFloat(model.SWF, 1) {
		xflash = "18,0,0," + randDigits(rng, 3)
	}
	type drop struct {
		ext, ctype string
		min, max   int
	}
	drops := []struct {
		mean float64
		d    drop
	}{
		{model.PDF, drop{"pdf", "application/pdf", 50 << 10, 300 << 10}},
		{model.EXE, drop{"exe", "application/x-msdownload", 100 << 10, 900 << 10}},
		{model.JAR, drop{"jar", "application/java-archive", 5 << 10, 60 << 10}},
		{model.SWF, drop{"swf", "application/x-shockwave-flash", 20 << 10, 120 << 10}},
		{model.Crypt, drop{"crypt", "application/octet-stream", 100 << 10, 1 << 20}},
	}
	dropped := 0
	if !tw.Fileless && !tw.CompressedOnly {
		for _, dd := range drops {
			n := samplePoissonish(dd.mean, rng)
			// Cap bulk droppers (Magnitude serves ~20 EXEs per episode, keep
			// the long tail but bound generation cost).
			if n > 30 {
				n = 30
			}
			for i := 0; i < n; i++ {
				ext := dd.d.ext
				if ext == "crypt" {
					ext = randCryptExt(rng)
				}
				b.add(exploitHost, "/"+randHex(rng, 8)+"."+ext, txOpts{
					referer: prev, ua: ua, cookie: session, xflash: xflash,
					ctype: dd.d.ctype, size: dd.d.min + rng.Intn(dd.d.max-dd.d.min),
				})
				b.advance(150*time.Millisecond, 1500*time.Millisecond)
				dropped++
			}
		}
	}
	switch {
	case tw.Fileless:
		// In-memory infection: the exploit runs off the landing page; the
		// only server contact is a final script fetch.
		b.add(exploitHost, "/"+randWord(rng)+".js", txOpts{
			referer: prev, ua: ua, cookie: session,
			ctype: "application/javascript", size: 2000 + rng.Intn(30000),
		})
		b.advance(200*time.Millisecond, time.Second)
	case tw.CompressedOnly:
		// Compressed payload: no exploit-class file types on the wire.
		b.add(exploitHost, "/"+randHex(rng, 8)+".zip", txOpts{
			referer: prev, ua: ua, ctype: "application/zip",
			size: (200 << 10) + rng.Intn(1<<20),
		})
		b.advance(time.Second, 3*time.Second)
	case dropped == 0:
		// Every non-evasive infection episode involves at least one
		// exploit download (Section VII).
		b.add(exploitHost, "/"+randHex(rng, 8)+".exe", txOpts{
			referer: prev, ua: ua, cookie: session, xflash: xflash,
			ctype: "application/x-msdownload", size: (100 << 10) + rng.Intn(800<<10),
		})
		b.advance(150*time.Millisecond, 1500*time.Millisecond)
	}

	// Sprinkle 40x errors: exploit kits probe and rotate resources (Fig 4).
	for rng.Float64() < 0.45 {
		b.add(exploitHost, "/"+randHex(rng, 6), txOpts{
			referer: prev, ua: ua, status: 404, ctype: "text/html", size: 250,
		})
		b.advance(50*time.Millisecond, 500*time.Millisecond)
	}

	// --- Filler hosts up to the family's host-count profile. ---
	target := sampleCount(model.HostsAvg, model.HostsMax, rng)
	for extra := len(chain) + 2; extra < target; extra++ {
		host := randAdHost(rng)
		b.add(host, "/"+randWord(rng)+".gif", txOpts{
			referer: prev, ua: ua, ctype: "image/gif", size: 40 + rng.Intn(3000),
		})
		b.advance(20*time.Millisecond, 300*time.Millisecond)
	}

	// --- Post-download: C&C callbacks to never-before-seen IPs. ---
	if !tw.NoCallback {
		b.advance(2*time.Second, 20*time.Second)
		if tw.CallbackDelay > 0 {
			b.now = b.now.Add(tw.CallbackDelay)
		}
		calls := 1 + rng.Intn(4)
		for i := 0; i < calls; i++ {
			host := randCncIP(rng)
			status := 200
			if rng.Float64() < 0.2 {
				status = 404
			}
			b.add(host, "/"+randWord(rng)+".php", txOpts{
				method: "POST", ua: ua, status: status,
				ctype: "text/plain", size: 16 + rng.Intn(128),
			})
			b.advance(2*time.Second, 12*time.Second)
		}
	}

	// --- Benign background traffic. The infection dynamics "is often
	// buried in benign traffic" (Section I): the victim keeps browsing
	// normally before, during and after the infection, which blurs the
	// header and temporal aggregates the way real captures do.
	bg := newBuilder(at, rng)
	bg.victim = b.victim
	bg.port = b.port
	window := b.now.Sub(at) + time.Duration(5+rng.Intn(15))*time.Second
	bgVisits := 1 + rng.Intn(4)
	// The victim revisits a small set of sites; only the first visit to
	// each lacks a referrer, as in real click-through browsing.
	bgSites := make([]string, 1+rng.Intn(2))
	for i := range bgSites {
		bgSites[i] = randBenignHost(rng)
	}
	seenSite := make(map[string]string) // site -> last page URL
	for visits := bgVisits; visits > 0; visits-- {
		bg.now = at.Add(time.Duration(rng.Int63n(int64(window) + 1)))
		site := bgSites[rng.Intn(len(bgSites))]
		uri := "/" + randWord(rng)
		bg.add(site, uri, txOpts{
			referer: seenSite[site], ua: ua, ctype: "text/html", size: 1500 + rng.Intn(30000),
		})
		seenSite[site] = url(site, uri)
		for res := rng.Intn(3); res > 0; res-- {
			bg.advance(60*time.Millisecond, 500*time.Millisecond)
			bg.add(site, "/"+randWord(rng)+".png", txOpts{
				referer: seenSite[site], ua: ua, ctype: "image/png", size: 400 + rng.Intn(40000),
			})
		}
	}
	txs := append(b.txs, bg.txs...)
	sort.SliceStable(txs, func(i, j int) bool { return txs[i].ReqTime.Before(txs[j].ReqTime) })

	return Episode{Infection: true, Family: model.Name, Enticement: ent, Txs: txs}
}

// landingBody renders an exploit-kit landing page with an iframe redirect
// to the exploit host, obfuscated about a third of the time.
func landingBody(exploitHost string, rng *rand.Rand) []byte {
	target := url(exploitHost, "/"+randWord(rng))
	iframe := `<iframe src="` + target + `" width=1 height=1></iframe>`
	if rng.Float64() < 0.35 {
		// Percent-encode the scheme to mimic obfuscated droppers.
		iframe = strings.Replace(iframe, "http://", "%68%74%74%70://", 1)
	}
	return []byte("<html><body>" + randWord(rng) + iframe + "</body></html>")
}

func minFloat(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// sampleCount draws a count with the given mean and max: exponential
// around the mean with a hard floor of the minimum meaningful value, a
// cap, and a rare heavy tail reaching toward the cap — Table I's per-family
// maxima (213-host Nuclear episodes, 30-hop Goon chains) are outliers that
// a pure exponential never produces.
func sampleCount(avg, max int, rng *rand.Rand) int {
	if avg <= 0 {
		return 0
	}
	if max > 4*avg && rng.Float64() < 0.02 {
		// Tail episode: land in the top half of the range.
		return max/2 + rng.Intn(max/2+1)
	}
	v := int(rng.ExpFloat64() * float64(avg))
	if v < avg/2 {
		v = avg/2 + rng.Intn(avg/2+1)
	}
	if v > max {
		v = max
	}
	return v
}

// samplePoissonish draws a non-negative count with the given mean: the
// integer part plus a Bernoulli trial on the fraction, with a small
// geometric tail.
func samplePoissonish(mean float64, rng *rand.Rand) int {
	n := int(mean)
	frac := mean - float64(n)
	if rng.Float64() < frac {
		n++
	}
	for n > 0 && rng.Float64() < 0.15 {
		n++
		break
	}
	return n
}
