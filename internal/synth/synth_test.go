package synth

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"dynaminer/internal/httpstream"
	"dynaminer/internal/pcap"
	"dynaminer/internal/wcg"
)

var testStart = time.Date(2016, 4, 1, 12, 0, 0, 0, time.UTC)

func TestGenerateCorpusCountsAndLabels(t *testing.T) {
	eps := GenerateCorpus(Config{Seed: 1, Infections: 50, Benign: 60})
	if len(eps) != 110 {
		t.Fatalf("episodes = %d, want 110", len(eps))
	}
	inf, ben := 0, 0
	for _, e := range eps {
		if e.Infection {
			inf++
			if e.Family == "Benign" {
				t.Fatal("infection labeled Benign family")
			}
		} else {
			ben++
			if e.Family != "Benign" {
				t.Fatalf("benign episode has family %q", e.Family)
			}
		}
		if len(e.Txs) == 0 {
			t.Fatal("episode has no transactions")
		}
	}
	if inf != 50 || ben != 60 {
		t.Fatalf("inf=%d ben=%d", inf, ben)
	}
}

func TestGenerateCorpusDeterministic(t *testing.T) {
	a := GenerateCorpus(Config{Seed: 7, Infections: 20, Benign: 20})
	b := GenerateCorpus(Config{Seed: 7, Infections: 20, Benign: 20})
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i].Family != b[i].Family || len(a[i].Txs) != len(b[i].Txs) {
			t.Fatalf("episode %d differs: %s/%d vs %s/%d",
				i, a[i].Family, len(a[i].Txs), b[i].Family, len(b[i].Txs))
		}
		for j := range a[i].Txs {
			if a[i].Txs[j].Host != b[i].Txs[j].Host || !a[i].Txs[j].ReqTime.Equal(b[i].Txs[j].ReqTime) {
				t.Fatalf("tx %d/%d differs", i, j)
			}
		}
	}
	c := GenerateCorpus(Config{Seed: 8, Infections: 20, Benign: 20})
	same := true
	for i := range a {
		if a[i].Family != c[i].Family || len(a[i].Txs) != len(c[i].Txs) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical corpora")
	}
}

func TestFamilyByName(t *testing.T) {
	f, err := FamilyByName("Angler")
	if err != nil || f.Weight != 253 {
		t.Fatalf("Angler lookup: %+v, %v", f, err)
	}
	if _, err := FamilyByName("NoSuchKit"); err == nil {
		t.Fatal("unknown family must error")
	}
}

func TestFamilyWeightsSumTo770(t *testing.T) {
	total := 0
	for _, f := range Families {
		total += f.Weight
	}
	if total != 770 {
		t.Fatalf("family weights sum to %d, want 770", total)
	}
}

func TestInfectionEpisodeShape(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	withExploit, withCallback, n := 0, 0, 200
	for i := 0; i < n; i++ {
		ep := GenerateInfection("Angler", testStart, rng)
		if !ep.Infection || ep.Family != "Angler" {
			t.Fatal("episode metadata wrong")
		}
		w := wcg.FromTransactions(ep.Txs)
		if w.Order() < 2 {
			t.Fatalf("infection WCG order = %d", w.Order())
		}
		s := w.Summarize()
		if s.DownloadedExploits > 0 {
			withExploit++
		}
		if s.HasCallback {
			withCallback++
		}
	}
	// ~88% carry exploit payloads (the rest are the stealthy FN variant).
	if withExploit < n*75/100 {
		t.Fatalf("episodes with exploit download = %d/%d, too few", withExploit, n)
	}
	// Callback present in most episodes with downloads (paper: 708/770).
	if withCallback < n*60/100 {
		t.Fatalf("episodes with callback = %d/%d, too few", withCallback, n)
	}
}

func TestInfectionHostCountsWithinTableI(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, fam := range Families {
		for i := 0; i < 30; i++ {
			ep := GenerateInfection(fam.Name, testStart, rng)
			hosts := make(map[string]bool)
			for _, tx := range ep.Txs {
				hosts[tx.Host] = true
			}
			// Table I: at least a client and one remote host; host counts
			// bounded by the family maximum (+ slack for the victim,
			// callback endpoints, and interleaved background browsing).
			if len(hosts) < 1 {
				t.Fatalf("%s: no hosts", fam.Name)
			}
			if len(hosts) > fam.HostsMax+16 {
				t.Fatalf("%s: %d hosts exceeds family max %d", fam.Name, len(hosts), fam.HostsMax)
			}
		}
	}
}

func TestUnknownFamilyFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ep := GenerateInfection("Mystery", testStart, rng)
	if ep.Family != "Other Kits" {
		t.Fatalf("fallback family = %q", ep.Family)
	}
}

func TestEnticementDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	counts := make(map[string]int)
	n := 3000
	for i := 0; i < n; i++ {
		counts[pickEnticement(rng)]++
	}
	frac := func(k string) float64 { return float64(counts[k]) / float64(n) }
	if f := frac("google"); f < 0.32 || f > 0.42 {
		t.Fatalf("google share = %v, want ~0.37", f)
	}
	if f := frac("bing"); f < 0.20 || f > 0.30 {
		t.Fatalf("bing share = %v, want ~0.25", f)
	}
	if f := frac("social"); f > 0.03 {
		t.Fatalf("social share = %v, want < 1%%-ish", f)
	}
	if f := frac("compromised"); f < 0.09 || f > 0.17 {
		t.Fatalf("compromised share = %v, want ~0.13", f)
	}
}

func TestBenignScenarios(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, sc := range []string{"search", "social", "webmail", "video", "alexa", "unofficial-download", "torrent"} {
		ep := GenerateBenign(sc, testStart, rng)
		if ep.Infection {
			t.Fatalf("%s labeled infection", sc)
		}
		if ep.Enticement != sc {
			t.Fatalf("scenario = %q, want %q", ep.Enticement, sc)
		}
		if len(ep.Txs) == 0 {
			t.Fatalf("%s produced no transactions", sc)
		}
	}
}

func TestBenignRedirectsBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	over := 0
	n := 150
	for i := 0; i < n; i++ {
		ep := GenerateBenign(benignScenario(rng), testStart, rng)
		w := wcg.FromTransactions(ep.Txs)
		if st := w.RedirectStats(); st.MaxChainLen > 3 {
			over++
		}
	}
	if over > n/10 {
		t.Fatalf("%d/%d benign episodes with long redirect chains", over, n)
	}
}

// TestClassSeparationShape verifies the core distributional claims the
// detector depends on: infection WCGs are larger, have more redirects, and
// move faster than benign WCGs on average (Figures 3, 4 and Table IV).
func TestClassSeparationShape(t *testing.T) {
	eps := GenerateCorpus(Config{Seed: 21, Infections: 120, Benign: 120})
	var (
		infOrder, benOrder float64
		infRedir, benRedir float64
		infInter, benInter float64
		infCount, benCount float64
	)
	for _, e := range eps {
		w := wcg.FromTransactions(e.Txs)
		s := w.Summarize()
		if e.Infection {
			infOrder += float64(s.Order)
			infRedir += float64(s.Redirects.TotalRedirects)
			infInter += s.AvgInterTransact.Seconds()
			infCount++
		} else {
			benOrder += float64(s.Order)
			benRedir += float64(s.Redirects.TotalRedirects)
			benInter += s.AvgInterTransact.Seconds()
			benCount++
		}
	}
	if infOrder/infCount <= benOrder/benCount {
		t.Fatalf("avg order: infection %.2f <= benign %.2f", infOrder/infCount, benOrder/benCount)
	}
	if infRedir/infCount <= benRedir/benCount {
		t.Fatalf("avg redirects: infection %.2f <= benign %.2f", infRedir/infCount, benRedir/benCount)
	}
	if infInter/infCount >= benInter/benCount {
		t.Fatalf("avg inter-tx: infection %.2fs >= benign %.2fs", infInter/infCount, benInter/benCount)
	}
}

func TestRenderRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	ep := GenerateInfection("RIG", testStart, rng)
	var buf bytes.Buffer
	if err := ep.WritePCAP(&buf); err != nil {
		t.Fatal(err)
	}
	pkts, err := readAllPackets(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	txs := httpstream.FromPackets(pkts)
	if len(txs) != len(ep.Txs) {
		t.Fatalf("pcap path recovered %d transactions, want %d", len(txs), len(ep.Txs))
	}
	// The WCGs from both paths must agree on structure.
	direct := wcg.FromTransactions(ep.Txs)
	viaPcap := wcg.FromTransactions(txs)
	if direct.Order() != viaPcap.Order() {
		t.Fatalf("order differs: direct=%d pcap=%d", direct.Order(), viaPcap.Order())
	}
	ds, ps := direct.Summarize(), viaPcap.Summarize()
	if ds.GETs != ps.GETs || ds.POSTs != ps.POSTs {
		t.Fatalf("method counts differ: %d/%d vs %d/%d", ds.GETs, ds.POSTs, ps.GETs, ps.POSTs)
	}
	if ds.Redirects.TotalRedirects != ps.Redirects.TotalRedirects {
		t.Fatalf("redirects differ: %d vs %d", ds.Redirects.TotalRedirects, ps.Redirects.TotalRedirects)
	}
	if ds.DownloadedExploits != ps.DownloadedExploits {
		t.Fatalf("exploit downloads differ: %d vs %d", ds.DownloadedExploits, ps.DownloadedExploits)
	}
}

func TestRenderBenignRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	ep := GenerateBenign("search", testStart, rng)
	var buf bytes.Buffer
	if err := ep.WritePCAP(&buf); err != nil {
		t.Fatal(err)
	}
	pkts, err := readAllPackets(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	txs := httpstream.FromPackets(pkts)
	if len(txs) != len(ep.Txs) {
		t.Fatalf("recovered %d transactions, want %d", len(txs), len(ep.Txs))
	}
}

func TestIPForHostStable(t *testing.T) {
	a := ipForHost("example.com")
	b := ipForHost("example.com")
	c := ipForHost("other.net")
	if a != b {
		t.Fatal("same host must map to same IP")
	}
	if a == c {
		t.Fatal("different hosts should map to different IPs")
	}
	if !a.Is4() {
		t.Fatal("must be IPv4")
	}
}

func TestSampleHelpers(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for i := 0; i < 500; i++ {
		v := sampleCount(6, 74, rng)
		if v < 3 || v > 74 {
			t.Fatalf("sampleCount out of range: %d", v)
		}
	}
	if sampleCount(0, 10, rng) != 0 {
		t.Fatal("zero-avg sampleCount must be 0")
	}
	sum := 0
	for i := 0; i < 2000; i++ {
		sum += samplePoissonish(2.5, rng)
	}
	mean := float64(sum) / 2000
	if mean < 2.0 || mean > 3.2 {
		t.Fatalf("poissonish mean = %v, want ~2.5", mean)
	}
}

func TestEvasionModesStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for i := 0; i < 20; i++ {
		fam := Families[i%len(Families)].Name

		ep, err := GenerateEvasiveInfection("fileless", fam, testStart, rng)
		if err != nil {
			t.Fatal(err)
		}
		s := wcg.FromTransactions(ep.Txs).Summarize()
		if s.DownloadedExploits != 0 {
			t.Fatalf("fileless episode downloaded %d exploit payloads", s.DownloadedExploits)
		}

		ep, err = GenerateEvasiveInfection("no-redirect", fam, testStart, rng)
		if err != nil {
			t.Fatal(err)
		}
		w := wcg.FromTransactions(ep.Txs)
		// Only the origin hop and landing iframe remain possible.
		if st := w.RedirectStats(); st.MaxChainLen > 2 {
			t.Fatalf("no-redirect episode has chain of %d", st.MaxChainLen)
		}
		if w.Summarize().DownloadedExploits == 0 {
			t.Fatal("no-redirect episode must still drop a payload")
		}

		ep, err = GenerateEvasiveInfection("compressed-payload", fam, testStart, rng)
		if err != nil {
			t.Fatal(err)
		}
		s = wcg.FromTransactions(ep.Txs).Summarize()
		if s.DownloadedExploits != 0 {
			t.Fatal("compressed payload must not register as exploit class")
		}
		if s.PayloadCounts[wcg.PayloadArchive] == 0 {
			t.Fatal("compressed payload missing")
		}

		ep, err = GenerateEvasiveInfection("no-callback", fam, testStart, rng)
		if err != nil {
			t.Fatal(err)
		}
		if wcg.FromTransactions(ep.Txs).Summarize().HasCallback {
			t.Fatal("no-callback episode has a callback")
		}
	}
	if _, err := GenerateEvasiveInfection("warp-drive", "Angler", testStart, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("unknown mode must error")
	}
	// "none" behaves like the plain generator.
	ep, err := GenerateEvasiveInfection("none", "Angler", testStart, rand.New(rand.NewSource(9)))
	if err != nil || !ep.Infection {
		t.Fatalf("none mode: %v %v", ep.Infection, err)
	}
}

func TestDelayedCallbackStretchesDuration(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	slow, fast := 0, 0
	for i := 0; i < 20; i++ {
		dl, err := GenerateEvasiveInfection("delayed-callback", "Nuclear", testStart, rng)
		if err != nil {
			t.Fatal(err)
		}
		plain := GenerateInfection("Nuclear", testStart, rng)
		if wcg.FromTransactions(dl.Txs).Duration() > wcg.FromTransactions(plain.Txs).Duration() {
			slow++
		} else {
			fast++
		}
	}
	if slow < 15 {
		t.Fatalf("delayed-callback longer in only %d/20 trials", slow)
	}
}

func TestWritePCAPNGRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	ep := GenerateInfection("Neutrino", testStart, rng)
	var buf bytes.Buffer
	if err := ep.WritePCAPNG(&buf); err != nil {
		t.Fatal(err)
	}
	pkts, err := pcap.ReadAllAuto(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	txs := httpstream.FromPackets(pkts)
	if len(txs) != len(ep.Txs) {
		t.Fatalf("pcapng path recovered %d transactions, want %d", len(txs), len(ep.Txs))
	}
}
