package synth

import (
	"math/rand"
	"strconv"
)

var (
	syllables  = []string{"net", "soft", "blog", "shop", "news", "media", "cloud", "tech", "data", "info", "web", "play", "game", "mail", "photo", "video", "travel", "food", "music", "sport"}
	benignTLDs = []string{"com", "com", "com", "net", "org", "io", "co"}
	shadyTLDs  = []string{"ru", "info", "biz", "top", "xyz", "pw", "cc", "com", "net"}
	adWords    = []string{"ads", "track", "pixel", "banner", "click", "stat", "cdn", "metrics"}
	words      = []string{"index", "view", "watch", "page", "item", "post", "story", "offer", "deal", "update", "main", "home", "search", "result"}
)

func randWord(rng *rand.Rand) string {
	return words[rng.Intn(len(words))] + strconv.Itoa(rng.Intn(1000))
}

func randHex(rng *rand.Rand, n int) string {
	const hexDigits = "0123456789abcdef"
	b := make([]byte, n)
	for i := range b {
		b[i] = hexDigits[rng.Intn(16)]
	}
	return string(b)
}

func randDigits(rng *rand.Rand, n int) string {
	const digits = "0123456789"
	b := make([]byte, n)
	for i := range b {
		b[i] = digits[rng.Intn(10)]
	}
	return string(b)
}

// randBenignHost generates a plausible legitimate site name.
func randBenignHost(rng *rand.Rand) string {
	return syllables[rng.Intn(len(syllables))] +
		syllables[rng.Intn(len(syllables))] +
		strconv.Itoa(rng.Intn(100)) + "." + benignTLDs[rng.Intn(len(benignTLDs))]
}

// randMaliciousHost generates an exploit-kit-style throwaway domain.
func randMaliciousHost(rng *rand.Rand) string {
	return randHex(rng, 3+rng.Intn(8)) + syllables[rng.Intn(len(syllables))] +
		"." + shadyTLDs[rng.Intn(len(shadyTLDs))]
}

// randAdHost generates an advertising / tracking host name.
func randAdHost(rng *rand.Rand) string {
	return adWords[rng.Intn(len(adWords))] + strconv.Itoa(rng.Intn(1000)) +
		"." + benignTLDs[rng.Intn(len(benignTLDs))]
}

// randCncIP generates a raw-IP C&C endpoint, matching the paper's
// observation that post-download hosts are fresh IP addresses.
func randCncIP(rng *rand.Rand) string {
	return "185." + strconv.Itoa(rng.Intn(256)) + "." +
		strconv.Itoa(rng.Intn(256)) + "." + strconv.Itoa(1+rng.Intn(254))
}

var cryptExts = []string{"crypt", "locky", "cerber", "zepto", "vault", "ecc", "xtbl", "micro", "locked", "encrypted"}

func randCryptExt(rng *rand.Rand) string {
	return cryptExts[rng.Intn(len(cryptExts))]
}

// Popular destinations used by the benign scenario models.
var (
	searchEngines = []string{"google.com", "bing.com"}
	socialSites   = []string{"facebook.com", "twitter.com"}
	webmailSites  = []string{"mail.google.com", "mail.yahoo.com"}
	videoSites    = []string{"youtube.com"}
	storeSites    = []string{"downloads.vendor-store.com", "apps.trusted-repo.org"}
)
